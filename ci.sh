#!/usr/bin/env bash
# Continuous-integration driver. Three gating steps plus best-effort
# lint:
#
#   1. tier-1: plain build + full ctest suite (the seed contract);
#   2. sanitizer: rebuild and rerun the suite under
#      AddressSanitizer + UndefinedBehaviorSanitizer;
#   3. protocol lint: verify_policy must prove every shipping policy
#      sound and the broken one unsound with a replaying
#      counterexample; the --necessity pass additionally proves every
#      cache op the shipping lazy policies issue load-bearing and
#      that no classic policy retains a fully-removable call site,
#      archiving the machine-readable verdicts (VERIFY_report.json);
#   4. interleaving exploration: verify_policy --interleave runs the
#      DPOR schedule explorer (src/mc) per shipping policy at a CI
#      budget — the guarded kernel orderings must be race- and
#      violation-free under every policy, the broken-ordering
#      exemplars must produce an oracle-confirmed race with a
#      replayable minimal schedule, and the machine-readable v3
#      report is archived (VERIFY_interleave.json);
#   5. weak-order exploration + fuzz smoke: the same explorer rerun
#      with --memory-order weak (per-CPU store buffers, drain events
#      in the schedule alphabet) at a CI budget, plus a seeded
#      schedule-fuzzing pass — the guarded choreographies must stay
#      clean under relaxation, the missing-fence exemplar must
#      produce an oracle-confirmed weak-order window, the fuzzer
#      must discover no trace DPOR missed, and the report is
#      archived (VERIFY_weak.json);
#   5b. multiprocessor coherence exploration: verify_policy
#      --interleave --coherence runs the cross-cache catalog — the
#      sharing pairs must be benign (positively reported) on the
#      MESI machine and the non-coherent regression must yield an
#      oracle-confirmed race — archiving VERIFY_coherence.json;
#   6. bench smoke: vic_bench sweeps every suite at smoke scale
#      through the experiment engine, gated on zero oracle
#      violations, and archives the JSON artifact (BENCH_smoke.json);
#      the same sweep rerun serially must produce an artifact
#      equivalent to the parallel one modulo wall-clock — the
#      engine's determinism contract;
#   7. perf smoke: vic_bench --smoke rebuilt at Release (-O2) and run
#      with --shards 2 (the intra-run shard path must be exercised by
#      every CI pass), its artifact asserted equivalent to the
#      default build's (the pipeline's functional behaviour must not
#      depend on the optimisation level OR the shard count), gated by
#      the throughput ratchet (--ratchet: >10% regression in
#      cycles_per_host_second vs the archived baseline fails CI),
#      and the refreshed baseline archived (BENCH_throughput.json);
#   8. thread sanitizer: the threaded fan-outs (experiment engine
#      tests + the shard runner tests + the smoke sweep + the model
#      checker's exploreMany + the CoherenceBus head-to-head paths +
#      a sharded fleet sweep) rebuilt and rerun under TSan;
#   9. static analysis: tools/vic_lint runs all seven invariant
#      passes (determinism, interprocedural DMA drain-pairing,
#      address-kind laundering, spec-table completeness, counter
#      registration, whole-program counter liveness, layering — see
#      docs/STATIC_ANALYSIS.md) over the tree, gating on zero
#      diagnostics, and archives LINT_report.json (schema v2, with
#      per-pass fixpoint stats) plus LINT_report.sarif for CI
#      annotators;
#  10. style lint: clang-format / clang-tidy, gating when installed
#      and skipped with a notice otherwise (they are configs-first:
#      the repo must stay clean under gcc -Werror regardless).
#
# Usage: ./ci.sh [--full] [jobs]
#
# --full additionally runs the full-scale (non-smoke) Table 1 sweep
# with its calibrated shape checks gating — minutes of extra runtime,
# so it is opt-in rather than part of every CI pass.

set -euo pipefail
cd "$(dirname "$0")"

FULL=0
if [[ "${1:-}" == "--full" ]]; then
    FULL=1
    shift
fi
JOBS="${1:-$(nproc)}"

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1: build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

step "tier-1: ctest"
(cd build && ctest --output-on-failure -j "$JOBS")

step "sanitizer build (address;undefined)"
cmake -B build-asan -S . \
    -DVIC_SANITIZE="address;undefined" -DVIC_WERROR=ON >/dev/null
cmake --build build-asan -j "$JOBS"

step "sanitizer ctest"
(cd build-asan && ctest --output-on-failure -j "$JOBS")

step "protocol lint (verify_policy --necessity)"
./build/tools/verify_policy --necessity --json VERIFY_report.json
echo "artifact archived: VERIFY_report.json"

step "interleaving exploration (verify_policy --interleave)"
./build/tools/verify_policy --interleave --budget 5000 --jobs 2 \
    --json VERIFY_interleave.json
echo "artifact archived: VERIFY_interleave.json"

step "weak-order exploration + fuzz smoke (--memory-order weak)"
./build/tools/verify_policy --interleave --memory-order weak \
    --fuzz 200 --fuzz-seed 42 --budget 20000 --jobs 2 \
    --json VERIFY_weak.json
echo "artifact archived: VERIFY_weak.json"

step "multiprocessor coherence exploration (--coherence)"
./build/tools/verify_policy --interleave --coherence \
    --budget 5000 --jobs 2 --json VERIFY_coherence.json
echo "artifact archived: VERIFY_coherence.json"

step "bench smoke sweep (vic_bench, --jobs 2)"
./build/tools/vic_bench --smoke --jobs 2 --json BENCH_smoke.json
echo "artifact archived: BENCH_smoke.json"

step "bench determinism (--jobs 1 vs --jobs 2 artifacts)"
./build/tools/vic_bench --smoke --jobs 1 --json BENCH_smoke_j1.json \
    >/dev/null
./build/tools/vic_bench --diff BENCH_smoke_j1.json BENCH_smoke.json
rm -f BENCH_smoke_j1.json

step "perf smoke (Release -O2, shards, artifact equivalence, ratchet)"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$JOBS" --target vic_bench
# --shards 2 exercises the intra-run shard path; the artifact must
# stay equivalent to the Debug --shards 1 sweep. The ratchet gates on
# >10% cycles_per_host_second regression vs the archived baseline,
# and only a passing sweep refreshes it (--throughput).
./build-release/tools/vic_bench --smoke --jobs 2 --shards 2 \
    --json BENCH_smoke_release.json \
    --ratchet BENCH_throughput.json \
    --throughput BENCH_throughput.json
./build/tools/vic_bench --diff BENCH_smoke.json BENCH_smoke_release.json
rm -f BENCH_smoke_release.json
./build-release/tools/vic_bench --list --throughput BENCH_throughput.json
echo "artifact archived: BENCH_throughput.json (ratchet baseline)"

if [[ "$FULL" == 1 ]]; then
    step "full-scale Table 1 sweep (opt-in, calibrated shape checks)"
    ./build/tools/vic_bench --filter table1 --jobs "$JOBS" \
        --json BENCH_table1_full.json
    echo "artifact archived: BENCH_table1_full.json"

    step "full-scale coherence head-to-head (opt-in, Release)"
    # The hardware-vs-software suite at calibrated scale: its shape
    # checks (zero software ops on the HW rows, nonzero bus/snoop
    # work, lazy <= classic software cycles) gate rather than advise.
    # Release build — full-scale 2-CPU MESI runs are the most
    # expensive in the tree. Numbers are recorded in EXPERIMENTS.md.
    cmake --build build-release -j "$JOBS" --target vic_bench
    ./build-release/tools/vic_bench --filter coherence --jobs "$JOBS" \
        --json BENCH_coherence_full.json
    echo "artifact archived: BENCH_coherence_full.json"
fi

step "thread sanitizer build (experiment engine + model checker + coherence)"
cmake -B build-tsan -S . -DVIC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
    --target experiment_engine_test shard_test vic_bench mc_test \
             weak_order_test multiprocessor_test

step "thread sanitizer: engine tests + smoke sweep + explorer + coherence"
./build-tsan/tests/experiment_engine_test
./build-tsan/tools/vic_bench --smoke --jobs 4 --json /dev/null \
    >/dev/null
./build-tsan/tests/mc_test >/dev/null
./build-tsan/tests/weak_order_test >/dev/null
# The CoherenceBus paths from the multi-CPU PR, driven two ways: the
# MESI/kernel suites directly, and the engine fanning multi-CPU
# sweeps across worker threads.
./build-tsan/tests/multiprocessor_test >/dev/null
./build-tsan/tools/vic_bench --smoke --filter coherence --jobs 4 \
    --json /dev/null >/dev/null
# Intra-run sharding: the shard runner's worker threads (unit tests),
# then jobs x shards nested fan-out through the whole fleet suite.
./build-tsan/tests/shard_test >/dev/null
./build-tsan/tools/vic_bench --smoke --filter fleet --jobs 2 \
    --shards 4 --json /dev/null >/dev/null
echo "TSan: clean"

step "static analysis (vic_lint, all passes)"
cmake --build build -j "$JOBS" --target vic_lint >/dev/null
./build/tools/vic_lint --root . --json LINT_report.json \
    --sarif LINT_report.sarif
echo "artifacts archived: LINT_report.json LINT_report.sarif"

step "style lint"
if command -v clang-format >/dev/null 2>&1; then
    mapfile -t sources < <(git ls-files '*.cc' '*.hh')
    clang-format --dry-run --Werror "${sources[@]}"
    echo "clang-format: clean"
else
    echo "clang-format not installed — skipping (config: .clang-format)"
fi
if command -v clang-tidy >/dev/null 2>&1 && \
   command -v run-clang-tidy >/dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    # Gating: any finding fails the build.
    run-clang-tidy -p build -quiet -warnings-as-errors='*' \
        "src/.*" "tools/.*"
    echo "clang-tidy: clean"
else
    echo "clang-tidy not installed — skipping (config: .clang-tidy)"
fi

step "OK"
