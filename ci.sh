#!/usr/bin/env bash
# Continuous-integration driver. Three gating steps plus best-effort
# lint:
#
#   1. tier-1: plain build + full ctest suite (the seed contract);
#   2. sanitizer: rebuild and rerun the suite under
#      AddressSanitizer + UndefinedBehaviorSanitizer;
#   3. protocol lint: verify_policy must prove every shipping policy
#      sound and the broken one unsound with a replaying
#      counterexample;
#   4. style lint: clang-format / clang-tidy, skipped with a notice
#      when the tools are not installed (they are configs-first: the
#      repo must stay clean under gcc -Werror regardless).
#
# Usage: ./ci.sh [jobs]

set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1: build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

step "tier-1: ctest"
(cd build && ctest --output-on-failure -j "$JOBS")

step "sanitizer build (address;undefined)"
cmake -B build-asan -S . \
    -DVIC_SANITIZE="address;undefined" -DVIC_WERROR=ON >/dev/null
cmake --build build-asan -j "$JOBS"

step "sanitizer ctest"
(cd build-asan && ctest --output-on-failure -j "$JOBS")

step "protocol lint (verify_policy)"
./build/tools/verify_policy

step "style lint"
if command -v clang-format >/dev/null 2>&1; then
    mapfile -t sources < <(git ls-files '*.cc' '*.hh')
    clang-format --dry-run --Werror "${sources[@]}"
    echo "clang-format: clean"
else
    echo "clang-format not installed — skipping (config: .clang-format)"
fi
if command -v clang-tidy >/dev/null 2>&1 && \
   command -v run-clang-tidy >/dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    run-clang-tidy -p build -quiet "src/.*" "tools/.*"
else
    echo "clang-tidy not installed — skipping (config: .clang-tidy)"
fi

step "OK"
