/**
 * @file
 * Table 5 — "Functional differences between several operating systems
 * implemented for machines with virtually indexed caches": the CMU
 * system (this paper) against Utah, Tut, Apollo and Sun. Prints the
 * functional feature matrix and then MEASURES all five policies on
 * the three benchmark workloads, showing the CMU system performing
 * the least cache management.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace vic;
using namespace vic::bench;

int
main()
{
    banner("Table 5: related-work systems comparison",
           "Wheeler & Bershad 1992, Table 5 (Section 6)");

    // Functional matrix (from the paper's narrative; our policy
    // parametrisation of each system).
    Table f({"System", "Unaligned aliases", "Unmap policy",
             "Reuse that avoids ops", "Aligns pages",
             "Aligned prepare", "need_data / will_overwrite"});
    f.row();
    f.cell(std::string("CMU"));
    f.cell(std::string("yes (lazy state)"));
    f.cell(std::string("lazy"));
    f.cell(std::string("aligned (cache page)"));
    f.cell(std::string("yes"));
    f.cell(std::string("yes"));
    f.cell(std::string("yes / yes"));
    f.row();
    f.cell(std::string("Utah"));
    f.cell(std::string("yes (break on write)"));
    f.cell(std::string("eager clean"));
    f.cell(std::string("none"));
    f.cell(std::string("no"));
    f.cell(std::string("no"));
    f.cell(std::string("no / no"));
    f.row();
    f.cell(std::string("Tut"));
    f.cell(std::string("yes (break on write)"));
    f.cell(std::string("lazy (per VA)"));
    f.cell(std::string("equal address only"));
    f.cell(std::string("text only"));
    f.cell(std::string("yes"));
    f.cell(std::string("no / no"));
    f.row();
    f.cell(std::string("Apollo"));
    f.cell(std::string("yes (break on write)"));
    f.cell(std::string("eager clean"));
    f.cell(std::string("none"));
    f.cell(std::string("no"));
    f.cell(std::string("no"));
    f.cell(std::string("no / no"));
    f.row();
    f.cell(std::string("Sun"));
    f.cell(std::string("constrained (uncached)"));
    f.cell(std::string("eager clean"));
    f.cell(std::string("none"));
    f.cell(std::string("no"));
    f.cell(std::string("no"));
    f.cell(std::string("no / no"));
    f.print();
    std::printf("\n");

    // Measured comparison on the three paper workloads.
    bool shapes_ok = true;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        std::string wname;
        Table t({"System", "Elapsed (s)", "D flushes", "D purges",
                 "I purges", "Cons faults", "Total cache ops"});
        std::vector<RunResult> rs;
        for (const auto &cfg : PolicyConfig::table5Systems()) {
            auto wl = paperWorkload(w);
            wname = wl->name();
            RunResult r = runWorkload(*wl, cfg);
            checkOracle(r);
            t.row();
            t.cell(r.policy);
            t.cell(r.seconds, 4);
            t.cell(r.dPageFlushes());
            t.cell(r.dPagePurges());
            t.cell(r.iPagePurges());
            t.cell(r.consistencyFaults());
            t.cell(r.dPageFlushes() + r.dPagePurges() +
                   r.iPagePurges());
            rs.push_back(r);
        }
        std::printf("--- %s ---\n", wname.c_str());
        t.print();
        std::printf("\n");

        const auto ops = [](const RunResult &r) {
            return r.dPageFlushes() + r.dPagePurges() + r.iPagePurges();
        };
        for (std::size_t i = 1; i < rs.size(); ++i)
            shapes_ok &= ops(rs[0]) <= ops(rs[i]);
    }

    std::printf("expected shape: the CMU row performs the fewest "
                "cache operations on every workload\n");
    std::printf("SHAPE CHECK: %s\n", shapes_ok ? "PASS" : "FAIL");
    return shapes_ok ? 0 : 1;
}
