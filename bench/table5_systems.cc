/**
 * @file
 * Table 5 — "Functional differences between several operating systems
 * implemented for machines with virtually indexed caches": the CMU
 * system (this paper) against Utah, Tut, Apollo and Sun. Prints the
 * functional feature matrix and then MEASURES all five policies on
 * the three benchmark workloads, showing the CMU system performing
 * the least cache management.
 */

#include <cstdio>

#include "bench/suites.hh"
#include "common/table.hh"

namespace vic::bench
{
namespace
{

std::vector<RunSpec>
table5Specs(const SuiteOptions &opt)
{
    std::vector<RunSpec> specs;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        for (const auto &cfg : PolicyConfig::table5Systems())
            specs.push_back(paperSpec("table5", w, cfg, opt));
    }
    return specs;
}

void
printFunctionalMatrix()
{
    // Functional matrix (from the paper's narrative; our policy
    // parametrisation of each system).
    Table f({"System", "Unaligned aliases", "Unmap policy",
             "Reuse that avoids ops", "Aligns pages",
             "Aligned prepare", "need_data / will_overwrite"});
    f.row();
    f.cell(std::string("CMU"));
    f.cell(std::string("yes (lazy state)"));
    f.cell(std::string("lazy"));
    f.cell(std::string("aligned (cache page)"));
    f.cell(std::string("yes"));
    f.cell(std::string("yes"));
    f.cell(std::string("yes / yes"));
    f.row();
    f.cell(std::string("Utah"));
    f.cell(std::string("yes (break on write)"));
    f.cell(std::string("eager clean"));
    f.cell(std::string("none"));
    f.cell(std::string("no"));
    f.cell(std::string("no"));
    f.cell(std::string("no / no"));
    f.row();
    f.cell(std::string("Tut"));
    f.cell(std::string("yes (break on write)"));
    f.cell(std::string("lazy (per VA)"));
    f.cell(std::string("equal address only"));
    f.cell(std::string("text only"));
    f.cell(std::string("yes"));
    f.cell(std::string("no / no"));
    f.row();
    f.cell(std::string("Apollo"));
    f.cell(std::string("yes (break on write)"));
    f.cell(std::string("eager clean"));
    f.cell(std::string("none"));
    f.cell(std::string("no"));
    f.cell(std::string("no"));
    f.cell(std::string("no / no"));
    f.row();
    f.cell(std::string("Sun"));
    f.cell(std::string("constrained (uncached)"));
    f.cell(std::string("eager clean"));
    f.cell(std::string("none"));
    f.cell(std::string("no"));
    f.cell(std::string("no"));
    f.cell(std::string("no / no"));
    f.print();
    std::printf("\n");
}

bool
table5Report(const SuiteOptions &opt,
             const std::vector<RunOutcome> &outcomes)
{
    printFunctionalMatrix();

    const std::size_t num_systems =
        outcomes.size() / numPaperWorkloads;

    // Measured comparison on the three paper workloads.
    bool shapes_ok = true;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        Table t({"System", "Elapsed (s)", "D flushes", "D purges",
                 "I purges", "Cons faults", "Total cache ops"});
        std::vector<RunResult> rs;
        for (std::size_t i = 0; i < num_systems; ++i) {
            const RunResult &r =
                outcomes[w * num_systems + i].result;
            t.row();
            t.cell(r.policy);
            t.cell(r.seconds, 4);
            t.cell(r.dPageFlushes());
            t.cell(r.dPagePurges());
            t.cell(r.iPagePurges());
            t.cell(r.consistencyFaults());
            t.cell(r.dPageFlushes() + r.dPagePurges() +
                   r.iPagePurges());
            rs.push_back(r);
        }
        std::printf("--- %s ---\n", rs.front().workload.c_str());
        t.print();
        std::printf("\n");

        const auto ops = [](const RunResult &r) {
            return r.dPageFlushes() + r.dPagePurges() + r.iPagePurges();
        };
        for (std::size_t i = 1; i < rs.size(); ++i)
            shapes_ok &= ops(rs[0]) <= ops(rs[i]);
    }

    std::printf("expected shape: the CMU row performs the fewest "
                "cache operations on every workload\n");
    return shapeCheck(opt, shapes_ok,
                      "CMU performs the fewest cache operations on "
                      "every workload");
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "table5";
    s.title = "Table 5: related-work systems comparison";
    s.paperRef = "Wheeler & Bershad 1992, Table 5 (Section 6)";
    s.order = 50;
    s.specs = table5Specs;
    s.report = table5Report;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("table5", argc, argv);
}
#endif
