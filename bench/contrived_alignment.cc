/**
 * @file
 * Experiment C1 — the Section 2.5 contrived benchmark: "A single
 * thread repeatedly wrote one physical address through two virtual
 * addresses. When the virtual addresses were aligned, a loop of
 * 1,000,000 writes completed in a fraction of a second. When
 * unaligned, the loop took over 2 minutes."
 *
 * Expected shape: two or more orders of magnitude between aligned and
 * unaligned (the paper's ratio is roughly 300x).
 */

#include <cstdio>

#include "bench/suites.hh"
#include "common/table.hh"
#include "workload/contrived_alias.hh"

namespace vic::bench
{
namespace
{

// The paper's 1,000,000 writes, scaled 1:25 (the ratio is preserved;
// multiply the times by 25 to compare absolutes).
constexpr std::uint32_t kWrites = 40000;
constexpr std::uint32_t kSmokeWrites = 4000;

std::vector<RunSpec>
contrivedSpecs(const SuiteOptions &opt)
{
    const std::uint32_t writes = opt.smoke ? kSmokeWrites : kWrites;
    std::vector<RunSpec> specs;
    for (const auto &cfg :
         {PolicyConfig::configF(), PolicyConfig::configA()}) {
        for (bool aligned : {true, false}) {
            RunSpec spec;
            spec.suite = "contrived";
            spec.id = std::string("contrived/") +
                      (aligned ? "aligned" : "unaligned") + "/" +
                      policyTag(cfg);
            spec.make = [aligned, writes] {
                return std::make_unique<ContrivedAlias>(
                    ContrivedAlias::Params{aligned, writes, false});
            };
            spec.policy = cfg;
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

bool
contrivedReport(const SuiteOptions &opt,
                const std::vector<RunOutcome> &outcomes)
{
    const std::uint32_t writes = opt.smoke ? kSmokeWrites : kWrites;

    Table t({"Variant", "Policy", "Writes", "Elapsed (s)",
             "Consistency faults", "D flushes", "D purges"});

    // Spec order: F/aligned, F/unaligned, A/aligned, A/unaligned.
    double aligned_s = 0, unaligned_s = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunResult &r = outcomes[i].result;
        t.row();
        t.cell(r.workload);
        t.cell(r.policy);
        t.cell(std::uint64_t(writes));
        t.cell(r.seconds, 6);
        t.cell(r.consistencyFaults());
        t.cell(r.dPageFlushes());
        t.cell(r.dPagePurges());
        if (i == 0)
            aligned_s = r.seconds;
        else if (i == 1)
            unaligned_s = r.seconds;
    }
    t.print();

    std::printf("\nunaligned / aligned ratio (config F): %.0fx\n",
                unaligned_s / aligned_s);
    std::printf("paper: aligned = 'a fraction of a second', unaligned "
                "= 'over 2 minutes' (roughly 300x or more)\n");
    return shapeCheck(opt, unaligned_s > 50 * aligned_s,
                      "unaligned at least 2 orders of magnitude "
                      "slower than aligned");
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "contrived";
    s.title = "Contrived alignment microbenchmark";
    s.paperRef =
        "Wheeler & Bershad 1992, Section 2.5 (in-text experiment)";
    s.order = 60;
    s.specs = contrivedSpecs;
    s.report = contrivedReport;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("contrived", argc, argv);
}
#endif
