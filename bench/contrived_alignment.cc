/**
 * @file
 * Experiment C1 — the Section 2.5 contrived benchmark: "A single
 * thread repeatedly wrote one physical address through two virtual
 * addresses. When the virtual addresses were aligned, a loop of
 * 1,000,000 writes completed in a fraction of a second. When
 * unaligned, the loop took over 2 minutes."
 *
 * Expected shape: two or more orders of magnitude between aligned and
 * unaligned (the paper's ratio is roughly 300x).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "workload/contrived_alias.hh"

using namespace vic;
using namespace vic::bench;

int
main()
{
    banner("Contrived alignment microbenchmark",
           "Wheeler & Bershad 1992, Section 2.5 (in-text experiment)");

    // The paper's 1,000,000 writes, scaled 1:25 (the ratio is
    // preserved; multiply the times by 25 to compare absolutes).
    const std::uint32_t writes = 40000;

    Table t({"Variant", "Policy", "Writes", "Elapsed (s)",
             "Consistency faults", "D flushes", "D purges"});

    double aligned_s = 0, unaligned_s = 0;
    for (const auto &cfg :
         {PolicyConfig::configF(), PolicyConfig::configA()}) {
        for (bool aligned : {true, false}) {
            ContrivedAlias wl({aligned, writes, false});
            RunResult r = runWorkload(wl, cfg);
            checkOracle(r);
            t.row();
            t.cell(r.workload);
            t.cell(r.policy);
            t.cell(std::uint64_t(writes));
            t.cell(r.seconds, 6);
            t.cell(r.consistencyFaults());
            t.cell(r.dPageFlushes());
            t.cell(r.dPagePurges());
            if (cfg.name == PolicyConfig::configF().name) {
                (aligned ? aligned_s : unaligned_s) = r.seconds;
            }
        }
    }
    t.print();

    std::printf("\nunaligned / aligned ratio (config F): %.0fx\n",
                unaligned_s / aligned_s);
    std::printf("paper: aligned = 'a fraction of a second', unaligned "
                "= 'over 2 minutes' (roughly 300x or more)\n");
    const bool shapes_ok = unaligned_s > 50 * aligned_s;
    std::printf("SHAPE CHECK: %s (>= 2 orders of magnitude)\n",
                shapes_ok ? "PASS" : "FAIL");
    return shapes_ok ? 0 : 1;
}
