/**
 * @file
 * Ablation A2 — multiple free page lists (Section 5.1): "most (about
 * 80%) [of configuration F's purges] are due to the creation of new
 * mappings when a virtual address is assigned to a random physical
 * page from the kernel's free page list. Some of these purges could
 * be eliminated by reducing the associativity of virtual to physical
 * mappings through the use of multiple free page lists."
 *
 * Config F with the single FIFO free list versus per-colour free
 * lists, on all three workloads.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "oracle/consistency_oracle.hh"

using namespace vic;
using namespace vic::bench;

int
main()
{
    banner("Ablation: per-colour free page lists (page colouring)",
           "Wheeler & Bershad 1992, Section 5.1 (suggested "
           "optimisation)");

    PolicyConfig single = PolicyConfig::configF();
    single.name = "F, single free list";
    PolicyConfig coloured = PolicyConfig::configF();
    coloured.freeListOrg = FreePageList::Organisation::PerColour;
    coloured.name = "F, per-colour lists";

    Table t({"Program", "Policy", "Elapsed (s)", "D purges",
             "I purges", "D flushes", "Colour hits", "Colour misses"});
    bool shapes_ok = true;
    std::uint64_t purges_single = 0, purges_coloured = 0;

    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        for (const auto &cfg : {single, coloured}) {
            // The free-list hit statistics live inside the kernel, so
            // run manually rather than through runWorkload.
            Machine machine{MachineParams::hp720()};
            ConsistencyOracle oracle(machine.memory().sizeBytes());
            machine.setObserver(&oracle);
            Kernel kernel(machine, cfg);
            auto wl = paperWorkload(w);
            wl->run(kernel);

            if (oracle.violationCount() != 0) {
                std::fprintf(stderr, "FATAL: oracle violations\n");
                return 1;
            }

            t.row();
            t.cell(wl->name());
            t.cell(cfg.name);
            t.cell(machine.elapsedSeconds(), 4);
            t.cell(machine.stats().value("pmap.d_page_purges"));
            t.cell(machine.stats().value("pmap.i_page_purges"));
            t.cell(machine.stats().value("pmap.d_page_flushes"));
            t.cell(kernel.freeList().colourHits());
            t.cell(kernel.freeList().colourMisses());

            const bool is_coloured =
                cfg.freeListOrg == FreePageList::Organisation::PerColour;
            (is_coloured ? purges_coloured : purges_single) +=
                machine.stats().value("pmap.d_page_purges") +
                machine.stats().value("pmap.i_page_purges");
        }
    }
    t.print();
    shapes_ok = purges_coloured <= purges_single;

    std::printf("\nexpected shape: per-colour lists raise the colour "
                "hit rate and cut new-mapping purges\n");
    std::printf("SHAPE CHECK: %s (total purges %llu -> %llu)\n",
                shapes_ok ? "PASS" : "FAIL",
                (unsigned long long)purges_single,
                (unsigned long long)purges_coloured);
    return shapes_ok ? 0 : 1;
}
