/**
 * @file
 * Ablation A2 — multiple free page lists (Section 5.1): "most (about
 * 80%) [of configuration F's purges] are due to the creation of new
 * mappings when a virtual address is assigned to a random physical
 * page from the kernel's free page list. Some of these purges could
 * be eliminated by reducing the associativity of virtual to physical
 * mappings through the use of multiple free page lists."
 *
 * Config F with the single FIFO free list versus per-colour free
 * lists, on all three workloads.
 */

#include <cstdio>

#include "bench/suites.hh"
#include "common/table.hh"

namespace vic::bench
{
namespace
{

PolicyConfig
singleList()
{
    PolicyConfig single = PolicyConfig::configF();
    single.name = "F, single free list";
    return single;
}

PolicyConfig
colouredLists()
{
    PolicyConfig coloured = PolicyConfig::configF();
    coloured.freeListOrg = FreePageList::Organisation::PerColour;
    coloured.name = "F, per-colour lists";
    return coloured;
}

std::vector<RunSpec>
pageColorSpecs(const SuiteOptions &opt)
{
    std::vector<RunSpec> specs;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        specs.push_back(paperSpec("page-color", w, singleList(), opt,
                                  MachineParams::hp720(), "single"));
        specs.push_back(paperSpec("page-color", w, colouredLists(),
                                  opt, MachineParams::hp720(),
                                  "coloured"));
    }
    return specs;
}

bool
pageColorReport(const SuiteOptions &opt,
                const std::vector<RunOutcome> &outcomes)
{
    Table t({"Program", "Policy", "Elapsed (s)", "D purges",
             "I purges", "D flushes", "Colour hits", "Colour misses"});
    std::uint64_t purges_single = 0, purges_coloured = 0;

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunResult &r = outcomes[i].result;
        t.row();
        t.cell(r.workload);
        t.cell(r.policy);
        t.cell(r.seconds, 4);
        t.cell(r.dPagePurges());
        t.cell(r.iPagePurges());
        t.cell(r.dPageFlushes());
        t.cell(r.stat("os.freelist.colour_hits"));
        t.cell(r.stat("os.freelist.colour_misses"));

        // Spec order alternates single, coloured per workload.
        (i % 2 ? purges_coloured : purges_single) +=
            r.dPagePurges() + r.iPagePurges();
    }
    t.print();
    const bool shapes_ok = purges_coloured <= purges_single;

    std::printf("\nexpected shape: per-colour lists raise the colour "
                "hit rate and cut new-mapping purges\n");
    std::printf("total purges: %llu (single) -> %llu (per-colour)\n",
                (unsigned long long)purges_single,
                (unsigned long long)purges_coloured);
    return shapeCheck(opt, shapes_ok,
                      "per-colour free lists do not increase total "
                      "purges");
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "page-color";
    s.title = "Ablation: per-colour free page lists (page colouring)";
    s.paperRef = "Wheeler & Bershad 1992, Section 5.1 (suggested "
                 "optimisation)";
    s.order = 80;
    s.specs = pageColorSpecs;
    s.report = pageColorReport;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("page-color", argc, argv);
}
#endif
