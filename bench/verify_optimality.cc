/**
 * @file
 * Optimality census of the cost-aware static analyzers.
 *
 * For every shipping policy: the cost annotation of the reachable
 * transition graph (worst single-step and worst minimal-trace-path
 * consistency cost, op census split present/absent) and the
 * per-operation necessity verdicts (how many issued ops are provably
 * load-bearing vs provably redundant). The eager strategies burn most
 * of their ops on absent lines — statically derived waste that
 * mirrors what the simulated Tables 1-2 measure dynamically — while
 * the shipped lazy policies issue exclusively necessary ops.
 *
 * Ends with the Utah-vs-CMU differential: per-Table-2-transition-class
 * worst-case bounds from the product construction.
 */

#include <cstdio>
#include <vector>

#include "core/policy_config.hh"
#include "verify/cost_model.hh"
#include "verify/differential.hh"
#include "verify/necessity.hh"

int
main()
{
    using vic::PolicyConfig;
    namespace verify = vic::verify;

    std::vector<PolicyConfig> policies = PolicyConfig::table4Sweep();
    for (const PolicyConfig &p : PolicyConfig::table5Systems())
        policies.push_back(p);

    std::printf("%-22s %9s %9s %9s %9s %7s %10s %12s %8s\n", "policy",
                "ops", "necessary", "redundant", "absent", "sites",
                "worst-step", "worst-path", "ms");

    const verify::NecessityAnalyzer necessity;
    for (const PolicyConfig &p : policies) {
        const verify::CostCensus c = verify::runCostCensus(p);
        const verify::NecessityResult n = necessity.analyze(p);
        std::printf("%-22s %9llu %9llu %9llu %9llu %7zu %10llu "
                    "%12llu %8.1f\n",
                    p.name.c_str(),
                    static_cast<unsigned long long>(n.opsExamined),
                    static_cast<unsigned long long>(n.necessaryOps),
                    static_cast<unsigned long long>(n.redundantOps),
                    static_cast<unsigned long long>(c.absentOps),
                    n.sites.size(),
                    static_cast<unsigned long long>(c.worstStepCycles),
                    static_cast<unsigned long long>(c.worstPathCycles),
                    (c.seconds + n.seconds) * 1e3);
    }

    const verify::DifferentialAnalyzer diff;
    const verify::DiffResult d =
        diff.compare(PolicyConfig::utah(), PolicyConfig::cmu());
    std::printf("\n%s vs %s: %llu product states; %s pays/%s free on "
                "%llu transitions (converse %llu)\n"
                "worst step %llu vs %llu cyc, worst minimal path %llu "
                "vs %llu cyc\n",
                d.nameA.c_str(), d.nameB.c_str(),
                static_cast<unsigned long long>(d.productStates),
                d.nameA.c_str(), d.nameB.c_str(),
                static_cast<unsigned long long>(d.aPaysBFree),
                static_cast<unsigned long long>(d.bPaysAFree),
                static_cast<unsigned long long>(d.worstStepA),
                static_cast<unsigned long long>(d.worstStepB),
                static_cast<unsigned long long>(d.worstPathA),
                static_cast<unsigned long long>(d.worstPathB));
    std::printf("%-22s %12s %10s %10s\n", "class", "transitions",
                d.nameA.c_str(), d.nameB.c_str());
    for (const verify::DiffClassBound &c : d.classes)
        std::printf("%-22s %12llu %10llu %10llu\n", c.label.c_str(),
                    static_cast<unsigned long long>(c.transitions),
                    static_cast<unsigned long long>(c.worstA),
                    static_cast<unsigned long long>(c.worstB));
    return 0;
}
