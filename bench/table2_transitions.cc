/**
 * @file
 * Table 2 — "Cache line state transitions": prints the consistency
 * model's transition rules in the paper's layout, then validates them
 * two ways:
 *
 *  1. against the SpecExecutor by exhaustive application, and
 *  2. against the CONCRETE machine: for every (state, operation) pair
 *     a micro-scenario builds a one-line cache in the claimed state,
 *     applies the operation with the required flush/purge, and checks
 *     that no stale data is ever transferred.
 *
 * The scenarios build their own single-line caches rather than full
 * machines, so this suite contributes no engine runs; everything
 * happens in validate().
 */

#include <cstdio>

#include "bench/suites.hh"
#include "cache/cache.hh"
#include "common/table.hh"
#include "core/cache_page_state.hh"
#include "core/spec_executor.hh"
#include "mem/physical_memory.hh"

namespace vic::bench
{
namespace
{

std::string
cellText(CachePageState from, SpecTransition t)
{
    std::string s(1, cachePageStateLetter(from));
    if (t.required != RequiredOp::None) {
        s += " --";
        s += requiredOpName(t.required);
        s += "--> ";
    } else {
        s += " -> ";
    }
    s += cachePageStateLetter(t.next);
    return s;
}

/** Rebuild a one-line VIPT cache into a given model state for
 *  (va, pa) and check the operation's transition preserves data
 *  visibility. Returns the number of scenarios checked, or -1 on the
 *  first inconsistent one. */
int
validateAgainstConcreteCache()
{
    int checked = 0;
    for (CachePageState from : allCachePageStates) {
        for (MemOp op : allMemOps) {
            // Build: memory holds 100; cache line state per 'from'.
            PhysicalMemory mem(4, 4096);
            CycleClock clk;
            StatSet stats;
            CacheGeometry geo(8192, 32, 4096, 1, Indexing::Virtual);
            Cache cache("c", geo, CacheCosts{}, WritePolicy::WriteBack,
                        mem, clk, stats);
            const VirtAddr va(0);       // colour 0
            const VirtAddr alias(4096); // colour 1, same physical line
            const PhysAddr pa(8192);

            mem.writeWord(pa, 100);
            std::uint32_t newest = 100;
            switch (from) {
              case CachePageState::Empty:
                break;
              case CachePageState::Present:
                cache.read(va, pa);
                break;
              case CachePageState::Dirty:
                cache.write(va, pa, 200);
                newest = 200;
                break;
              case CachePageState::Stale:
                // Cached at va, then overwritten via the alias, whose
                // dirty line is flushed: memory is newer than va's.
                cache.read(va, pa);
                cache.write(alias, pa, 300);
                cache.flushLine(alias, pa);
                newest = 300;
                break;
            }

            // Apply the required operation, then the event itself,
            // and verify the consumer sees the newest value.
            SpecTransition t = targetTransition(from, op);
            if (t.required == RequiredOp::Flush)
                cache.flushLine(va, pa);
            else if (t.required == RequiredOp::Purge)
                cache.purgeLine(va, pa);

            switch (op) {
              case MemOp::CpuRead: {
                  std::uint32_t got = cache.read(va, pa);
                  if (got != newest) {
                      std::fprintf(stderr,
                                   "FAIL %s from %s: read %u want %u\n",
                                   memOpName(op),
                                   cachePageStateName(from), got,
                                   newest);
                      return -1;
                  }
                  break;
              }
              case MemOp::CpuWrite:
                  cache.write(va, pa, 400);
                  if (cache.read(va, pa) != 400) {
                      std::fprintf(stderr, "FAIL write-read\n");
                      return -1;
                  }
                  break;
              case MemOp::DmaRead: {
                  // Device reads memory; after the required flush it
                  // must see the newest data.
                  if (mem.readWord(pa) != newest) {
                      std::fprintf(stderr,
                                   "FAIL DMA-read from %s: mem %u "
                                   "want %u\n",
                                   cachePageStateName(from),
                                   mem.readWord(pa), newest);
                      return -1;
                  }
                  break;
              }
              case MemOp::DmaWrite: {
                  mem.writeWord(pa, 500);
                  // After the event the spec says the line is empty
                  // or stale; a purge makes the new data visible.
                  cache.purgeLine(va, pa);
                  if (cache.read(va, pa) != 500) {
                      std::fprintf(stderr, "FAIL DMA-write refetch\n");
                      return -1;
                  }
                  break;
              }
              case MemOp::Purge:
                  cache.purgeLine(va, pa);
                  break;
              case MemOp::Flush:
                  cache.flushLine(va, pa);
                  if (from == CachePageState::Dirty &&
                      mem.readWord(pa) != newest) {
                      std::fprintf(stderr, "FAIL flush write-back\n");
                      return -1;
                  }
                  break;
            }
            ++checked;
        }
    }
    return checked;
}

bool
table2Validate(const SuiteOptions &)
{
    Table t({"Operation", "Target cache line",
             "Similarly mapped, unaligned lines"});
    for (MemOp op : allMemOps) {
        bool first = true;
        for (CachePageState s : allCachePageStates) {
            t.row();
            t.cell(first ? std::string(memOpName(op)) : std::string());
            t.cell(cellText(s, targetTransition(s, op)));
            t.cell(cellText(s, otherTransition(s, op)));
            first = false;
        }
    }
    t.print();

    // Validation 1: the SpecExecutor's invariant over deep random use
    // is covered by the test suite; here we replay the paper's
    // running example.
    SpecExecutor spec(2);
    spec.apply(MemOp::CpuWrite, 0);
    auto ops = spec.apply(MemOp::CpuRead, 1);
    std::printf("\nexample: write colour 0 then read colour 1 -> "
                "%zu required op(s): %s of colour %u\n",
                ops.size(), requiredOpName(ops[0].op), ops[0].colour);

    // Validation 2: concrete cache scenarios.
    int n = validateAgainstConcreteCache();
    if (n < 0)
        return false;
    std::printf("validated %d (state x operation) scenarios against "
                "the concrete cache simulator: all consistent\n", n);
    return true;
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "table2";
    s.title = "Table 2: cache line state transitions";
    s.paperRef = "Wheeler & Bershad 1992, Table 2 (Section 3.2)";
    s.order = 20;
    s.specs = [](const SuiteOptions &) {
        return std::vector<RunSpec>{};
    };
    s.validate = table2Validate;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("table2", argc, argv);
}
#endif
