/**
 * @file
 * Ablation A4 — cache geometry sweep.
 *
 * The consistency problem's size is the number of cache pages
 * ("colours" = set span / page size). The paper's introduction frames
 * the architectural trade: a larger direct-mapped virtually indexed
 * cache buys cycle time but grows the colour count, and hence the
 * potential consistency work; shrinking the span to the page size
 * (small cache or high associativity) eliminates the problem but costs
 * capacity/conflict misses.
 *
 * This bench sweeps the data/instruction cache size from 4 KB
 * (1 colour — no aliasing problem) to 256 KB (64 colours, the real
 * 720's data cache) under configs A and F, reporting elapsed time,
 * cache hit rate, and consistency operations.
 */

#include <cstdio>

#include "bench/suites.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace vic::bench
{
namespace
{

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kSizes[] = {4 * kKiB, 16 * kKiB, 64 * kKiB,
                                    256 * kKiB};
constexpr std::size_t kNumSizes = std::size(kSizes);

MachineParams
geometryParams(std::uint64_t size)
{
    MachineParams mp = MachineParams::hp720();
    mp.dcacheBytes = size;
    mp.icacheBytes = size;
    return mp;
}

std::vector<RunSpec>
geometrySpecs(const SuiteOptions &opt)
{
    std::vector<RunSpec> specs;
    for (const auto &cfg :
         {PolicyConfig::configA(), PolicyConfig::configF()}) {
        for (std::uint64_t size : kSizes) {
            // Workload 2 is kernel-build.
            specs.push_back(paperSpec(
                "geometry", 2, cfg, opt, geometryParams(size),
                format("%lluKB", (unsigned long long)(size / kKiB))));
        }
    }
    return specs;
}

bool
geometryReport(const SuiteOptions &opt,
               const std::vector<RunOutcome> &outcomes)
{
    bool shapes_ok = true;
    for (std::size_t c = 0; c < 2; ++c) {
        Table t({"D-cache", "Colours", "Elapsed (s)", "Hit rate %",
                 "Cons faults", "D flushes", "D purges"});
        std::string policy;
        for (std::size_t i = 0; i < kNumSizes; ++i) {
            const std::uint64_t size = kSizes[i];
            const MachineParams mp = geometryParams(size);
            const RunResult &r = outcomes[c * kNumSizes + i].result;
            policy = r.policy;

            const double hits = double(r.stat("dcache.hits"));
            const double misses = double(r.stat("dcache.misses"));

            t.row();
            t.cell(format("%llu KB",
                          (unsigned long long)(size / kKiB)));
            t.cell(std::uint64_t(mp.dcacheGeometry().numColours()));
            t.cell(r.seconds, 4);
            t.cell(100.0 * hits / (hits + misses), 2);
            t.cell(r.consistencyFaults());
            t.cell(r.dPageFlushes());
            t.cell(r.dPagePurges());

            if (mp.dcacheGeometry().numColours() == 1)
                shapes_ok &= r.stat("pmap.d_flush.alias") == 0 &&
                             r.stat("pmap.d_purge.alias") == 0;
        }
        std::printf("--- kernel-build under %s ---\n", policy.c_str());
        t.print();
        std::printf("\n");
    }

    std::printf("expected shapes:\n");
    std::printf("  1 colour  -> no alias consistency work at all, but "
                "the worst hit rate;\n");
    std::printf("  more colours -> better hit rates; under A the "
                "consistency work grows with\n");
    std::printf("  sharing opportunities, under F it stays almost "
                "flat — the paper's point\n");
    std::printf("  that careful management removes the software "
                "penalty of big VI caches.\n");
    return shapeCheck(opt, shapes_ok,
                      "one colour => no alias operations");
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "geometry";
    s.title = "Ablation: cache size / colour count sweep";
    s.paperRef = "Wheeler & Bershad 1992, Section 1 (the "
                 "architectural trade-off)";
    s.order = 100;
    s.specs = geometrySpecs;
    s.report = geometryReport;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("geometry", argc, argv);
}
#endif
