/**
 * @file
 * Ablation A4 — cache geometry sweep.
 *
 * The consistency problem's size is the number of cache pages
 * ("colours" = set span / page size). The paper's introduction frames
 * the architectural trade: a larger direct-mapped virtually indexed
 * cache buys cycle time but grows the colour count, and hence the
 * potential consistency work; shrinking the span to the page size
 * (small cache or high associativity) eliminates the problem but costs
 * capacity/conflict misses.
 *
 * This bench sweeps the data/instruction cache size from 4 KB
 * (1 colour — no aliasing problem) to 256 KB (64 colours, the real
 * 720's data cache) under configs A and F, reporting elapsed time,
 * cache hit rate, and consistency operations.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"

using namespace vic;
using namespace vic::bench;

int
main()
{
    banner("Ablation: cache size / colour count sweep",
           "Wheeler & Bershad 1992, Section 1 (the architectural "
           "trade-off)");

    const std::uint64_t kib = 1024;
    const std::uint64_t sizes[] = {4 * kib, 16 * kib, 64 * kib,
                                   256 * kib};

    bool shapes_ok = true;
    for (const auto &cfg :
         {PolicyConfig::configA(), PolicyConfig::configF()}) {
        Table t({"D-cache", "Colours", "Elapsed (s)", "Hit rate %",
                 "Cons faults", "D flushes", "D purges"});
        for (std::uint64_t size : sizes) {
            MachineParams mp = MachineParams::hp720();
            mp.dcacheBytes = size;
            mp.icacheBytes = size;

            KernelBuild wl;
            RunResult r = runWorkload(wl, cfg, mp);
            checkOracle(r);

            const double hits = double(r.stat("dcache.hits"));
            const double misses = double(r.stat("dcache.misses"));

            t.row();
            t.cell(format("%llu KB", (unsigned long long)(size / kib)));
            t.cell(std::uint64_t(mp.dcacheGeometry().numColours()));
            t.cell(r.seconds, 4);
            t.cell(100.0 * hits / (hits + misses), 2);
            t.cell(r.consistencyFaults());
            t.cell(r.dPageFlushes());
            t.cell(r.dPagePurges());

            if (mp.dcacheGeometry().numColours() == 1)
                shapes_ok &= r.stat("pmap.d_flush.alias") == 0 &&
                             r.stat("pmap.d_purge.alias") == 0;
        }
        std::printf("--- kernel-build under %s ---\n", cfg.name.c_str());
        t.print();
        std::printf("\n");
    }

    std::printf("expected shapes:\n");
    std::printf("  1 colour  -> no alias consistency work at all, but "
                "the worst hit rate;\n");
    std::printf("  more colours -> better hit rates; under A the "
                "consistency work grows with\n");
    std::printf("  sharing opportunities, under F it stays almost "
                "flat — the paper's point\n");
    std::printf("  that careful management removes the software "
                "penalty of big VI caches.\n");
    std::printf("SHAPE CHECK: %s (one colour => no alias "
                "operations)\n", shapes_ok ? "PASS" : "FAIL");
    return shapes_ok ? 0 : 1;
}
