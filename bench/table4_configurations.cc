/**
 * @file
 * Table 4 — "Performance of three benchmark programs using variously
 * configured versions of Mach 3.0": the six cumulative configurations
 *
 *   A old, B +lazy unmap, C +align pages, D +aligned prepare,
 *   E +need data, F +will overwrite
 *
 * against afs-bench, latex-paper and kernel-build, reporting elapsed
 * time, mapping/consistency faults, page flushes (total, DMA-read,
 * data->instruction), page purges (D and I, DMA-write), and average
 * cycles per flush/purge — plus the paper's Section 5.1 summary
 * numbers for configuration F.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace vic;
using namespace vic::bench;

namespace
{

double
avgCycles(const RunResult &r, const char *cycles, std::uint64_t count)
{
    return count == 0 ? 0.0 : double(r.stat(cycles)) / double(count);
}

} // anonymous namespace

int
main()
{
    banner("Table 4: the six consistency-management configurations",
           "Wheeler & Bershad 1992, Table 4 (Section 5)");

    const auto configs = PolicyConfig::table4Sweep();

    // Keep results for the totals row and the Section 5.1 analysis.
    std::vector<RunResult> config_f;
    bool shapes_ok = true;

    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        std::string wname;
        Table t({"Config", "Elapsed (s)", "Map faults", "Cons faults",
                 "D flushes", "DMA-rd flushes", "D->I flushes",
                 "D purges", "I purges", "DMA-wr purges",
                 "cyc/flush", "cyc/purge"});
        std::vector<RunResult> per_config;
        for (const auto &cfg : configs) {
            auto wl = paperWorkload(w);
            wname = wl->name();
            RunResult r = runWorkload(*wl, cfg);
            checkOracle(r);
            per_config.push_back(r);

            const std::uint64_t flush_ops =
                r.stat("dcache.flush_present") +
                r.stat("dcache.flush_absent");
            const std::uint64_t purge_ops =
                r.stat("dcache.purge_present") +
                r.stat("dcache.purge_absent");

            t.row();
            t.cell(r.policy);
            t.cell(r.seconds, 4);
            t.cell(r.mappingFaults());
            t.cell(r.consistencyFaults());
            t.cell(r.dPageFlushes());
            t.cell(r.dmaReadFlushes());
            t.cell(r.stat("pmap.d_flush.ifetch"));
            t.cell(r.dPagePurges());
            t.cell(r.iPagePurges());
            t.cell(r.dmaWritePurges() +
                   r.stat("pmap.i_purge.dma_write"));
            t.cell(avgCycles(r, "dcache.flush_cycles", flush_ops), 1);
            t.cell(avgCycles(r, "dcache.purge_cycles", purge_ops), 1);

            if (&cfg == &configs.back())
                config_f.push_back(r);
        }
        std::printf("--- %s ---\n", wname.c_str());
        t.print();
        std::printf("\n");

        // The paper's structural claims for this workload.
        for (std::size_t i = 1; i < per_config.size(); ++i) {
            shapes_ok &= per_config[i].cycles <=
                         per_config[i - 1].cycles;  // monotone A->F
            shapes_ok &= per_config[i].mappingFaults() ==
                         per_config[0].mappingFaults();
        }
        shapes_ok &= per_config.back().consistencyFaults() * 4 <
                     per_config.front().consistencyFaults() + 4;
    }

    // Totals for configuration F (the paper's bottom rows + the
    // Section 5.1 overhead accounting).
    std::uint64_t flushes = 0, purges_d = 0, purges_i = 0;
    std::uint64_t dma_rd = 0, d2i = 0, dma_wr = 0;
    std::uint64_t cons_faults = 0;
    double seconds = 0;
    Cycles purge_cycles = 0, nondma_purge_pages = 0;
    for (const auto &r : config_f) {
        flushes += r.dPageFlushes();
        purges_d += r.dPagePurges();
        purges_i += r.iPagePurges();
        dma_rd += r.dmaReadFlushes();
        d2i += r.stat("pmap.d_flush.ifetch");
        dma_wr += r.dmaWritePurges();
        cons_faults += r.consistencyFaults();
        seconds += r.seconds;
        purge_cycles += r.stat("dcache.purge_cycles");
        nondma_purge_pages += r.dPagePurges() - r.dmaWritePurges();
    }
    (void)nondma_purge_pages;

    std::printf("=== configuration F totals across the three "
                "benchmarks ===\n");
    std::printf("elapsed time              : %.4f s\n", seconds);
    std::printf("page flushes (D)          : %llu  (DMA-read %llu + "
                "data->instruction %llu)\n",
                (unsigned long long)flushes,
                (unsigned long long)dma_rd, (unsigned long long)d2i);
    if (flushes == dma_rd + d2i) {
        std::printf("  -> matches the paper's identity: flushes = "
                    "DMA-read flushes + D->I copies\n");
    } else {
        shapes_ok = false;
    }
    std::printf("page purges (D+I)         : %llu  (DMA-write %llu = "
                "%.1f%%)\n",
                (unsigned long long)(purges_d + purges_i),
                (unsigned long long)dma_wr,
                purges_d + purges_i
                    ? 100.0 * double(dma_wr) / double(purges_d + purges_i)
                    : 0.0);
    std::printf("consistency faults        : %llu\n",
                (unsigned long long)cons_faults);
    std::printf("time purging data cache   : %.4f s (%.2f%% of total) "
                "-- the paper: 1.50 s = 0.22%%\n",
                double(purge_cycles) / 50e6,
                100.0 * double(purge_cycles) / 50e6 / seconds);
    std::printf("SHAPE CHECK: %s (monotone A->F, constant mapping "
                "faults, collapsing consistency faults,\n"
                "             config-F flush identity)\n",
                shapes_ok ? "PASS" : "FAIL");
    return shapes_ok ? 0 : 1;
}
