/**
 * @file
 * Table 4 — "Performance of three benchmark programs using variously
 * configured versions of Mach 3.0": the six cumulative configurations
 *
 *   A old, B +lazy unmap, C +align pages, D +aligned prepare,
 *   E +need data, F +will overwrite
 *
 * against afs-bench, latex-paper and kernel-build, reporting elapsed
 * time, mapping/consistency faults, page flushes (total, DMA-read,
 * data->instruction), page purges (D and I, DMA-write), and average
 * cycles per flush/purge — plus the paper's Section 5.1 summary
 * numbers for configuration F.
 */

#include <cstdio>

#include "bench/suites.hh"
#include "common/table.hh"

namespace vic::bench
{
namespace
{

double
avgCycles(const RunResult &r, const char *cycles, std::uint64_t count)
{
    return count == 0 ? 0.0 : double(r.stat(cycles)) / double(count);
}

std::vector<RunSpec>
table4Specs(const SuiteOptions &opt)
{
    std::vector<RunSpec> specs;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        for (const auto &cfg : PolicyConfig::table4Sweep())
            specs.push_back(paperSpec("table4", w, cfg, opt));
    }
    return specs;
}

bool
table4Report(const SuiteOptions &opt,
             const std::vector<RunOutcome> &outcomes)
{
    const std::size_t num_configs =
        outcomes.size() / numPaperWorkloads;

    // Keep results for the totals row and the Section 5.1 analysis.
    std::vector<RunResult> config_f;
    bool shapes_ok = true;

    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        Table t({"Config", "Elapsed (s)", "Map faults", "Cons faults",
                 "D flushes", "DMA-rd flushes", "D->I flushes",
                 "D purges", "I purges", "DMA-wr purges",
                 "cyc/flush", "cyc/purge"});
        std::vector<RunResult> per_config;
        for (std::size_t c = 0; c < num_configs; ++c) {
            const RunResult &r =
                outcomes[w * num_configs + c].result;
            per_config.push_back(r);

            const std::uint64_t flush_ops =
                r.stat("dcache.flush_present") +
                r.stat("dcache.flush_absent");
            const std::uint64_t purge_ops =
                r.stat("dcache.purge_present") +
                r.stat("dcache.purge_absent");

            t.row();
            t.cell(r.policy);
            t.cell(r.seconds, 4);
            t.cell(r.mappingFaults());
            t.cell(r.consistencyFaults());
            t.cell(r.dPageFlushes());
            t.cell(r.dmaReadFlushes());
            t.cell(r.stat("pmap.d_flush.ifetch"));
            t.cell(r.dPagePurges());
            t.cell(r.iPagePurges());
            t.cell(r.dmaWritePurges() +
                   r.stat("pmap.i_purge.dma_write"));
            t.cell(avgCycles(r, "dcache.flush_cycles", flush_ops), 1);
            t.cell(avgCycles(r, "dcache.purge_cycles", purge_ops), 1);

            if (c + 1 == num_configs)
                config_f.push_back(r);
        }
        std::printf("--- %s ---\n",
                    per_config.front().workload.c_str());
        t.print();
        std::printf("\n");

        // The paper's structural claims for this workload.
        for (std::size_t i = 1; i < per_config.size(); ++i) {
            shapes_ok &= per_config[i].cycles <=
                         per_config[i - 1].cycles;  // monotone A->F
            shapes_ok &= per_config[i].mappingFaults() ==
                         per_config[0].mappingFaults();
        }
        shapes_ok &= per_config.back().consistencyFaults() * 4 <
                     per_config.front().consistencyFaults() + 4;
    }

    // Totals for configuration F (the paper's bottom rows + the
    // Section 5.1 overhead accounting).
    std::uint64_t flushes = 0, purges_d = 0, purges_i = 0;
    std::uint64_t dma_rd = 0, d2i = 0, dma_wr = 0;
    std::uint64_t cons_faults = 0;
    double seconds = 0;
    Cycles purge_cycles = 0;
    for (const auto &r : config_f) {
        flushes += r.dPageFlushes();
        purges_d += r.dPagePurges();
        purges_i += r.iPagePurges();
        dma_rd += r.dmaReadFlushes();
        d2i += r.stat("pmap.d_flush.ifetch");
        dma_wr += r.dmaWritePurges();
        cons_faults += r.consistencyFaults();
        seconds += r.seconds;
        purge_cycles += r.stat("dcache.purge_cycles");
    }

    std::printf("=== configuration F totals across the three "
                "benchmarks ===\n");
    std::printf("elapsed time              : %.4f s\n", seconds);
    std::printf("page flushes (D)          : %llu  (DMA-read %llu + "
                "data->instruction %llu)\n",
                (unsigned long long)flushes,
                (unsigned long long)dma_rd, (unsigned long long)d2i);
    if (flushes == dma_rd + d2i) {
        std::printf("  -> matches the paper's identity: flushes = "
                    "DMA-read flushes + D->I copies\n");
    } else {
        shapes_ok = false;
    }
    std::printf("page purges (D+I)         : %llu  (DMA-write %llu = "
                "%.1f%%)\n",
                (unsigned long long)(purges_d + purges_i),
                (unsigned long long)dma_wr,
                purges_d + purges_i
                    ? 100.0 * double(dma_wr) / double(purges_d + purges_i)
                    : 0.0);
    std::printf("consistency faults        : %llu\n",
                (unsigned long long)cons_faults);
    std::printf("time purging data cache   : %.4f s (%.2f%% of total) "
                "-- the paper: 1.50 s = 0.22%%\n",
                double(purge_cycles) / 50e6,
                100.0 * double(purge_cycles) / 50e6 / seconds);
    return shapeCheck(opt, shapes_ok,
                      "monotone A->F, constant mapping faults, "
                      "collapsing consistency faults, config-F flush "
                      "identity");
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "table4";
    s.title = "Table 4: the six consistency-management configurations";
    s.paperRef = "Wheeler & Bershad 1992, Table 4 (Section 5)";
    s.order = 40;
    s.specs = table4Specs;
    s.report = table4Report;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("table4", argc, argv);
}
#endif
