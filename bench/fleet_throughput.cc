/**
 * @file
 * Fleet throughput: multi-replica runs of the paper workloads,
 * exercising the intra-run shard path (--shards) end to end.
 *
 * Each run executes several replicas of one workload — independent
 * simulations with SplitMix64-expanded seeds — merged into a single
 * RunResult in replica order (shard_runner.hh). Under --shards N the
 * replicas spread across N host threads; the merged artifact entry is
 * byte-identical either way, which validate() proves directly by
 * running one spec at --shards 1 and --shards 3 and comparing the
 * serialised results.
 *
 * This is also the suite the throughput ratchet watches most closely:
 * its runs carry the largest sim_cycles per artifact entry, so a
 * hot-path regression (cache probe, translate walk, arena churn)
 * moves its cycles_per_host_second first.
 */

#include <cstdio>

#include "bench/suites.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace vic::bench
{
namespace
{

std::uint32_t
fleetReplicas(const SuiteOptions &opt)
{
    return opt.smoke ? 4 : 8;
}

std::vector<RunSpec>
fleetSpecs(const SuiteOptions &opt)
{
    const std::uint32_t replicas = fleetReplicas(opt);
    std::vector<RunSpec> specs;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        RunSpec spec = paperSpec("fleet", w, PolicyConfig::configF(),
                                 opt, MachineParams::hp720(),
                                 format("r%u", replicas));
        spec.replicaCount = replicas;
        specs.push_back(std::move(spec));
    }
    return specs;
}

bool
fleetReport(const SuiteOptions &opt,
            const std::vector<RunOutcome> &outcomes)
{
    Table t({"Workload", "Replicas", "Merged cycles", "Sim seconds",
             "Oracle checked"});
    bool merged_scale = true;
    for (const RunOutcome &out : outcomes) {
        const RunResult &r = out.result;
        t.row();
        t.cell(r.workload);
        t.cell(std::uint64_t(out.replicaCount));
        t.cell(std::uint64_t(r.cycles));
        t.cell(r.seconds, 4);
        t.cell(r.oracleChecked);
        // A merged run must aggregate MORE work than any single
        // replica could: every replica contributes nonzero cycles and
        // oracle coverage, so the merged totals exceed the replica
        // count.
        merged_scale &= out.replicaCount > 1 &&
                        std::uint64_t(r.cycles) > out.replicaCount &&
                        r.oracleChecked >= out.replicaCount;
    }
    t.print();
    std::printf("\n");

    bool ok = outcomesClean(outcomes);
    ok &= shapeCheck(opt, merged_scale,
                     "every fleet run merges multiple nonzero-work "
                     "replicas");
    return ok;
}

/** Prove shard-count independence on a live spec: the merged result
 *  of --shards 1 and --shards 3 must serialise identically. Always at
 *  smoke scale — this is a determinism proof, not a perf probe. */
bool
fleetValidate(const SuiteOptions &)
{
    SuiteOptions smoke;
    smoke.smoke = true;
    RunSpec spec = paperSpec("fleet", 0, PolicyConfig::configF(),
                             smoke, MachineParams::hp720(), "probe");
    spec.replicaCount = 3;

    const RunOutcome serial = ExperimentEngine::runOne(spec, 1);
    const RunOutcome sharded = ExperimentEngine::runOne(spec, 3);
    const bool clean = serial.ok && sharded.ok;
    const bool identical =
        clean && runResultToJson(serial.result).dump() ==
                     runResultToJson(sharded.result).dump();
    std::printf("SHARD CHECK: %s (3-replica merge, --shards 1 vs 3)\n",
                identical ? "PASS" : "FAIL");
    return identical;
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "fleet";
    s.title = "Fleet throughput: sharded multi-replica paper "
              "workloads";
    s.paperRef = "Wheeler & Bershad 1992, Section 6 methodology "
                 "(replicated runs)";
    s.order = 60;
    s.specs = fleetSpecs;
    s.report = fleetReport;
    s.validate = fleetValidate;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("fleet", argc, argv);
}
#endif
