/**
 * @file
 * Shared helpers for the bench binaries: the three paper workloads at
 * their calibrated sizes, and common report formatting.
 */

#ifndef VIC_BENCH_BENCH_UTIL_HH
#define VIC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "workload/afs_bench.hh"
#include "workload/contrived_alias.hh"
#include "workload/kernel_build.hh"
#include "workload/latex_bench.hh"
#include "workload/runner.hh"

namespace vic::bench
{

/** The three benchmark programs of the paper's evaluation, at the
 *  calibrated scale (Table 1 gains of 5-10%). */
inline std::vector<std::unique_ptr<Workload>>
paperWorkloads()
{
    std::vector<std::unique_ptr<Workload>> out;
    out.push_back(std::make_unique<AfsBench>());
    out.push_back(std::make_unique<LatexBench>());
    out.push_back(std::make_unique<KernelBuild>());
    return out;
}

/** Factory for one paper workload by index (fresh instance per run). */
inline std::unique_ptr<Workload>
paperWorkload(std::size_t idx)
{
    switch (idx) {
      case 0: return std::make_unique<AfsBench>();
      case 1: return std::make_unique<LatexBench>();
      default: return std::make_unique<KernelBuild>();
    }
}

inline constexpr std::size_t numPaperWorkloads = 3;

/** Banner for a bench binary. */
inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("machine: scaled HP 9000/720 (50 MHz, VIPT "
                "write-back D-cache)\n");
    std::printf("==============================================="
                "=====================\n\n");
}

/** Oracle verdict line; aborts the bench on violations so a broken
 *  build cannot silently print plausible numbers. */
inline void
checkOracle(const RunResult &r)
{
    if (r.oracleViolations != 0) {
        std::fprintf(stderr,
                     "FATAL: %llu consistency violations in %s/%s\n",
                     (unsigned long long)r.oracleViolations,
                     r.workload.c_str(), r.policy.c_str());
        std::exit(1);
    }
}

} // namespace vic::bench

#endif // VIC_BENCH_BENCH_UTIL_HH
