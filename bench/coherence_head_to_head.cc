/**
 * @file
 * Hardware vs software consistency, head to head (Section 7 of the
 * paper argues the software approach's costs are small enough to make
 * dedicated consistency hardware unnecessary — this suite puts a
 * number on both sides of that argument).
 *
 * Three configurations of a 2-CPU machine run the paper workloads:
 *
 *   Classic A  software consistency, eager pmap (the "old" system),
 *              MESI bus between the data caches only
 *   Lazy F     software consistency, the paper's lazy state machine,
 *              same machine
 *   HW         NO software consistency ops at all: the machine
 *              resolves every failure mode in hardware — MESI bus,
 *              instruction caches as read-only bus ports, reverse-
 *              lookup synonym self-snoops, and snooping DMA
 *
 * Each row reports the software side (flushes, purges, consistency
 * faults, flush/purge cycles) against the hardware side (bus snoop
 * cycles, synonym snoop cycles, invalidations, interventions). Shape
 * checks: every row is oracle-clean, the HW rows issue exactly zero
 * software consistency operations, and the hardware-coherent machine
 * actually pays for it in bus/snoop work.
 */

#include <cstdio>

#include "bench/suites.hh"
#include "common/table.hh"

namespace vic::bench
{
namespace
{

constexpr std::size_t numConfigs = 3;

MachineParams
mesiMachine()
{
    MachineParams p = MachineParams::hp720();
    p.numCpus = 2;
    return p; // cpuCoherence defaults to Mesi
}

MachineParams
hardwareMachine()
{
    MachineParams p = mesiMachine();
    p.synonymCoherence = true;
    p.ifetchCoherence = true;
    p.dmaSnoops = true;
    return p;
}

std::vector<RunSpec>
coherenceSpecs(const SuiteOptions &opt)
{
    std::vector<RunSpec> specs;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        specs.push_back(paperSpec("coherence", w,
                                  PolicyConfig::configA(), opt,
                                  mesiMachine(), "mesi"));
        specs.push_back(paperSpec("coherence", w,
                                  PolicyConfig::configF(), opt,
                                  mesiMachine(), "mesi"));
        specs.push_back(paperSpec("coherence", w,
                                  PolicyConfig::hardware(), opt,
                                  hardwareMachine(), "hw"));
    }
    return specs;
}

/** Software consistency cache operations the pmap issued. (The
 *  kernel's consistency-fault counter is excluded deliberately: it
 *  also classifies refaults after pageout eviction, which every
 *  architecture pays, so it is reported in the table but does not
 *  gate the zero-software-ops claim.) */
std::uint64_t
softwareOps(const RunResult &r)
{
    return r.dPageFlushes() + r.dPagePurges() + r.iPagePurges();
}

/** Cycles spent in software flush/purge across every cache. */
std::uint64_t
softwareCycles(const RunResult &r)
{
    return r.sumMatchingAny(
        {{.exact = "", .prefix = "dcache", .suffix = ".flush_cycles"},
         {.exact = "", .prefix = "dcache", .suffix = ".purge_cycles"},
         {.exact = "", .prefix = "icache", .suffix = ".flush_cycles"},
         {.exact = "", .prefix = "icache",
          .suffix = ".purge_cycles"}});
}

/** Cycles the coherence hardware charged: bus interventions plus
 *  reverse-lookup synonym self-snoops. */
std::uint64_t
hardwareCycles(const RunResult &r)
{
    return r.stat("bus.snoop_cycles") +
           r.sumMatchingAny({{.exact = "",
                              .prefix = "dcache",
                              .suffix = ".synonym_snoop_cycles"},
                             {.exact = "",
                              .prefix = "icache",
                              .suffix = ".synonym_snoop_cycles"}});
}

bool
coherenceReport(const SuiteOptions &opt,
                const std::vector<RunOutcome> &outcomes)
{
    bool hw_silent = true;  ///< HW rows issue no software op
    bool hw_active = true;  ///< HW rows exercise the hardware
    bool lazy_wins = true;  ///< F's software cycles <= A's

    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        Table t({"Config", "Elapsed (s)", "Cons faults", "D flushes",
                 "Purges", "SW cons cycles", "Bus snoop cyc",
                 "Synonym cyc", "Invalidations", "Interventions"});
        std::vector<RunResult> rows;
        for (std::size_t c = 0; c < numConfigs; ++c) {
            const RunResult &r =
                outcomes[w * numConfigs + c].result;
            rows.push_back(r);

            t.row();
            t.cell(r.policy);
            t.cell(r.seconds, 4);
            t.cell(r.consistencyFaults());
            t.cell(r.dPageFlushes());
            t.cell(r.dPagePurges() + r.iPagePurges());
            t.cell(softwareCycles(r));
            t.cell(r.stat("bus.snoop_cycles"));
            t.cell(hardwareCycles(r) - r.stat("bus.snoop_cycles"));
            t.cell(r.stat("bus.invalidations"));
            t.cell(r.stat("bus.interventions"));
        }
        std::printf("--- %s ---\n", rows.front().workload.c_str());
        t.print();
        std::printf("\n");

        const RunResult &classic = rows[0];
        const RunResult &lazy = rows[1];
        const RunResult &hw = rows[2];
        hw_silent &= softwareOps(hw) == 0 && softwareCycles(hw) == 0;
        hw_active &= hardwareCycles(hw) > 0;
        lazy_wins &= softwareCycles(lazy) <= softwareCycles(classic);
    }

    bool ok = outcomesClean(outcomes);
    ok &= shapeCheck(opt, hw_silent,
                     "hardware-coherent rows issue zero software "
                     "consistency operations");
    ok &= shapeCheck(opt, hw_active,
                     "hardware-coherent rows pay nonzero bus/synonym "
                     "snoop cycles");
    ok &= shapeCheck(opt, lazy_wins,
                     "lazy policy spends no more software consistency "
                     "cycles than classic");
    return ok;
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "coherence";
    s.title = "Hardware vs software consistency on a 2-CPU MESI "
              "machine";
    s.paperRef = "Wheeler & Bershad 1992, Sections 3.3 and 7";
    s.order = 55;
    s.specs = coherenceSpecs;
    s.report = coherenceReport;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("coherence", argc, argv);
}
#endif
