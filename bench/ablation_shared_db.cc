/**
 * @file
 * Ablation A5 — shared persistent data structures (Section 2.2's
 * "must deal with these aliases correctly" case).
 *
 * A database object is mapped by a server and four clients. In the
 * FIXED variant every mapping sits at an address the data structure
 * dictates (unaligned aliases are unavoidable); in the ALIGNED variant
 * the kernel picks the clients' addresses. The sweep shows:
 *
 *  - fixed addresses cost real consistency work under EVERY policy —
 *    this is the residual price of convenience the paper concedes;
 *  - the lazy CMU scheme still beats the eager one on exactly this
 *    worst case, because reads between writers of the same colour
 *    and repeated reader faults cost page ops only when the state
 *    machine says data could actually be stale;
 *  - letting the kernel choose addresses makes the whole problem
 *    disappear.
 */

#include <cstdio>

#include "bench/suites.hh"
#include "common/table.hh"
#include "workload/db_server.hh"

namespace vic::bench
{
namespace
{

std::vector<RunSpec>
sharedDbSpecs(const SuiteOptions &)
{
    std::vector<RunSpec> specs;
    for (bool fixed : {true, false}) {
        for (const auto &cfg :
             {PolicyConfig::configA(), PolicyConfig::configB(),
              PolicyConfig::configF()}) {
            RunSpec spec;
            spec.suite = "shared-db";
            spec.id = std::string("shared-db/") +
                      (fixed ? "fixed" : "aligned") + "/" +
                      policyTag(cfg);
            spec.make = [fixed] {
                DbServer::Params p;
                p.fixedAddresses = fixed;
                return std::make_unique<DbServer>(p);
            };
            spec.policy = cfg;
            spec.seed = DbServer::Params{}.seed;
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

bool
sharedDbReport(const SuiteOptions &opt,
               const std::vector<RunOutcome> &outcomes)
{
    Table t({"Variant", "Policy", "Elapsed (s)", "Cons faults",
             "D flushes", "D purges"});
    std::uint64_t fixed_f_ops = 0, aligned_f_ops = 0;

    // Spec order: fixed {A, B, F}, then aligned {A, B, F}.
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunResult &r = outcomes[i].result;
        t.row();
        t.cell(r.workload);
        t.cell(r.policy);
        t.cell(r.seconds, 4);
        t.cell(r.consistencyFaults());
        t.cell(r.dPageFlushes());
        t.cell(r.dPagePurges());
        if (i % 3 == 2) {
            (i < 3 ? fixed_f_ops : aligned_f_ops) =
                r.dPageFlushes() + r.dPagePurges();
        }
    }
    t.print();

    std::printf("\nexpected shape: fixed addresses cost consistency "
                "work under every policy (lazy F\n");
    std::printf("least); kernel-chosen aligned addresses eliminate it "
                "entirely.\n");
    std::printf("F fixed=%llu ops, F aligned=%llu ops\n",
                (unsigned long long)fixed_f_ops,
                (unsigned long long)aligned_f_ops);
    const bool shapes_ok =
        fixed_f_ops > 0 && aligned_f_ops < fixed_f_ops / 4;
    return shapeCheck(opt, shapes_ok,
                      "fixed aliases cost ops, aligned aliases "
                      "nearly none");
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "shared-db";
    s.title = "Ablation: shared persistent data structure (db-server)";
    s.paperRef = "Wheeler & Bershad 1992, Section 2.2 (fixed-address "
                 "aliases)";
    s.order = 110;
    s.specs = sharedDbSpecs;
    s.report = sharedDbReport;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("shared-db", argc, argv);
}
#endif
