/**
 * @file
 * Ablation A5 — shared persistent data structures (Section 2.2's
 * "must deal with these aliases correctly" case).
 *
 * A database object is mapped by a server and four clients. In the
 * FIXED variant every mapping sits at an address the data structure
 * dictates (unaligned aliases are unavoidable); in the ALIGNED variant
 * the kernel picks the clients' addresses. The sweep shows:
 *
 *  - fixed addresses cost real consistency work under EVERY policy —
 *    this is the residual price of convenience the paper concedes;
 *  - the lazy CMU scheme still beats the eager one on exactly this
 *    worst case, because reads between writers of the same colour
 *    and repeated reader faults cost page ops only when the state
 *    machine says data could actually be stale;
 *  - letting the kernel choose addresses makes the whole problem
 *    disappear.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "workload/db_server.hh"

using namespace vic;
using namespace vic::bench;

int
main()
{
    banner("Ablation: shared persistent data structure (db-server)",
           "Wheeler & Bershad 1992, Section 2.2 (fixed-address "
           "aliases)");

    Table t({"Variant", "Policy", "Elapsed (s)", "Cons faults",
             "D flushes", "D purges"});
    std::uint64_t fixed_f_ops = 0, aligned_f_ops = 0;

    for (bool fixed : {true, false}) {
        for (const auto &cfg :
             {PolicyConfig::configA(), PolicyConfig::configB(),
              PolicyConfig::configF()}) {
            DbServer::Params p;
            p.fixedAddresses = fixed;
            DbServer wl(p);
            RunResult r = runWorkload(wl, cfg);
            checkOracle(r);
            t.row();
            t.cell(r.workload);
            t.cell(r.policy);
            t.cell(r.seconds, 4);
            t.cell(r.consistencyFaults());
            t.cell(r.dPageFlushes());
            t.cell(r.dPagePurges());
            if (cfg.useWillOverwrite) {
                (fixed ? fixed_f_ops : aligned_f_ops) =
                    r.dPageFlushes() + r.dPagePurges();
            }
        }
    }
    t.print();

    std::printf("\nexpected shape: fixed addresses cost consistency "
                "work under every policy (lazy F\n");
    std::printf("least); kernel-chosen aligned addresses eliminate it "
                "entirely.\n");
    const bool shapes_ok =
        fixed_f_ops > 0 && aligned_f_ops < fixed_f_ops / 4;
    std::printf("SHAPE CHECK: %s (F fixed=%llu ops, F aligned=%llu)\n",
                shapes_ok ? "PASS" : "FAIL",
                (unsigned long long)fixed_f_ops,
                (unsigned long long)aligned_f_ops);
    return shapes_ok ? 0 : 1;
}
