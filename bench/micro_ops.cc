/**
 * @file
 * Experiment M1 — wall-clock microbenchmarks (google-benchmark) of the
 * primitives whose costs the paper's arguments rest on:
 *
 *  - cache hit/miss/flush/purge paths of the simulator,
 *  - the CacheControl bookkeeping (bit-vector ops, protection walk),
 *  - consistency-fault round trips,
 *  - TLB translation.
 *
 * These measure the SIMULATOR's real speed (host nanoseconds), which
 * is what bounds experiment turnaround; the simulated-cycle costs are
 * printed by the table benches.
 */

#include <benchmark/benchmark.h>

#include "common/arena.hh"
#include "common/bitvector.hh"
#include "core/classic_pmap.hh"
#include "core/lazy_pmap.hh"
#include "machine/cpu.hh"
#include "core/spec_executor.hh"
#include "machine/machine.hh"
#include "mmu/page_table.hh"

#include <unordered_map>

namespace
{

using namespace vic;

void
BM_CacheReadHit(benchmark::State &state)
{
    Machine m{MachineParams::hp720()};
    Cache &c = m.dcache();
    c.read(VirtAddr(0), PhysAddr(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(c.read(VirtAddr(0), PhysAddr(0)));
}
BENCHMARK(BM_CacheReadHit);

void
BM_CacheReadMissConflict(benchmark::State &state)
{
    Machine m{MachineParams::hp720()};
    Cache &c = m.dcache();
    bool flip = false;
    for (auto _ : state) {
        // Two physical lines fighting over one set: every read misses.
        benchmark::DoNotOptimize(
            c.read(VirtAddr(0), PhysAddr(flip ? 0 : 64 * 1024)));
        flip = !flip;
    }
}
BENCHMARK(BM_CacheReadMissConflict);

void
BM_CacheFlushAbsentLine(benchmark::State &state)
{
    Machine m{MachineParams::hp720()};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            m.dcache().flushLine(VirtAddr(4096), PhysAddr(4096)));
}
BENCHMARK(BM_CacheFlushAbsentLine);

void
BM_CachePurgePage(benchmark::State &state)
{
    Machine m{MachineParams::hp720()};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            m.dcache().purgePage(VirtAddr(0), PhysAddr(0)));
}
BENCHMARK(BM_CachePurgePage);

void
BM_BitVectorStaleUpdate(benchmark::State &state)
{
    // The hot bookkeeping of Figure 1's fourth stanza: or-and-clear of
    // the mapped/stale vectors.
    BitVector mapped(std::uint32_t(state.range(0)));
    BitVector stale(std::uint32_t(state.range(0)));
    mapped.set(3);
    for (auto _ : state) {
        stale.orWith(mapped);
        mapped.clearAll();
        mapped.set(3);
        benchmark::DoNotOptimize(stale.count());
    }
}
BENCHMARK(BM_BitVectorStaleUpdate)->Arg(16)->Arg(64)->Arg(256);

void
BM_CacheTagProbeHit(benchmark::State &state)
{
    // The SoA tag probe in isolation: a 2-way geometry so findWay()
    // walks more than one way-slot per probe. Layout regressions in
    // the column store (cache.hh) surface here before any workload
    // notices.
    MachineParams p = MachineParams::hp720();
    p.dcacheWays = 2;
    Machine m{p};
    Cache &c = m.dcache();
    c.read(VirtAddr(0), PhysAddr(0));
    c.read(VirtAddr(64 * 1024), PhysAddr(64 * 1024));
    bool flip = false;
    for (auto _ : state) {
        // Both lines stay resident in the two ways: every read is a
        // pure probe-hit, alternating the matching way.
        benchmark::DoNotOptimize(
            flip ? c.read(VirtAddr(64 * 1024), PhysAddr(64 * 1024))
                 : c.read(VirtAddr(0), PhysAddr(0)));
        flip = !flip;
    }
}
BENCHMARK(BM_CacheTagProbeHit);

void
BM_ArenaAllocRelease(benchmark::State &state)
{
    // Steady-state arena churn: after warm-up every alloc() pops the
    // slot the previous release() pushed — the page-table's
    // enter/remove pattern under mapping turnover.
    struct Rec
    {
        std::uint64_t a = 0, b = 0;
    };
    Arena<Rec> arena;
    for (auto _ : state) {
        Rec *r = arena.alloc();
        benchmark::DoNotOptimize(r);
        arena.release(r);
    }
}
BENCHMARK(BM_ArenaAllocRelease);

void
BM_PageTableEnterRemove(benchmark::State &state)
{
    // One mapping-turnover round trip through the arena-backed
    // separate-chaining table (enter + remove on a warm table).
    PageTable pt(4096);
    for (std::uint32_t i = 0; i < 64; ++i)
        pt.enter(SpaceVa(1, VirtAddr(i * 4096)), i,
                 Protection::readWrite());
    for (auto _ : state) {
        pt.enter(SpaceVa(2, VirtAddr(0x10000)), 99,
                 Protection::readWrite());
        benchmark::DoNotOptimize(pt.remove(SpaceVa(2, VirtAddr(0x10000))));
    }
}
BENCHMARK(BM_PageTableEnterRemove);

void
BM_TlbTranslateHit(benchmark::State &state)
{
    Machine m{MachineParams::hp720()};
    m.pageTable().enter(SpaceVa(1, VirtAddr(0x1000)), 2,
                        Protection::readWrite());
    m.tlb().translate(SpaceVa(1, VirtAddr(0x1000)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            m.tlb().translate(SpaceVa(1, VirtAddr(0x1000))));
    }
}
BENCHMARK(BM_TlbTranslateHit);

void
BM_CpuStoreHit(benchmark::State &state)
{
    Machine m{MachineParams::hp720()};
    LazyPmap pmap(m, PolicyConfig::configF());
    Cpu cpu(m);
    cpu.setSpace(1);
    cpu.setFaultHandler([&](const Fault &f) {
        return pmap.resolveConsistencyFault(f.address, f.access);
    });
    pmap.enter(SpaceVa(1, VirtAddr(0x1000)), 2, Protection::all(),
               AccessType::Store, {});
    cpu.store(VirtAddr(0x1000), 1);
    std::uint32_t v = 0;
    for (auto _ : state)
        cpu.store(VirtAddr(0x1000), ++v);
}
BENCHMARK(BM_CpuStoreHit);

void
BM_ConsistencyFaultRoundTrip(benchmark::State &state)
{
    // The full cost of one alias ping-pong step: trap + CacheControl
    // (flush + purge + protection walk) + retry.
    Machine m{MachineParams::hp720()};
    LazyPmap pmap(m, PolicyConfig::configF());
    Cpu cpu(m);
    cpu.setSpace(1);
    cpu.setFaultHandler([&](const Fault &f) {
        return pmap.resolveConsistencyFault(f.address, f.access);
    });
    pmap.enter(SpaceVa(1, VirtAddr(0x1000)), 2, Protection::all(),
               AccessType::Store, {});
    pmap.enter(SpaceVa(1, VirtAddr(0x2000)), 2, Protection::all(),
               AccessType::Load, {});
    bool flip = false;
    for (auto _ : state) {
        cpu.store(flip ? VirtAddr(0x1000) : VirtAddr(0x2000), 1);
        flip = !flip;
    }
}
BENCHMARK(BM_ConsistencyFaultRoundTrip);

void
BM_CacheControlDmaRead(benchmark::State &state)
{
    Machine m{MachineParams::hp720()};
    LazyPmap pmap(m, PolicyConfig::configF());
    for (auto _ : state)
        pmap.dmaRead(2, true);
}
BENCHMARK(BM_CacheControlDmaRead);

void
BM_ClassicBreakAliasRoundTrip(benchmark::State &state)
{
    Machine m{MachineParams::hp720()};
    ClassicPmap pmap(m, PolicyConfig::configA());
    Cpu cpu(m);
    cpu.setSpace(1);
    std::unordered_map<std::uint64_t, bool> known;
    cpu.setFaultHandler([&](const Fault &f) {
        if (pmap.resolveConsistencyFault(f.address, f.access))
            return true;
        if (f.type == FaultType::Unmapped) {
            pmap.enter(f.address, 2, Protection::all(), f.access, {});
            return true;
        }
        return false;
    });
    pmap.enter(SpaceVa(1, VirtAddr(0x1000)), 2, Protection::all(),
               AccessType::Store, {});
    pmap.enter(SpaceVa(1, VirtAddr(0x2000)), 2, Protection::all(),
               AccessType::Load, {});
    bool flip = false;
    for (auto _ : state) {
        cpu.store(flip ? VirtAddr(0x1000) : VirtAddr(0x2000), 1);
        flip = !flip;
    }
}
BENCHMARK(BM_ClassicBreakAliasRoundTrip);

void
BM_SpecExecutorApply(benchmark::State &state)
{
    SpecExecutor spec(16);
    int i = 0;
    for (auto _ : state) {
        spec.apply(i % 2 ? MemOp::CpuWrite : MemOp::CpuRead,
                   CachePageId(i % 16));
        ++i;
    }
}
BENCHMARK(BM_SpecExecutorApply);

void
BM_StateDecode(benchmark::State &state)
{
    CacheStateVector v(64);
    v.mapped.set(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(v.decode(3));
}
BENCHMARK(BM_StateDecode);

} // anonymous namespace

BENCHMARK_MAIN();
