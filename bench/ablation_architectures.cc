/**
 * @file
 * Ablation A3 — Section 3.3, "Application to other architectures":
 * the same workload and the same consistency model on
 *
 *   - the baseline VIPT write-back machine,
 *   - a write-through VIPT machine (no dirty state, no write-backs),
 *   - a physically indexed machine (no alias management at all),
 *   - a VIPT machine whose DMA snoops the caches,
 *   - 2-way and page-span set-associative VIPT machines,
 *   - a 2-CPU machine with hardware-coherent data caches.
 *
 * Expected shape: every variant is consistent; each drops exactly the
 * class of operations the paper says it makes unnecessary.
 */

#include <cstdio>

#include "bench/suites.hh"
#include "common/table.hh"

namespace vic::bench
{
namespace
{

struct Variant
{
    const char *name; ///< display name
    const char *tag;  ///< run-id slug
    MachineParams mp;
};

std::vector<Variant>
architectureVariants()
{
    std::vector<Variant> variants;

    variants.push_back({"VIPT write-back (base)", "base",
                        MachineParams::hp720()});
    {
        MachineParams mp = MachineParams::hp720();
        mp.dcachePolicy = WritePolicy::WriteThrough;
        variants.push_back({"VIPT write-through", "write-through", mp});
    }
    {
        MachineParams mp = MachineParams::hp720();
        mp.dcacheIndexing = Indexing::Physical;
        mp.icacheIndexing = Indexing::Physical;
        variants.push_back({"physically indexed", "physical", mp});
    }
    {
        MachineParams mp = MachineParams::hp720();
        mp.dmaSnoops = true;
        variants.push_back({"VIPT + snooping DMA", "snoop-dma", mp});
    }
    {
        MachineParams mp = MachineParams::hp720();
        mp.dcacheWays = 2;
        mp.icacheWays = 2;
        variants.push_back({"VIPT 2-way (8 colours)", "2way", mp});
    }
    {
        MachineParams mp = MachineParams::hp720();
        mp.dcacheWays = 16;
        mp.icacheWays = 16;
        variants.push_back({"VIPT 16-way (span=page)", "16way", mp});
    }
    {
        MachineParams mp = MachineParams::hp720();
        mp.numCpus = 2;
        variants.push_back({"VIPT 2-CPU coherent", "2cpu", mp});
    }
    return variants;
}

std::vector<RunSpec>
architecturesSpecs(const SuiteOptions &opt)
{
    std::vector<RunSpec> specs;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        for (const Variant &v : architectureVariants()) {
            specs.push_back(paperSpec("architectures", w,
                                      PolicyConfig::configF(), opt,
                                      v.mp, v.tag));
        }
    }
    return specs;
}

bool
architecturesReport(const SuiteOptions &opt,
                    const std::vector<RunOutcome> &outcomes)
{
    const std::vector<Variant> variants = architectureVariants();

    bool shapes_ok = true;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        std::string wname;
        Table t({"Architecture", "Colours", "Elapsed (s)", "D flushes",
                 "D purges", "Write-backs", "Cons faults"});
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const Variant &v = variants[i];
            const RunResult &r =
                outcomes[w * variants.size() + i].result;
            wname = r.workload;
            t.row();
            t.cell(std::string(v.name));
            t.cell(std::uint64_t(v.mp.dcacheGeometry().numColours()));
            t.cell(r.seconds, 4);
            t.cell(r.dPageFlushes());
            t.cell(r.dPagePurges());
            t.cell(r.writeBacks());
            t.cell(r.consistencyFaults());

            if (v.mp.dcachePolicy == WritePolicy::WriteThrough)
                shapes_ok &= r.writeBacks() == 0;
        }
        std::printf("--- %s ---\n", wname.c_str());
        t.print();
        std::printf("\n");
    }

    std::printf("expected shapes:\n");
    std::printf("  write-through  -> zero write-backs (memory never "
                "stale)\n");
    std::printf("  physically indexed / span=page -> alias management "
                "disappears (1 colour)\n");
    std::printf("  snooping DMA   -> hardware keeps DMA coherent\n");
    std::printf("  set-associative-> same rules, fewer colours\n");
    std::printf("  2-CPU coherent -> identical software consistency "
                "work (the rules are\n");
    std::printf("  unchanged); hardware snooping adds only "
                "write-backs/bus traffic.\n");
    return shapeCheck(opt, shapes_ok,
                      "write-through machines perform zero "
                      "write-backs");
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "architectures";
    s.title = "Ablation: other memory-system architectures";
    s.paperRef = "Wheeler & Bershad 1992, Section 3.3";
    s.order = 90;
    s.specs = architecturesSpecs;
    s.report = architecturesReport;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("architectures", argc, argv);
}
#endif
