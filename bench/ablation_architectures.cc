/**
 * @file
 * Ablation A3 — Section 3.3, "Application to other architectures":
 * the same workload and the same consistency model on
 *
 *   - the baseline VIPT write-back machine,
 *   - a write-through VIPT machine (no dirty state, no write-backs),
 *   - a physically indexed machine (no alias management at all),
 *   - a VIPT machine whose DMA snoops the caches,
 *   - 2-way and page-span set-associative VIPT machines,
 *   - a 2-CPU machine with hardware-coherent data caches.
 *
 * Expected shape: every variant is consistent; each drops exactly the
 * class of operations the paper says it makes unnecessary.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace vic;
using namespace vic::bench;

int
main()
{
    banner("Ablation: other memory-system architectures",
           "Wheeler & Bershad 1992, Section 3.3");

    struct Variant
    {
        const char *name;
        MachineParams mp;
    };
    std::vector<Variant> variants;

    variants.push_back({"VIPT write-back (base)",
                        MachineParams::hp720()});
    {
        MachineParams mp = MachineParams::hp720();
        mp.dcachePolicy = WritePolicy::WriteThrough;
        variants.push_back({"VIPT write-through", mp});
    }
    {
        MachineParams mp = MachineParams::hp720();
        mp.dcacheIndexing = Indexing::Physical;
        mp.icacheIndexing = Indexing::Physical;
        variants.push_back({"physically indexed", mp});
    }
    {
        MachineParams mp = MachineParams::hp720();
        mp.dmaSnoops = true;
        variants.push_back({"VIPT + snooping DMA", mp});
    }
    {
        MachineParams mp = MachineParams::hp720();
        mp.dcacheWays = 2;
        mp.icacheWays = 2;
        variants.push_back({"VIPT 2-way (8 colours)", mp});
    }
    {
        MachineParams mp = MachineParams::hp720();
        mp.dcacheWays = 16;
        mp.icacheWays = 16;
        variants.push_back({"VIPT 16-way (span=page)", mp});
    }
    {
        MachineParams mp = MachineParams::hp720();
        mp.numCpus = 2;
        variants.push_back({"VIPT 2-CPU coherent", mp});
    }

    bool shapes_ok = true;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        std::string wname;
        Table t({"Architecture", "Colours", "Elapsed (s)", "D flushes",
                 "D purges", "Write-backs", "Cons faults"});
        for (const auto &v : variants) {
            auto wl = paperWorkload(w);
            wname = wl->name();
            RunResult r = runWorkload(*wl, PolicyConfig::configF(),
                                      v.mp);
            checkOracle(r);
            t.row();
            t.cell(std::string(v.name));
            t.cell(std::uint64_t(v.mp.dcacheGeometry().numColours()));
            t.cell(r.seconds, 4);
            t.cell(r.dPageFlushes());
            t.cell(r.dPagePurges());
            t.cell(r.sumMatching("dcache", ".write_backs"));
            t.cell(r.consistencyFaults());

            if (v.mp.dcachePolicy == WritePolicy::WriteThrough)
                shapes_ok &= r.sumMatching("dcache", ".write_backs") == 0;
        }
        std::printf("--- %s ---\n", wname.c_str());
        t.print();
        std::printf("\n");
    }

    std::printf("expected shapes:\n");
    std::printf("  write-through  -> zero write-backs (memory never "
                "stale)\n");
    std::printf("  physically indexed / span=page -> alias management "
                "disappears (1 colour)\n");
    std::printf("  snooping DMA   -> hardware keeps DMA coherent\n");
    std::printf("  set-associative-> same rules, fewer colours\n");
    std::printf("  2-CPU coherent -> identical software consistency "
                "work (the rules are\n");
    std::printf("  unchanged); hardware snooping adds only "
                "write-backs/bus traffic.\n");
    std::printf("SHAPE CHECK: %s\n", shapes_ok ? "PASS" : "FAIL");
    return shapes_ok ? 0 : 1;
}
