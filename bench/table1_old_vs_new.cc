/**
 * @file
 * Table 1 — "Performance of several common benchmarks using two
 * approaches to consistency management": the "old" kernel (config A:
 * eager, alignment-oblivious) versus the "new" kernel (config F: the
 * paper's lazy, alignment-aware management) on afs-bench, latex-paper
 * and kernel-build.
 *
 * Expected shape (paper): elapsed-time gains of 10%, 5% and 8.5%, and
 * large reductions in page flush and purge counts.
 */

#include "bench/suites.hh"
#include "common/table.hh"

namespace vic::bench
{
namespace
{

std::vector<RunSpec>
table1Specs(const SuiteOptions &opt)
{
    std::vector<RunSpec> specs;
    for (std::size_t i = 0; i < numPaperWorkloads; ++i) {
        specs.push_back(
            paperSpec("table1", i, PolicyConfig::configA(), opt));
        specs.push_back(
            paperSpec("table1", i, PolicyConfig::configF(), opt));
    }
    return specs;
}

bool
table1Report(const SuiteOptions &opt,
             const std::vector<RunOutcome> &outcomes)
{
    Table t({"Program", "Elapsed old (s)", "Elapsed new (s)", "% gain",
             "Flushes old", "Flushes new", "Purges old", "Purges new"});
    bool shapes_ok = true;

    for (std::size_t i = 0; i < numPaperWorkloads; ++i) {
        const RunResult &r_old = outcomes[2 * i].result;
        const RunResult &r_new = outcomes[2 * i + 1].result;

        t.row();
        t.cell(r_old.workload);
        t.cell(r_old.seconds, 4);
        t.cell(r_new.seconds, 4);
        t.cell(100.0 * (1.0 - r_new.seconds / r_old.seconds), 1);
        t.cell(r_old.dPageFlushes());
        t.cell(r_new.dPageFlushes());
        t.cell(r_old.dPagePurges() + r_old.iPagePurges());
        t.cell(r_new.dPagePurges() + r_new.iPagePurges());

        const double gain = 1.0 - r_new.seconds / r_old.seconds;
        shapes_ok &= gain > 0.02 && gain < 0.20;
        shapes_ok &= r_new.dPageFlushes() < r_old.dPageFlushes();
        shapes_ok &= r_new.dPagePurges() + r_new.iPagePurges() <=
                     r_old.dPagePurges() + r_old.iPagePurges();
    }

    t.print();
    std::printf("\npaper reported gains: afs-bench 10%%, latex-paper "
                "5%%, kernel-build 8.5%%\n");
    std::printf("(absolute seconds are scaled-down workloads; the "
                "gains and count reductions are the result)\n");
    return shapeCheck(opt, shapes_ok,
                      "new faster by 2-20% on every benchmark, "
                      "counts reduced");
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "table1";
    s.title = "Table 1: old vs new consistency management";
    s.paperRef = "Wheeler & Bershad 1992, Table 1 (Section 2.5)";
    s.order = 10;
    s.specs = table1Specs;
    s.report = table1Report;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("table1", argc, argv);
}
#endif
