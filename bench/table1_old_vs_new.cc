/**
 * @file
 * Table 1 — "Performance of several common benchmarks using two
 * approaches to consistency management": the "old" kernel (config A:
 * eager, alignment-oblivious) versus the "new" kernel (config F: the
 * paper's lazy, alignment-aware management) on afs-bench, latex-paper
 * and kernel-build.
 *
 * Expected shape (paper): elapsed-time gains of 10%, 5% and 8.5%, and
 * large reductions in page flush and purge counts.
 */

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace vic;
using namespace vic::bench;

int
main()
{
    banner("Table 1: old vs new consistency management",
           "Wheeler & Bershad 1992, Table 1 (Section 2.5)");

    Table t({"Program", "Elapsed old (s)", "Elapsed new (s)", "% gain",
             "Flushes old", "Flushes new", "Purges old", "Purges new"});

    const PolicyConfig old_cfg = PolicyConfig::configA();
    const PolicyConfig new_cfg = PolicyConfig::configF();
    bool shapes_ok = true;

    for (std::size_t i = 0; i < numPaperWorkloads; ++i) {
        auto w_old = paperWorkload(i);
        auto w_new = paperWorkload(i);
        RunResult r_old = runWorkload(*w_old, old_cfg);
        RunResult r_new = runWorkload(*w_new, new_cfg);
        checkOracle(r_old);
        checkOracle(r_new);

        t.row();
        t.cell(r_old.workload);
        t.cell(r_old.seconds, 4);
        t.cell(r_new.seconds, 4);
        t.cell(100.0 * (1.0 - r_new.seconds / r_old.seconds), 1);
        t.cell(r_old.dPageFlushes());
        t.cell(r_new.dPageFlushes());
        t.cell(r_old.dPagePurges() + r_old.iPagePurges());
        t.cell(r_new.dPagePurges() + r_new.iPagePurges());

        const double gain = 1.0 - r_new.seconds / r_old.seconds;
        shapes_ok &= gain > 0.02 && gain < 0.20;
        shapes_ok &= r_new.dPageFlushes() < r_old.dPageFlushes();
        shapes_ok &= r_new.dPagePurges() + r_new.iPagePurges() <=
                     r_old.dPagePurges() + r_old.iPagePurges();
    }

    t.print();
    std::printf("\npaper reported gains: afs-bench 10%%, latex-paper "
                "5%%, kernel-build 8.5%%\n");
    std::printf("(absolute seconds are scaled-down workloads; the "
                "gains and count reductions are the result)\n");
    std::printf("SHAPE CHECK: %s (new faster by 2-20%% on every "
                "benchmark, counts reduced)\n",
                shapes_ok ? "PASS" : "FAIL");
    return shapes_ok ? 0 : 1;
}
