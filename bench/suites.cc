#include "bench/suites.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "workload/afs_bench.hh"
#include "workload/kernel_build.hh"
#include "workload/latex_bench.hh"

namespace vic::bench
{

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

namespace
{

std::vector<Suite> &
registry()
{
    static std::vector<Suite> suites;
    return suites;
}

} // anonymous namespace

void
registerSuite(Suite suite)
{
    registry().push_back(std::move(suite));
}

std::vector<const Suite *>
allSuites()
{
    std::vector<const Suite *> out;
    for (const Suite &s : registry())
        out.push_back(&s);
    std::sort(out.begin(), out.end(),
              [](const Suite *a, const Suite *b) {
                  return a->order < b->order;
              });
    return out;
}

const Suite *
findSuite(const std::string &name)
{
    for (const Suite &s : registry()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

// ----------------------------------------------------------------------
// Paper workloads at full and smoke scale
// ----------------------------------------------------------------------

std::unique_ptr<Workload>
makePaperWorkload(std::size_t idx, bool smoke)
{
    switch (idx) {
      case 0: {
          AfsBench::Params p;
          if (smoke) {
              p.numFiles = 8;
              p.computePerFile /= 4;
          }
          return std::make_unique<AfsBench>(p);
      }
      case 1: {
          LatexBench::Params p;
          if (smoke) {
              p.passes = 1;
              p.inputPages = 3;
          }
          return std::make_unique<LatexBench>(p);
      }
      default: {
          KernelBuild::Params p;
          if (smoke) {
              p.numSourceFiles = 12;
              p.computePerFile /= 4;
          }
          return std::make_unique<KernelBuild>(p);
      }
    }
}

std::uint64_t
paperWorkloadSeed(std::size_t idx)
{
    switch (idx) {
      case 0: return AfsBench::Params{}.seed;
      case 1: return LatexBench::Params{}.seed;
      default: return KernelBuild::Params{}.seed;
    }
}

std::string
policyTag(const PolicyConfig &policy)
{
    // Policy display names carry explanatory suffixes
    // ("F (+will overwrite)"); ids use the leading tag only.
    const std::size_t space = policy.name.find(' ');
    return space == std::string::npos ? policy.name
                                      : policy.name.substr(0, space);
}

RunSpec
paperSpec(const std::string &suite, std::size_t idx,
          const PolicyConfig &policy, const SuiteOptions &opt,
          const MachineParams &mp, const std::string &variant)
{
    static const char *names[] = {"afs-bench", "latex-paper",
                                  "kernel-build"};
    RunSpec spec;
    spec.suite = suite;
    spec.id = suite + "/" + names[idx < 2 ? idx : 2] + "/" +
              policyTag(policy);
    if (!variant.empty())
        spec.id += "/" + variant;
    const bool smoke = opt.smoke;
    spec.make = [idx, smoke] { return makePaperWorkload(idx, smoke); };
    spec.policy = policy;
    spec.machine = mp;
    spec.seed = paperWorkloadSeed(idx);
    return spec;
}

RunSpec
paperSpec(const std::string &suite, std::size_t idx,
          const PolicyConfig &policy, const SuiteOptions &opt)
{
    return paperSpec(suite, idx, policy, opt, MachineParams::hp720(),
                     "");
}

// ----------------------------------------------------------------------
// Report helpers
// ----------------------------------------------------------------------

bool
outcomesClean(const std::vector<RunOutcome> &outcomes)
{
    bool clean = true;
    for (const RunOutcome &out : outcomes) {
        if (!out.ok) {
            std::fprintf(stderr, "FAILED run %s: %s\n",
                         out.id.c_str(), out.error.c_str());
            clean = false;
        } else if (out.result.oracleViolations != 0) {
            std::fprintf(
                stderr,
                "FATAL: %llu consistency violations in %s\n",
                (unsigned long long)out.result.oracleViolations,
                out.id.c_str());
            clean = false;
        }
    }
    return clean;
}

bool
shapeCheck(const SuiteOptions &opt, bool ok, const char *what)
{
    if (ok) {
        std::printf("SHAPE CHECK: PASS (%s)\n", what);
        return true;
    }
    if (opt.smoke) {
        std::printf("SHAPE CHECK: advisory-fail under --smoke "
                    "(%s; calibrated for full scale)\n",
                    what);
        return true;
    }
    std::printf("SHAPE CHECK: FAIL (%s)\n", what);
    return false;
}

void
suiteBanner(const Suite &suite)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n", suite.title.c_str());
    std::printf("reproduces: %s\n", suite.paperRef.c_str());
    std::printf("machine: scaled HP 9000/720 (50 MHz, VIPT "
                "write-back D-cache)\n");
    std::printf("==============================================="
                "=====================\n\n");
}

// ----------------------------------------------------------------------
// Standalone driver
// ----------------------------------------------------------------------

int
suiteMain(const std::string &name, int argc, char **argv)
{
    ExperimentEngine::Options engine_opts;
    SuiteOptions suite_opts;
    std::string json_path;
    std::size_t trace_events = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            engine_opts.jobs =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--shards") {
            engine_opts.shards =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--smoke") {
            suite_opts.smoke = true;
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--trace") {
            trace_events = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--progress") {
            engine_opts.echoProgress = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--jobs N] [--shards N] [--smoke] "
                        "[--json PATH] [--trace N] [--progress]\n",
                        argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s (try --help)\n",
                         arg.c_str());
            return 2;
        }
    }

    const Suite *suite = findSuite(name);
    if (!suite) {
        std::fprintf(stderr, "suite '%s' is not registered\n",
                     name.c_str());
        return 2;
    }

    suiteBanner(*suite);

    std::vector<RunSpec> specs = suite->specs(suite_opts);
    for (RunSpec &spec : specs)
        spec.traceEvents = trace_events;

    const auto t0 = std::chrono::steady_clock::now();
    ExperimentEngine engine;
    std::vector<RunOutcome> outcomes = engine.run(specs, engine_opts);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    bool ok = outcomesClean(outcomes);
    if (ok && suite->report)
        ok = suite->report(suite_opts, outcomes);
    if (suite->validate)
        ok = suite->validate(suite_opts) && ok;

    if (!json_path.empty()) {
        ArtifactMeta meta;
        meta.jobs = engine_opts.jobs;
        meta.shards = engine_opts.shards;
        meta.smoke = suite_opts.smoke;
        meta.filter = suite->name;
        meta.wallSeconds = wall;
        if (!writeArtifactFile(json_path, meta, outcomes)) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 2;
        }
        std::printf("\nwrote %zu run(s) to %s\n", outcomes.size(),
                    json_path.c_str());
    }
    return ok ? 0 : 1;
}

} // namespace vic::bench
