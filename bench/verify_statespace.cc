/**
 * @file
 * State-space census of the static protocol verifier.
 *
 * Prints, for every shipping policy and the broken one, the size of
 * the reachable abstract state space, the number of explored
 * transitions, the BFS diameter, and the wall time to reach the fixed
 * point. The interesting comparison is structural: the lazy strategies
 * collapse to one state space per bookkeeping shape (A/Utah/Apollo
 * share one, B..F/CMU another), while Tut's per-virtual-address
 * residue multiplies the reachable set by an order of magnitude — the
 * price of deferring cache cleaning past unmap.
 */

#include <cstdio>
#include <vector>

#include "core/policy_config.hh"
#include "verify/policy_verifier.hh"

int
main()
{
    using vic::PolicyConfig;
    namespace verify = vic::verify;

    std::vector<PolicyConfig> policies = PolicyConfig::table4Sweep();
    for (const PolicyConfig &p : PolicyConfig::table5Systems())
        policies.push_back(p);
    policies.push_back(PolicyConfig::broken());

    std::printf("%-22s %10s %13s %9s %10s %8s\n", "policy", "states",
                "transitions", "diameter", "verdict", "ms");

    const verify::PolicyVerifier verifier;
    for (const PolicyConfig &p : policies) {
        const verify::VerifyResult r = verifier.verify(p);
        std::printf("%-22s %10llu %13llu %9u %10s %8.1f\n",
                    r.policyName.c_str(),
                    static_cast<unsigned long long>(r.numStates),
                    static_cast<unsigned long long>(r.numTransitions),
                    r.diameter, r.sound ? "sound" : "unsound",
                    r.seconds * 1e3);
    }
    return 0;
}
