/**
 * @file
 * Ablation A1 — "Virtually indexed caches should support a fast page
 * purge operation" (Section 5.1): the paper estimates that a
 * single-cycle cache page purge would save 2.26 s (0.33%) of the
 * 685.8 s three-benchmark total. We rerun configuration F with the
 * modelled purge costs replaced by a one-cycle page purge and report
 * the same accounting.
 */

#include <cstdio>

#include "bench/suites.hh"
#include "common/table.hh"

namespace vic::bench
{
namespace
{

MachineParams
fastPurgeParams()
{
    // A one-cycle PAGE purge: per-line purge cost so small that the
    // whole page costs ~1 cycle. Model by zeroing the per-line purge
    // costs (the flush costs stay: flushes move data and cannot be
    // free).
    MachineParams fast = MachineParams::hp720();
    fast.dcacheCosts.opLineAbsent = 0;
    fast.dcacheCosts.opLinePresent = 1;
    fast.icacheCosts.opLineAbsent = 0;
    fast.icacheCosts.opLinePresent = 1;
    fast.icacheCosts.uniformOpCost = false;
    return fast;
}

std::vector<RunSpec>
fastPurgeSpecs(const SuiteOptions &opt)
{
    std::vector<RunSpec> specs;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        specs.push_back(paperSpec("fast-purge", w,
                                  PolicyConfig::configF(), opt,
                                  MachineParams::hp720(), "base"));
        specs.push_back(paperSpec("fast-purge", w,
                                  PolicyConfig::configF(), opt,
                                  fastPurgeParams(), "fast"));
    }
    return specs;
}

bool
fastPurgeReport(const SuiteOptions &opt,
                const std::vector<RunOutcome> &outcomes)
{
    Table t({"Program", "Elapsed base (s)", "Elapsed fast-purge (s)",
             "Saved (s)", "Saved (%)"});

    double total_base = 0, total_fast = 0;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        const RunResult &rb = outcomes[2 * w].result;
        const RunResult &rf = outcomes[2 * w + 1].result;
        total_base += rb.seconds;
        total_fast += rf.seconds;
        t.row();
        t.cell(rb.workload);
        t.cell(rb.seconds, 4);
        t.cell(rf.seconds, 4);
        t.cell(rb.seconds - rf.seconds, 4);
        t.cell(100.0 * (rb.seconds - rf.seconds) / rb.seconds, 2);
    }
    t.print();

    std::printf("\ntotal saving: %.4f s of %.4f s = %.2f%%\n",
                total_base - total_fast, total_base,
                100.0 * (total_base - total_fast) / total_base);
    std::printf("paper's estimate: 2.26 s of 685.8 s = 0.33%% — a "
                "small but real architectural win\n");
    const double pct =
        100.0 * (total_base - total_fast) / total_base;
    return shapeCheck(opt, pct > 0.0 && pct < 5.0,
                      "small but nonzero saving from a one-cycle "
                      "page purge");
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "fast-purge";
    s.title = "Ablation: single-cycle page purge";
    s.paperRef = "Wheeler & Bershad 1992, Section 5.1 (architectural "
                 "recommendation)";
    s.order = 70;
    s.specs = fastPurgeSpecs;
    s.report = fastPurgeReport;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("fast-purge", argc, argv);
}
#endif
