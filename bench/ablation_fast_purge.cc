/**
 * @file
 * Ablation A1 — "Virtually indexed caches should support a fast page
 * purge operation" (Section 5.1): the paper estimates that a
 * single-cycle cache page purge would save 2.26 s (0.33%) of the
 * 685.8 s three-benchmark total. We rerun configuration F with the
 * modelled purge costs replaced by a one-cycle page purge and report
 * the same accounting.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace vic;
using namespace vic::bench;

namespace
{

RunResult
runWith(std::size_t w, const MachineParams &mp)
{
    auto wl = paperWorkload(w);
    RunResult r = runWorkload(*wl, PolicyConfig::configF(), mp);
    checkOracle(r);
    return r;
}

} // anonymous namespace

int
main()
{
    banner("Ablation: single-cycle page purge",
           "Wheeler & Bershad 1992, Section 5.1 (architectural "
           "recommendation)");

    MachineParams base = MachineParams::hp720();

    // A one-cycle PAGE purge: per-line purge cost so small that the
    // whole page costs ~1 cycle. Model by zeroing the per-line purge
    // costs (the flush costs stay: flushes move data and cannot be
    // free).
    MachineParams fast = base;
    fast.dcacheCosts.opLineAbsent = 0;
    fast.dcacheCosts.opLinePresent = 1;
    fast.icacheCosts.opLineAbsent = 0;
    fast.icacheCosts.opLinePresent = 1;
    fast.icacheCosts.uniformOpCost = false;

    Table t({"Program", "Elapsed base (s)", "Elapsed fast-purge (s)",
             "Saved (s)", "Saved (%)"});

    double total_base = 0, total_fast = 0;
    for (std::size_t w = 0; w < numPaperWorkloads; ++w) {
        RunResult rb = runWith(w, base);
        RunResult rf = runWith(w, fast);
        total_base += rb.seconds;
        total_fast += rf.seconds;
        t.row();
        t.cell(rb.workload);
        t.cell(rb.seconds, 4);
        t.cell(rf.seconds, 4);
        t.cell(rb.seconds - rf.seconds, 4);
        t.cell(100.0 * (rb.seconds - rf.seconds) / rb.seconds, 2);
    }
    t.print();

    std::printf("\ntotal saving: %.4f s of %.4f s = %.2f%%\n",
                total_base - total_fast, total_base,
                100.0 * (total_base - total_fast) / total_base);
    std::printf("paper's estimate: 2.26 s of 685.8 s = 0.33%% — a "
                "small but real architectural win\n");
    const double pct =
        100.0 * (total_base - total_fast) / total_base;
    const bool shapes_ok = pct > 0.0 && pct < 5.0;
    std::printf("SHAPE CHECK: %s (small but nonzero saving)\n",
                shapes_ok ? "PASS" : "FAIL");
    return shapes_ok ? 0 : 1;
}
