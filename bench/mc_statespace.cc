/**
 * @file
 * Schedule-space census of the interleaving model checker.
 *
 * For every scenario in the standard, weak-store-order and
 * cross-cache coherence catalogs, explores the space of concurrent
 * CPU/DMA/pageout schedules
 * twice — once by brute enumeration and once with the DPOR reduction
 * (sleep sets + persistent-set pruning) — and prints executed schedules,
 * inequivalent Mazurkiewicz traces, distinct end states, machine
 * steps including re-execution, and wall time. The interesting
 * comparison is the reduction factor: DPOR must execute exactly one
 * schedule per inequivalent trace, so the census doubles as an
 * optimality report for the pruning (executions == traces on every
 * row of the DPOR column).
 *
 * With --json FILE the census is written as a machine-readable
 * artifact (schema vic-mc-statespace-v1) so CI can archive and diff
 * it across commits; everything except the wall-time fields is
 * deterministic.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/json_writer.hh"
#include "core/policy_config.hh"
#include "mc/explorer.hh"
#include "mc/scenario.hh"

namespace
{

using vic::JsonValue;
using vic::PolicyConfig;
namespace mc = vic::mc;

struct CensusRow
{
    mc::ScenarioResult brute;
    mc::ScenarioResult dpor;
    double bruteMs = 0;
    double dporMs = 0;
};

mc::ScenarioResult
timedExplore(const mc::Scenario &s, const mc::ExploreOptions &opt,
             double &ms)
{
    const auto t0 = std::chrono::steady_clock::now();
    mc::ScenarioResult r = mc::explore(s, opt);
    const auto t1 = std::chrono::steady_clock::now();
    ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    return r;
}

JsonValue
resultJson(const mc::ScenarioResult &r, double ms)
{
    JsonValue j = JsonValue::object();
    j.set("exhausted", JsonValue::boolean(r.exhausted));
    j.set("executions", JsonValue::number(r.executions));
    j.set("canonicalTraces", JsonValue::number(r.canonicalTraces));
    j.set("distinctEndStates",
          JsonValue::number(r.distinctEndStates));
    j.set("maxDepth", JsonValue::number(r.maxDepth));
    j.set("steps", JsonValue::number(r.steps));
    j.set("sleepPruned", JsonValue::number(r.sleepPruned));
    j.set("persistentPruned", JsonValue::number(r.persistentPruned));
    j.set("races", JsonValue::number(
                       std::uint64_t(r.races.size())));
    j.set("benignRaces", JsonValue::number(r.benignRaces));
    j.set("violatingRuns", JsonValue::number(r.violatingRuns));
    j.set("wallMs", JsonValue::number(ms));
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::uint64_t budget = 200000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--budget") == 0 &&
                   i + 1 < argc) {
            budget = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--budget N] [--json FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    const PolicyConfig policy = PolicyConfig::cmu();
    std::vector<mc::Scenario> catalog = mc::standardCatalog(policy);
    // The weak-order rows stress the drain-conflict edges: the DPOR
    // exactly-once and brute-coverage invariants must survive the
    // enlarged alphabet.
    for (mc::Scenario &s : mc::weakCatalog(policy))
        catalog.push_back(std::move(s));
    // The cross-cache coherence rows add CPU/CPU conflict edges
    // between distinct caches (MESI and deliberately non-coherent):
    // the same invariants must hold over those edges too.
    for (mc::Scenario &s : mc::coherenceCatalog(policy))
        catalog.push_back(std::move(s));

    mc::ExploreOptions bruteOpt;
    bruteOpt.sleepSets = false;
    bruteOpt.persistentSets = false;
    bruteOpt.budget = budget;
    mc::ExploreOptions dporOpt;
    dporOpt.budget = budget;

    std::printf("schedule-space census, policy %s "
                "(budget %llu per cell)\n\n",
                policy.name.c_str(),
                static_cast<unsigned long long>(budget));
    std::printf("%-24s %-4s %5s | %9s %9s | %9s %9s %7s | %8s %6s\n",
                "scenario", "ord", "depth", "schedules", "traces",
                "dpor-runs", "steps", "races", "reduction", "ms");

    std::vector<CensusRow> rows;
    for (const mc::Scenario &s : catalog) {
        CensusRow row;
        row.brute = timedExplore(s, bruteOpt, row.bruteMs);
        row.dpor = timedExplore(s, dporOpt, row.dporMs);
        const double reduction =
            row.dpor.executions
                ? double(row.brute.executions) /
                      double(row.dpor.executions)
                : 0.0;
        std::printf("%-24s %-4s %5llu | %8llu%s %9llu | %9llu %9llu "
                    "%4zu+%-2llu | %7.1fx %6.1f\n",
                    s.name.c_str(),
                    mc::memoryOrderName(s.memoryOrder),
                    static_cast<unsigned long long>(
                        row.dpor.maxDepth),
                    static_cast<unsigned long long>(
                        row.brute.executions),
                    row.brute.exhausted ? " " : "+",
                    static_cast<unsigned long long>(
                        row.brute.canonicalTraces),
                    static_cast<unsigned long long>(
                        row.dpor.executions),
                    static_cast<unsigned long long>(row.dpor.steps),
                    row.dpor.races.size() - row.dpor.benignRaces,
                    static_cast<unsigned long long>(
                        row.dpor.benignRaces),
                    reduction, row.dporMs);
        rows.push_back(std::move(row));
    }

    // The reduction's soundness + optimality invariants, checked
    // across the whole catalog so the census can gate CI.
    bool ok = true;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const CensusRow &row = rows[i];
        if (!row.dpor.exhausted) {
            std::printf("ERROR: %s: DPOR budget exhausted\n",
                        catalog[i].name.c_str());
            ok = false;
        }
        if (row.dpor.executions != row.dpor.canonicalTraces) {
            std::printf("ERROR: %s: DPOR executed %llu schedules for "
                        "%llu traces (not exactly-once)\n",
                        catalog[i].name.c_str(),
                        static_cast<unsigned long long>(
                            row.dpor.executions),
                        static_cast<unsigned long long>(
                            row.dpor.canonicalTraces));
            ok = false;
        }
        if (row.brute.exhausted &&
            row.brute.canonicalTraces != row.dpor.canonicalTraces) {
            std::printf("ERROR: %s: reduction missed traces "
                        "(%llu brute vs %llu dpor)\n",
                        catalog[i].name.c_str(),
                        static_cast<unsigned long long>(
                            row.brute.canonicalTraces),
                        static_cast<unsigned long long>(
                            row.dpor.canonicalTraces));
            ok = false;
        }
    }
    std::printf("\n%s\n", ok ? "census invariants hold"
                             : "census invariants VIOLATED");

    if (!json_path.empty()) {
        JsonValue report = JsonValue::object();
        report.set("schema",
                   JsonValue::str("vic-mc-statespace-v1"));
        report.set("policy", JsonValue::str(policy.name));
        report.set("budget", JsonValue::number(budget));
        JsonValue scenarios = JsonValue::array();
        for (std::size_t i = 0; i < rows.size(); ++i) {
            JsonValue js = JsonValue::object();
            js.set("scenario", JsonValue::str(catalog[i].name));
            js.set("memoryOrder",
                   JsonValue::str(mc::memoryOrderName(
                       catalog[i].memoryOrder)));
            js.set("brute",
                   resultJson(rows[i].brute, rows[i].bruteMs));
            js.set("dpor",
                   resultJson(rows[i].dpor, rows[i].dporMs));
            scenarios.push(std::move(js));
        }
        report.set("scenarios", std::move(scenarios));
        report.set("ok", JsonValue::boolean(ok));
        std::ofstream f(json_path);
        if (!f) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            return 2;
        }
        f << report.dump(2) << '\n';
        std::printf("artifact written to %s\n", json_path.c_str());
    }
    return ok ? 0 : 1;
}
