/**
 * @file
 * Table 3 — "Correspondence between cache page state and data
 * structures maintained by the algorithm": prints the encoding table
 * and validates it live by sampling the decoded state of every
 * (resident frame, colour) pair during a real workload run under the
 * lazy pmap, tallying how often each state occurs and checking the
 * encoding invariants throughout.
 *
 * The engine contributes the oracle-checked afs-bench/config-F sweep;
 * the live census needs direct access to the LazyPmap internals, so
 * it builds its own machine inside validate().
 */

#include <cstdio>

#include "bench/suites.hh"
#include "common/table.hh"
#include "core/lazy_pmap.hh"
#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"
#include "workload/latex_bench.hh"

namespace vic::bench
{
namespace
{

std::vector<RunSpec>
table3Specs(const SuiteOptions &opt)
{
    return {paperSpec("table3", 0, PolicyConfig::configF(), opt)};
}

bool
table3Report(const SuiteOptions &, const std::vector<RunOutcome> &out)
{
    const RunResult &r = out[0].result;
    std::printf("engine sweep: afs-bench under config F, oracle "
                "checked %llu transfers, %llu violations\n\n",
                (unsigned long long)r.oracleChecked,
                (unsigned long long)r.oracleViolations);
    return true;
}

bool
table3Validate(const SuiteOptions &opt)
{
    Table t({"Cache page state", "P[p].mapped[c]", "P[p].stale[c]",
             "P[p].cache_dirty"});
    t.row();
    t.cell(std::string("Empty"));
    t.cell(std::string("false"));
    t.cell(std::string("false"));
    t.cell(std::string("-"));
    t.row();
    t.cell(std::string("Present"));
    t.cell(std::string("true"));
    t.cell(std::string("false"));
    t.cell(std::string("false"));
    t.row();
    t.cell(std::string("Dirty"));
    t.cell(std::string("true"));
    t.cell(std::string("false"));
    t.cell(std::string("true"));
    t.row();
    t.cell(std::string("Stale"));
    t.cell(std::string("false"));
    t.cell(std::string("true"));
    t.cell(std::string("-"));
    t.print();

    // Live validation: run afs-bench under config F and census the
    // decoded states of all frames at several points.
    Machine machine{MachineParams::hp720()};
    ConsistencyOracle oracle(machine.memory().sizeBytes());
    machine.setObserver(&oracle);
    Kernel kernel(machine, PolicyConfig::configF());
    auto *lazy = dynamic_cast<LazyPmap *>(&kernel.pmap());

    std::uint64_t census[4] = {0, 0, 0, 0};
    auto sample = [&] {
        const std::uint32_t colours =
            machine.dcache().geometry().numColours();
        for (FrameId f = 0; f < machine.params().numFrames; ++f) {
            const PhysPageInfo *info = lazy->info(f);
            if (!info)
                continue;
            info->dstate.checkInvariants();
            info->istate.checkInvariants();
            for (CachePageId c = 0; c < colours; ++c)
                ++census[static_cast<int>(info->dstate.decode(c))];
        }
    };

    // Sample after a warm-up workload and again after the main one
    // (distinct workloads so their file names don't collide).
    {
        LatexBench::Params p;
        p.inputPages = 2;
        p.passes = 1;
        LatexBench warm(p);
        warm.run(kernel);
        sample();
    }
    makePaperWorkload(0, opt.smoke)->run(kernel);
    sample();

    std::printf("\nlive census of decoded (frame, colour) data-cache "
                "states during afs-bench:\n");
    for (int i = 0; i < 4; ++i) {
        std::printf("  %-8s %10llu\n",
                    cachePageStateName(static_cast<CachePageState>(i)),
                    (unsigned long long)census[i]);
    }
    std::printf("encoding invariants (mapped/stale disjoint; dirty => "
                "exactly one mapped colour) held at every sample\n");
    std::printf("oracle: %llu transfers checked, %llu violations\n",
                (unsigned long long)oracle.checkedCount(),
                (unsigned long long)oracle.violationCount());
    return oracle.violationCount() == 0;
}

[[maybe_unused]] const bool registered = [] {
    Suite s;
    s.name = "table3";
    s.title = "Table 3: cache page state encoding";
    s.paperRef = "Wheeler & Bershad 1992, Table 3 (Section 4.1)";
    s.order = 30;
    s.specs = table3Specs;
    s.report = table3Report;
    s.validate = table3Validate;
    registerSuite(std::move(s));
    return true;
}();

} // anonymous namespace
} // namespace vic::bench

#ifdef VIC_SUITE_STANDALONE
int
main(int argc, char **argv)
{
    return vic::bench::suiteMain("table3", argc, argv);
}
#endif
