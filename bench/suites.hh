/**
 * @file
 * Bench suite registry: the paper's tables and ablations as
 * spec-builders plus report formatters over ExperimentEngine results.
 *
 * Each suite declares the (workload x policy x machine) runs it needs
 * as RunSpecs; the engine executes them — serially or fanned out
 * across cores — and hands the outcomes back in spec order. The
 * suite's report() prints the paper-style tables and applies its
 * shape checks to the collected RunResults. A suite may additionally
 * carry a validate() step for machinery the engine cannot batch (the
 * Table 2 concrete transition scenarios, the Table 3 live state
 * census), which runs serially after the sweep.
 *
 * The same registry backs both the standalone bench binaries
 * (table1_old_vs_new, ablation_geometry, ...) via suiteMain() and the
 * aggregating tools/vic_bench CLI.
 */

#ifndef VIC_BENCH_SUITES_HH
#define VIC_BENCH_SUITES_HH

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "experiment/experiment_engine.hh"
#include "experiment/json_artifact.hh"
#include "experiment/run_spec.hh"

namespace vic::bench
{

struct SuiteOptions
{
    /** Scaled-down workloads for CI smoke sweeps. Shape checks that
     *  depend on full-scale calibration become advisory. */
    bool smoke = false;
};

struct Suite
{
    std::string name;     ///< registry key, e.g. "table1"
    std::string title;    ///< banner headline
    std::string paperRef; ///< "Wheeler & Bershad 1992, ..."
    int order = 0;        ///< stable sweep position

    /** The suite's runs, in the order report() expects them. */
    std::function<std::vector<RunSpec>(const SuiteOptions &)> specs;

    /** Print tables and apply shape checks over the outcomes (spec
     *  order). Returns the gating verdict. */
    std::function<bool(const SuiteOptions &,
                       const std::vector<RunOutcome> &)>
        report;

    /** Optional serial validation outside the engine (may be null). */
    std::function<bool(const SuiteOptions &)> validate;
};

/** Register a suite; called from each suite TU's static initialiser. */
void registerSuite(Suite suite);

/** Every registered suite, sorted by Suite::order. */
std::vector<const Suite *> allSuites();

/** Lookup by name; nullptr when unknown. */
const Suite *findSuite(const std::string &name);

// ----------------------------------------------------------------------
// Shared helpers for suite implementations
// ----------------------------------------------------------------------

inline constexpr std::size_t numPaperWorkloads = 3;

/** Fresh paper workload (0 afs-bench, 1 latex-paper, 2 kernel-build)
 *  at full or smoke scale. */
std::unique_ptr<Workload> makePaperWorkload(std::size_t idx,
                                            bool smoke);

/** The calibrated base seed of paper workload @p idx. */
std::uint64_t paperWorkloadSeed(std::size_t idx);

/** Short policy tag for run ids: "F (+will overwrite)" -> "F". */
std::string policyTag(const PolicyConfig &policy);

/** RunSpec for paper workload @p idx under @p policy. */
RunSpec paperSpec(const std::string &suite, std::size_t idx,
                  const PolicyConfig &policy, const SuiteOptions &opt,
                  const MachineParams &mp, const std::string &variant);

RunSpec paperSpec(const std::string &suite, std::size_t idx,
                  const PolicyConfig &policy, const SuiteOptions &opt);

/** Gate: every outcome ran to completion with zero oracle
 *  violations; failures are printed to stderr. */
bool outcomesClean(const std::vector<RunOutcome> &outcomes);

/** Print a SHAPE CHECK verdict. In smoke mode a failed calibrated
 *  check is advisory (the gate stays green); full-scale runs gate on
 *  it. Returns the gating verdict. */
bool shapeCheck(const SuiteOptions &opt, bool ok, const char *what);

/** Banner for a suite, matching the historical bench layout. */
void suiteBanner(const Suite &suite);

/**
 * Standalone bench-binary driver: run ONE suite through the engine.
 * Flags: --jobs N, --smoke, --json PATH, --trace N, --help.
 * Exit code 0 iff the sweep is clean and the shape checks pass.
 */
int suiteMain(const std::string &name, int argc, char **argv);

} // namespace vic::bench

#endif // VIC_BENCH_SUITES_HH
