/**
 * @file
 * Tests for weak store ordering in the interleaving model checker:
 * SC-mode bit-equivalence with the pre-relaxation explorer, clean
 * guarded choreographies under per-CPU store buffers, the
 * missing-fence exemplar whose weak-order window only relaxed
 * exploration can catch (with an oracle-confirmed minimal schedule),
 * DPOR soundness/optimality over the drain-extended alphabet,
 * deterministic schedule fuzzing, and the v2/v3 verify-report schema
 * round trip.
 */

#include <gtest/gtest.h>

#include "common/json_writer.hh"
#include "core/policy_config.hh"
#include "mc/explorer.hh"
#include "mc/scenario.hh"
#include "verify/mc_report.hh"

namespace vic::mc
{
namespace
{

ExploreOptions
defaults()
{
    return {};
}

ExploreOptions
brute()
{
    ExploreOptions opt;
    opt.sleepSets = false;
    opt.persistentSets = false;
    return opt;
}

// --- SC bit-equivalence -----------------------------------------------

TEST(WeakOrder, ScModeMatchesPreRelaxationExplorer)
{
    // The store-buffer machinery must be invisible under SC: the same
    // execution counts, trace counts, and race verdicts the explorer
    // produced before the relaxation existed. (Race counts here are
    // the dedup-corrected ones: RaceReport::key() is
    // order-insensitive, so one unordered pair explored in both
    // schedule orders is one race, not two.)
    struct Baseline
    {
        const char *name;
        std::uint64_t executions;
        std::uint64_t maxDepth;
        std::uint64_t reported;
        std::uint64_t benign;
        std::uint64_t violatingRuns;
    };
    const Baseline baselines[] = {
        {"dma-out-guarded", 3, 9, 0, 0, 0},
        {"dma-in-guarded", 3, 9, 0, 0, 0},
        {"pageout-guarded", 18, 12, 0, 0, 0},
        {"flush-after-start", 12, 6, 1, 0, 3},
        {"lost-write-back", 3, 5, 1, 0, 1},
        {"snooping-unguarded", 3, 5, 0, 1, 0},
    };
    const std::vector<Scenario> catalog =
        standardCatalog(PolicyConfig::cmu());
    ASSERT_EQ(catalog.size(), std::size(baselines));
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        ASSERT_EQ(catalog[i].name, baselines[i].name);
        EXPECT_EQ(catalog[i].memoryOrder, MemoryOrder::SC);
        const ScenarioResult r = explore(catalog[i], defaults());
        EXPECT_TRUE(r.exhausted) << catalog[i].name;
        EXPECT_EQ(r.executions, baselines[i].executions)
            << catalog[i].name;
        EXPECT_EQ(r.canonicalTraces, baselines[i].executions)
            << catalog[i].name;
        EXPECT_EQ(r.maxDepth, baselines[i].maxDepth)
            << catalog[i].name;
        EXPECT_EQ(r.reportedRaces(), baselines[i].reported)
            << catalog[i].name;
        EXPECT_EQ(r.benignRaces, baselines[i].benign)
            << catalog[i].name;
        EXPECT_EQ(r.violatingRuns, baselines[i].violatingRuns)
            << catalog[i].name;
        // SC runs buffer nothing, so no drain can pair into a race.
        EXPECT_EQ(r.weakWindowRaces, 0u) << catalog[i].name;
    }
}

// --- guarded choreography under weak order -----------------------------

TEST(WeakOrder, GuardedScenariosStayCleanUnderStoreBuffers)
{
    // The paper's guarded choreographies order DMA against CPU stores
    // via the busy bit; the acquire point forces drains, so relaxing
    // store order must add schedules but no races or lost data.
    for (const Scenario &s :
         weakGuardedScenarios(PolicyConfig::cmu())) {
        const ScenarioResult r = explore(s, defaults());
        EXPECT_TRUE(r.exhausted) << s.name;
        EXPECT_FALSE(r.deadlock) << s.name;
        EXPECT_EQ(r.executions, r.canonicalTraces) << s.name;
        EXPECT_EQ(r.reportedRaces(), 0u) << s.name;
        EXPECT_EQ(r.weakWindowRaces, 0u) << s.name;
        EXPECT_EQ(r.violatingRuns, 0u) << s.name;
        EXPECT_TRUE(r.passed(s.expect)) << s.name;
    }
}

TEST(WeakOrder, WeakGuardedExploresMoreSchedulesThanSc)
{
    // Sanity that the relaxation actually enlarges the space: the
    // drain events are separately schedulable, so the weak run of a
    // guarded scenario has strictly more inequivalent traces.
    const PolicyConfig policy = PolicyConfig::cmu();
    const std::vector<Scenario> sc = standardCatalog(policy);
    const std::vector<Scenario> weak = weakGuardedScenarios(policy);
    ASSERT_FALSE(weak.empty());
    const ScenarioResult scR = explore(sc[0], defaults());
    const ScenarioResult weakR = explore(weak[0], defaults());
    EXPECT_GT(weakR.canonicalTraces, scR.canonicalTraces);
    EXPECT_GT(weakR.maxDepth, scR.maxDepth);
}

// --- the missing-fence exemplar ---------------------------------------

TEST(WeakOrder, MissingFenceCaughtOnlyUnderWeakOrder)
{
    const PolicyConfig policy = PolicyConfig::cmu();

    // Under SC the store is globally visible before the DMA read
    // starts: a single schedule, no race, no violation.
    const ScenarioResult sc = explore(
        missingFenceExemplar(policy, MemoryOrder::SC), defaults());
    EXPECT_TRUE(sc.exhausted);
    EXPECT_EQ(sc.executions, 1u);
    EXPECT_EQ(sc.reportedRaces(), 0u);
    EXPECT_EQ(sc.violatingRuns, 0u);

    // Under weak store order the undrained store can overlap the DMA
    // read: a weak-order window race with demonstrable data loss.
    const Scenario exemplar = missingFenceExemplar(policy);
    const ScenarioResult weak = explore(exemplar, defaults());
    EXPECT_TRUE(weak.exhausted);
    EXPECT_GT(weak.reportedRaces(), 0u);
    EXPECT_GT(weak.weakWindowRaces, 0u);
    EXPECT_GT(weak.confirmedRaces, 0u);
    EXPECT_GT(weak.violatingRuns, 0u);
    EXPECT_TRUE(weak.passed(exemplar.expect));

    // The minimal counterexample is replayable and oracle-confirmed.
    ASSERT_FALSE(weak.minimalCounterexampleLabels.empty());
    EXPECT_LE(weak.minimalCounterexampleLabels.size(), 5u);
    EXPECT_TRUE(weak.replayConfirmed);
}

TEST(WeakOrder, FenceClosesTheWindow)
{
    // Inserting one fence after the store restores correctness: the
    // fence's acquire edge from the drain clock removes the race.
    const Scenario fenced = fencedVariant(PolicyConfig::cmu());
    const ScenarioResult r = explore(fenced, defaults());
    EXPECT_TRUE(r.exhausted);
    EXPECT_FALSE(r.deadlock);
    EXPECT_EQ(r.reportedRaces(), 0u);
    EXPECT_EQ(r.weakWindowRaces, 0u);
    EXPECT_EQ(r.violatingRuns, 0u);
    EXPECT_TRUE(r.passed(fenced.expect));
}

// --- DPOR invariants over the drain alphabet ---------------------------

TEST(WeakOrder, DporRemainsSoundAndOptimalWithDrains)
{
    // Exactly-once per trace, and no trace the brute enumeration
    // reaches is missed — now with drain conflicts in the dependence
    // relation.
    for (const Scenario &s : weakCatalog(PolicyConfig::cmu())) {
        const ScenarioResult d = explore(s, defaults());
        const ScenarioResult b = explore(s, brute());
        EXPECT_TRUE(d.exhausted) << s.name;
        EXPECT_TRUE(b.exhausted) << s.name;
        EXPECT_EQ(d.executions, d.canonicalTraces) << s.name;
        EXPECT_EQ(b.canonicalTraces, d.canonicalTraces) << s.name;
        // End states are a lower bound, not an equality: store values
        // are stamped in execution order, so equivalent traces can
        // still differ in memory content under brute enumeration.
        EXPECT_LE(d.distinctEndStates, b.distinctEndStates) << s.name;
        EXPECT_EQ(b.reportedRaces(), d.reportedRaces()) << s.name;
        EXPECT_EQ(b.weakWindowRaces > 0, d.weakWindowRaces > 0)
            << s.name;
    }
}

// --- deterministic schedule fuzzing ------------------------------------

void
expectFuzzEqual(const FuzzResult &a, const FuzzResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.samples, b.samples) << what;
    EXPECT_EQ(a.steps, b.steps) << what;
    EXPECT_EQ(a.maxDepth, b.maxDepth) << what;
    EXPECT_EQ(a.canonicalTraces, b.canonicalTraces) << what;
    EXPECT_EQ(a.distinctEndStates, b.distinctEndStates) << what;
    EXPECT_EQ(a.newTraces, b.newTraces) << what;
    EXPECT_EQ(a.races.size(), b.races.size()) << what;
    EXPECT_EQ(a.violatingRuns, b.violatingRuns) << what;
    EXPECT_EQ(a.minimalCounterexample, b.minimalCounterexample)
        << what;
}

TEST(WeakOrder, FuzzingIsDeterministicForAFixedSeed)
{
    const Scenario s = missingFenceExemplar(PolicyConfig::cmu());
    FuzzOptions opt;
    opt.samples = 100;
    opt.seed = 7;
    const FuzzResult a = fuzzSchedules(s, opt, 0, {});
    const FuzzResult b = fuzzSchedules(s, opt, 0, {});
    expectFuzzEqual(a, b, s.name);

    // A different seed samples a different mix of schedules (the
    // stream really depends on the seed). Every maximal schedule of
    // this scenario has the same length, so the discriminator is how
    // often the sampled order hit the unfenced window.
    opt.seed = 8;
    const FuzzResult c = fuzzSchedules(s, opt, 0, {});
    EXPECT_NE(a.violatingRuns, c.violatingRuns);
}

TEST(WeakOrder, FuzzingIsIndependentOfJobCount)
{
    const std::vector<Scenario> catalog =
        weakCatalog(PolicyConfig::cmu());
    FuzzOptions opt;
    opt.samples = 50;
    opt.seed = 42;
    const std::vector<FuzzResult> serial =
        fuzzMany(catalog, opt, {}, 1);
    const std::vector<FuzzResult> parallel =
        fuzzMany(catalog, opt, {}, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectFuzzEqual(serial[i], parallel[i], catalog[i].name);
}

TEST(WeakOrder, FuzzingFindsTheMissingFenceViolation)
{
    const Scenario s = missingFenceExemplar(PolicyConfig::cmu());
    FuzzOptions opt;
    opt.samples = 200;
    opt.seed = 42;
    const FuzzResult r = fuzzSchedules(s, opt, 0, {});
    EXPECT_GT(r.violatingRuns, 0u);
    EXPECT_GT(r.weakWindowRaces, 0u);
    ASSERT_FALSE(r.minimalCounterexampleLabels.empty());
    EXPECT_TRUE(r.replayConfirmed);
}

TEST(WeakOrder, FuzzCoverageIsSubsetOfExhaustiveExploration)
{
    // DPOR exhausted the space, so random sampling can only
    // rediscover known traces: newTraces must be zero.
    for (const Scenario &s : weakCatalog(PolicyConfig::cmu())) {
        const ScenarioResult d = explore(s, defaults());
        ASSERT_TRUE(d.exhausted) << s.name;
        FuzzOptions opt;
        opt.samples = 100;
        opt.seed = 42;
        const FuzzResult f =
            fuzzSchedules(s, opt, 0, d.canonicalHashes);
        EXPECT_EQ(f.newTraces, 0u) << s.name;
        EXPECT_LE(f.canonicalTraces, d.canonicalTraces) << s.name;
    }
}

// --- report schema v2/v3 -----------------------------------------------

TEST(WeakOrder, ReportV3RoundTripsThroughTheReader)
{
    const Scenario s = missingFenceExemplar(PolicyConfig::cmu());
    const ScenarioResult r = explore(s, defaults());
    FuzzOptions opt;
    opt.samples = 50;
    opt.seed = 42;
    const FuzzResult f = fuzzSchedules(s, opt, 0, r.canonicalHashes);

    JsonValue js = verify::scenarioResultJson(r, r.passed(s.expect));
    js.set("fuzz", verify::fuzzResultJson(f, true));
    JsonValue interleave = JsonValue::object();
    JsonValue scenarios = JsonValue::array();
    scenarios.push(std::move(js));
    interleave.set("scenarios", std::move(scenarios));
    JsonValue policyEntry = JsonValue::object();
    policyEntry.set("interleave", std::move(interleave));
    JsonValue policies = JsonValue::array();
    policies.push(std::move(policyEntry));
    JsonValue report = JsonValue::object();
    report.set("schema",
               JsonValue::str(verify::kVerifyReportSchemaV3));
    report.set("ok", JsonValue::boolean(true));
    report.set("policies", std::move(policies));

    // Serialize and parse back, as a consumer of the artifact would.
    const JsonValue parsed = JsonValue::parse(report.dump(2));
    const verify::McReportSummary sum = verify::readMcReport(parsed);
    EXPECT_TRUE(sum.recognised);
    EXPECT_EQ(sum.schema, verify::kVerifyReportSchemaV3);
    EXPECT_TRUE(sum.ok);
    ASSERT_EQ(sum.scenarios.size(), 1u);
    const verify::McScenarioSummary &ss = sum.scenarios[0];
    EXPECT_EQ(ss.scenario, s.name);
    EXPECT_EQ(ss.memoryOrder, "weak");
    EXPECT_EQ(ss.executions, r.executions);
    EXPECT_EQ(ss.canonicalTraces, r.canonicalTraces);
    EXPECT_EQ(ss.violatingRuns, r.violatingRuns);
    EXPECT_EQ(ss.weakWindowRaces, r.weakWindowRaces);
    EXPECT_EQ(ss.races, r.races.size());
    EXPECT_TRUE(ss.passed);
    EXPECT_TRUE(ss.hasFuzz);
    EXPECT_EQ(ss.fuzzSamples, f.samples);
    EXPECT_EQ(ss.fuzzTraces, f.canonicalTraces);
    EXPECT_EQ(ss.fuzzNewTraces, f.newTraces);
    EXPECT_TRUE(ss.fuzzPassed);
}

TEST(WeakOrder, ReportReaderAcceptsV2WithScDefaults)
{
    // A v2 document has no memoryOrder, no weakWindowRaces, and no
    // fuzz member; the reader must fill in the SC-mode defaults.
    const char *v2 = R"({
      "schema": "vic-verify-report-v2",
      "ok": true,
      "policies": [{
        "interleave": {
          "scenarios": [{
            "scenario": "dma-out-guarded",
            "exhausted": true,
            "executions": 3,
            "canonicalTraces": 3,
            "violatingRuns": 0,
            "races": [],
            "passed": true
          }]
        }
      }]
    })";
    const verify::McReportSummary sum =
        verify::readMcReport(JsonValue::parse(v2));
    EXPECT_TRUE(sum.recognised);
    EXPECT_EQ(sum.schema, verify::kVerifyReportSchemaV2);
    ASSERT_EQ(sum.scenarios.size(), 1u);
    const verify::McScenarioSummary &ss = sum.scenarios[0];
    EXPECT_EQ(ss.memoryOrder, "sc");
    EXPECT_EQ(ss.weakWindowRaces, 0u);
    EXPECT_FALSE(ss.hasFuzz);
    EXPECT_EQ(ss.executions, 3u);
    EXPECT_TRUE(ss.passed);
}

TEST(WeakOrder, ReportReaderFlagsUnknownSchema)
{
    const char *doc = R"({"schema": "vic-verify-report-v9"})";
    const verify::McReportSummary sum =
        verify::readMcReport(JsonValue::parse(doc));
    EXPECT_FALSE(sum.recognised);
}

} // namespace
} // namespace vic::mc
