/**
 * @file
 * Section 3.3 — "Application to other architectures": the same model
 * and OS run unchanged on write-through caches, physically indexed
 * caches, set-associative caches, and machines whose DMA snoops the
 * cache. Each variant must stay consistent, and each enjoys exactly
 * the structural simplification the paper predicts.
 */

#include <gtest/gtest.h>

#include "workload/afs_bench.hh"
#include "workload/contrived_alias.hh"
#include "workload/kernel_build.hh"
#include "workload/runner.hh"

namespace vic
{
namespace
{

MachineParams
baseParams()
{
    return MachineParams::hp720();
}

AfsBench::Params
smallAfs()
{
    AfsBench::Params p;
    p.numFiles = 6;
    p.computePerFile = 1000;
    return p;
}

TEST(ArchitectureTest, WriteThroughCacheStaysConsistent)
{
    MachineParams mp = baseParams();
    mp.dcachePolicy = WritePolicy::WriteThrough;
    AfsBench wl(smallAfs());
    RunResult r = runWorkload(wl, PolicyConfig::configF(), mp);
    EXPECT_EQ(r.oracleViolations, 0u);
}

TEST(ArchitectureTest, WriteThroughNeedsNoDmaReadFlushes)
{
    // "In a write-through cache, memory is never stale with respect
    // to the cache ... There is also no need for the flush operation."
    // Dirty-page flushes still appear in our counters as operations,
    // but a write-through machine has nothing dirty, so DMA-reads
    // find nothing to write back.
    MachineParams mp = baseParams();
    mp.dcachePolicy = WritePolicy::WriteThrough;
    AfsBench wl(smallAfs());
    RunResult r = runWorkload(wl, PolicyConfig::configF(), mp);
    EXPECT_EQ(r.stat("dcache.write_backs"), 0u);
}

TEST(ArchitectureTest, PhysicallyIndexedCacheStaysConsistent)
{
    MachineParams mp = baseParams();
    mp.dcacheIndexing = Indexing::Physical;
    mp.icacheIndexing = Indexing::Physical;
    AfsBench wl(smallAfs());
    RunResult r = runWorkload(wl, PolicyConfig::configF(), mp);
    EXPECT_EQ(r.oracleViolations, 0u);
}

TEST(ArchitectureTest, PhysicallyIndexedNeedsNoAliasManagement)
{
    // "With a physically indexed cache, all similarly mapped virtual
    // addresses naturally align" — even the pathological unaligned
    // ping-pong costs nothing.
    MachineParams mp = baseParams();
    mp.dcacheIndexing = Indexing::Physical;
    mp.icacheIndexing = Indexing::Physical;
    ContrivedAlias wl({/*aligned=*/false, 4000, true});
    RunResult r = runWorkload(wl, PolicyConfig::configF(), mp);
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_EQ(r.dPageFlushes(), 0u);
    EXPECT_EQ(r.dPagePurges(), 0u);
}

TEST(ArchitectureTest, PhysicallyIndexedStillNeedsDmaManagement)
{
    // "Only DMA-write and DMA-read create consistency problems" for a
    // physically indexed write-back cache.
    MachineParams mp = baseParams();
    mp.dcacheIndexing = Indexing::Physical;
    mp.icacheIndexing = Indexing::Physical;
    AfsBench wl(smallAfs());
    RunResult r = runWorkload(wl, PolicyConfig::configF(), mp);
    EXPECT_GT(r.dmaReadFlushes(), 0u);
}

TEST(ArchitectureTest, SetAssociativeCacheStaysConsistent)
{
    // "For a set-associative cache, the consistency rules remain the
    // same since consistency within a set is ensured by hardware."
    MachineParams mp = baseParams();
    mp.dcacheWays = 2;
    mp.icacheWays = 2;
    AfsBench wl(smallAfs());
    RunResult r = runWorkload(wl, PolicyConfig::configF(), mp);
    EXPECT_EQ(r.oracleViolations, 0u);
}

TEST(ArchitectureTest, SetAssociativityReducesColours)
{
    MachineParams mp = baseParams();
    mp.dcacheWays = 4;
    EXPECT_EQ(mp.dcacheGeometry().numColours(),
              baseParams().dcacheGeometry().numColours() / 4);
}

TEST(ArchitectureTest, CacheSpanEqualToPageEliminatesTheProblem)
{
    // "Comparable performance is possible with a physically indexed
    // cache only by tying cache size and associativity to page size":
    // a 64 KB 16-way VI cache has a 4 KB span = 1 colour.
    MachineParams mp = baseParams();
    mp.dcacheWays = 16;
    mp.icacheWays = 16;
    EXPECT_EQ(mp.dcacheGeometry().numColours(), 1u);

    ContrivedAlias wl({/*aligned=*/false, 4000, true});
    RunResult r = runWorkload(wl, PolicyConfig::configF(), mp);
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_EQ(r.dPageFlushes(), 0u);
}

TEST(ArchitectureTest, SnoopingDmaStaysConsistent)
{
    MachineParams mp = baseParams();
    mp.dmaSnoops = true;
    AfsBench wl(smallAfs());
    RunResult r = runWorkload(wl, PolicyConfig::configF(), mp);
    EXPECT_EQ(r.oracleViolations, 0u);
}

TEST(ArchitectureTest, SnoopingDmaIsSafeEvenWithoutOsDmaOps)
{
    // With coherent DMA the OS-level DMA consistency work is
    // redundant: a policy that skips it entirely (the broken one)
    // still cannot produce DMA-related violations... but it CAN still
    // produce alias violations, so use the aligned workload plus
    // files, which exercises only the DMA paths.
    MachineParams mp = baseParams();
    mp.dmaSnoops = true;
    AfsBench wl(smallAfs());
    // Config B does no address alignment at all but is sound; the
    // interesting comparison is op counts under snooping vs not.
    RunResult snooped = runWorkload(wl, PolicyConfig::configF(), mp);
    AfsBench wl2(smallAfs());
    RunResult plain =
        runWorkload(wl2, PolicyConfig::configF(), baseParams());
    EXPECT_EQ(snooped.oracleViolations, 0u);
    EXPECT_EQ(plain.oracleViolations, 0u);
}

TEST(ArchitectureTest, UnalignedAliasingBreaksOnlyVirtualIndexing)
{
    // The same broken policy on the same workload: violations on the
    // VIPT machine, none on the PIPT machine — the problem really is
    // virtual indexing, nothing else.
    ContrivedAlias wl1({/*aligned=*/false, 2000, true});
    RunResult vipt = runWorkload(wl1, PolicyConfig::broken());
    EXPECT_GT(vipt.oracleViolations, 0u);

    MachineParams mp = baseParams();
    mp.dcacheIndexing = Indexing::Physical;
    mp.icacheIndexing = Indexing::Physical;
    ContrivedAlias wl2({/*aligned=*/false, 2000, true});
    RunResult pipt = runWorkload(wl2, PolicyConfig::broken(), mp);
    EXPECT_EQ(pipt.oracleViolations, 0u);
}

TEST(ArchitectureTest, KernelBuildRunsOnEveryVariant)
{
    KernelBuild::Params p;
    p.numSourceFiles = 4;
    p.compilerTextPages = 2;
    p.computePerFile = 1000;

    struct Variant
    {
        const char *name;
        MachineParams mp;
    };
    std::vector<Variant> variants;
    variants.push_back({"vipt-wb", baseParams()});
    {
        MachineParams mp = baseParams();
        mp.dcachePolicy = WritePolicy::WriteThrough;
        variants.push_back({"vipt-wt", mp});
    }
    {
        MachineParams mp = baseParams();
        mp.dcacheIndexing = Indexing::Physical;
        mp.icacheIndexing = Indexing::Physical;
        variants.push_back({"pipt", mp});
    }
    {
        MachineParams mp = baseParams();
        mp.dmaSnoops = true;
        variants.push_back({"snooping", mp});
    }
    {
        MachineParams mp = baseParams();
        mp.dcacheWays = 2;
        mp.icacheWays = 2;
        variants.push_back({"2-way", mp});
    }

    for (const auto &v : variants) {
        KernelBuild wl(p);
        RunResult r = runWorkload(wl, PolicyConfig::configF(), v.mp);
        EXPECT_EQ(r.oracleViolations, 0u) << v.name;
    }
}

} // anonymous namespace
} // namespace vic
