/** @file Unit tests for the single and per-colour free page lists. */

#include <gtest/gtest.h>

#include "mem/free_page_list.hh"

namespace vic
{
namespace
{

using Org = FreePageList::Organisation;

TEST(FreePageListTest, SingleFifoOrder)
{
    FreePageList fl(Org::Single, 4);
    fl.free(10, std::nullopt);
    fl.free(11, 2);
    fl.free(12, std::nullopt);
    EXPECT_EQ(fl.size(), 3u);

    EXPECT_EQ(fl.allocate(std::nullopt)->frame, 10u);
    EXPECT_EQ(fl.allocate(std::nullopt)->frame, 11u);
    EXPECT_EQ(fl.allocate(std::nullopt)->frame, 12u);
    EXPECT_TRUE(fl.empty());
    EXPECT_FALSE(fl.allocate(std::nullopt).has_value());
}

TEST(FreePageListTest, SingleReportsLastColour)
{
    FreePageList fl(Org::Single, 4);
    fl.free(5, 3);
    auto a = fl.allocate(std::nullopt);
    ASSERT_TRUE(a);
    EXPECT_EQ(a->frame, 5u);
    ASSERT_TRUE(a->lastColour);
    EXPECT_EQ(*a->lastColour, 3u);
}

TEST(FreePageListTest, SingleCountsColourLuck)
{
    FreePageList fl(Org::Single, 4);
    fl.free(1, 1);
    fl.free(2, 2);
    EXPECT_EQ(fl.allocate(1)->frame, 1u);  // lucky match
    EXPECT_EQ(fl.allocate(1)->frame, 2u);  // mismatch
    EXPECT_EQ(fl.colourHits(), 1u);
    EXPECT_EQ(fl.colourMisses(), 1u);
}

TEST(FreePageListTest, PerColourPrefersWantedColour)
{
    FreePageList fl(Org::PerColour, 4);
    fl.free(1, 1);
    fl.free(2, 2);
    fl.free(3, 3);

    auto a = fl.allocate(2);
    ASSERT_TRUE(a);
    EXPECT_EQ(a->frame, 2u);
    EXPECT_EQ(fl.colourHits(), 1u);
    EXPECT_EQ(fl.colourMisses(), 0u);
}

TEST(FreePageListTest, PerColourColourlessFramesCountAsHits)
{
    // A frame with no cache footprint is clean at every colour.
    FreePageList fl(Org::PerColour, 4);
    fl.free(7, std::nullopt);
    auto a = fl.allocate(2);
    ASSERT_TRUE(a);
    EXPECT_EQ(a->frame, 7u);
    EXPECT_EQ(fl.colourHits(), 1u);
}

TEST(FreePageListTest, PerColourStealsWhenColourEmpty)
{
    FreePageList fl(Org::PerColour, 4);
    fl.free(9, 0);
    auto a = fl.allocate(3);
    ASSERT_TRUE(a);
    EXPECT_EQ(a->frame, 9u);
    EXPECT_EQ(fl.colourMisses(), 1u);
}

TEST(FreePageListTest, PerColourNoPreference)
{
    FreePageList fl(Org::PerColour, 4);
    fl.free(4, 1);
    fl.free(5, std::nullopt);
    // Without a preference, colourless frames go first.
    EXPECT_EQ(fl.allocate(std::nullopt)->frame, 5u);
    EXPECT_EQ(fl.allocate(std::nullopt)->frame, 4u);
}

TEST(FreePageListTest, SizeTracksFreesAndAllocs)
{
    FreePageList fl(Org::PerColour, 2);
    for (FrameId f = 0; f < 10; ++f)
        fl.free(f, f % 2);
    EXPECT_EQ(fl.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(fl.allocate(std::nullopt).has_value());
    EXPECT_TRUE(fl.empty());
}

} // anonymous namespace
} // namespace vic
