/**
 * @file
 * Unit tests for the cache simulator: functional behaviour, the
 * aliasing failure modes the paper describes (stale reads, shadowing,
 * lost write-backs), flush/purge semantics, and the cost model.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/cycle_clock.hh"
#include "common/stats.hh"
#include "mem/physical_memory.hh"

namespace vic
{
namespace
{

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest()
        : mem(64, 4096),
          geo(64 * 1024, 32, 4096, 1, Indexing::Virtual),
          cache("dcache", geo, CacheCosts{}, WritePolicy::WriteBack, mem,
                clk, stats)
    {
    }

    PhysicalMemory mem;
    CycleClock clk;
    StatSet stats;
    CacheGeometry geo;
    Cache cache;

    // Two virtual pages mapping physical page 2: one aligned with
    // nothing, one a different colour.
    const VirtAddr va1{1 * 4096};       // colour 1
    const VirtAddr va2{2 * 4096};       // colour 2 (unaligned alias)
    const VirtAddr va1b{17 * 4096};     // colour 1 (aligned alias)
    const PhysAddr pa{2 * 4096};
};

TEST_F(CacheTest, ReadMissFillsFromMemory)
{
    mem.writeWord(pa, 77);
    EXPECT_EQ(cache.read(va1, pa), 77u);
    EXPECT_EQ(stats.value("dcache.misses"), 1u);
    EXPECT_EQ(cache.read(va1, pa), 77u);
    EXPECT_EQ(stats.value("dcache.hits"), 1u);
}

TEST_F(CacheTest, WriteBackIsDeferred)
{
    cache.write(va1, pa, 123);
    // Memory is stale until the line is written back.
    EXPECT_EQ(mem.readWord(pa), 0u);
    Cache::Probe p = cache.probe(va1, pa);
    EXPECT_TRUE(p.present);
    EXPECT_TRUE(p.dirty);
    EXPECT_EQ(p.word, 123u);
}

TEST_F(CacheTest, UnalignedAliasReturnsStaleData)
{
    // The core failure of Section 2.2: write via va1, read via va2 —
    // without consistency management the read sees stale memory.
    cache.write(va1, pa, 555);
    EXPECT_EQ(cache.read(va2, pa), 0u);  // STALE: fetched from memory
}

TEST_F(CacheTest, AlignedAliasSharesTheLine)
{
    // Aligned aliases select the same line and are tag-matched by the
    // physical address: no inconsistency is possible.
    cache.write(va1, pa, 555);
    EXPECT_EQ(cache.read(va1b, pa), 555u);
}

TEST_F(CacheTest, LostWriteBackWithTwoDirtyAliases)
{
    // Both aliases dirty: whichever is flushed last wins — writes can
    // be lost (Section 2.2).
    cache.write(va1, pa, 111);
    cache.write(va2, pa, 222);
    cache.flushLine(va2, pa);
    cache.flushLine(va1, pa);  // stale 111 clobbers 222 in memory
    EXPECT_EQ(mem.readWord(pa), 111u);
}

TEST_F(CacheTest, FlushWritesBackAndInvalidates)
{
    cache.write(va1, pa, 42);
    EXPECT_TRUE(cache.flushLine(va1, pa));
    EXPECT_EQ(mem.readWord(pa), 42u);
    EXPECT_FALSE(cache.probe(va1, pa).present);
    // Second flush finds nothing.
    EXPECT_FALSE(cache.flushLine(va1, pa));
}

TEST_F(CacheTest, PurgeDiscardsDirtyData)
{
    cache.write(va1, pa, 42);
    EXPECT_TRUE(cache.purgeLine(va1, pa));
    EXPECT_EQ(mem.readWord(pa), 0u);  // write lost, as purge promises
    EXPECT_FALSE(cache.probe(va1, pa).present);
}

TEST_F(CacheTest, FlushChecksPhysicalTag)
{
    // A flush of va1 for a different physical page must not remove
    // pa's line (PA-RISC semantics: index by VA, compare tag).
    cache.write(va1, pa, 42);
    PhysAddr other(3 * 4096);
    EXPECT_FALSE(cache.flushLine(va1, other));
    EXPECT_TRUE(cache.probe(va1, pa).present);
}

TEST_F(CacheTest, PageOpsCoverEveryLine)
{
    for (std::uint32_t off = 0; off < 4096; off += 32)
        cache.write(va1.plus(off), pa.plus(off), off);
    EXPECT_EQ(cache.flushPage(va1, pa), 128u);
    for (std::uint32_t off = 0; off < 4096; off += 32) {
        EXPECT_EQ(mem.readWord(pa.plus(off)), off);
        EXPECT_EQ(mem.readWord(pa.plus(off + 4)), 0u);
    }
}

TEST_F(CacheTest, VictimWriteBackOnConflict)
{
    // Two physical lines mapping the same set: the dirty victim must
    // be written back before the fill.
    PhysAddr pb(18 * 4096);  // same colour-1 set as pa via va1's index
    cache.write(va1, pa, 9);
    cache.read(va1, pb);  // evicts the dirty line
    EXPECT_EQ(mem.readWord(pa), 9u);
    EXPECT_EQ(stats.value("dcache.write_backs"), 1u);
}

TEST_F(CacheTest, OpCostAsymmetry)
{
    // Section 2.3: an operation on a present line is several times
    // slower than on an absent one.
    cache.write(va1, pa, 1);
    Cycles before = clk.now();
    cache.purgeLine(va1, pa);  // present
    Cycles present_cost = clk.now() - before;

    before = clk.now();
    cache.purgeLine(va1, pa);  // now absent
    Cycles absent_cost = clk.now() - before;
    EXPECT_GT(present_cost, absent_cost);
    EXPECT_EQ(present_cost, CacheCosts{}.opLinePresent);
    EXPECT_EQ(absent_cost, CacheCosts{}.opLineAbsent);
}

TEST_F(CacheTest, UniformOpCostModelsICachePurge)
{
    CacheCosts costs;
    costs.uniformOpCost = true;
    Cache icache("icache", geo, costs, WritePolicy::WriteBack, mem, clk,
                 stats);
    Cycles before = clk.now();
    icache.purgeLine(va1, pa);  // absent, but constant time
    EXPECT_EQ(clk.now() - before, costs.opLinePresent);
}

TEST_F(CacheTest, PurgeAllEmptiesCache)
{
    cache.write(va1, pa, 5);
    cache.purgeAll();
    EXPECT_FALSE(cache.probe(va1, pa).present);
    EXPECT_EQ(mem.readWord(pa), 0u);  // no write-back on power-cycle
}

TEST_F(CacheTest, SnoopInvalidateKillsAllAliases)
{
    cache.write(va1, pa, 1);
    cache.read(va2, pa);  // second (stale) copy at another set
    cache.snoopInvalidateLine(pa);
    EXPECT_FALSE(cache.probe(va1, pa).present);
    EXPECT_FALSE(cache.probe(va2, pa).present);
}

TEST_F(CacheTest, SnoopWriteBackDrainsDirtyAlias)
{
    cache.write(va1, pa, 31);
    EXPECT_TRUE(cache.snoopWriteBackLine(pa));
    EXPECT_EQ(mem.readWord(pa), 31u);
    EXPECT_FALSE(cache.snoopWriteBackLine(pa));  // now clean
}

TEST(CacheWriteThroughTest, MemoryNeverStale)
{
    PhysicalMemory mem(16, 4096);
    CycleClock clk;
    StatSet stats;
    CacheGeometry geo(64 * 1024, 32, 4096, 1, Indexing::Virtual);
    Cache wt("wt", geo, CacheCosts{}, WritePolicy::WriteThrough, mem,
             clk, stats);

    VirtAddr va(4096);
    PhysAddr pa(2 * 4096);
    wt.read(va, pa);            // allocate the line
    wt.write(va, pa, 77);       // hit: updates line AND memory
    EXPECT_EQ(mem.readWord(pa), 77u);
    Cache::Probe p = wt.probe(va, pa);
    EXPECT_TRUE(p.present);
    EXPECT_FALSE(p.dirty);      // write-through lines are never dirty
}

TEST(CacheWriteThroughTest, WriteMissDoesNotAllocate)
{
    PhysicalMemory mem(16, 4096);
    CycleClock clk;
    StatSet stats;
    CacheGeometry geo(64 * 1024, 32, 4096, 1, Indexing::Virtual);
    Cache wt("wt", geo, CacheCosts{}, WritePolicy::WriteThrough, mem,
             clk, stats);

    wt.write(VirtAddr(4096), PhysAddr(8192), 5);
    EXPECT_EQ(mem.readWord(PhysAddr(8192)), 5u);
    EXPECT_FALSE(wt.probe(VirtAddr(4096), PhysAddr(8192)).present);
}

TEST(CachePhysicalIndexTest, AliasesAreHarmless)
{
    PhysicalMemory mem(16, 4096);
    CycleClock clk;
    StatSet stats;
    CacheGeometry geo(64 * 1024, 32, 4096, 1, Indexing::Physical);
    Cache pipt("pipt", geo, CacheCosts{}, WritePolicy::WriteBack, mem,
               clk, stats);

    // Any two virtual addresses see the same line for one PA.
    pipt.write(VirtAddr(0x1000), PhysAddr(0x5000), 9);
    EXPECT_EQ(pipt.read(VirtAddr(0x7000), PhysAddr(0x5000)), 9u);
}

TEST(CacheSetAssociativeTest, WaysWithinASetStayConsistent)
{
    PhysicalMemory mem(64, 4096);
    CycleClock clk;
    StatSet stats;
    // 2-way: span 32 KB, 8 colours.
    CacheGeometry geo(64 * 1024, 32, 4096, 2, Indexing::Virtual);
    Cache c("assoc", geo, CacheCosts{}, WritePolicy::WriteBack, mem,
            clk, stats);

    // Two physical lines in the same set coexist in different ways.
    PhysAddr pa1(2 * 4096), pa2(10 * 4096);
    VirtAddr va(4096);
    c.write(va, pa1, 1);
    c.write(va, pa2, 2);
    EXPECT_EQ(c.read(va, pa1), 1u);  // still present: two ways
    EXPECT_EQ(c.read(va, pa2), 2u);
    EXPECT_EQ(stats.value("assoc.write_backs"), 0u);
}

TEST(CacheSetAssociativeTest, LruEvictsOldestWay)
{
    PhysicalMemory mem(64, 4096);
    CycleClock clk;
    StatSet stats;
    CacheGeometry geo(4 * 1024, 32, 4096, 2, Indexing::Virtual);
    Cache c("lru", geo, CacheCosts{}, WritePolicy::WriteBack, mem, clk,
            stats);

    VirtAddr va(0);
    PhysAddr pa1(0x4000), pa2(0x8000), pa3(0xc000);
    c.read(va, pa1);
    c.read(va, pa2);
    c.read(va, pa1);   // pa1 most recent
    c.read(va, pa3);   // evicts pa2
    EXPECT_TRUE(c.probe(va, pa1).present);
    EXPECT_FALSE(c.probe(va, pa2).present);
    EXPECT_TRUE(c.probe(va, pa3).present);
}

} // anonymous namespace
} // namespace vic
