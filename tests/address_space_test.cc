/** @file Unit tests for regions and the colour-aware VA allocator. */

#include <gtest/gtest.h>

#include "os/address_space.hh"

namespace vic
{
namespace
{

constexpr std::uint32_t pageBytes = 4096;
constexpr std::uint32_t colours = 16;
constexpr std::uint64_t dynBase = 0x8000'0000;

class AddressSpaceTest : public ::testing::Test
{
  protected:
    AddressSpace as{3, pageBytes, colours, dynBase};

    std::shared_ptr<VmObject>
    obj(std::uint64_t pages)
    {
        return std::make_shared<VmObject>(VmObject::anonymous(pages));
    }

    CachePageId
    colourOf(VirtAddr va)
    {
        return static_cast<CachePageId>((va.value / pageBytes) %
                                        colours);
    }
};

TEST_F(AddressSpaceTest, AllocateVaFirstFit)
{
    VirtAddr a = as.allocateVa(2, std::nullopt);
    VirtAddr b = as.allocateVa(1, std::nullopt);
    EXPECT_EQ(a.value, dynBase);
    EXPECT_EQ(b.value, dynBase + 2 * pageBytes);
}

TEST_F(AddressSpaceTest, AllocateVaHonoursColour)
{
    for (CachePageId want : {0u, 5u, 15u, 3u, 3u}) {
        VirtAddr va = as.allocateVa(1, want);
        EXPECT_EQ(colourOf(va), want);
    }
}

TEST_F(AddressSpaceTest, ColouredAllocationsDoNotOverlap)
{
    VirtAddr a = as.allocateVa(3, 7);
    VirtAddr b = as.allocateVa(3, 7);
    EXPECT_GE(b.value, a.value + 3 * pageBytes);
}

TEST_F(AddressSpaceTest, RegionLookupByAnyContainedAddress)
{
    VirtAddr start = as.allocateVa(2, std::nullopt);
    as.createRegion(start, 2, Protection::readWrite(),
                    Protection::readWrite(), obj(2), 0, false);
    EXPECT_NE(as.regionFor(start), nullptr);
    EXPECT_NE(as.regionFor(start.plus(pageBytes + 12)), nullptr);
    EXPECT_EQ(as.regionFor(start.plus(2 * pageBytes)), nullptr);
}

TEST_F(AddressSpaceTest, RegionPageIndex)
{
    VirtAddr start = as.allocateVa(4, std::nullopt);
    Region &r = as.createRegion(start, 4, Protection::readWrite(),
                                Protection::readWrite(), obj(4), 0,
                                false);
    EXPECT_EQ(r.pageIndexOf(start, pageBytes), 0u);
    EXPECT_EQ(r.pageIndexOf(start.plus(3 * pageBytes + 100), pageBytes),
              3u);
}

TEST_F(AddressSpaceTest, RemoveRegionDetaches)
{
    VirtAddr start = as.allocateVa(1, std::nullopt);
    as.createRegion(start, 1, Protection::readOnly(),
                    Protection::readOnly(), obj(1), 0, false);
    Region r = as.removeRegion(start);
    EXPECT_EQ(r.start, start);
    EXPECT_EQ(as.regionFor(start), nullptr);
}

TEST_F(AddressSpaceTest, OverlappingRegionPanics)
{
    VirtAddr start = as.allocateVa(2, std::nullopt);
    as.createRegion(start, 2, Protection::readWrite(),
                    Protection::readWrite(), obj(2), 0, false);
    EXPECT_DEATH(as.createRegion(start.plus(pageBytes), 1,
                                 Protection::readWrite(),
                                 Protection::readWrite(), obj(1), 0,
                                 false),
                 "overlapping");
}

TEST_F(AddressSpaceTest, RegionLargerThanObjectPanics)
{
    VirtAddr start = as.allocateVa(2, std::nullopt);
    EXPECT_DEATH(as.createRegion(start, 2, Protection::readWrite(),
                                 Protection::readWrite(), obj(1), 0,
                                 false),
                 "exceeds object");
}

TEST_F(AddressSpaceTest, FirstAccessClaimedOnce)
{
    VirtAddr va(0x1234000);
    EXPECT_TRUE(as.claimFirstAccess(va));
    EXPECT_FALSE(as.claimFirstAccess(va));
    EXPECT_TRUE(as.claimFirstAccess(va.plus(pageBytes)));
}

TEST(VmObjectTest, AnonymousFactory)
{
    VmObject o = VmObject::anonymous(3);
    EXPECT_EQ(o.backing(), VmObject::Backing::Zero);
    EXPECT_EQ(o.numPages(), 3u);
    EXPECT_FALSE(o.frameAt(0).has_value());
    EXPECT_FALSE(o.swapBlockAt(0).has_value());
}

TEST(VmObjectTest, FileBackedFactory)
{
    VmObject o = VmObject::fileBacked(7, 2);
    EXPECT_EQ(o.backing(), VmObject::Backing::File);
    EXPECT_EQ(o.file(), 7u);
}

TEST(VmObjectTest, FrameResidency)
{
    VmObject o = VmObject::anonymous(3);
    o.setFrame(1, 42);
    EXPECT_EQ(o.frameAt(1), std::optional<FrameId>(42));
    EXPECT_EQ(o.residentFrames(), std::vector<FrameId>{42});
    o.clearFrame(1);
    EXPECT_FALSE(o.frameAt(1).has_value());
    EXPECT_TRUE(o.residentFrames().empty());
}

TEST(VmObjectTest, SwapBookkeeping)
{
    VmObject o = VmObject::anonymous(2);
    o.setSwapBlock(0, 0x100000001ull);
    EXPECT_EQ(o.swapBlockAt(0),
              std::optional<std::uint64_t>(0x100000001ull));
    EXPECT_EQ(o.swapBlocks().size(), 1u);
    o.clearSwapBlock(0);
    EXPECT_TRUE(o.swapBlocks().empty());
}

TEST(VmObjectDeathTest, OutOfRangePagePanics)
{
    VmObject o = VmObject::anonymous(1);
    EXPECT_DEATH(o.setFrame(1, 0), "out of range");
}

} // anonymous namespace
} // namespace vic
