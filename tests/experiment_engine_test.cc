/**
 * @file
 * ExperimentEngine: spec-order collection under parallel execution,
 * per-run failure isolation, filter semantics, seed derivation, and
 * the JSON artifact round-trip / determinism guarantees.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "experiment/experiment_engine.hh"
#include "experiment/json_artifact.hh"
#include "workload/contrived_alias.hh"

namespace vic
{
namespace
{

/** A cheap spec: the aligned contrived loop at @p writes stores. */
RunSpec
aliasSpec(const std::string &id, std::uint32_t writes,
          bool aligned = true)
{
    RunSpec spec;
    spec.id = id;
    spec.suite = "test";
    spec.make = [aligned, writes] {
        return std::make_unique<ContrivedAlias>(
            ContrivedAlias::Params{aligned, writes, false});
    };
    spec.policy = PolicyConfig::configF();
    return spec;
}

class ThrowingWorkload : public Workload
{
  public:
    std::string name() const override { return "throwing"; }
    void
    run(Kernel &) override
    {
        throw std::runtime_error("deliberate test failure");
    }
};

TEST(ExperimentEngine, CollectsOutcomesInSpecOrder)
{
    // Durations spread over two orders of magnitude and deliberately
    // decreasing, so under parallel execution later specs finish
    // first; collection must still be in spec order.
    std::vector<RunSpec> specs;
    const std::uint32_t writes[] = {20000, 5000, 1000, 200, 100, 50};
    for (std::size_t i = 0; i < std::size(writes); ++i) {
        specs.push_back(aliasSpec("run" + std::to_string(i),
                                  writes[i], /*aligned=*/false));
    }

    ExperimentEngine engine;
    ExperimentEngine::Options opts;
    opts.jobs = 4;
    std::vector<RunOutcome> outcomes = engine.run(specs, opts);

    ASSERT_EQ(outcomes.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(outcomes[i].id, specs[i].id);
        EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    }
    // More simulated work takes more simulated cycles, confirming the
    // slots really hold each spec's own run.
    for (std::size_t i = 1; i < outcomes.size(); ++i)
        EXPECT_GT(outcomes[i - 1].result.cycles,
                  outcomes[i].result.cycles);
}

TEST(ExperimentEngine, ParallelMatchesSerial)
{
    std::vector<RunSpec> specs;
    for (int i = 0; i < 4; ++i)
        specs.push_back(aliasSpec("r" + std::to_string(i),
                                  500 * (i + 1), i % 2 == 0));

    ExperimentEngine engine;
    std::vector<RunOutcome> serial = engine.run(specs);
    ExperimentEngine::Options opts;
    opts.jobs = 3;
    std::vector<RunOutcome> parallel = engine.run(specs, opts);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].result.cycles, parallel[i].result.cycles);
        EXPECT_EQ(serial[i].result.stats, parallel[i].result.stats);
        EXPECT_EQ(serial[i].effectiveSeed, parallel[i].effectiveSeed);
    }
}

TEST(ExperimentEngine, ThrowingRunFailsAloneWithoutTearingDownBatch)
{
    std::vector<RunSpec> specs;
    specs.push_back(aliasSpec("good0", 100));
    RunSpec bad;
    bad.id = "bad";
    bad.suite = "test";
    bad.make = [] { return std::make_unique<ThrowingWorkload>(); };
    bad.policy = PolicyConfig::configF();
    specs.push_back(std::move(bad));
    specs.push_back(aliasSpec("good1", 100));

    ExperimentEngine engine;
    ExperimentEngine::Options opts;
    opts.jobs = 2;
    std::vector<RunOutcome> outcomes = engine.run(specs, opts);

    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_NE(outcomes[1].error.find("deliberate test failure"),
              std::string::npos);
    EXPECT_TRUE(outcomes[2].ok);
    EXPECT_EQ(outcomes[0].result.cycles, outcomes[2].result.cycles);
}

TEST(ExperimentEngine, FilterSemantics)
{
    // Empty filter matches everything.
    EXPECT_TRUE(ExperimentEngine::matchesFilter("table1/afs/F", ""));
    // Substring match anywhere in the id.
    EXPECT_TRUE(
        ExperimentEngine::matchesFilter("table1/afs/F", "afs"));
    EXPECT_FALSE(
        ExperimentEngine::matchesFilter("table1/afs/F", "latex"));
    // Comma-separated alternatives: any may match.
    EXPECT_TRUE(ExperimentEngine::matchesFilter("table1/afs/F",
                                                "latex,afs"));
    EXPECT_FALSE(ExperimentEngine::matchesFilter("table1/afs/F",
                                                 "latex,db"));
}

TEST(ExperimentEngine, EffectiveSeedPreservesBaseForReplicaZero)
{
    // Replica 0 must run the workload's calibrated stream verbatim:
    // the paper's methodology is the SAME reference stream under
    // every policy.
    EXPECT_EQ(ExperimentEngine::effectiveSeed(0xaf5, 0), 0xaf5u);
    // Replicas get expanded, distinct, deterministic seeds.
    const std::uint64_t r1 = ExperimentEngine::effectiveSeed(0xaf5, 1);
    const std::uint64_t r2 = ExperimentEngine::effectiveSeed(0xaf5, 2);
    EXPECT_NE(r1, 0xaf5u);
    EXPECT_NE(r1, r2);
    EXPECT_EQ(r1, ExperimentEngine::effectiveSeed(0xaf5, 1));
}

TEST(ExperimentEngine, SecondsAgreeWithCycleCounter)
{
    std::vector<RunSpec> specs{aliasSpec("r", 300)};
    ExperimentEngine engine;
    std::vector<RunOutcome> outcomes = engine.run(specs);
    ASSERT_TRUE(outcomes[0].ok);
    const RunResult &r = outcomes[0].result;
    EXPECT_GT(r.cycles, 0u);
    // seconds is derived from the SAME clock read as cycles — never
    // a separately sampled (potentially stale) snapshot.
    EXPECT_DOUBLE_EQ(r.seconds, double(r.cycles) /
                                    double(specs[0].machine.clockHz));
}

TEST(RunResult, SumMatchingAnyCountsOverlappingCountersOnce)
{
    RunResult r;
    r.stats["dcache.write_backs"] = 5;
    r.stats["dcache0.write_backs"] = 3;
    r.stats["dcache1.write_backs"] = 4;
    r.stats["icache.write_backs"] = 100;

    // "dcache.write_backs" matches BOTH the exact pattern and the
    // prefix+suffix pattern; it must contribute once.
    EXPECT_EQ(r.writeBacks(), 12u);

    // The raw prefix+suffix helper is unchanged.
    EXPECT_EQ(r.sumMatching("dcache", ".write_backs"), 12u);

    // Duplicate patterns never double a counter either.
    EXPECT_EQ(r.sumMatchingAny({{.exact = "icache.write_backs",
                                 .prefix = "",
                                 .suffix = ""},
                                {.exact = "icache.write_backs",
                                 .prefix = "",
                                 .suffix = ""}}),
              100u);
}

TEST(JsonArtifact, RunResultRoundTrip)
{
    RunResult r;
    r.workload = "afs-bench";
    r.policy = "F (+will overwrite)";
    r.cycles = 123456789;
    r.seconds = double(r.cycles) / 50e6;
    r.oracleChecked = 42;
    r.oracleViolations = 0;
    r.stats["dcache.hits"] = 17;
    r.stats["pmap.d_page_flushes"] = 3;
    r.traceTail = {"ev1", "ev2"};

    const JsonValue j = runResultToJson(r);
    const RunResult back =
        runResultFromJson(JsonValue::parse(j.dump(2)));

    EXPECT_EQ(back.workload, r.workload);
    EXPECT_EQ(back.policy, r.policy);
    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_DOUBLE_EQ(back.seconds, r.seconds);
    EXPECT_EQ(back.oracleChecked, r.oracleChecked);
    EXPECT_EQ(back.oracleViolations, r.oracleViolations);
    EXPECT_EQ(back.stats, r.stats);
    EXPECT_EQ(back.traceTail, r.traceTail);
}

TEST(JsonArtifact, SerialAndParallelArtifactsAreEquivalent)
{
    std::vector<RunSpec> specs;
    for (int i = 0; i < 5; ++i)
        specs.push_back(aliasSpec("r" + std::to_string(i),
                                  200 * (5 - i), i % 2 == 0));

    ExperimentEngine engine;
    ExperimentEngine::Options par;
    par.jobs = 4;

    ArtifactMeta meta_serial;
    meta_serial.jobs = 1;
    meta_serial.wallSeconds = 0.25;
    ArtifactMeta meta_parallel;
    meta_parallel.jobs = 4;
    meta_parallel.wallSeconds = 0.75;

    const std::string a =
        renderArtifact(meta_serial, engine.run(specs));
    const std::string b =
        renderArtifact(meta_parallel, engine.run(specs, par));

    std::string why;
    EXPECT_TRUE(artifactsEquivalent(a, b, &why)) << why;

    // And a real difference IS reported.
    std::vector<RunOutcome> mutated = engine.run(specs);
    mutated[2].result.stats["dcache.hits"] += 1;
    const std::string c = renderArtifact(meta_serial, mutated);
    EXPECT_FALSE(artifactsEquivalent(a, c, &why));
    EXPECT_FALSE(why.empty());
}

} // anonymous namespace
} // namespace vic
