/**
 * @file
 * Bounded model checking of the pmap strategies.
 *
 * Rather than trusting random fuzz alone, enumerate EVERY operation
 * sequence up to a fixed depth over a small alphabet that covers the
 * paper's whole problem space — stores and loads through two unaligned
 * aliases and one aligned alias, unmap/remap, instruction fetch, and
 * both DMA directions — and require the consistency oracle to stay
 * silent for every policy. At depth 4 over 9 operations this is 6561
 * distinct machine histories per policy; combined with the depth-5 run
 * for the flagship config F, every reachable 4-event interaction of
 * the state machine is exercised against real data.
 */

#include <gtest/gtest.h>

#include "machine/cpu.hh"
#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"

namespace vic
{
namespace
{

/** Operation alphabet. */
enum class Op : int
{
    StoreA,    // store via alias A (colour 1)
    StoreB,    // store via alias B (colour 2, unaligned with A)
    LoadA,
    LoadB,
    StoreA2,   // store via A2 (aligned with A)
    RemapB,    // unmap B, map it again at a fresh aligned-with-B page
    IFetchA,   // execute through A
    DmaIn,     // device writes the page (disk read)
    DmaOut,    // device reads the page (disk write)
};

constexpr int numOps = 9;

/** One machine history: apply the sequence, return violations. */
std::uint64_t
runSequence(const PolicyConfig &policy, const std::vector<Op> &seq)
{
    MachineParams mp = MachineParams::hp720();
    mp.numFrames = 24;  // tiny: construction cost dominates otherwise
    Machine machine(mp);
    ConsistencyOracle oracle(machine.memory().sizeBytes());
    machine.setObserver(&oracle);
    OsParams op;
    op.bufferCacheSlots = 2;
    op.enablePageout = false;
    Kernel kernel(machine, policy, op);

    const std::uint32_t page = machine.pageBytes();
    const std::uint32_t colours =
        machine.dcache().geometry().numColours();
    TaskId t = kernel.createTask();

    // One shared object with three mappings: A, A2 aligned with A,
    // and B at a different colour.
    auto obj = std::make_shared<VmObject>(VmObject::anonymous(1));
    AddressSpace &as = kernel.addressSpace(t);
    VirtAddr a = kernel.vmMapShared(t, obj, Protection::all());
    const CachePageId ca = kernel.pmap().dColourOf(a);
    VirtAddr a2 = kernel.vmMapShared(t, obj, Protection::all(),
                                     as.allocateVa(1, ca));
    const CachePageId cb = (ca + colours / 2) % colours;
    VirtAddr b = kernel.vmMapShared(t, obj, Protection::all(),
                                    as.allocateVa(1, cb));

    std::uint32_t stamp = 0x100;
    for (Op o : seq) {
        switch (o) {
          case Op::StoreA:
            kernel.userStore(t, a, ++stamp);
            break;
          case Op::StoreB:
            kernel.userStore(t, b, ++stamp);
            break;
          case Op::LoadA:
            kernel.userLoad(t, a.plus(4));
            kernel.userLoad(t, a);
            break;
          case Op::LoadB:
            kernel.userLoad(t, b);
            break;
          case Op::StoreA2:
            kernel.userStore(t, a2.plus(8), ++stamp);
            break;
          case Op::RemapB: {
              Region r = as.removeRegion(b);
              kernel.pmap().remove(SpaceVa(as.id(), b));
              b = as.allocateVa(1, cb);
              as.createRegion(b, 1, r.prot, r.maxProt, r.object, 0,
                              false);
              break;
          }
          case Op::IFetchA:
            kernel.userExec(t, a);
            break;
          case Op::DmaIn: {
              // The device deposits fresh data into the frame.
              auto frame = obj->frameAt(0);
              if (!frame)
                  break;  // nothing resident yet: no transfer
              kernel.pmap().dmaWrite(*frame);
              std::vector<std::uint32_t> data(page / 4);
              for (std::uint32_t i = 0; i < page / 4; ++i)
                  data[i] = ++stamp;
              machine.dma().deviceWrite(machine.frameAddr(*frame),
                                        data.data(), page / 4);
              break;
          }
          case Op::DmaOut: {
              auto frame = obj->frameAt(0);
              if (!frame)
                  break;
              kernel.pmap().dmaRead(*frame, true);
              std::vector<std::uint32_t> out(page / 4);
              machine.dma().deviceRead(machine.frameAddr(*frame),
                                       out.data(), page / 4);
              break;
          }
        }
    }

    // Final observation through every alias.
    kernel.userLoad(t, a);
    kernel.userLoad(t, a2);
    kernel.userLoad(t, b);
    return oracle.violationCount();
}

void
checkAllSequences(const PolicyConfig &policy, int depth)
{
    std::vector<Op> seq(static_cast<std::size_t>(depth));
    std::uint64_t total = 1;
    for (int i = 0; i < depth; ++i)
        total *= numOps;

    for (std::uint64_t code = 0; code < total; ++code) {
        std::uint64_t c = code;
        for (int i = 0; i < depth; ++i) {
            seq[std::size_t(i)] = static_cast<Op>(c % numOps);
            c /= numOps;
        }
        ASSERT_EQ(runSequence(policy, seq), 0u)
            << policy.name << " sequence code " << code;
    }
}

class BoundedModelCheckTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BoundedModelCheckTest, AllDepth3SequencesConsistent)
{
    std::vector<PolicyConfig> policies = PolicyConfig::table4Sweep();
    for (auto &sys : PolicyConfig::table5Systems())
        policies.push_back(sys);
    checkAllSequences(policies[std::size_t(GetParam())], 3);
}

INSTANTIATE_TEST_SUITE_P(Policies, BoundedModelCheckTest,
                         ::testing::Range(0, 11));

TEST(BoundedModelCheckDeepTest, ConfigFDepth4)
{
    checkAllSequences(PolicyConfig::configF(), 4);
}

TEST(BoundedModelCheckDeepTest, ConfigADepth4)
{
    checkAllSequences(PolicyConfig::configA(), 4);
}

} // anonymous namespace
} // namespace vic
