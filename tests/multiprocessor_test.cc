/**
 * @file
 * Section 3.3, "Cache-coherent multiprocessors": equivalent cache
 * pages across processors form a hardware-consistent set, and the
 * consistency model needs NO rule changes. These tests cover the
 * hardware coherence layer itself, the unchanged CacheControl rules on
 * a 2-CPU machine, and full kernel workloads across 1/2/4 CPUs under
 * every policy.
 */

#include <gtest/gtest.h>

#include "core/lazy_pmap.hh"
#include "machine/cpu.hh"
#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"
#include "workload/afs_bench.hh"
#include "workload/contrived_alias.hh"
#include "workload/kernel_build.hh"
#include "workload/runner.hh"

namespace vic
{
namespace
{

MachineParams
mpParams(std::uint32_t cpus)
{
    MachineParams p = MachineParams::hp720();
    p.numCpus = cpus;
    return p;
}

// ---------------------------------------------------------------------
// Hardware coherence layer (no pmap): raw CPUs on one page table.
// ---------------------------------------------------------------------

class CoherenceTest : public ::testing::Test
{
  protected:
    CoherenceTest() : machine(mpParams(2)), cpu0(machine, 0),
                      cpu1(machine, 1)
    {
        machine.pageTable().enter(SpaceVa(1, VirtAddr(0x4000)), 2,
                                  Protection::all());
        cpu0.setSpace(1);
        cpu1.setSpace(1);
    }

    Machine machine;
    Cpu cpu0;
    Cpu cpu1;
};

TEST_F(CoherenceTest, PeerReadSeesDirtyWrite)
{
    cpu0.store(VirtAddr(0x4000), 77);
    // Without snooping, cpu1 would fill stale memory; the coherence
    // step writes cpu0's dirty line back first.
    EXPECT_EQ(cpu1.load(VirtAddr(0x4000)), 77u);
}

TEST_F(CoherenceTest, WriteInvalidatesPeerCopies)
{
    cpu0.load(VirtAddr(0x4000));
    cpu1.load(VirtAddr(0x4000));  // both hold clean copies
    cpu0.store(VirtAddr(0x4000), 123);
    EXPECT_EQ(cpu1.load(VirtAddr(0x4000)), 123u);  // refetched
}

TEST_F(CoherenceTest, PingPongOwnershipMigrates)
{
    for (std::uint32_t i = 0; i < 20; ++i) {
        Cpu &writer = i % 2 ? cpu1 : cpu0;
        Cpu &reader = i % 2 ? cpu0 : cpu1;
        writer.store(VirtAddr(0x4000 + 4 * (i % 8)), i);
        EXPECT_EQ(reader.load(VirtAddr(0x4000 + 4 * (i % 8))), i);
    }
}

TEST_F(CoherenceTest, AtMostOneDirtyCopy)
{
    cpu0.store(VirtAddr(0x4000), 1);
    cpu1.store(VirtAddr(0x4000), 2);
    // cpu0's copy was invalidated; only cpu1's line may be dirty.
    PhysAddr pa = machine.frameAddr(2);
    EXPECT_FALSE(machine.dcache(0).probe(VirtAddr(0x4000), pa).present);
    EXPECT_TRUE(machine.dcache(1).probe(VirtAddr(0x4000), pa).dirty);
}

TEST_F(CoherenceTest, SnoopInterventionChargesBusCycles)
{
    cpu0.store(VirtAddr(0x4000), 1);
    Cycles before = machine.clock().now();
    cpu1.load(VirtAddr(0x4000));
    EXPECT_GE(machine.clock().now() - before,
              machine.params().snoopPenalty);
}

// --- MESI state machine, transition by transition ---------------------

TEST_F(CoherenceTest, MesiFillIsExclusiveWhenNoPeerHasTheLine)
{
    const PhysAddr pa = machine.frameAddr(2);
    cpu0.load(VirtAddr(0x4000));
    EXPECT_EQ(machine.dcache(0).probe(VirtAddr(0x4000), pa).state,
              MesiState::Exclusive);
    EXPECT_EQ(machine.dcache(1).probe(VirtAddr(0x4000), pa).state,
              MesiState::Invalid);
}

TEST_F(CoherenceTest, MesiPeerFillDemotesExclusiveToShared)
{
    const PhysAddr pa = machine.frameAddr(2);
    cpu0.load(VirtAddr(0x4000));
    cpu1.load(VirtAddr(0x4000));
    EXPECT_EQ(machine.dcache(0).probe(VirtAddr(0x4000), pa).state,
              MesiState::Shared);
    EXPECT_EQ(machine.dcache(1).probe(VirtAddr(0x4000), pa).state,
              MesiState::Shared);
}

TEST_F(CoherenceTest, MesiStoreToExclusiveUpgradesSilently)
{
    const PhysAddr pa = machine.frameAddr(2);
    cpu0.load(VirtAddr(0x4000));
    const std::uint64_t upgrades = machine.stats().value("bus.upgrades");
    cpu0.store(VirtAddr(0x4000), 5);
    // E -> M is the silent transition: no bus transaction at all.
    EXPECT_EQ(machine.dcache(0).probe(VirtAddr(0x4000), pa).state,
              MesiState::Modified);
    EXPECT_EQ(machine.stats().value("bus.upgrades"), upgrades);
}

TEST_F(CoherenceTest, MesiStoreToSharedBroadcastsAnUpgrade)
{
    const PhysAddr pa = machine.frameAddr(2);
    cpu0.load(VirtAddr(0x4000));
    cpu1.load(VirtAddr(0x4000)); // S in both
    cpu0.store(VirtAddr(0x4000), 9);
    EXPECT_EQ(machine.dcache(0).probe(VirtAddr(0x4000), pa).state,
              MesiState::Modified);
    EXPECT_EQ(machine.dcache(1).probe(VirtAddr(0x4000), pa).state,
              MesiState::Invalid);
    EXPECT_GE(machine.stats().value("bus.upgrades"), 1u);
    EXPECT_GE(machine.stats().value("bus.invalidations"), 1u);
}

TEST_F(CoherenceTest, MesiSnoopDemotesModifiedToSharedWithWriteBack)
{
    const PhysAddr pa = machine.frameAddr(2);
    cpu0.store(VirtAddr(0x4000), 31);
    EXPECT_EQ(machine.dcache(0).probe(VirtAddr(0x4000), pa).state,
              MesiState::Modified);
    cpu1.load(VirtAddr(0x4000));
    // The owner intervened: its line is written back and demoted, the
    // requester fills Shared, and memory holds the store.
    EXPECT_EQ(machine.dcache(0).probe(VirtAddr(0x4000), pa).state,
              MesiState::Shared);
    EXPECT_EQ(machine.dcache(1).probe(VirtAddr(0x4000), pa).state,
              MesiState::Shared);
    EXPECT_EQ(machine.memory().readWord(pa), 31u);
    EXPECT_GE(machine.stats().value("bus.interventions"), 1u);
}

TEST_F(CoherenceTest, MesiReadExclusiveInvalidatesTheOwner)
{
    const PhysAddr pa = machine.frameAddr(2);
    cpu0.store(VirtAddr(0x4000), 1); // M in cache0
    cpu1.store(VirtAddr(0x4000), 2); // miss-for-write: busReadExclusive
    EXPECT_EQ(machine.dcache(0).probe(VirtAddr(0x4000), pa).state,
              MesiState::Invalid);
    EXPECT_EQ(machine.dcache(1).probe(VirtAddr(0x4000), pa).state,
              MesiState::Modified);
    // cpu0's value reached memory before cpu1's line took ownership.
    EXPECT_EQ(machine.memory().readWord(pa), 1u);
}

TEST_F(CoherenceTest, MesiOwnershipImpliesAllPeersInvalid)
{
    // Invariant sweep over a ping-pong history: whenever one cache
    // holds a line M or E, the other must hold it Invalid.
    for (std::uint32_t i = 0; i < 12; ++i) {
        Cpu &writer = i % 2 ? cpu1 : cpu0;
        writer.store(VirtAddr(0x4000), i);
        const PhysAddr pa = machine.frameAddr(2);
        const MesiState s0 =
            machine.dcache(0).probe(VirtAddr(0x4000), pa).state;
        const MesiState s1 =
            machine.dcache(1).probe(VirtAddr(0x4000), pa).state;
        if (s0 == MesiState::Modified || s0 == MesiState::Exclusive) {
            EXPECT_EQ(s1, MesiState::Invalid) << i;
        }
        if (s1 == MesiState::Modified || s1 == MesiState::Exclusive) {
            EXPECT_EQ(s0, MesiState::Invalid) << i;
        }
    }
}

TEST_F(CoherenceTest, NonCoherentConfigReadsStaleMemory)
{
    // The same machine without the bus: the peer fill bypasses the
    // dirty copy — the failure mode the MESI configs exist to prevent
    // (and the one the race detector must keep reporting).
    MachineParams p = mpParams(2);
    p.cpuCoherence = MachineParams::CpuCoherence::None;
    Machine bare(p);
    bare.pageTable().enter(SpaceVa(1, VirtAddr(0x4000)), 2,
                           Protection::all());
    Cpu c0(bare, 0), c1(bare, 1);
    c0.setSpace(1);
    c1.setSpace(1);
    c0.store(VirtAddr(0x4000), 77);
    EXPECT_NE(c1.load(VirtAddr(0x4000)), 77u); // stale fill
}

TEST_F(CoherenceTest, TlbsArePerCpu)
{
    cpu0.load(VirtAddr(0x4000));
    cpu1.load(VirtAddr(0x4000));
    EXPECT_EQ(machine.tlb(0).validCount(), 1u);
    EXPECT_EQ(machine.tlb(1).validCount(), 1u);
    machine.tlb(0).invalidateAll();
    EXPECT_EQ(machine.tlb(1).validCount(), 1u);  // private
}

TEST_F(CoherenceTest, ShootdownReachesEveryCpu)
{
    cpu0.load(VirtAddr(0x4000));
    cpu1.load(VirtAddr(0x4000));
    machine.tlbShootdownPage(SpaceVa(1, VirtAddr(0x4000)));
    EXPECT_EQ(machine.tlb(0).validCount(), 0u);
    EXPECT_EQ(machine.tlb(1).validCount(), 0u);
}

TEST_F(CoherenceTest, CachesArePerCpu)
{
    cpu0.load(VirtAddr(0x4000));
    EXPECT_EQ(machine.stats().value("dcache0.reads"), 1u);
    EXPECT_EQ(machine.stats().value("dcache1.reads"), 0u);
}

// ---------------------------------------------------------------------
// Unchanged consistency rules: LazyPmap on a 2-CPU machine.
// ---------------------------------------------------------------------

class MpPmapTest : public ::testing::Test
{
  protected:
    MpPmapTest()
        : machine(mpParams(2)),
          oracle(machine.memory().sizeBytes()),
          pmap(machine, PolicyConfig::configF()), cpu0(machine, 0),
          cpu1(machine, 1)
    {
        machine.setObserver(&oracle);
        for (Cpu *c : {&cpu0, &cpu1}) {
            c->setSpace(1);
            c->setFaultHandler([this](const Fault &f) {
                return pmap.resolveConsistencyFault(f.address, f.access);
            });
        }
    }

    Machine machine;
    ConsistencyOracle oracle;
    LazyPmap pmap;
    Cpu cpu0;
    Cpu cpu1;
};

TEST_F(MpPmapTest, AlignedSharingAcrossCpusIsFreeAndConsistent)
{
    // Same virtual address on both CPUs: same colour, one hardware
    // set across the two caches — the Section 3.3 claim.
    pmap.enter(SpaceVa(1, VirtAddr(0x4000)), 2, Protection::all(),
               AccessType::Store, {});
    for (std::uint32_t i = 0; i < 16; ++i) {
        (i % 2 ? cpu1 : cpu0).store(VirtAddr(0x4000), i);
        EXPECT_EQ((i % 2 ? cpu0 : cpu1).load(VirtAddr(0x4000)), i);
    }
    EXPECT_EQ(machine.stats().value("pmap.d_page_flushes"), 0u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(MpPmapTest, UnalignedAliasAcrossCpusStillNeedsSoftware)
{
    // cpu0 writes via colour 1; cpu1 reads via colour 2. The software
    // rules are exactly the uniprocessor ones (broadcast ops).
    pmap.enter(SpaceVa(1, VirtAddr(0x1000)), 7, Protection::all(),
               AccessType::Store, {});
    pmap.enter(SpaceVa(1, VirtAddr(0x2000)), 7, Protection::all(),
               AccessType::Load, {});
    cpu0.store(VirtAddr(0x1000), 4242);
    EXPECT_EQ(cpu1.load(VirtAddr(0x2000)), 4242u);
    EXPECT_GE(machine.stats().value("pmap.d_page_flushes"), 1u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(MpPmapTest, BroadcastFlushReachesTheOwningCpu)
{
    // Dirty data sits in cpu1's cache; a DMA-read prepared through the
    // pmap must flush it even though the pmap has no idea which CPU
    // owns the line.
    pmap.enter(SpaceVa(1, VirtAddr(0x1000)), 7, Protection::all(),
               AccessType::Store, {});
    cpu1.store(VirtAddr(0x1000), 99);
    pmap.dmaRead(7, true);
    EXPECT_EQ(machine.memory().readWord(machine.frameAddr(7)), 99u);
}

// ---------------------------------------------------------------------
// Full system on 1/2/4 CPUs.
// ---------------------------------------------------------------------

class MpWorkloadTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MpWorkloadTest, WorkloadsConsistentOnMultiprocessors)
{
    auto [ncpus, policy_idx] = GetParam();
    std::vector<PolicyConfig> policies = {
        PolicyConfig::configA(), PolicyConfig::configF(),
        PolicyConfig::tut()};

    KernelBuild::Params p;
    p.numSourceFiles = 6;
    p.compilerTextPages = 2;
    p.computePerFile = 1000;
    KernelBuild wl(p);
    RunResult r = runWorkload(wl, policies[std::size_t(policy_idx)],
                              mpParams(std::uint32_t(ncpus)));
    EXPECT_EQ(r.oracleViolations, 0u)
        << ncpus << " cpus under " << r.policy;
}

INSTANTIATE_TEST_SUITE_P(CpusXPolicies, MpWorkloadTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Range(0, 3)));

TEST(MpWorkloadExtraTest, AfsOnTwoCpus)
{
    AfsBench::Params p;
    p.numFiles = 8;
    p.computePerFile = 1000;
    AfsBench wl(p);
    RunResult r = runWorkload(wl, PolicyConfig::configF(), mpParams(2));
    EXPECT_EQ(r.oracleViolations, 0u);
}

TEST(MpWorkloadExtraTest, ContrivedAliasOnTwoCpus)
{
    for (bool aligned : {true, false}) {
        ContrivedAlias wl({aligned, 2000, true});
        RunResult r =
            runWorkload(wl, PolicyConfig::configF(), mpParams(2));
        EXPECT_EQ(r.oracleViolations, 0u) << aligned;
    }
}

TEST(MpWorkloadExtraTest, BrokenPolicyStillBreaksOnMp)
{
    // Hardware coherence does NOT absolve the OS of alias management:
    // the within-cache unaligned alias still goes stale.
    ContrivedAlias wl({false, 2000, true});
    RunResult r = runWorkload(wl, PolicyConfig::broken(), mpParams(2));
    EXPECT_GT(r.oracleViolations, 0u);
}

} // anonymous namespace
} // namespace vic
