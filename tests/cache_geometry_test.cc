/** @file Unit tests for cache geometry: index math, colours,
 *  alignment. */

#include <gtest/gtest.h>

#include "cache/cache_geometry.hh"

namespace vic
{
namespace
{

CacheGeometry
vipt64k()
{
    // 64 KB direct-mapped VIPT cache, 32 B lines, 4 KB pages.
    return CacheGeometry(64 * 1024, 32, 4096, 1, Indexing::Virtual);
}

TEST(CacheGeometryTest, BasicDerivedQuantities)
{
    CacheGeometry g = vipt64k();
    EXPECT_EQ(g.numLines(), 2048u);
    EXPECT_EQ(g.numSets(), 2048u);
    EXPECT_EQ(g.wordsPerLine(), 8u);
    EXPECT_EQ(g.linesPerPage(), 128u);
    EXPECT_EQ(g.setSpanBytes(), 64u * 1024u);
    EXPECT_EQ(g.numColours(), 16u);
}

TEST(CacheGeometryTest, ColourIsPageNumberModuloColours)
{
    CacheGeometry g = vipt64k();
    EXPECT_EQ(g.colourOf(VirtAddr(0)), 0u);
    EXPECT_EQ(g.colourOf(VirtAddr(4096)), 1u);
    EXPECT_EQ(g.colourOf(VirtAddr(15 * 4096)), 15u);
    EXPECT_EQ(g.colourOf(VirtAddr(16 * 4096)), 0u);
    // Offsets within a page do not change the colour.
    EXPECT_EQ(g.colourOf(VirtAddr(4096 + 4095)), 1u);
}

TEST(CacheGeometryTest, AlignmentPredicate)
{
    CacheGeometry g = vipt64k();
    EXPECT_TRUE(g.aligned(VirtAddr(4096), VirtAddr(4096 + 16 * 4096)));
    EXPECT_FALSE(g.aligned(VirtAddr(4096), VirtAddr(2 * 4096)));
    // The paper's first hardware requirement: page alignment implies
    // alignment of every offset within the page.
    for (std::uint32_t off = 0; off < 4096; off += 32) {
        EXPECT_EQ(g.setIndex(4096 + off),
                  g.setIndex(4096 + 16 * 4096 + off));
    }
}

TEST(CacheGeometryTest, SetIndexWrapsAtSpan)
{
    CacheGeometry g = vipt64k();
    EXPECT_EQ(g.setIndex(0), 0u);
    EXPECT_EQ(g.setIndex(32), 1u);
    EXPECT_EQ(g.setIndex(64 * 1024), 0u);
}

TEST(CacheGeometryTest, PhysicalIndexingHasOneColour)
{
    CacheGeometry g(64 * 1024, 32, 4096, 1, Indexing::Physical);
    EXPECT_EQ(g.numColours(), 1u);
    // Every pair of virtual addresses aligns.
    EXPECT_TRUE(g.aligned(VirtAddr(0x1000), VirtAddr(0x2000)));
}

TEST(CacheGeometryTest, AssociativityShrinksSetSpan)
{
    // 4-way 64 KB: span = 16 KB = 4 colours.
    CacheGeometry g(64 * 1024, 32, 4096, 4, Indexing::Virtual);
    EXPECT_EQ(g.numSets(), 512u);
    EXPECT_EQ(g.setSpanBytes(), 16u * 1024u);
    EXPECT_EQ(g.numColours(), 4u);
}

TEST(CacheGeometryTest, SetSpanEqualPageMeansOneColour)
{
    // "Tying cache size and associativity to page size" (Section 1):
    // 16 KB 4-way = 4 KB span = page size -> no aliasing problem.
    CacheGeometry g(16 * 1024, 32, 4096, 4, Indexing::Virtual);
    EXPECT_EQ(g.numColours(), 1u);
}

TEST(CacheGeometryTest, LineBaseMasksOffset)
{
    CacheGeometry g = vipt64k();
    EXPECT_EQ(g.lineBase(0x1234), 0x1220u);
    EXPECT_EQ(g.lineBase(0x1220), 0x1220u);
}

TEST(CacheGeometryTest, ColourOfPhys)
{
    CacheGeometry g = vipt64k();
    EXPECT_EQ(g.colourOfPhys(PhysAddr(4096)), 1u);
    EXPECT_EQ(g.colourOfPhys(PhysAddr(17 * 4096)), 1u);
}

TEST(CacheGeometryDeathTest, RejectsBadGeometry)
{
    EXPECT_DEATH(CacheGeometry(60 * 1024, 32, 4096, 1,
                               Indexing::Virtual),
                 "power of two");
    EXPECT_DEATH(CacheGeometry(64 * 1024, 32, 4096, 0,
                               Indexing::Virtual),
                 "associativity");
    EXPECT_DEATH(CacheGeometry(64 * 1024, 24, 4096, 1,
                               Indexing::Virtual),
                 "line size");
}

} // anonymous namespace
} // namespace vic
