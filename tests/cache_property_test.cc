/**
 * @file
 * Property tests for the cache simulator, parameterised over geometry:
 * every combination of capacity, line size, associativity and index
 * policy must satisfy the same functional contracts — read-your-write
 * through one address, flush durability, purge discard, snoop
 * completeness, and equivalence with a flat reference memory when
 * every access goes through a single virtual address.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <unordered_map>

#include "cache/cache.hh"
#include "common/cycle_clock.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "mem/physical_memory.hh"

namespace vic
{
namespace
{

struct Geometry
{
    std::uint64_t cacheBytes;
    std::uint32_t lineBytes;
    std::uint32_t ways;
    Indexing indexing;
    WritePolicy policy;
};

class CachePropertyTest : public ::testing::TestWithParam<Geometry>
{
  protected:
    static constexpr std::uint32_t pageBytes = 4096;

    CachePropertyTest()
        : mem(64, pageBytes),
          geo(GetParam().cacheBytes, GetParam().lineBytes, pageBytes,
              GetParam().ways, GetParam().indexing),
          cache("c", geo, CacheCosts{}, GetParam().policy, mem, clk,
                stats)
    {
    }

    PhysicalMemory mem;
    CycleClock clk;
    StatSet stats;
    CacheGeometry geo;
    Cache cache;
};

TEST_P(CachePropertyTest, ReadYourOwnWriteThroughOneAddress)
{
    Random rng(7);
    std::unordered_map<std::uint64_t, std::uint32_t> model;
    const VirtAddr base(0x10000);
    const PhysAddr pbase(0x10000);
    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t off = 4 * rng.below(4 * pageBytes / 4);
        if (rng.chance(1, 2)) {
            std::uint32_t v = static_cast<std::uint32_t>(rng.next64());
            cache.write(base.plus(off), pbase.plus(off), v);
            model[off] = v;
        } else {
            std::uint32_t got =
                cache.read(base.plus(off), pbase.plus(off));
            auto it = model.find(off);
            ASSERT_EQ(got, it == model.end() ? 0u : it->second)
                << "offset " << off << " step " << step;
        }
    }
}

TEST_P(CachePropertyTest, FlushMakesMemoryCurrent)
{
    const VirtAddr va(0x4000);
    const PhysAddr pa(0x8000);
    cache.write(va, pa, 1234);
    cache.flushLine(va, pa);
    EXPECT_EQ(mem.readWord(pa), 1234u);
    EXPECT_EQ(cache.read(va, pa), 1234u);
}

TEST_P(CachePropertyTest, PurgeNeverWritesBack)
{
    const VirtAddr va(0x4000);
    const PhysAddr pa(0x8000);
    mem.writeWord(pa, 77);
    cache.read(va, pa);
    cache.write(va, pa, 88);
    cache.purgeLine(va, pa);
    // Write-through already propagated; write-back discarded.
    if (GetParam().policy == WritePolicy::WriteBack)
        EXPECT_EQ(mem.readWord(pa), 77u);
    else
        EXPECT_EQ(mem.readWord(pa), 88u);
}

TEST_P(CachePropertyTest, PageOpsAreIdempotent)
{
    const VirtAddr va(0x4000);
    const PhysAddr pa(0x8000);
    for (std::uint32_t off = 0; off < pageBytes; off += 256)
        cache.write(va.plus(off), pa.plus(off), off);
    cache.flushPage(va, pa);
    EXPECT_EQ(cache.flushPage(va, pa), 0u);  // nothing left
    EXPECT_EQ(cache.purgePage(va, pa), 0u);
    for (std::uint32_t off = 0; off < pageBytes; off += 256)
        EXPECT_EQ(mem.readWord(pa.plus(off)), off);
}

TEST_P(CachePropertyTest, SnoopWriteBackFindsEveryAlias)
{
    const PhysAddr pa(0x8000);
    // Cache the line at several colours (only >1 matters for VIPT).
    const std::uint32_t colours = geo.numColours();
    for (std::uint32_t c = 0; c < colours; ++c)
        cache.read(VirtAddr(std::uint64_t(c) * pageBytes), pa);
    cache.write(VirtAddr(0), pa, 4242);
    // Write-back caches have a dirty line to drain; write-through
    // already put the value in memory.
    EXPECT_EQ(cache.snoopWriteBackLine(pa),
              GetParam().policy == WritePolicy::WriteBack);
    EXPECT_EQ(mem.readWord(pa), 4242u);
    cache.snoopInvalidateLine(pa);
    for (std::uint32_t c = 0; c < colours; ++c) {
        EXPECT_FALSE(
            cache.probe(VirtAddr(std::uint64_t(c) * pageBytes), pa)
                .present);
    }
}

TEST_P(CachePropertyTest, GeometryInvariants)
{
    EXPECT_EQ(std::uint64_t(geo.numLines()) * geo.lineBytes(),
              geo.cacheBytes());
    EXPECT_EQ(geo.numLines(), geo.numSets() * geo.associativity());
    EXPECT_EQ(geo.setSpanBytes() % pageBytes == 0 ||
                  geo.setSpanBytes() < pageBytes,
              true);
    if (geo.indexing() == Indexing::Physical) {
        EXPECT_EQ(geo.numColours(), 1u);
    }
    // Alignment is an equivalence relation respecting page offsets.
    const VirtAddr a(3 * pageBytes), b(19 * pageBytes);
    if (geo.aligned(a, b)) {
        EXPECT_EQ(geo.setIndex(a.value + 100 - 100 % 4),
                  geo.setIndex(b.value + 100 - 100 % 4));
    }
}

std::string
geometryName(const ::testing::TestParamInfo<Geometry> &info)
{
    const Geometry &g = info.param;
    std::string s = std::to_string(g.cacheBytes / 1024) + "k_l" +
                    std::to_string(g.lineBytes) + "_w" +
                    std::to_string(g.ways);
    s += g.indexing == Indexing::Virtual ? "_vipt" : "_pipt";
    s += g.policy == WritePolicy::WriteBack ? "_wb" : "_wt";
    return s;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CachePropertyTest,
    ::testing::Values(
        Geometry{8 * 1024, 32, 1, Indexing::Virtual,
                 WritePolicy::WriteBack},
        Geometry{64 * 1024, 32, 1, Indexing::Virtual,
                 WritePolicy::WriteBack},
        Geometry{64 * 1024, 64, 2, Indexing::Virtual,
                 WritePolicy::WriteBack},
        Geometry{64 * 1024, 16, 4, Indexing::Virtual,
                 WritePolicy::WriteBack},
        Geometry{256 * 1024, 32, 1, Indexing::Virtual,
                 WritePolicy::WriteBack},
        Geometry{64 * 1024, 32, 1, Indexing::Virtual,
                 WritePolicy::WriteThrough},
        Geometry{64 * 1024, 32, 1, Indexing::Physical,
                 WritePolicy::WriteBack},
        Geometry{64 * 1024, 32, 16, Indexing::Virtual,
                 WritePolicy::WriteBack},
        Geometry{4 * 1024, 32, 1, Indexing::Virtual,
                 WritePolicy::WriteBack}),
    geometryName);

} // anonymous namespace
} // namespace vic
