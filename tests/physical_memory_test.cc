/** @file Unit tests for the simulated physical memory. */

#include <gtest/gtest.h>

#include "mem/physical_memory.hh"

namespace vic
{
namespace
{

TEST(PhysicalMemoryTest, GeometryAccessors)
{
    PhysicalMemory mem(16, 4096);
    EXPECT_EQ(mem.numFrames(), 16u);
    EXPECT_EQ(mem.pageSize(), 4096u);
    EXPECT_EQ(mem.sizeBytes(), 16u * 4096u);
}

TEST(PhysicalMemoryTest, StartsZeroed)
{
    PhysicalMemory mem(4, 4096);
    EXPECT_EQ(mem.readWord(PhysAddr(0)), 0u);
    EXPECT_EQ(mem.readWord(PhysAddr(4 * 4096 - 4)), 0u);
}

TEST(PhysicalMemoryTest, WordReadBack)
{
    PhysicalMemory mem(4, 4096);
    mem.writeWord(PhysAddr(0x1004), 0xdeadbeef);
    EXPECT_EQ(mem.readWord(PhysAddr(0x1004)), 0xdeadbeefu);
    EXPECT_EQ(mem.readWord(PhysAddr(0x1000)), 0u);
    EXPECT_EQ(mem.readWord(PhysAddr(0x1008)), 0u);
}

TEST(PhysicalMemoryTest, FrameMath)
{
    PhysicalMemory mem(8, 4096);
    EXPECT_EQ(mem.frameOf(PhysAddr(0)), 0u);
    EXPECT_EQ(mem.frameOf(PhysAddr(4095)), 0u);
    EXPECT_EQ(mem.frameOf(PhysAddr(4096)), 1u);
    EXPECT_EQ(mem.baseOf(3).value, 3u * 4096u);
}

TEST(PhysicalMemoryTest, BulkTransfer)
{
    PhysicalMemory mem(4, 4096);
    std::uint32_t src[8];
    for (int i = 0; i < 8; ++i)
        src[i] = 100 + i;
    mem.writeWords(PhysAddr(0x2000), src, 8);

    std::uint32_t dst[8] = {};
    mem.readWords(PhysAddr(0x2000), dst, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(dst[i], 100u + i);
}

TEST(PhysicalMemoryDeathTest, UnalignedAccessPanics)
{
    PhysicalMemory mem(2, 4096);
    EXPECT_DEATH(mem.readWord(PhysAddr(2)), "unaligned");
}

TEST(PhysicalMemoryDeathTest, OutOfRangePanics)
{
    PhysicalMemory mem(2, 4096);
    EXPECT_DEATH(mem.readWord(PhysAddr(2 * 4096)), "out of range");
}

} // anonymous namespace
} // namespace vic
