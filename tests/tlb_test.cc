/** @file Unit tests for the TLB. */

#include <gtest/gtest.h>

#include "common/cycle_clock.hh"
#include "common/stats.hh"
#include "mmu/page_table.hh"
#include "tlb/tlb.hh"

namespace vic
{
namespace
{

class TlbTest : public ::testing::Test
{
  protected:
    TlbTest() : table(4096), tlb(4, 20, table, clk, stats) {}

    CycleClock clk;
    StatSet stats;
    PageTable table;
    Tlb tlb;
};

TEST_F(TlbTest, MissThenHit)
{
    table.enter(SpaceVa(1, VirtAddr(0x1000)), 7, Protection::readWrite());

    const PageTableEntry *pte = tlb.translate(SpaceVa(1, VirtAddr(0x1234)));
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->frame, 7u);
    EXPECT_EQ(stats.value("tlb.misses"), 1u);

    tlb.translate(SpaceVa(1, VirtAddr(0x1ff0)));
    EXPECT_EQ(stats.value("tlb.hits"), 1u);
}

TEST_F(TlbTest, MissChargesCycles)
{
    table.enter(SpaceVa(1, VirtAddr(0x1000)), 7, Protection::readOnly());
    Cycles before = clk.now();
    tlb.translate(SpaceVa(1, VirtAddr(0x1000)));
    EXPECT_EQ(clk.now() - before, 20u);
    before = clk.now();
    tlb.translate(SpaceVa(1, VirtAddr(0x1000)));
    EXPECT_EQ(clk.now() - before, 0u);  // hits are free (parallel)
}

TEST_F(TlbTest, UnmappedReturnsNull)
{
    EXPECT_EQ(tlb.translate(SpaceVa(1, VirtAddr(0x9000))), nullptr);
    EXPECT_EQ(stats.value("tlb.misses"), 0u);  // no refill for nothing
}

TEST_F(TlbTest, SpacesAreDistinct)
{
    table.enter(SpaceVa(1, VirtAddr(0x1000)), 7, Protection::readOnly());
    EXPECT_NE(tlb.translate(SpaceVa(1, VirtAddr(0x1000))), nullptr);
    EXPECT_EQ(tlb.translate(SpaceVa(2, VirtAddr(0x1000))), nullptr);
}

TEST_F(TlbTest, ReadsThroughProtectionChanges)
{
    // The pmap changes protections in the page table; the TLB must
    // never return a stale protection (it reads through).
    table.enter(SpaceVa(1, VirtAddr(0x1000)), 7, Protection::readWrite());
    tlb.translate(SpaceVa(1, VirtAddr(0x1000)));
    table.setProtection(SpaceVa(1, VirtAddr(0x1000)),
                        Protection::readOnly());
    const PageTableEntry *pte = tlb.translate(SpaceVa(1, VirtAddr(0x1000)));
    ASSERT_NE(pte, nullptr);
    EXPECT_FALSE(pte->prot.write);
}

TEST_F(TlbTest, InvalidatePage)
{
    table.enter(SpaceVa(1, VirtAddr(0x1000)), 7, Protection::readOnly());
    tlb.translate(SpaceVa(1, VirtAddr(0x1000)));
    EXPECT_EQ(tlb.validCount(), 1u);
    tlb.invalidatePage(SpaceVa(1, VirtAddr(0x1abc)));  // same page
    EXPECT_EQ(tlb.validCount(), 0u);
}

TEST_F(TlbTest, InvalidateSpaceLeavesOthers)
{
    table.enter(SpaceVa(1, VirtAddr(0x1000)), 7, Protection::readOnly());
    table.enter(SpaceVa(2, VirtAddr(0x1000)), 8, Protection::readOnly());
    tlb.translate(SpaceVa(1, VirtAddr(0x1000)));
    tlb.translate(SpaceVa(2, VirtAddr(0x1000)));
    tlb.invalidateSpace(1);
    EXPECT_EQ(tlb.validCount(), 1u);
    tlb.invalidateAll();
    EXPECT_EQ(tlb.validCount(), 0u);
}

TEST_F(TlbTest, LruReplacementWithinCapacity)
{
    for (std::uint64_t p = 0; p < 5; ++p) {
        table.enter(SpaceVa(1, VirtAddr(p * 4096)), p,
                    Protection::readOnly());
    }
    for (std::uint64_t p = 0; p < 4; ++p)
        tlb.translate(SpaceVa(1, VirtAddr(p * 4096)));
    EXPECT_EQ(stats.value("tlb.misses"), 4u);
    // Touch page 0 so page 1 is the LRU victim.
    tlb.translate(SpaceVa(1, VirtAddr(0)));
    tlb.translate(SpaceVa(1, VirtAddr(4 * 4096)));  // evicts page 1
    tlb.translate(SpaceVa(1, VirtAddr(0)));         // still a hit
    EXPECT_EQ(stats.value("tlb.misses"), 5u);
    tlb.translate(SpaceVa(1, VirtAddr(1 * 4096)));  // miss (evicted)
    EXPECT_EQ(stats.value("tlb.misses"), 6u);
}

} // anonymous namespace
} // namespace vic
