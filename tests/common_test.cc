/** @file Unit tests for the common support library. */

#include <gtest/gtest.h>

#include <set>

#include "common/bitvector.hh"
#include "common/event_log.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace vic
{
namespace
{

TEST(BitVectorTest, StartsClear)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    EXPECT_FALSE(v.any());
    EXPECT_EQ(v.count(), 0u);
    EXPECT_EQ(v.findFirst(), 130u);
    EXPECT_EQ(v.findFirstClear(), 0u);
}

TEST(BitVectorTest, SetResetTest)
{
    BitVector v(70);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(69);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(69));
    EXPECT_FALSE(v.test(1));
    EXPECT_EQ(v.count(), 4u);
    v.reset(63);
    EXPECT_FALSE(v.test(63));
    EXPECT_EQ(v.count(), 3u);
}

TEST(BitVectorTest, AssignWorksBothWays)
{
    BitVector v(8);
    v.assign(3, true);
    EXPECT_TRUE(v.test(3));
    v.assign(3, false);
    EXPECT_FALSE(v.test(3));
}

TEST(BitVectorTest, FindFirstCrossesWordBoundary)
{
    BitVector v(130);
    v.set(128);
    EXPECT_EQ(v.findFirst(), 128u);
    v.set(65);
    EXPECT_EQ(v.findFirst(), 65u);
}

TEST(BitVectorTest, FindFirstClearSkipsSetBits)
{
    BitVector v(4);
    v.set(0);
    v.set(1);
    EXPECT_EQ(v.findFirstClear(), 2u);
    v.set(2);
    v.set(3);
    EXPECT_EQ(v.findFirstClear(), 4u);
}

TEST(BitVectorTest, OrWithMergesBits)
{
    BitVector a(100), b(100);
    a.set(1);
    b.set(70);
    a.orWith(b);
    EXPECT_TRUE(a.test(1));
    EXPECT_TRUE(a.test(70));
    EXPECT_FALSE(b.test(1));  // source untouched
}

TEST(BitVectorTest, ClearAllResets)
{
    BitVector v(100);
    v.set(5);
    v.set(99);
    v.clearAll();
    EXPECT_TRUE(v.none());
}

TEST(BitVectorTest, ExactlyOne)
{
    BitVector v(16);
    EXPECT_FALSE(v.exactlyOne());
    v.set(7);
    EXPECT_TRUE(v.exactlyOne());
    v.set(8);
    EXPECT_FALSE(v.exactlyOne());
}

TEST(BitVectorTest, EqualityComparesContent)
{
    BitVector a(16), b(16);
    a.set(3);
    EXPECT_NE(a, b);
    b.set(3);
    EXPECT_EQ(a, b);
}

TEST(RandomTest, Deterministic)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RandomTest, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 10; ++i)
        differ |= a.next64() != b.next64();
    EXPECT_TRUE(differ);
}

TEST(RandomTest, BelowRespectsBound)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(RandomTest, BetweenIsInclusive)
{
    Random r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.between(3, 5));
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_TRUE(seen.count(3));
    EXPECT_TRUE(seen.count(5));
}

TEST(RandomTest, RealInUnitInterval)
{
    Random r(11);
    for (int i = 0; i < 1000; ++i) {
        double d = r.real();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RandomTest, ChanceExtremes)
{
    Random r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0, 10));
        EXPECT_TRUE(r.chance(10, 10));
    }
}

TEST(StatsTest, CountersStartAtZero)
{
    StatSet s;
    EXPECT_EQ(s.counter("x").value(), 0u);
    EXPECT_EQ(s.value("never_created"), 0u);
}

TEST(StatsTest, SameNameSameCounter)
{
    StatSet s;
    Counter &a = s.counter("hits");
    Counter &b = s.counter("hits");
    EXPECT_EQ(&a, &b);
    ++a;
    EXPECT_EQ(b.value(), 1u);
}

TEST(StatsTest, IncrementOperators)
{
    StatSet s;
    Counter &c = s.counter("c");
    ++c;
    c++;
    c += 5;
    EXPECT_EQ(c.value(), 7u);
    EXPECT_EQ(s.value("c"), 7u);
}

TEST(StatsTest, SnapshotAndClear)
{
    StatSet s;
    s.counter("a") += 3;
    s.counter("b") += 4;
    auto snap = s.snapshot();
    EXPECT_EQ(snap.at("a"), 3u);
    EXPECT_EQ(snap.at("b"), 4u);
    s.clearAll();
    EXPECT_EQ(s.value("a"), 0u);
}

TEST(StatsTest, AllPreservesCreationOrder)
{
    StatSet s;
    s.counter("z");
    s.counter("a");
    auto all = s.all();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0]->name(), "z");
    EXPECT_EQ(all[1]->name(), "a");
}

TEST(StatsTest, RenderFiltersAndSorts)
{
    StatSet s;
    s.counter("pmap.z") += 2;
    s.counter("pmap.a") += 1;
    s.counter("os.x") += 3;
    s.counter("pmap.zero");  // stays 0

    std::string all = s.render();
    EXPECT_NE(all.find("os.x"), std::string::npos);
    EXPECT_EQ(all.find("pmap.zero"), std::string::npos);

    std::string pm = s.render("pmap.");
    EXPECT_EQ(pm.find("os.x"), std::string::npos);
    EXPECT_LT(pm.find("pmap.a"), pm.find("pmap.z"));

    std::string zeros = s.render("pmap.", true);
    EXPECT_NE(zeros.find("pmap.zero"), std::string::npos);
}

TEST(TableTest, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.row();
    t.cell(std::string("x"));
    t.cell(std::uint64_t(42));
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(TableTest, BlankAndFloatCells)
{
    Table t({"a", "b"});
    t.row();
    t.blank();
    t.cell(3.14159, 2);
    std::string out = t.render();
    EXPECT_NE(out.find("3.14"), std::string::npos);
}

TEST(ProtectionTest, NamedConstructors)
{
    EXPECT_TRUE(Protection::none().isNone());
    EXPECT_TRUE(Protection::readOnly().read);
    EXPECT_FALSE(Protection::readOnly().write);
    EXPECT_TRUE(Protection::readWrite().write);
    EXPECT_TRUE(Protection::readExecute().execute);
    EXPECT_FALSE(Protection::readExecute().write);
    Protection all = Protection::all();
    EXPECT_TRUE(all.read && all.write && all.execute);
}

TEST(ProtectionTest, IntersectIsPairwiseAnd)
{
    Protection p = Protection::readWrite().intersect(
        Protection::readExecute());
    EXPECT_TRUE(p.read);
    EXPECT_FALSE(p.write);
    EXPECT_FALSE(p.execute);
}

TEST(ProtectionTest, NameFormat)
{
    EXPECT_EQ(protectionName(Protection::none()), "---");
    EXPECT_EQ(protectionName(Protection::readWrite()), "rw-");
    EXPECT_EQ(protectionName(Protection::readExecute()), "r-x");
}

TEST(EventLogTest, DisabledByDefault)
{
    EventLog log;
    EXPECT_FALSE(log.enabled());
    log.log("ignored");
    EXPECT_EQ(log.totalLogged(), 0u);
    EXPECT_TRUE(log.recent(10).empty());
}

TEST(EventLogTest, KeepsMostRecentInOrder)
{
    EventLog log;
    log.enable(3);
    for (int i = 0; i < 5; ++i)
        log.log("e" + std::to_string(i));
    EXPECT_EQ(log.totalLogged(), 5u);
    auto r = log.recent(10);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0], "e2");
    EXPECT_EQ(r[2], "e4");
    auto r2 = log.recent(2);
    ASSERT_EQ(r2.size(), 2u);
    EXPECT_EQ(r2[0], "e3");
}

TEST(EventLogTest, RecentBeforeWrap)
{
    EventLog log;
    log.enable(8);
    log.log("a");
    log.log("b");
    auto r = log.recent(8);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0], "a");
    EXPECT_EQ(r[1], "b");
}

TEST(EventLogTest, DisableDropsEverything)
{
    EventLog log;
    log.enable(4);
    log.log("x");
    log.disable();
    EXPECT_FALSE(log.enabled());
    EXPECT_TRUE(log.recent(4).empty());
}

TEST(TypesTest, AddressArithmeticAndOrdering)
{
    VirtAddr a(0x1000);
    EXPECT_EQ(a.plus(0x10).value, 0x1010u);
    EXPECT_LT(VirtAddr(1), VirtAddr(2));
    PhysAddr p(0x2000);
    EXPECT_EQ(p.plus(4).value, 0x2004u);
}

TEST(TypesTest, SpaceVaEqualityIncludesSpace)
{
    SpaceVa a(1, VirtAddr(0x1000));
    SpaceVa b(2, VirtAddr(0x1000));
    EXPECT_NE(a, b);
    EXPECT_EQ(a, SpaceVa(1, VirtAddr(0x1000)));
}

TEST(TypesTest, MemOpNames)
{
    EXPECT_STREQ(memOpName(MemOp::CpuRead), "CPU-read");
    EXPECT_STREQ(memOpName(MemOp::DmaWrite), "DMA-write");
    EXPECT_STREQ(memOpName(MemOp::Flush), "Flush");
}

TEST(LoggingTest, FormatProducesExpectedText)
{
    EXPECT_EQ(format("x=%d y=%s", 5, "abc"), "x=5 y=abc");
}

} // anonymous namespace
} // namespace vic
