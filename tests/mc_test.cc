/**
 * @file
 * Tests for the interleaving model checker: DPOR exploration counts
 * (every inequivalent interleaving exactly once), replayable and
 * job-count-independent race reports, oracle-confirmed minimal
 * counterexamples for broken kernel orderings, and the snooping-mode
 * ablation in which the same alphabet produces no genuine race.
 */

#include <gtest/gtest.h>

#include "core/policy_config.hh"
#include "mc/executor.hh"
#include "mc/explorer.hh"
#include "mc/race.hh"
#include "mc/scenario.hh"

namespace vic::mc
{
namespace
{

ExploreOptions
defaults()
{
    return {};
}

// --- DPOR counting ----------------------------------------------------

TEST(McExplorer, IndependentPairExploredOnce)
{
    const ScenarioResult r =
        explore(independentPair(PolicyConfig::cmu()), defaults());
    EXPECT_TRUE(r.exhausted);
    EXPECT_FALSE(r.deadlock);
    // Two commuting stores have one Mazurkiewicz trace; the reduction
    // must execute it exactly once.
    EXPECT_EQ(r.executions, 1u);
    EXPECT_EQ(r.canonicalTraces, 1u);
    EXPECT_EQ(r.distinctEndStates, 1u);
    EXPECT_TRUE(r.races.empty());
}

TEST(McExplorer, IndependentPairSleepSetsAlone)
{
    ExploreOptions opt;
    opt.persistentSets = false; // isolate the sleep-set mechanism
    const ScenarioResult r =
        explore(independentPair(PolicyConfig::cmu()), opt);
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.executions, 1u);
    EXPECT_EQ(r.canonicalTraces, 1u);
    EXPECT_GE(r.sleepPruned, 1u);
}

TEST(McExplorer, DependentPairExploredTwice)
{
    const ScenarioResult r =
        explore(dependentPair(PolicyConfig::cmu()), defaults());
    EXPECT_TRUE(r.exhausted);
    // A 2-event conflict has exactly two inequivalent interleavings;
    // each must be executed exactly once.
    EXPECT_EQ(r.executions, 2u);
    EXPECT_EQ(r.canonicalTraces, 2u);
    // The cross-cache pair is unordered, but the default machine runs
    // a MESI bus: reported as benign, not as a consistency race.
    EXPECT_EQ(r.reportedRaces(), 0u);
    EXPECT_EQ(r.benignRaces, 1u);
    EXPECT_EQ(r.violatingRuns, 0u);
}

TEST(McExplorer, ExplorationIsExactlyOncePerTrace)
{
    // Across the whole catalog the invariant "executions ==
    // inequivalent interleavings" must hold: no trace unexplored, no
    // trace explored twice.
    for (const Scenario &s : standardCatalog(PolicyConfig::cmu())) {
        const ScenarioResult r = explore(s, defaults());
        EXPECT_TRUE(r.exhausted) << s.name;
        EXPECT_EQ(r.executions, r.canonicalTraces) << s.name;
    }
}

TEST(McExplorer, BudgetExhaustionIsReported)
{
    ExploreOptions opt;
    opt.budget = 1;
    const ScenarioResult r =
        explore(dependentPair(PolicyConfig::cmu()), opt);
    EXPECT_FALSE(r.exhausted);
    EXPECT_EQ(r.executions, 1u);
}

// --- guarded kernel orderings ----------------------------------------

TEST(McExplorer, GuardedScenariosCleanUnderShippingPolicies)
{
    for (const PolicyConfig &p : PolicyConfig::table5Systems()) {
        for (const Scenario &s : guardedScenarios(p)) {
            const ScenarioResult r = explore(s, defaults());
            EXPECT_TRUE(r.exhausted) << p.name << "/" << s.name;
            EXPECT_FALSE(r.deadlock) << p.name << "/" << s.name;
            EXPECT_EQ(r.reportedRaces(), 0u)
                << p.name << "/" << s.name;
            EXPECT_EQ(r.violatingRuns, 0u)
                << p.name << "/" << s.name;
            EXPECT_TRUE(r.passed(s.expect))
                << p.name << "/" << s.name;
        }
    }
}

TEST(McExplorer, PageoutScenarioReachesAcceptanceDepth)
{
    std::vector<Scenario> g = guardedScenarios(PolicyConfig::cmu());
    const Scenario *pageout = nullptr;
    for (const Scenario &s : g)
        if (s.name == "pageout-guarded")
            pageout = &s;
    ASSERT_NE(pageout, nullptr);
    EXPECT_EQ(pageout->mparams.numCpus, 2u);

    const ScenarioResult r = explore(*pageout, defaults());
    EXPECT_TRUE(r.exhausted);
    // The 2-CPU + async-DMA alphabet is explored well past depth 5.
    EXPECT_GE(r.maxDepth, 5u);
    EXPECT_GT(r.executions, 1u);
    EXPECT_EQ(r.reportedRaces(), 0u);
}

// --- broken orderings -------------------------------------------------

TEST(McExplorer, FlushAfterStartLosesAWriteBack)
{
    const ScenarioResult r =
        explore(flushAfterStartExemplar(PolicyConfig::cmu()),
                defaults());
    EXPECT_TRUE(r.exhausted);
    EXPECT_GE(r.reportedRaces(), 1u);
    EXPECT_GE(r.confirmedRaces, 1u);
    EXPECT_GT(r.violatingRuns, 0u);
    ASSERT_FALSE(r.minimalCounterexample.empty());
    EXPECT_LE(r.minimalCounterexample.size(), 6u);
    EXPECT_TRUE(r.replayConfirmed);
}

TEST(McExplorer, UnguardedFlushThenStoreLosesAWriteBack)
{
    const Scenario s = lostWriteBackRace(PolicyConfig::cmu());
    const ScenarioResult r = explore(s, defaults());
    EXPECT_TRUE(r.exhausted);
    EXPECT_GE(r.confirmedRaces, 1u);
    ASSERT_FALSE(r.minimalCounterexample.empty());
    EXPECT_LE(r.minimalCounterexample.size(),
              s.expect.maxCounterexample);
    EXPECT_TRUE(r.replayConfirmed);
}

TEST(McExplorer, MinimalCounterexampleReplaysDeterministically)
{
    const Scenario s = lostWriteBackRace(PolicyConfig::cmu());
    const ScenarioResult r = explore(s, defaults());
    ASSERT_FALSE(r.minimalCounterexample.empty());

    // Replaying the schedule on fresh executors is deterministic:
    // same violating step, same labels, same end state.
    std::uint64_t hash0 = 0;
    for (int round = 0; round < 2; ++round) {
        Executor ex(s);
        for (int t : r.minimalCounterexample)
            ex.step(t);
        EXPECT_GT(ex.violationCount(), 0u);
        EXPECT_EQ(ex.firstViolationStep(),
                  static_cast<int>(r.minimalCounterexample.size()) -
                      1);
        ASSERT_EQ(ex.history().size(),
                  r.minimalCounterexampleLabels.size());
        for (std::size_t i = 0; i < ex.history().size(); ++i)
            EXPECT_EQ(ex.history()[i].label,
                      r.minimalCounterexampleLabels[i]);
        if (round == 0)
            hash0 = ex.stateHash();
        else
            EXPECT_EQ(ex.stateHash(), hash0);
    }
}

TEST(McExplorer, DmaDmaOverlapIsAnUnorderedConflict)
{
    const ScenarioResult r =
        explore(dmaDmaOverlap(PolicyConfig::cmu()), defaults());
    EXPECT_TRUE(r.exhausted);
    // Two unordered device writes into the same line: a (DMA, DMA)
    // race, though no read ever observes a stale value.
    EXPECT_GE(r.reportedRaces(), 1u);
    EXPECT_EQ(r.violatingRuns, 0u);
    bool dma_dma = false;
    for (const RaceReport &race : r.races)
        if (race.labelA.find("beat") != std::string::npos &&
            race.labelB.find("beat") != std::string::npos)
            dma_dma = true;
    EXPECT_TRUE(dma_dma);
}

// --- snooping ablation ------------------------------------------------

TEST(McExplorer, SnoopingModeHasNoGenuineRaceOnSameAlphabet)
{
    const ScenarioResult r =
        explore(snoopingVariant(PolicyConfig::cmu()), defaults());
    EXPECT_TRUE(r.exhausted);
    // The same schedules exist, but every CPU/DMA pair is kept
    // coherent by hardware: benign, and the oracle agrees.
    EXPECT_EQ(r.reportedRaces(), 0u);
    EXPECT_GE(r.benignRaces, 1u);
    EXPECT_EQ(r.violatingRuns, 0u);
    EXPECT_EQ(r.confirmedRaces, 0u);
}

// --- determinism across jobs ------------------------------------------

TEST(McExplorer, ResultsIndependentOfJobCount)
{
    const std::vector<Scenario> cat =
        standardCatalog(PolicyConfig::cmu());
    const std::vector<ScenarioResult> serial =
        exploreMany(cat, defaults(), 1);
    const std::vector<ScenarioResult> parallel =
        exploreMany(cat, defaults(), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const ScenarioResult &a = serial[i];
        const ScenarioResult &b = parallel[i];
        EXPECT_EQ(a.scenario, b.scenario);
        EXPECT_EQ(a.executions, b.executions);
        EXPECT_EQ(a.canonicalTraces, b.canonicalTraces);
        EXPECT_EQ(a.distinctEndStates, b.distinctEndStates);
        EXPECT_EQ(a.violatingRuns, b.violatingRuns);
        EXPECT_EQ(a.minimalCounterexampleLabels,
                  b.minimalCounterexampleLabels);
        ASSERT_EQ(a.races.size(), b.races.size());
        for (std::size_t j = 0; j < a.races.size(); ++j)
            EXPECT_EQ(a.races[j].key(), b.races[j].key());
    }
}

// --- executor basics --------------------------------------------------

TEST(McExecutor, BusyBitBlocksCpuAccesses)
{
    std::vector<Scenario> g = guardedScenarios(PolicyConfig::cmu());
    Executor ex(g[0]); // dma-out-guarded: user0 + pager
    // Initially both threads can run.
    EXPECT_EQ(ex.enabled(), (std::vector<int>{0, 1}));
    ex.step(1); // pager: busy-acquire
    // The user thread's store targets the busy frame: blocked.
    EXPECT_EQ(ex.enabled(), (std::vector<int>{1}));
}

TEST(McExecutor, DmaStartSpawnsBeatThreadAndWaitBlocks)
{
    std::vector<Scenario> g = guardedScenarios(PolicyConfig::cmu());
    Executor ex(g[0]);
    ex.step(1); // busy-acquire
    ex.step(1); // pmap-dma-read
    EXPECT_EQ(ex.numThreads(), 2);
    ex.step(1); // dma-start-read: spawns the beat thread
    EXPECT_EQ(ex.numThreads(), 3);
    // The pager's next op is dma-wait: blocked until beats finish, so
    // only the beat thread can run.
    EXPECT_EQ(ex.enabled(), (std::vector<int>{2}));
    ex.step(2);
    EXPECT_EQ(ex.enabled(), (std::vector<int>{2}));
    ex.step(2); // second (final) beat
    // Transfer complete: the wait unblocks.
    EXPECT_EQ(ex.enabled(), (std::vector<int>{1}));
}

TEST(McRace, VectorClocksOrderForkJoinAndBusy)
{
    std::vector<Scenario> g = guardedScenarios(PolicyConfig::cmu());
    Executor ex(g[0]);
    // user store, then the full guarded pager sequence.
    ex.step(0);
    while (!ex.allFinished()) {
        const std::vector<int> en = ex.enabled();
        ASSERT_FALSE(en.empty());
        ex.step(en.back());
    }
    const std::vector<RaceReport> races = detectRaces(
        ex.history(), ex.numThreads(), CoherenceModel::of(g[0].mparams));
    EXPECT_TRUE(races.empty());
    EXPECT_EQ(ex.violationCount(), 0u);
}

// --- multiprocessor coherence -----------------------------------------

TEST(McCoherence, CrossCacheSharingBenignUnderMesi)
{
    const ScenarioResult r =
        explore(crossCacheSharing(PolicyConfig::cmu()), defaults());
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.executions, r.canonicalTraces);
    // The consumer's bus read snoops the producer's Modified copy:
    // the unordered pair is benign and no schedule reads stale data.
    EXPECT_EQ(r.reportedRaces(), 0u);
    EXPECT_GE(r.benignRaces, 1u);
    EXPECT_EQ(r.violatingRuns, 0u);
    EXPECT_TRUE(r.passed(crossCacheSharing(PolicyConfig::cmu()).expect));
}

TEST(McCoherence, NonCoherentSharingIsAConfirmedRace)
{
    const Scenario s = nonCoherentSharing(PolicyConfig::cmu());
    const ScenarioResult r = explore(s, defaults());
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.executions, r.canonicalTraces);
    // Without the bus the same program reads a stale line: the old
    // detector's unconditional CPU/CPU skip hid exactly this race.
    EXPECT_GE(r.reportedRaces(), 1u);
    EXPECT_EQ(r.benignRaces, 0u);
    EXPECT_GE(r.violatingRuns, 1u);
    EXPECT_GE(r.confirmedRaces, 1u);
    EXPECT_TRUE(r.replayConfirmed);
    EXPECT_LE(r.minimalCounterexample.size(), 2u);
    EXPECT_TRUE(r.passed(s.expect));
}

TEST(McCoherence, CoherenceCatalogExploredExactlyOncePerTrace)
{
    for (const Scenario &s : coherenceCatalog(PolicyConfig::cmu())) {
        const ScenarioResult r = explore(s, defaults());
        EXPECT_TRUE(r.exhausted) << s.name;
        EXPECT_EQ(r.executions, r.canonicalTraces) << s.name;
        EXPECT_TRUE(r.passed(s.expect)) << s.name;
    }
}

TEST(McCoherence, GuardedTwoCpuScenarioNeedsTheBus)
{
    // The 2-CPU guarded pageout choreography is race-free on the
    // coherent machine and stays race-free when the bus is removed —
    // its second CPU touches a different frame. The sharing pair is
    // the scenario that distinguishes the configs; check both ways.
    Scenario coherent = crossCacheSharing(PolicyConfig::cmu());
    Scenario bare = coherent;
    bare.mparams.cpuCoherence = MachineParams::CpuCoherence::None;
    const ScenarioResult rc = explore(coherent, defaults());
    const ScenarioResult rb = explore(bare, defaults());
    EXPECT_EQ(rc.reportedRaces(), 0u);
    EXPECT_GE(rb.reportedRaces(), 1u);
    EXPECT_EQ(rc.violatingRuns, 0u);
    EXPECT_GE(rb.violatingRuns, 1u);
}

} // namespace
} // namespace vic::mc
