/**
 * @file
 * Intra-run sharding: deterministic replica merge, shard-count
 * independence (--shards 1 == --shards 2 == --shards 8, byte for
 * byte), orthogonality to --jobs, and the single-replica path staying
 * exactly the classic runWorkload.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "experiment/experiment_engine.hh"
#include "experiment/json_artifact.hh"
#include "workload/contrived_alias.hh"
#include "workload/shard_runner.hh"

namespace vic
{
namespace
{

std::function<std::unique_ptr<Workload>()>
aliasFactory(std::uint32_t writes)
{
    return [writes] {
        return std::make_unique<ContrivedAlias>(
            ContrivedAlias::Params{false, writes, false});
    };
}

/** A replicated spec of the cheap contrived-alias workload. */
RunSpec
replicatedSpec(const std::string &id, std::uint32_t writes,
               std::uint32_t replicas)
{
    RunSpec spec;
    spec.id = id;
    spec.suite = "test";
    spec.make = aliasFactory(writes);
    spec.policy = PolicyConfig::configF();
    spec.seed = 0xaf5;
    spec.replicaCount = replicas;
    return spec;
}

TEST(ShardRunner, MergeSumsStatsLikeASerialStatSet)
{
    // The merge must behave exactly like accumulating every replica's
    // counters into one StatSet: summed per name, union of names.
    RunResult a, b;
    a.workload = b.workload = "w";
    a.policy = b.policy = "F";
    a.cycles = 100;
    b.cycles = 50;
    a.seconds = 2.0;
    b.seconds = 1.0;
    a.oracleChecked = 10;
    b.oracleChecked = 4;
    a.oracleViolations = 1;
    b.oracleViolations = 2;
    a.stats = {{"dcache.hits", 7}, {"dcache.misses", 2}};
    b.stats = {{"dcache.hits", 3}, {"tlb.misses", 5}};
    a.traceTail = {"e1"};
    b.traceTail = {"e2", "e3"};

    StatSet reference;
    for (const RunResult *r : {&a, &b}) {
        for (const auto &[name, value] : r->stats)
            reference.counter(name) += value;
    }

    const RunResult m = mergeRunResults({a, b});
    EXPECT_EQ(m.workload, "w");
    EXPECT_EQ(m.cycles, 150u);
    EXPECT_DOUBLE_EQ(m.seconds, 3.0);
    EXPECT_EQ(m.oracleChecked, 14u);
    EXPECT_EQ(m.oracleViolations, 3u);
    EXPECT_EQ(m.stats, reference.snapshot());
    EXPECT_EQ(m.traceTail,
              (std::vector<std::string>{"e1", "e2", "e3"}));
}

TEST(ShardRunner, ShardCountNeverChangesTheMergedResult)
{
    // Replica workloads with distinct seeds, merged under 1, 2 and 8
    // host threads: the serialised result must be byte-identical.
    std::vector<std::uint64_t> seeds;
    for (std::uint32_t k = 0; k < 5; ++k)
        seeds.push_back(ExperimentEngine::effectiveSeed(0xaf5, k));

    const RunResult serial = runWorkloadSharded(
        aliasFactory(300), seeds, 1, PolicyConfig::configF());
    const RunResult two = runWorkloadSharded(
        aliasFactory(300), seeds, 2, PolicyConfig::configF());
    const RunResult eight = runWorkloadSharded(
        aliasFactory(300), seeds, 8, PolicyConfig::configF());

    const std::string s = runResultToJson(serial).dump(2);
    EXPECT_EQ(s, runResultToJson(two).dump(2));
    EXPECT_EQ(s, runResultToJson(eight).dump(2));
    EXPECT_GT(serial.cycles, 0u);
}

TEST(ShardRunner, MergeEqualsManualSumOfSingleRuns)
{
    // The sharded run of N replicas must equal N classic runWorkload
    // calls folded by hand — sharding adds machinery, never cycles.
    std::vector<std::uint64_t> seeds;
    for (std::uint32_t k = 0; k < 3; ++k)
        seeds.push_back(ExperimentEngine::effectiveSeed(0x5eed, k));

    std::vector<RunResult> singles;
    for (const std::uint64_t seed : seeds) {
        auto w = aliasFactory(200)();
        w->reseed(seed);
        singles.push_back(runWorkload(*w, PolicyConfig::configF()));
    }
    const RunResult manual = mergeRunResults(singles);
    const RunResult sharded = runWorkloadSharded(
        aliasFactory(200), seeds, 4, PolicyConfig::configF());

    EXPECT_EQ(runResultToJson(manual).dump(2),
              runResultToJson(sharded).dump(2));
}

TEST(ShardRunner, ArtifactsAreShardAndJobIndependent)
{
    // The full engine + artifact path: --shards and --jobs may vary
    // independently without moving a byte of the artifact (outside
    // wall-clock and the neutralised header fields).
    std::vector<RunSpec> specs;
    specs.push_back(replicatedSpec("fleet0", 300, 4));
    specs.push_back(replicatedSpec("fleet1", 150, 3));
    specs.push_back(replicatedSpec("single", 200, 1));

    ExperimentEngine engine;
    auto artifact = [&](unsigned jobs, unsigned shards) {
        ExperimentEngine::Options opts;
        opts.jobs = jobs;
        opts.shards = shards;
        ArtifactMeta meta;
        meta.jobs = jobs;
        meta.shards = shards;
        return renderArtifact(meta, engine.run(specs, opts));
    };

    const std::string base = artifact(1, 1);
    std::string why;
    EXPECT_TRUE(artifactsEquivalent(base, artifact(1, 2), &why)) << why;
    EXPECT_TRUE(artifactsEquivalent(base, artifact(1, 8), &why)) << why;
    EXPECT_TRUE(artifactsEquivalent(base, artifact(2, 4), &why)) << why;
    EXPECT_TRUE(artifactsEquivalent(base, artifact(3, 1), &why)) << why;
}

TEST(ShardRunner, SingleReplicaRunsStayOnTheClassicPath)
{
    // replicaCount == 1 must reproduce the pre-sharding outcome
    // exactly — same effective seed, same result — whatever --shards
    // says: sharding is invisible until a spec opts in.
    RunSpec spec = replicatedSpec("classic", 250, 1);

    const RunOutcome direct = ExperimentEngine::runOne(spec);
    const RunOutcome sharded = ExperimentEngine::runOne(spec, 8);

    ASSERT_TRUE(direct.ok);
    ASSERT_TRUE(sharded.ok);
    EXPECT_EQ(direct.effectiveSeed, spec.seed);
    EXPECT_EQ(sharded.effectiveSeed, spec.seed);
    EXPECT_EQ(runResultToJson(direct.result).dump(2),
              runResultToJson(sharded.result).dump(2));

    // And a single-replica artifact entry carries no "replicas" field
    // (byte-compat with pre-sharding artifacts).
    EXPECT_EQ(outcomeToJson(direct).find("replicas"), nullptr);

    RunSpec multi = replicatedSpec("multi", 100, 2);
    const RunOutcome merged = ExperimentEngine::runOne(multi, 2);
    ASSERT_TRUE(merged.ok);
    const JsonValue j = outcomeToJson(merged);
    ASSERT_NE(j.find("replicas"), nullptr);
    EXPECT_EQ(j.find("replicas")->asU64(), 2u);
}

TEST(ShardRunner, ReplicaSeedsFollowTheEngineDerivation)
{
    // A 2-replica merged run covers exactly the work of replica 0 and
    // replica 1 run separately: seeds come from the same SplitMix64
    // expansion the engine uses for whole-run replicas.
    RunSpec multi = replicatedSpec("pair", 180, 2);
    const RunOutcome merged = ExperimentEngine::runOne(multi, 1);

    RunSpec r0 = replicatedSpec("r0", 180, 1);
    r0.replica = 0;
    RunSpec r1 = replicatedSpec("r1", 180, 1);
    r1.replica = 1;
    const RunOutcome o0 = ExperimentEngine::runOne(r0);
    const RunOutcome o1 = ExperimentEngine::runOne(r1);
    ASSERT_TRUE(merged.ok && o0.ok && o1.ok);

    const RunResult manual = mergeRunResults({o0.result, o1.result});
    EXPECT_EQ(runResultToJson(merged.result).dump(2),
              runResultToJson(manual).dump(2));
}

} // anonymous namespace
} // namespace vic
