/**
 * @file
 * Tests for the static protocol verifier (src/verify).
 *
 * Covers the acceptance properties: every shipping policy verifies
 * sound at a fixed point; the deliberately broken policy yields a
 * counterexample that is minimal (no strictly shorter trace violates)
 * and that replays on the concrete machine with a ConsistencyOracle
 * violation at the same event index; traces through sound policies
 * replay clean, closing the abstraction-soundness loop in both
 * directions.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/policy_config.hh"
#include "verify/abstract_model.hh"
#include "verify/policy_verifier.hh"
#include "verify/trace_replay.hh"

namespace
{

using vic::PolicyConfig;
using namespace vic::verify;

std::vector<PolicyConfig>
shippingPolicies()
{
    std::vector<PolicyConfig> all = PolicyConfig::table4Sweep();
    for (const PolicyConfig &p : PolicyConfig::table5Systems())
        all.push_back(p);
    return all;
}

PolicyConfig
byName(const std::string &name)
{
    for (const PolicyConfig &p : shippingPolicies()) {
        if (p.name == name)
            return p;
    }
    ADD_FAILURE() << "unknown policy '" << name << "'";
    return PolicyConfig::broken();
}

/** Step @p trace through the abstract model; @return the index of the
 *  first violating event, or -1 if the trace runs clean. */
int
firstAbstractViolation(const AbstractSimulator &sim, const Trace &trace)
{
    ModelState s = sim.initial();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (sim.step(s, trace[i]).has_value())
            return static_cast<int>(i);
    }
    return -1;
}

/** Exhaustively enumerate every trace of length < @p len over the
 *  policy's alphabet; @return true iff any of them violates. */
bool
anyShorterTraceViolates(const AbstractSimulator &sim, std::size_t len)
{
    const std::vector<Event> alpha = sim.alphabet();
    for (std::size_t depth = 1; depth < len; ++depth) {
        std::vector<std::size_t> idx(depth, 0);
        while (true) {
            Trace t;
            for (std::size_t i = 0; i < depth; ++i)
                t.push_back(alpha[idx[i]]);
            if (firstAbstractViolation(sim, t) >= 0)
                return true;
            std::size_t p = 0;
            while (p < depth && ++idx[p] == alpha.size())
                idx[p++] = 0;
            if (p == depth)
                break;
        }
    }
    return false;
}

TEST(VerifierTest, ShippingPoliciesVerifySound)
{
    const PolicyVerifier verifier;
    for (const PolicyConfig &policy : shippingPolicies()) {
        const VerifyResult r = verifier.verify(policy);
        EXPECT_TRUE(r.fixedPointReached) << policy.name;
        EXPECT_TRUE(r.sound) << policy.name << ": "
                             << traceName(r.counterexample);
        EXPECT_TRUE(r.counterexample.empty()) << policy.name;
        EXPECT_FALSE(r.violation.has_value()) << policy.name;
        EXPECT_GT(r.numStates, 0u) << policy.name;
        EXPECT_GT(r.numTransitions, r.numStates) << policy.name;
        EXPECT_GT(r.diameter, 0u) << policy.name;
    }
}

TEST(VerifierTest, BrokenPolicyYieldsCounterexample)
{
    const PolicyVerifier verifier;
    const VerifyResult r = verifier.verify(PolicyConfig::broken());
    ASSERT_TRUE(r.fixedPointReached);
    EXPECT_FALSE(r.sound);
    ASSERT_FALSE(r.counterexample.empty());
    ASSERT_TRUE(r.violation.has_value());
    // The known shortest failure of a no-consistency policy on a
    // write-back split-cache machine: dirty data never reaches memory
    // before the instruction fetch fills from it.
    EXPECT_EQ(r.counterexample.size(), 2u)
        << traceName(r.counterexample);
}

TEST(VerifierTest, CounterexampleEndsInViolation)
{
    const PolicyVerifier verifier;
    const VerifyResult r = verifier.verify(PolicyConfig::broken());
    ASSERT_FALSE(r.counterexample.empty());
    // Replaying the counterexample abstractly violates exactly at its
    // last event and at none before (BFS stops at the first bad state).
    const AbstractSimulator sim(PolicyConfig::broken());
    EXPECT_EQ(firstAbstractViolation(sim, r.counterexample),
              static_cast<int>(r.counterexample.size()) - 1);
}

TEST(VerifierTest, CounterexampleIsMinimal)
{
    const PolicyVerifier verifier;
    const VerifyResult r = verifier.verify(PolicyConfig::broken());
    ASSERT_FALSE(r.counterexample.empty());
    const AbstractSimulator sim(PolicyConfig::broken());
    EXPECT_FALSE(anyShorterTraceViolates(sim, r.counterexample.size()));
}

TEST(VerifierTest, CounterexampleReplaysOnConcreteMachine)
{
    const PolicyVerifier verifier;
    const VerifyResult r = verifier.verify(PolicyConfig::broken());
    ASSERT_FALSE(r.counterexample.empty());

    const TraceReplayer replayer(PolicyConfig::broken());
    const ReplayResult rr = replayer.replay(r.counterexample);
    EXPECT_TRUE(rr.violated);
    EXPECT_GT(rr.violationCount, 0u);
    // The single-word discipline makes the abstraction exact: the
    // oracle must fire at the very event the verifier predicted.
    EXPECT_EQ(rr.firstViolationEvent,
              static_cast<int>(r.counterexample.size()) - 1);
    EXPECT_FALSE(rr.kind.empty());
}

TEST(VerifierTest, EmptyTraceReplaysClean)
{
    const TraceReplayer replayer(byName("CMU"));
    const ReplayResult rr = replayer.replay({});
    EXPECT_FALSE(rr.violated);
    EXPECT_EQ(rr.firstViolationEvent, -1);
}

/** Deterministic pseudo-random traces through verified-sound policies
 *  must run clean both abstractly and on the concrete machine. */
TEST(VerifierTest, SoundPoliciesReplayRandomTracesClean)
{
    for (const char *name : {"CMU", "Tut", "Sun", "Utah"}) {
        const PolicyConfig policy = byName(name);
        const AbstractSimulator sim(policy);
        const TraceReplayer replayer(policy);
        const std::vector<Event> alpha = sim.alphabet();

        std::uint64_t rng = 0x243f6a8885a308d3ull;  // fixed seed
        for (int round = 0; round < 8; ++round) {
            Trace t;
            for (int i = 0; i < 14; ++i) {
                rng = rng * 6364136223846793005ull +
                      1442695040888963407ull;
                t.push_back(alpha[(rng >> 33) % alpha.size()]);
            }
            EXPECT_EQ(firstAbstractViolation(sim, t), -1)
                << name << ": " << traceName(t);
            const ReplayResult rr = replayer.replay(t);
            EXPECT_FALSE(rr.violated)
                << name << ": " << traceName(t) << " violated at event "
                << rr.firstViolationEvent << " (" << rr.kind << ")";
        }
    }
}

TEST(VerifierTest, UnmapMoveOnlyForPerVaResidue)
{
    // Tut tracks residue per virtual address, so remapping a slot at a
    // fresh (aligned) address is a distinct event; every other policy
    // keys purely on colour and UnmapMove would duplicate Unmap.
    const AbstractSimulator tut(byName("Tut"));
    bool has_move = false;
    for (const Event &e : tut.alphabet())
        has_move |= e.kind == EventKind::UnmapMove;
    EXPECT_TRUE(has_move);

    for (const char *name : {"CMU", "Sun", "Utah", "Apollo"}) {
        const AbstractSimulator sim(byName(name));
        for (const Event &e : sim.alphabet())
            EXPECT_NE(e.kind, EventKind::UnmapMove) << name;
    }
}

TEST(VerifierTest, TraceNamesAreReadable)
{
    const Trace t{{EventKind::Store, 0}, {EventKind::IFetch, 0}};
    EXPECT_EQ(traceName(t), "store@A -> ifetch@A");
    EXPECT_EQ(eventName({EventKind::DmaIn, 0}), "dma-in");
}

} // namespace
