/**
 * @file
 * Tests of the consistency specification itself: the Table 2
 * transition functions (checked exhaustively against the published
 * table), the SpecExecutor's invariants, and the Table 3 encoding in
 * CacheStateVector.
 */

#include <gtest/gtest.h>

#include "core/cache_page_state.hh"
#include "core/phys_page_info.hh"
#include "core/spec_executor.hh"

namespace vic
{
namespace
{

using S = CachePageState;
using R = RequiredOp;

// ---------------------------------------------------------------------
// Table 2, transcribed row by row from the paper.
// ---------------------------------------------------------------------

struct Row
{
    MemOp op;
    S from;
    SpecTransition target;
    SpecTransition other;
};

const Row table2[] = {
    // CPU-read
    {MemOp::CpuRead, S::Empty, {S::Present}, {S::Empty}},
    {MemOp::CpuRead, S::Present, {S::Present}, {S::Present}},
    {MemOp::CpuRead, S::Dirty, {S::Dirty}, {S::Empty, R::Flush}},
    {MemOp::CpuRead, S::Stale, {S::Present, R::Purge}, {S::Stale}},
    // CPU-write
    {MemOp::CpuWrite, S::Empty, {S::Dirty}, {S::Empty}},
    {MemOp::CpuWrite, S::Present, {S::Dirty}, {S::Stale}},
    {MemOp::CpuWrite, S::Dirty, {S::Dirty}, {S::Empty, R::Flush}},
    {MemOp::CpuWrite, S::Stale, {S::Dirty, R::Purge}, {S::Stale}},
    // DMA-read (both columns identical: DMA bypasses the cache)
    {MemOp::DmaRead, S::Empty, {S::Empty}, {S::Empty}},
    {MemOp::DmaRead, S::Present, {S::Present}, {S::Present}},
    {MemOp::DmaRead, S::Dirty, {S::Empty, R::Flush},
     {S::Empty, R::Flush}},
    {MemOp::DmaRead, S::Stale, {S::Stale}, {S::Stale}},
    // DMA-write
    {MemOp::DmaWrite, S::Empty, {S::Empty}, {S::Empty}},
    {MemOp::DmaWrite, S::Present, {S::Stale}, {S::Stale}},
    {MemOp::DmaWrite, S::Dirty, {S::Empty, R::Purge},
     {S::Empty, R::Purge}},
    {MemOp::DmaWrite, S::Stale, {S::Stale}, {S::Stale}},
    // Purge (target only)
    {MemOp::Purge, S::Empty, {S::Empty}, {S::Empty}},
    {MemOp::Purge, S::Present, {S::Empty}, {S::Present}},
    {MemOp::Purge, S::Dirty, {S::Empty}, {S::Dirty}},
    {MemOp::Purge, S::Stale, {S::Empty}, {S::Stale}},
    // Flush (target only)
    {MemOp::Flush, S::Empty, {S::Empty}, {S::Empty}},
    {MemOp::Flush, S::Present, {S::Empty}, {S::Present}},
    {MemOp::Flush, S::Dirty, {S::Empty}, {S::Dirty}},
    {MemOp::Flush, S::Stale, {S::Empty}, {S::Stale}},
};

TEST(Table2Test, ExhaustiveMatchAgainstPaper)
{
    // 6 ops x 4 states, both columns: the functions must reproduce
    // the published table cell for cell.
    ASSERT_EQ(std::size(table2), 24u);
    for (const Row &row : table2) {
        SpecTransition t = targetTransition(row.from, row.op);
        EXPECT_EQ(t, row.target)
            << memOpName(row.op) << " target from "
            << cachePageStateName(row.from);
        SpecTransition o = otherTransition(row.from, row.op);
        EXPECT_EQ(o, row.other)
            << memOpName(row.op) << " other from "
            << cachePageStateName(row.from);
    }
}

TEST(Table2Test, OnlyStaleTargetsNeedPurgeOnCpuAccess)
{
    for (MemOp op : {MemOp::CpuRead, MemOp::CpuWrite}) {
        for (S s : allCachePageStates) {
            SpecTransition t = targetTransition(s, op);
            EXPECT_EQ(t.required == R::Purge, s == S::Stale);
        }
    }
}

TEST(Table2Test, DirtyLinesNeverSilentlyVanish)
{
    // A dirty line leaves the dirty state only via an explicit flush
    // or purge (or by staying the newest data). Check every rule.
    for (MemOp op : allMemOps) {
        for (auto column : {targetTransition, otherTransition}) {
            SpecTransition t = column(S::Dirty, op);
            if (t.next != S::Dirty) {
                const bool explicit_removal =
                    t.required != R::None || op == MemOp::Purge ||
                    op == MemOp::Flush;
                EXPECT_TRUE(explicit_removal)
                    << memOpName(op) << " drops dirty data silently";
            }
        }
    }
}

TEST(Table2Test, StateNamesAndLetters)
{
    EXPECT_STREQ(cachePageStateName(S::Empty), "Empty");
    EXPECT_EQ(cachePageStateLetter(S::Stale), 'S');
    EXPECT_STREQ(requiredOpName(R::Flush), "flush");
    EXPECT_STREQ(requiredOpName(R::None), "");
}

// ---------------------------------------------------------------------
// SpecExecutor
// ---------------------------------------------------------------------

TEST(SpecExecutorTest, PowerUpAllEmpty)
{
    SpecExecutor spec(8);
    for (CachePageId c = 0; c < 8; ++c)
        EXPECT_EQ(spec.state(c), S::Empty);
    EXPECT_TRUE(spec.invariantHolds());
    EXPECT_FALSE(spec.dirtyColour().has_value());
}

TEST(SpecExecutorTest, ReadThenWriteThenUnalignedRead)
{
    SpecExecutor spec(4);
    spec.apply(MemOp::CpuRead, 0);
    EXPECT_EQ(spec.state(0), S::Present);

    spec.apply(MemOp::CpuWrite, 0);
    EXPECT_EQ(spec.state(0), S::Dirty);
    EXPECT_EQ(spec.dirtyColour(), std::optional<CachePageId>(0));

    // Unaligned read: the dirty colour must be flushed first.
    auto ops = spec.apply(MemOp::CpuRead, 1);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].colour, 0u);
    EXPECT_EQ(ops[0].op, R::Flush);
    EXPECT_EQ(spec.state(0), S::Empty);
    EXPECT_EQ(spec.state(1), S::Present);
    EXPECT_TRUE(spec.invariantHolds());
}

TEST(SpecExecutorTest, WriteStalesOtherPresentColours)
{
    SpecExecutor spec(4);
    spec.apply(MemOp::CpuRead, 0);
    spec.apply(MemOp::CpuRead, 1);
    spec.apply(MemOp::CpuWrite, 2);
    EXPECT_EQ(spec.state(0), S::Stale);
    EXPECT_EQ(spec.state(1), S::Stale);
    EXPECT_EQ(spec.state(2), S::Dirty);
    EXPECT_TRUE(spec.invariantHolds());
}

TEST(SpecExecutorTest, StaleTargetPurgedBeforeUse)
{
    SpecExecutor spec(2);
    spec.apply(MemOp::CpuRead, 0);
    spec.apply(MemOp::CpuWrite, 1);
    auto ops = spec.apply(MemOp::CpuRead, 0);
    // The dirty colour 1 is flushed AND the stale target 0 purged.
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].op, R::Flush);
    EXPECT_EQ(ops[0].colour, 1u);
    EXPECT_EQ(ops[1].op, R::Purge);
    EXPECT_EQ(ops[1].colour, 0u);
    EXPECT_EQ(spec.state(0), S::Present);
}

TEST(SpecExecutorTest, DmaWriteStalesEverything)
{
    SpecExecutor spec(3);
    spec.apply(MemOp::CpuRead, 0);
    spec.apply(MemOp::CpuWrite, 1);
    auto ops = spec.apply(MemOp::DmaWrite, std::nullopt);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].op, R::Purge);  // dirty purged, not flushed
    EXPECT_EQ(spec.state(0), S::Stale);
    EXPECT_EQ(spec.state(1), S::Empty);
    EXPECT_EQ(spec.state(2), S::Empty);
}

TEST(SpecExecutorTest, DmaReadFlushesDirtyAndEmptiesIt)
{
    SpecExecutor spec(2);
    spec.apply(MemOp::CpuWrite, 0);
    auto ops = spec.apply(MemOp::DmaRead, std::nullopt);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].op, R::Flush);
    // The flush writes back and invalidates, so the page is Empty —
    // not Present, which would cost a redundant purge later.
    EXPECT_EQ(spec.state(0), S::Empty);
}

TEST(SpecExecutorTest, PurgeAndFlushEmptyOnlyTheTarget)
{
    SpecExecutor spec(2);
    spec.apply(MemOp::CpuRead, 0);
    spec.apply(MemOp::CpuRead, 1);
    spec.apply(MemOp::Purge, 0);
    EXPECT_EQ(spec.state(0), S::Empty);
    EXPECT_EQ(spec.state(1), S::Present);
}

TEST(SpecExecutorTest, InvariantViolationsDetected)
{
    SpecExecutor spec(2);
    spec.setState(0, S::Dirty);
    spec.setState(1, S::Dirty);
    EXPECT_FALSE(spec.invariantHolds());
    spec.setState(1, S::Present);
    EXPECT_FALSE(spec.invariantHolds());  // dirty + present coexist
    spec.setState(1, S::Stale);
    EXPECT_TRUE(spec.invariantHolds());
}

TEST(SpecExecutorTest, InvariantPreservedUnderAllOpSequences)
{
    // Depth-4 exhaustive search over (op, colour) on 2 colours: the
    // invariant must hold in every reachable state.
    struct Choice
    {
        MemOp op;
        std::optional<CachePageId> target;
    };
    std::vector<Choice> choices;
    for (CachePageId c = 0; c < 2; ++c) {
        for (MemOp op : {MemOp::CpuRead, MemOp::CpuWrite, MemOp::Purge,
                         MemOp::Flush})
            choices.push_back({op, c});
    }
    choices.push_back({MemOp::DmaRead, std::nullopt});
    choices.push_back({MemOp::DmaWrite, std::nullopt});

    const std::size_t n = choices.size();
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
            for (std::size_t c = 0; c < n; ++c) {
                for (std::size_t d = 0; d < n; ++d) {
                    SpecExecutor spec(2);
                    spec.apply(choices[a].op, choices[a].target);
                    spec.apply(choices[b].op, choices[b].target);
                    spec.apply(choices[c].op, choices[c].target);
                    spec.apply(choices[d].op, choices[d].target);
                    ASSERT_TRUE(spec.invariantHolds());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Table 3 encoding
// ---------------------------------------------------------------------

TEST(Table3Test, EncodingDecodesToAllFourStates)
{
    CacheStateVector v(4);
    // Empty: mapped=false, stale=false.
    EXPECT_EQ(v.decode(0), S::Empty);

    // Present: mapped=true, stale=false, dirty=false.
    v.mapped.set(1);
    EXPECT_EQ(v.decode(1), S::Present);

    // Stale: mapped=false, stale=true.
    v.stale.set(2);
    EXPECT_EQ(v.decode(2), S::Stale);

    // Dirty: mapped=true, dirty bit, unique mapped colour.
    CacheStateVector d(4);
    d.mapped.set(3);
    d.cacheDirty = true;
    EXPECT_EQ(d.decode(3), S::Dirty);
    EXPECT_EQ(d.dirtyColour(), 3u);
}

TEST(Table3Test, DirtyRequiresExactlyOneMappedColour)
{
    CacheStateVector v(4);
    v.mapped.set(0);
    v.mapped.set(1);
    v.cacheDirty = true;
    EXPECT_DEATH(v.checkInvariants(), "cacheDirty");
}

TEST(Table3Test, MappedAndStaleAreExclusive)
{
    CacheStateVector v(4);
    v.mapped.set(0);
    v.stale.set(0);
    EXPECT_DEATH(v.decode(0), "mapped and stale");
}

TEST(Table3Test, ClearResetsEverything)
{
    CacheStateVector v(4);
    v.mapped.set(0);
    v.stale.set(1);
    v.cacheDirty = true;
    v.clear();
    EXPECT_EQ(v.decode(0), S::Empty);
    EXPECT_EQ(v.decode(1), S::Empty);
    EXPECT_FALSE(v.cacheDirty);
}

TEST(PhysPageInfoTest, MappingListOperations)
{
    PhysPageInfo info(4, 4);
    EXPECT_FALSE(info.hasMappings());
    info.addMapping(SpaceVa(1, VirtAddr(0x1000)), Protection::readWrite());
    info.addMapping(SpaceVa(2, VirtAddr(0x2000)), Protection::readOnly());
    EXPECT_TRUE(info.hasMappings());
    ASSERT_NE(info.findMapping(SpaceVa(1, VirtAddr(0x1000))), nullptr);
    EXPECT_EQ(info.findMapping(SpaceVa(3, VirtAddr(0x1000))), nullptr);
    EXPECT_TRUE(info.removeMapping(SpaceVa(1, VirtAddr(0x1000))));
    EXPECT_FALSE(info.removeMapping(SpaceVa(1, VirtAddr(0x1000))));
    EXPECT_TRUE(info.hasMappings());
}

} // anonymous namespace
} // namespace vic
