/**
 * @file
 * Tests for the OS layer: demand paging, fault accounting, copy-on-
 * write, IPC page transfer with address selection, Unix-server shared
 * pages, task teardown and frame accounting.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"

namespace vic
{
namespace
{

class KernelTest : public ::testing::Test
{
  protected:
    explicit KernelTest(PolicyConfig cfg = PolicyConfig::configF())
        : machine(MachineParams::hp720()),
          oracle(machine.memory().sizeBytes())
    {
        machine.setObserver(&oracle);
        kernel = std::make_unique<Kernel>(machine, cfg);
    }

    std::uint64_t
    stat(const char *name)
    {
        return machine.stats().value(name);
    }

    Machine machine;
    ConsistencyOracle oracle;
    std::unique_ptr<Kernel> kernel;
};

TEST_F(KernelTest, ZeroFillOnDemand)
{
    TaskId t = kernel->createTask();
    VirtAddr va = kernel->vmAllocate(t, 2);
    EXPECT_EQ(kernel->userLoad(t, va), 0u);
    EXPECT_EQ(kernel->userLoad(t, va.plus(4096)), 0u);
    EXPECT_EQ(stat("os.pages_zeroed"), 2u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(KernelTest, MappingFaultsCountedOncePerPage)
{
    TaskId t = kernel->createTask();
    VirtAddr va = kernel->vmAllocate(t, 1);
    auto before = stat("os.mapping_faults");
    kernel->userStore(t, va, 1);
    kernel->userLoad(t, va);
    kernel->userLoad(t, va.plus(64));
    EXPECT_EQ(stat("os.mapping_faults"), before + 1);
}

TEST_F(KernelTest, StoreLoadRoundTripAcrossPages)
{
    TaskId t = kernel->createTask();
    VirtAddr va = kernel->vmAllocate(t, 4);
    for (std::uint32_t p = 0; p < 4; ++p)
        kernel->userStore(t, va.plus(p * 4096ull), 100 + p);
    for (std::uint32_t p = 0; p < 4; ++p)
        EXPECT_EQ(kernel->userLoad(t, va.plus(p * 4096ull)), 100 + p);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(KernelTest, VmDeallocateReturnsFrames)
{
    TaskId t = kernel->createTask();
    auto free_before = kernel->freeFrames();
    VirtAddr va = kernel->vmAllocate(t, 3);
    kernel->userTouchPage(t, va, true);
    kernel->userTouchPage(t, va.plus(4096), true);
    EXPECT_EQ(kernel->freeFrames(), free_before - 2);
    kernel->vmDeallocate(t, va);
    EXPECT_EQ(kernel->freeFrames(), free_before);
}

TEST_F(KernelTest, SharedObjectVisibleAcrossTasks)
{
    TaskId a = kernel->createTask();
    TaskId b = kernel->createTask();
    auto obj = std::make_shared<VmObject>(VmObject::anonymous(1));
    VirtAddr va_a = kernel->vmMapShared(a, obj, Protection::readWrite());
    VirtAddr va_b = kernel->vmMapShared(b, obj, Protection::readWrite());

    kernel->userStore(a, va_a, 77);
    EXPECT_EQ(kernel->userLoad(b, va_b), 77u);
    kernel->userStore(b, va_b.plus(8), 88);
    EXPECT_EQ(kernel->userLoad(a, va_a.plus(8)), 88u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(KernelTest, CowFirstWriteCopies)
{
    TaskId a = kernel->createTask();
    VirtAddr src = kernel->vmAllocate(a, 1);
    kernel->userStore(a, src, 555);
    auto obj = kernel->regionObject(a, src);

    TaskId b = kernel->createTask();
    VirtAddr cow = kernel->vmMapCow(b, obj);
    EXPECT_EQ(kernel->userLoad(b, cow), 555u);  // reads shared frame

    kernel->userStore(b, cow, 666);
    EXPECT_EQ(stat("os.cow_faults"), 1u);
    EXPECT_EQ(kernel->userLoad(b, cow), 666u);
    EXPECT_EQ(kernel->userLoad(a, src), 555u);  // original untouched
    EXPECT_TRUE(oracle.clean());
}

TEST_F(KernelTest, CowSecondWriteIsFree)
{
    TaskId a = kernel->createTask();
    VirtAddr src = kernel->vmAllocate(a, 1);
    kernel->userStore(a, src, 1);
    TaskId b = kernel->createTask();
    VirtAddr cow = kernel->vmMapCow(b, kernel->regionObject(a, src));
    kernel->userStore(b, cow, 2);
    auto cows = stat("os.cow_faults");
    kernel->userStore(b, cow.plus(4), 3);
    EXPECT_EQ(stat("os.cow_faults"), cows);
}

TEST_F(KernelTest, CowWriteToNeverReadPageWorks)
{
    TaskId a = kernel->createTask();
    VirtAddr src = kernel->vmAllocate(a, 1);
    kernel->userStore(a, src, 9);
    TaskId b = kernel->createTask();
    VirtAddr cow = kernel->vmMapCow(b, kernel->regionObject(a, src));
    // Store without a prior load through this mapping.
    kernel->userStore(b, cow.plus(16), 10);
    EXPECT_EQ(kernel->userLoad(b, cow), 9u);       // copied content
    EXPECT_EQ(kernel->userLoad(b, cow.plus(16)), 10u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(KernelTest, IpcTransferMovesPageBetweenTasks)
{
    TaskId a = kernel->createTask();
    TaskId b = kernel->createTask();
    VirtAddr src = kernel->vmAllocate(a, 1);
    kernel->userStore(a, src, 0xfeed);

    VirtAddr dst = kernel->ipcTransferPage(a, src, b);
    EXPECT_EQ(kernel->userLoad(b, dst), 0xfeedu);
    EXPECT_EQ(stat("os.ipc_transfers"), 1u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(KernelTest, IpcAlignedDestinationAvoidsCacheOps)
{
    // Under config F the destination aligns with the source: the
    // transfer itself requires no flush or purge at all.
    TaskId a = kernel->createTask();
    TaskId b = kernel->createTask();
    VirtAddr src = kernel->vmAllocate(a, 1);
    kernel->userStore(a, src, 1);

    auto flushes = stat("pmap.d_page_flushes");
    auto purges = stat("pmap.d_page_purges");
    VirtAddr dst = kernel->ipcTransferPage(a, src, b);
    kernel->userLoad(b, dst);
    EXPECT_TRUE(machine.dcache().geometry().aligned(src, dst));
    EXPECT_EQ(stat("pmap.d_page_flushes"), flushes);
    EXPECT_EQ(stat("pmap.d_page_purges"), purges);
}

TEST_F(KernelTest, SyscallsRunThroughSharedPages)
{
    TaskId t = kernel->createTask();
    kernel->fileCreate(t, "x");
    EXPECT_GE(stat("os.syscalls"), 1u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(KernelTest, TextFaultCopiesFromBufferCacheAndExecutes)
{
    TaskId t = kernel->createTask();
    FileId bin = kernel->fileCreate(t, "prog");
    kernel->fileWrite(t, bin, 0, 2 * 4096, 0x600d);

    kernel->mapText(t, bin, 2);
    kernel->execText(t, 0, 2);
    EXPECT_EQ(stat("os.d_to_i_copies"), 2u);
    // The executed instructions are the file's content, checked by
    // the oracle on every ifetch.
    EXPECT_TRUE(oracle.clean());
}

TEST_F(KernelTest, TaskTeardownReleasesEverything)
{
    auto free_at_start = kernel->freeFrames();
    TaskId t = kernel->createTask();
    FileId bin = kernel->fileCreate(t, "prog");
    kernel->fileWrite(t, bin, 0, 4096, 1);
    kernel->mapText(t, bin, 1);
    kernel->execText(t, 0, 1);
    VirtAddr va = kernel->vmAllocate(t, 3);
    kernel->userTouchPage(t, va, true);
    kernel->userStore(t, va.plus(2 * 4096ull), 1);

    kernel->destroyTask(t);
    // Everything except the buffer-cache pages is back on the free
    // list (buffers are a kernel-lifetime cache).
    EXPECT_GE(kernel->freeFrames() + 2, free_at_start);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(KernelTest, FramesRecycleAcrossTasksConsistently)
{
    // Many short-lived tasks force frame reuse through the free list;
    // all data must stay consistent (the new-mapping problem).
    for (int round = 0; round < 30; ++round) {
        TaskId t = kernel->createTask();
        VirtAddr va = kernel->vmAllocate(t, 4);
        for (std::uint32_t p = 0; p < 4; ++p) {
            kernel->userStore(t, va.plus(p * 4096ull),
                              round * 100 + p);
        }
        for (std::uint32_t p = 0; p < 4; ++p) {
            EXPECT_EQ(kernel->userLoad(t, va.plus(p * 4096ull)),
                      std::uint32_t(round * 100 + p));
        }
        kernel->destroyTask(t);
    }
    EXPECT_TRUE(oracle.clean())
        << oracle.violationCount() << " violations";
}

TEST_F(KernelTest, IpcTransferRegionMovesManyPages)
{
    TaskId a = kernel->createTask();
    TaskId b = kernel->createTask();
    VirtAddr src = kernel->vmAllocate(a, 4);
    for (std::uint32_t p = 0; p < 4; ++p)
        kernel->userStore(a, src.plus(p * 4096ull), 0x2200 + p);

    VirtAddr dst = kernel->ipcTransferRegion(a, src, b);
    for (std::uint32_t p = 0; p < 4; ++p)
        EXPECT_EQ(kernel->userLoad(b, dst.plus(p * 4096ull)),
                  0x2200 + p);
    // The sender no longer has the region.
    EXPECT_EQ(kernel->addressSpace(a).regionFor(src), nullptr);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(KernelTest, IpcTransferRegionAlignsFirstPage)
{
    TaskId a = kernel->createTask();
    TaskId b = kernel->createTask();
    VirtAddr src = kernel->vmAllocate(a, 2);
    kernel->userStore(a, src, 1);
    kernel->userStore(a, src.plus(4096), 2);

    VirtAddr dst = kernel->ipcTransferRegion(a, src, b);
    EXPECT_TRUE(machine.dcache().geometry().aligned(src, dst));
    // Contiguity preserves alignment for every page of the region.
    EXPECT_TRUE(machine.dcache().geometry().aligned(src.plus(4096),
                                                    dst.plus(4096)));
    // Touching the moved pages costs no cache operations.
    auto flushes = stat("pmap.d_page_flushes");
    kernel->userLoad(b, dst);
    kernel->userLoad(b, dst.plus(4096));
    EXPECT_EQ(stat("pmap.d_page_flushes"), flushes);
}

TEST_F(KernelTest, VmProtectRevokesWrites)
{
    TaskId t = kernel->createTask();
    VirtAddr va = kernel->vmAllocate(t, 1);
    kernel->userStore(t, va, 5);

    kernel->vmProtect(t, va, Protection::readOnly());
    EXPECT_EQ(kernel->userLoad(t, va), 5u);  // reads still fine
    // A store now dies (the test fault handler cannot resolve a
    // genuine VM denial).
    EXPECT_DEATH(kernel->userStore(t, va, 6), "unrecoverable");
}

TEST_F(KernelTest, VmProtectCanRestoreWrites)
{
    TaskId t = kernel->createTask();
    VirtAddr va = kernel->vmAllocate(t, 1);
    kernel->userStore(t, va, 5);
    kernel->vmProtect(t, va, Protection::readOnly());
    kernel->vmProtect(t, va, Protection::readWrite());
    kernel->userStore(t, va, 6);
    EXPECT_EQ(kernel->userLoad(t, va), 6u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(KernelTest, VmProtectBoundedByMaxProt)
{
    TaskId t = kernel->createTask();
    VirtAddr va = kernel->vmAllocate(t, 1);  // maxProt = rw-
    kernel->userStore(t, va, 1);
    kernel->vmProtect(t, va, Protection::all());
    // Execute was not in maxProt, so an ifetch still dies.
    EXPECT_DEATH(kernel->userExec(t, va), "unrecoverable");
}

class KernelConfigATest : public KernelTest
{
  protected:
    KernelConfigATest() : KernelTest(PolicyConfig::configA()) {}
};

TEST_F(KernelConfigATest, EverythingWorksUnderEagerPolicy)
{
    TaskId a = kernel->createTask();
    TaskId b = kernel->createTask();
    VirtAddr src = kernel->vmAllocate(a, 1);
    kernel->userStore(a, src, 0xfeed);
    VirtAddr dst = kernel->ipcTransferPage(a, src, b);
    EXPECT_EQ(kernel->userLoad(b, dst), 0xfeedu);

    // Unaligned by default under config A.
    FileId f = kernel->fileCreate(a, "f");
    kernel->fileWrite(a, f, 0, 4096, 5);
    kernel->fileRead(a, f, 0, 4096);
    kernel->destroyTask(a);
    kernel->destroyTask(b);
    EXPECT_TRUE(oracle.clean())
        << oracle.violationCount() << " violations";
}

TEST_F(KernelConfigATest, SharedPagesDoNotAlignByDefault)
{
    kernel->createTask();
    // The "old" allocation uses fixed addresses whose colours differ.
    // (This is a property of the layout constants, checked so the
    // Table 1 contrast can't silently disappear.)
    OsParams op;
    CachePageId task_colour = kernel->pmap().dColourOf(
        VirtAddr(op.taskSharedBase));
    CachePageId server_colour = kernel->pmap().dColourOf(
        VirtAddr(op.serverSharedBase));
    EXPECT_NE(task_colour, server_colour);
}

TEST_F(KernelTest, SharedPagesAlignUnderConfigF)
{
    TaskId t = kernel->createTask();
    kernel->fileCreate(t, "warm");
    auto flushes = stat("pmap.d_page_flushes");
    auto purges = stat("pmap.d_page_purges");
    for (int i = 0; i < 10; ++i)
        kernel->fileOpen(t, "warm");
    // Aligned shared pages: the syscall ping-pong costs no cache ops.
    EXPECT_EQ(stat("pmap.d_page_flushes"), flushes);
    EXPECT_EQ(stat("pmap.d_page_purges"), purges);
}

} // anonymous namespace
} // namespace vic
