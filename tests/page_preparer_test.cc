/**
 * @file
 * Unit tests for page preparation (zero-fill / copy) and its two
 * optimisations: aligned prepare windows and the semantic hints.
 */

#include <gtest/gtest.h>

#include "core/lazy_pmap.hh"
#include "machine/cpu.hh"
#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/page_preparer.hh"

namespace vic
{
namespace
{

class PagePreparerTest : public ::testing::Test
{
  protected:
    explicit PagePreparerTest(PolicyConfig cfg = PolicyConfig::configF())
        : machine(MachineParams::hp720()),
          oracle(machine.memory().sizeBytes()), pmap(machine, cfg),
          cpu(machine), preparer(cpu, pmap, OsParams{})
    {
        machine.setObserver(&oracle);
        cpu.setFaultHandler([this](const Fault &f) {
            return pmap.resolveConsistencyFault(f.address, f.access);
        });
    }

    /** Touch the frame through a user mapping and return word 0. */
    std::uint32_t
    wordThrough(VirtAddr va, FrameId frame)
    {
        pmap.enter(SpaceVa(9, va), frame, Protection::readWrite(),
                   AccessType::Load, {});
        cpu.setSpace(9);
        std::uint32_t v = cpu.load(va);
        pmap.remove(SpaceVa(9, va));
        return v;
    }

    Machine machine;
    ConsistencyOracle oracle;
    LazyPmap pmap;
    Cpu cpu;
    PagePreparer preparer;
};

TEST_F(PagePreparerTest, ZeroPageZeroesEveryWord)
{
    // Scribble on the frame first so the zeroes are observable.
    machine.memory().writeWord(machine.frameAddr(5, 128), 0xbad);
    preparer.zeroPage(5, std::nullopt);

    VirtAddr va(0x9000);
    pmap.enter(SpaceVa(9, va), 5, Protection::readOnly(),
               AccessType::Load, {});
    cpu.setSpace(9);
    for (std::uint32_t off = 0; off < machine.pageBytes(); off += 4)
        ASSERT_EQ(cpu.load(va.plus(off)), 0u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(PagePreparerTest, CopyPageCopiesEveryWord)
{
    // Build a source pattern through a mapping (so it is dirty in the
    // cache, not just in memory — the copy must see the cache data).
    VirtAddr sva(0xa000);
    pmap.enter(SpaceVa(9, sva), 6, Protection::readWrite(),
               AccessType::Store, {});
    cpu.setSpace(9);
    for (std::uint32_t off = 0; off < machine.pageBytes(); off += 4)
        cpu.store(sva.plus(off), off ^ 0x5a5a);

    preparer.copyPage(7, 6, std::nullopt);

    VirtAddr dva(0xb000);
    pmap.enter(SpaceVa(9, dva), 7, Protection::readOnly(),
               AccessType::Load, {});
    for (std::uint32_t off = 0; off < machine.pageBytes(); off += 4)
        ASSERT_EQ(cpu.load(dva.plus(off)), off ^ 0x5a5a);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(PagePreparerTest, AlignedPrepareLeavesDataAtUltimateColour)
{
    // With aligned prepare (config F includes it), zeroing with a
    // known ultimate address leaves the dirty data in the ultimate
    // mapping's cache page — the first user touch needs no flush.
    const VirtAddr ultimate(0x5000);  // colour 5
    preparer.zeroPage(8, ultimate);

    auto flushes = machine.stats().value("pmap.d_page_flushes");
    auto purges = machine.stats().value("pmap.d_page_purges");
    pmap.enter(SpaceVa(9, ultimate), 8, Protection::readWrite(),
               AccessType::Load, {});
    cpu.setSpace(9);
    EXPECT_EQ(cpu.load(ultimate), 0u);
    EXPECT_EQ(machine.stats().value("pmap.d_page_flushes"), flushes);
    EXPECT_EQ(machine.stats().value("pmap.d_page_purges"), purges);
    // The data really is still cached: the load hit.
    EXPECT_GT(machine.stats().value("dcache.hits"), 0u);
}

TEST_F(PagePreparerTest, PrepareCountsAreTracked)
{
    preparer.zeroPage(5, std::nullopt);
    preparer.copyPage(7, 5, std::nullopt);
    EXPECT_EQ(machine.stats().value("os.pages_zeroed"), 1u);
    EXPECT_EQ(machine.stats().value("os.pages_copied"), 1u);
}

class UnalignedPreparerTest : public PagePreparerTest
{
  protected:
    UnalignedPreparerTest() : PagePreparerTest(PolicyConfig::configB())
    {
    }
};

TEST_F(UnalignedPreparerTest, UnalignedPrepareFlushesOnFirstTouch)
{
    // Config B prepares through the fixed window, so the ultimate
    // mapping is (almost always) unaligned and the first touch flushes
    // the preparation dirt out of the wrong cache page.
    const VirtAddr ultimate(0x5000);  // colour 5; window is colour 0x100
    preparer.zeroPage(8, ultimate);
    pmap.enter(SpaceVa(9, ultimate), 8, Protection::readWrite(),
               AccessType::Load, {});
    cpu.setSpace(9);
    EXPECT_EQ(cpu.load(ultimate), 0u);
    EXPECT_GE(machine.stats().value("pmap.d_page_flushes"), 1u);
    EXPECT_TRUE(oracle.clean());
}

} // anonymous namespace
} // namespace vic
