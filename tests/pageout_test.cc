/**
 * @file
 * Tests for the pageout daemon: swap round trips, text drops, wiring,
 * swap-block accounting, and consistency under severe memory pressure
 * for every policy.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"
#include "workload/runner.hh"

namespace vic
{
namespace
{

class PageoutTest : public ::testing::Test
{
  protected:
    explicit PageoutTest(PolicyConfig cfg = PolicyConfig::configF(),
                         std::uint64_t frames = 96)
        : oracle(frames * 4096)
    {
        MachineParams mp = MachineParams::hp720();
        mp.numFrames = frames;
        machine = std::make_unique<Machine>(mp);
        machine->setObserver(&oracle);
        OsParams op;
        op.bufferCacheSlots = 16;
        op.pageoutLowWater = 8;
        op.pageoutHighWater = 20;
        kernel = std::make_unique<Kernel>(*machine, cfg, op);
    }

    std::uint64_t
    stat(const char *name)
    {
        return machine->stats().value(name);
    }

    ConsistencyOracle oracle;
    std::unique_ptr<Machine> machine;
    std::unique_ptr<Kernel> kernel;
};

TEST_F(PageoutTest, DataSurvivesSwapRoundTrip)
{
    TaskId t = kernel->createTask();
    // Allocate more pages than physical memory and write a stamp into
    // each; early pages must be paged out.
    const std::uint32_t pages = 120;
    VirtAddr base = kernel->vmAllocate(t, pages);
    for (std::uint32_t p = 0; p < pages; ++p)
        kernel->userStore(t, base.plus(std::uint64_t(p) * 4096),
                          1000 + p);
    EXPECT_GT(stat("os.pageouts"), 0u);
    EXPECT_GT(stat("os.swap_writes"), 0u);

    // Read everything back: paged-out pages fault back in from swap.
    for (std::uint32_t p = 0; p < pages; ++p) {
        EXPECT_EQ(kernel->userLoad(t, base.plus(std::uint64_t(p) *
                                                4096)),
                  1000 + p)
            << "page " << p;
    }
    EXPECT_GT(stat("os.pageins"), 0u);
    EXPECT_TRUE(oracle.clean())
        << oracle.violationCount() << " violations";
}

TEST_F(PageoutTest, UntouchedPagesCostNothing)
{
    TaskId t = kernel->createTask();
    VirtAddr base = kernel->vmAllocate(t, 500);  // never touched
    (void)base;
    EXPECT_EQ(stat("os.pageouts"), 0u);
}

TEST_F(PageoutTest, TextPagesAreDroppedNotSwapped)
{
    TaskId t = kernel->createTask();
    FileId bin = kernel->fileCreate(t, "big");
    for (std::uint32_t p = 0; p < 8; ++p)
        kernel->fileWrite(t, bin, std::uint64_t(p) * 4096, 4096,
                          0xc0de0000u + p);
    kernel->mapText(t, bin, 8);
    kernel->execText(t, 0, 8);

    // Blow the memory with anonymous pages so text gets evicted.
    VirtAddr hog = kernel->vmAllocate(t, 90);
    for (std::uint32_t p = 0; p < 90; ++p)
        kernel->userStore(t, hog.plus(std::uint64_t(p) * 4096), p);

    const auto drops = stat("os.text_drops");
    // Execute again: dropped pages are re-copied from the buffer
    // cache (more data-to-instruction copies), and the instructions
    // must still be the file's bytes (checked by the oracle).
    kernel->execText(t, 0, 8);
    if (drops > 0) {
        EXPECT_GT(stat("os.d_to_i_copies"), 8u);
    }
    EXPECT_TRUE(oracle.clean())
        << oracle.violationCount() << " violations";
}

TEST_F(PageoutTest, SharedPageSwapsWithAllMappingsRemoved)
{
    TaskId a = kernel->createTask();
    TaskId b = kernel->createTask();
    auto obj = std::make_shared<VmObject>(VmObject::anonymous(1));
    VirtAddr va_a = kernel->vmMapShared(a, obj, Protection::readWrite());
    VirtAddr va_b = kernel->vmMapShared(b, obj, Protection::readWrite());
    kernel->userStore(a, va_a, 4242);
    EXPECT_EQ(kernel->userLoad(b, va_b), 4242u);

    // Pressure until the shared page is likely evicted.
    VirtAddr hog = kernel->vmAllocate(a, 100);
    for (std::uint32_t p = 0; p < 100; ++p)
        kernel->userStore(a, hog.plus(std::uint64_t(p) * 4096), p);

    // Both tasks still see the value (page-in on demand).
    EXPECT_EQ(kernel->userLoad(b, va_b), 4242u);
    EXPECT_EQ(kernel->userLoad(a, va_a), 4242u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(PageoutTest, SwapBlocksRecycledOnTeardown)
{
    TaskId t = kernel->createTask();
    VirtAddr base = kernel->vmAllocate(t, 110);
    for (std::uint32_t p = 0; p < 110; ++p)
        kernel->userStore(t, base.plus(std::uint64_t(p) * 4096), p);
    ASSERT_GT(stat("os.swap_writes"), 0u);

    const auto free_before = kernel->freeFrames();
    kernel->destroyTask(t);
    EXPECT_GT(kernel->freeFrames(), free_before);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(PageoutTest, CowSourceSurvivesPressureDuringCopy)
{
    TaskId a = kernel->createTask();
    VirtAddr src = kernel->vmAllocate(a, 1);
    kernel->userStore(a, src, 777);
    auto obj = kernel->regionObject(a, src);

    TaskId b = kernel->createTask();
    VirtAddr cow = kernel->vmMapCow(b, obj);
    // Drain the free pool so the COW copy allocation triggers
    // reclamation while the source is wired.
    VirtAddr hog = kernel->vmAllocate(a, 80);
    for (std::uint32_t p = 0; p < 80; ++p)
        kernel->userStore(a, hog.plus(std::uint64_t(p) * 4096), p);

    kernel->userStore(b, cow, 778);
    EXPECT_EQ(kernel->userLoad(b, cow), 778u);
    EXPECT_EQ(kernel->userLoad(a, src), 777u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(PageoutTest, CowOfSwappedSourcePagesItBackIn)
{
    TaskId a = kernel->createTask();
    VirtAddr src = kernel->vmAllocate(a, 1);
    kernel->userStore(a, src, 31337);
    auto obj = kernel->regionObject(a, src);
    TaskId b = kernel->createTask();
    VirtAddr cow = kernel->vmMapCow(b, obj);

    // Force the source out to swap before b ever touches it.
    VirtAddr hog = kernel->vmAllocate(a, 100);
    for (std::uint32_t p = 0; p < 100; ++p)
        kernel->userStore(a, hog.plus(std::uint64_t(p) * 4096), p);

    kernel->userStore(b, cow.plus(4), 1);
    EXPECT_EQ(kernel->userLoad(b, cow), 31337u);  // copied content
    EXPECT_EQ(kernel->userLoad(a, src), 31337u);
    EXPECT_TRUE(oracle.clean());
}

class PageoutPolicyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PageoutPolicyTest, PressureIsConsistentUnderEveryPolicy)
{
    std::vector<PolicyConfig> policies = PolicyConfig::table4Sweep();
    for (auto &sys : PolicyConfig::table5Systems())
        policies.push_back(sys);
    const PolicyConfig cfg = policies[std::size_t(GetParam())];

    MachineParams mp = MachineParams::hp720();
    mp.numFrames = 96;
    Machine machine(mp);
    ConsistencyOracle oracle(machine.memory().sizeBytes());
    machine.setObserver(&oracle);
    OsParams op;
    op.bufferCacheSlots = 16;
    op.pageoutLowWater = 8;
    op.pageoutHighWater = 20;
    Kernel kernel(machine, cfg, op);

    TaskId t = kernel.createTask();
    const std::uint32_t pages = 100;
    VirtAddr base = kernel.vmAllocate(t, pages);
    for (std::uint32_t round = 0; round < 3; ++round) {
        for (std::uint32_t p = 0; p < pages; ++p) {
            kernel.userStore(t, base.plus(std::uint64_t(p) * 4096),
                             round * 1000 + p);
        }
        for (std::uint32_t p = 0; p < pages; ++p) {
            ASSERT_EQ(kernel.userLoad(t,
                                      base.plus(std::uint64_t(p) *
                                                4096)),
                      round * 1000 + p)
                << cfg.name;
        }
    }
    EXPECT_EQ(oracle.violationCount(), 0u) << cfg.name;
    EXPECT_GT(machine.stats().value("os.pageouts"), 0u) << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(Policies, PageoutPolicyTest,
                         ::testing::Range(0, 11));

} // anonymous namespace
} // namespace vic
