/**
 * @file
 * Property-based tests: randomised operation soups (memory, aliases,
 * IPC, files, DMA, exec, task churn) against every policy, with the
 * consistency oracle as the correctness judge. Each (policy, seed)
 * pair is an independent parameterised case.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"
#include "workload/runner.hh"

namespace vic
{
namespace
{

/** A randomised workload whose operations model everything the OS
 *  supports, with value stamps so stale data is always detectable. */
class FuzzWorkload : public Workload
{
  public:
    FuzzWorkload(std::uint64_t seed, int steps)
        : rngSeed(seed), numSteps(steps)
    {
    }

    std::string name() const override { return "fuzz"; }

    void
    run(Kernel &kernel) override
    {
        Random rng(rngSeed);
        const std::uint32_t page = kernel.machine().pageBytes();
        const std::uint32_t colours =
            kernel.machine().dcache().geometry().numColours();

        struct LivePage
        {
            TaskId task;
            VirtAddr va;
        };
        std::vector<TaskId> live_tasks;
        std::vector<LivePage> pages;
        std::uint32_t stamp = 1;
        int files_made = 0;

        auto ensure_task = [&] {
            if (live_tasks.empty())
                live_tasks.push_back(kernel.createTask());
            return live_tasks[rng.below(live_tasks.size())];
        };

        for (int step = 0; step < numSteps; ++step) {
            switch (rng.below(13)) {
              case 0: {  // new task
                  if (live_tasks.size() < 4)
                      live_tasks.push_back(kernel.createTask());
                  break;
              }
              case 1: {  // retire a task (and its pages)
                  if (live_tasks.size() > 1) {
                      TaskId victim = live_tasks.back();
                      live_tasks.pop_back();
                      std::erase_if(pages, [&](const LivePage &p) {
                          return p.task == victim;
                      });
                      kernel.destroyTask(victim);
                  }
                  break;
              }
              case 2: {  // allocate anonymous memory
                  TaskId t = ensure_task();
                  VirtAddr va = kernel.vmAllocate(
                      t, 1 + std::uint32_t(rng.below(2)));
                  pages.push_back({t, va});
                  break;
              }
              case 3:    // store somewhere
              case 4: {
                  if (pages.empty())
                      break;
                  const LivePage &p =
                      pages[rng.below(pages.size())];
                  kernel.userStore(
                      p.task,
                      p.va.plus(4 * rng.below(page / 4)), stamp++);
                  break;
              }
              case 5:    // load somewhere
              case 6: {
                  if (pages.empty())
                      break;
                  const LivePage &p =
                      pages[rng.below(pages.size())];
                  kernel.userLoad(p.task,
                                  p.va.plus(4 * rng.below(page / 4)));
                  break;
              }
              case 7: {  // create an alias in the same task
                  if (pages.empty())
                      break;
                  const LivePage p = pages[rng.below(pages.size())];
                  auto obj = kernel.regionObject(p.task, p.va);
                  // Half the time aligned, half at a random colour.
                  std::optional<CachePageId> colour;
                  if (rng.chance(1, 2)) {
                      colour = static_cast<CachePageId>(
                          rng.below(colours));
                  } else {
                      colour = kernel.pmap().dColourOf(p.va);
                  }
                  VirtAddr fixed =
                      kernel.addressSpace(p.task).allocateVa(
                          std::uint32_t(obj->numPages()), colour);
                  VirtAddr alias = kernel.vmMapShared(
                      p.task, obj, Protection::readWrite(), fixed);
                  pages.push_back({p.task, alias});
                  break;
              }
              case 8: {  // IPC page transfer
                  if (pages.empty() || live_tasks.size() < 2)
                      break;
                  std::size_t idx = rng.below(pages.size());
                  LivePage p = pages[idx];
                  // Only single-page private regions are transferable;
                  // find one by allocating fresh if needed.
                  TaskId to = ensure_task();
                  if (to == p.task)
                      break;
                  VirtAddr fresh = kernel.vmAllocate(p.task, 1);
                  kernel.userStore(p.task, fresh, stamp++);
                  VirtAddr dst =
                      kernel.ipcTransferPage(p.task, fresh, to);
                  pages.push_back({to, dst});
                  break;
              }
              case 9: {  // file write + read back
                  TaskId t = ensure_task();
                  std::string fname = format("fz%d", files_made++);
                  FileId f = kernel.fileCreate(t, fname);
                  kernel.fileWrite(t, f, 0,
                                   4096 * (1 + std::uint32_t(
                                               rng.below(2))),
                                   stamp);
                  stamp += 2048;
                  kernel.fileRead(t, f, 0, 4096);
                  break;
              }
              case 10: {  // exec some freshly written text
                  TaskId t = kernel.createTask();
                  std::string fname = format("bin%d", files_made++);
                  FileId f = kernel.fileCreate(t, fname);
                  kernel.fileWrite(t, f, 0, 4096, stamp);
                  stamp += 1024;
                  kernel.mapText(t, f, 1);
                  kernel.execText(t, 0, 1);
                  kernel.destroyTask(t);
                  break;
              }
              case 11: {  // sync (DMA-read storm)
                  kernel.fileSyncAll();
                  break;
              }
              case 12: {  // multi-page out-of-line IPC
                  if (live_tasks.size() < 2)
                      break;
                  TaskId from = ensure_task();
                  TaskId to = ensure_task();
                  if (from == to)
                      break;
                  VirtAddr src = kernel.vmAllocate(
                      from, 2 + std::uint32_t(rng.below(2)));
                  kernel.userStore(from, src, stamp++);
                  kernel.userStore(from, src.plus(4096 + 8), stamp++);
                  VirtAddr dst =
                      kernel.ipcTransferRegion(from, src, to);
                  pages.push_back({to, dst});
                  pages.push_back({to, dst.plus(4096)});
                  break;
              }
            }
        }

        // Final readback of every live page.
        for (const auto &p : pages)
            kernel.userTouchPage(p.task, p.va, false);
    }

  private:
    std::uint64_t rngSeed;
    int numSteps;
};

class PropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PropertyTest, RandomOperationSoupStaysConsistent)
{
    auto [policy_idx, seed] = GetParam();
    std::vector<PolicyConfig> policies = PolicyConfig::table4Sweep();
    for (auto &sys : PolicyConfig::table5Systems())
        policies.push_back(sys);

    FuzzWorkload wl(std::uint64_t(seed) * 7919 + 13, 250);
    RunResult r =
        runWorkload(wl, policies[std::size_t(policy_idx)]);
    EXPECT_EQ(r.oracleViolations, 0u)
        << "policy " << r.policy << " seed " << seed;
    EXPECT_GT(r.oracleChecked, 1000u);
}

std::string
propertyCaseName(const ::testing::TestParamInfo<std::tuple<int, int>> &info)
{
    static const char *policies[] = {"A", "B", "C", "D", "E", "F",
                                     "CMU", "Utah", "Tut", "Apollo",
                                     "Sun"};
    return std::string(policies[std::get<0>(info.param)]) + "_seed" +
           std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    PolicySeeds, PropertyTest,
    ::testing::Combine(::testing::Range(0, 11), ::testing::Range(0, 4)),
    propertyCaseName);

class PressurePropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PressurePropertyTest, FuzzUnderMemoryPressure)
{
    // The same operation soup on a machine small enough that the
    // pageout daemon runs constantly: swap round trips, text drops
    // and frame recycling interleave with everything else.
    MachineParams mp = MachineParams::hp720();
    mp.numFrames = 96;
    OsParams op;
    op.bufferCacheSlots = 16;
    op.pageoutLowWater = 8;
    op.pageoutHighWater = 20;

    std::vector<PolicyConfig> policies = {
        PolicyConfig::configA(), PolicyConfig::configF(),
        PolicyConfig::tut(), PolicyConfig::sun()};
    for (const auto &cfg : policies) {
        FuzzWorkload wl(std::uint64_t(GetParam()) * 104729 + 7, 200);
        RunResult r = runWorkload(wl, cfg, mp, op);
        EXPECT_EQ(r.oracleViolations, 0u)
            << cfg.name << " seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PressurePropertyTest,
                         ::testing::Range(0, 3));

TEST(PropertyMultiprocessorTest, FuzzOnTwoCpus)
{
    MachineParams mp = MachineParams::hp720();
    mp.numCpus = 2;
    for (int seed = 0; seed < 2; ++seed) {
        FuzzWorkload wl(std::uint64_t(seed) * 31337 + 3, 200);
        RunResult r = runWorkload(wl, PolicyConfig::configF(), mp);
        EXPECT_EQ(r.oracleViolations, 0u) << "seed " << seed;
    }
}

TEST(PropertyBrokenTest, FuzzEventuallyBreaksTheBrokenPolicy)
{
    // At least one seed must expose the unsound policy: otherwise the
    // fuzz workload would be too gentle to mean anything.
    std::uint64_t total_violations = 0;
    for (int seed = 0; seed < 4; ++seed) {
        FuzzWorkload wl(std::uint64_t(seed) * 7919 + 13, 250);
        RunResult r = runWorkload(wl, PolicyConfig::broken());
        total_violations += r.oracleViolations;
    }
    EXPECT_GT(total_violations, 0u);
}

} // anonymous namespace
} // namespace vic
