/**
 * @file
 * Integration tests: every workload under every policy configuration
 * (A–F and the Table 5 systems) must run with zero oracle violations,
 * and the paper's qualitative relationships between configurations
 * must hold.
 */

#include <gtest/gtest.h>

#include <memory>

#include "workload/afs_bench.hh"
#include "workload/contrived_alias.hh"
#include "workload/db_server.hh"
#include "workload/kernel_build.hh"
#include "workload/latex_bench.hh"
#include "workload/multiprog.hh"
#include "workload/runner.hh"

namespace vic
{
namespace
{

// Scaled-down workload parameters so the full matrix stays fast.
AfsBench::Params
smallAfs()
{
    AfsBench::Params p;
    p.numFiles = 8;
    p.computePerFile = 1000;
    return p;
}

LatexBench::Params
smallLatex()
{
    LatexBench::Params p;
    p.inputPages = 3;
    p.passes = 2;
    p.computePerPage = 1000;
    return p;
}

KernelBuild::Params
smallBuild()
{
    KernelBuild::Params p;
    p.numSourceFiles = 6;
    p.compilerTextPages = 3;
    p.computePerFile = 1000;
    return p;
}

// ---------------------------------------------------------------------
// Correctness matrix: workload x policy, parameterised.
// ---------------------------------------------------------------------

class WorkloadPolicyTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    static std::unique_ptr<Workload>
    makeWorkload(int idx)
    {
        switch (idx) {
          case 0: return std::make_unique<AfsBench>(smallAfs());
          case 1: return std::make_unique<LatexBench>(smallLatex());
          case 2: return std::make_unique<KernelBuild>(smallBuild());
          case 3:
            return std::make_unique<ContrivedAlias>(
                ContrivedAlias::Params{false, 400, true});
          case 4:
            return std::make_unique<ContrivedAlias>(
                ContrivedAlias::Params{true, 400, true});
          case 5: {
              DbServer::Params p;
              p.transactions = 24;
              p.computePerTxn = 1000;
              return std::make_unique<DbServer>(p);
          }
          case 6: {
              DbServer::Params p;
              p.transactions = 24;
              p.computePerTxn = 1000;
              p.fixedAddresses = false;
              return std::make_unique<DbServer>(p);
          }
          case 7: {
              MultiProg::Params p;
              p.numJobs = 3;
              p.quantaPerJob = 4;
              p.computePerQuantum = 1000;
              return std::make_unique<MultiProg>(p);
          }
        }
        return nullptr;
    }

    static PolicyConfig
    makePolicy(int idx)
    {
        // A..F, then the Table 5 systems.
        if (idx < 6)
            return PolicyConfig::table4Sweep()[std::size_t(idx)];
        return PolicyConfig::table5Systems()[std::size_t(idx - 6)];
    }
};

TEST_P(WorkloadPolicyTest, OracleCleanAndFaultsResolved)
{
    auto [w, p] = GetParam();
    auto workload = makeWorkload(w);
    PolicyConfig policy = makePolicy(p);

    RunResult r = runWorkload(*workload, policy);
    EXPECT_EQ(r.oracleViolations, 0u)
        << r.workload << " under " << r.policy;
    EXPECT_GT(r.oracleChecked, 0u);
    EXPECT_GT(r.cycles, 0u);
}

std::string
matrixCaseName(const ::testing::TestParamInfo<std::tuple<int, int>> &info)
{
    static const char *workloads[] = {"afs", "latex", "build",
                                      "aliasUnaligned", "aliasAligned",
                                      "dbFixed", "dbAligned", "multiprog"};
    static const char *policies[] = {"A", "B", "C", "D", "E", "F",
                                     "CMU", "Utah", "Tut", "Apollo",
                                     "Sun"};
    return std::string(workloads[std::get<0>(info.param)]) + "_" +
           policies[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, WorkloadPolicyTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 11)),
    matrixCaseName);

// ---------------------------------------------------------------------
// Qualitative relationships from the paper's evaluation.
// ---------------------------------------------------------------------

class EvaluationShapeTest : public ::testing::Test
{
  protected:
    static const std::vector<RunResult> &
    sweep()
    {
        static std::vector<RunResult> results = [] {
            std::vector<RunResult> out;
            for (const auto &cfg : PolicyConfig::table4Sweep()) {
                AfsBench wl(smallAfs());
                out.push_back(runWorkload(wl, cfg));
            }
            return out;
        }();
        return results;
    }
};

TEST_F(EvaluationShapeTest, NewSystemIsFasterThanOld)
{
    EXPECT_LT(sweep().back().cycles, sweep().front().cycles);
}

TEST_F(EvaluationShapeTest, MappingFaultsConstantAcrossConfigs)
{
    // "mapping faults remain almost constant across configurations"
    const auto base = sweep().front().mappingFaults();
    for (const auto &r : sweep()) {
        EXPECT_NEAR(double(r.mappingFaults()), double(base),
                    0.05 * double(base))
            << r.policy;
    }
}

TEST_F(EvaluationShapeTest, ConsistencyFaultsDropSubstantially)
{
    // "...but consistency faults drop substantially"
    EXPECT_LT(sweep().back().consistencyFaults(),
              sweep().front().consistencyFaults() / 4);
}

TEST_F(EvaluationShapeTest, FlushesAndPurgesShrinkFromAToF)
{
    const auto &a = sweep().front();
    const auto &f = sweep().back();
    EXPECT_LT(f.dPageFlushes(), a.dPageFlushes());
    EXPECT_LE(f.dPagePurges(), a.dPagePurges());
}

TEST_F(EvaluationShapeTest, ConfigFFlushesOnlyForDmaAndIfetch)
{
    // "For configuration F, the number of page flushes is equal to
    // the number of DMA-read flushes plus the number of pages copied
    // from data space into instruction space."
    const auto &f = sweep().back();
    EXPECT_EQ(f.dPageFlushes(),
              f.dmaReadFlushes() + f.stat("pmap.d_flush.ifetch"));
}

TEST(EvaluationGainTest, FullWorkloadsGainAFewPercent)
{
    // Table 1's headline: 5-10% elapsed-time improvement (we accept a
    // slightly wider band to keep the test robust).
    {
        AfsBench a, f;
        double gain =
            1.0 - double(runWorkload(f, PolicyConfig::configF()).cycles) /
                      double(runWorkload(a, PolicyConfig::configA()).cycles);
        EXPECT_GT(gain, 0.02) << "afs";
        EXPECT_LT(gain, 0.20) << "afs";
    }
    {
        LatexBench a, f;
        double gain =
            1.0 - double(runWorkload(f, PolicyConfig::configF()).cycles) /
                      double(runWorkload(a, PolicyConfig::configA()).cycles);
        EXPECT_GT(gain, 0.02) << "latex";
        EXPECT_LT(gain, 0.20) << "latex";
    }
}

TEST(ContrivedShapeTest, AlignedVsUnalignedIsOrdersOfMagnitude)
{
    // Section 2.5: aligned = fraction of a second, unaligned = over
    // two minutes (several hundred times slower).
    ContrivedAlias aligned({true, 8000, false});
    ContrivedAlias unaligned({false, 8000, false});
    RunResult ra = runWorkload(aligned, PolicyConfig::configF());
    RunResult ru = runWorkload(unaligned, PolicyConfig::configF());
    EXPECT_EQ(ra.oracleViolations, 0u);
    EXPECT_EQ(ru.oracleViolations, 0u);
    EXPECT_GT(ru.cycles, 50 * ra.cycles);
}

TEST(Table5ShapeTest, CmuDoesLeastCacheManagement)
{
    // The CMU system performs no more flushes+purges than any of the
    // related-work systems on the same operation stream.
    std::vector<RunResult> rs;
    for (const auto &cfg : PolicyConfig::table5Systems()) {
        AfsBench w(smallAfs());
        rs.push_back(runWorkload(w, cfg));
    }
    const auto ops = [](const RunResult &r) {
        return r.dPageFlushes() + r.dPagePurges() + r.iPagePurges();
    };
    for (std::size_t i = 1; i < rs.size(); ++i)
        EXPECT_LE(ops(rs[0]), ops(rs[i])) << rs[i].policy;
}

TEST(PageColouringTest, PerColourFreeListReducesPurges)
{
    // Ablation A2 (Section 5.1's suggestion): multiple free page
    // lists cut new-mapping purges.
    KernelBuild::Params p = smallBuild();
    p.numSourceFiles = 12;

    PolicyConfig single = PolicyConfig::configF();
    PolicyConfig coloured = PolicyConfig::configF();
    coloured.freeListOrg = FreePageList::Organisation::PerColour;
    coloured.name = "F + page colouring";

    KernelBuild w1(p), w2(p);
    RunResult rs = runWorkload(w1, single);
    RunResult rc = runWorkload(w2, coloured);
    EXPECT_EQ(rc.oracleViolations, 0u);
    EXPECT_LE(rc.dPagePurges(), rs.dPagePurges());
    EXPECT_LE(rc.cycles, rs.cycles);
}

TEST(DbServerShapeTest, AlignedAttachEliminatesConsistencyWork)
{
    DbServer::Params p;
    p.fixedAddresses = false;
    DbServer wl(p);
    RunResult r = runWorkload(wl, PolicyConfig::configF());
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_EQ(r.consistencyFaults(), 0u);
    EXPECT_EQ(r.dPagePurges(), 0u);
}

TEST(DbServerShapeTest, FixedAddressesCostButLazyCostsLeast)
{
    DbServer::Params p;  // fixed addresses
    DbServer wa(p), wf(p);
    RunResult ra = runWorkload(wa, PolicyConfig::configA());
    RunResult rf = runWorkload(wf, PolicyConfig::configF());
    EXPECT_EQ(ra.oracleViolations, 0u);
    EXPECT_EQ(rf.oracleViolations, 0u);
    EXPECT_GT(rf.consistencyFaults(), 0u);  // the residual price
    EXPECT_LE(rf.dPageFlushes() + rf.dPagePurges(),
              ra.dPageFlushes() + ra.dPagePurges());
    EXPECT_LT(rf.cycles, ra.cycles);
}

TEST(MultiProgTest, TimesharingMixOnTwoCpus)
{
    MultiProg::Params p;
    p.numJobs = 4;
    p.quantaPerJob = 6;
    p.computePerQuantum = 1000;
    MachineParams mp = MachineParams::hp720();
    mp.numCpus = 2;
    MultiProg wl(p);
    RunResult r = runWorkload(wl, PolicyConfig::configF(), mp);
    EXPECT_EQ(r.oracleViolations, 0u);
}

TEST(RunnerTest, TraceTailCapturesEvents)
{
    MultiProg::Params p;
    p.numJobs = 2;
    p.quantaPerJob = 2;
    p.computePerQuantum = 100;
    MultiProg wl(p);
    RunResult r = runWorkload(wl, PolicyConfig::configA(),
                              MachineParams::hp720(), OsParams{},
                              /*trace_events=*/16);
    EXPECT_FALSE(r.traceTail.empty());
    EXPECT_LE(r.traceTail.size(), 16u);
}

TEST(RunnerTest, SumMatchingAggregatesPerCpuCounters)
{
    MachineParams mp = MachineParams::hp720();
    mp.numCpus = 2;
    MultiProg::Params p;
    p.numJobs = 2;
    p.quantaPerJob = 2;
    p.computePerQuantum = 100;
    MultiProg wl(p);
    RunResult r = runWorkload(wl, PolicyConfig::configF(), mp);
    EXPECT_EQ(r.sumMatching("dcache", ".reads"),
              r.stat("dcache0.reads") + r.stat("dcache1.reads"));
    EXPECT_GT(r.sumMatching("dcache", ".reads"), 0u);
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults)
{
    AfsBench w1(smallAfs()), w2(smallAfs());
    RunResult a = runWorkload(w1, PolicyConfig::configF());
    RunResult b = runWorkload(w2, PolicyConfig::configF());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats, b.stats);
}

} // anonymous namespace
} // namespace vic
