/**
 * @file
 * Coverage for corners the focused suites don't reach: the pmap
 * factory, physical snooping candidate sets, per-CPU instruction
 * coherence boundaries, buffer-slot frame recycling, pageout wiring,
 * event logging through the real machine, and workload identities.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "core/classic_pmap.hh"
#include "core/lazy_pmap.hh"
#include "core/pmap.hh"
#include "machine/cpu.hh"
#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"
#include "workload/afs_bench.hh"
#include "workload/contrived_alias.hh"
#include "workload/db_server.hh"
#include "workload/kernel_build.hh"
#include "workload/latex_bench.hh"
#include "workload/multiprog.hh"

namespace vic
{
namespace
{

TEST(PmapFactoryTest, CreatesTheConfiguredStrategy)
{
    Machine m{MachineParams::hp720()};
    auto lazy = Pmap::create(m, PolicyConfig::configF());
    EXPECT_NE(dynamic_cast<LazyPmap *>(lazy.get()), nullptr);
    EXPECT_STREQ(lazy->kindName(), "lazy");

    Machine m2{MachineParams::hp720()};
    auto classic = Pmap::create(m2, PolicyConfig::configA());
    EXPECT_NE(dynamic_cast<ClassicPmap *>(classic.get()), nullptr);
    EXPECT_STREQ(classic->kindName(), "classic");
}

TEST(SpanColoursTest, PhysicalIndexingKeepsPhysicalSpan)
{
    // numColours is 1 for PIPT (all VAs align) but the physical span
    // — the number of sets a line could occupy for snooping — stays.
    CacheGeometry g(64 * 1024, 32, 4096, 1, Indexing::Physical);
    EXPECT_EQ(g.numColours(), 1u);
    EXPECT_EQ(g.spanColours(), 16u);
}

TEST(SnoopCandidateTest, FindsLineAtEveryColour)
{
    // Place the same physical line at several virtual colours, then
    // snoop-invalidate by physical address: every copy must die.
    PhysicalMemory mem(16, 4096);
    CycleClock clk;
    StatSet stats;
    CacheGeometry geo(64 * 1024, 32, 4096, 1, Indexing::Virtual);
    Cache c("c", geo, CacheCosts{}, WritePolicy::WriteBack, mem, clk,
            stats);
    const PhysAddr pa(2 * 4096 + 64);
    for (std::uint32_t colour = 0; colour < 16; colour += 3) {
        c.read(VirtAddr(std::uint64_t(colour) * 4096 + 64), pa);
    }
    c.snoopInvalidateLine(pa);
    for (std::uint32_t colour = 0; colour < 16; colour += 3) {
        EXPECT_FALSE(
            c.probe(VirtAddr(std::uint64_t(colour) * 4096 + 64), pa)
                .present);
    }
}

TEST(CoherenceBoundaryTest, InstructionCachesAreNotHardwareCoherent)
{
    // As on the real machine: the I-caches are left to software even
    // on a multiprocessor — the MESI bus connects only the data
    // caches unless ifetchCoherence opts the I-caches in as
    // read-only ports.
    MachineParams mp = MachineParams::hp720();
    mp.numCpus = 2;
    Machine m(mp);
    m.pageTable().enter(SpaceVa(1, VirtAddr(0x4000)), 2,
                        Protection::all());
    Cpu cpu0(m, 0), cpu1(m, 1);
    cpu0.setSpace(1);
    cpu1.setSpace(1);

    cpu1.ifetch(VirtAddr(0x4000));  // caches 0 in cpu1's I-cache
    cpu0.store(VirtAddr(0x4000), 0x1234);
    // cpu1's stale I-line survives: hardware does not fix this.
    EXPECT_EQ(cpu1.ifetch(VirtAddr(0x4000)), 0u);
}

TEST(BufferRecycleTest, RefilledSlotGetsAFreshFrame)
{
    Machine machine{MachineParams::hp720()};
    OsParams op;
    op.bufferCacheSlots = 1;  // every new block recycles the slot
    Kernel kernel(machine, PolicyConfig::configF(), op);
    TaskId t = kernel.createTask();

    FileId a = kernel.fileCreate(t, "a");
    FileId b = kernel.fileCreate(t, "b");
    auto free0 = kernel.freeFrames();
    kernel.fileWrite(t, a, 0, 4096, 1);
    kernel.fileWrite(t, b, 0, 4096, 2);  // evicts a's block
    kernel.fileRead(t, a, 0, 4096);      // evicts b's block
    // The pool shrinks only by the working set, not per refill: the
    // recycled frames go back.
    EXPECT_GE(kernel.freeFrames() + 8, free0);
}

TEST(PageoutWiringTest, WiredFrameIsNeverEvicted)
{
    MachineParams mp = MachineParams::hp720();
    mp.numFrames = 64;
    Machine machine(mp);
    OsParams op;
    op.bufferCacheSlots = 4;
    op.pageoutLowWater = 60;   // reclaim on every allocation
    op.pageoutHighWater = 62;
    Kernel kernel(machine, PolicyConfig::configF(), op);
    TaskId t = kernel.createTask();

    VirtAddr va = kernel.vmAllocate(t, 1);
    kernel.userStore(t, va, 7);
    auto obj = kernel.regionObject(t, va);
    auto frame = obj->frameAt(0);
    ASSERT_TRUE(frame.has_value());

    kernel.pageout().wire(*frame);
    // Heavy allocation pressure; the wired frame must stay resident.
    VirtAddr hog = kernel.vmAllocate(t, 30);
    for (std::uint32_t p = 0; p < 30; ++p)
        kernel.userStore(t, hog.plus(std::uint64_t(p) * 4096), p);
    EXPECT_EQ(obj->frameAt(0), frame);
    kernel.pageout().unwire(*frame);
}

TEST(EventLogMachineTest, PmapEventsAreRecorded)
{
    Machine machine{MachineParams::hp720()};
    machine.events().enable(32);
    Kernel kernel(machine, PolicyConfig::configA());
    TaskId t = kernel.createTask();
    VirtAddr va = kernel.vmAllocate(t, 1);
    kernel.userStore(t, va, 1);
    kernel.vmDeallocate(t, va);  // config A: eager flush at unmap

    bool saw_flush = false;
    for (const auto &e : machine.events().recent(32))
        saw_flush |= e.find("flush") != std::string::npos;
    EXPECT_TRUE(saw_flush);
    EXPECT_GT(machine.events().totalLogged(), 0u);
}

TEST(WorkloadNameTest, EveryWorkloadHasAStableName)
{
    EXPECT_EQ(AfsBench().name(), "afs-bench");
    EXPECT_EQ(LatexBench().name(), "latex-paper");
    EXPECT_EQ(KernelBuild().name(), "kernel-build");
    EXPECT_EQ(MultiProg().name(), "multiprog");
    EXPECT_EQ(DbServer().name(), "db-server-fixed");
    DbServer::Params p;
    p.fixedAddresses = false;
    EXPECT_EQ(DbServer(p).name(), "db-server-aligned");
    EXPECT_EQ(ContrivedAlias({true, 10, false}).name(),
              "contrived-aligned");
    EXPECT_EQ(ContrivedAlias({false, 10, false}).name(),
              "contrived-unaligned");
}

TEST(PolicyNameTest, SweepsAreOrderedAndNamed)
{
    auto sweep = PolicyConfig::table4Sweep();
    ASSERT_EQ(sweep.size(), 6u);
    EXPECT_EQ(sweep.front().name, "A (old)");
    EXPECT_EQ(sweep.back().name, "F (+will overwrite)");
    EXPECT_EQ(sweep.front().pmapKind, PmapKind::Classic);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_EQ(sweep[i].pmapKind, PmapKind::Lazy);

    auto systems = PolicyConfig::table5Systems();
    ASSERT_EQ(systems.size(), 5u);
    EXPECT_EQ(systems.front().name, "CMU");
}

TEST(KernelMisuseDeathTest, OverlappingFixedAllocationPanics)
{
    Machine machine{MachineParams::hp720()};
    Kernel kernel(machine, PolicyConfig::configF());
    TaskId t = kernel.createTask();
    VirtAddr va = kernel.vmAllocate(t, 2);
    EXPECT_DEATH(kernel.vmAllocate(t, 1, va.plus(4096)), "overlapping");
}

TEST(KernelMisuseDeathTest, CowRegionCannotBeTransferred)
{
    Machine machine{MachineParams::hp720()};
    Kernel kernel(machine, PolicyConfig::configF());
    TaskId a = kernel.createTask();
    TaskId b = kernel.createTask();
    VirtAddr src = kernel.vmAllocate(a, 1);
    kernel.userStore(a, src, 1);
    VirtAddr cow = kernel.vmMapCow(b, kernel.regionObject(a, src));
    EXPECT_DEATH(kernel.ipcTransferRegion(b, cow, a), "copy-on-write");
}

TEST(SelfModifyingCodeTest, ClassicWxModeSwitchesAreConsistent)
{
    // The JIT pattern under the eager policy: repeated write/execute
    // alternation across the W^X mode switches.
    Machine machine{MachineParams::hp720()};
    ConsistencyOracle oracle(machine.memory().sizeBytes());
    machine.setObserver(&oracle);
    Kernel kernel(machine, PolicyConfig::configA());
    TaskId t = kernel.createTask();
    auto obj = std::make_shared<VmObject>(VmObject::anonymous(1));
    VirtAddr code = kernel.vmMapShared(t, obj, Protection::all());

    for (std::uint32_t gen = 1; gen <= 5; ++gen) {
        kernel.userStore(t, code, 0x1000 * gen);
        EXPECT_EQ(kernel.userExec(t, code), 0x1000 * gen) << gen;
    }
    EXPECT_TRUE(oracle.clean());
}

} // anonymous namespace
} // namespace vic
