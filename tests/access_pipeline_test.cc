/** @file Tests for the staged access pipeline (DESIGN.md "Access
 *  pipeline"): fast-path vs slow-path equivalence on aliased pages,
 *  the fault-retry boundary, referenced/modified bits through the
 *  TLB's mutable PTE handle, page-table walks per access, observer
 *  sampling, and batched-vs-single access identity. */

#include <gtest/gtest.h>

#include <vector>

#include "machine/cpu.hh"
#include "machine/machine.hh"

namespace vic
{
namespace
{

class AccessPipelineTest : public ::testing::Test
{
  protected:
    AccessPipelineTest() : machine(MachineParams::hp720()), cpu(machine)
    {
        cpu.setSpace(1);
    }

    void
    map(VirtAddr va, FrameId frame, Protection prot)
    {
        machine.pageTable().enter(SpaceVa(1, va), frame, prot);
    }

    Machine machine;
    Cpu cpu;
};

// ---------------------------------------------------------------------
// Fast-path vs slow-path equivalence on aliased pages.
// ---------------------------------------------------------------------

/** Two virtual pages of DIFFERENT cache colours mapped to one frame:
 *  the unaligned-alias configuration the paper's consistency rules
 *  exist for. One machine reaches the data entirely through the fast
 *  path (mapped read-write from the start); the other forces every
 *  first touch through the slow path (protection faults upgraded by
 *  the handler). Both must converge to identical functional state —
 *  loaded values and per-alias cache contents. */
TEST(AccessPipelineEquivalence, AliasedPagesFastVsSlowPath)
{
    const MachineParams params = MachineParams::hp720();
    // Distinct colours: the d-cache spans 16 pages, so va and
    // va + pageBytes land in different cache pages.
    const VirtAddr va_a(0x40000);
    const VirtAddr va_b(0x40000 + params.pageBytes);
    const FrameId frame = 7;

    auto drive = [&](Machine &m, Cpu &c) {
        c.store(va_a, 0x1111);
        c.store(va_b.plus(16), 0x2222);
        (void)c.load(va_a);
        (void)c.load(va_b);
        c.store(va_a.plus(16), 0x3333);
        (void)c.load(va_b.plus(16));
        (void)m;
    };

    // Fast machine: everything mapped read-write up front.
    Machine fast(params);
    Cpu fast_cpu(fast);
    fast_cpu.setSpace(1);
    fast.pageTable().enter(SpaceVa(1, va_a), frame,
                           Protection::readWrite());
    fast.pageTable().enter(SpaceVa(1, va_b), frame,
                           Protection::readWrite());
    drive(fast, fast_cpu);
    EXPECT_EQ(fast_cpu.faultCount(), 0u);

    // Slow machine: pages start read-only; every store's first touch
    // traps and the handler upgrades the protection in place.
    Machine slow(params);
    Cpu slow_cpu(slow);
    slow_cpu.setSpace(1);
    slow.pageTable().enter(SpaceVa(1, va_a), frame,
                           Protection::readOnly());
    slow.pageTable().enter(SpaceVa(1, va_b), frame,
                           Protection::readOnly());
    slow_cpu.setFaultHandler([&](const Fault &f) {
        EXPECT_EQ(f.type, FaultType::Protection);
        slow.pageTable().setProtection(f.address,
                                       Protection::readWrite());
        return true;
    });
    drive(slow, slow_cpu);
    EXPECT_GE(slow_cpu.faultCount(), 1u);

    // Functional state agrees: loads see the same words, and each
    // alias line holds the same data and dirty state in both caches.
    for (const VirtAddr va :
         {va_a, va_b, va_a.plus(16), va_b.plus(16)}) {
        const PhysAddr pa(frame * params.pageBytes +
                          (va.value & (params.pageBytes - 1)));
        const Cache::Probe pf = fast.dcache().probe(va, pa);
        const Cache::Probe ps = slow.dcache().probe(va, pa);
        EXPECT_EQ(pf.present, ps.present);
        EXPECT_EQ(pf.dirty, ps.dirty);
        EXPECT_EQ(pf.word, ps.word);
        EXPECT_EQ(fast_cpu.load(va), slow_cpu.load(va));
    }

    // The slow machine's extra cycles are exactly fault deliveries
    // (trap cost), never divergent cache behaviour.
    EXPECT_GT(slow.clock().now(), fast.clock().now());
}

// ---------------------------------------------------------------------
// Fault-retry boundary at maxFaultRetries.
// ---------------------------------------------------------------------

/** A handler that repairs the mapping on its 7th invocation lets the
 *  8th attempt (the last) succeed — the access completes with exactly
 *  7 faults. */
TEST_F(AccessPipelineTest, RetrySucceedsWhenFixedBeforeLastAttempt)
{
    int faults = 0;
    cpu.setFaultHandler([&](const Fault &f) {
        if (++faults == 7)
            map(f.address.va, 2, Protection::readWrite());
        return true;
    });
    cpu.store(VirtAddr(0x4000), 99);
    EXPECT_EQ(faults, 7);
    EXPECT_EQ(cpu.faultCount(), 7u);
    EXPECT_EQ(cpu.load(VirtAddr(0x4000)), 99u);
}

/** A handler that repairs the mapping only on its 8th invocation is
 *  one fault too late: all retry attempts are exhausted delivering
 *  faults, and the pipeline must diagnose the livelock rather than
 *  retry forever. */
TEST_F(AccessPipelineTest, RetryLivelocksWhenFixedOneFaultTooLate)
{
    int faults = 0;
    cpu.setFaultHandler([&](const Fault &f) {
        if (++faults == 8)
            map(f.address.va, 2, Protection::readWrite());
        return true;
    });
    EXPECT_DEATH(cpu.load(VirtAddr(0x4000)), "livelock");
}

// ---------------------------------------------------------------------
// Referenced/modified bits via the mutable PTE handle.
// ---------------------------------------------------------------------

/** translate() must hand back the live page-table entry itself — the
 *  same object lookupMutable() finds — and the pipeline must set
 *  referenced/modified through it. */
TEST_F(AccessPipelineTest, TranslateReturnsLivePteHandle)
{
    map(VirtAddr(0x4000), 2, Protection::readWrite());
    PageTableEntry *handle =
        machine.tlb().translate(SpaceVa(1, VirtAddr(0x4000)));
    ASSERT_NE(handle, nullptr);
    EXPECT_EQ(handle, machine.pageTable().lookupMutable(
                          SpaceVa(1, VirtAddr(0x4000))));

    EXPECT_FALSE(handle->referenced);
    (void)cpu.load(VirtAddr(0x4000));
    EXPECT_TRUE(handle->referenced);
    EXPECT_FALSE(handle->modified);
    cpu.store(VirtAddr(0x4000), 1);
    EXPECT_TRUE(handle->modified);
}

/** Protection changes mutate the entry in place, so a cached handle —
 *  and therefore a TLB hit — observes them immediately, even without
 *  a shootdown. This is the read-through behaviour the consistency
 *  algorithm's protection downgrades depend on. */
TEST_F(AccessPipelineTest, CachedHandleSeesInPlaceProtectionDowngrade)
{
    map(VirtAddr(0x4000), 2, Protection::readWrite());
    cpu.store(VirtAddr(0x4000), 5); // TLB entry + handle now cached
    machine.pageTable().setProtection(SpaceVa(1, VirtAddr(0x4000)),
                                      Protection::readOnly());
    int faults = 0;
    cpu.setFaultHandler([&](const Fault &f) {
        ++faults;
        EXPECT_EQ(f.type, FaultType::Protection);
        machine.pageTable().setProtection(f.address,
                                          Protection::readWrite());
        return true;
    });
    cpu.store(VirtAddr(0x4000), 6); // must trap despite the TLB hit
    EXPECT_EQ(faults, 1);
}

// ---------------------------------------------------------------------
// Page-table walks per access.
// ---------------------------------------------------------------------

/** The pipeline's contract (satellite of the double-lookup fix): at
 *  most one page-table walk per access, and zero on a TLB hit. */
TEST_F(AccessPipelineTest, AtMostOneWalkPerAccessAndZeroOnTlbHit)
{
    map(VirtAddr(0x4000), 2, Protection::readWrite());

    // First touch: TLB miss -> exactly one refill walk.
    std::uint64_t walks = machine.pageTable().walkCount();
    (void)cpu.load(VirtAddr(0x4000));
    EXPECT_EQ(machine.pageTable().walkCount() - walks, 1u);

    // Subsequent touches of the page: TLB hits -> zero walks, for
    // loads, stores and repeated accesses alike.
    walks = machine.pageTable().walkCount();
    for (int i = 0; i < 16; ++i) {
        cpu.store(VirtAddr(0x4000 + 4 * i), i);
        (void)cpu.load(VirtAddr(0x4000 + 4 * i));
    }
    EXPECT_EQ(machine.pageTable().walkCount() - walks, 0u);

    // A faulting access walks at most once per retry attempt.
    walks = machine.pageTable().walkCount();
    cpu.setFaultHandler([&](const Fault &f) {
        map(f.address.va, 3, Protection::readWrite());
        return true;
    });
    (void)cpu.load(VirtAddr(0x9000));
    // Attempt 1 misses on the unmapped page (1 walk, no refill);
    // attempt 2 misses and refills (1 walk).
    EXPECT_LE(machine.pageTable().walkCount() - walks, 2u);
}

// ---------------------------------------------------------------------
// Observer flag + sampling.
// ---------------------------------------------------------------------

struct CountingObserver : MemoryObserver
{
    int loads = 0, stores = 0, ifetches = 0;
    void cpuLoad(PhysAddr, std::uint32_t) override { ++loads; }
    void cpuStore(PhysAddr, std::uint32_t) override { ++stores; }
    void cpuIFetch(PhysAddr, std::uint32_t) override { ++ifetches; }
};

TEST_F(AccessPipelineTest, ObserverSamplingReportsEveryNthAccess)
{
    map(VirtAddr(0x4000), 2, Protection::all());
    CountingObserver obs;
    machine.setObserver(&obs);

    // Default period 1: every access reported.
    cpu.loadRange(VirtAddr(0x4000), 8, 4);
    EXPECT_EQ(obs.loads, 8);

    // Period 4: every 4th access reported, across access kinds.
    machine.setObserverSampling(4);
    obs = CountingObserver{};
    cpu.loadRange(VirtAddr(0x4000), 8, 4);
    EXPECT_EQ(obs.loads, 2);
    cpu.storeRange(VirtAddr(0x4000), 8, 4, 1, 1);
    EXPECT_EQ(obs.stores, 2);
    cpu.ifetchRange(VirtAddr(0x4000), 8, 4);
    EXPECT_EQ(obs.ifetches, 2);

    // Period 0 is clamped to 1 (sampling off).
    machine.setObserverSampling(0);
    obs = CountingObserver{};
    cpu.loadRange(VirtAddr(0x4000), 3, 4);
    EXPECT_EQ(obs.loads, 3);
}

// ---------------------------------------------------------------------
// Batched-vs-single access identity.
// ---------------------------------------------------------------------

/** The batched API must be indistinguishable from a loop of single
 *  accesses: same values, same cycle count, same stats snapshot, same
 *  fault count — on fresh machines driven identically. */
TEST(AccessPipelineBatch, BatchedMatchesSingleAccessExactly)
{
    const MachineParams params = MachineParams::hp720();
    const VirtAddr base(0x40000);
    const std::uint32_t n = 64;

    auto setup = [&](Machine &m, Cpu &c) {
        c.setSpace(1);
        m.pageTable().enter(SpaceVa(1, base), 4, Protection::all());
        m.pageTable().enter(
            SpaceVa(1, base.plus(params.pageBytes)), 5,
            Protection::all());
    };

    Machine single(params);
    Cpu single_cpu(single);
    setup(single, single_cpu);
    std::vector<std::uint32_t> single_values;
    for (std::uint32_t i = 0; i < n; ++i)
        single_cpu.store(base.plus(4 * i), 1000 + 3 * i);
    for (std::uint32_t i = 0; i < n; ++i)
        single_values.push_back(single_cpu.load(base.plus(4 * i)));
    for (std::uint32_t i = 0; i < 8; ++i)
        single_values.push_back(
            single_cpu.ifetch(base.plus(params.pageBytes + 32 * i)));
    // Mixed op batch equivalent, issued singly: store + load + load.
    single_cpu.store(base, 42);
    (void)single_cpu.load(base);
    single_values.push_back(single_cpu.load(base));

    Machine batched(params);
    Cpu batched_cpu(batched);
    setup(batched, batched_cpu);
    std::vector<std::uint32_t> batched_values;
    batched_cpu.storeRange(base, n, 4, 1000, 3);
    for (std::uint32_t i = 0; i < n; ++i)
        batched_values.push_back(batched_cpu.load(base.plus(4 * i)));
    for (std::uint32_t i = 0; i < 8; ++i)
        batched_values.push_back(
            batched_cpu.ifetch(base.plus(params.pageBytes + 32 * i)));
    const Cpu::Op ops[] = {
        {AccessType::Store, base, 42},
        {AccessType::Load, base, 0},
    };
    batched_cpu.run(ops, 2);
    batched_values.push_back(batched_cpu.load(base));

    EXPECT_EQ(single_values, batched_values);
    EXPECT_EQ(single.clock().now(), batched.clock().now());
    EXPECT_EQ(single_cpu.faultCount(), batched_cpu.faultCount());
    EXPECT_EQ(single.stats().snapshot(), batched.stats().snapshot());
}

} // anonymous namespace
} // namespace vic
