/**
 * @file
 * Tests for the cost-aware optimality analyzers: the static cost
 * model must agree with what the concrete machine charges for every
 * op kind; the necessity analyzer must expose the eager policies'
 * redundant ops (with replayable minimal traces) while proving every
 * op the shipped lazy policies issue load-bearing; the differential
 * analyzer must produce Table-2-consistent worst-case bounds and
 * refuse to cost-compare an unsound policy.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/cycle_clock.hh"
#include "common/stats.hh"
#include "core/policy_config.hh"
#include "machine/machine_params.hh"
#include "mem/physical_memory.hh"
#include "verify/cost_model.hh"
#include "verify/differential.hh"
#include "verify/necessity.hh"
#include "verify/trace_replay.hh"

namespace vic
{
namespace
{

namespace verify = vic::verify;

// ---------------------------------------------------------------------
// Cost model vs the concrete machine
// ---------------------------------------------------------------------

class CostAgreementTest : public ::testing::Test
{
  protected:
    CostAgreementTest()
        : mp(MachineParams::hp720()),
          mem(64, mp.pageBytes),
          dcache("dcache", mp.dcacheGeometry(), mp.dcacheCosts,
                 WritePolicy::WriteBack, mem, clk, stats),
          icache("icache", mp.icacheGeometry(), mp.icacheCosts,
                 WritePolicy::WriteBack, mem, clk, stats),
          costs(mp)
    {
    }

    /** Cycles a callback takes on the concrete clock. */
    Cycles measure(const std::function<void()> &fn)
    {
        const Cycles before = clk.now();
        fn();
        return clk.now() - before;
    }

    MachineParams mp;
    PhysicalMemory mem;
    CycleClock clk;
    StatSet stats;
    Cache dcache;
    Cache icache;
    verify::CostModel costs;

    const VirtAddr va{3 * 4096};
    const PhysAddr pa{2 * 4096};
};

TEST_F(CostAgreementTest, AbsentDataPurgeMatchesConcreteCache)
{
    const Cycles measured =
        measure([&] { dcache.purgePage(va, pa); });
    const verify::IssuedOp op{CacheKind::Data, RequiredOp::Purge, 0,
                              /*present=*/false, /*dirty=*/false};
    EXPECT_EQ(costs.opCycles(op), measured);
    EXPECT_EQ(measured, costs.dataPageOpCycles(0));
}

TEST_F(CostAgreementTest, PresentCleanOpMatchesConcreteCache)
{
    // One line of the page present and clean: purge and flush charge
    // the same (no write-back), both matching the model.
    (void)dcache.read(va, pa);
    const Cycles purge = measure([&] { dcache.purgePage(va, pa); });
    const verify::IssuedOp op{CacheKind::Data, RequiredOp::Purge, 0,
                              /*present=*/true, /*dirty=*/false};
    EXPECT_EQ(costs.opCycles(op), purge);

    (void)dcache.read(va, pa);
    const Cycles flush = measure([&] { dcache.flushPage(va, pa); });
    const verify::IssuedOp fop{CacheKind::Data, RequiredOp::Flush, 0,
                               /*present=*/true, /*dirty=*/false};
    EXPECT_EQ(costs.opCycles(fop), flush);
    EXPECT_EQ(flush, purge);
}

TEST_F(CostAgreementTest, DirtyFlushPaysWriteBackPenalty)
{
    dcache.write(va, pa, 7);
    const Cycles measured =
        measure([&] { dcache.flushPage(va, pa); });
    const verify::IssuedOp op{CacheKind::Data, RequiredOp::Flush, 0,
                              /*present=*/true, /*dirty=*/true};
    EXPECT_EQ(costs.opCycles(op), measured);
    const verify::IssuedOp clean{CacheKind::Data, RequiredOp::Flush, 0,
                                 /*present=*/true, /*dirty=*/false};
    EXPECT_EQ(costs.opCycles(op),
              costs.opCycles(clean) + mp.dcacheCosts.writeBackPenalty);
}

TEST_F(CostAgreementTest, DirtyPurgeDiscardsWithoutWriteBack)
{
    dcache.write(va, pa, 7);
    const Cycles measured =
        measure([&] { dcache.purgePage(va, pa); });
    const verify::IssuedOp op{CacheKind::Data, RequiredOp::Purge, 0,
                              /*present=*/true, /*dirty=*/true};
    EXPECT_EQ(costs.opCycles(op), measured);
}

TEST_F(CostAgreementTest, InstPurgeIsUniformCost)
{
    // The 720's instruction cache charges the present price per line
    // whether or not the line holds data, so present and absent page
    // purges cost the same.
    const Cycles absent = measure([&] { icache.purgePage(va, pa); });
    (void)icache.read(va, pa);
    const Cycles present = measure([&] { icache.purgePage(va, pa); });
    EXPECT_EQ(absent, present);
    const verify::IssuedOp op{CacheKind::Instruction,
                              RequiredOp::Purge, 0,
                              /*present=*/false, /*dirty=*/false};
    EXPECT_EQ(costs.opCycles(op), absent);
}

TEST_F(CostAgreementTest, StepCyclesSumsTrapsPmapCallsAndOps)
{
    verify::StepTrace t;
    t.traps = 2;
    t.pmapCalls = 3;
    t.ops.push_back({CacheKind::Data, RequiredOp::Purge, 0, false,
                     false});
    const Cycles expected = 2 * mp.trapCycles +
        3 * mp.pmapOverheadCycles + costs.dataPageOpCycles(0);
    EXPECT_EQ(costs.stepCycles(t), expected);
}

// ---------------------------------------------------------------------
// Necessity
// ---------------------------------------------------------------------

TEST(NecessityTest, EagerClassicIssuesProvablyRedundantOps)
{
    const verify::NecessityAnalyzer analyzer;
    const verify::NecessityResult r =
        analyzer.analyze(PolicyConfig::configA());
    ASSERT_TRUE(r.sound);
    ASSERT_TRUE(r.complete);
    EXPECT_TRUE(r.adversariallyClean);
    // The eager strategy burns ops the machine never needed — the
    // statically derived face of the paper's Table 1 waste.
    EXPECT_GE(r.redundantOps, 1u);
    EXPECT_GT(r.necessaryOps, 0u);
    EXPECT_EQ(r.inconclusiveOps, 0u);
}

TEST(NecessityTest, EagerClassicExemplarHasReplayableTrace)
{
    const verify::NecessityAnalyzer analyzer;
    const verify::NecessityResult r =
        analyzer.analyze(PolicyConfig::configA());
    ASSERT_TRUE(r.sound);

    bool found = false;
    for (const verify::SiteReport &s : r.sites) {
        if (!s.exemplar)
            continue;
        found = true;
        EXPECT_GT(s.exemplar->wastedCycles, 0u);
        // The minimal trace reaching the redundant op must replay
        // clean on the concrete machine: the policy (op included) is
        // sound, and the trace is a real executable schedule, not an
        // artifact of the abstraction.
        verify::Trace full = s.exemplar->prefix;
        full.push_back(s.exemplar->event);
        const verify::TraceReplayer replayer(PolicyConfig::configA());
        const verify::ReplayResult rr = replayer.replay(full);
        EXPECT_FALSE(rr.violated)
            << "exemplar trace violated at " << s.site;
    }
    EXPECT_TRUE(found);
}

TEST(NecessityTest, ShippedLazyPoliciesIssueOnlyNecessaryOps)
{
    const verify::NecessityAnalyzer analyzer;
    for (const PolicyConfig &p : PolicyConfig::table4Sweep()) {
        if (p.pmapKind != PmapKind::Lazy)
            continue;
        const verify::NecessityResult r = analyzer.analyze(p);
        ASSERT_TRUE(r.sound) << p.name;
        ASSERT_TRUE(r.complete) << p.name;
        EXPECT_EQ(r.redundantOps, 0u) << p.name;
        EXPECT_EQ(r.inconclusiveOps, 0u) << p.name;
        EXPECT_GT(r.necessaryOps, 0u) << p.name;
    }
}

TEST(NecessityTest, ClassicPoliciesHaveNoRemovableSiteLeft)
{
    // Per-instance waste is inherent to the eager strategies; a call
    // site redundant in EVERY instance would be dead code. The two
    // such sites the analyzer originally found (the classic ifetch
    // re-purge and Tut's purge of the new colour on remap) have been
    // removed from the shipping pmaps.
    const verify::NecessityAnalyzer analyzer;
    for (const PolicyConfig &p : PolicyConfig::table5Systems()) {
        if (p.pmapKind != PmapKind::Classic)
            continue;
        const verify::NecessityResult r = analyzer.analyze(p);
        ASSERT_TRUE(r.sound) << p.name;
        EXPECT_FALSE(r.anyRemovableSite()) << p.name;
    }
}

TEST(NecessityTest, UnsoundPolicyIsRejectedNotAnalyzed)
{
    const verify::NecessityAnalyzer analyzer;
    const verify::NecessityResult r =
        analyzer.analyze(PolicyConfig::broken());
    EXPECT_FALSE(r.sound);
    EXPECT_FALSE(r.counterexample.empty());
    EXPECT_TRUE(r.violation.has_value());
    EXPECT_EQ(r.opsExamined, 0u);
}

// ---------------------------------------------------------------------
// Cost census
// ---------------------------------------------------------------------

TEST(CostCensusTest, LazyNeverTouchesAbsentLinesEagerDoes)
{
    const verify::CostCensus lazy =
        verify::runCostCensus(PolicyConfig::cmu());
    ASSERT_TRUE(lazy.fixedPointReached);
    EXPECT_EQ(lazy.absentOps, 0u);
    EXPECT_GT(lazy.presentOps, 0u);

    const verify::CostCensus eager =
        verify::runCostCensus(PolicyConfig::utah());
    ASSERT_TRUE(eager.fixedPointReached);
    EXPECT_GT(eager.absentOps, 0u);
    EXPECT_GE(eager.worstStepCycles, lazy.worstStepCycles);
}

// ---------------------------------------------------------------------
// Differential
// ---------------------------------------------------------------------

TEST(DifferentialTest, UnsoundPolicyYieldsNoCostDiff)
{
    const verify::DifferentialAnalyzer analyzer;
    const verify::DiffResult r = analyzer.compare(
        PolicyConfig::broken(), PolicyConfig::cmu());
    EXPECT_FALSE(r.comparable);
    EXPECT_EQ(r.unsoundPolicy, PolicyConfig::broken().name);
    EXPECT_FALSE(r.unsoundTrace.empty());
    EXPECT_TRUE(r.classes.empty());
}

TEST(DifferentialTest, ClassicVsLazyBoundsFollowTable2)
{
    const verify::DifferentialAnalyzer analyzer;
    const verify::DiffResult r = analyzer.compare(
        PolicyConfig::utah(), PolicyConfig::cmu());
    ASSERT_TRUE(r.comparable);
    ASSERT_TRUE(r.fixedPointReached);

    const verify::CostModel costs;
    for (const verify::DiffClassBound &c : r.classes) {
        // Table 2: a read or ifetch whose target cache page is Empty
        // or Present needs no consistency work under the lazy scheme
        // (unless a dirty page is displaced, the "+disp" classes).
        const bool read_like = c.label.rfind("load", 0) == 0 ||
            c.label.rfind("ifetch", 0) == 0;
        const bool displacing =
            c.label.find("+disp") != std::string::npos;
        // No cache op is issued, though the access may still trap
        // into the kernel (lazy first-touch) and run the pmap.
        const Cycles overhead =
            costs.trapCycles() + costs.pmapCycles();
        if (read_like && !displacing &&
            (c.label.find("tgt=E") != std::string::npos ||
             c.label.find("tgt=P") != std::string::npos)) {
            EXPECT_LE(c.worstB, overhead) << c.label;
        }
        // A stale target must at least pay the purge.
        if (!displacing &&
            c.label.find("tgt=S") != std::string::npos) {
            EXPECT_GE(c.worstB, costs.dataPageOpCycles(1))
                << c.label;
        }
        // Displacing a dirty page costs at least the flush.
        if (displacing) {
            EXPECT_GE(c.worstB, costs.dataPageOpCycles(1)) << c.label;
        }
    }

    // The eager strategy pays where the lazy one rides free — the
    // Table 1/2 ordering — and never the other way round by less.
    EXPECT_GT(r.aPaysBFree, 0u);
    EXPECT_GE(r.worstPathA, r.worstPathB);
}

} // anonymous namespace
} // namespace vic
