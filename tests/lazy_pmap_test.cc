/**
 * @file
 * Tests for LazyPmap — the paper's CacheControl algorithm (Figure 1).
 *
 * Scenario tests drive the simulated CPU through pmap-managed
 * mappings and check both the decoded Table 3 states and the actual
 * data values. The refinement test runs thousands of random
 * operations and requires the concrete encoded state to equal the
 * SpecExecutor's Table 2 state at every step, per cache, per colour.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/lazy_pmap.hh"
#include "core/spec_executor.hh"
#include "machine/cpu.hh"
#include "machine/machine.hh"

namespace vic
{
namespace
{

using S = CachePageState;

class LazyPmapTest : public ::testing::Test
{
  protected:
    LazyPmapTest() : LazyPmapTest(PolicyConfig::configF()) {}

    explicit LazyPmapTest(PolicyConfig cfg)
        : machine(MachineParams::hp720()), pmap(machine, cfg),
          cpu(machine)
    {
        cpu.setSpace(1);
        cpu.setFaultHandler([this](const Fault &f) {
            ++consistencyFaults;
            return pmap.resolveConsistencyFault(f.address, f.access);
        });
    }

    /** Map (space 1, va) -> frame with full permissions. */
    void
    map(VirtAddr va, FrameId frame,
        Protection prot = Protection::all(),
        AccessType access = AccessType::Load)
    {
        pmap.enter(SpaceVa(1, va), frame, prot, access, {});
    }

    VirtAddr
    vaOfColour(CachePageId colour, std::uint32_t replica = 0)
    {
        const std::uint32_t colours =
            machine.dcache().geometry().numColours();
        return VirtAddr((std::uint64_t(replica) * colours + colour) *
                        machine.pageBytes());
    }

    Machine machine;
    LazyPmap pmap;
    Cpu cpu;
    int consistencyFaults = 0;
};

TEST_F(LazyPmapTest, FirstReadMakesPagePresent)
{
    map(vaOfColour(1), 7);
    cpu.load(vaOfColour(1));
    EXPECT_EQ(pmap.dataState(7, 1), S::Present);
    EXPECT_EQ(pmap.dataState(7, 2), S::Empty);
}

TEST_F(LazyPmapTest, WriteMakesPageDirtyAndVisible)
{
    map(vaOfColour(1), 7, Protection::all(), AccessType::Store);
    cpu.store(vaOfColour(1), 99);
    EXPECT_EQ(pmap.dataState(7, 1), S::Dirty);
    EXPECT_EQ(cpu.load(vaOfColour(1)), 99u);
}

TEST_F(LazyPmapTest, ModifiedBitDefersDirtyTracking)
{
    // Entered for reading, then silently written: the decoded state
    // stays Present until the next CacheControl syncs the hardware
    // modified bit (the Section 4.1 optimisation).
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 99);
    EXPECT_EQ(pmap.dataState(7, 1), S::Present);
    pmap.dmaRead(7, true);  // forces the sync (and the flush)
    EXPECT_EQ(machine.memory().readWord(machine.frameAddr(7)), 99u);
}

TEST_F(LazyPmapTest, UnalignedAliasReadSeesFreshData)
{
    // The headline scenario: write via colour 1, read via colour 2.
    map(vaOfColour(1), 7);
    map(vaOfColour(2), 7);
    cpu.store(vaOfColour(1), 1234);
    EXPECT_EQ(cpu.load(vaOfColour(2)), 1234u);
    // The dirty page was flushed (D -> E) and the target is present.
    EXPECT_EQ(pmap.dataState(7, 1), S::Empty);
    EXPECT_EQ(pmap.dataState(7, 2), S::Present);
    EXPECT_EQ(machine.stats().value("pmap.d_page_flushes"), 1u);
}

TEST_F(LazyPmapTest, AlignedAliasesNeedNoConsistencyWork)
{
    map(vaOfColour(3), 7);
    map(vaOfColour(3, 1), 7);  // same colour, different page
    cpu.store(vaOfColour(3), 5);
    EXPECT_EQ(cpu.load(vaOfColour(3, 1)), 5u);
    cpu.store(vaOfColour(3, 1), 6);
    EXPECT_EQ(cpu.load(vaOfColour(3)), 6u);
    EXPECT_EQ(machine.stats().value("pmap.d_page_flushes"), 0u);
    EXPECT_EQ(machine.stats().value("pmap.d_page_purges"), 0u);
}

TEST_F(LazyPmapTest, WriteStalesOtherColoursAndPurgesOnReuse)
{
    map(vaOfColour(1), 7);
    map(vaOfColour(2), 7);
    cpu.load(vaOfColour(2));      // colour 2 present
    cpu.store(vaOfColour(1), 8);  // colour 2 -> stale
    EXPECT_EQ(pmap.dataState(7, 2), S::Stale);

    EXPECT_EQ(cpu.load(vaOfColour(2)), 8u);  // purge + fresh fetch
    EXPECT_EQ(pmap.dataState(7, 2), S::Present);
    EXPECT_GE(machine.stats().value("pmap.d_page_purges"), 1u);
}

TEST_F(LazyPmapTest, WritePingPongStaysConsistent)
{
    map(vaOfColour(1), 7);
    map(vaOfColour(2), 7);
    for (std::uint32_t i = 0; i < 20; ++i) {
        VirtAddr w = i % 2 ? vaOfColour(2) : vaOfColour(1);
        VirtAddr r = i % 2 ? vaOfColour(1) : vaOfColour(2);
        cpu.store(w, i);
        EXPECT_EQ(cpu.load(r), i);
    }
}

TEST_F(LazyPmapTest, LazyUnmapKeepsStateAcrossRemap)
{
    map(vaOfColour(4), 7);
    cpu.store(vaOfColour(4), 31);
    pmap.remove(SpaceVa(1, vaOfColour(4)));
    EXPECT_EQ(pmap.dataState(7, 4), S::Dirty);  // state survives

    // Aligned remap: the dirty data is still in the cache; no flush,
    // no purge, and the value is there.
    auto flushes = machine.stats().value("pmap.d_page_flushes");
    map(vaOfColour(4, 1), 7);
    EXPECT_EQ(cpu.load(vaOfColour(4, 1)), 31u);
    EXPECT_EQ(machine.stats().value("pmap.d_page_flushes"), flushes);
}

TEST_F(LazyPmapTest, UnalignedRemapFlushesOldDirtyColour)
{
    map(vaOfColour(4), 7);
    cpu.store(vaOfColour(4), 31);
    pmap.remove(SpaceVa(1, vaOfColour(4)));

    map(vaOfColour(5), 7, Protection::all(), AccessType::Load);
    EXPECT_EQ(cpu.load(vaOfColour(5)), 31u);  // flushed to memory first
    EXPECT_EQ(machine.stats().value("pmap.d_page_flushes"), 1u);
}

TEST_F(LazyPmapTest, DmaReadFlushesDirtyData)
{
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 0x77);
    pmap.dmaRead(7, true);
    EXPECT_EQ(machine.memory().readWord(machine.frameAddr(7)), 0x77u);
    // The flush writes back and invalidates, so the page is Empty;
    // the old Present bookkeeping cost a redundant purge on the next
    // differently-mapped use of the colour.
    EXPECT_EQ(pmap.dataState(7, 1), S::Empty);
    EXPECT_EQ(machine.stats().value("pmap.d_flush.dma_read"), 1u);
}

TEST_F(LazyPmapTest, DmaWritePurgesDirtyAndStalesMapped)
{
    map(vaOfColour(1), 7);
    map(vaOfColour(2), 7);
    cpu.load(vaOfColour(2));
    cpu.store(vaOfColour(1), 0x55);

    pmap.dmaWrite(7);
    EXPECT_EQ(pmap.dataState(7, 1), S::Empty);  // purged dirty
    EXPECT_EQ(pmap.dataState(7, 2), S::Stale);
    EXPECT_EQ(machine.stats().value("pmap.d_purge.dma_write"), 1u);
    // The purge means the dirty data must NOT reach memory.
    EXPECT_EQ(machine.memory().readWord(machine.frameAddr(7)), 0u);

    // Simulate the device depositing data, then read through a
    // mapping: the stale state forces a purge and a fresh fetch.
    machine.memory().writeWord(machine.frameAddr(7), 0xabc);
    EXPECT_EQ(cpu.load(vaOfColour(2)), 0xabcu);
}

TEST_F(LazyPmapTest, IFetchForcesFlushOfDirtyDataPage)
{
    // The D->I path: prepare (write) a page, then execute it.
    map(vaOfColour(1), 7, Protection::all(), AccessType::Store);
    cpu.store(vaOfColour(1), 0x4e71);
    EXPECT_EQ(cpu.ifetch(vaOfColour(1)), 0x4e71u);
    EXPECT_EQ(machine.stats().value("pmap.d_flush.ifetch"), 1u);
    EXPECT_EQ(pmap.instState(7, machine.icache().geometry().colourOf(
                                    vaOfColour(1))),
              S::Present);
}

TEST_F(LazyPmapTest, WriteAfterExecuteStalesInstructionCache)
{
    map(vaOfColour(1), 7, Protection::all(), AccessType::Store);
    cpu.store(vaOfColour(1), 0x1111);
    cpu.ifetch(vaOfColour(1));
    // Self-modifying write: the I-cache copy must become stale...
    cpu.store(vaOfColour(1), 0x2222);
    const CachePageId ci =
        machine.icache().geometry().colourOf(vaOfColour(1));
    EXPECT_EQ(pmap.instState(7, ci), S::Stale);
    // ...and the next ifetch purges and sees the new instruction.
    EXPECT_EQ(cpu.ifetch(vaOfColour(1)), 0x2222u);
    EXPECT_GE(machine.stats().value("pmap.i_page_purges"), 1u);
}

TEST_F(LazyPmapTest, ModifiedBitAvoidsWriteFaults)
{
    map(vaOfColour(1), 7, Protection::all(), AccessType::Store);
    cpu.store(vaOfColour(1), 10);
    consistencyFaults = 0;
    for (std::uint32_t i = 1; i < 50; ++i)
        cpu.store(vaOfColour(1).plus(4 * i), i);
    EXPECT_EQ(consistencyFaults, 0);
    // The dirtiness is still tracked: a DMA-read must flush.
    pmap.dmaRead(7, true);
    EXPECT_EQ(machine.stats().value("pmap.d_flush.dma_read"), 1u);
    EXPECT_EQ(machine.memory().readWord(machine.frameAddr(7)), 10u);
}

TEST_F(LazyPmapTest, ProtectDowngradeDeniesWrites)
{
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 1);
    pmap.protect(SpaceVa(1, vaOfColour(1)), Protection::readOnly());
    // A store is now a genuine VM-level denial, not a consistency
    // fault: resolveConsistencyFault must refuse it.
    EXPECT_FALSE(pmap.resolveConsistencyFault(SpaceVa(1, vaOfColour(1)),
                                              AccessType::Store));
    // Reads still work.
    EXPECT_EQ(cpu.load(vaOfColour(1)), 1u);
}

TEST_F(LazyPmapTest, PreferredColourTracksData)
{
    EXPECT_FALSE(pmap.preferredColour(7).has_value());
    map(vaOfColour(3), 7);
    cpu.store(vaOfColour(3), 1);
    EXPECT_EQ(pmap.preferredColour(7), std::optional<CachePageId>(3));

    pmap.remove(SpaceVa(1, vaOfColour(3)));
    pmap.frameFreed(7);
    EXPECT_EQ(pmap.preferredColour(7), std::optional<CachePageId>(3));
}

TEST_F(LazyPmapTest, WillOverwriteSkipsPurge)
{
    // Make colour 2 stale for frame 7.
    map(vaOfColour(1), 7);
    map(vaOfColour(2), 7);
    cpu.load(vaOfColour(2));
    cpu.store(vaOfColour(1), 7);
    pmap.remove(SpaceVa(1, vaOfColour(2)));
    ASSERT_EQ(pmap.dataState(7, 2), S::Stale);

    // Re-enter colour 2 with the overwrite promise: no purge.
    auto purges = machine.stats().value("pmap.d_page_purges");
    Pmap::EnterHints hints;
    hints.willOverwrite = true;
    pmap.enter(SpaceVa(1, vaOfColour(2, 1)), 7, Protection::all(),
               AccessType::Store, hints);
    EXPECT_EQ(machine.stats().value("pmap.d_page_purges"), purges);

    // Overwrite the page fully, then verify reads are consistent.
    for (std::uint32_t off = 0; off < machine.pageBytes(); off += 4)
        cpu.store(vaOfColour(2, 1).plus(off), off + 1);
    for (std::uint32_t off = 0; off < machine.pageBytes(); off += 4)
        EXPECT_EQ(cpu.load(vaOfColour(2, 1).plus(off)), off + 1);
}

TEST_F(LazyPmapTest, NeedDataFalseDowngradesFlushToPurge)
{
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 42);
    pmap.remove(SpaceVa(1, vaOfColour(1)));

    // Remap at another colour declaring the old contents dead.
    Pmap::EnterHints hints;
    hints.willOverwrite = true;
    hints.needData = false;
    pmap.enter(SpaceVa(1, vaOfColour(2)), 7, Protection::all(),
               AccessType::Store, hints);
    EXPECT_EQ(machine.stats().value("pmap.d_page_flushes"), 0u);
    EXPECT_EQ(machine.stats().value("pmap.d_page_purges"), 1u);
}

class LazyPmapConfigBTest : public LazyPmapTest
{
  protected:
    LazyPmapConfigBTest() : LazyPmapTest(PolicyConfig::configB()) {}
};

TEST_F(LazyPmapConfigBTest, WithoutNeedDataDirtyDataIsFlushed)
{
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 42);
    pmap.remove(SpaceVa(1, vaOfColour(1)));

    Pmap::EnterHints hints;
    hints.willOverwrite = true;  // ignored by config B
    hints.needData = false;      // ignored by config B
    pmap.enter(SpaceVa(1, vaOfColour(2)), 7, Protection::all(),
               AccessType::Store, hints);
    EXPECT_EQ(machine.stats().value("pmap.d_page_flushes"), 1u);
}

TEST_F(LazyPmapConfigBTest, WithoutWillOverwriteStalePagePurged)
{
    map(vaOfColour(1), 7);
    map(vaOfColour(2), 7);
    cpu.load(vaOfColour(2));
    cpu.store(vaOfColour(1), 7);
    pmap.remove(SpaceVa(1, vaOfColour(2)));

    auto purges = machine.stats().value("pmap.d_page_purges");
    Pmap::EnterHints hints;
    hints.willOverwrite = true;  // ignored by config B
    pmap.enter(SpaceVa(1, vaOfColour(2, 1)), 7, Protection::all(),
               AccessType::Store, hints);
    EXPECT_GT(machine.stats().value("pmap.d_page_purges"), purges);
}

// ---------------------------------------------------------------------
// Refinement: the concrete algorithm against the abstract model.
// ---------------------------------------------------------------------

class LazyPmapRefinementTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LazyPmapRefinementTest, RandomOpsMatchSpecExactly)
{
    // Modified-bit tracking defers state updates between faults, so
    // for exact step-by-step equality it is disabled; a separate test
    // covers the deferred path.
    PolicyConfig cfg = PolicyConfig::configB();
    cfg.useModifiedBit = false;

    Machine machine(MachineParams::hp720());
    LazyPmap pmap(machine, cfg);
    Cpu cpu(machine);
    cpu.setSpace(1);
    cpu.setFaultHandler([&](const Fault &f) {
        return pmap.resolveConsistencyFault(f.address, f.access);
    });

    const std::uint32_t colours =
        machine.dcache().geometry().numColours();
    const std::uint32_t page = machine.pageBytes();
    const FrameId frame = 9;

    // One mapping per data-cache colour.
    for (CachePageId c = 0; c < colours; ++c) {
        pmap.enter(SpaceVa(1, VirtAddr(std::uint64_t(c) * page)), frame,
                   Protection::all(), AccessType::Load, {});
    }

    SpecExecutor dspec(colours);
    SpecExecutor ispec(machine.icache().geometry().numColours());
    // The enters above performed CPU-reads on every colour.
    for (CachePageId c = 0; c < colours; ++c)
        dspec.apply(MemOp::CpuRead, c);

    Random rng(1000 + GetParam());
    for (int step = 0; step < 3000; ++step) {
        const CachePageId c =
            static_cast<CachePageId>(rng.below(colours));
        const VirtAddr va(std::uint64_t(c) * page);
        switch (rng.below(5)) {
          case 0:
            cpu.load(va);
            dspec.apply(MemOp::CpuRead, c);
            break;
          case 1:
            cpu.store(va, static_cast<std::uint32_t>(step));
            dspec.apply(MemOp::CpuWrite, c);
            // A data write stales instruction-cache copies exactly
            // like a DMA-write would (nothing becomes dirty there).
            ispec.apply(MemOp::DmaWrite, std::nullopt);
            break;
          case 2:
            cpu.ifetch(va);
            // An ifetch flushes a dirty data page first (instructions
            // never align with data): Flush on the dirty colour.
            if (auto w = dspec.dirtyColour())
                dspec.apply(MemOp::Flush, *w);
            ispec.apply(MemOp::CpuRead, c);
            break;
          case 3:
            pmap.dmaRead(frame, true);
            dspec.apply(MemOp::DmaRead, std::nullopt);
            ispec.apply(MemOp::DmaRead, std::nullopt);
            break;
          case 4:
            pmap.dmaWrite(frame);
            dspec.apply(MemOp::DmaWrite, std::nullopt);
            ispec.apply(MemOp::DmaWrite, std::nullopt);
            break;
        }

        for (CachePageId k = 0; k < colours; ++k) {
            ASSERT_EQ(pmap.dataState(frame, k), dspec.state(k))
                << "step " << step << " colour " << k;
        }
        for (CachePageId k = 0; k < ispec.numColours(); ++k) {
            ASSERT_EQ(pmap.instState(frame, k), ispec.state(k))
                << "step " << step << " icolour " << k;
        }
        ASSERT_TRUE(dspec.invariantHolds());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyPmapRefinementTest,
                         ::testing::Range(0, 8));

TEST(LazyPmapModifiedBitRefinement, StateAgreesAtSyncPoints)
{
    // With the modified-bit optimisation the implementation defers
    // marking the page dirty until the next CacheControl run; a DMA
    // barrier forces the sync, after which states must agree.
    Machine machine(MachineParams::hp720());
    LazyPmap pmap(machine, PolicyConfig::configF());
    Cpu cpu(machine);
    cpu.setSpace(1);
    cpu.setFaultHandler([&](const Fault &f) {
        return pmap.resolveConsistencyFault(f.address, f.access);
    });

    const std::uint32_t page = machine.pageBytes();
    pmap.enter(SpaceVa(1, VirtAddr(0)), 5, Protection::all(),
               AccessType::Store, {});
    cpu.store(VirtAddr(0), 1);
    cpu.store(VirtAddr(4), 2);  // silent (no fault) thanks to mod bit
    cpu.store(VirtAddr(8), 3);

    pmap.dmaRead(5, true);  // sync point: flush must have happened
    EXPECT_EQ(machine.memory().readWord(PhysAddr(5 * page + 4)), 2u);
    EXPECT_EQ(pmap.dataState(5, 0), CachePageState::Empty);
}

} // anonymous namespace
} // namespace vic
