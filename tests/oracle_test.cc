/**
 * @file
 * Tests for the consistency oracle — including the non-vacuity
 * requirement: a machine run under the deliberately broken policy
 * MUST produce violations, proving the simulator really reproduces
 * the paper's failure modes and the oracle really detects them.
 */

#include <gtest/gtest.h>

#include "core/policy_config.hh"
#include "oracle/consistency_oracle.hh"
#include "workload/contrived_alias.hh"
#include "workload/runner.hh"

namespace vic
{
namespace
{

TEST(OracleTest, CleanUntilMismatch)
{
    ConsistencyOracle o(4096);
    o.cpuStore(PhysAddr(0x10), 5);
    o.cpuLoad(PhysAddr(0x10), 5);
    EXPECT_TRUE(o.clean());
    EXPECT_EQ(o.checkedCount(), 1u);

    o.cpuLoad(PhysAddr(0x10), 6);
    EXPECT_FALSE(o.clean());
    ASSERT_EQ(o.violations().size(), 1u);
    EXPECT_EQ(o.violations()[0].expected, 5u);
    EXPECT_EQ(o.violations()[0].observed, 6u);
    EXPECT_EQ(o.violations()[0].kind, "cpu-load");
}

TEST(OracleTest, UnwrittenWordsAreNotChecked)
{
    ConsistencyOracle o(4096);
    o.cpuLoad(PhysAddr(0x20), 12345);  // garbage, but never written
    EXPECT_TRUE(o.clean());
}

TEST(OracleTest, DmaWriteDefinesNewestValue)
{
    ConsistencyOracle o(4096);
    o.cpuStore(PhysAddr(0x10), 1);
    o.dmaWrite(PhysAddr(0x10), 2);
    o.cpuLoad(PhysAddr(0x10), 1);  // shadowed by stale cache copy
    EXPECT_FALSE(o.clean());
    EXPECT_EQ(o.violations()[0].expected, 2u);
}

TEST(OracleTest, DmaReadChecked)
{
    ConsistencyOracle o(4096);
    o.cpuStore(PhysAddr(0x10), 9);
    o.dmaRead(PhysAddr(0x10), 0);  // device read stale memory
    EXPECT_FALSE(o.clean());
    EXPECT_EQ(o.violations()[0].kind, "dma-read");
}

TEST(OracleTest, IFetchChecked)
{
    ConsistencyOracle o(4096);
    o.cpuStore(PhysAddr(0x10), 0x4e71);
    o.cpuIFetch(PhysAddr(0x10), 0);
    EXPECT_FALSE(o.clean());
    EXPECT_EQ(o.violations()[0].kind, "cpu-ifetch");
}

TEST(OracleTest, ViolationCountKeepsGrowingBeyondCap)
{
    ConsistencyOracle o(4096);
    o.cpuStore(PhysAddr(0x10), 1);
    for (int i = 0; i < 100; ++i)
        o.cpuLoad(PhysAddr(0x10), 2);
    EXPECT_EQ(o.violationCount(), 100u);
    EXPECT_LE(o.violations().size(), 64u);
}

TEST(OracleTest, ResetForgetsEverything)
{
    ConsistencyOracle o(4096);
    o.cpuStore(PhysAddr(0x10), 1);
    o.cpuLoad(PhysAddr(0x10), 2);
    o.reset();
    EXPECT_TRUE(o.clean());
    EXPECT_EQ(o.checkedCount(), 0u);
    o.cpuLoad(PhysAddr(0x10), 99);  // undefined again after reset
    EXPECT_TRUE(o.clean());
}

TEST(OracleDeathTest, RejectsUnalignedAndOutOfRange)
{
    ConsistencyOracle o(4096);
    EXPECT_DEATH(o.cpuStore(PhysAddr(2), 0), "unaligned");
    EXPECT_DEATH(o.cpuStore(PhysAddr(4096), 0), "out of range");
}

// ---------------------------------------------------------------------
// Non-vacuity: the broken policy must trip the oracle.
// ---------------------------------------------------------------------

TEST(OracleNonVacuityTest, BrokenPolicyViolatesOnUnalignedAliases)
{
    ContrivedAlias wl({false, 2000, /*verifyReads=*/true});
    RunResult r = runWorkload(wl, PolicyConfig::broken());
    EXPECT_GT(r.oracleViolations, 0u)
        << "the simulator failed to reproduce stale reads under an "
           "unmanaged virtually indexed cache";
}

TEST(OracleNonVacuityTest, BrokenPolicyIsFineWhenAliasesAlign)
{
    // Aligned aliases are harmless even with no management at all —
    // the paper's central observation about alignment.
    ContrivedAlias wl({true, 2000, /*verifyReads=*/true});
    RunResult r = runWorkload(wl, PolicyConfig::broken());
    EXPECT_EQ(r.oracleViolations, 0u);
}

TEST(OracleNonVacuityTest, CorrectPoliciesAreCleanOnSameWorkload)
{
    for (const auto &cfg :
         {PolicyConfig::configA(), PolicyConfig::configF()}) {
        ContrivedAlias wl({false, 2000, /*verifyReads=*/true});
        RunResult r = runWorkload(wl, cfg);
        EXPECT_EQ(r.oracleViolations, 0u) << cfg.name;
        EXPECT_GT(r.oracleChecked, 0u);
    }
}

} // anonymous namespace
} // namespace vic
