/**
 * @file
 * Tests for ClassicPmap — the eager "old" strategy of Section 2.5 and
 * the Table 5 related-work variants (Utah/Apollo eager clean, Tut
 * per-VA lazy residue, Sun constrained aliases).
 */

#include <gtest/gtest.h>

#include "core/classic_pmap.hh"
#include "machine/cpu.hh"
#include "machine/machine.hh"

namespace vic
{
namespace
{

class ClassicPmapTest : public ::testing::Test
{
  protected:
    explicit ClassicPmapTest(PolicyConfig cfg = PolicyConfig::configA())
        : machine(MachineParams::hp720()), pmap(machine, cfg),
          cpu(machine)
    {
        cpu.setSpace(1);
        cpu.setFaultHandler([this](const Fault &f) {
            if (pmap.resolveConsistencyFault(f.address, f.access))
                return true;
            // The classic strategy breaks mappings; model the OS
            // re-entering them on the resulting mapping fault.
            auto it = knownMappings.find(f.address);
            if (f.type == FaultType::Unmapped &&
                it != knownMappings.end()) {
                pmap.enter(f.address, it->second, Protection::all(),
                           f.access, {});
                return true;
            }
            return false;
        });
    }

    void
    map(VirtAddr va, FrameId frame,
        AccessType access = AccessType::Load)
    {
        knownMappings[SpaceVa(1, va)] = frame;
        pmap.enter(SpaceVa(1, va), frame, Protection::all(), access, {});
    }

    VirtAddr
    vaOfColour(CachePageId colour, std::uint32_t replica = 0)
    {
        const std::uint32_t colours =
            machine.dcache().geometry().numColours();
        return VirtAddr((std::uint64_t(replica) * colours + colour) *
                        machine.pageBytes());
    }

    std::uint64_t
    stat(const char *name)
    {
        return machine.stats().value(name);
    }

    Machine machine;
    ClassicPmap pmap;
    Cpu cpu;
    std::unordered_map<SpaceVa, FrameId> knownMappings;
};

TEST_F(ClassicPmapTest, SingleMappingJustWorks)
{
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 5);
    EXPECT_EQ(cpu.load(vaOfColour(1)), 5u);
    EXPECT_EQ(stat("pmap.d_page_flushes"), 0u);
}

TEST_F(ClassicPmapTest, UnmapCleansEagerly)
{
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 5);
    pmap.remove(SpaceVa(1, vaOfColour(1)));
    // Dirty page: flushed at unmap, data reaches memory immediately.
    EXPECT_EQ(stat("pmap.d_flush.unmap"), 1u);
    EXPECT_EQ(machine.memory().readWord(machine.frameAddr(7)), 5u);
}

TEST_F(ClassicPmapTest, UnmapOfCleanPagePurges)
{
    map(vaOfColour(1), 7);
    cpu.load(vaOfColour(1));
    pmap.remove(SpaceVa(1, vaOfColour(1)));
    EXPECT_EQ(stat("pmap.d_purge.unmap"), 1u);
    EXPECT_EQ(stat("pmap.d_flush.unmap"), 0u);
}

TEST_F(ClassicPmapTest, WriteToUnalignedAliasBreaksOther)
{
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 11);
    // Creating a read alias breaks the writable mapping (flush)...
    map(vaOfColour(2), 7);
    EXPECT_EQ(stat("pmap.d_flush.alias"), 1u);
    EXPECT_EQ(cpu.load(vaOfColour(2)), 11u);

    // ...and a later write through the alias faults, breaking the
    // other read mapping, then sees consistent data throughout.
    cpu.store(vaOfColour(2), 22);
    EXPECT_EQ(cpu.load(vaOfColour(1)), 22u);
}

TEST_F(ClassicPmapTest, AlignedAliasesCoexist)
{
    map(vaOfColour(3), 7);
    cpu.store(vaOfColour(3), 5);
    map(vaOfColour(3, 1), 7);
    EXPECT_EQ(stat("pmap.d_flush.alias"), 0u);
    EXPECT_EQ(cpu.load(vaOfColour(3, 1)), 5u);
}

TEST_F(ClassicPmapTest, PingPongCostsAFlushPerSwitch)
{
    map(vaOfColour(1), 7);
    map(vaOfColour(2), 7);
    for (std::uint32_t i = 0; i < 10; ++i) {
        VirtAddr w = i % 2 ? vaOfColour(2) : vaOfColour(1);
        VirtAddr r = i % 2 ? vaOfColour(1) : vaOfColour(2);
        cpu.store(w, i);
        EXPECT_EQ(cpu.load(r), i);
    }
    EXPECT_GE(stat("pmap.d_flush.alias"), 10u);
}

TEST_F(ClassicPmapTest, DmaReadFlushesOnlyModifiedMappings)
{
    map(vaOfColour(1), 7);
    cpu.load(vaOfColour(1));
    pmap.dmaRead(7, true);
    EXPECT_EQ(stat("pmap.d_flush.dma_read"), 0u);  // clean: skip

    cpu.store(vaOfColour(1), 3);
    pmap.dmaRead(7, true);
    EXPECT_EQ(stat("pmap.d_flush.dma_read"), 1u);
    EXPECT_EQ(machine.memory().readWord(machine.frameAddr(7)), 3u);
}

TEST_F(ClassicPmapTest, DmaWritePurgesThroughMappings)
{
    map(vaOfColour(1), 7);
    cpu.load(vaOfColour(1));
    pmap.dmaWrite(7);
    EXPECT_EQ(stat("pmap.d_purge.dma_write"), 1u);
    machine.memory().writeWord(machine.frameAddr(7), 0x99);
    EXPECT_EQ(cpu.load(vaOfColour(1)), 0x99u);  // no shadowing
}

TEST_F(ClassicPmapTest, ExecutableUnmapAlsoPurgesICache)
{
    map(vaOfColour(1), 7, AccessType::IFetch);
    cpu.ifetch(vaOfColour(1));
    pmap.remove(SpaceVa(1, vaOfColour(1)));
    EXPECT_EQ(stat("pmap.i_purge.unmap"), 1u);
}

TEST_F(ClassicPmapTest, UnmapOfCleanAlignedSiblingMustNotLoseDirtyData)
{
    // Regression test for a bug the fuzzer found: two ALIGNED mappings
    // share the cache page; the data is written (and its modified bit
    // set) through one of them. Unmapping the OTHER (clean) sibling
    // used to purge the shared cache page, destroying the dirty data.
    map(vaOfColour(2), 7);           // writable mapping A
    cpu.store(vaOfColour(2), 4242);  // dirty via A
    map(vaOfColour(2, 1), 7);        // aligned sibling B (clean PTE)

    pmap.remove(SpaceVa(1, vaOfColour(2, 1)));  // unmap B
    // B's removal must FLUSH (the colour is dirty via A), not purge.
    EXPECT_EQ(stat("pmap.d_flush.unmap"), 1u);
    EXPECT_EQ(stat("pmap.d_purge.unmap"), 0u);
    EXPECT_EQ(cpu.load(vaOfColour(2)), 4242u);
}

TEST_F(ClassicPmapTest, BreakOfCleanAlignedSiblingMustNotLoseDirtyData)
{
    // Same hazard through the alias-breaking path: an unaligned write
    // breaks both aligned siblings; whichever is broken first must
    // flush the shared dirty cache page.
    map(vaOfColour(2), 7);
    cpu.store(vaOfColour(2), 515);
    map(vaOfColour(2, 1), 7);  // aligned sibling

    map(vaOfColour(5), 7, AccessType::Store);  // unaligned write-enter
    cpu.store(vaOfColour(5), 616);
    EXPECT_EQ(cpu.load(vaOfColour(5)), 616u);
    // The 515 write must have reached memory through a flush before
    // colour 5's fill — never been purged away.
    // (Re-entering colour 2 reads whatever the memory system holds;
    // 616 is the newest value at word 0.)
    EXPECT_EQ(cpu.load(vaOfColour(2)), 616u);
}

// ---------------------------------------------------------------------
// Tut: lazy unmap with per-virtual-address (equal-only) residue.
// ---------------------------------------------------------------------

class TutPmapTest : public ClassicPmapTest
{
  protected:
    TutPmapTest() : ClassicPmapTest(PolicyConfig::tut()) {}
};

TEST_F(TutPmapTest, UnmapIsLazy)
{
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 5);
    pmap.remove(SpaceVa(1, vaOfColour(1)));
    EXPECT_EQ(stat("pmap.d_page_flushes"), 0u);  // deferred
}

TEST_F(TutPmapTest, EqualAddressReuseIsFree)
{
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 5);
    pmap.remove(SpaceVa(1, vaOfColour(1)));

    map(vaOfColour(1), 7);  // same address again
    EXPECT_EQ(stat("pmap.d_page_flushes"), 0u);
    EXPECT_EQ(stat("pmap.d_page_purges"), 0u);
    EXPECT_EQ(cpu.load(vaOfColour(1)), 5u);
}

TEST_F(TutPmapTest, AlignedButUnequalReuseStillCleans)
{
    // Tut keeps state per virtual address, so even an ALIGNED remap
    // pays (unlike the CMU cache-page scheme) — the Table 5 contrast.
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 5);
    pmap.remove(SpaceVa(1, vaOfColour(1)));

    map(vaOfColour(1, 1), 7);  // aligned, different address
    EXPECT_EQ(stat("pmap.d_flush.newmap"), 1u);
    // No purge of the new cache page: the residue was the only place
    // the frame's lines survived, so the purge Tut historically paid
    // here is provably redundant (necessity analyzer).
    EXPECT_EQ(stat("pmap.d_page_purges"), 0u);
    EXPECT_EQ(cpu.load(vaOfColour(1, 1)), 5u);
}

TEST_F(TutPmapTest, UnalignedReuseFlushesOldAndPurgesNew)
{
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 5);
    pmap.remove(SpaceVa(1, vaOfColour(1)));

    map(vaOfColour(2), 7);
    EXPECT_EQ(stat("pmap.d_flush.newmap"), 1u);
    // The old colour is flushed; purging the new colour is provably
    // redundant (necessity analyzer), so nothing else is paid.
    EXPECT_EQ(stat("pmap.d_page_purges"), 0u);
    EXPECT_EQ(cpu.load(vaOfColour(2)), 5u);
}

TEST_F(TutPmapTest, DmaReadFlushesDirtyResidue)
{
    map(vaOfColour(1), 7);
    cpu.store(vaOfColour(1), 9);
    pmap.remove(SpaceVa(1, vaOfColour(1)));

    pmap.dmaRead(7, true);
    EXPECT_EQ(stat("pmap.d_flush.dma_read"), 1u);
    EXPECT_EQ(machine.memory().readWord(machine.frameAddr(7)), 9u);
}

TEST_F(TutPmapTest, PreferredColourComesFromResidue)
{
    map(vaOfColour(5), 7);
    cpu.store(vaOfColour(5), 1);
    pmap.remove(SpaceVa(1, vaOfColour(5)));
    EXPECT_EQ(pmap.preferredColour(7), std::optional<CachePageId>(5));
}

// ---------------------------------------------------------------------
// Sun: aliases effectively uncacheable (break even aligned ones).
// ---------------------------------------------------------------------

class SunPmapTest : public ClassicPmapTest
{
  protected:
    SunPmapTest() : ClassicPmapTest(PolicyConfig::sun()) {}
};

TEST_F(SunPmapTest, EvenAlignedAliasesAreBroken)
{
    map(vaOfColour(3), 7);
    cpu.store(vaOfColour(3), 5);
    map(vaOfColour(3, 1), 7);  // aligned alias — still broken
    EXPECT_EQ(stat("pmap.d_flush.alias"), 1u);
    EXPECT_EQ(cpu.load(vaOfColour(3, 1)), 5u);
}

// ---------------------------------------------------------------------
// Broken: the deliberately unsound testing policy.
// ---------------------------------------------------------------------

class BrokenPmapTest : public ClassicPmapTest
{
  protected:
    BrokenPmapTest() : ClassicPmapTest(PolicyConfig::broken()) {}
};

TEST_F(BrokenPmapTest, AliasWriteProducesStaleRead)
{
    // The whole point of the broken policy: the machine really does
    // return stale data when nobody manages the cache.
    map(vaOfColour(1), 7);
    map(vaOfColour(2), 7);
    cpu.store(vaOfColour(1), 123);
    EXPECT_NE(cpu.load(vaOfColour(2)), 123u);  // stale!
    EXPECT_EQ(stat("pmap.d_page_flushes"), 0u);
    EXPECT_EQ(stat("pmap.d_page_purges"), 0u);
}

} // anonymous namespace
} // namespace vic
