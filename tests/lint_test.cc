/**
 * @file
 * The static analyzer, tested three ways:
 *
 *  - FIXTURES: each pass runs over a seeded mini-tree under
 *    tests/lint_fixtures/ and must catch its planted violation with
 *    the right rule id at the right line — including the re-seeded
 *    Dirty+DmaRead -> {Present, Flush} bug that Table 2 actually
 *    shipped with once;
 *  - CLEAN TREE: the real repo (VIC_LINT_SOURCE_ROOT) must produce
 *    zero diagnostics, and every inline suppression must be both
 *    documented and in use;
 *  - CONFORMANCE: the executable MESI spec tables the lint pass
 *    parses (cache/mesi_spec) must match what a real multi-CPU
 *    machine's caches and CoherenceBus do, transition by transition
 *    — the same tables, checked against the hardware model from
 *    above and against the source text from below.
 */

#include <algorithm>
#include <stdexcept>

#include <gtest/gtest.h>

#include "analysis/linter.hh"
#include "analysis/sarif.hh"

#include "cache/mesi_spec.hh"
#include "machine/cpu.hh"
#include "machine/machine.hh"

namespace vic::analysis
{
namespace
{

std::string
fixtureRoot(const char *name)
{
    return std::string(VIC_LINT_FIXTURE_ROOT) + "/" + name;
}

/** True when the report holds a diagnostic with @p rule in @p file
 *  at @p line (0 = any line). */
bool
hasDiag(const LintReport &r, const std::string &rule,
        const std::string &file, std::uint32_t line = 0)
{
    for (const Diagnostic &d : r.diagnostics) {
        if (d.rule == rule && d.file == file &&
            (line == 0 || d.line == line))
            return true;
    }
    return false;
}

std::size_t
countRule(const LintReport &r, const std::string &rule)
{
    std::size_t n = 0;
    for (const Diagnostic &d : r.diagnostics)
        n += d.rule == rule ? 1 : 0;
    return n;
}

// ---------------------------------------------------------------------
// Fixtures: one planted violation per pass
// ---------------------------------------------------------------------

TEST(LintFixtures, DeterminismCatchesEveryRule)
{
    const LintReport r =
        runLint(fixtureRoot("determinism"), {"determinism"});
    const std::string f = "src/mc/bad_clock.cc";
    EXPECT_TRUE(hasDiag(r, "det-wallclock", f, 15));  // system_clock
    EXPECT_TRUE(hasDiag(r, "det-wallclock", f, 17));  // C time()
    EXPECT_TRUE(hasDiag(r, "det-entropy", f, 23));    // random_device
    EXPECT_TRUE(hasDiag(r, "det-entropy", f, 24));    // rand()
    EXPECT_TRUE(hasDiag(r, "det-std-random", f, 30)); // mt19937
    EXPECT_TRUE(hasDiag(r, "det-std-random", f, 31)); // distribution
    EXPECT_TRUE(hasDiag(r, "det-unordered", f, 35));  // unordered_map

    // Token-awareness: the comment on line 9 and the string literal
    // on line 10 mention banned names and must NOT be flagged.
    for (const Diagnostic &d : r.diagnostics) {
        EXPECT_NE(d.line, 9u) << d.render();
        EXPECT_NE(d.line, 10u) << d.render();
    }
    EXPECT_EQ(r.diagnostics.size(), 7u);
}

TEST(LintFixtures, DrainCatchesLeakedTransferOnly)
{
    const LintReport r = runLint(fixtureRoot("drain"), {"drain"});
    const std::string f = "src/os/bad_drain.cc";
    // flushLeaky's startWrite (line 16) escapes via the early return.
    EXPECT_TRUE(hasDiag(r, "drain-unpaired", f, 16));
    // flushPaired and fillStepped drain on every path: exactly the
    // one diagnostic.
    EXPECT_EQ(countRule(r, "drain-unpaired"), 1u);
}

TEST(LintFixtures, DrainCrossesCallsAndLambdas)
{
    const LintReport r =
        runLint(fixtureRoot("interdrain"), {"drain"});
    const std::string f = "src/os/through.cc";
    // The per-file pass exempted "*Async" names and never looked at
    // callers; both findings below prove the old blind spots.
    // flushThroughHelper inherits beginFlushAsync's summarised leak
    // at the call site (line 22)...
    EXPECT_TRUE(hasDiag(r, "drain-unpaired", f, 22));
    // ...and the start inside the deferred lambda (line 36) is an
    // anonymous island nobody else can drain.
    EXPECT_TRUE(hasDiag(r, "drain-unpaired", f, 36));
    // beginFlushAsync itself leaks BY CONTRACT (it has callers), so
    // its own `return dma.startWrite(...)` stays silent, and
    // flushAndDrain pairs the helper call with drainAll.
    EXPECT_EQ(countRule(r, "drain-unpaired"), 2u);
}

TEST(LintFixtures, AddrKindMixedAndRewrap)
{
    const LintReport r =
        runLint(fixtureRoot("addrkind"), {"addr-kind"});
    const std::string f = "src/cache/mix.cc";
    // pickBits's raw parameter sees va-bits (via probeVirt) and
    // pa-bits (via probePhys): one washed-out channel.
    EXPECT_TRUE(hasDiag(r, "addr-kind-mixed", f, 16));
    // launder re-wraps untranslated virtual bits as PhysAddr.
    EXPECT_TRUE(hasDiag(r, "addr-kind-rewrap", f, 36));
    // translate composes with a frame base (real arithmetic) and
    // must stay silent: exactly the two diagnostics.
    EXPECT_EQ(r.diagnostics.size(), 2u);
}

TEST(LintFixtures, CounterLivenessDeadAndOrphan)
{
    const LintReport r =
        runLint(fixtureRoot("liveness"), {"counter-liveness"});
    const std::string f = "src/machine/machine.cc";
    // statGhost is registered on the construction path but never
    // bumped (line 21 is its registration).
    EXPECT_TRUE(hasDiag(r, "counter-live-dead", f, 21));
    // statOrphan is bumped (line 28) but bound to no registration.
    EXPECT_TRUE(hasDiag(r, "counter-live-unregistered", f, 28));
    // statHits is registered AND bumped: exactly the two findings.
    EXPECT_EQ(r.diagnostics.size(), 2u);
}

TEST(LintFixtures, SpecCatchesTheDirtyDmaReadBugClass)
{
    const LintReport r = runLint(fixtureRoot("spec"), {"spec"});
    const std::string f = "src/core/cache_page_state.cc";

    // The seeded {Present, Flush} entry (line 44) is inconsistent
    // with flush-then-DmaRead composition AND differs from both the
    // compiled table and the abstract SpecExecutor.
    EXPECT_TRUE(hasDiag(r, "spec-compose", f, 44));
    EXPECT_TRUE(hasDiag(r, "spec-mismatch", f, 44));
    // otherTransition delegates to targetTransition for DMA, so the
    // same bug surfaces through the delegation (line 92).
    EXPECT_TRUE(hasDiag(r, "spec-compose", f, 92));
    EXPECT_TRUE(hasDiag(r, "spec-mismatch", f, 92));

    // The deleted (Stale, CpuWrite) row is a coverage hole.
    bool coverage_hole = false;
    for (const Diagnostic &d : r.diagnostics) {
        coverage_hole |=
            d.rule == "spec-coverage" &&
            d.message.find("(Stale, CpuWrite)") != std::string::npos;
    }
    EXPECT_TRUE(coverage_hole);
}

TEST(LintFixtures, CounterCatchesNameDuplicateAndEagerBus)
{
    const LintReport r = runLint(fixtureRoot("counter"), {"counter"});
    const std::string f = "src/os/bad_counter.cc";
    EXPECT_TRUE(hasDiag(r, "counter-name", f, 13));
    EXPECT_TRUE(hasDiag(r, "counter-duplicate", f, 14));
    EXPECT_TRUE(hasDiag(r, "counter-bus-eager", f, 15));
    EXPECT_EQ(r.diagnostics.size(), 3u);
}

TEST(LintFixtures, LayeringCatchesUpwardInclude)
{
    const LintReport r =
        runLint(fixtureRoot("layering"), {"layering"});
    EXPECT_TRUE(
        hasDiag(r, "layer-cycle", "src/cache/bad_layer.cc", 5));
    // The legal downward include on line 4 must not be flagged.
    EXPECT_EQ(countRule(r, "layer-cycle"), 1u);
}

TEST(LintFixtures, SuppressionHygiene)
{
    const LintReport r =
        runLint(fixtureRoot("suppression"), {"determinism"});
    const std::string f = "src/mc/sup.cc";

    // The documented allow() on line 9 silences line 10's
    // det-unordered and is marked used.
    EXPECT_FALSE(hasDiag(r, "det-unordered", f, 10));
    bool found_used = false;
    for (const Suppression &s : r.suppressions)
        found_used |= s.file == f && s.commentLine == 9 && s.used;
    EXPECT_TRUE(found_used);

    // The reason-less allow() on line 12 is itself a diagnostic and
    // suppresses nothing: line 13 still fires.
    EXPECT_TRUE(hasDiag(r, "suppress-undocumented", f, 12));
    EXPECT_TRUE(hasDiag(r, "det-unordered", f, 13));

    // The allow() on line 15 matches no diagnostic.
    EXPECT_TRUE(hasDiag(r, "suppress-unused", f, 15));
}

// ---------------------------------------------------------------------
// The real tree: clean, with a fully documented suppression inventory
// ---------------------------------------------------------------------

TEST(LintCleanTree, ZeroDiagnosticsAllPasses)
{
    const LintReport r = runLint(VIC_LINT_SOURCE_ROOT, {});
    ASSERT_GT(r.filesScanned, 100u);  // sanity: found the real tree
    EXPECT_EQ(r.passesRun.size(), 7u);
    for (const Diagnostic &d : r.diagnostics)
        ADD_FAILURE() << d.render();
    // Every inline suppression carries a reason and silences a real
    // diagnostic (unused/undocumented ones would be diagnostics).
    for (const Suppression &s : r.suppressions) {
        EXPECT_TRUE(s.used) << s.file << ":" << s.commentLine;
        EXPECT_FALSE(s.reason.empty())
            << s.file << ":" << s.commentLine;
    }
    // The interprocedural passes did real whole-program work.
    bool saw_fixpoint = false;
    for (const PassRunStats &p : r.passStats) {
        if (p.pass == "drain" || p.pass == "addr-kind" ||
            p.pass == "counter-liveness") {
            EXPECT_GT(p.stats.functionsAnalyzed, 100u) << p.pass;
            EXPECT_GT(p.stats.fixpointIterations, 0u) << p.pass;
            saw_fixpoint = true;
        }
    }
    EXPECT_TRUE(saw_fixpoint);
}

TEST(LintCleanTree, JsonReportShape)
{
    const LintReport r =
        runLint(VIC_LINT_SOURCE_ROOT, {"layering"});
    const JsonValue doc = r.toJson();
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->asString(), "vic-lint-report-v2");
    EXPECT_TRUE(doc.find("clean")->asBool());
    EXPECT_EQ(doc.find("files_scanned")->asU64(), r.filesScanned);
    EXPECT_EQ(doc.find("diagnostics")->items().size(), 0u);
    // v2: one pass_stats entry per pass run.
    ASSERT_NE(doc.find("pass_stats"), nullptr);
    EXPECT_EQ(doc.find("pass_stats")->items().size(), 1u);
    EXPECT_EQ(doc.find("pass_stats")
                  ->items()[0]
                  .find("pass")
                  ->asString(),
              "layering");
    // Determinism: serialising twice is byte-identical.
    EXPECT_EQ(doc.dump(2), r.toJson().dump(2));
}

TEST(LintCleanTree, ByteIdenticalAcrossRuns)
{
    // The acceptance bar for every vic artifact: two independent
    // runs over the same tree serialise byte-identically — JSON and
    // SARIF both.
    const LintReport a = runLint(VIC_LINT_SOURCE_ROOT, {});
    const LintReport b = runLint(VIC_LINT_SOURCE_ROOT, {});
    EXPECT_EQ(a.toJson().dump(2), b.toJson().dump(2));
    EXPECT_EQ(sarifReport(a).dump(2), sarifReport(b).dump(2));
}

// ---------------------------------------------------------------------
// Report round-trips: v2 writer, v1-compatible reader, SARIF shape
// ---------------------------------------------------------------------

TEST(LintReportFormats, V2RoundTripAndV1Reader)
{
    const LintReport r =
        runLint(fixtureRoot("addrkind"), {"addr-kind"});
    ASSERT_EQ(r.diagnostics.size(), 2u);

    // v2 round trip through serialise -> parse -> fromJson.
    const JsonValue doc =
        JsonValue::parse(r.toJson().dump(2));
    const LintReport back = LintReport::fromJson(doc);
    ASSERT_EQ(back.diagnostics.size(), r.diagnostics.size());
    EXPECT_EQ(back.diagnostics[0].rule, r.diagnostics[0].rule);
    EXPECT_EQ(back.diagnostics[0].file, r.diagnostics[0].file);
    EXPECT_EQ(back.diagnostics[0].line, r.diagnostics[0].line);
    EXPECT_EQ(back.filesScanned, r.filesScanned);
    EXPECT_EQ(back.passesRun, r.passesRun);
    ASSERT_EQ(back.passStats.size(), 1u);
    EXPECT_EQ(back.passStats[0].pass, "addr-kind");
    EXPECT_EQ(back.passStats[0].stats.functionsAnalyzed,
              r.passStats[0].stats.functionsAnalyzed);

    // A v1 document (no pass_stats) still reads: archived PR 8
    // artifacts stay diffable.
    JsonValue v1 = JsonValue::parse(r.toJson().dump(2));
    v1.set("schema", JsonValue::str("vic-lint-report-v1"));
    JsonValue stripped = JsonValue::object();
    for (auto &kv : v1.members()) {
        if (kv.first != "pass_stats")
            stripped.set(kv.first, std::move(kv.second));
    }
    const LintReport old = LintReport::fromJson(stripped);
    EXPECT_EQ(old.diagnostics.size(), r.diagnostics.size());
    EXPECT_TRUE(old.passStats.empty());

    // Unknown schemas are rejected, not misread.
    JsonValue bogus = JsonValue::object();
    bogus.set("schema", JsonValue::str("vic-lint-report-v99"));
    EXPECT_THROW(LintReport::fromJson(bogus), std::runtime_error);
}

TEST(LintReportFormats, SarifShape)
{
    const LintReport r =
        runLint(fixtureRoot("addrkind"), {"addr-kind"});
    const JsonValue doc = sarifReport(r);

    EXPECT_EQ(doc.find("version")->asString(), "2.1.0");
    ASSERT_NE(doc.find("runs"), nullptr);
    ASSERT_EQ(doc.find("runs")->items().size(), 1u);
    const JsonValue &run = doc.find("runs")->items()[0];

    const JsonValue &driver =
        *run.find("tool")->find("driver");
    EXPECT_EQ(driver.find("name")->asString(), "vic_lint");
    // Rules are sorted by id and cover the pass's families plus the
    // suppression-hygiene pair.
    const auto &rules = driver.find("rules")->items();
    ASSERT_GE(rules.size(), 4u);
    std::vector<std::string> ids;
    for (const JsonValue &rule : rules)
        ids.push_back(rule.find("id")->asString());
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    EXPECT_NE(std::find(ids.begin(), ids.end(), "addr-kind-mixed"),
              ids.end());

    // One result per diagnostic, each with a physical location
    // under the SRCROOT base.
    const auto &results = run.find("results")->items();
    ASSERT_EQ(results.size(), r.diagnostics.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const JsonValue &res = results[i];
        EXPECT_EQ(res.find("ruleId")->asString(),
                  r.diagnostics[i].rule);
        EXPECT_EQ(res.find("level")->asString(), "warning");
        const JsonValue &phys =
            *res.find("locations")->items()[0].find(
                "physicalLocation");
        EXPECT_EQ(phys.find("artifactLocation")
                      ->find("uri")
                      ->asString(),
                  r.diagnostics[i].file);
        EXPECT_EQ(phys.find("artifactLocation")
                      ->find("uriBaseId")
                      ->asString(),
                  "SRCROOT");
        EXPECT_EQ(phys.find("region")->find("startLine")->asU64(),
                  r.diagnostics[i].line);
    }
}

// ---------------------------------------------------------------------
// MESI conformance: spec tables vs the real hardware model
// ---------------------------------------------------------------------

struct MesiRig
{
    MesiRig() : machine(params()), cpu0(machine, 0),
                cpu1(machine, 1), cpu2(machine, 2)
    {
        machine.pageTable().enter(SpaceVa(1, VirtAddr(0x4000)), 2,
                                  Protection::all());
        cpu0.setSpace(1);
        cpu1.setSpace(1);
        cpu2.setSpace(1);
    }

    static MachineParams params()
    {
        MachineParams p = MachineParams::hp720();
        p.numCpus = 3;
        return p;
    }

    MesiState state(std::uint32_t cpu)
    {
        return machine
            .dcache(cpu)
            .probe(VirtAddr(0x4000), machine.frameAddr(2))
            .state;
    }

    std::uint64_t stat(const char *name)
    {
        return machine.stats().value(name);
    }

    /** Drive cpu0's line into @p s; @p peer_holds makes cpu1 keep a
     *  copy. Returns false for combinations the protocol itself
     *  cannot construct (Exclusive/Modified with a peer copy). */
    bool setup(MesiState s, bool peer_holds)
    {
        switch (s) {
          case MesiState::Invalid:
            if (peer_holds)
                cpu1.load(VirtAddr(0x4000));
            return true;
          case MesiState::Shared:
            if (!peer_holds)
                return false;
            cpu0.load(VirtAddr(0x4000));
            cpu1.load(VirtAddr(0x4000));
            return true;
          case MesiState::Exclusive:
            if (peer_holds)
                return false;
            cpu0.load(VirtAddr(0x4000));
            return true;
          case MesiState::Modified:
            if (peer_holds)
                return false;
            cpu0.store(VirtAddr(0x4000), 7);
            return true;
        }
        return false;
    }

    Machine machine;
    Cpu cpu0;
    Cpu cpu1;
    Cpu cpu2;
};

TEST(MesiConformance, LocalTableMatchesHardware)
{
    for (MesiState s : allMesiStates) {
        for (MesiLocalEvent e : allMesiLocalEvents) {
            for (bool peer : {false, true}) {
                MesiRig rig;
                if (!rig.setup(s, peer))
                    continue;
                ASSERT_EQ(rig.state(0), s);

                const std::uint64_t reads = rig.stat("bus.reads");
                const std::uint64_t rdx =
                    rig.stat("bus.read_exclusives");
                const std::uint64_t upg = rig.stat("bus.upgrades");

                if (e == MesiLocalEvent::Read)
                    rig.cpu0.load(VirtAddr(0x4000));
                else
                    rig.cpu0.store(VirtAddr(0x4000), 9);

                const MesiLocalTransition t =
                    mesiLocalTransition(s, e);
                EXPECT_EQ(rig.state(0),
                          peer ? t.nextIfPeerHolds : t.next)
                    << mesiStateName(s) << " + "
                    << mesiLocalEventName(e)
                    << (peer ? " (peer copy)" : "");

                // The bus transaction column, via the lazy bus.*
                // counters the counter pass keeps honest.
                const std::uint64_t d_reads =
                    rig.stat("bus.reads") - reads;
                const std::uint64_t d_rdx =
                    rig.stat("bus.read_exclusives") - rdx;
                const std::uint64_t d_upg =
                    rig.stat("bus.upgrades") - upg;
                EXPECT_EQ(d_reads,
                          t.bus == MesiBusOp::BusRead ? 1u : 0u);
                EXPECT_EQ(d_rdx,
                          t.bus == MesiBusOp::BusReadExclusive ? 1u
                                                               : 0u);
                EXPECT_EQ(d_upg,
                          t.bus == MesiBusOp::BusUpgrade ? 1u : 0u);
            }
        }
    }
}

TEST(MesiConformance, SnoopTableMatchesHardware)
{
    for (MesiState s : allMesiStates) {
        for (MesiSnoopEvent e : allMesiSnoopEvents) {
            MesiRig rig;
            // cpu0 holds @p s; Shared needs cpu1 as the co-holder,
            // so cpu2 plays the requester in every scenario.
            if (!rig.setup(s, s == MesiState::Shared))
                continue;
            ASSERT_EQ(rig.state(0), s);

            const std::uint64_t iv = rig.stat("bus.interventions");
            if (e == MesiSnoopEvent::BusRead)
                rig.cpu2.load(VirtAddr(0x4000));
            else
                rig.cpu2.store(VirtAddr(0x4000), 11);

            const MesiSnoopTransition t = mesiSnoopTransition(s, e);
            EXPECT_EQ(rig.state(0), t.next)
                << mesiStateName(s) << " + " << mesiSnoopEventName(e);
            // A write-back surfaces as a bus intervention.
            EXPECT_EQ(rig.stat("bus.interventions") - iv,
                      t.writeBack ? 1u : 0u)
                << mesiStateName(s) << " + " << mesiSnoopEventName(e);
        }
    }
}

} // anonymous namespace
} // namespace vic::analysis
