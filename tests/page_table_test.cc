/** @file Unit tests for the page table. */

#include <gtest/gtest.h>

#include "mmu/fault.hh"
#include "mmu/page_table.hh"

namespace vic
{
namespace
{

TEST(PageTableTest, EnterLookupRoundTrip)
{
    PageTable pt(4096);
    pt.enter(SpaceVa(3, VirtAddr(0x5000)), 9, Protection::readWrite());

    const PageTableEntry *pte = pt.lookup(SpaceVa(3, VirtAddr(0x5abc)));
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->frame, 9u);
    EXPECT_TRUE(pte->prot.write);
    EXPECT_FALSE(pte->referenced);
    EXPECT_FALSE(pte->modified);
}

TEST(PageTableTest, KeysAreCanonicalisedToPageBase)
{
    PageTable pt(4096);
    pt.enter(SpaceVa(1, VirtAddr(0x5abc)), 2, Protection::readOnly());
    EXPECT_NE(pt.lookup(SpaceVa(1, VirtAddr(0x5000))), nullptr);
    EXPECT_EQ(pt.lookup(SpaceVa(1, VirtAddr(0x6000))), nullptr);
}

TEST(PageTableTest, RemoveReturnsModifiedBit)
{
    PageTable pt(4096);
    pt.enter(SpaceVa(1, VirtAddr(0x1000)), 2, Protection::readWrite());
    pt.lookupMutable(SpaceVa(1, VirtAddr(0x1000)))->modified = true;
    EXPECT_TRUE(pt.remove(SpaceVa(1, VirtAddr(0x1000))));
    EXPECT_EQ(pt.lookup(SpaceVa(1, VirtAddr(0x1000))), nullptr);
    // Removing again is a no-op returning false.
    EXPECT_FALSE(pt.remove(SpaceVa(1, VirtAddr(0x1000))));
}

TEST(PageTableTest, SetProtectionPreservesBits)
{
    PageTable pt(4096);
    pt.enter(SpaceVa(1, VirtAddr(0x1000)), 2, Protection::readWrite());
    pt.lookupMutable(SpaceVa(1, VirtAddr(0x1000)))->modified = true;
    pt.setProtection(SpaceVa(1, VirtAddr(0x1000)), Protection::none());
    const PageTableEntry *pte = pt.lookup(SpaceVa(1, VirtAddr(0x1000)));
    EXPECT_TRUE(pte->prot.isNone());
    EXPECT_TRUE(pte->modified);
}

TEST(PageTableTest, ClearModified)
{
    PageTable pt(4096);
    pt.enter(SpaceVa(1, VirtAddr(0x1000)), 2, Protection::readWrite());
    EXPECT_FALSE(pt.clearModified(SpaceVa(1, VirtAddr(0x1000))));
    pt.lookupMutable(SpaceVa(1, VirtAddr(0x1000)))->modified = true;
    EXPECT_TRUE(pt.clearModified(SpaceVa(1, VirtAddr(0x1000))));
    EXPECT_FALSE(pt.lookup(SpaceVa(1, VirtAddr(0x1000)))->modified);
    // Unmapped pages report false.
    EXPECT_FALSE(pt.clearModified(SpaceVa(1, VirtAddr(0x9000))));
}

TEST(PageTableTest, ReplacingEntryResetsBits)
{
    PageTable pt(4096);
    pt.enter(SpaceVa(1, VirtAddr(0x1000)), 2, Protection::readWrite());
    pt.lookupMutable(SpaceVa(1, VirtAddr(0x1000)))->modified = true;
    pt.enter(SpaceVa(1, VirtAddr(0x1000)), 5, Protection::readOnly());
    const PageTableEntry *pte = pt.lookup(SpaceVa(1, VirtAddr(0x1000)));
    EXPECT_EQ(pte->frame, 5u);
    EXPECT_FALSE(pte->modified);
}

TEST(PageTableTest, SizeTracksEntries)
{
    PageTable pt(4096);
    EXPECT_EQ(pt.size(), 0u);
    pt.enter(SpaceVa(1, VirtAddr(0x1000)), 1, Protection::readOnly());
    pt.enter(SpaceVa(2, VirtAddr(0x1000)), 2, Protection::readOnly());
    EXPECT_EQ(pt.size(), 2u);
    pt.remove(SpaceVa(1, VirtAddr(0x1000)));
    EXPECT_EQ(pt.size(), 1u);
}

TEST(FaultTest, ProtPermits)
{
    EXPECT_TRUE(protPermits(Protection::readOnly(), AccessType::Load));
    EXPECT_FALSE(protPermits(Protection::readOnly(), AccessType::Store));
    EXPECT_FALSE(protPermits(Protection::readOnly(),
                             AccessType::IFetch));
    EXPECT_TRUE(protPermits(Protection::readExecute(),
                            AccessType::IFetch));
    EXPECT_TRUE(protPermits(Protection::readWrite(), AccessType::Store));
}

TEST(FaultTest, AccessTypeHelpers)
{
    EXPECT_TRUE(isWrite(AccessType::Store));
    EXPECT_FALSE(isWrite(AccessType::Load));
    EXPECT_EQ(cacheKindOf(AccessType::IFetch), CacheKind::Instruction);
    EXPECT_EQ(cacheKindOf(AccessType::Load), CacheKind::Data);
    EXPECT_EQ(cacheKindOf(AccessType::Store), CacheKind::Data);
}

} // anonymous namespace
} // namespace vic
