/** @file Unit tests for the DMA engine and disk device. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/cycle_clock.hh"
#include "common/stats.hh"
#include "dma/disk.hh"
#include "dma/dma_engine.hh"
#include "mem/physical_memory.hh"

namespace vic
{
namespace
{

class DmaTest : public ::testing::Test
{
  protected:
    DmaTest()
        : mem(16, 4096), dma(DmaCosts{}, mem, clk, stats),
          disk(4096, 1000, dma, clk, stats)
    {
    }

    PhysicalMemory mem;
    CycleClock clk;
    StatSet stats;
    DmaEngine dma;
    Disk disk;
};

TEST_F(DmaTest, DeviceWriteLandsInMemory)
{
    std::uint32_t data[4] = {1, 2, 3, 4};
    dma.deviceWrite(PhysAddr(0x1000), data, 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(mem.readWord(PhysAddr(0x1000 + 4 * i)), data[i]);
}

TEST_F(DmaTest, DeviceReadSeesMemoryNotCache)
{
    // Non-snooping DMA reads physical memory even when the cache
    // holds newer data: the OS must flush first.
    CacheGeometry geo(64 * 1024, 32, 4096, 1, Indexing::Virtual);
    Cache cache("d", geo, CacheCosts{}, WritePolicy::WriteBack, mem,
                clk, stats);
    cache.write(VirtAddr(0x1000), PhysAddr(0x1000), 99);

    std::uint32_t out[1] = {~0u};
    dma.deviceRead(PhysAddr(0x1000), out, 1);
    EXPECT_EQ(out[0], 0u);  // stale memory: the paper's DMA-read hazard
}

TEST_F(DmaTest, SnoopingReadDrainsDirtyLines)
{
    CacheGeometry geo(64 * 1024, 32, 4096, 1, Indexing::Virtual);
    Cache cache("d", geo, CacheCosts{}, WritePolicy::WriteBack, mem,
                clk, stats);
    dma.attachSnoopedCache(&cache);
    EXPECT_TRUE(dma.snooping());

    cache.write(VirtAddr(0x1000), PhysAddr(0x1000), 99);
    std::uint32_t out[1] = {0};
    dma.deviceRead(PhysAddr(0x1000), out, 1);
    EXPECT_EQ(out[0], 99u);  // coherent DMA (Section 3.3 variant)
}

TEST_F(DmaTest, SnoopingWriteInvalidatesCachedCopies)
{
    CacheGeometry geo(64 * 1024, 32, 4096, 1, Indexing::Virtual);
    Cache cache("d", geo, CacheCosts{}, WritePolicy::WriteBack, mem,
                clk, stats);
    dma.attachSnoopedCache(&cache);

    cache.read(VirtAddr(0x1000), PhysAddr(0x1000));  // cache the line
    std::uint32_t data[1] = {42};
    dma.deviceWrite(PhysAddr(0x1000), data, 1);
    EXPECT_FALSE(cache.probe(VirtAddr(0x1000), PhysAddr(0x1000)).present);
    EXPECT_EQ(cache.read(VirtAddr(0x1000), PhysAddr(0x1000)), 42u);
}

TEST_F(DmaTest, TransfersChargeCycles)
{
    std::uint32_t data[8] = {};
    Cycles before = clk.now();
    dma.deviceWrite(PhysAddr(0), data, 8);
    EXPECT_EQ(clk.now() - before, DmaCosts{}.setup + 8 * DmaCosts{}.perWord);
}

TEST_F(DmaTest, StatsCountTransfers)
{
    std::uint32_t data[2] = {};
    dma.deviceWrite(PhysAddr(0), data, 2);
    dma.deviceRead(PhysAddr(0), data, 2);
    EXPECT_EQ(stats.value("dma.device_writes"), 1u);
    EXPECT_EQ(stats.value("dma.device_reads"), 1u);
    EXPECT_EQ(stats.value("dma.words_moved"), 4u);
}

TEST_F(DmaTest, DiskRoundTrip)
{
    // Put a pattern in frame 2, write it to block 7, zero the frame,
    // read the block back.
    for (std::uint32_t i = 0; i < 1024; ++i)
        mem.writeWord(PhysAddr(2 * 4096 + 4 * i), i * 3);
    disk.writeBlock(7, PhysAddr(2 * 4096));
    for (std::uint32_t i = 0; i < 1024; ++i)
        mem.writeWord(PhysAddr(2 * 4096 + 4 * i), 0);

    disk.readBlock(7, PhysAddr(2 * 4096));
    for (std::uint32_t i = 0; i < 1024; ++i)
        EXPECT_EQ(mem.readWord(PhysAddr(2 * 4096 + 4 * i)), i * 3);
}

TEST_F(DmaTest, DiskUnwrittenBlocksReadAsZero)
{
    mem.writeWord(PhysAddr(0x3000), 123);
    disk.readBlock(99, PhysAddr(0x3000));
    EXPECT_EQ(mem.readWord(PhysAddr(0x3000)), 0u);
}

TEST_F(DmaTest, DiskPeekMatchesStored)
{
    mem.writeWord(PhysAddr(0x1000), 0xabcd);
    disk.writeBlock(3, PhysAddr(0x1000));
    EXPECT_EQ(disk.peekWord(3, 0), 0xabcdu);
    EXPECT_EQ(disk.peekWord(3, 1), 0u);
    EXPECT_EQ(disk.peekWord(42, 0), 0u);  // never written
}

TEST_F(DmaTest, DiskChargesAccessCycles)
{
    Cycles before = clk.now();
    disk.readBlock(0, PhysAddr(0));
    EXPECT_GE(clk.now() - before, 1000u);
}

} // anonymous namespace
} // namespace vic
