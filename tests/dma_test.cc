/** @file Unit tests for the DMA engine and disk device. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/cycle_clock.hh"
#include "common/stats.hh"
#include "dma/disk.hh"
#include "dma/dma_engine.hh"
#include "mem/physical_memory.hh"

namespace vic
{
namespace
{

class DmaTest : public ::testing::Test
{
  protected:
    DmaTest()
        : mem(16, 4096), dma(DmaCosts{}, mem, clk, stats),
          disk(4096, 1000, dma, clk, stats)
    {
    }

    PhysicalMemory mem;
    CycleClock clk;
    StatSet stats;
    DmaEngine dma;
    Disk disk;
};

TEST_F(DmaTest, DeviceWriteLandsInMemory)
{
    std::uint32_t data[4] = {1, 2, 3, 4};
    dma.deviceWrite(PhysAddr(0x1000), data, 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(mem.readWord(PhysAddr(0x1000 + 4 * i)), data[i]);
}

TEST_F(DmaTest, DeviceReadSeesMemoryNotCache)
{
    // Non-snooping DMA reads physical memory even when the cache
    // holds newer data: the OS must flush first.
    CacheGeometry geo(64 * 1024, 32, 4096, 1, Indexing::Virtual);
    Cache cache("d", geo, CacheCosts{}, WritePolicy::WriteBack, mem,
                clk, stats);
    cache.write(VirtAddr(0x1000), PhysAddr(0x1000), 99);

    std::uint32_t out[1] = {~0u};
    dma.deviceRead(PhysAddr(0x1000), out, 1);
    EXPECT_EQ(out[0], 0u);  // stale memory: the paper's DMA-read hazard
}

TEST_F(DmaTest, SnoopingReadDrainsDirtyLines)
{
    CacheGeometry geo(64 * 1024, 32, 4096, 1, Indexing::Virtual);
    Cache cache("d", geo, CacheCosts{}, WritePolicy::WriteBack, mem,
                clk, stats);
    dma.attachSnoopedCache(&cache);
    EXPECT_TRUE(dma.snooping());

    cache.write(VirtAddr(0x1000), PhysAddr(0x1000), 99);
    std::uint32_t out[1] = {0};
    dma.deviceRead(PhysAddr(0x1000), out, 1);
    EXPECT_EQ(out[0], 99u);  // coherent DMA (Section 3.3 variant)
}

TEST_F(DmaTest, SnoopingWriteInvalidatesCachedCopies)
{
    CacheGeometry geo(64 * 1024, 32, 4096, 1, Indexing::Virtual);
    Cache cache("d", geo, CacheCosts{}, WritePolicy::WriteBack, mem,
                clk, stats);
    dma.attachSnoopedCache(&cache);

    cache.read(VirtAddr(0x1000), PhysAddr(0x1000));  // cache the line
    std::uint32_t data[1] = {42};
    dma.deviceWrite(PhysAddr(0x1000), data, 1);
    EXPECT_FALSE(cache.probe(VirtAddr(0x1000), PhysAddr(0x1000)).present);
    EXPECT_EQ(cache.read(VirtAddr(0x1000), PhysAddr(0x1000)), 42u);
}

TEST_F(DmaTest, TransfersChargeCycles)
{
    std::uint32_t data[8] = {};
    Cycles before = clk.now();
    dma.deviceWrite(PhysAddr(0), data, 8);
    EXPECT_EQ(clk.now() - before, DmaCosts{}.setup + 8 * DmaCosts{}.perWord);
}

TEST_F(DmaTest, StatsCountTransfers)
{
    std::uint32_t data[2] = {};
    dma.deviceWrite(PhysAddr(0), data, 2);
    dma.deviceRead(PhysAddr(0), data, 2);
    EXPECT_EQ(stats.value("dma.device_writes"), 1u);
    EXPECT_EQ(stats.value("dma.device_reads"), 1u);
    EXPECT_EQ(stats.value("dma.words_moved"), 4u);
}

TEST_F(DmaTest, DiskRoundTrip)
{
    // Put a pattern in frame 2, write it to block 7, zero the frame,
    // read the block back.
    for (std::uint32_t i = 0; i < 1024; ++i)
        mem.writeWord(PhysAddr(2 * 4096 + 4 * i), i * 3);
    disk.writeBlock(7, PhysAddr(2 * 4096));
    for (std::uint32_t i = 0; i < 1024; ++i)
        mem.writeWord(PhysAddr(2 * 4096 + 4 * i), 0);

    disk.readBlock(7, PhysAddr(2 * 4096));
    for (std::uint32_t i = 0; i < 1024; ++i)
        EXPECT_EQ(mem.readWord(PhysAddr(2 * 4096 + 4 * i)), i * 3);
}

TEST_F(DmaTest, DiskUnwrittenBlocksReadAsZero)
{
    mem.writeWord(PhysAddr(0x3000), 123);
    disk.readBlock(99, PhysAddr(0x3000));
    EXPECT_EQ(mem.readWord(PhysAddr(0x3000)), 0u);
}

TEST_F(DmaTest, DiskPeekMatchesStored)
{
    mem.writeWord(PhysAddr(0x1000), 0xabcd);
    disk.writeBlock(3, PhysAddr(0x1000));
    EXPECT_EQ(disk.peekWord(3, 0), 0xabcdu);
    EXPECT_EQ(disk.peekWord(3, 1), 0u);
    EXPECT_EQ(disk.peekWord(42, 0), 0u);  // never written
}

TEST_F(DmaTest, DiskChargesAccessCycles)
{
    Cycles before = clk.now();
    disk.readBlock(0, PhysAddr(0));
    EXPECT_GE(clk.now() - before, 1000u);
}

// --- line-granular asynchronous stepping ------------------------------

TEST_F(DmaTest, StartWriteIsInvisibleUntilStepped)
{
    std::uint32_t data[16];
    for (int i = 0; i < 16; ++i)
        data[i] = 100u + std::uint32_t(i);

    const DmaTransferId id = dma.startWrite(PhysAddr(0x2000), data, 16);
    EXPECT_TRUE(dma.transferPending(id));
    EXPECT_EQ(dma.pendingTransfers(), 1u);
    // The command is latched but no beat has run: memory untouched.
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(mem.readWord(PhysAddr(0x2000 + 4 * i)), 0u);

    // One beat moves exactly one 32-byte line (8 words).
    EXPECT_TRUE(dma.stepBeat());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(mem.readWord(PhysAddr(0x2000 + 4 * i)), 100u + i);
    for (int i = 8; i < 16; ++i)
        EXPECT_EQ(mem.readWord(PhysAddr(0x2000 + 4 * i)), 0u);
    EXPECT_TRUE(dma.transferPending(id));

    EXPECT_TRUE(dma.stepBeat());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(mem.readWord(PhysAddr(0x2000 + 4 * i)), 100u + i);
    EXPECT_FALSE(dma.transferPending(id));
    EXPECT_EQ(dma.pendingTransfers(), 0u);
    EXPECT_FALSE(dma.stepBeat());
}

TEST_F(DmaTest, BeatsStopAtLineBoundaries)
{
    // A transfer starting mid-line first fills to the line boundary:
    // 0x2010 is word 4 of its 32-byte line, so the beats are 4+8+4.
    std::uint32_t data[16] = {};
    dma.startWrite(PhysAddr(0x2010), data, 16);

    auto beat = dma.nextBeat();
    ASSERT_TRUE(beat.has_value());
    EXPECT_EQ(beat->pa.value, 0x2010u);
    EXPECT_EQ(beat->nwords, 4u);
    EXPECT_TRUE(beat->deviceWrites);

    EXPECT_TRUE(dma.stepBeat());
    beat = dma.nextBeat();
    ASSERT_TRUE(beat.has_value());
    EXPECT_EQ(beat->pa.value, 0x2020u);
    EXPECT_EQ(beat->nwords, 8u);

    EXPECT_TRUE(dma.stepBeat());
    beat = dma.nextBeat();
    ASSERT_TRUE(beat.has_value());
    EXPECT_EQ(beat->pa.value, 0x2040u);
    EXPECT_EQ(beat->nwords, 4u);

    EXPECT_TRUE(dma.stepBeat());
    EXPECT_FALSE(dma.nextBeat().has_value());
}

TEST_F(DmaTest, StepTransferTargetsOneTransfer)
{
    std::uint32_t a[8], b[8];
    for (int i = 0; i < 8; ++i) {
        a[i] = 1;
        b[i] = 2;
    }
    const DmaTransferId ta = dma.startWrite(PhysAddr(0x1000), a, 8);
    const DmaTransferId tb = dma.startWrite(PhysAddr(0x3000), b, 8);
    EXPECT_EQ(dma.pendingTransfers(), 2u);

    // Step the *younger* transfer: the older one stays untouched.
    EXPECT_TRUE(dma.stepTransfer(tb));
    EXPECT_EQ(mem.readWord(PhysAddr(0x3000)), 2u);
    EXPECT_EQ(mem.readWord(PhysAddr(0x1000)), 0u);
    EXPECT_TRUE(dma.transferPending(ta));
    EXPECT_FALSE(dma.transferPending(tb));
    EXPECT_FALSE(dma.stepTransfer(tb));

    dma.drainAll();
    EXPECT_EQ(mem.readWord(PhysAddr(0x1000)), 1u);
    EXPECT_EQ(dma.pendingTransfers(), 0u);
}

TEST_F(DmaTest, AsyncReadObservesMemoryAtBeatTime)
{
    // The consistency window the model checker explores: data written
    // to memory between command and beat IS seen; data written after
    // the beat is NOT.
    std::uint32_t out[16] = {};
    dma.startRead(PhysAddr(0x4000), out, 16);

    mem.writeWord(PhysAddr(0x4000), 7u);  // before beat 0: visible
    EXPECT_TRUE(dma.stepBeat());
    mem.writeWord(PhysAddr(0x4004), 9u);  // after beat 0: lost
    mem.writeWord(PhysAddr(0x4020), 11u); // before beat 1: visible
    EXPECT_TRUE(dma.stepBeat());

    EXPECT_EQ(out[0], 7u);
    EXPECT_EQ(out[1], 0u);
    EXPECT_EQ(out[8], 11u);
}

TEST_F(DmaTest, AsyncCompletionCallbackRunsAfterFinalBeat)
{
    std::uint32_t data[8] = {};
    int fired = 0;
    dma.startWrite(PhysAddr(0), data, 8, [&fired]() { ++fired; });
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(dma.stepBeat());
    EXPECT_EQ(fired, 1);
}

TEST_F(DmaTest, SyncPathEqualsStartPlusDrain)
{
    // The compat entry points must charge and count exactly what the
    // async path does, so calibrated benches are unaffected.
    std::uint32_t data[12] = {};
    const Cycles before = clk.now();
    dma.deviceWrite(PhysAddr(0x1000), data, 12);
    const Cycles syncCost = clk.now() - before;

    const Cycles asyncStart = clk.now();
    dma.startWrite(PhysAddr(0x1000), data, 12);
    dma.drainAll();
    EXPECT_EQ(clk.now() - asyncStart, syncCost);
    EXPECT_EQ(syncCost, DmaCosts{}.setup + 12 * DmaCosts{}.perWord);

    EXPECT_EQ(stats.value("dma.device_writes"), 2u);
    EXPECT_EQ(stats.value("dma.words_moved"), 24u);
}

} // anonymous namespace
} // namespace vic
