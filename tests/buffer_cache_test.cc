/**
 * @file
 * Tests for the buffer cache: fills from disk (DMA-write), write-backs
 * (DMA-read), eviction, write-behind, and end-to-end data integrity
 * through the Unix-server file interface.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"

namespace vic
{
namespace
{

class BufferCacheTest : public ::testing::Test
{
  protected:
    BufferCacheTest()
        : machine(MachineParams::hp720()),
          oracle(machine.memory().sizeBytes())
    {
        machine.setObserver(&oracle);
        OsParams op;
        op.bufferCacheSlots = 4;  // tiny, to force eviction
        op.writeBehindThreshold = 2;
        kernel = std::make_unique<Kernel>(
            machine, PolicyConfig::configF(), op);
        task = kernel->createTask();
    }

    Machine machine;
    ConsistencyOracle oracle;
    std::unique_ptr<Kernel> kernel;
    TaskId task = 0;
};

TEST_F(BufferCacheTest, WriteThenReadHitsBuffer)
{
    FileId f = kernel->fileCreate(task, "f");
    kernel->fileWrite(task, f, 0, 4096, 1000);
    auto misses = machine.stats().value("bcache.misses");
    kernel->fileRead(task, f, 0, 4096);
    EXPECT_EQ(machine.stats().value("bcache.misses"), misses);
    EXPECT_GE(machine.stats().value("bcache.hits"), 1u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(BufferCacheTest, WholeBlockWriteSkipsDiskRead)
{
    FileId f = kernel->fileCreate(task, "f");
    kernel->fileWrite(task, f, 0, 4096, 1);
    kernel->fileSyncAll();
    auto disk_reads = machine.stats().value("disk.block_reads");
    // Evict by touching 4 other blocks, then overwrite block 0 whole.
    FileId g = kernel->fileCreate(task, "g");
    for (int i = 0; i < 4; ++i)
        kernel->fileWrite(task, g, std::uint64_t(i) * 4096, 4096, 2);
    kernel->fileWrite(task, f, 0, 4096, 3);
    EXPECT_EQ(machine.stats().value("disk.block_reads"), disk_reads);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(BufferCacheTest, PartialWriteOfOldBlockReadsItBack)
{
    FileId f = kernel->fileCreate(task, "f");
    kernel->fileWrite(task, f, 0, 4096, 1);
    kernel->fileSyncAll();
    FileId g = kernel->fileCreate(task, "g");
    for (int i = 0; i < 4; ++i)  // evict f's buffer
        kernel->fileWrite(task, g, std::uint64_t(i) * 4096, 4096, 2);
    auto disk_reads = machine.stats().value("disk.block_reads");
    kernel->fileWrite(task, f, 0, 512, 3);  // partial: must read back
    EXPECT_EQ(machine.stats().value("disk.block_reads"),
              disk_reads + 1);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(BufferCacheTest, EvictionWritesDirtyDataToDisk)
{
    FileId f = kernel->fileCreate(task, "f");
    kernel->fileWrite(task, f, 0, 4096, 7000);
    // Fill the cache with other blocks to force f's buffer out.
    FileId g = kernel->fileCreate(task, "g");
    for (int i = 0; i < 5; ++i)
        kernel->fileWrite(task, g, std::uint64_t(i) * 4096, 4096, 1);

    // f block 0 must be on disk now; read it back and check words.
    auto blk = kernel->fs().diskBlockIfAny(f, 0);
    ASSERT_TRUE(blk.has_value());
    EXPECT_EQ(machine.disk().peekWord(*blk, 0), 7000u);
    EXPECT_EQ(machine.disk().peekWord(*blk, 5), 7005u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(BufferCacheTest, ReadBackAfterEvictionRestoresData)
{
    FileId f = kernel->fileCreate(task, "f");
    kernel->fileWrite(task, f, 0, 4096, 4242);
    FileId g = kernel->fileCreate(task, "g");
    for (int i = 0; i < 5; ++i)
        kernel->fileWrite(task, g, std::uint64_t(i) * 4096, 4096, 1);

    // The read round-trips disk -> buffer -> shared page -> task, all
    // checked by the oracle.
    kernel->fileRead(task, f, 0, 4096);
    EXPECT_TRUE(oracle.clean());
    EXPECT_GE(machine.stats().value("disk.block_reads"), 1u);
}

TEST_F(BufferCacheTest, WriteBehindBoundsDirtyBuffers)
{
    FileId f = kernel->fileCreate(task, "f");
    for (int i = 0; i < 4; ++i)
        kernel->fileWrite(task, f, std::uint64_t(i) * 4096, 4096, i);
    EXPECT_LE(kernel->bufferCache().dirtyCount(), 2u);
    kernel->fileSyncAll();
    EXPECT_EQ(kernel->bufferCache().dirtyCount(), 0u);
}

TEST_F(BufferCacheTest, SyncFlushesViaDmaRead)
{
    FileId f = kernel->fileCreate(task, "f");
    kernel->fileWrite(task, f, 0, 4096, 9);
    auto wb = machine.stats().value("bcache.write_backs");
    kernel->fileSyncAll();
    EXPECT_GT(machine.stats().value("bcache.write_backs"), wb);
    EXPECT_GE(machine.stats().value("disk.block_writes"), 1u);
    EXPECT_TRUE(oracle.clean());
}

TEST_F(BufferCacheTest, InvalidateDropsDirtyDataOnDelete)
{
    FileId f = kernel->fileCreate(task, "f");
    kernel->fileWrite(task, f, 0, 4096, 9);
    kernel->fileDelete(task, "f");
    EXPECT_EQ(kernel->bufferCache().dirtyCount(), 0u);
}

TEST_F(BufferCacheTest, UnwrittenBlockReadsAsZero)
{
    FileId f = kernel->fileCreate(task, "f");
    kernel->fileWrite(task, f, 4096, 4096, 1);  // block 1 only
    kernel->fileRead(task, f, 0, 4096);         // block 0: hole
    EXPECT_TRUE(oracle.clean());
}

TEST_F(BufferCacheTest, RecycledDiskBlocksDontLeakBetweenFiles)
{
    // Write f, sync, delete it; a new file reusing the disk block
    // must still read zeros (fill logic must not trust stale disk
    // contents for never-written blocks).
    FileId f = kernel->fileCreate(task, "f");
    kernel->fileWrite(task, f, 0, 4096, 1111);
    kernel->fileSyncAll();
    kernel->fileDelete(task, "f");

    FileId g = kernel->fileCreate(task, "g");
    kernel->fileRead(task, g, 0, 4096);  // hole: zeros
    EXPECT_TRUE(oracle.clean());
}

TEST_F(BufferCacheTest, ManyFilesStressEviction)
{
    for (int i = 0; i < 12; ++i) {
        FileId f = kernel->fileCreate(task, format("f%d", i));
        kernel->fileWrite(task, f, 0, 4096, 100 * i);
    }
    for (int i = 0; i < 12; ++i) {
        FileId f = kernel->fileOpen(task, format("f%d", i));
        kernel->fileRead(task, f, 0, 4096);
    }
    EXPECT_TRUE(oracle.clean())
        << oracle.violationCount() << " violations";
}

} // anonymous namespace
} // namespace vic
