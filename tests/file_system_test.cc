/** @file Unit tests for the file system metadata layer. */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "os/file_system.hh"

namespace vic
{
namespace
{

class FileSystemTest : public ::testing::Test
{
  protected:
    StatSet stats;
    FileSystem fs{stats};
};

TEST_F(FileSystemTest, CreateLookupRemove)
{
    FileId a = fs.create("a");
    EXPECT_TRUE(fs.exists(a));
    EXPECT_EQ(fs.lookup("a"), std::optional<FileId>(a));
    EXPECT_FALSE(fs.lookup("b").has_value());

    fs.remove(a);
    EXPECT_FALSE(fs.exists(a));
    EXPECT_FALSE(fs.lookup("a").has_value());
    EXPECT_EQ(stats.value("fs.creates"), 1u);
    EXPECT_EQ(stats.value("fs.deletes"), 1u);
}

TEST_F(FileSystemTest, NamesCanBeReusedAfterDelete)
{
    FileId a = fs.create("x");
    fs.remove(a);
    FileId b = fs.create("x");
    EXPECT_NE(a, b);
    EXPECT_TRUE(fs.exists(b));
}

TEST_F(FileSystemTest, SizeGrowsMonotonically)
{
    FileId f = fs.create("f");
    EXPECT_EQ(fs.sizeBytes(f), 0u);
    fs.extendTo(f, 5000);
    EXPECT_EQ(fs.sizeBytes(f), 5000u);
    fs.extendTo(f, 100);  // shrink requests are ignored
    EXPECT_EQ(fs.sizeBytes(f), 5000u);
    EXPECT_EQ(fs.numBlocks(f, 4096), 2u);
}

TEST_F(FileSystemTest, DiskBlocksAssignedOnDemand)
{
    FileId f = fs.create("f");
    EXPECT_FALSE(fs.hasDiskBlock(f, 0));
    EXPECT_FALSE(fs.diskBlockIfAny(f, 0).has_value());

    std::uint64_t b0 = fs.diskBlockFor(f, 0);
    EXPECT_TRUE(fs.hasDiskBlock(f, 0));
    EXPECT_EQ(fs.diskBlockFor(f, 0), b0);  // stable
    EXPECT_EQ(fs.diskBlockIfAny(f, 0), std::optional<std::uint64_t>(b0));

    std::uint64_t b5 = fs.diskBlockFor(f, 5);
    EXPECT_NE(b0, b5);
    EXPECT_FALSE(fs.hasDiskBlock(f, 3));  // holes stay holes
}

TEST_F(FileSystemTest, DistinctFilesGetDistinctBlocks)
{
    FileId a = fs.create("a");
    FileId b = fs.create("b");
    EXPECT_NE(fs.diskBlockFor(a, 0), fs.diskBlockFor(b, 0));
}

TEST_F(FileSystemTest, DeletedFilesBlocksAreRecycled)
{
    FileId a = fs.create("a");
    std::uint64_t blk = fs.diskBlockFor(a, 0);
    fs.remove(a);
    FileId b = fs.create("b");
    EXPECT_EQ(fs.diskBlockFor(b, 0), blk);
}

TEST_F(FileSystemTest, DeadFileAccessPanics)
{
    FileId a = fs.create("a");
    fs.remove(a);
    EXPECT_DEATH(fs.sizeBytes(a), "bad file id");
}

TEST_F(FileSystemTest, DuplicateNamePanics)
{
    fs.create("dup");
    EXPECT_DEATH(fs.create("dup"), "already exists");
}

} // anonymous namespace
} // namespace vic
