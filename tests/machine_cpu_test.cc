/** @file Unit tests for the composed machine and the CPU access path
 *  (translation, protection faults, reference/modified bits). */

#include <gtest/gtest.h>

#include "machine/cpu.hh"
#include "machine/machine.hh"

namespace vic
{
namespace
{

class MachineCpuTest : public ::testing::Test
{
  protected:
    MachineCpuTest() : machine(MachineParams::hp720()), cpu(machine)
    {
        cpu.setSpace(1);
    }

    void
    map(VirtAddr va, FrameId frame, Protection prot)
    {
        machine.pageTable().enter(SpaceVa(1, va), frame, prot);
    }

    Machine machine;
    Cpu cpu;
};

TEST_F(MachineCpuTest, MachineComposition)
{
    EXPECT_EQ(machine.pageBytes(), 4096u);
    EXPECT_EQ(machine.dcache().geometry().indexing(), Indexing::Virtual);
    EXPECT_EQ(machine.icache().geometry().indexing(), Indexing::Virtual);
    EXPECT_EQ(&machine.cacheFor(CacheKind::Data), &machine.dcache());
    EXPECT_EQ(&machine.cacheFor(CacheKind::Instruction),
              &machine.icache());
    EXPECT_EQ(machine.frameAddr(3, 8).value, 3u * 4096u + 8u);
}

TEST_F(MachineCpuTest, LoadStoreRoundTrip)
{
    map(VirtAddr(0x4000), 2, Protection::readWrite());
    cpu.store(VirtAddr(0x4010), 77);
    EXPECT_EQ(cpu.load(VirtAddr(0x4010)), 77u);
}

TEST_F(MachineCpuTest, ReferencedAndModifiedBits)
{
    map(VirtAddr(0x4000), 2, Protection::readWrite());
    cpu.load(VirtAddr(0x4000));
    const PageTableEntry *pte =
        machine.pageTable().lookup(SpaceVa(1, VirtAddr(0x4000)));
    EXPECT_TRUE(pte->referenced);
    EXPECT_FALSE(pte->modified);
    cpu.store(VirtAddr(0x4000), 1);
    EXPECT_TRUE(pte->modified);
}

TEST_F(MachineCpuTest, IFetchGoesThroughICache)
{
    map(VirtAddr(0x4000), 2, Protection::readExecute());
    cpu.ifetch(VirtAddr(0x4000));
    EXPECT_EQ(machine.stats().value("icache.reads"), 1u);
    EXPECT_EQ(machine.stats().value("dcache.reads"), 0u);
}

TEST_F(MachineCpuTest, FaultHandlerInvokedOnUnmapped)
{
    int faults = 0;
    cpu.setFaultHandler([&](const Fault &f) {
        ++faults;
        EXPECT_EQ(f.type, FaultType::Unmapped);
        EXPECT_EQ(f.access, AccessType::Load);
        EXPECT_EQ(f.address.space, 1u);
        map(VirtAddr(0x4000), 2, Protection::readOnly());
        return true;
    });
    EXPECT_EQ(cpu.load(VirtAddr(0x4000)), 0u);
    EXPECT_EQ(faults, 1);
    EXPECT_EQ(cpu.faultCount(), 1u);
}

TEST_F(MachineCpuTest, ProtectionFaultOnStoreToReadOnly)
{
    map(VirtAddr(0x4000), 2, Protection::readOnly());
    int faults = 0;
    cpu.setFaultHandler([&](const Fault &f) {
        ++faults;
        EXPECT_EQ(f.type, FaultType::Protection);
        EXPECT_EQ(f.access, AccessType::Store);
        machine.pageTable().setProtection(SpaceVa(1, VirtAddr(0x4000)),
                                          Protection::readWrite());
        return true;
    });
    cpu.store(VirtAddr(0x4000), 5);
    EXPECT_EQ(faults, 1);
}

TEST_F(MachineCpuTest, ExecuteDeniedWithoutExecutePermission)
{
    map(VirtAddr(0x4000), 2, Protection::readWrite());
    int faults = 0;
    cpu.setFaultHandler([&](const Fault &f) {
        ++faults;
        EXPECT_EQ(f.access, AccessType::IFetch);
        machine.pageTable().setProtection(SpaceVa(1, VirtAddr(0x4000)),
                                          Protection::all());
        return true;
    });
    cpu.ifetch(VirtAddr(0x4000));
    EXPECT_EQ(faults, 1);
}

TEST_F(MachineCpuTest, FaultChargesTrapCycles)
{
    map(VirtAddr(0x4000), 2, Protection::readOnly());
    cpu.setFaultHandler([&](const Fault &) {
        machine.pageTable().setProtection(SpaceVa(1, VirtAddr(0x4000)),
                                          Protection::readWrite());
        return true;
    });
    Cycles before = machine.clock().now();
    cpu.store(VirtAddr(0x4000), 1);
    EXPECT_GE(machine.clock().now() - before,
              machine.params().trapCycles);
}

TEST_F(MachineCpuTest, UnhandledFaultAborts)
{
    cpu.setFaultHandler([](const Fault &) { return false; });
    EXPECT_DEATH(cpu.load(VirtAddr(0x4000)), "unrecoverable");
}

TEST_F(MachineCpuTest, FaultLivelockDetected)
{
    cpu.setFaultHandler([](const Fault &) { return true; });  // no fix
    EXPECT_DEATH(cpu.load(VirtAddr(0x4000)), "livelock");
}

TEST_F(MachineCpuTest, ComputeAdvancesClock)
{
    Cycles before = machine.clock().now();
    cpu.compute(1234);
    EXPECT_EQ(machine.clock().now() - before, 1234u);
}

TEST_F(MachineCpuTest, ElapsedSecondsUsesClockRate)
{
    machine.clock().reset();
    machine.clock().advance(50'000'000);
    EXPECT_DOUBLE_EQ(machine.elapsedSeconds(), 1.0);  // 50 MHz
}

TEST_F(MachineCpuTest, SpaceSwitchingIsolatesAddressSpaces)
{
    map(VirtAddr(0x4000), 2, Protection::readWrite());
    machine.pageTable().enter(SpaceVa(2, VirtAddr(0x4000)), 3,
                              Protection::readWrite());
    cpu.store(VirtAddr(0x4000), 11);  // space 1, frame 2
    cpu.setSpace(2);
    cpu.store(VirtAddr(0x4000), 22);  // space 2, frame 3
    cpu.setSpace(1);
    EXPECT_EQ(cpu.load(VirtAddr(0x4000)), 11u);
}

TEST(MachineSnoopTest, SnoopingMachineWiresDmaToCaches)
{
    MachineParams p = MachineParams::hp720();
    p.dmaSnoops = true;
    Machine m(p);
    EXPECT_TRUE(m.dma().snooping());
}

TEST(MachineParamsDeathTest, ChecksReject)
{
    MachineParams p = MachineParams::hp720();
    p.numFrames = 0;
    EXPECT_DEATH(Machine{p}, "frame");
}

} // anonymous namespace
} // namespace vic
