// Fixture: every determinism rule fires exactly where marked, and
// the comment/string mentions below do NOT fire (token-awareness).
// This tree is never compiled — it only feeds vic_lint in tests.

#include <chrono>
#include <random>
#include <unordered_map>

// system_clock and rand() in a comment must not be flagged.
static const char *doc = "calls time() and std::mt19937 by name";

unsigned long
seedFromWallClock()
{
    auto now = std::chrono::system_clock::now();  // det-wallclock
    (void)now;
    return time(nullptr);  // det-wallclock (C time())
}

int
entropy()
{
    std::random_device rd;  // det-entropy
    return rand() + static_cast<int>(rd());  // det-entropy
}

double
stream()
{
    std::mt19937 gen(42);  // det-std-random
    std::uniform_int_distribution<int> d(0, 9);  // det-std-random
    return d(gen);
}

std::unordered_map<int, int> table;  // det-unordered (src/mc)

const char *
unused()
{
    return doc;
}
