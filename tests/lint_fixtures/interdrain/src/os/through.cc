// Interprocedural drain fixture: the obligation crosses a call.
//
// Under the PR 8 per-file pass the helper's "*Async" name bought an
// exemption and the caller was never checked — both leaks below were
// invisible. The summary engine derives beginFlushAsync's leak from
// its body and bills the unpaired call site in flushThroughHelper.

#include "dma/dma_engine.hh"

namespace vic
{

TransferId
beginFlushAsync(DmaEngine &dma)
{
    return dma.startWrite(FrameId(1), BlockId(2));
}

void
flushThroughHelper(DmaEngine &dma)
{
    beginFlushAsync(dma);
}

void
flushAndDrain(DmaEngine &dma)
{
    beginFlushAsync(dma);
    dma.drainAll();
}

void
deferLeakyLambda(WorkQueue &queue, DmaEngine &dma)
{
    queue.defer([&dma] {
        dma.startWrite(FrameId(3), BlockId(4));
    });
}

} // namespace vic
