// Counter-liveness fixture: a dead registration and an orphan
// increment, both reachable from Machine construction.
//
// statHits is registered and bumped — live. statGhost is registered
// in the same init list but never incremented anywhere
// (counter-live-dead: it reports a forever-zero statistic). statOrphan
// is a Counter member that is incremented but never bound to a
// StatSet registration (counter-live-unregistered: benches reading
// the registry never see it).

#include "common/stats.hh"

namespace vic
{

class Machine
{
  public:
    Machine()
        : statHits(statSet.counter("machine.hits")),
          statGhost(statSet.counter("machine.ghost"))
    {}

    void
    touch()
    {
        ++statHits;
        ++statOrphan;
    }

  private:
    StatSet statSet;
    Counter &statHits;
    Counter &statGhost;
    Counter &statOrphan;
};

} // namespace vic
