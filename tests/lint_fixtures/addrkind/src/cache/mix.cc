// Address-kind fixture: virtual and physical bits laundered through
// raw uint64_t channels.
//
// pickBits receives va-bits from probeVirt and pa-bits from probePhys
// — the classic washed-out helper (addr-kind-mixed at its parameter).
// launder re-wraps untranslated virtual bits as a PhysAddr
// (addr-kind-rewrap); translate composes the bits with a frame base,
// which is a real translation and must stay silent.

#include "common/types.hh"

namespace vic
{

std::uint64_t
pickBits(std::uint64_t raw_bits)
{
    return raw_bits / 32;
}

std::uint64_t
probeVirt(VirtAddr va)
{
    return pickBits(va.value);
}

std::uint64_t
probePhys(PhysAddr pa)
{
    return pickBits(pa.value);
}

PhysAddr
launder(VirtAddr va)
{
    return PhysAddr{va.value};
}

PhysAddr
translate(VirtAddr va, std::uint64_t frame_base)
{
    return PhysAddr{frame_base | (va.value % 4096)};
}

} // namespace vic
