// Fixture: counter registration violations. Never compiled — parsed
// by vic_lint only.

struct StatSet
{
    int &counter(const char *);
};

void
registerStats(StatSet &stats)
{
    ++stats.counter("os.good_name");
    ++stats.counter("OS.BadName");          // counter-name
    ++stats.counter("os.good_name");        // counter-duplicate
    ++stats.counter("bus.rogue_requests");  // counter-bus-eager
}
