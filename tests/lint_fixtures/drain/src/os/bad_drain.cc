// Fixture: DMA drain-pairing violations and one correct pairing.
// Never compiled — parsed by vic_lint only; the stub types below
// just make the shape realistic.

struct Dma
{
    int startWrite(int, int);
    int startRead(int, int);
    void drainDma(int);
};

// BAD: the early-return path leaks the transfer.
void
flushLeaky(Dma &dma, bool fast_path)
{
    int id = dma.startWrite(0, 4);  // drain-unpaired fires here
    if (fast_path)
        return;
    dma.drainDma(id);
}

// GOOD: both branches drain before exit.
void
flushPaired(Dma &dma, bool fast_path)
{
    int id = dma.startWrite(0, 4);
    if (fast_path) {
        dma.drainDma(id);
        return;
    }
    dma.drainDma(id);
}

// GOOD: a loop whose condition steps the transfer drains it.
void
fillStepped(Dma &dma)
{
    int id = dma.startRead(0, 4);
    while (stepTransfer(id)) {
    }
}

int stepTransfer(int);
