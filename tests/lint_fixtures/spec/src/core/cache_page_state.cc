// Fixture: Table 2 with the Dirty+DmaRead bug re-seeded — the exact
// inconsistency class the cost-model PR hand-fixed. On this machine
// a flush writes back AND invalidates, so the row must end Empty;
// {Present, Flush} disagrees both with composition (flush-then-
// DmaRead on Empty stays Empty) and with the compiled table. One
// case is also deleted (Stale under CpuWrite) to exercise coverage.
// Never compiled — parsed by vic_lint only.

#include "core/cache_page_state.hh"

#include "common/logging.hh"

namespace vic
{

SpecTransition
targetTransition(CachePageState current, MemOp op)
{
    using S = CachePageState;
    using R = RequiredOp;
    switch (op) {
      case MemOp::CpuRead:
        switch (current) {
          case S::Empty: return {S::Present};
          case S::Present: return {S::Present};
          case S::Dirty: return {S::Dirty};
          case S::Stale: return {S::Present, R::Purge};
        }
        break;

      case MemOp::CpuWrite:
        switch (current) {
          case S::Empty: return {S::Dirty};
          case S::Present: return {S::Dirty};
          case S::Dirty: return {S::Dirty};
          // Stale row deleted: spec-coverage must fire.
        }
        break;

      case MemOp::DmaRead:
        switch (current) {
          case S::Empty: return {S::Empty};
          case S::Present: return {S::Present};
          case S::Dirty: return {S::Present, R::Flush};  // the bug
          case S::Stale: return {S::Stale};
        }
        break;

      case MemOp::DmaWrite:
        switch (current) {
          case S::Empty: return {S::Empty};
          case S::Present: return {S::Stale};
          case S::Dirty: return {S::Empty, R::Purge};
          case S::Stale: return {S::Stale};
        }
        break;

      case MemOp::Purge:
      case MemOp::Flush:
        return {S::Empty};
    }
    vic_panic("invalid (state=%d, op=%d)", static_cast<int>(current),
              static_cast<int>(op));
}

SpecTransition
otherTransition(CachePageState current, MemOp op)
{
    using S = CachePageState;
    using R = RequiredOp;
    switch (op) {
      case MemOp::CpuRead:
        switch (current) {
          case S::Empty: return {S::Empty};
          case S::Present: return {S::Present};
          case S::Dirty: return {S::Empty, R::Flush};
          case S::Stale: return {S::Stale};
        }
        break;

      case MemOp::CpuWrite:
        switch (current) {
          case S::Empty: return {S::Empty};
          case S::Present: return {S::Stale};
          case S::Dirty: return {S::Empty, R::Flush};
          case S::Stale: return {S::Stale};
        }
        break;

      case MemOp::DmaRead:
      case MemOp::DmaWrite:
        return targetTransition(current, op);

      case MemOp::Purge:
      case MemOp::Flush:
        return {current};
    }
    vic_panic("invalid (state=%d, op=%d)", static_cast<int>(current),
              static_cast<int>(op));
}

} // namespace vic
