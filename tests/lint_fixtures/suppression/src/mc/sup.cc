// Fixture: suppression hygiene. Never compiled — parsed by vic_lint
// only.

#include <unordered_map>

// A documented suppression that silences a real diagnostic: no
// det-unordered must be reported for the next line, and the
// suppression must count as used.
// vic-lint: allow(det-unordered): fixture exercises a used allow
std::unordered_map<int, int> silenced;

// vic-lint: allow(det-unordered)
std::unordered_map<int, int> undocumented;  // suppress-undocumented

// vic-lint: allow(det-wallclock): nothing here uses the wall clock
int unused_suppression;  // suppress-unused fires on the comment
