// Fixture: a hardware-layer file reaching up into the OS layer.
// Never compiled — parsed by vic_lint only.

#include "common/types.hh"
#include "os/kernel.hh"  // layer-cycle: cache (2) -> os (6)

void
cacheTouchesKernel()
{
}
