/**
 * @file
 * vic_bench — the aggregating bench driver.
 *
 * Collects the RunSpecs of every registered suite (bench/suites.hh)
 * into ONE engine batch, fans the runs out across --jobs worker
 * threads, then replays each suite's report over its slice of the
 * outcomes and writes the whole sweep as a single versioned JSON
 * artifact. Because the engine collects outcomes in spec order and
 * every run owns its machine, the artifact is byte-identical between
 * --jobs 1 and --jobs N apart from the wall-clock fields — which is
 * exactly what --diff checks.
 *
 * Usage:
 *   vic_bench [--list] [--filter s1,s2] [--jobs N] [--shards N]
 *             [--smoke] [--json PATH] [--throughput PATH]
 *             [--ratchet BASELINE.json] [--trace N] [--progress]
 *   vic_bench --diff A.json B.json
 *
 * --filter takes comma-separated substrings matched against suite
 * names and run ids (a suite is swept when its name matches, or run
 * by run when individual ids match). Exit status: 0 when every
 * selected run completed without oracle violations and every
 * non-advisory shape check passed.
 *
 * --shards N fans the replicas INSIDE each multi-replica run (the
 * fleet suite) out across N host threads; results merge
 * deterministically, so artifacts are --shards-independent just as
 * they are --jobs-independent.
 *
 * --throughput writes the vic-bench-throughput companion artifact
 * (per-run host_seconds / sim_cycles / cycles_per_host_second) after
 * a sweep; --list reads the same file (default BENCH_throughput.json)
 * to fill its throughput column from the last archived sweep.
 *
 * --ratchet BASELINE.json gates on host throughput: the sweep's
 * aggregate cycles_per_host_second — computed over the run ids
 * present in BOTH the baseline and this sweep, so suite additions
 * don't skew the ratio — must not regress more than 10% below the
 * archived baseline, or the sweep exits non-zero. A missing baseline
 * passes (bootstrap). Pair with --throughput to refresh the baseline
 * on pass; the throughput file is not written when the ratchet fails.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/suites.hh"
#include "common/logging.hh"

namespace
{

using namespace vic;
using namespace vic::bench;

/** Per-suite throughput from an archived vic-bench-throughput
 *  artifact: suite name -> (sim cycles, host seconds), summed over
 *  the suite's runs. Empty when the file is absent or unreadable. */
std::map<std::string, std::pair<double, double>>
loadThroughput(const std::string &path)
{
    std::map<std::string, std::pair<double, double>> by_suite;
    std::ifstream in(path);
    if (!in)
        return by_suite;
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
        const JsonValue v = JsonValue::parse(ss.str());
        const JsonValue *runs = v.find("runs");
        if (!runs)
            return by_suite;
        for (const JsonValue &run : runs->items()) {
            const JsonValue *suite = run.find("suite");
            const JsonValue *cycles = run.find("sim_cycles");
            const JsonValue *host = run.find("host_seconds");
            if (!suite || !cycles || !host)
                continue;
            auto &[c, s] = by_suite[suite->asString()];
            c += cycles->asDouble();
            s += host->asDouble();
        }
    } catch (const std::exception &) {
        by_suite.clear();
    }
    return by_suite;
}

int
listSuites(const std::string &throughput_path)
{
    const auto throughput = loadThroughput(throughput_path);
    std::printf("%-14s %-5s %-14s %s\n", "suite", "runs",
                "cycles/host-s", "title");
    SuiteOptions opts;
    for (const Suite *s : allSuites()) {
        std::string tput = "-";
        auto it = throughput.find(s->name);
        if (it != throughput.end() && it->second.second > 0) {
            tput = format("%.3g",
                          it->second.first / it->second.second);
        }
        std::printf("%-14s %-5zu %-14s %s\n", s->name.c_str(),
                    s->specs(opts).size(), tput.c_str(),
                    s->title.c_str());
    }
    if (throughput.empty()) {
        std::printf("\n(no throughput data at %s — run a sweep with "
                    "--throughput %s first)\n",
                    throughput_path.c_str(), throughput_path.c_str());
    }
    return 0;
}

int
diffArtifacts(const std::string &path_a, const std::string &path_b)
{
    auto slurp = [](const std::string &path, std::string *out) {
        std::ifstream in(path);
        if (!in)
            return false;
        std::ostringstream ss;
        ss << in.rdbuf();
        *out = ss.str();
        return true;
    };
    std::string a, b;
    if (!slurp(path_a, &a) || !slurp(path_b, &b)) {
        std::fprintf(stderr, "cannot read %s\n",
                     a.empty() ? path_a.c_str() : path_b.c_str());
        return 2;
    }
    std::string why;
    if (artifactsEquivalent(a, b, &why)) {
        std::printf("equivalent (modulo wall-clock): %s == %s\n",
                    path_a.c_str(), path_b.c_str());
        return 0;
    }
    std::printf("DIFFER: %s\n", why.c_str());
    return 1;
}

/**
 * Throughput ratchet: compare this sweep's aggregate
 * cycles_per_host_second against an archived baseline, over the run
 * ids present in both (so adding or filtering suites cannot skew the
 * ratio). Returns true when the sweep is no more than 10% below the
 * baseline — or when no baseline/common runs exist (bootstrap).
 */
bool
ratchetCheck(const std::string &baseline_path,
             const std::vector<RunOutcome> &outcomes)
{
    std::ifstream in(baseline_path);
    if (!in) {
        std::printf("ratchet: no baseline at %s (bootstrap pass)\n",
                    baseline_path.c_str());
        return true;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    // Baseline per-run throughput, keyed by run id.
    std::map<std::string, std::pair<double, double>> base;
    try {
        const JsonValue v = JsonValue::parse(ss.str());
        const JsonValue *runs = v.find("runs");
        if (runs) {
            for (const JsonValue &run : runs->items()) {
                const JsonValue *id = run.find("id");
                const JsonValue *cycles = run.find("sim_cycles");
                const JsonValue *host = run.find("host_seconds");
                if (id && cycles && host)
                    base[id->asString()] = {cycles->asDouble(),
                                            host->asDouble()};
            }
        }
    } catch (const std::exception &e) {
        std::printf("ratchet: unreadable baseline %s (%s) — "
                    "bootstrap pass\n",
                    baseline_path.c_str(), e.what());
        return true;
    }

    double base_cycles = 0, base_seconds = 0;
    double new_cycles = 0, new_seconds = 0;
    std::size_t common = 0;
    for (const RunOutcome &out : outcomes) {
        if (!out.ok || out.wallSeconds <= 0)
            continue;
        const auto it = base.find(out.id);
        if (it == base.end())
            continue;
        ++common;
        base_cycles += it->second.first;
        base_seconds += it->second.second;
        new_cycles += double(std::uint64_t(out.result.cycles));
        new_seconds += out.wallSeconds;
    }
    if (common == 0 || base_seconds <= 0 || new_seconds <= 0) {
        std::printf("ratchet: no comparable runs vs %s "
                    "(bootstrap pass)\n",
                    baseline_path.c_str());
        return true;
    }

    const double base_rate = base_cycles / base_seconds;
    const double new_rate = new_cycles / new_seconds;
    const double floor = 0.9 * base_rate;
    std::printf("ratchet: %.3g cycles/host-s over %zu common run(s); "
                "baseline %.3g (floor %.3g) -> %s\n",
                new_rate, common, base_rate, floor,
                new_rate >= floor ? "PASS" : "REGRESSION");
    return new_rate >= floor;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    ExperimentEngine::Options engine_opts;
    SuiteOptions suite_opts;
    std::string json_path;
    std::string throughput_path;
    std::string ratchet_path;
    std::string filter;
    std::size_t trace_events = 0;
    bool do_list = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            // Deferred until all flags are parsed, so a later
            // --throughput PATH can point the column at an archive.
            do_list = true;
        } else if (arg == "--diff") {
            if (i + 2 >= argc) {
                std::fprintf(stderr, "--diff needs two paths\n");
                return 2;
            }
            return diffArtifacts(argv[i + 1], argv[i + 2]);
        } else if (arg == "--filter" || arg == "-f") {
            filter = next();
        } else if (arg == "--jobs" || arg == "-j") {
            engine_opts.jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--shards") {
            engine_opts.shards = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--ratchet") {
            ratchet_path = next();
        } else if (arg == "--smoke") {
            suite_opts.smoke = true;
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--throughput") {
            throughput_path = next();
        } else if (arg == "--trace") {
            trace_events = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--progress") {
            engine_opts.echoProgress = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--list] [--filter s1,s2] [--jobs N] "
                "[--shards N] [--smoke] [--json PATH] "
                "[--throughput PATH] [--ratchet BASELINE.json] "
                "[--trace N] [--progress]\n"
                "       %s --diff A.json B.json\n",
                argv[0], argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s (try --help)\n",
                         arg.c_str());
            return 2;
        }
    }

    if (do_list) {
        return listSuites(throughput_path.empty()
                              ? "BENCH_throughput.json"
                              : throughput_path);
    }

    // Gather the selected runs of every suite into one batch; remember
    // each suite's slice so its report sees exactly its outcomes.
    struct Slice
    {
        const Suite *suite;
        std::size_t begin, end;
    };
    std::vector<RunSpec> batch;
    std::vector<Slice> slices;
    for (const Suite *suite : allSuites()) {
        std::vector<RunSpec> specs = suite->specs(suite_opts);
        const bool suite_match =
            ExperimentEngine::matchesFilter(suite->name, filter);
        const std::size_t begin = batch.size();
        std::size_t kept = 0;
        for (RunSpec &spec : specs) {
            if (!suite_match &&
                !ExperimentEngine::matchesFilter(spec.id, filter))
                continue;
            spec.traceEvents = trace_events;
            batch.push_back(std::move(spec));
            ++kept;
        }
        // A suite with no engine runs of its own (table2) still
        // participates when its name matches the filter.
        if (kept > 0 || (suite_match && specs.empty()))
            slices.push_back({suite, begin, batch.size()});
    }

    if (batch.empty() && slices.empty()) {
        std::fprintf(stderr, "filter '%s' selects nothing "
                             "(try --list)\n",
                     filter.c_str());
        return 2;
    }

    std::printf("vic_bench: %zu run(s) across %zu suite(s), "
                "--jobs %u, --shards %u%s\n\n",
                batch.size(), slices.size(), engine_opts.jobs,
                engine_opts.shards,
                suite_opts.smoke ? ", --smoke" : "");

    const auto t0 = std::chrono::steady_clock::now();
    ExperimentEngine engine;
    std::vector<RunOutcome> outcomes = engine.run(batch, engine_opts);
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    // Per-suite reports over their slices. Partial slices (id-level
    // filters) skip the report — its indexing assumes the full spec
    // list — but still gate on clean runs.
    bool ok = outcomesClean(outcomes);
    for (const Slice &slice : slices) {
        suiteBanner(*slice.suite);
        const std::vector<RunOutcome> mine(
            outcomes.begin() + slice.begin,
            outcomes.begin() + slice.end);
        const bool full =
            mine.size() == slice.suite->specs(suite_opts).size();
        bool suite_ok = true;
        if (slice.suite->report && full && outcomesClean(mine))
            suite_ok = slice.suite->report(suite_opts, mine);
        else if (slice.suite->report && !full)
            std::printf("(report skipped: filter selected %zu of the "
                        "suite's runs)\n",
                        mine.size());
        if (slice.suite->validate)
            suite_ok = slice.suite->validate(suite_opts) && suite_ok;
        ok = suite_ok && ok;
        std::printf("\n");
    }

    std::printf("sweep: %zu run(s) in %.2f s host time -> %s\n",
                outcomes.size(), wall, ok ? "OK" : "FAILED");

    if (!json_path.empty()) {
        ArtifactMeta meta;
        meta.jobs = engine_opts.jobs;
        meta.shards = engine_opts.shards;
        meta.smoke = suite_opts.smoke;
        meta.filter = filter;
        meta.wallSeconds = wall;
        if (!writeArtifactFile(json_path, meta, outcomes)) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 2;
        }
        std::printf("wrote artifact: %s\n", json_path.c_str());
    }
    // The ratchet gates BEFORE the throughput archive is refreshed: a
    // regressing sweep must not overwrite the baseline it failed
    // against.
    if (!ratchet_path.empty() && !ratchetCheck(ratchet_path, outcomes))
        return 1;
    if (!throughput_path.empty()) {
        ArtifactMeta meta;
        meta.jobs = engine_opts.jobs;
        meta.shards = engine_opts.shards;
        meta.smoke = suite_opts.smoke;
        meta.filter = filter;
        meta.wallSeconds = wall;
        if (!writeThroughputFile(throughput_path, meta, outcomes)) {
            std::fprintf(stderr, "cannot write %s\n",
                         throughput_path.c_str());
            return 2;
        }
        std::printf("wrote throughput: %s\n", throughput_path.c_str());
    }
    return ok ? 0 : 1;
}
