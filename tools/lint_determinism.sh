#!/usr/bin/env bash
# Back-compat entry point: the grep lint that used to live here is
# now vic_lint's token-aware `determinism` pass (rules det-wallclock,
# det-entropy, det-std-random, det-unordered — see
# docs/STATIC_ANALYSIS.md). This wrapper finds or builds the vic_lint
# binary and delegates, so existing hooks and habits keep working.
#
# Usage: tools/lint_determinism.sh   (run from anywhere in the repo)

set -euo pipefail
cd "$(dirname "$0")/.."

find_lint() {
    local d
    for d in build build-release build-ci build-tsan; do
        if [ -x "$d/tools/vic_lint" ]; then
            echo "$d/tools/vic_lint"
            return 0
        fi
    done
    return 1
}

if ! VIC_LINT=$(find_lint); then
    echo "lint_determinism: building vic_lint..." >&2
    cmake -S . -B build >/dev/null
    cmake --build build --target vic_lint -j"$(nproc)" >/dev/null
    VIC_LINT=build/tools/vic_lint
fi

exec "$VIC_LINT" --root . --pass determinism "$@"
