#!/usr/bin/env bash
# Determinism lint: the simulator, benches, and analyzers must be
# bit-reproducible — same inputs, same artifacts, across runs and
# across --jobs settings (ci.sh gates on artifact equality). Any
# wall-clock or entropy source in simulation code silently breaks
# that contract, so this lint fails the build if one appears.
#
# Banned outside the allowlist:
#   std::chrono::system_clock   wall-clock time
#   time(                       C time()
#   rand(                       C rand()/srand()
#   random_device               nondeterministic seeding
#   std::mt19937 et al.         std random engines/distributions —
#                               their streams are implementation-
#                               defined across standard libraries;
#                               the schedule fuzzer and experiment
#                               engine must draw from the repo's own
#                               SplitMix64-seeded xoshiro streams
#                               (src/common/random.hh) so a seed
#                               reproduces bit-identically anywhere
#
# std::chrono::steady_clock is fine: it measures elapsed wall time
# for progress reporting and never feeds simulated state.
#
# Allowlist (regex on repo-relative paths), with the reason each
# entry is exempt:
#   (none currently)
#
# Usage: tools/lint_determinism.sh   (run from anywhere in the repo)

set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST_RE='^$'

PATTERN='std::chrono::system_clock|[^a-zA-Z_]time\(|[^a-zA-Z_]rand\(|random_device|std::mt19937|std::minstd_rand|default_random_engine|uniform_int_distribution|uniform_real_distribution|[^a-zA-Z_]std::shuffle'

status=0
while IFS= read -r file; do
    if [[ "$file" =~ $ALLOWLIST_RE ]]; then
        continue
    fi
    if matches=$(grep -nE "$PATTERN" "$file"); then
        echo "determinism lint: banned source of nondeterminism in $file:"
        echo "$matches" | sed 's/^/    /'
        status=1
    fi
done < <(git ls-files 'src/*.cc' 'src/*.hh' 'tools/*.cc' \
         'bench/*.cc' 'bench/*.hh' 'tests/*.cc' 'examples/*.cc')

# The model checker carries a stricter contract: exploration results
# must be identical across runs, machines, and --jobs settings, and
# unordered-container iteration order is hash-seed and address-space
# dependent. src/mc therefore may not use unordered containers at
# all — std::set/std::map give the canonical order for free.
while IFS= read -r file; do
    if matches=$(grep -nE 'std::unordered_' "$file"); then
        echo "determinism lint: unordered container in model checker $file:"
        echo "$matches" | sed 's/^/    /'
        status=1
    fi
done < <(git ls-files 'src/mc/*.cc' 'src/mc/*.hh')

# src/common headers are the sim-visible APIs every layer shares
# (stats snapshots, observers, types). An unordered container
# declared there leaks hash-iteration order into whatever consumes
# it — StatSet::snapshot() once returned an unordered_map straight
# into the JSON artifacts. Implementation .cc files may use one when
# iteration order never escapes, but the shared interfaces must not.
while IFS= read -r file; do
    if matches=$(grep -nE 'std::unordered_' "$file"); then
        echo "determinism lint: unordered container in sim-visible common API $file:"
        echo "$matches" | sed 's/^/    /'
        status=1
    fi
done < <(git ls-files 'src/common/*.hh')

if [ "$status" -eq 0 ]; then
    echo "determinism lint: clean"
fi
exit "$status"
