/**
 * @file
 * Protocol lint: statically verify every shipping consistency policy.
 *
 * For each Table 4 configuration and Table 5 system, exhaustively
 * explores the abstract protocol state machine to a fixed point and
 * checks the paper's invariants; the deliberately broken policy must
 * instead yield a minimal counterexample trace that reproduces a
 * ConsistencyOracle violation when replayed on the concrete machine.
 *
 * Beyond the safety check, the tool exposes the cost-aware optimality
 * analyses:
 *
 *   --cost        annotate each policy's reachable transition graph
 *                 with the concrete machine's cycle costs (worst step,
 *                 worst minimal-trace path, op census)
 *   --necessity   prove every issued cache op load-bearing or exhibit
 *                 it as provably redundant, with a minimal trace; the
 *                 check FAILS if a shipping lazy policy issues any
 *                 redundant op or a shipping classic policy retains a
 *                 fully removable call site
 *   --diff-policy A B
 *                 product construction running two sound policies on
 *                 the same event stream; per-Table-2-class worst-case
 *                 cost bounds and divergence counts
 *   --interleave  DPOR exploration of concurrent CPU/DMA/pageout
 *                 schedules (src/mc) per policy: the guarded kernel
 *                 orderings must be race- and violation-free, while
 *                 the broken-ordering exemplars must yield an
 *                 oracle-confirmed race with a minimal replayable
 *                 schedule
 *   --coherence   run the multiprocessor coherence catalog for
 *                 --interleave instead of the standard one: the
 *                 cross-cache sharing pairs must be race-free with a
 *                 positively reported benign pair on the MESI
 *                 machine, and the non-coherent regression must yield
 *                 an oracle-confirmed race (the detector's old
 *                 hard-coded CPU/CPU skip would miss it)
 *   --memory-order sc|weak
 *                 store-visibility model for --interleave: "sc"
 *                 (default) runs the standard catalog; "weak" runs
 *                 the weak-store-order catalog, in which stores drain
 *                 asynchronously through per-CPU FIFO buffers and the
 *                 missing-fence exemplar must be caught as a
 *                 weak-order-window race
 *   --fuzz N      after the exhaustive pass, sample N random maximal
 *                 schedules per scenario; where DPOR exhausted the
 *                 space the samples must stay inside the known trace
 *                 set, and violation-free scenarios must fuzz clean
 *   --fuzz-seed S base seed of the deterministic fuzz streams
 *                 (SplitMix64-derived per scenario; same artifacts
 *                 for any --jobs)
 *   --budget N    complete-schedule budget per scenario (interleave)
 *   --jobs N      worker threads for --interleave (results identical
 *                 for any N)
 *   --json FILE   machine-readable report of everything run
 *                 (schema vic-verify-report-v4)
 *
 * Exit status 0 iff every expectation holds, so CI can gate on it.
 * Unknown flags exit 2.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/json_writer.hh"
#include "core/policy_config.hh"
#include "mc/explorer.hh"
#include "mc/scenario.hh"
#include "verify/cost_model.hh"
#include "verify/differential.hh"
#include "verify/mc_report.hh"
#include "verify/necessity.hh"
#include "verify/policy_verifier.hh"
#include "verify/trace_replay.hh"

namespace
{

using vic::Cycles;
using vic::JsonValue;
using vic::PolicyConfig;
using vic::PmapKind;
namespace verify = vic::verify;

std::vector<PolicyConfig>
allPolicies()
{
    std::vector<PolicyConfig> all = PolicyConfig::table4Sweep();
    for (const PolicyConfig &p : PolicyConfig::table5Systems())
        all.push_back(p);
    all.push_back(PolicyConfig::broken());
    return all;
}

const PolicyConfig *
findPolicy(const std::vector<PolicyConfig> &all, const std::string &name)
{
    for (const PolicyConfig &p : all)
        if (p.name == name)
            return &p;
    return nullptr;
}

bool
expectedSound(const PolicyConfig &p)
{
    return !p.brokenNoConsistency;
}

JsonValue
traceJson(const verify::Trace &t)
{
    JsonValue a = JsonValue::array();
    for (const verify::Event &e : t)
        a.push(JsonValue::str(verify::eventName(e)));
    return a;
}

// ---------------------------------------------------------------------
// Soundness
// ---------------------------------------------------------------------

/** @return true iff the policy met its expectation. */
bool
checkSoundness(const PolicyConfig &policy, bool do_replay,
               JsonValue &out)
{
    const verify::PolicyVerifier verifier;
    const verify::VerifyResult r = verifier.verify(policy);

    std::printf("%-10s %-8s %8llu states %9llu transitions  "
                "diameter %2u  %6.0f ms\n",
                r.policyName.c_str(), r.sound ? "sound" : "UNSOUND",
                static_cast<unsigned long long>(r.numStates),
                static_cast<unsigned long long>(r.numTransitions),
                r.diameter, r.seconds * 1e3);

    out.set("sound", JsonValue::boolean(r.sound));
    out.set("expectedSound",
            JsonValue::boolean(expectedSound(policy)));
    out.set("fixedPointReached",
            JsonValue::boolean(r.fixedPointReached));
    out.set("states", JsonValue::number(r.numStates));
    out.set("transitions", JsonValue::number(r.numTransitions));
    out.set("diameter",
            JsonValue::number(std::uint64_t(r.diameter)));

    if (!r.fixedPointReached) {
        std::printf("  ERROR: state space truncated before fixed "
                    "point\n");
        return false;
    }

    if (expectedSound(policy) && r.sound)
        return true;

    if (!expectedSound(policy) && r.sound) {
        std::printf("  ERROR: the broken policy verified clean — the "
                    "verifier is vacuous\n");
        return false;
    }

    std::printf("  counterexample (%zu events): %s\n"
                "    %s: %s\n",
                r.counterexample.size(),
                verify::traceName(r.counterexample).c_str(),
                verify::violationKindName(r.violation->kind),
                r.violation->detail.c_str());
    out.set("counterexample", traceJson(r.counterexample));
    out.set("violation",
            JsonValue::str(
                verify::violationKindName(r.violation->kind)));

    // Replay every counterexample on the concrete machine: for the
    // broken policy it proves the verifier finds real bugs; for a
    // policy expected sound it distinguishes a genuine implementation
    // bug from an artifact of the abstraction.
    if (do_replay) {
        const verify::TraceReplayer replayer(policy);
        const verify::ReplayResult rr =
            replayer.replay(r.counterexample);
        out.set("replayConfirmed", JsonValue::boolean(rr.violated));
        if (rr.violated)
            std::printf("  replayed on the concrete machine: %llu "
                        "oracle violation(s), first at event %d (%s) "
                        "— confirmed real\n",
                        static_cast<unsigned long long>(
                            rr.violationCount),
                        rr.firstViolationEvent, rr.kind.c_str());
        else
            std::printf("  replayed clean on the concrete machine — "
                        "abstraction artifact?\n");
        if (!expectedSound(policy))
            return rr.violated;
    } else if (!expectedSound(policy)) {
        return true;
    }

    std::printf("  ERROR: expected sound\n");
    return false;
}

// ---------------------------------------------------------------------
// Cost census
// ---------------------------------------------------------------------

bool
checkCost(const PolicyConfig &policy, JsonValue &out)
{
    const verify::CostCensus c = verify::runCostCensus(policy);

    std::printf("  cost: worst step %llu cyc (%s), worst minimal-path "
                "%llu cyc\n"
                "        ops flush/d-purge/i-purge %llu/%llu/%llu  "
                "present/absent %llu/%llu  faults %llu\n",
                static_cast<unsigned long long>(c.worstStepCycles),
                verify::traceName(c.worstStepTrace).c_str(),
                static_cast<unsigned long long>(c.worstPathCycles),
                static_cast<unsigned long long>(c.dataFlushes),
                static_cast<unsigned long long>(c.dataPurges),
                static_cast<unsigned long long>(c.instPurges),
                static_cast<unsigned long long>(c.presentOps),
                static_cast<unsigned long long>(c.absentOps),
                static_cast<unsigned long long>(c.faults));

    out.set("fixedPointReached",
            JsonValue::boolean(c.fixedPointReached));
    out.set("worstStepCycles", JsonValue::number(c.worstStepCycles));
    out.set("worstStepTrace", traceJson(c.worstStepTrace));
    out.set("worstPathCycles", JsonValue::number(c.worstPathCycles));
    out.set("dataFlushes", JsonValue::number(c.dataFlushes));
    out.set("dataPurges", JsonValue::number(c.dataPurges));
    out.set("instPurges", JsonValue::number(c.instPurges));
    out.set("presentOps", JsonValue::number(c.presentOps));
    out.set("absentOps", JsonValue::number(c.absentOps));
    out.set("faults", JsonValue::number(c.faults));

    if (!c.fixedPointReached) {
        std::printf("  ERROR: cost census truncated before fixed "
                    "point\n");
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Necessity
// ---------------------------------------------------------------------

bool
checkNecessity(const PolicyConfig &policy, JsonValue &out)
{
    const verify::NecessityAnalyzer analyzer;
    const verify::NecessityResult r = analyzer.analyze(policy);

    out.set("sound", JsonValue::boolean(r.sound));
    out.set("complete", JsonValue::boolean(r.complete));
    out.set("adversariallyClean",
            JsonValue::boolean(r.adversariallyClean));
    out.set("opsExamined", JsonValue::number(r.opsExamined));
    out.set("redundantOps", JsonValue::number(r.redundantOps));
    out.set("necessaryOps", JsonValue::number(r.necessaryOps));
    out.set("inconclusiveOps", JsonValue::number(r.inconclusiveOps));

    if (!r.sound) {
        // Necessity of ops in an unsound policy is meaningless; only
        // the deliberately broken policy is allowed here.
        std::printf("  necessity: skipped (policy unsound: %s)\n",
                    verify::traceName(r.counterexample).c_str());
        return !expectedSound(policy);
    }

    std::printf("  necessity: %llu ops examined — %llu necessary, "
                "%llu redundant, %llu inconclusive%s\n",
                static_cast<unsigned long long>(r.opsExamined),
                static_cast<unsigned long long>(r.necessaryOps),
                static_cast<unsigned long long>(r.redundantOps),
                static_cast<unsigned long long>(r.inconclusiveOps),
                r.complete ? "" : " (budget exhausted)");

    JsonValue sites = JsonValue::array();
    for (const verify::SiteReport &s : r.sites) {
        JsonValue js = JsonValue::object();
        js.set("site", JsonValue::str(s.site));
        js.set("issued", JsonValue::number(s.issued));
        js.set("redundant", JsonValue::number(s.redundant));
        js.set("necessary", JsonValue::number(s.necessary));
        js.set("inconclusive", JsonValue::number(s.inconclusive));
        js.set("removable", JsonValue::boolean(s.removable()));
        js.set("worstWastedCycles",
               JsonValue::number(s.worstWastedCycles));
        if (s.exemplar) {
            JsonValue ex = JsonValue::object();
            ex.set("prefix", traceJson(s.exemplar->prefix));
            ex.set("event",
                   JsonValue::str(verify::eventName(
                       s.exemplar->event)));
            ex.set("opIndex",
                   JsonValue::number(
                       std::uint64_t(s.exemplar->opIndex)));
            ex.set("op", JsonValue::str(s.exemplar->op.name()));
            ex.set("wastedCycles",
                   JsonValue::number(s.exemplar->wastedCycles));
            js.set("exemplar", std::move(ex));
        }
        sites.push(std::move(js));

        if (s.redundant == 0)
            continue;
        std::printf("    site %-28s issued %6llu  redundant %6llu%s\n",
                    s.site.c_str(),
                    static_cast<unsigned long long>(s.issued),
                    static_cast<unsigned long long>(s.redundant),
                    s.removable() ? "  [site removable]" : "");
        if (s.exemplar) {
            verify::Trace full = s.exemplar->prefix;
            full.push_back(s.exemplar->event);
            std::printf("      e.g. %s issues %s — %llu cycles "
                        "wasted\n",
                        verify::traceName(full).c_str(),
                        s.exemplar->op.name().c_str(),
                        static_cast<unsigned long long>(
                            s.exemplar->wastedCycles));
        }
    }
    out.set("sites", std::move(sites));

    bool ok = true;
    if (!r.complete) {
        std::printf("  ERROR: mutant exploration budget exhausted — "
                    "verdicts below are not all proofs\n");
        ok = false;
    }
    // Gate: a shipping lazy policy must issue no redundant op at all;
    // a shipping classic policy is *expected* to waste per-instance
    // ops (that is the paper's point), but must not retain a call
    // site whose every instance is redundant — such a site is dead
    // code the analyzer proved removable.
    if (policy.pmapKind == PmapKind::Lazy) {
        if (r.redundantOps != 0) {
            std::printf("  ERROR: lazy policy issues %llu provably "
                        "redundant op(s)\n",
                        static_cast<unsigned long long>(
                            r.redundantOps));
            ok = false;
        }
    } else if (r.anyRemovableSite()) {
        std::printf("  ERROR: classic policy has a fully removable "
                    "call site\n");
        ok = false;
    }
    out.set("gatePassed", JsonValue::boolean(ok));
    return ok;
}

// ---------------------------------------------------------------------
// Interleaving exploration
// ---------------------------------------------------------------------

/** Did the fuzzing pass behave as the scenario's expectation and the
 *  exhaustive result allow? Random sampling cannot prove absence, so
 *  the gate is one-sided: clean scenarios must fuzz clean, exhausted
 *  scenarios must yield no trace DPOR missed, and any violating
 *  sample must carry a deterministically replayable schedule. */
bool
fuzzPassed(const vic::mc::FuzzResult &f,
           const vic::mc::Expectation &expect, bool exhausted)
{
    if (expect.violationFree && f.violatingRuns != 0)
        return false;
    if (expect.raceFree && f.reportedRaces() != 0)
        return false;
    if (exhausted && f.newTraces != 0)
        return false;
    if (!f.minimalCounterexample.empty() && !f.replayConfirmed)
        return false;
    return true;
}

bool
checkInterleave(const PolicyConfig &policy, std::uint64_t budget,
                unsigned jobs, vic::mc::MemoryOrder order,
                bool coherence, std::uint64_t fuzz_samples,
                std::uint64_t fuzz_seed, JsonValue &out)
{
    namespace mc = vic::mc;

    if (!expectedSound(policy)) {
        // A policy that deliberately skips consistency maintenance
        // races everywhere; the abstract verifier already owns that
        // counterexample, so the schedule explorer gates only the
        // shipping orderings.
        std::printf("  interleave: skipped (policy is deliberately "
                    "broken)\n");
        out.set("skipped", JsonValue::boolean(true));
        return true;
    }

    mc::ExploreOptions opt;
    opt.budget = budget;
    const std::vector<mc::Scenario> catalog =
        coherence ? mc::coherenceCatalog(policy)
        : order == mc::MemoryOrder::WeakStoreOrder
            ? mc::weakCatalog(policy)
            : mc::standardCatalog(policy);
    const std::vector<mc::ScenarioResult> results =
        mc::exploreMany(catalog, opt, jobs);

    std::vector<mc::FuzzResult> fuzzed;
    if (fuzz_samples > 0) {
        mc::FuzzOptions fopt;
        fopt.samples = fuzz_samples;
        fopt.seed = fuzz_seed;
        std::vector<std::vector<std::uint64_t>> known;
        for (const mc::ScenarioResult &r : results)
            known.push_back(r.canonicalHashes);
        fuzzed = mc::fuzzMany(catalog, fopt, known, jobs);
    }

    bool ok = true;
    JsonValue scenarios = JsonValue::array();
    for (std::size_t i = 0; i < results.size(); ++i) {
        const mc::ScenarioResult &r = results[i];
        const mc::Expectation &expect = catalog[i].expect;
        const bool pass = r.passed(expect);
        ok &= pass;

        std::printf("  interleave %-24s [%-4s] %5llu runs = %llu "
                    "traces  depth %2llu  races %llu(+%llu benign, "
                    "%llu weak-window)  violations %llu  %s\n",
                    r.scenario.c_str(),
                    mc::memoryOrderName(r.memoryOrder),
                    static_cast<unsigned long long>(r.executions),
                    static_cast<unsigned long long>(r.canonicalTraces),
                    static_cast<unsigned long long>(r.maxDepth),
                    static_cast<unsigned long long>(r.reportedRaces()),
                    static_cast<unsigned long long>(r.benignRaces),
                    static_cast<unsigned long long>(
                        r.weakWindowRaces),
                    static_cast<unsigned long long>(r.violatingRuns),
                    pass ? "ok" : "FAIL");
        if (!pass)
            std::printf("    ERROR: %s\n",
                        !r.exhausted
                            ? "budget exhausted before the schedule "
                              "space was covered"
                        : r.deadlock ? "a schedule deadlocked"
                        : expect.wantConfirmedRace
                            ? "expected an oracle-confirmed race with "
                              "a short replayable schedule"
                            : "unexpected race or oracle violation");
        if (expect.wantConfirmedRace &&
            !r.minimalCounterexampleLabels.empty()) {
            std::printf("    minimal schedule (%zu events, replay "
                        "%s):\n",
                        r.minimalCounterexampleLabels.size(),
                        r.replayConfirmed ? "confirmed"
                                          : "NOT confirmed");
            for (const std::string &l :
                 r.minimalCounterexampleLabels)
                std::printf("      %s\n", l.c_str());
        }

        JsonValue js = verify::scenarioResultJson(r, pass);

        if (!fuzzed.empty()) {
            const mc::FuzzResult &f = fuzzed[i];
            const bool fpass = fuzzPassed(f, expect, r.exhausted);
            ok &= fpass;
            std::printf("    fuzz %5llu samples: %llu traces (%llu "
                        "new), %llu end states, violations in %llu, "
                        "races %llu(+%llu benign)  %s\n",
                        static_cast<unsigned long long>(f.samples),
                        static_cast<unsigned long long>(
                            f.canonicalTraces),
                        static_cast<unsigned long long>(f.newTraces),
                        static_cast<unsigned long long>(
                            f.distinctEndStates),
                        static_cast<unsigned long long>(
                            f.violatingRuns),
                        static_cast<unsigned long long>(
                            f.reportedRaces()),
                        static_cast<unsigned long long>(
                            f.benignRaces),
                        fpass ? "ok" : "FAIL");
            if (!fpass)
                std::printf("      ERROR: %s\n",
                            r.exhausted && f.newTraces != 0
                                ? "fuzzer sampled a trace the "
                                  "exhausted DPOR pass never saw"
                                : "fuzzing found an unexpected race "
                                  "or violation");
            js.set("fuzz", verify::fuzzResultJson(f, fpass));
        }

        scenarios.push(std::move(js));
    }
    out.set("budget", JsonValue::number(budget));
    out.set("memoryOrder",
            JsonValue::str(mc::memoryOrderName(order)));
    if (coherence)
        out.set("coherenceCatalog", JsonValue::boolean(true));
    if (fuzz_samples > 0) {
        out.set("fuzzSamples", JsonValue::number(fuzz_samples));
        out.set("fuzzSeed", JsonValue::number(fuzz_seed));
    }
    out.set("scenarios", std::move(scenarios));
    out.set("gatePassed", JsonValue::boolean(ok));
    return ok;
}

// ---------------------------------------------------------------------
// Differential
// ---------------------------------------------------------------------

bool
checkDifferential(const PolicyConfig &a, const PolicyConfig &b,
                  JsonValue &out)
{
    const verify::DifferentialAnalyzer analyzer;
    const verify::DiffResult r = analyzer.compare(a, b);

    out.set("a", JsonValue::str(r.nameA));
    out.set("b", JsonValue::str(r.nameB));
    out.set("comparable", JsonValue::boolean(r.comparable));

    std::printf("\ndifferential %s vs %s:\n", r.nameA.c_str(),
                r.nameB.c_str());
    if (!r.comparable) {
        std::printf("  not comparable: %s is unsound (%s)\n",
                    r.unsoundPolicy.c_str(),
                    verify::traceName(r.unsoundTrace).c_str());
        out.set("unsoundPolicy", JsonValue::str(r.unsoundPolicy));
        out.set("unsoundTrace", traceJson(r.unsoundTrace));
        // Comparing against a broken policy is expected to be
        // rejected; that rejection is the correct behaviour.
        return !expectedSound(a) || !expectedSound(b);
    }

    std::printf("  product: %llu states, %llu transitions%s\n"
                "  %s pays while %s free: %llu transitions; converse: "
                "%llu\n"
                "  worst step %llu vs %llu cyc; worst gap %llu cyc "
                "(%s)\n"
                "  worst minimal-path %llu vs %llu cyc\n",
                static_cast<unsigned long long>(r.productStates),
                static_cast<unsigned long long>(r.productTransitions),
                r.fixedPointReached ? "" : " (TRUNCATED)",
                r.nameA.c_str(), r.nameB.c_str(),
                static_cast<unsigned long long>(r.aPaysBFree),
                static_cast<unsigned long long>(r.bPaysAFree),
                static_cast<unsigned long long>(r.worstStepA),
                static_cast<unsigned long long>(r.worstStepB),
                static_cast<unsigned long long>(r.worstStepGap),
                verify::traceName(r.worstGapTrace).c_str(),
                static_cast<unsigned long long>(r.worstPathA),
                static_cast<unsigned long long>(r.worstPathB));

    std::printf("  per-transition worst-case bounds (cycles):\n"
                "    %-22s %12s %10s %10s\n", "class", "transitions",
                r.nameA.c_str(), r.nameB.c_str());
    JsonValue classes = JsonValue::array();
    for (const verify::DiffClassBound &c : r.classes) {
        std::printf("    %-22s %12llu %10llu %10llu\n",
                    c.label.c_str(),
                    static_cast<unsigned long long>(c.transitions),
                    static_cast<unsigned long long>(c.worstA),
                    static_cast<unsigned long long>(c.worstB));
        JsonValue jc = JsonValue::object();
        jc.set("class", JsonValue::str(c.label));
        jc.set("transitions", JsonValue::number(c.transitions));
        jc.set("worstA", JsonValue::number(c.worstA));
        jc.set("worstB", JsonValue::number(c.worstB));
        classes.push(std::move(jc));
    }
    out.set("productStates", JsonValue::number(r.productStates));
    out.set("productTransitions",
            JsonValue::number(r.productTransitions));
    out.set("aPaysBFree", JsonValue::number(r.aPaysBFree));
    out.set("bPaysAFree", JsonValue::number(r.bPaysAFree));
    out.set("worstStepA", JsonValue::number(r.worstStepA));
    out.set("worstStepB", JsonValue::number(r.worstStepB));
    out.set("worstStepGap", JsonValue::number(r.worstStepGap));
    out.set("worstGapTrace", traceJson(r.worstGapTrace));
    out.set("worstPathA", JsonValue::number(r.worstPathA));
    out.set("worstPathB", JsonValue::number(r.worstPathB));
    out.set("classes", std::move(classes));

    if (!r.fixedPointReached) {
        std::printf("  ERROR: product state space truncated before "
                    "fixed point\n");
        return false;
    }
    return true;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--policy NAME] [--cost] [--necessity]\n"
                 "       [--interleave] [--coherence] "
                 "[--memory-order sc|weak]\n"
                 "       [--fuzz N] [--fuzz-seed S] [--budget N] "
                 "[--jobs N]\n"
                 "       [--diff-policy A B] [--json FILE] "
                 "[--no-replay] [--list]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool do_replay = true;
    bool do_cost = false;
    bool do_necessity = false;
    bool do_interleave = false;
    bool coherence = false;
    std::uint64_t budget = 20000;
    vic::mc::MemoryOrder order = vic::mc::MemoryOrder::SC;
    std::uint64_t fuzz_samples = 0;
    std::uint64_t fuzz_seed = 0x5eed;
    unsigned jobs = 1;
    std::string only;
    std::string json_path;
    std::string diff_a, diff_b;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--no-replay") {
            do_replay = false;
        } else if (arg == "--cost") {
            do_cost = true;
        } else if (arg == "--necessity") {
            do_necessity = true;
        } else if (arg == "--interleave") {
            do_interleave = true;
        } else if (arg == "--coherence") {
            coherence = true;
        } else if (arg == "--memory-order") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--memory-order requires sc|weak\n");
                return usage(argv[0]);
            }
            const std::string mo = argv[++i];
            if (mo == "sc") {
                order = vic::mc::MemoryOrder::SC;
            } else if (mo == "weak") {
                order = vic::mc::MemoryOrder::WeakStoreOrder;
            } else {
                std::fprintf(stderr,
                             "unknown memory order '%s' (sc|weak)\n",
                             mo.c_str());
                return usage(argv[0]);
            }
        } else if (arg == "--fuzz") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--fuzz requires a count\n");
                return usage(argv[0]);
            }
            fuzz_samples = std::strtoull(argv[++i], nullptr, 10);
            if (fuzz_samples == 0) {
                std::fprintf(stderr, "--fuzz must be positive\n");
                return usage(argv[0]);
            }
        } else if (arg == "--fuzz-seed") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--fuzz-seed requires a seed\n");
                return usage(argv[0]);
            }
            fuzz_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--budget") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--budget requires a count\n");
                return usage(argv[0]);
            }
            budget = std::strtoull(argv[++i], nullptr, 10);
            if (budget == 0) {
                std::fprintf(stderr, "--budget must be positive\n");
                return usage(argv[0]);
            }
        } else if (arg == "--jobs") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--jobs requires a count\n");
                return usage(argv[0]);
            }
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            if (jobs == 0) {
                std::fprintf(stderr, "--jobs must be positive\n");
                return usage(argv[0]);
            }
        } else if (arg == "--policy") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--policy requires a name\n");
                return usage(argv[0]);
            }
            only = argv[++i];
        } else if (arg == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json requires a file path\n");
                return usage(argv[0]);
            }
            json_path = argv[++i];
        } else if (arg == "--diff-policy") {
            if (i + 2 >= argc) {
                std::fprintf(stderr,
                             "--diff-policy requires two policy "
                             "names\n");
                return usage(argv[0]);
            }
            diff_a = argv[++i];
            diff_b = argv[++i];
        } else if (arg == "--list") {
            for (const PolicyConfig &p : allPolicies())
                std::printf("%s\n", p.name.c_str());
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }

    const std::vector<PolicyConfig> all = allPolicies();
    if (!only.empty() && findPolicy(all, only) == nullptr) {
        std::fprintf(stderr, "unknown policy '%s' (try --list)\n",
                     only.c_str());
        return 2;
    }
    const PolicyConfig *pa = nullptr;
    const PolicyConfig *pb = nullptr;
    if (!diff_a.empty()) {
        pa = findPolicy(all, diff_a);
        pb = findPolicy(all, diff_b);
        if (pa == nullptr || pb == nullptr) {
            std::fprintf(stderr,
                         "unknown policy '%s' (try --list)\n",
                         (pa == nullptr ? diff_a : diff_b).c_str());
            return 2;
        }
    }

    JsonValue report = JsonValue::object();
    report.set("schema",
               JsonValue::str(verify::kVerifyReportSchemaV4));
    report.set("machine", JsonValue::str("hp720"));
    JsonValue policies = JsonValue::array();

    bool all_ok = true;
    for (const PolicyConfig &p : all) {
        if (!only.empty() && p.name != only)
            continue;
        JsonValue jp = JsonValue::object();
        jp.set("name", JsonValue::str(p.name));
        bool ok = checkSoundness(p, do_replay, jp);
        if (do_cost) {
            JsonValue jc = JsonValue::object();
            ok &= checkCost(p, jc);
            jp.set("cost", std::move(jc));
        }
        if (do_necessity) {
            JsonValue jn = JsonValue::object();
            ok &= checkNecessity(p, jn);
            jp.set("necessity", std::move(jn));
        }
        if (do_interleave) {
            JsonValue ji = JsonValue::object();
            ok &= checkInterleave(p, budget, jobs, order, coherence,
                                  fuzz_samples, fuzz_seed, ji);
            jp.set("interleave", std::move(ji));
        }
        jp.set("ok", JsonValue::boolean(ok));
        policies.push(std::move(jp));
        all_ok &= ok;
    }
    report.set("policies", std::move(policies));

    if (pa != nullptr) {
        JsonValue jd = JsonValue::object();
        all_ok &= checkDifferential(*pa, *pb, jd);
        report.set("differential", std::move(jd));
    }

    report.set("ok", JsonValue::boolean(all_ok));
    if (!json_path.empty()) {
        std::ofstream f(json_path);
        if (!f) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            return 2;
        }
        f << report.dump(2) << '\n';
        std::printf("\nreport written to %s\n", json_path.c_str());
    }

    std::printf("\nverify_policy: %s\n",
                all_ok ? "all policies behave as expected"
                       : "FAILURES detected");
    return all_ok ? 0 : 1;
}
