/**
 * @file
 * Protocol lint: statically verify every shipping consistency policy.
 *
 * For each Table 4 configuration and Table 5 system, exhaustively
 * explores the abstract protocol state machine to a fixed point and
 * checks the paper's invariants; the deliberately broken policy must
 * instead yield a minimal counterexample trace that reproduces a
 * ConsistencyOracle violation when replayed on the concrete machine.
 *
 * Exit status 0 iff every expectation holds, so CI can gate on it.
 *
 * Usage:
 *   verify_policy              lint all policies (shipping + broken)
 *   verify_policy --policy N   verify only the named policy
 *   verify_policy --no-replay  skip the concrete replay step
 *   verify_policy --list       list known policy names
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/policy_config.hh"
#include "verify/policy_verifier.hh"
#include "verify/trace_replay.hh"

namespace
{

using vic::PolicyConfig;
namespace verify = vic::verify;

std::vector<PolicyConfig>
allPolicies()
{
    std::vector<PolicyConfig> all = PolicyConfig::table4Sweep();
    for (const PolicyConfig &p : PolicyConfig::table5Systems())
        all.push_back(p);
    all.push_back(PolicyConfig::broken());
    return all;
}

bool
expectedSound(const PolicyConfig &p)
{
    return !p.brokenNoConsistency;
}

/** @return true iff the policy met its expectation. */
bool
checkPolicy(const PolicyConfig &policy, bool do_replay)
{
    const verify::PolicyVerifier verifier;
    const verify::VerifyResult r = verifier.verify(policy);

    std::printf("%-10s %-8s %8llu states %9llu transitions  "
                "diameter %2u  %6.0f ms\n",
                r.policyName.c_str(), r.sound ? "sound" : "UNSOUND",
                static_cast<unsigned long long>(r.numStates),
                static_cast<unsigned long long>(r.numTransitions),
                r.diameter, r.seconds * 1e3);

    if (!r.fixedPointReached) {
        std::printf("  ERROR: state space truncated before fixed "
                    "point\n");
        return false;
    }

    if (expectedSound(policy) && r.sound)
        return true;

    if (!expectedSound(policy) && r.sound) {
        std::printf("  ERROR: the broken policy verified clean — the "
                    "verifier is vacuous\n");
        return false;
    }

    std::printf("  counterexample (%zu events): %s\n"
                "    %s: %s\n",
                r.counterexample.size(),
                verify::traceName(r.counterexample).c_str(),
                verify::violationKindName(r.violation->kind),
                r.violation->detail.c_str());

    // Replay every counterexample on the concrete machine: for the
    // broken policy it proves the verifier finds real bugs; for a
    // policy expected sound it distinguishes a genuine implementation
    // bug from an artifact of the abstraction.
    if (do_replay) {
        const verify::TraceReplayer replayer(policy);
        const verify::ReplayResult rr =
            replayer.replay(r.counterexample);
        if (rr.violated)
            std::printf("  replayed on the concrete machine: %llu "
                        "oracle violation(s), first at event %d (%s) "
                        "— confirmed real\n",
                        static_cast<unsigned long long>(
                            rr.violationCount),
                        rr.firstViolationEvent, rr.kind.c_str());
        else
            std::printf("  replayed clean on the concrete machine — "
                        "abstraction artifact?\n");
        if (!expectedSound(policy))
            return rr.violated;
    } else if (!expectedSound(policy)) {
        return true;
    }

    std::printf("  ERROR: expected sound\n");
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    bool do_replay = true;
    std::string only;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--no-replay") {
            do_replay = false;
        } else if (arg == "--policy" && i + 1 < argc) {
            only = argv[++i];
        } else if (arg == "--list") {
            for (const PolicyConfig &p : allPolicies())
                std::printf("%s\n", p.name.c_str());
            return 0;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--policy NAME] [--no-replay] "
                         "[--list]\n",
                         argv[0]);
            return 2;
        }
    }

    bool all_ok = true;
    bool matched = false;
    for (const PolicyConfig &p : allPolicies()) {
        if (!only.empty() && p.name != only)
            continue;
        matched = true;
        all_ok &= checkPolicy(p, do_replay);
    }
    if (!matched) {
        std::fprintf(stderr, "unknown policy '%s' (try --list)\n",
                     only.c_str());
        return 2;
    }

    std::printf("\nverify_policy: %s\n",
                all_ok ? "all policies behave as expected"
                       : "FAILURES detected");
    return all_ok ? 0 : 1;
}
