/**
 * @file
 * vic_lint — the repo's static analyzer.
 *
 *   vic_lint [--root DIR] [--pass NAME]... [--json FILE]
 *            [--sarif FILE] [--list-rules]
 *
 * Runs the seven invariant passes (determinism, drain, addr-kind,
 * spec, counter, counter-liveness, layering) over the tree at --root
 * (default: the current directory), prints one
 * "file:line:col: rule: message" line per diagnostic, and optionally
 * writes the deterministic "vic-lint-report-v2" JSON artifact and/or
 * a SARIF 2.1.0 document for CI annotators.
 *
 * Exit status: 0 clean, 1 diagnostics found, 2 usage/IO error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/linter.hh"
#include "analysis/sarif.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--pass NAME]... [--json FILE]\n"
        "          [--sarif FILE]\n"
        "       %s --list-rules\n"
        "\n"
        "Passes (default: all):\n",
        argv0, argv0);
    for (const auto &pass : vic::analysis::makeAllPasses())
        std::fprintf(stderr, "  %-12s %s\n", pass->name(),
                     pass->summary());
    return 2;
}

int
listRules()
{
    for (const auto &pass : vic::analysis::makeAllPasses()) {
        std::printf("%s: %s\n", pass->name(), pass->summary());
        for (const vic::analysis::RuleInfo &r : pass->rules())
            std::printf("  %-20s %s\n", r.id, r.summary);
    }
    std::printf("(always on)\n");
    std::printf("  %-20s %s\n",
                vic::analysis::kRuleSuppressUndocumented,
                "a vic-lint: allow() without a reason");
    std::printf("  %-20s %s\n", vic::analysis::kRuleSuppressUnused,
                "a vic-lint: allow() that silences nothing");
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string json_path;
    std::string sarif_path;
    std::vector<std::string> passes;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (std::strcmp(arg, "--root") == 0) {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            root = v;
        } else if (std::strcmp(arg, "--pass") == 0) {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            passes.push_back(v);
        } else if (std::strcmp(arg, "--json") == 0) {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            json_path = v;
        } else if (std::strcmp(arg, "--sarif") == 0) {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            sarif_path = v;
        } else if (std::strcmp(arg, "--list-rules") == 0) {
            return listRules();
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         argv[0], arg);
            return usage(argv[0]);
        }
    }

    // Validate --pass names against the registry up front.
    for (const std::string &p : passes) {
        bool known = false;
        for (const auto &pass : vic::analysis::makeAllPasses())
            known = known || p == pass->name();
        if (!known) {
            std::fprintf(stderr, "%s: unknown pass '%s'\n", argv[0],
                         p.c_str());
            return usage(argv[0]);
        }
    }

    vic::analysis::LintReport report;
    try {
        report = vic::analysis::runLint(root, passes);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 2;
    }
    if (report.filesScanned == 0) {
        std::fprintf(stderr,
                     "%s: no .cc/.hh files under '%s' — wrong "
                     "--root?\n",
                     argv[0], root.c_str());
        return 2;
    }

    for (const std::string &line : report.renderLines())
        std::printf("%s\n", line.c_str());

    if (!json_path.empty()) {
        std::ofstream out(json_path,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0],
                         json_path.c_str());
            return 2;
        }
        out << report.toJson().dump(2) << '\n';
    }

    if (!sarif_path.empty()) {
        std::ofstream out(sarif_path,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0],
                         sarif_path.c_str());
            return 2;
        }
        out << vic::analysis::sarifReport(report).dump(2) << '\n';
    }

    std::size_t used = 0;
    for (const auto &s : report.suppressions)
        used += s.used ? 1 : 0;
    std::fprintf(stderr,
                 "vic_lint: %zu file(s), %zu pass(es), %zu "
                 "diagnostic(s), %zu suppression(s) in use\n",
                 report.filesScanned, report.passesRun.size(),
                 report.diagnostics.size(), used);
    return report.clean() ? 0 : 1;
}
