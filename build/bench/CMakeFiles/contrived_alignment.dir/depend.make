# Empty dependencies file for contrived_alignment.
# This may be replaced when dependencies are built.
