file(REMOVE_RECURSE
  "CMakeFiles/contrived_alignment.dir/contrived_alignment.cc.o"
  "CMakeFiles/contrived_alignment.dir/contrived_alignment.cc.o.d"
  "contrived_alignment"
  "contrived_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contrived_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
