file(REMOVE_RECURSE
  "CMakeFiles/table4_configurations.dir/table4_configurations.cc.o"
  "CMakeFiles/table4_configurations.dir/table4_configurations.cc.o.d"
  "table4_configurations"
  "table4_configurations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_configurations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
