# Empty dependencies file for table4_configurations.
# This may be replaced when dependencies are built.
