file(REMOVE_RECURSE
  "CMakeFiles/ablation_shared_db.dir/ablation_shared_db.cc.o"
  "CMakeFiles/ablation_shared_db.dir/ablation_shared_db.cc.o.d"
  "ablation_shared_db"
  "ablation_shared_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shared_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
