# Empty compiler generated dependencies file for ablation_shared_db.
# This may be replaced when dependencies are built.
