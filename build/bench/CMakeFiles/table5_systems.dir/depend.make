# Empty dependencies file for table5_systems.
# This may be replaced when dependencies are built.
