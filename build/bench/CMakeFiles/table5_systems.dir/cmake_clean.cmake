file(REMOVE_RECURSE
  "CMakeFiles/table5_systems.dir/table5_systems.cc.o"
  "CMakeFiles/table5_systems.dir/table5_systems.cc.o.d"
  "table5_systems"
  "table5_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
