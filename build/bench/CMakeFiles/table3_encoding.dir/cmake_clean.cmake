file(REMOVE_RECURSE
  "CMakeFiles/table3_encoding.dir/table3_encoding.cc.o"
  "CMakeFiles/table3_encoding.dir/table3_encoding.cc.o.d"
  "table3_encoding"
  "table3_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
