# Empty dependencies file for table3_encoding.
# This may be replaced when dependencies are built.
