# Empty compiler generated dependencies file for ablation_fast_purge.
# This may be replaced when dependencies are built.
