file(REMOVE_RECURSE
  "CMakeFiles/ablation_fast_purge.dir/ablation_fast_purge.cc.o"
  "CMakeFiles/ablation_fast_purge.dir/ablation_fast_purge.cc.o.d"
  "ablation_fast_purge"
  "ablation_fast_purge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fast_purge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
