file(REMOVE_RECURSE
  "CMakeFiles/ablation_page_color.dir/ablation_page_color.cc.o"
  "CMakeFiles/ablation_page_color.dir/ablation_page_color.cc.o.d"
  "ablation_page_color"
  "ablation_page_color.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_page_color.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
