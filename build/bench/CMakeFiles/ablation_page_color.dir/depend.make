# Empty dependencies file for ablation_page_color.
# This may be replaced when dependencies are built.
