file(REMOVE_RECURSE
  "CMakeFiles/table1_old_vs_new.dir/table1_old_vs_new.cc.o"
  "CMakeFiles/table1_old_vs_new.dir/table1_old_vs_new.cc.o.d"
  "table1_old_vs_new"
  "table1_old_vs_new.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_old_vs_new.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
