# Empty dependencies file for shared_memory_ipc.
# This may be replaced when dependencies are built.
