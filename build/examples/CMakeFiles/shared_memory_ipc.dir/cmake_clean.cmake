file(REMOVE_RECURSE
  "CMakeFiles/shared_memory_ipc.dir/shared_memory_ipc.cc.o"
  "CMakeFiles/shared_memory_ipc.dir/shared_memory_ipc.cc.o.d"
  "shared_memory_ipc"
  "shared_memory_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_memory_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
