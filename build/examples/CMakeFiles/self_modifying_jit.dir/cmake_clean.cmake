file(REMOVE_RECURSE
  "CMakeFiles/self_modifying_jit.dir/self_modifying_jit.cc.o"
  "CMakeFiles/self_modifying_jit.dir/self_modifying_jit.cc.o.d"
  "self_modifying_jit"
  "self_modifying_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_modifying_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
