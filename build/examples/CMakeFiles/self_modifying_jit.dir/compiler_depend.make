# Empty compiler generated dependencies file for self_modifying_jit.
# This may be replaced when dependencies are built.
