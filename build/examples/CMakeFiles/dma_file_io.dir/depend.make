# Empty dependencies file for dma_file_io.
# This may be replaced when dependencies are built.
