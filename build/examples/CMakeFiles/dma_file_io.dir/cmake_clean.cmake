file(REMOVE_RECURSE
  "CMakeFiles/dma_file_io.dir/dma_file_io.cc.o"
  "CMakeFiles/dma_file_io.dir/dma_file_io.cc.o.d"
  "dma_file_io"
  "dma_file_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dma_file_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
