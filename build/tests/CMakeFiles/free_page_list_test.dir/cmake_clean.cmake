file(REMOVE_RECURSE
  "CMakeFiles/free_page_list_test.dir/free_page_list_test.cc.o"
  "CMakeFiles/free_page_list_test.dir/free_page_list_test.cc.o.d"
  "free_page_list_test"
  "free_page_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/free_page_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
