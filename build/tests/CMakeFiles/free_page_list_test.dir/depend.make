# Empty dependencies file for free_page_list_test.
# This may be replaced when dependencies are built.
