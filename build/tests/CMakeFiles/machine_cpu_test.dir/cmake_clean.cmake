file(REMOVE_RECURSE
  "CMakeFiles/machine_cpu_test.dir/machine_cpu_test.cc.o"
  "CMakeFiles/machine_cpu_test.dir/machine_cpu_test.cc.o.d"
  "machine_cpu_test"
  "machine_cpu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
