file(REMOVE_RECURSE
  "CMakeFiles/address_space_test.dir/address_space_test.cc.o"
  "CMakeFiles/address_space_test.dir/address_space_test.cc.o.d"
  "address_space_test"
  "address_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
