file(REMOVE_RECURSE
  "CMakeFiles/multiprocessor_test.dir/multiprocessor_test.cc.o"
  "CMakeFiles/multiprocessor_test.dir/multiprocessor_test.cc.o.d"
  "multiprocessor_test"
  "multiprocessor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocessor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
