# Empty dependencies file for multiprocessor_test.
# This may be replaced when dependencies are built.
