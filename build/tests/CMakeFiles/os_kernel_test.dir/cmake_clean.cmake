file(REMOVE_RECURSE
  "CMakeFiles/os_kernel_test.dir/os_kernel_test.cc.o"
  "CMakeFiles/os_kernel_test.dir/os_kernel_test.cc.o.d"
  "os_kernel_test"
  "os_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
