# Empty dependencies file for bounded_model_check_test.
# This may be replaced when dependencies are built.
