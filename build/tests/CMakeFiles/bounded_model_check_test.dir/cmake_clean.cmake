file(REMOVE_RECURSE
  "CMakeFiles/bounded_model_check_test.dir/bounded_model_check_test.cc.o"
  "CMakeFiles/bounded_model_check_test.dir/bounded_model_check_test.cc.o.d"
  "bounded_model_check_test"
  "bounded_model_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_model_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
