# Empty compiler generated dependencies file for pageout_test.
# This may be replaced when dependencies are built.
