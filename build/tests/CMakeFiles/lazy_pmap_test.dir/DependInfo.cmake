
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lazy_pmap_test.cc" "tests/CMakeFiles/lazy_pmap_test.dir/lazy_pmap_test.cc.o" "gcc" "tests/CMakeFiles/lazy_pmap_test.dir/lazy_pmap_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/vic_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/vic_os.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/vic_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/vic_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/vic_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/vic_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/vic_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/vic_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vic_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
