file(REMOVE_RECURSE
  "CMakeFiles/lazy_pmap_test.dir/lazy_pmap_test.cc.o"
  "CMakeFiles/lazy_pmap_test.dir/lazy_pmap_test.cc.o.d"
  "lazy_pmap_test"
  "lazy_pmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_pmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
