# Empty dependencies file for lazy_pmap_test.
# This may be replaced when dependencies are built.
