file(REMOVE_RECURSE
  "CMakeFiles/cache_geometry_test.dir/cache_geometry_test.cc.o"
  "CMakeFiles/cache_geometry_test.dir/cache_geometry_test.cc.o.d"
  "cache_geometry_test"
  "cache_geometry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
