# Empty dependencies file for page_preparer_test.
# This may be replaced when dependencies are built.
