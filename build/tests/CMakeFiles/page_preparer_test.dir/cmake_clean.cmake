file(REMOVE_RECURSE
  "CMakeFiles/page_preparer_test.dir/page_preparer_test.cc.o"
  "CMakeFiles/page_preparer_test.dir/page_preparer_test.cc.o.d"
  "page_preparer_test"
  "page_preparer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_preparer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
