file(REMOVE_RECURSE
  "CMakeFiles/physical_memory_test.dir/physical_memory_test.cc.o"
  "CMakeFiles/physical_memory_test.dir/physical_memory_test.cc.o.d"
  "physical_memory_test"
  "physical_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physical_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
