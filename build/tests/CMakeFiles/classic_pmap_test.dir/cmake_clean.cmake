file(REMOVE_RECURSE
  "CMakeFiles/classic_pmap_test.dir/classic_pmap_test.cc.o"
  "CMakeFiles/classic_pmap_test.dir/classic_pmap_test.cc.o.d"
  "classic_pmap_test"
  "classic_pmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classic_pmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
