# Empty dependencies file for classic_pmap_test.
# This may be replaced when dependencies are built.
