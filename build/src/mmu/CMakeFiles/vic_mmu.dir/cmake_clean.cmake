file(REMOVE_RECURSE
  "CMakeFiles/vic_mmu.dir/page_table.cc.o"
  "CMakeFiles/vic_mmu.dir/page_table.cc.o.d"
  "libvic_mmu.a"
  "libvic_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vic_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
