# Empty compiler generated dependencies file for vic_mmu.
# This may be replaced when dependencies are built.
