file(REMOVE_RECURSE
  "libvic_mmu.a"
)
