file(REMOVE_RECURSE
  "CMakeFiles/vic_os.dir/address_space.cc.o"
  "CMakeFiles/vic_os.dir/address_space.cc.o.d"
  "CMakeFiles/vic_os.dir/buffer_cache.cc.o"
  "CMakeFiles/vic_os.dir/buffer_cache.cc.o.d"
  "CMakeFiles/vic_os.dir/file_system.cc.o"
  "CMakeFiles/vic_os.dir/file_system.cc.o.d"
  "CMakeFiles/vic_os.dir/kernel.cc.o"
  "CMakeFiles/vic_os.dir/kernel.cc.o.d"
  "CMakeFiles/vic_os.dir/page_preparer.cc.o"
  "CMakeFiles/vic_os.dir/page_preparer.cc.o.d"
  "CMakeFiles/vic_os.dir/pageout.cc.o"
  "CMakeFiles/vic_os.dir/pageout.cc.o.d"
  "CMakeFiles/vic_os.dir/vm_object.cc.o"
  "CMakeFiles/vic_os.dir/vm_object.cc.o.d"
  "libvic_os.a"
  "libvic_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vic_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
