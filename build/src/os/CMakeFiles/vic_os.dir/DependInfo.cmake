
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/address_space.cc" "src/os/CMakeFiles/vic_os.dir/address_space.cc.o" "gcc" "src/os/CMakeFiles/vic_os.dir/address_space.cc.o.d"
  "/root/repo/src/os/buffer_cache.cc" "src/os/CMakeFiles/vic_os.dir/buffer_cache.cc.o" "gcc" "src/os/CMakeFiles/vic_os.dir/buffer_cache.cc.o.d"
  "/root/repo/src/os/file_system.cc" "src/os/CMakeFiles/vic_os.dir/file_system.cc.o" "gcc" "src/os/CMakeFiles/vic_os.dir/file_system.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/vic_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/vic_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/page_preparer.cc" "src/os/CMakeFiles/vic_os.dir/page_preparer.cc.o" "gcc" "src/os/CMakeFiles/vic_os.dir/page_preparer.cc.o.d"
  "/root/repo/src/os/pageout.cc" "src/os/CMakeFiles/vic_os.dir/pageout.cc.o" "gcc" "src/os/CMakeFiles/vic_os.dir/pageout.cc.o.d"
  "/root/repo/src/os/vm_object.cc" "src/os/CMakeFiles/vic_os.dir/vm_object.cc.o" "gcc" "src/os/CMakeFiles/vic_os.dir/vm_object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/vic_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/vic_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/vic_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/vic_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/vic_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vic_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
