file(REMOVE_RECURSE
  "libvic_os.a"
)
