# Empty dependencies file for vic_os.
# This may be replaced when dependencies are built.
