# Empty compiler generated dependencies file for vic_mem.
# This may be replaced when dependencies are built.
