file(REMOVE_RECURSE
  "libvic_mem.a"
)
