file(REMOVE_RECURSE
  "CMakeFiles/vic_mem.dir/free_page_list.cc.o"
  "CMakeFiles/vic_mem.dir/free_page_list.cc.o.d"
  "CMakeFiles/vic_mem.dir/physical_memory.cc.o"
  "CMakeFiles/vic_mem.dir/physical_memory.cc.o.d"
  "libvic_mem.a"
  "libvic_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vic_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
