file(REMOVE_RECURSE
  "libvic_machine.a"
)
