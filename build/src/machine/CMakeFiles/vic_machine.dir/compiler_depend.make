# Empty compiler generated dependencies file for vic_machine.
# This may be replaced when dependencies are built.
