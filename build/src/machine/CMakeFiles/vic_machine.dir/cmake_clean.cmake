file(REMOVE_RECURSE
  "CMakeFiles/vic_machine.dir/cpu.cc.o"
  "CMakeFiles/vic_machine.dir/cpu.cc.o.d"
  "CMakeFiles/vic_machine.dir/machine.cc.o"
  "CMakeFiles/vic_machine.dir/machine.cc.o.d"
  "CMakeFiles/vic_machine.dir/machine_params.cc.o"
  "CMakeFiles/vic_machine.dir/machine_params.cc.o.d"
  "libvic_machine.a"
  "libvic_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vic_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
