# Empty dependencies file for vic_common.
# This may be replaced when dependencies are built.
