file(REMOVE_RECURSE
  "libvic_common.a"
)
