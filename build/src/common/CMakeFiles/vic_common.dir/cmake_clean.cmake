file(REMOVE_RECURSE
  "CMakeFiles/vic_common.dir/bitvector.cc.o"
  "CMakeFiles/vic_common.dir/bitvector.cc.o.d"
  "CMakeFiles/vic_common.dir/logging.cc.o"
  "CMakeFiles/vic_common.dir/logging.cc.o.d"
  "CMakeFiles/vic_common.dir/random.cc.o"
  "CMakeFiles/vic_common.dir/random.cc.o.d"
  "CMakeFiles/vic_common.dir/stats.cc.o"
  "CMakeFiles/vic_common.dir/stats.cc.o.d"
  "CMakeFiles/vic_common.dir/table.cc.o"
  "CMakeFiles/vic_common.dir/table.cc.o.d"
  "CMakeFiles/vic_common.dir/types.cc.o"
  "CMakeFiles/vic_common.dir/types.cc.o.d"
  "libvic_common.a"
  "libvic_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vic_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
