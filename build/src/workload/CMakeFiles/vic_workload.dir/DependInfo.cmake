
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/afs_bench.cc" "src/workload/CMakeFiles/vic_workload.dir/afs_bench.cc.o" "gcc" "src/workload/CMakeFiles/vic_workload.dir/afs_bench.cc.o.d"
  "/root/repo/src/workload/contrived_alias.cc" "src/workload/CMakeFiles/vic_workload.dir/contrived_alias.cc.o" "gcc" "src/workload/CMakeFiles/vic_workload.dir/contrived_alias.cc.o.d"
  "/root/repo/src/workload/db_server.cc" "src/workload/CMakeFiles/vic_workload.dir/db_server.cc.o" "gcc" "src/workload/CMakeFiles/vic_workload.dir/db_server.cc.o.d"
  "/root/repo/src/workload/kernel_build.cc" "src/workload/CMakeFiles/vic_workload.dir/kernel_build.cc.o" "gcc" "src/workload/CMakeFiles/vic_workload.dir/kernel_build.cc.o.d"
  "/root/repo/src/workload/latex_bench.cc" "src/workload/CMakeFiles/vic_workload.dir/latex_bench.cc.o" "gcc" "src/workload/CMakeFiles/vic_workload.dir/latex_bench.cc.o.d"
  "/root/repo/src/workload/multiprog.cc" "src/workload/CMakeFiles/vic_workload.dir/multiprog.cc.o" "gcc" "src/workload/CMakeFiles/vic_workload.dir/multiprog.cc.o.d"
  "/root/repo/src/workload/runner.cc" "src/workload/CMakeFiles/vic_workload.dir/runner.cc.o" "gcc" "src/workload/CMakeFiles/vic_workload.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/vic_os.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/vic_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/vic_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/vic_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/vic_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/vic_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/vic_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vic_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
