# Empty compiler generated dependencies file for vic_workload.
# This may be replaced when dependencies are built.
