file(REMOVE_RECURSE
  "CMakeFiles/vic_workload.dir/afs_bench.cc.o"
  "CMakeFiles/vic_workload.dir/afs_bench.cc.o.d"
  "CMakeFiles/vic_workload.dir/contrived_alias.cc.o"
  "CMakeFiles/vic_workload.dir/contrived_alias.cc.o.d"
  "CMakeFiles/vic_workload.dir/db_server.cc.o"
  "CMakeFiles/vic_workload.dir/db_server.cc.o.d"
  "CMakeFiles/vic_workload.dir/kernel_build.cc.o"
  "CMakeFiles/vic_workload.dir/kernel_build.cc.o.d"
  "CMakeFiles/vic_workload.dir/latex_bench.cc.o"
  "CMakeFiles/vic_workload.dir/latex_bench.cc.o.d"
  "CMakeFiles/vic_workload.dir/multiprog.cc.o"
  "CMakeFiles/vic_workload.dir/multiprog.cc.o.d"
  "CMakeFiles/vic_workload.dir/runner.cc.o"
  "CMakeFiles/vic_workload.dir/runner.cc.o.d"
  "libvic_workload.a"
  "libvic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
