file(REMOVE_RECURSE
  "libvic_workload.a"
)
