file(REMOVE_RECURSE
  "libvic_oracle.a"
)
