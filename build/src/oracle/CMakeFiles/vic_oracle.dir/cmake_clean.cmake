file(REMOVE_RECURSE
  "CMakeFiles/vic_oracle.dir/consistency_oracle.cc.o"
  "CMakeFiles/vic_oracle.dir/consistency_oracle.cc.o.d"
  "libvic_oracle.a"
  "libvic_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vic_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
