# Empty dependencies file for vic_oracle.
# This may be replaced when dependencies are built.
