# Empty compiler generated dependencies file for vic_cache.
# This may be replaced when dependencies are built.
