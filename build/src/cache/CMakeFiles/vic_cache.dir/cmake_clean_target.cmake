file(REMOVE_RECURSE
  "libvic_cache.a"
)
