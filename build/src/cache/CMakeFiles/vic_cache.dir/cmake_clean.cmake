file(REMOVE_RECURSE
  "CMakeFiles/vic_cache.dir/cache.cc.o"
  "CMakeFiles/vic_cache.dir/cache.cc.o.d"
  "CMakeFiles/vic_cache.dir/cache_geometry.cc.o"
  "CMakeFiles/vic_cache.dir/cache_geometry.cc.o.d"
  "libvic_cache.a"
  "libvic_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vic_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
