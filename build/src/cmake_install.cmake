# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/common/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/mem/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cache/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/tlb/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/mmu/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/dma/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/machine/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/core/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/oracle/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/os/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/workload/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/common/libvic_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/mem/libvic_mem.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/cache/libvic_cache.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/tlb/libvic_tlb.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/mmu/libvic_mmu.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/dma/libvic_dma.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/machine/libvic_machine.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libvic_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/oracle/libvic_oracle.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/os/libvic_os.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/workload/libvic_workload.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/vic" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hh$")
endif()

