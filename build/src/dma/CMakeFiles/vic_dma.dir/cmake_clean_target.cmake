file(REMOVE_RECURSE
  "libvic_dma.a"
)
