
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dma/disk.cc" "src/dma/CMakeFiles/vic_dma.dir/disk.cc.o" "gcc" "src/dma/CMakeFiles/vic_dma.dir/disk.cc.o.d"
  "/root/repo/src/dma/dma_engine.cc" "src/dma/CMakeFiles/vic_dma.dir/dma_engine.cc.o" "gcc" "src/dma/CMakeFiles/vic_dma.dir/dma_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/vic_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vic_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
