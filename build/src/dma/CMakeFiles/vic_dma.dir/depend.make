# Empty dependencies file for vic_dma.
# This may be replaced when dependencies are built.
