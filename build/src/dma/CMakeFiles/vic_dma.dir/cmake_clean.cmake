file(REMOVE_RECURSE
  "CMakeFiles/vic_dma.dir/disk.cc.o"
  "CMakeFiles/vic_dma.dir/disk.cc.o.d"
  "CMakeFiles/vic_dma.dir/dma_engine.cc.o"
  "CMakeFiles/vic_dma.dir/dma_engine.cc.o.d"
  "libvic_dma.a"
  "libvic_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vic_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
