file(REMOVE_RECURSE
  "CMakeFiles/vic_tlb.dir/tlb.cc.o"
  "CMakeFiles/vic_tlb.dir/tlb.cc.o.d"
  "libvic_tlb.a"
  "libvic_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vic_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
