# Empty dependencies file for vic_tlb.
# This may be replaced when dependencies are built.
