file(REMOVE_RECURSE
  "libvic_tlb.a"
)
