file(REMOVE_RECURSE
  "CMakeFiles/vic_core.dir/cache_page_state.cc.o"
  "CMakeFiles/vic_core.dir/cache_page_state.cc.o.d"
  "CMakeFiles/vic_core.dir/classic_pmap.cc.o"
  "CMakeFiles/vic_core.dir/classic_pmap.cc.o.d"
  "CMakeFiles/vic_core.dir/lazy_pmap.cc.o"
  "CMakeFiles/vic_core.dir/lazy_pmap.cc.o.d"
  "CMakeFiles/vic_core.dir/phys_page_info.cc.o"
  "CMakeFiles/vic_core.dir/phys_page_info.cc.o.d"
  "CMakeFiles/vic_core.dir/pmap.cc.o"
  "CMakeFiles/vic_core.dir/pmap.cc.o.d"
  "CMakeFiles/vic_core.dir/policy_config.cc.o"
  "CMakeFiles/vic_core.dir/policy_config.cc.o.d"
  "CMakeFiles/vic_core.dir/spec_executor.cc.o"
  "CMakeFiles/vic_core.dir/spec_executor.cc.o.d"
  "libvic_core.a"
  "libvic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
