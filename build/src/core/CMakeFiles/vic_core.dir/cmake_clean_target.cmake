file(REMOVE_RECURSE
  "libvic_core.a"
)
