# Empty compiler generated dependencies file for vic_core.
# This may be replaced when dependencies are built.
