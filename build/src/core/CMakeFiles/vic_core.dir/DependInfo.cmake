
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_page_state.cc" "src/core/CMakeFiles/vic_core.dir/cache_page_state.cc.o" "gcc" "src/core/CMakeFiles/vic_core.dir/cache_page_state.cc.o.d"
  "/root/repo/src/core/classic_pmap.cc" "src/core/CMakeFiles/vic_core.dir/classic_pmap.cc.o" "gcc" "src/core/CMakeFiles/vic_core.dir/classic_pmap.cc.o.d"
  "/root/repo/src/core/lazy_pmap.cc" "src/core/CMakeFiles/vic_core.dir/lazy_pmap.cc.o" "gcc" "src/core/CMakeFiles/vic_core.dir/lazy_pmap.cc.o.d"
  "/root/repo/src/core/phys_page_info.cc" "src/core/CMakeFiles/vic_core.dir/phys_page_info.cc.o" "gcc" "src/core/CMakeFiles/vic_core.dir/phys_page_info.cc.o.d"
  "/root/repo/src/core/pmap.cc" "src/core/CMakeFiles/vic_core.dir/pmap.cc.o" "gcc" "src/core/CMakeFiles/vic_core.dir/pmap.cc.o.d"
  "/root/repo/src/core/policy_config.cc" "src/core/CMakeFiles/vic_core.dir/policy_config.cc.o" "gcc" "src/core/CMakeFiles/vic_core.dir/policy_config.cc.o.d"
  "/root/repo/src/core/spec_executor.cc" "src/core/CMakeFiles/vic_core.dir/spec_executor.cc.o" "gcc" "src/core/CMakeFiles/vic_core.dir/spec_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/vic_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/vic_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/vic_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/vic_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/vic_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vic_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
