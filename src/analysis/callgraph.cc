#include "analysis/callgraph.hh"

#include <algorithm>

#include "analysis/cpp_scan.hh"

namespace vic::analysis
{
namespace
{

bool
isQualifierIdent(const Token &t)
{
    return t.kind == TokKind::Ident &&
           (t.text == "const" || t.text == "noexcept" ||
            t.text == "override" || t.text == "final");
}

bool
isControlKeyword(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "catch" || s == "return" || s == "sizeof";
}

/** Previous non-comment token index, or toks.size() when none. */
std::size_t
prevCode(const std::vector<Token> &toks, std::size_t i)
{
    while (i > 0) {
        --i;
        if (toks[i].kind != TokKind::Comment)
            return i;
    }
    return toks.size();
}

/** Given @p i at a ')', index of its matching '(' walking backwards;
 *  toks.size() when unbalanced. */
std::size_t
matchBackParen(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i + 1; j-- > 0;) {
        if (toks[j].kind != TokKind::Punct)
            continue;
        if (toks[j].text == ")")
            ++depth;
        else if (toks[j].text == "(") {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return toks.size();
}

/** Discover class/struct definition brace ranges in one file. */
void
findClasses(const std::vector<Token> &toks, std::size_t file_index,
            std::vector<ClassInfo> &out)
{
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdent(toks, i, "class") && !isIdent(toks, i, "struct"))
            continue;
        const std::size_t before = prevCode(toks, i);
        if (before < toks.size() && isIdent(toks, before, "enum"))
            continue;  // enum class: no member declarations
        std::size_t n = skipComments(toks, i + 1);
        if (n >= toks.size() || toks[n].kind != TokKind::Ident)
            continue;  // anonymous struct / template <class T>
        const std::string name = toks[n].text;
        std::size_t j = skipComments(toks, n + 1);
        if (j < toks.size() && isIdent(toks, j, "final"))
            j = skipComments(toks, j + 1);
        if (isPunct(toks, j, ":")) {
            // Base-clause: scan forward to the body '{'.
            while (j < toks.size() && !isPunct(toks, j, "{") &&
                   !isPunct(toks, j, ";"))
                ++j;
        }
        if (!isPunct(toks, j, "{"))
            continue;  // forward declaration or template parameter
        const std::size_t close = matchForward(toks, j);
        if (close >= toks.size())
            continue;
        ClassInfo c;
        c.fileIndex = file_index;
        c.name = name;
        c.open = j;
        c.close = close;
        out.push_back(std::move(c));
    }
}

} // anonymous namespace

CallGraph
CallGraph::build(const std::vector<SourceFile> &files)
{
    CallGraph g;
    g.srcs = &files;

    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const std::vector<Token> &toks = files[fi].tokens;
        findClasses(toks, fi, g.structs);

        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (!isPunct(toks, i, "{"))
                continue;

            // Walk back over trailing qualifiers, and remember where
            // the signature tail (init list or body) begins.
            std::size_t j = prevCode(toks, i);
            std::size_t extent_begin = i;
            // Init list: "...) : a(1), b(2) {" — walk back through
            // the initialiser expressions to the ':'. The walk never
            // crosses a brace or semicolon, so it cannot escape into
            // a preceding definition.
            {
                std::size_t k = j;
                int guard = 0;
                while (k < toks.size() && guard < 4096) {
                    ++guard;
                    if (isPunct(toks, k, ")")) {
                        const std::size_t open_k =
                            matchBackParen(toks, k);
                        if (open_k >= toks.size())
                            break;
                        k = prevCode(toks, open_k);
                        continue;
                    }
                    if (toks[k].kind == TokKind::Ident ||
                        isPunct(toks, k, ",") ||
                        (toks[k].kind == TokKind::Punct &&
                         toks[k].text == "::") ||
                        toks[k].kind == TokKind::Number ||
                        toks[k].kind == TokKind::String ||
                        isPunct(toks, k, ".") || isPunct(toks, k, "&") ||
                        isPunct(toks, k, "*")) {
                        k = prevCode(toks, k);
                        continue;
                    }
                    break;
                }
                if (k < toks.size() && isPunct(toks, k, ":")) {
                    const std::size_t before_colon = prevCode(toks, k);
                    if (before_colon < toks.size() &&
                        isPunct(toks, before_colon, ")")) {
                        extent_begin = k;
                        j = before_colon;
                    }
                }
            }
            while (j < toks.size() && isQualifierIdent(toks[j]))
                j = prevCode(toks, j);
            if (j >= toks.size() || !isPunct(toks, j, ")"))
                continue;  // namespace / class body / init block
            const std::size_t param_open = matchBackParen(toks, j);
            if (param_open >= toks.size())
                continue;
            const std::size_t name_tok = prevCode(toks, param_open);
            if (name_tok >= toks.size() ||
                toks[name_tok].kind != TokKind::Ident ||
                isControlKeyword(toks[name_tok].text))
                continue;
            const std::size_t close = matchForward(toks, i);
            if (close >= toks.size())
                continue;

            FnInfo fn;
            fn.fileIndex = fi;
            fn.name = toks[name_tok].text;
            fn.nameTok = name_tok;
            fn.paramOpen = param_open;
            fn.paramClose = j;
            fn.open = i;
            fn.close = close;
            fn.extentBegin = extent_begin;
            fn.line = toks[name_tok].line;
            fn.col = toks[name_tok].col;

            // Lexical qualification: "A::B::name".
            std::string qualified = fn.name;
            std::size_t q = name_tok;
            while (true) {
                const std::size_t sep = prevCode(toks, q);
                if (sep >= toks.size() || toks[sep].kind != TokKind::Punct ||
                    toks[sep].text != "::")
                    break;
                const std::size_t cls = prevCode(toks, sep);
                if (cls >= toks.size() ||
                    toks[cls].kind != TokKind::Ident)
                    break;
                if (fn.className.empty())
                    fn.className = toks[cls].text;
                qualified = toks[cls].text + "::" + qualified;
                q = cls;
            }
            if (fn.className.empty()) {
                // In-class body: qualify by the innermost enclosing
                // class definition.
                for (const ClassInfo &c : g.structs) {
                    if (c.fileIndex == fi && c.open < name_tok &&
                        name_tok < c.close)
                        fn.className = c.name;
                }
                if (!fn.className.empty())
                    qualified = fn.className + "::" + qualified;
            }
            fn.qualified = qualified;

            g.fns.push_back(std::move(fn));
            i = close;  // bodies do not nest (lambdas stay inside)
        }
    }

    // Index by unqualified name.
    for (std::size_t f = 0; f < g.fns.size(); ++f)
        g.byName[g.fns[f].name].push_back(f);

    // Call sites per function extent (init list + body; the parameter
    // list is declarations, not calls).
    g.fnCalls.resize(g.fns.size());
    for (std::size_t f = 0; f < g.fns.size(); ++f) {
        const FnInfo &fn = g.fns[f];
        const std::vector<Token> &toks =
            files[fn.fileIndex].tokens;
        for (std::size_t i = fn.extentBegin; i < fn.close; ++i) {
            if (toks[i].kind != TokKind::Ident ||
                isControlKeyword(toks[i].text))
                continue;
            if (!isPunct(toks, skipComments(toks, i + 1), "("))
                continue;
            CallSiteInfo cs;
            cs.caller = f;
            cs.callee = toks[i].text;
            cs.tok = i;
            cs.line = toks[i].line;
            cs.col = toks[i].col;
            g.fnCalls[f].push_back(g.sites.size());
            g.sites.push_back(std::move(cs));
        }
    }

    // Reverse edges, deduplicated.
    g.fnCallers.resize(g.fns.size());
    for (const CallSiteInfo &cs : g.sites) {
        const auto it = g.byName.find(cs.callee);
        if (it == g.byName.end())
            continue;
        for (std::size_t target : it->second) {
            if (target != cs.caller)
                g.fnCallers[target].push_back(cs.caller);
        }
    }
    for (auto &callers : g.fnCallers) {
        std::sort(callers.begin(), callers.end());
        callers.erase(std::unique(callers.begin(), callers.end()),
                      callers.end());
    }
    return g;
}

const std::vector<std::size_t> &
CallGraph::callsOf(std::size_t fn) const
{
    return fn < fnCalls.size() ? fnCalls[fn] : empty;
}

const std::vector<std::size_t> &
CallGraph::resolve(const std::string &name) const
{
    const auto it = byName.find(name);
    return it == byName.end() ? empty : it->second;
}

const std::vector<std::size_t> &
CallGraph::callersOf(std::size_t fn) const
{
    return fn < fnCallers.size() ? fnCallers[fn] : empty;
}

bool
CallGraph::hasExternalCaller(std::size_t fn) const
{
    return fn < fnCallers.size() && !fnCallers[fn].empty();
}

std::size_t
CallGraph::enclosingFunction(std::size_t file_index,
                             std::size_t tok) const
{
    for (std::size_t f = 0; f < fns.size(); ++f) {
        const FnInfo &fn = fns[f];
        if (fn.fileIndex == file_index && fn.nameTok <= tok &&
            tok <= fn.close)
            return f;
    }
    return kNoFunction;
}

std::vector<std::string>
CallGraph::enclosingClasses(std::size_t file_index,
                            std::size_t tok) const
{
    std::vector<std::string> out;
    for (const ClassInfo &c : structs) {
        if (c.fileIndex == file_index && c.open < tok &&
            tok < c.close)
            out.push_back(c.name);
    }
    return out;
}

} // namespace vic::analysis
