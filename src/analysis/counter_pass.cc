/**
 * @file
 * Pass 4: counter registration discipline.
 *
 * Every statistic flows into the JSON artifacts that ci.sh diffs for
 * bit-reproducibility, and into the bench baselines the perf work
 * compares across commits. That puts three constraints on
 * StatSet::counter() call sites:
 *
 *  - NAMES are machine keys, not prose: lower-case dotted snake_case
 *    ([a-z0-9_.]) so artifact diffing, plotting scripts and the
 *    bench comparator never have to quote or normalise. Dynamic name
 *    pieces (format("pmap.%s.%s", ...) reason counters, the
 *    cacheName + ".reads" per-CPU prefixes) are checked on their
 *    literal fragments.
 *  - NO DUPLICATES: two distinct sites registering the same literal
 *    name silently share one counter (StatSet::counter is
 *    find-or-create), merging unrelated subsystems' numbers into one
 *    artifact row.
 *  - BUS COUNTERS STAY LAZY: "bus.*" rows may only be registered by
 *    the CoherenceBus constructor (src/cache/coherence.cc), which
 *    only runs when a machine actually has >1 CPU. An eager
 *    registration anywhere else would add zero-valued bus.* rows to
 *    every single-CPU artifact and break bit-identity with the
 *    pre-coherence baselines.
 */

#include <map>

#include "analysis/cpp_scan.hh"
#include "analysis/pass.hh"

#include "common/logging.hh"

namespace vic::analysis
{
namespace
{

/** One parsed StatSet::counter() call site. */
struct CounterSite
{
    std::string file;
    std::uint32_t line = 0;
    std::uint32_t col = 0;
    std::vector<std::string> literals;  ///< string-literal pieces
    bool fully_literal = false;  ///< single plain string argument
    bool via_format = false;     ///< name built by format(...)
};

/** Strip quotes from a String token's text. */
std::string
unquote(const std::string &s)
{
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
        return s.substr(1, s.size() - 2);
    return s;
}

/** Remove %-conversions from a format string, leaving literals. */
std::string
stripConversions(const std::string &s)
{
    std::string out;
    std::size_t i = 0;
    while (i < s.size()) {
        if (s[i] == '%' && i + 1 < s.size()) {
            ++i;  // skip '%'
            // Skip flags/width/length then one conversion char.
            while (i < s.size() &&
                   (s[i] == 'l' || s[i] == 'h' || s[i] == 'z' ||
                    (s[i] >= '0' && s[i] <= '9')))
                ++i;
            if (i < s.size())
                ++i;
            continue;
        }
        out += s[i++];
    }
    return out;
}

bool
isValidNamePiece(const std::string &s)
{
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == '.';
        if (!ok)
            return false;
    }
    return true;
}

class CounterPass : public Pass
{
  public:
    const char *name() const override { return "counter"; }

    const char *summary() const override
    {
        return "statistic names are dotted snake_case, registered "
               "once, and bus.* counters only register lazily in "
               "the CoherenceBus";
    }

    std::vector<RuleInfo> rules() const override
    {
        return {
            {"counter-name",
             "counter name (or literal fragment of a dynamic name) "
             "is not lower-case dotted snake_case [a-z0-9_.]"},
            {"counter-duplicate",
             "the same literal counter name is registered by two "
             "distinct call sites — StatSet::counter is "
             "find-or-create, so they silently share one row"},
            {"counter-bus-eager",
             "a bus.* counter registered outside "
             "src/cache/coherence.cc — bus rows must only exist "
             "when a CoherenceBus does, or single-CPU artifacts "
             "lose bit-identity"},
        };
    }

    void run(const PassContext &ctx, Sink &sink,
             PassStats &) const override
    {
        std::vector<CounterSite> sites;
        for (const SourceFile &f : ctx.files) {
            if (f.path.rfind("src/", 0) != 0)
                continue;
            collectSites(f, sites);
        }

        for (const CounterSite &s : sites) {
            for (const std::string &piece : s.literals) {
                const std::string lit =
                    s.via_format ? stripConversions(piece) : piece;
                if (!isValidNamePiece(lit)) {
                    sink.report(
                        "counter-name", s.file, s.line, s.col,
                        format("counter name piece \"%s\" is not "
                               "dotted snake_case [a-z0-9_.]",
                               piece.c_str()));
                }
            }
            if (!s.literals.empty() &&
                s.literals.front().rfind("bus.", 0) == 0 &&
                s.file != "src/cache/coherence.cc") {
                sink.report(
                    "counter-bus-eager", s.file, s.line, s.col,
                    format("\"%s\" registers a bus counter outside "
                           "the CoherenceBus constructor",
                           s.literals.front().c_str()));
            }
        }

        // Duplicate fully-literal names across distinct sites.
        std::map<std::string, const CounterSite *> first;
        for (const CounterSite &s : sites) {
            if (!s.fully_literal)
                continue;
            const std::string &name = s.literals.front();
            const auto [it, fresh] = first.emplace(name, &s);
            if (!fresh) {
                sink.report(
                    "counter-duplicate", s.file, s.line, s.col,
                    format("counter \"%s\" already registered at "
                           "%s:%u — the two sites silently share "
                           "one row",
                           name.c_str(), it->second->file.c_str(),
                           it->second->line));
            }
        }
    }

  private:
    /** Find `.counter(...)` method calls and parse the argument. */
    void collectSites(const SourceFile &f,
                      std::vector<CounterSite> &out) const
    {
        const std::vector<Token> &toks = f.tokens;
        for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
            if (!isIdent(toks, i, "counter") ||
                !isPunct(toks, i - 1, ".") ||
                !isPunct(toks, skipComments(toks, i + 1), "("))
                continue;
            const std::size_t open = skipComments(toks, i + 1);
            const std::size_t close = matchForward(toks, open);
            if (close <= open)
                continue;

            CounterSite s;
            s.file = f.path;
            s.line = toks[i].line;
            s.col = toks[i].col;
            std::size_t nontrivial = 0;
            for (std::size_t j = open + 1; j < close; ++j) {
                const Token &t = toks[j];
                if (t.kind == TokKind::Comment)
                    continue;
                if (t.kind == TokKind::String) {
                    s.literals.push_back(unquote(t.text));
                } else if (isIdent(toks, j, "format")) {
                    s.via_format = true;
                }
                ++nontrivial;
            }
            s.fully_literal =
                nontrivial == 1 && s.literals.size() == 1;
            out.push_back(std::move(s));
        }
    }
};

} // anonymous namespace

std::unique_ptr<Pass>
makeCounterPass()
{
    return std::make_unique<CounterPass>();
}

} // namespace vic::analysis
