#include "analysis/cpp_scan.hh"

namespace vic::analysis
{
namespace
{

bool
isQualifier(const Token &t)
{
    return t.kind == TokKind::Ident &&
           (t.text == "const" || t.text == "noexcept" ||
            t.text == "override" || t.text == "final");
}

bool
isControlKeyword(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "catch" || s == "return";
}

/** Previous non-comment token index, or npos-like toks.size(). */
std::size_t
prevCode(const std::vector<Token> &toks, std::size_t i)
{
    while (i > 0) {
        --i;
        if (toks[i].kind != TokKind::Comment)
            return i;
    }
    return toks.size();
}

/** Given @p i at a ')', index of its matching '(' walking backwards;
 *  toks.size() when unbalanced. */
std::size_t
matchBackParen(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i + 1; j-- > 0;) {
        if (toks[j].kind != TokKind::Punct)
            continue;
        if (toks[j].text == ")")
            ++depth;
        else if (toks[j].text == "(") {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return toks.size();
}

} // anonymous namespace

bool
isPunct(const std::vector<Token> &toks, std::size_t i, const char *p)
{
    return i < toks.size() && toks[i].kind == TokKind::Punct &&
           toks[i].text == p;
}

bool
isIdent(const std::vector<Token> &toks, std::size_t i, const char *id)
{
    return i < toks.size() && toks[i].kind == TokKind::Ident &&
           toks[i].text == id;
}

std::size_t
skipComments(const std::vector<Token> &toks, std::size_t i)
{
    while (i < toks.size() && toks[i].kind == TokKind::Comment)
        ++i;
    return i;
}

std::size_t
matchForward(const std::vector<Token> &toks, std::size_t i)
{
    if (i >= toks.size() || toks[i].kind != TokKind::Punct)
        return toks.size();
    const std::string &open = toks[i].text;
    std::string close;
    if (open == "(")
        close = ")";
    else if (open == "{")
        close = "}";
    else if (open == "[")
        close = "]";
    else
        return toks.size();
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
        if (toks[j].kind != TokKind::Punct)
            continue;
        if (toks[j].text == open)
            ++depth;
        else if (toks[j].text == close) {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return toks.size();
}

std::vector<FnBody>
findFunctions(const std::vector<Token> &toks)
{
    std::vector<FnBody> out;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isPunct(toks, i, "{"))
            continue;

        // Walk back over qualifiers to the parameter list's ')'.
        std::size_t j = prevCode(toks, i);
        while (j < toks.size() && isQualifier(toks[j]))
            j = prevCode(toks, j);
        if (j >= toks.size() || !isPunct(toks, j, ")"))
            continue;  // namespace/class/init block: scan inside
        const std::size_t open_paren = matchBackParen(toks, j);
        if (open_paren >= toks.size())
            continue;
        const std::size_t name_tok = prevCode(toks, open_paren);
        if (name_tok >= toks.size() ||
            toks[name_tok].kind != TokKind::Ident ||
            isControlKeyword(toks[name_tok].text))
            continue;

        const std::size_t close = matchForward(toks, i);
        if (close >= toks.size())
            continue;
        FnBody fn;
        fn.name = toks[name_tok].text;
        fn.open = i;
        fn.close = close;
        out.push_back(std::move(fn));
        i = close;  // nested lambdas stay inside their function
    }
    return out;
}

} // namespace vic::analysis
