/**
 * @file
 * Lightweight structural scanning over token streams: brace matching
 * and function-definition discovery. This is NOT a C++ parser — it is
 * the minimal brace-matched view the drain-pairing CFG and the
 * spec-table parsers need, tuned to this repository's code style
 * (clang-format enforced, no preprocessor tricks around braces).
 */

#ifndef VIC_ANALYSIS_CPP_SCAN_HH
#define VIC_ANALYSIS_CPP_SCAN_HH

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/token.hh"

namespace vic::analysis
{

/** One function definition: name plus the token range of its body
 *  (open/close index the '{' and '}' tokens). */
struct FnBody
{
    std::string name;   ///< unqualified ("startWrite", not "A::b")
    std::size_t open = 0;
    std::size_t close = 0;
};

/** True if the token at @p i is punctuation @p p. */
bool isPunct(const std::vector<Token> &toks, std::size_t i,
             const char *p);

/** True if the token at @p i is identifier @p id. */
bool isIdent(const std::vector<Token> &toks, std::size_t i,
             const char *id);

/** Index of the next non-comment token at or after @p i (or
 *  toks.size()). */
std::size_t skipComments(const std::vector<Token> &toks, std::size_t i);

/** Given @p i at an opening '(' / '{' / '[', index of its matching
 *  closer; toks.size() when unbalanced. Comments are transparent. */
std::size_t matchForward(const std::vector<Token> &toks, std::size_t i);

/**
 * Every function definition in the stream, in order. A '{' opens a
 * function body when, walking back over comments and the qualifiers
 * const/noexcept/override/final, it is preceded by a balanced (...)
 * whose head token is an identifier that is not a control keyword
 * (if/for/while/switch/catch). Constructor initialiser lists resolve
 * to the last initialiser's name, which is fine: callers only use the
 * name for exemption matching. Nested bodies (lambdas) are NOT
 * reported separately; they live inside their enclosing range.
 */
std::vector<FnBody> findFunctions(const std::vector<Token> &toks);

} // namespace vic::analysis

#endif // VIC_ANALYSIS_CPP_SCAN_HH
