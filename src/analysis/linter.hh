/**
 * @file
 * Top-level orchestration: discover the tree, run the selected
 * passes, apply suppressions, render the report.
 *
 * One Linter run is one LintReport — the in-memory form of the
 * LINT_report.json artifact (schema "vic-lint-report-v2"; v1 reports
 * are still readable through fromJson). The JSON is built with the
 * repo's insertion-ordered JsonValue, so a report is byte-identical
 * across runs on the same tree, like every other vic artifact. v2
 * adds per-pass effort counters ("pass_stats") from the
 * interprocedural engine: functions analyzed, summaries computed,
 * fixpoint iterations.
 */

#ifndef VIC_ANALYSIS_LINTER_HH
#define VIC_ANALYSIS_LINTER_HH

#include <string>
#include <vector>

#include "analysis/pass.hh"

#include "common/json_writer.hh"

namespace vic::analysis
{

/** One pass's effort counters, as recorded in "pass_stats". */
struct PassRunStats
{
    std::string pass;
    PassStats stats;
};

/** One active rule (id + summary), kept for the SARIF driver. */
struct ActiveRule
{
    std::string id;
    std::string summary;
};

struct LintReport
{
    std::string root;
    std::vector<std::string> passesRun;
    std::size_t filesScanned = 0;
    std::vector<Diagnostic> diagnostics;
    /** Every allow() marker found, used or not. */
    std::vector<Suppression> suppressions;
    /** Per-pass effort counters, in run order (v2). */
    std::vector<PassRunStats> passStats;
    /** Rules of the selected passes plus the suppression-hygiene
     *  rules, in registration order. */
    std::vector<ActiveRule> activeRules;

    bool clean() const { return diagnostics.empty(); }

    /** The "vic-lint-report-v2" document. */
    JsonValue toJson() const;

    /** Read back a v1 or v2 document (v1 has no pass_stats; its
     *  other fields are unchanged). Throws std::runtime_error on an
     *  unknown schema. */
    static LintReport fromJson(const JsonValue &doc);

    /** One "file:line:col: rule: message" line per diagnostic. */
    std::vector<std::string> renderLines() const;
};

/**
 * Run the passes whose names appear in @p pass_names (empty = all)
 * over the tree at @p root.
 */
LintReport runLint(const std::string &root,
                   const std::vector<std::string> &pass_names);

/** Run passes over an already-loaded file set (for tests). */
LintReport runLintOnFiles(const std::string &root,
                          std::vector<SourceFile> files,
                          const std::vector<std::string> &pass_names);

} // namespace vic::analysis

#endif // VIC_ANALYSIS_LINTER_HH
