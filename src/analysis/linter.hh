/**
 * @file
 * Top-level orchestration: discover the tree, run the selected
 * passes, apply suppressions, render the report.
 *
 * One Linter run is one LintReport — the in-memory form of the
 * LINT_report.json artifact (schema "vic-lint-report-v1"). The JSON
 * is built with the repo's insertion-ordered JsonValue, so a report
 * is byte-identical across runs on the same tree, like every other
 * vic artifact.
 */

#ifndef VIC_ANALYSIS_LINTER_HH
#define VIC_ANALYSIS_LINTER_HH

#include <string>
#include <vector>

#include "analysis/pass.hh"

#include "common/json_writer.hh"

namespace vic::analysis
{

struct LintReport
{
    std::string root;
    std::vector<std::string> passesRun;
    std::size_t filesScanned = 0;
    std::vector<Diagnostic> diagnostics;
    /** Every allow() marker found, used or not. */
    std::vector<Suppression> suppressions;

    bool clean() const { return diagnostics.empty(); }

    /** The "vic-lint-report-v1" document. */
    JsonValue toJson() const;

    /** One "file:line:col: rule: message" line per diagnostic. */
    std::vector<std::string> renderLines() const;
};

/**
 * Run the passes whose names appear in @p pass_names (empty = all)
 * over the tree at @p root.
 */
LintReport runLint(const std::string &root,
                   const std::vector<std::string> &pass_names);

/** Run passes over an already-loaded file set (for tests). */
LintReport runLintOnFiles(const std::string &root,
                          std::vector<SourceFile> files,
                          const std::vector<std::string> &pass_names);

} // namespace vic::analysis

#endif // VIC_ANALYSIS_LINTER_HH
