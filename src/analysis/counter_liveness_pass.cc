/**
 * @file
 * Pass: counter-liveness — registered vs incremented, whole-program.
 *
 * The per-file counter pass (counter-name/counter-duplicate) checks
 * the SYNTAX of `.counter("...")` registrations. What it cannot see
 * is the gap this pass closes: a counter registered at construction
 * but never bumped anywhere reports a forever-zero statistic in the
 * paper's tables (silently wrong data), and a Counter bumped but
 * never registered with a StatSet is invisible to the benches that
 * read the registry back.
 *
 * The cross-check runs over the call graph:
 *
 *  1. REACHABILITY. Machine::Machine and Kernel::Kernel are the
 *     roots. From a reached function, every called name's definitions
 *     are reached, and every mentioned class (identifier matching a
 *     class-with-a-body, e.g. `make_unique<Tlb>`) contributes its
 *     constructors. From a reached class, its BODY's mentioned
 *     classes follow too — a bare member init like Kernel's
 *     `fileSystem(m.stats())` never names FileSystem, but the member
 *     declaration in the class body does.
 *
 *  2. REGISTRATIONS. Every `<chain>.counter(...)` call in a reached
 *     function is classified by its binding:
 *       - `statX(chain.counter("n"))` in a constructor init list, or
 *         `Counter &x = ...` / `p = &chain.counter(...)` — binds the
 *         named member/variable;
 *       - `return chain.counter(...)` — binds the enclosing accessor
 *         function (increments then look like `++accessor(...)`);
 *       - `chain.counter("n") += e` (and ++ forms) — self-live;
 *       - anything else — untrackable, exempt from the dead check.
 *
 *  3. INCREMENTS. `++B` / `B++` / `B += e` (through `*ptr` derefs)
 *     and the called forms `++B(...)` / `B(...) += e`. An increment
 *     matches a registration when the names agree AND they plausibly
 *     address the same object: same enclosing class when both are
 *     known (Tlb::statHits vs Cache::statHits stay distinct), same
 *     file otherwise.
 *
 * Rules:
 *   counter-live-dead — a registration reachable from construction
 *     whose binding is never incremented anywhere in its scope.
 *   counter-live-unregistered — an increment of a Counter-typed
 *     member/variable that no registration ever binds.
 */

#include <algorithm>
#include <map>
#include <set>

#include "analysis/callgraph.hh"
#include "analysis/cpp_scan.hh"
#include "analysis/pass.hh"

#include "common/logging.hh"

namespace vic::analysis
{
namespace
{

const char *const kRuleDead = "counter-live-dead";
const char *const kRuleUnregistered = "counter-live-unregistered";

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
inScope(const std::string &path)
{
    // The analyzer's own sources discuss these idioms in strings and
    // helpers constantly; everything else under src/ is checked.
    return startsWith(path, "src/") &&
           !startsWith(path, "src/analysis/");
}

/** Previous non-comment token index, or toks.size() when none. */
std::size_t
prevCode(const std::vector<Token> &toks, std::size_t i)
{
    while (i > 0) {
        --i;
        if (toks[i].kind != TokKind::Comment)
            return i;
    }
    return toks.size();
}

/** Given @p i at a ')', index of its matching '(' walking backwards;
 *  toks.size() when unbalanced. */
std::size_t
matchBackParen(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i + 1; j-- > 0;) {
        if (toks[j].kind != TokKind::Punct)
            continue;
        if (toks[j].text == ")")
            ++depth;
        else if (toks[j].text == "(") {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return toks.size();
}

struct Registration
{
    std::string binding;   ///< member/var/accessor name; "" untracked
    std::string name;      ///< literal counter name, "" if computed
    std::string className; ///< owning class ("" when free)
    std::size_t fileIndex = 0;
    std::size_t fn = kNoFunction;  ///< enclosing function
    std::uint32_t line = 0;
    std::uint32_t col = 0;
    bool selfLive = false;  ///< bumped at the registration site
};

struct Increment
{
    std::string binding;
    std::string className;
    std::size_t fileIndex = 0;
    std::uint32_t line = 0;
    std::uint32_t col = 0;
};

struct CounterDecl
{
    std::string binding;
    std::string className;
    std::size_t fileIndex = 0;
};

/** Innermost enclosing class name for token @p tok, or "". */
std::string
classAt(const CallGraph &g, std::size_t file_index, std::size_t tok)
{
    const std::vector<std::string> cls =
        g.enclosingClasses(file_index, tok);
    return cls.empty() ? std::string() : cls.back();
}

/** The class a function's code belongs to: its qualified class for
 *  out-of-line definitions, else the lexically enclosing class. */
std::string
classOfFn(const CallGraph &g, std::size_t fn)
{
    const FnInfo &info = g.functions()[fn];
    if (!info.className.empty())
        return info.className;
    return classAt(g, info.fileIndex, info.nameTok);
}

/** Do a registration and an increment plausibly hit the same
 *  counter object? */
bool
sameScope(const std::string &class_a, std::size_t file_a,
          const std::string &class_b, std::size_t file_b)
{
    if (!class_a.empty() && !class_b.empty())
        return class_a == class_b;
    return file_a == file_b;
}

/** Walk a `a.b().c` chain backwards from the '.' at @p dot; @return
 *  the chain's head token index. */
std::size_t
chainHead(const std::vector<Token> &toks, std::size_t dot)
{
    std::size_t head = dot;
    std::size_t p = prevCode(toks, dot);
    while (p < toks.size()) {
        if (isPunct(toks, p, ")")) {
            const std::size_t open = matchBackParen(toks, p);
            if (open >= toks.size())
                break;
            p = prevCode(toks, open);
            continue;
        }
        if (toks[p].kind == TokKind::Ident) {
            head = p;
            const std::size_t q = prevCode(toks, p);
            if (q < toks.size() && isPunct(toks, q, ".")) {
                p = prevCode(toks, q);
                continue;
            }
            // `->` lexes as '-' '>'.
            if (q < toks.size() && isPunct(toks, q, ">")) {
                const std::size_t r = prevCode(toks, q);
                if (r < toks.size() && isPunct(toks, r, "-")) {
                    p = prevCode(toks, r);
                    continue;
                }
            }
            break;
        }
        break;
    }
    return head;
}

class LivenessPass : public Pass
{
  public:
    const char *name() const override { return "counter-liveness"; }

    const char *summary() const override
    {
        return "every counter registered on the construction path "
               "from Machine/Kernel is incremented somewhere, and "
               "every incremented Counter is registered";
    }

    std::vector<RuleInfo> rules() const override
    {
        return {
            {kRuleDead,
             "counter registered on the Machine/Kernel construction "
             "path but never incremented in its class/file scope — "
             "it reports a forever-zero statistic"},
            {kRuleUnregistered,
             "Counter-typed member/variable incremented but never "
             "bound to a StatSet registration — benches reading the "
             "registry never see it"},
        };
    }

    void run(const PassContext &ctx, Sink &sink,
             PassStats &stats) const override
    {
        CallGraph local;
        const CallGraph *gp = ctx.graph;
        if (gp == nullptr) {
            local = CallGraph::build(ctx.files);
            gp = &local;
        }
        const CallGraph &g = *gp;

        const std::set<std::size_t> reached = reachable(g);
        std::vector<Registration> regs;
        std::vector<Increment> incs;
        std::vector<CounterDecl> decls;
        collectRegistrations(g, regs);
        collectIncrements(g, incs);
        collectDecls(g, decls);

        stats.functionsAnalyzed = g.functions().size();
        stats.summariesComputed = regs.size() + incs.size();
        stats.fixpointIterations = 1;

        // Rule 1: registered (reachably) but never incremented.
        for (const Registration &r : regs) {
            if (r.binding.empty() || r.selfLive)
                continue;
            if (r.fn == kNoFunction || reached.count(r.fn) == 0)
                continue;
            bool live = false;
            for (const Increment &inc : incs) {
                if (inc.binding == r.binding &&
                    sameScope(r.className, r.fileIndex, inc.className,
                              inc.fileIndex)) {
                    live = true;
                    break;
                }
            }
            if (live)
                continue;
            const std::string what =
                r.name.empty() ? format("bound to '%s'",
                                        r.binding.c_str())
                               : format("'%s' (bound to '%s')",
                                        r.name.c_str(),
                                        r.binding.c_str());
            sink.report(kRuleDead, g.files()[r.fileIndex].path, r.line,
                        r.col,
                        format("counter %s is registered on the "
                               "construction path but never "
                               "incremented — it reports a "
                               "forever-zero statistic",
                               what.c_str()));
        }

        // Rule 2: incremented but never registered. Only names we can
        // PROVE are counters (a Counter-typed declaration in scope)
        // are eligible; everything else incremented is just an int.
        std::set<std::pair<std::string, std::uint32_t>> fired;
        for (const Increment &inc : incs) {
            bool is_counter = false;
            for (const CounterDecl &d : decls) {
                if (d.binding == inc.binding &&
                    sameScope(d.className, d.fileIndex, inc.className,
                              inc.fileIndex)) {
                    is_counter = true;
                    break;
                }
            }
            if (!is_counter)
                continue;
            bool registered = false;
            for (const Registration &r : regs) {
                if (r.binding == inc.binding &&
                    sameScope(r.className, r.fileIndex, inc.className,
                              inc.fileIndex)) {
                    registered = true;
                    break;
                }
            }
            if (registered)
                continue;
            const std::string &path = g.files()[inc.fileIndex].path;
            if (!fired.insert({path + ":" + inc.binding, 0}).second)
                continue;  // one diagnostic per binding per file
            sink.report(kRuleUnregistered, path, inc.line, inc.col,
                        format("counter '%s' is incremented but never "
                               "registered with a StatSet — benches "
                               "reading the registry never see it",
                               inc.binding.c_str()));
        }
    }

  private:
    /** Functions reachable from Machine/Kernel construction via call
     *  edges, class mentions, and class-body member types. */
    std::set<std::size_t> reachable(const CallGraph &g) const
    {
        const std::vector<FnInfo> &fns = g.functions();

        // Class name -> constructor function indices.
        std::map<std::string, std::vector<std::size_t>> ctors;
        for (std::size_t f = 0; f < fns.size(); ++f) {
            if (!fns[f].className.empty() &&
                fns[f].name == fns[f].className)
                ctors[fns[f].className].push_back(f);
        }
        std::set<std::string> class_names;
        for (const ClassInfo &c : g.classes())
            class_names.insert(c.name);

        std::set<std::size_t> reached_fns;
        std::set<std::string> reached_classes;
        std::vector<std::size_t> fn_work;
        std::vector<std::string> class_work;

        for (std::size_t f = 0; f < fns.size(); ++f) {
            if ((fns[f].qualified == "Machine::Machine" ||
                 fns[f].qualified == "Kernel::Kernel") &&
                reached_fns.insert(f).second)
                fn_work.push_back(f);
        }

        auto touch_class = [&](const std::string &cls) {
            if (reached_classes.insert(cls).second)
                class_work.push_back(cls);
        };
        auto touch_fn = [&](std::size_t f) {
            if (reached_fns.insert(f).second)
                fn_work.push_back(f);
        };

        while (!fn_work.empty() || !class_work.empty()) {
            if (!fn_work.empty()) {
                const std::size_t f = fn_work.back();
                fn_work.pop_back();
                const FnInfo &fn = fns[f];
                const std::vector<Token> &toks =
                    g.files()[fn.fileIndex].tokens;
                for (std::size_t cs : g.callsOf(f)) {
                    for (std::size_t callee :
                         g.resolve(g.calls()[cs].callee))
                        touch_fn(callee);
                }
                for (std::size_t i = fn.extentBegin; i < fn.close;
                     ++i) {
                    if (toks[i].kind == TokKind::Ident &&
                        class_names.count(toks[i].text))
                        touch_class(toks[i].text);
                }
                continue;
            }
            const std::string cls = class_work.back();
            class_work.pop_back();
            const auto it = ctors.find(cls);
            if (it != ctors.end()) {
                for (std::size_t f : it->second)
                    touch_fn(f);
            }
            // Member declarations pull in member types.
            for (const ClassInfo &c : g.classes()) {
                if (c.name != cls)
                    continue;
                const std::vector<Token> &toks =
                    g.files()[c.fileIndex].tokens;
                for (std::size_t i = c.open + 1; i < c.close; ++i) {
                    if (toks[i].kind == TokKind::Ident &&
                        toks[i].text != cls &&
                        class_names.count(toks[i].text))
                        touch_class(toks[i].text);
                }
            }
        }
        return reached_fns;
    }

    void collectRegistrations(const CallGraph &g,
                              std::vector<Registration> &regs) const
    {
        for (std::size_t fi = 0; fi < g.files().size(); ++fi) {
            const SourceFile &f = g.files()[fi];
            if (!inScope(f.path))
                continue;
            const std::vector<Token> &toks = f.tokens;
            for (std::size_t i = 0; i < toks.size(); ++i) {
                if (!isIdent(toks, i, "counter"))
                    continue;
                const std::size_t dot = prevCode(toks, i);
                if (dot >= toks.size() || !isPunct(toks, dot, "."))
                    continue;
                const std::size_t open = skipComments(toks, i + 1);
                if (!isPunct(toks, open, "("))
                    continue;
                const std::size_t close = matchForward(toks, open);
                if (close >= toks.size())
                    continue;

                Registration r;
                r.fileIndex = fi;
                r.line = toks[i].line;
                r.col = toks[i].col;
                r.fn = g.enclosingFunction(fi, i);
                r.className = r.fn == kNoFunction
                                  ? classAt(g, fi, i)
                                  : classOfFn(g, r.fn);

                // Literal name when the argument is one string.
                const std::size_t a = skipComments(toks, open + 1);
                if (a < close && toks[a].kind == TokKind::String &&
                    skipComments(toks, a + 1) == close) {
                    const std::string &s = toks[a].text;
                    if (s.size() >= 2)
                        r.name = s.substr(1, s.size() - 2);
                }

                classify(g, toks, i, dot, close, r);
                regs.push_back(std::move(r));
            }
        }
    }

    /** Decide the binding for the `.counter(...)` whose name ident is
     *  at @p name_tok, '.' at @p dot, argument ')' at @p close. */
    void classify(const CallGraph &g, const std::vector<Token> &toks,
                  std::size_t name_tok, std::size_t dot,
                  std::size_t close, Registration &r) const
    {
        (void)name_tok;
        const std::size_t head = chainHead(toks, dot);
        const std::size_t pre = prevCode(toks, head);
        const std::size_t post = skipComments(toks, close + 1);

        // Self-live: `chain.counter("n") += e;` / `++chain.counter()`.
        if (post < toks.size() && isPunct(toks, post, "+")) {
            const std::size_t post2 = skipComments(toks, post + 1);
            if (isPunct(toks, post2, "=") || isPunct(toks, post2, "+")) {
                r.selfLive = true;
                return;
            }
        }
        if (pre < toks.size() && isPunct(toks, pre, "+")) {
            const std::size_t pre2 = prevCode(toks, pre);
            if (pre2 < toks.size() && isPunct(toks, pre2, "+")) {
                r.selfLive = true;
                return;
            }
        }

        if (pre >= toks.size())
            return;

        // Constructor member init: `statX(chain.counter("n"))`.
        if ((isPunct(toks, pre, "(") || isPunct(toks, pre, "{")) &&
            r.fn != kNoFunction) {
            const FnInfo &fn = g.functions()[r.fn];
            const std::size_t binder = prevCode(toks, pre);
            if (fn.name == fn.className && dot < fn.open &&
                binder < toks.size() &&
                toks[binder].kind == TokKind::Ident) {
                r.binding = toks[binder].text;
                return;
            }
        }

        // Reference bind: `Counter &x = chain.counter("n")`.
        if (isPunct(toks, pre, "=")) {
            const std::size_t lhs = prevCode(toks, pre);
            if (lhs < toks.size() &&
                toks[lhs].kind == TokKind::Ident) {
                r.binding = toks[lhs].text;
                return;
            }
        }

        // Pointer bind: `p = &chain.counter("n")`.
        if (isPunct(toks, pre, "&")) {
            const std::size_t eq = prevCode(toks, pre);
            if (eq < toks.size() && isPunct(toks, eq, "=")) {
                const std::size_t lhs = prevCode(toks, eq);
                if (lhs < toks.size() &&
                    toks[lhs].kind == TokKind::Ident) {
                    r.binding = toks[lhs].text;
                    return;
                }
            }
        }

        // Accessor: `return chain.counter(...)` binds the function;
        // increments look like `++accessor("k", reason)`.
        if (toks[pre].kind == TokKind::Ident &&
            toks[pre].text == "return" && r.fn != kNoFunction) {
            r.binding = g.functions()[r.fn].name;
            return;
        }
    }

    void collectIncrements(const CallGraph &g,
                           std::vector<Increment> &incs) const
    {
        for (std::size_t fi = 0; fi < g.files().size(); ++fi) {
            const SourceFile &f = g.files()[fi];
            if (!inScope(f.path))
                continue;
            const std::vector<Token> &toks = f.tokens;
            for (std::size_t i = 0; i < toks.size(); ++i) {
                if (toks[i].kind != TokKind::Ident)
                    continue;
                // Never treat a member access tail as the binding:
                // `obj.statX += e` still names statX (tail ident is
                // fine), but `statX.value()` must not count.
                if (!isIncrement(toks, i))
                    continue;
                Increment inc;
                inc.binding = toks[i].text;
                inc.fileIndex = fi;
                inc.line = toks[i].line;
                inc.col = toks[i].col;
                const std::size_t fn = g.enclosingFunction(fi, i);
                inc.className = fn == kNoFunction
                                    ? classAt(g, fi, i)
                                    : classOfFn(g, fn);
                incs.push_back(std::move(inc));
            }
        }
    }

    /** Is the ident at @p i the target of ++ / += (directly, through
     *  a '*' deref, or in called `accessor(...)++` form)? */
    bool isIncrement(const std::vector<Token> &toks,
                     std::size_t i) const
    {
        // Prefix: `++x`, `++*x`, `++accessor(...)`.
        std::size_t p = prevCode(toks, i);
        if (p < toks.size() && isPunct(toks, p, "*"))
            p = prevCode(toks, p);
        if (p < toks.size() && isPunct(toks, p, "+")) {
            const std::size_t p2 = prevCode(toks, p);
            if (p2 < toks.size() && isPunct(toks, p2, "+"))
                return true;
        }
        // Postfix / compound: `x++`, `x += e`, `accessor(...) += e`.
        std::size_t n = skipComments(toks, i + 1);
        if (isPunct(toks, n, "(")) {
            const std::size_t close = matchForward(toks, n);
            if (close >= toks.size())
                return false;
            n = skipComments(toks, close + 1);
        }
        if (n < toks.size() && isPunct(toks, n, "+")) {
            const std::size_t n2 = skipComments(toks, n + 1);
            if (isPunct(toks, n2, "+") || isPunct(toks, n2, "="))
                return true;
        }
        return false;
    }

    void collectDecls(const CallGraph &g,
                      std::vector<CounterDecl> &decls) const
    {
        for (std::size_t fi = 0; fi < g.files().size(); ++fi) {
            const SourceFile &f = g.files()[fi];
            if (!inScope(f.path) ||
                startsWith(f.path, "src/common/stats."))
                continue;  // the registry's own internals
            const std::vector<Token> &toks = f.tokens;
            for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
                if (!isIdent(toks, i, "Counter"))
                    continue;
                std::size_t n = skipComments(toks, i + 1);
                while (n < toks.size() && (isPunct(toks, n, "&") ||
                                           isPunct(toks, n, "*")))
                    n = skipComments(toks, n + 1);
                if (n >= toks.size() ||
                    toks[n].kind != TokKind::Ident)
                    continue;
                const std::size_t t = skipComments(toks, n + 1);
                if (!isPunct(toks, t, ";") && !isPunct(toks, t, "=") &&
                    !isPunct(toks, t, "{"))
                    continue;
                CounterDecl d;
                d.binding = toks[n].text;
                d.fileIndex = fi;
                d.className = classAt(g, fi, i);
                decls.push_back(std::move(d));
            }
        }
    }
};

} // anonymous namespace

std::unique_ptr<Pass>
makeCounterLivenessPass()
{
    return std::make_unique<LivenessPass>();
}

} // namespace vic::analysis
