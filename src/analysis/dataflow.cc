#include "analysis/dataflow.hh"

#include <set>
#include <vector>

namespace vic::analysis
{

FixpointStats
solveFixpoint(const CallGraph &graph,
              const std::function<bool(std::size_t)> &recompute)
{
    FixpointStats stats;
    const std::size_t n = graph.functions().size();
    stats.functionsAnalyzed = n;

    std::set<std::size_t> pending;
    for (std::size_t f = 0; f < n; ++f)
        pending.insert(f);

    // A monotone domain with n nodes stabilises in O(n * height)
    // rounds; the guard only exists to turn a non-monotone client bug
    // into termination instead of a hang.
    const std::uint64_t max_rounds =
        static_cast<std::uint64_t>(n) * 4 + 16;

    while (!pending.empty() && stats.iterations < max_rounds) {
        ++stats.iterations;
        const std::vector<std::size_t> round(pending.begin(),
                                             pending.end());
        pending.clear();
        for (std::size_t f : round) {
            ++stats.summariesComputed;
            if (!recompute(f))
                continue;
            for (std::size_t caller : graph.callersOf(f))
                pending.insert(caller);
        }
    }
    return stats;
}

} // namespace vic::analysis
