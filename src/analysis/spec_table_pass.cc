/**
 * @file
 * Pass 3: spec-table completeness and cross-checking.
 *
 * The consistency protocol lives in three switch-shaped tables:
 *
 *  - Table 2 (core/cache_page_state.cc): targetTransition /
 *    otherTransition over (CachePageState x MemOp);
 *  - the MESI tables (cache/mesi_spec.cc): local and snoop
 *    transitions over (MesiState x event);
 *  - the A-F configuration ladder (core/policy_config.cc): each
 *    Table 4 config derives from its predecessor by setting the one
 *    flag the paper adds.
 *
 * The pass parses the switches straight out of the source and checks:
 *
 *  - COVERAGE: every (state, event) pair has an entry — a deleted or
 *    forgotten case is a compile-silent protocol hole (the outer
 *    switch falls through to vic_panic at runtime, on whatever input
 *    first hits it);
 *  - REACHABILITY: every state is reachable from the power-up state,
 *    so no table row is dead specification;
 *  - INTERNAL CONSISTENCY: an entry that requires a purge/flush must
 *    agree with applying the op first (the line is Empty afterwards)
 *    and then the event — exactly the inconsistency class of the
 *    Dirty+DmaRead -> {Present, Flush} bug hand-fixed in the cost-
 *    model work, which claimed a present line that the machine's
 *    flush-invalidates semantics had just emptied, costing a
 *    provably redundant purge downstream. For MESI: write-backs only
 *    from Modified, invalidations end Invalid, writes end Modified,
 *    bus fills only from Invalid;
 *  - CROSS-CHECK, bit for bit: the parsed entries must equal the
 *    compiled functions AND the abstract SpecExecutor's behaviour
 *    (the executable specification src/verify's model refines), so
 *    the parse can never silently drift from what the verifier
 *    actually proves. The ladder is cross-checked field by field
 *    against the linked PolicyConfig factories.
 */

#include <array>
#include <map>
#include <optional>
#include <set>

#include "analysis/cpp_scan.hh"
#include "analysis/pass.hh"

#include "cache/mesi_spec.hh"
#include "common/logging.hh"
#include "core/cache_page_state.hh"
#include "core/policy_config.hh"
#include "core/spec_executor.hh"

namespace vic::analysis
{
namespace
{

// ---------------------------------------------------------------------
// Generic nested-switch table parser
// ---------------------------------------------------------------------

/** One parsed `return {...};` entry. Elements are the braced
 *  initialiser's members reduced to their last identifier ("Present",
 *  "Purge", "true", "current"); the special element "@delegate" marks
 *  a `return targetTransition(current, op);` forward. */
struct ParsedEntry
{
    bool present = false;
    std::vector<std::string> elems;
    std::uint32_t line = 0;
};

/** Parsed (outer-case, inner-case) -> entry table of one function. */
using ParsedTable = std::map<std::pair<std::string, std::string>,
                             ParsedEntry>;

/** Reduce a qualified-name token run starting at @p i to its last
 *  identifier; advances @p i past it. */
std::string
lastIdentOfQualified(const std::vector<Token> &toks, std::size_t &i,
                     std::size_t limit)
{
    std::string last;
    while (i < limit) {
        if (toks[i].kind == TokKind::Ident)
            last = toks[i].text;
        else if (!isPunct(toks, i, "::"))
            break;
        ++i;
    }
    return last;
}

/** Parse the return expression at @p i (just past `return`). */
ParsedEntry
parseReturnExpr(const std::vector<Token> &toks, std::size_t &i,
                std::size_t limit, std::uint32_t line)
{
    ParsedEntry e;
    e.present = true;
    e.line = line;
    i = skipComments(toks, i);
    if (isPunct(toks, i, "{")) {
        const std::size_t close = matchForward(toks, i);
        std::size_t j = i + 1;
        std::string cur_last;
        bool cur_any = false;
        while (j < close) {
            j = skipComments(toks, j);
            if (j >= close)
                break;
            if (isPunct(toks, j, ",")) {
                e.elems.push_back(cur_last);
                cur_last.clear();
                cur_any = false;
                ++j;
                continue;
            }
            if (toks[j].kind == TokKind::Ident) {
                cur_last = toks[j].text;
                cur_any = true;
            }
            ++j;
        }
        if (cur_any)
            e.elems.push_back(cur_last);
        i = close + 1;
    } else if (i < limit && toks[i].kind == TokKind::Ident) {
        // `return targetTransition(current, op);` delegation (or any
        // other call forward).
        e.elems.push_back("@delegate");
        while (i < limit && !isPunct(toks, i, ";"))
            ++i;
    }
    while (i < limit && !isPunct(toks, i, ";"))
        ++i;
    return e;
}

/**
 * Parse a nested-switch table function body: outer switch over the
 * event enum, inner switches over the state enum, entries assigned to
 * the accumulated case labels. @p inner_states lists every expected
 * inner label so outer-level `return` entries can fan out to all of
 * them.
 */
ParsedTable
parseSwitchTable(const std::vector<Token> &toks, std::size_t open,
                 std::size_t close,
                 const std::vector<std::string> &inner_states)
{
    ParsedTable table;
    std::vector<std::string> outer_labels;
    std::vector<std::string> inner_labels;
    int switch_depth = 0;  // 1 = in outer switch body, 2 = inner

    std::size_t i = open + 1;
    while (i < close) {
        i = skipComments(toks, i);
        if (i >= close)
            break;
        if (isIdent(toks, i, "switch")) {
            const std::size_t cond = skipComments(toks, i + 1);
            const std::size_t cond_close = matchForward(toks, cond);
            std::size_t body = skipComments(toks, cond_close + 1);
            if (isPunct(toks, body, "{")) {
                ++switch_depth;
                i = body + 1;
                continue;
            }
            i = cond_close + 1;
            continue;
        }
        if (isIdent(toks, i, "case")) {
            std::size_t j = i + 1;
            const std::string label =
                lastIdentOfQualified(toks, j, close);
            while (j < close && !isPunct(toks, j, ":"))
                ++j;
            if (switch_depth >= 2)
                inner_labels.push_back(label);
            else
                outer_labels.push_back(label);
            i = j + 1;
            continue;
        }
        if (isIdent(toks, i, "return")) {
            const std::uint32_t line = toks[i].line;
            std::size_t j = i + 1;
            ParsedEntry e = parseReturnExpr(toks, j, close, line);
            const std::vector<std::string> &states =
                switch_depth >= 2 ? inner_labels : inner_states;
            for (const std::string &o : outer_labels)
                for (const std::string &s : states)
                    table[{o, s}] = e;
            if (switch_depth >= 2)
                inner_labels.clear();
            else
                outer_labels.clear();
            i = j + 1;
            continue;
        }
        if (isIdent(toks, i, "break")) {
            if (switch_depth <= 1)
                outer_labels.clear();
            i += 1;
            continue;
        }
        if (isPunct(toks, i, "}")) {
            if (switch_depth > 0)
                --switch_depth;
            if (switch_depth <= 1)
                inner_labels.clear();
            ++i;
            continue;
        }
        ++i;
    }
    return table;
}

/** Locate function @p fn_name in @p file and parse its switch table. */
std::optional<ParsedTable>
parseFunctionTable(const SourceFile &file, const char *fn_name,
                   const std::vector<std::string> &inner_states)
{
    for (const FnBody &fn : findFunctions(file.tokens)) {
        if (fn.name == fn_name)
            return parseSwitchTable(file.tokens, fn.open, fn.close,
                                    inner_states);
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------
// Table 2 (cache_page_state.cc)
// ---------------------------------------------------------------------

const std::vector<std::string> kStateNames = {"Empty", "Present",
                                              "Dirty", "Stale"};
const std::vector<std::string> kOpNames = {"CpuRead", "CpuWrite",
                                           "DmaRead", "DmaWrite",
                                           "Purge", "Flush"};

std::optional<CachePageState>
stateByName(const std::string &s)
{
    for (std::size_t i = 0; i < kStateNames.size(); ++i) {
        if (s == kStateNames[i])
            return allCachePageStates[i];
    }
    return std::nullopt;
}

std::optional<RequiredOp>
requiredByName(const std::string &s)
{
    if (s == "Purge")
        return RequiredOp::Purge;
    if (s == "Flush")
        return RequiredOp::Flush;
    if (s == "None")
        return RequiredOp::None;
    return std::nullopt;
}

/** Resolve a parsed Table 2 entry for state @p cur; delegation
 *  resolves through @p target_table. */
std::optional<SpecTransition>
resolveSpecEntry(const ParsedEntry &e, CachePageState cur,
                 const std::string &op,
                 const ParsedTable *target_table)
{
    if (!e.present || e.elems.empty())
        return std::nullopt;
    if (e.elems[0] == "@delegate") {
        if (target_table == nullptr)
            return std::nullopt;
        const auto it = target_table->find(
            {op, kStateNames[static_cast<std::size_t>(cur)]});
        if (it == target_table->end())
            return std::nullopt;
        return resolveSpecEntry(it->second, cur, op, nullptr);
    }
    SpecTransition t;
    if (e.elems[0] == "current") {
        t.next = cur;
    } else if (auto s = stateByName(e.elems[0])) {
        t.next = *s;
    } else {
        return std::nullopt;
    }
    if (e.elems.size() > 1) {
        auto r = requiredByName(e.elems[1]);
        if (!r)
            return std::nullopt;
        t.required = *r;
    }
    return t;
}

// ---------------------------------------------------------------------
// The pass
// ---------------------------------------------------------------------

class SpecTablePass : public Pass
{
  public:
    const char *name() const override { return "spec"; }

    const char *summary() const override
    {
        return "Table 2, MESI and A-F ladder spec tables: complete, "
               "reachable, internally consistent, and bit-for-bit "
               "equal to the compiled abstract model";
    }

    std::vector<RuleInfo> rules() const override
    {
        return {
            {"spec-coverage",
             "a (state, event) pair has no entry, or a spec table "
             "file is missing from the tree"},
            {"spec-unreachable",
             "a protocol state is unreachable from the power-up "
             "state"},
            {"spec-compose",
             "an entry disagrees with op-then-event composition "
             "(the Dirty+DmaRead inconsistency class) or violates a "
             "MESI protocol invariant"},
            {"spec-mismatch",
             "a parsed entry differs bit-for-bit from the compiled "
             "table / abstract SpecExecutor"},
            {"spec-ladder",
             "the A-F configuration ladder is broken: a config does "
             "not derive from its predecessor, or its fields "
             "disagree with the compiled PolicyConfig factories"},
        };
    }

    void run(const PassContext &ctx, Sink &sink,
             PassStats &) const override
    {
        checkTable2(ctx, sink);
        checkMesi(ctx, sink);
        checkLadder(ctx, sink);
    }

  private:
    // --- shared helpers ---

    static const SourceFile *
    requireFile(const PassContext &ctx, Sink &sink, const char *path,
                const char *dir)
    {
        const SourceFile *f = findFile(ctx.files, path);
        if (f == nullptr && hasDir(ctx.files, dir)) {
            sink.report("spec-coverage", path, 1, 1,
                        format("spec table file missing from the "
                               "tree (directory %s exists)",
                               dir));
        }
        return f;
    }

    static void
    checkCoverage(const ParsedTable &t, const SourceFile &f,
                  Sink &sink, const char *table_name,
                  const std::vector<std::string> &events,
                  const std::vector<std::string> &states)
    {
        for (const std::string &e : events) {
            for (const std::string &s : states) {
                if (t.count({e, s}) == 0) {
                    sink.report(
                        "spec-coverage", f.path, 1, 1,
                        format("%s has no entry for (%s, %s)",
                               table_name, s.c_str(), e.c_str()));
                }
            }
        }
    }

    // --- Table 2 ---

    void checkTable2(const PassContext &ctx, Sink &sink) const
    {
        const SourceFile *f = requireFile(
            ctx, sink, "src/core/cache_page_state.cc", "src/core");
        if (f == nullptr)
            return;

        auto target =
            parseFunctionTable(*f, "targetTransition", kStateNames);
        auto other =
            parseFunctionTable(*f, "otherTransition", kStateNames);
        if (!target || !other) {
            sink.report("spec-coverage", f->path, 1, 1,
                        "targetTransition/otherTransition not found "
                        "— Table 2 cannot be checked");
            return;
        }
        checkCoverage(*target, *f, sink, "targetTransition", kOpNames,
                      kStateNames);
        checkCoverage(*other, *f, sink, "otherTransition", kOpNames,
                      kStateNames);

        checkSpecReachability(*target, *other, *f, sink);
        checkSpecCompose(*target, *f, sink, "targetTransition",
                         &*target);
        checkSpecCompose(*other, *f, sink, "otherTransition",
                         &*target);
        checkSpecAgainstCompiled(*target, *other, *f, sink);
        checkSpecAgainstExecutor(*target, *other, *f, sink);
    }

    void checkSpecReachability(const ParsedTable &target,
                               const ParsedTable &other,
                               const SourceFile &f, Sink &sink) const
    {
        std::set<CachePageState> reach = {CachePageState::Empty};
        bool grew = true;
        while (grew) {
            grew = false;
            for (CachePageState s : allCachePageStates) {
                if (reach.count(s) == 0)
                    continue;
                for (const std::string &op : kOpNames) {
                    for (const ParsedTable *t : {&target, &other}) {
                        const auto it = t->find(
                            {op, kStateNames[static_cast<std::size_t>(
                                     s)]});
                        if (it == t->end())
                            continue;
                        auto tr = resolveSpecEntry(it->second, s, op,
                                                   &target);
                        if (tr && reach.insert(tr->next).second)
                            grew = true;
                    }
                }
            }
        }
        for (CachePageState s : allCachePageStates) {
            if (reach.count(s) == 0) {
                sink.report(
                    "spec-unreachable", f.path, 1, 1,
                    format("state %s is unreachable from Empty "
                           "under the parsed Table 2",
                           cachePageStateName(s)));
            }
        }
    }

    /** An entry that requires an op must agree with running the op
     *  first (line becomes Empty) and then the event. */
    void checkSpecCompose(const ParsedTable &t, const SourceFile &f,
                          Sink &sink, const char *table_name,
                          const ParsedTable *target_table) const
    {
        for (const std::string &op : kOpNames) {
            for (CachePageState s : allCachePageStates) {
                const std::string &sn =
                    kStateNames[static_cast<std::size_t>(s)];
                const auto it = t.find({op, sn});
                if (it == t.end())
                    continue;
                auto tr =
                    resolveSpecEntry(it->second, s, op, target_table);
                if (!tr || tr->required == RequiredOp::None)
                    continue;
                const auto post_it =
                    t.find({op, kStateNames[0]});  // Empty
                if (post_it == t.end())
                    continue;
                auto post = resolveSpecEntry(
                    post_it->second, CachePageState::Empty, op,
                    target_table);
                if (!post)
                    continue;
                if (post->required != RequiredOp::None ||
                    post->next != tr->next) {
                    sink.report(
                        "spec-compose", f.path, it->second.line, 1,
                        format("%s (%s, %s) -> {%s, %s} is "
                               "inconsistent: after the %s the line "
                               "is Empty, and (Empty, %s) -> {%s, "
                               "%s}",
                               table_name, sn.c_str(), op.c_str(),
                               cachePageStateName(tr->next),
                               requiredOpName(tr->required),
                               requiredOpName(tr->required),
                               op.c_str(),
                               cachePageStateName(post->next),
                               requiredOpName(post->required)));
                }
            }
        }
    }

    void checkSpecAgainstCompiled(const ParsedTable &target,
                                  const ParsedTable &other,
                                  const SourceFile &f,
                                  Sink &sink) const
    {
        for (std::size_t oi = 0; oi < kOpNames.size(); ++oi) {
            const MemOp op = allMemOps[oi];
            for (CachePageState s : allCachePageStates) {
                const std::string &sn =
                    kStateNames[static_cast<std::size_t>(s)];
                compareOne(target, &target, f, sink,
                           "targetTransition", kOpNames[oi], sn, s,
                           targetTransition(s, op));
                compareOne(other, &target, f, sink,
                           "otherTransition", kOpNames[oi], sn, s,
                           otherTransition(s, op));
            }
        }
    }

    void compareOne(const ParsedTable &t, const ParsedTable *tt,
                    const SourceFile &f, Sink &sink,
                    const char *table_name, const std::string &op,
                    const std::string &sn, CachePageState s,
                    SpecTransition compiled) const
    {
        const auto it = t.find({op, sn});
        if (it == t.end())
            return;  // coverage already reported
        auto parsed = resolveSpecEntry(it->second, s, op, tt);
        if (!parsed) {
            sink.report("spec-mismatch", f.path, it->second.line, 1,
                        format("%s (%s, %s): entry does not parse as "
                               "a SpecTransition",
                               table_name, sn.c_str(), op.c_str()));
            return;
        }
        if (parsed->next != compiled.next ||
            parsed->required != compiled.required) {
            sink.report(
                "spec-mismatch", f.path, it->second.line, 1,
                format("%s (%s, %s): parsed {%s, %s} but the "
                       "compiled table says {%s, %s}",
                       table_name, sn.c_str(), op.c_str(),
                       cachePageStateName(parsed->next),
                       requiredOpName(parsed->required),
                       cachePageStateName(compiled.next),
                       requiredOpName(compiled.required)));
        }
    }

    /** Cross-check the parsed table against the abstract
     *  SpecExecutor — the executable specification the verifier's
     *  model refines. Bit-for-bit: resulting state AND required op. */
    void checkSpecAgainstExecutor(const ParsedTable &target,
                                  const ParsedTable &other,
                                  const SourceFile &f,
                                  Sink &sink) const
    {
        for (std::size_t oi = 0; oi < kOpNames.size(); ++oi) {
            const MemOp op = allMemOps[oi];
            const bool is_dma =
                op == MemOp::DmaRead || op == MemOp::DmaWrite;
            for (CachePageState s : allCachePageStates) {
                const std::string &sn =
                    kStateNames[static_cast<std::size_t>(s)];

                // Target column: the observed colour IS the target
                // (DMA has no target; both columns agree there).
                {
                    SpecExecutor ex(1);
                    ex.setState(0, s);
                    auto ops = ex.apply(
                        op, is_dma ? std::nullopt
                                   : std::optional<CachePageId>(0));
                    executorCompare(target, &target, f, sink,
                                    "targetTransition", kOpNames[oi],
                                    sn, s, ex.state(0), ops, 0);
                }

                // Other column: observe colour 0 while colour 1 is
                // the target of a CPU/Purge/Flush event.
                if (!is_dma) {
                    SpecExecutor ex(2);
                    ex.setState(0, s);
                    auto ops = ex.apply(
                        op, std::optional<CachePageId>(1));
                    executorCompare(other, &target, f, sink,
                                    "otherTransition", kOpNames[oi],
                                    sn, s, ex.state(0), ops, 0);
                }
            }
        }
    }

    void executorCompare(
        const ParsedTable &t, const ParsedTable *tt,
        const SourceFile &f, Sink &sink, const char *table_name,
        const std::string &op, const std::string &sn,
        CachePageState s, CachePageState got,
        const std::vector<SpecExecutor::AppliedOp> &ops,
        CachePageId colour) const
    {
        const auto it = t.find({op, sn});
        if (it == t.end())
            return;
        auto parsed = resolveSpecEntry(it->second, s, op, tt);
        if (!parsed)
            return;  // reported by compareOne
        RequiredOp applied = RequiredOp::None;
        for (const SpecExecutor::AppliedOp &a : ops) {
            if (a.colour == colour)
                applied = a.op;
        }
        if (parsed->next != got || parsed->required != applied) {
            sink.report(
                "spec-mismatch", f.path, it->second.line, 1,
                format("%s (%s, %s): parsed {%s, %s} but the "
                       "abstract SpecExecutor produced {%s, %s}",
                       table_name, sn.c_str(), op.c_str(),
                       cachePageStateName(parsed->next),
                       requiredOpName(parsed->required),
                       cachePageStateName(got),
                       requiredOpName(applied)));
        }
    }

    // --- MESI ---

    void checkMesi(const PassContext &ctx, Sink &sink) const
    {
        const SourceFile *f = requireFile(
            ctx, sink, "src/cache/mesi_spec.cc", "src/cache");
        if (f == nullptr)
            return;

        const std::vector<std::string> states = {
            "Invalid", "Shared", "Exclusive", "Modified"};
        auto local =
            parseFunctionTable(*f, "mesiLocalTransition", states);
        auto snoop =
            parseFunctionTable(*f, "mesiSnoopTransition", states);
        if (!local || !snoop) {
            sink.report("spec-coverage", f->path, 1, 1,
                        "mesiLocalTransition/mesiSnoopTransition not "
                        "found — MESI tables cannot be checked");
            return;
        }
        const std::vector<std::string> local_events = {"Read",
                                                       "Write"};
        const std::vector<std::string> snoop_events = {
            "BusRead", "BusInvalidate"};
        checkCoverage(*local, *f, sink, "mesiLocalTransition",
                      local_events, states);
        checkCoverage(*snoop, *f, sink, "mesiSnoopTransition",
                      snoop_events, states);
        checkMesiConsistency(*local, *snoop, *f, sink);
        checkMesiReachability(*local, *snoop, *f, sink);
        checkMesiAgainstCompiled(*local, *snoop, *f, sink);
    }

    static std::optional<MesiState>
    mesiByName(const std::string &s)
    {
        if (s == "Invalid")
            return MesiState::Invalid;
        if (s == "Shared")
            return MesiState::Shared;
        if (s == "Exclusive")
            return MesiState::Exclusive;
        if (s == "Modified")
            return MesiState::Modified;
        return std::nullopt;
    }

    static const char *
    mesiName(MesiState s)
    {
        switch (s) {
          case MesiState::Invalid: return "Invalid";
          case MesiState::Shared: return "Shared";
          case MesiState::Exclusive: return "Exclusive";
          case MesiState::Modified: return "Modified";
        }
        return "?";
    }

    static std::optional<MesiLocalTransition>
    resolveLocal(const ParsedEntry &e)
    {
        if (!e.present || e.elems.size() != 3)
            return std::nullopt;
        auto a = mesiByName(e.elems[0]);
        auto b = mesiByName(e.elems[1]);
        if (!a || !b)
            return std::nullopt;
        MesiLocalTransition t;
        t.next = *a;
        t.nextIfPeerHolds = *b;
        if (e.elems[2] == "None")
            t.bus = MesiBusOp::None;
        else if (e.elems[2] == "BusRead")
            t.bus = MesiBusOp::BusRead;
        else if (e.elems[2] == "BusReadExclusive")
            t.bus = MesiBusOp::BusReadExclusive;
        else if (e.elems[2] == "BusUpgrade")
            t.bus = MesiBusOp::BusUpgrade;
        else
            return std::nullopt;
        return t;
    }

    static std::optional<MesiSnoopTransition>
    resolveSnoop(const ParsedEntry &e)
    {
        if (!e.present || e.elems.size() != 2)
            return std::nullopt;
        auto a = mesiByName(e.elems[0]);
        if (!a)
            return std::nullopt;
        MesiSnoopTransition t;
        t.next = *a;
        if (e.elems[1] == "true")
            t.writeBack = true;
        else if (e.elems[1] == "false")
            t.writeBack = false;
        else
            return std::nullopt;
        return t;
    }

    void checkMesiConsistency(const ParsedTable &local,
                              const ParsedTable &snoop,
                              const SourceFile &f, Sink &sink) const
    {
        for (const auto &[key, entry] : snoop) {
            auto t = resolveSnoop(entry);
            if (!t)
                continue;
            if (t->writeBack != (key.second == "Modified")) {
                sink.report(
                    "spec-compose", f.path, entry.line, 1,
                    format("mesiSnoopTransition (%s, %s): a snoop "
                           "write-back must happen from Modified and "
                           "only from Modified (memory is current in "
                           "every other state)",
                           key.second.c_str(), key.first.c_str()));
            }
            if (key.first == "BusInvalidate" &&
                t->next != MesiState::Invalid) {
                sink.report(
                    "spec-compose", f.path, entry.line, 1,
                    format("mesiSnoopTransition (%s, BusInvalidate) "
                           "must end Invalid, got %s",
                           key.second.c_str(), mesiName(t->next)));
            }
        }
        for (const auto &[key, entry] : local) {
            auto t = resolveLocal(entry);
            if (!t)
                continue;
            if (key.first == "Write" &&
                (t->next != MesiState::Modified ||
                 t->nextIfPeerHolds != MesiState::Modified)) {
                sink.report(
                    "spec-compose", f.path, entry.line, 1,
                    format("mesiLocalTransition (%s, Write) must end "
                           "Modified on both columns",
                           key.second.c_str()));
            }
            if ((t->bus == MesiBusOp::BusRead ||
                 t->bus == MesiBusOp::BusReadExclusive) &&
                key.second != "Invalid") {
                sink.report(
                    "spec-compose", f.path, entry.line, 1,
                    format("mesiLocalTransition (%s, %s): a bus fill "
                           "can only start from Invalid",
                           key.second.c_str(), key.first.c_str()));
            }
            if (t->bus == MesiBusOp::BusRead &&
                t->nextIfPeerHolds != MesiState::Shared) {
                sink.report(
                    "spec-compose", f.path, entry.line, 1,
                    format("mesiLocalTransition (%s, %s): a busRead "
                           "fill with a peer copy must be Shared",
                           key.second.c_str(), key.first.c_str()));
            }
        }
    }

    void checkMesiReachability(const ParsedTable &local,
                               const ParsedTable &snoop,
                               const SourceFile &f, Sink &sink) const
    {
        std::set<std::string> reach = {"Invalid"};
        bool grew = true;
        while (grew) {
            grew = false;
            for (const auto &[key, entry] : local) {
                if (reach.count(key.second) == 0)
                    continue;
                auto t = resolveLocal(entry);
                if (!t)
                    continue;
                if (reach.insert(mesiName(t->next)).second)
                    grew = true;
                if (reach.insert(mesiName(t->nextIfPeerHolds)).second)
                    grew = true;
            }
            for (const auto &[key, entry] : snoop) {
                if (reach.count(key.second) == 0)
                    continue;
                auto t = resolveSnoop(entry);
                if (t && reach.insert(mesiName(t->next)).second)
                    grew = true;
            }
        }
        for (const char *s :
             {"Invalid", "Shared", "Exclusive", "Modified"}) {
            if (reach.count(s) == 0) {
                sink.report("spec-unreachable", f.path, 1, 1,
                            format("MESI state %s is unreachable "
                                   "from Invalid",
                                   s));
            }
        }
    }

    void checkMesiAgainstCompiled(const ParsedTable &local,
                                  const ParsedTable &snoop,
                                  const SourceFile &f,
                                  Sink &sink) const
    {
        const std::pair<const char *, MesiLocalEvent> levents[] = {
            {"Read", MesiLocalEvent::Read},
            {"Write", MesiLocalEvent::Write}};
        const std::pair<const char *, MesiSnoopEvent> sevents[] = {
            {"BusRead", MesiSnoopEvent::BusRead},
            {"BusInvalidate", MesiSnoopEvent::BusInvalidate}};
        for (MesiState s : allMesiStates) {
            for (const auto &[en, ev] : levents) {
                const auto it = local.find({en, mesiName(s)});
                if (it == local.end())
                    continue;
                auto parsed = resolveLocal(it->second);
                const MesiLocalTransition compiled =
                    mesiLocalTransition(s, ev);
                if (!parsed || !(*parsed == compiled)) {
                    sink.report(
                        "spec-mismatch", f.path, it->second.line, 1,
                        format("mesiLocalTransition (%s, %s) differs "
                               "from the compiled table "
                               "{%s, %s, %s}",
                               mesiName(s), en,
                               mesiName(compiled.next),
                               mesiName(compiled.nextIfPeerHolds),
                               mesiBusOpName(compiled.bus)));
                }
            }
            for (const auto &[en, ev] : sevents) {
                const auto it = snoop.find({en, mesiName(s)});
                if (it == snoop.end())
                    continue;
                auto parsed = resolveSnoop(it->second);
                const MesiSnoopTransition compiled =
                    mesiSnoopTransition(s, ev);
                if (!parsed || !(*parsed == compiled)) {
                    sink.report(
                        "spec-mismatch", f.path, it->second.line, 1,
                        format("mesiSnoopTransition (%s, %s) differs "
                               "from the compiled table {%s, "
                               "writeBack=%d}",
                               mesiName(s), en,
                               mesiName(compiled.next),
                               compiled.writeBack ? 1 : 0));
                }
            }
        }
    }

    // --- A-F ladder ---

    struct ParsedConfig
    {
        bool present = false;
        std::string base;  ///< "" = default-constructed
        std::vector<std::pair<std::string, std::string>> assigns;
        std::uint32_t line = 0;
    };

    static ParsedConfig
    parseConfigFn(const SourceFile &f, const char *fn_name)
    {
        ParsedConfig pc;
        for (const FnBody &fn : findFunctions(f.tokens)) {
            if (fn.name != fn_name)
                continue;
            const std::vector<Token> &toks = f.tokens;
            pc.present = true;
            pc.line = toks[fn.open].line;
            std::size_t i = fn.open + 1;
            while (i < fn.close) {
                i = skipComments(toks, i);
                if (i >= fn.close)
                    break;
                if (isIdent(toks, i, "PolicyConfig")) {
                    // `PolicyConfig p;` or `PolicyConfig p = base();`
                    std::size_t j = i + 1;
                    while (j < fn.close && !isPunct(toks, j, ";") &&
                           !isPunct(toks, j, "="))
                        ++j;
                    if (isPunct(toks, j, "=")) {
                        const std::size_t b =
                            skipComments(toks, j + 1);
                        if (toks[b].kind == TokKind::Ident)
                            pc.base = toks[b].text;
                        while (j < fn.close &&
                               !isPunct(toks, j, ";"))
                            ++j;
                    }
                    i = j + 1;
                    continue;
                }
                if (toks[i].kind == TokKind::Ident &&
                    isPunct(toks, i + 1, ".")) {
                    // `p.field = value;`
                    const std::size_t field_tok =
                        skipComments(toks, i + 2);
                    std::size_t j = field_tok + 1;
                    if (toks[field_tok].kind == TokKind::Ident &&
                        isPunct(toks, skipComments(toks, j), "=")) {
                        j = skipComments(toks, j) + 1;
                        std::string value;
                        while (j < fn.close &&
                               !isPunct(toks, j, ";")) {
                            if (toks[j].kind != TokKind::Comment)
                                value += toks[j].text;
                            ++j;
                        }
                        pc.assigns.emplace_back(
                            toks[field_tok].text, value);
                    }
                    while (j < fn.close && !isPunct(toks, j, ";"))
                        ++j;
                    i = j + 1;
                    continue;
                }
                ++i;
            }
            break;
        }
        return pc;
    }

    /** Canonical field->value text rendering of a compiled config. */
    static std::vector<std::pair<std::string, std::string>>
    fieldsOf(const PolicyConfig &p)
    {
        auto b = [](bool v) { return v ? "true" : "false"; };
        return {
            {"name", "\"" + p.name + "\""},
            {"pmapKind", p.pmapKind == PmapKind::Classic
                             ? "PmapKind::Classic"
                             : "PmapKind::Lazy"},
            {"cleanOnUnmap", b(p.cleanOnUnmap)},
            {"equalVaOnly", b(p.equalVaOnly)},
            {"breakAlignedAliases", b(p.breakAlignedAliases)},
            {"brokenNoConsistency", b(p.brokenNoConsistency)},
            {"useNeedData", b(p.useNeedData)},
            {"useWillOverwrite", b(p.useWillOverwrite)},
            {"useModifiedBit", b(p.useModifiedBit)},
            {"alignIpc", b(p.alignIpc)},
            {"alignSharedPages", b(p.alignSharedPages)},
            {"alignedPrepare", b(p.alignedPrepare)},
            {"alignTextOnly", b(p.alignTextOnly)},
            {"freeListOrg",
             p.freeListOrg == FreePageList::Organisation::Single
                 ? "FreePageList::Organisation::Single"
                 : "FreePageList::Organisation::PerColour"},
        };
    }

    void checkLadder(const PassContext &ctx, Sink &sink) const
    {
        const SourceFile *f = requireFile(
            ctx, sink, "src/core/policy_config.cc", "src/core");
        if (f == nullptr)
            return;

        const struct
        {
            const char *fn;
            const char *expected_base;
            PolicyConfig compiled;
            PolicyConfig compiled_base;
        } ladder[] = {
            {"configA", "", PolicyConfig::configA(), PolicyConfig{}},
            {"configB", "", PolicyConfig::configB(), PolicyConfig{}},
            {"configC", "configB", PolicyConfig::configC(),
             PolicyConfig::configB()},
            {"configD", "configC", PolicyConfig::configD(),
             PolicyConfig::configC()},
            {"configE", "configD", PolicyConfig::configE(),
             PolicyConfig::configD()},
            {"configF", "configE", PolicyConfig::configF(),
             PolicyConfig::configE()},
        };

        for (const auto &step : ladder) {
            ParsedConfig pc = parseConfigFn(*f, step.fn);
            if (!pc.present) {
                sink.report("spec-ladder", f->path, 1, 1,
                            format("Table 4 config factory %s() is "
                                   "missing",
                                   step.fn));
                continue;
            }
            if (pc.base != step.expected_base) {
                sink.report(
                    "spec-ladder", f->path, pc.line, 1,
                    format("%s() must derive from %s (the ladder is "
                           "cumulative), but derives from '%s'",
                           step.fn,
                           *step.expected_base
                               ? step.expected_base
                               : "the default PolicyConfig",
                           pc.base.empty() ? "the default"
                                           : pc.base.c_str()));
            }

            // Bit-for-bit: base fields overridden by the parsed
            // assignments must equal the compiled factory.
            auto expected = fieldsOf(step.compiled_base);
            for (const auto &[field, value] : pc.assigns) {
                bool known = false;
                for (auto &[k, v] : expected) {
                    if (k == field) {
                        v = value;
                        known = true;
                    }
                }
                if (!known) {
                    sink.report(
                        "spec-ladder", f->path, pc.line, 1,
                        format("%s() assigns unknown PolicyConfig "
                               "field '%s' — update the analyzer's "
                               "field table",
                               step.fn, field.c_str()));
                }
            }
            const auto got = fieldsOf(step.compiled);
            for (std::size_t i = 0; i < got.size(); ++i) {
                if (expected[i].second != got[i].second) {
                    sink.report(
                        "spec-ladder", f->path, pc.line, 1,
                        format("%s(): parsed source gives %s = %s "
                               "but the compiled factory has %s",
                               step.fn, expected[i].first.c_str(),
                               expected[i].second.c_str(),
                               got[i].second.c_str()));
                }
            }
        }

        // The sweep must list exactly A..F in order.
        const std::vector<PolicyConfig> sweep =
            PolicyConfig::table4Sweep();
        const PolicyConfig expect[] = {
            PolicyConfig::configA(), PolicyConfig::configB(),
            PolicyConfig::configC(), PolicyConfig::configD(),
            PolicyConfig::configE(), PolicyConfig::configF()};
        bool sweep_ok = sweep.size() == 6;
        for (std::size_t i = 0; sweep_ok && i < sweep.size(); ++i)
            sweep_ok = sweep[i].name == expect[i].name;
        if (!sweep_ok) {
            sink.report("spec-ladder", f->path, 1, 1,
                        "PolicyConfig::table4Sweep() does not list "
                        "configs A..F in the paper's order");
        }
    }
};

} // anonymous namespace

std::unique_ptr<Pass>
makeSpecTablePass()
{
    return std::make_unique<SpecTablePass>();
}

} // namespace vic::analysis
