/**
 * @file
 * Pass: addr-kind — virtual/physical address-bit laundering through
 * raw uint64_t channels.
 *
 * The paper's whole subject is that virtual and physical addresses
 * index and tag caches DIFFERENTLY; the repo encodes that at the type
 * level with VirtAddr / PhysAddr / SpaceVa wrappers whose payload is
 * reachable only through `.value`. The type system stops direct
 * cross-assignment, but the moment bits pass through a raw
 * `std::uint64_t` (a helper parameter, a local, a return) the kinds
 * wash out and nothing stops physical bits from being re-wrapped as a
 * virtual address two calls later.
 *
 * This pass tracks address KINDS through exactly those channels:
 *
 *   - an unwrap `x.value` has the kind of x's declared wrapper type
 *     (VirtAddr/SpaceVa -> virtual, PhysAddr -> physical);
 *   - a raw-u64 local takes its initialiser's kind;
 *   - a raw-u64 function return joins the kinds of all `return`
 *     expressions (computed to a fixed point over the call graph);
 *   - a raw-u64 parameter joins the kinds of the argument expressions
 *     at EVERY call site in the tree (caller-to-callee propagation,
 *     iterated globally until stable).
 *
 * Wrapping (`PhysAddr{...}` / `VirtAddr{...}`) re-types the bits, so
 * wrapped subexpressions contribute nothing to the surrounding raw
 * expression's kind. Typedef'd integers (FrameId and friends) are
 * deliberately NOT channels: they are kind-neutral handles, and only
 * the literal `uint64_t` spelling marks a raw address conduit.
 *
 * Rules:
 *   addr-kind-mixed — a raw uint64_t parameter observes BOTH kinds
 *     across call sites. Genuinely polymorphic channels exist (a
 *     virtually-indexed cache's set-index helper takes va-bits or
 *     pa-bits by configuration) and carry a documented suppression.
 *   addr-kind-rewrap — bits of a pure kind are re-wrapped as the
 *     OPPOSITE kind with no arithmetic in between. Translation
 *     compositions (`PhysAddr{frame | (va.value & mask)}`) contain
 *     operators and are exempt; a bare `PhysAddr{va.value}` is a
 *     laundering bug, not a translation.
 */

#include <algorithm>
#include <map>
#include <set>

#include "analysis/callgraph.hh"
#include "analysis/cpp_scan.hh"
#include "analysis/pass.hh"

#include "common/logging.hh"

namespace vic::analysis
{
namespace
{

const char *const kRuleMixed = "addr-kind-mixed";
const char *const kRuleRewrap = "addr-kind-rewrap";

constexpr unsigned kNone = 0;
constexpr unsigned kVirt = 1;
constexpr unsigned kPhys = 2;
constexpr unsigned kMixed = 3;

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Wrapper-type kind for an identifier, or kNone. */
unsigned
wrapKindOf(const std::string &name)
{
    if (name == "VirtAddr" || name == "SpaceVa")
        return kVirt;
    if (name == "PhysAddr")
        return kPhys;
    return kNone;
}

const char *
kindName(unsigned k)
{
    return k == kVirt ? "virtual" : k == kPhys ? "physical" : "mixed";
}

std::size_t
prevCode(const std::vector<Token> &toks, std::size_t i)
{
    while (i > 0) {
        --i;
        if (toks[i].kind != TokKind::Comment)
            return i;
    }
    return toks.size();
}

struct U64Param
{
    std::string name;
    std::size_t argIndex = 0;  ///< position in the parameter list
    std::uint32_t line = 0;
    std::uint32_t col = 0;
};

struct U64Local
{
    std::string name;
    std::size_t initBegin = 0;  ///< token range of the initialiser
    std::size_t initEnd = 0;    ///< (empty when uninitialised)
};

struct ArgRange
{
    std::size_t begin = 0;
    std::size_t end = 0;
};

struct CallArgs
{
    std::string callee;
    std::vector<ArgRange> args;
};

struct RewrapSite
{
    unsigned wrap = kNone;
    std::string wrapName;
    std::size_t begin = 0;  ///< inner expression token range
    std::size_t end = 0;
    std::uint32_t line = 0;
    std::uint32_t col = 0;
};

struct ReturnExpr
{
    std::size_t begin = 0;
    std::size_t end = 0;
};

/** Everything the kind evaluator needs about one function, computed
 *  once from the token stream. */
struct FnEnv
{
    bool inScope = false;
    std::map<std::string, unsigned> typedKinds;  ///< wrapper decls
    std::vector<U64Param> u64Params;
    std::map<std::string, std::size_t> paramSlot;  ///< name -> index
    std::vector<U64Local> u64Locals;
    std::map<std::string, std::size_t> localSlot;
    std::vector<ReturnExpr> returns;
    std::vector<CallArgs> calls;
    std::vector<RewrapSite> rewraps;
};

class AddrKindPass : public Pass
{
  public:
    const char *name() const override { return "addr-kind"; }

    const char *summary() const override
    {
        return "virtual and physical address bits never swap kinds "
               "while travelling through raw uint64_t parameters, "
               "locals and returns (whole-program propagation)";
    }

    std::vector<RuleInfo> rules() const override
    {
        return {
            {kRuleMixed,
             "a raw uint64_t parameter receives virtual-address bits "
             "from some call sites and physical-address bits from "
             "others — the kinds wash out in one channel"},
            {kRuleRewrap,
             "address bits of one kind are re-wrapped as the opposite "
             "wrapper type with no intervening arithmetic — "
             "laundering, not translation"},
        };
    }

    void run(const PassContext &ctx, Sink &sink,
             PassStats &stats) const override
    {
        CallGraph local;
        const CallGraph *gp = ctx.graph;
        if (gp == nullptr) {
            local = CallGraph::build(ctx.files);
            gp = &local;
        }
        const CallGraph &g = *gp;
        const std::vector<FnInfo> &fns = g.functions();

        std::vector<FnEnv> envs(fns.size());
        for (std::size_t f = 0; f < fns.size(); ++f)
            buildEnv(g, f, envs[f]);

        // Kind state, driven to a global fixed point. retKind flows
        // callee->caller; paramKind flows caller->callee; locals sit
        // in between. All joins are monotone in the {None,V,P,Mixed}
        // lattice, so round-robin sweeps converge.
        std::vector<unsigned> retKind(fns.size(), kNone);
        std::vector<std::vector<unsigned>> paramKind(fns.size());
        std::vector<std::vector<unsigned>> localKind(fns.size());
        std::size_t channels = 0;
        for (std::size_t f = 0; f < fns.size(); ++f) {
            paramKind[f].assign(envs[f].u64Params.size(), kNone);
            localKind[f].assign(envs[f].u64Locals.size(), kNone);
            channels +=
                envs[f].u64Params.size() + envs[f].u64Locals.size();
        }

        std::uint64_t rounds = 0;
        bool changed = true;
        while (changed && rounds < 12) {
            changed = false;
            ++rounds;
            for (std::size_t f = 0; f < fns.size(); ++f) {
                const FnEnv &env = envs[f];
                const std::vector<Token> &toks =
                    g.files()[fns[f].fileIndex].tokens;

                for (std::size_t l = 0; l < env.u64Locals.size();
                     ++l) {
                    const U64Local &lo = env.u64Locals[l];
                    const unsigned k =
                        localKind[f][l] |
                        evalKind(g, toks, f, envs, retKind, paramKind,
                                 localKind, lo.initBegin, lo.initEnd);
                    if (k != localKind[f][l]) {
                        localKind[f][l] = k;
                        changed = true;
                    }
                }
                for (const ReturnExpr &r : env.returns) {
                    const unsigned k =
                        retKind[f] |
                        evalKind(g, toks, f, envs, retKind, paramKind,
                                 localKind, r.begin, r.end);
                    if (k != retKind[f]) {
                        retKind[f] = k;
                        changed = true;
                    }
                }
                for (const CallArgs &c : env.calls) {
                    for (std::size_t callee : g.resolve(c.callee)) {
                        for (std::size_t a = 0; a < c.args.size();
                             ++a) {
                            const auto &ps = envs[callee].u64Params;
                            for (std::size_t s = 0; s < ps.size();
                                 ++s) {
                                if (ps[s].argIndex != a)
                                    continue;
                                const unsigned k =
                                    paramKind[callee][s] |
                                    evalKind(g, toks, f, envs,
                                             retKind, paramKind,
                                             localKind,
                                             c.args[a].begin,
                                             c.args[a].end);
                                if (k != paramKind[callee][s]) {
                                    paramKind[callee][s] = k;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
        }

        stats.functionsAnalyzed = fns.size();
        stats.summariesComputed = channels;
        stats.fixpointIterations = rounds;

        // Rule 1: a raw-u64 parameter observed with both kinds.
        for (std::size_t f = 0; f < fns.size(); ++f) {
            if (!envs[f].inScope)
                continue;
            const std::string &path =
                g.files()[fns[f].fileIndex].path;
            for (std::size_t s = 0; s < envs[f].u64Params.size();
                 ++s) {
                if (paramKind[f][s] != kMixed)
                    continue;
                const U64Param &p = envs[f].u64Params[s];
                sink.report(
                    kRuleMixed, path, p.line, p.col,
                    format("raw uint64_t parameter '%s' of '%s' "
                           "receives both virtual- and "
                           "physical-address bits across call sites "
                           "— the kinds wash out in one channel",
                           p.name.c_str(), fns[f].name.c_str()));
            }
        }

        // Rule 2: pure-kind bits re-wrapped as the opposite wrapper.
        for (std::size_t f = 0; f < fns.size(); ++f) {
            if (!envs[f].inScope)
                continue;
            const std::string &path =
                g.files()[fns[f].fileIndex].path;
            const std::vector<Token> &toks =
                g.files()[fns[f].fileIndex].tokens;
            for (const RewrapSite &rw : envs[f].rewraps) {
                if (hasArithmetic(toks, rw.begin, rw.end))
                    continue;
                const unsigned inner =
                    evalKind(g, toks, f, envs, retKind, paramKind,
                             localKind, rw.begin, rw.end);
                if ((rw.wrap == kPhys && inner == kVirt) ||
                    (rw.wrap == kVirt && inner == kPhys)) {
                    sink.report(
                        kRuleRewrap, path, rw.line, rw.col,
                        format("%s-address bits re-wrapped as %s "
                               "with no intervening arithmetic — "
                               "laundering, not translation",
                               kindName(inner),
                               rw.wrapName.c_str()));
                }
            }
        }
    }

  private:
    /** Operators that mark a genuine bit-level translation between
     *  the unwrap and the re-wrap. `->` lexes as '-' '>', so pointer
     *  chases also (conservatively) count. */
    bool hasArithmetic(const std::vector<Token> &toks,
                       std::size_t begin, std::size_t end) const
    {
        static const char *const ops[] = {"+", "-", "*", "/", "%",
                                          "&", "|", "^", "~", "?"};
        for (std::size_t i = begin; i < end; ++i) {
            if (toks[i].kind != TokKind::Punct)
                continue;
            for (const char *op : ops) {
                if (toks[i].text == op)
                    return true;
            }
        }
        return false;
    }

    /** Join the kinds contributed by every channel read in the token
     *  range [begin, end): `x.value` unwraps, raw-u64 params/locals,
     *  and calls to functions with a known raw-u64 return kind.
     *  Wrapped subexpressions are skipped: the wrap re-types them. */
    unsigned evalKind(const CallGraph &g,
                      const std::vector<Token> &toks, std::size_t fn,
                      const std::vector<FnEnv> &envs,
                      const std::vector<unsigned> &retKind,
                      const std::vector<std::vector<unsigned>> &paramKind,
                      const std::vector<std::vector<unsigned>> &localKind,
                      std::size_t begin, std::size_t end) const
    {
        const FnEnv &env = envs[fn];
        unsigned k = kNone;
        for (std::size_t i = begin; i < end; ++i) {
            if (toks[i].kind != TokKind::Ident)
                continue;

            // A wrap re-types its operand: skip the whole group.
            if (wrapKindOf(toks[i].text) != kNone) {
                const std::size_t open = skipComments(toks, i + 1);
                if (isPunct(toks, open, "(") ||
                    isPunct(toks, open, "{")) {
                    i = std::min(matchForward(toks, open), end);
                    continue;
                }
            }

            // Only chain HEADS are channel reads: `beat->pa.value`
            // must resolve against `pa` the member, not a local that
            // happens to share the name. (`->` lexes as '-' '>'.)
            const std::size_t p = prevCode(toks, i);
            if (p < toks.size() && toks[p].kind == TokKind::Punct) {
                if (toks[p].text == "." || toks[p].text == "::")
                    continue;
                if (toks[p].text == ">") {
                    const std::size_t q = prevCode(toks, p);
                    if (q < toks.size() && isPunct(toks, q, "-"))
                        continue;
                }
            }

            const std::size_t n = skipComments(toks, i + 1);

            // Unwrap: `x.value` with x a declared wrapper.
            if (isPunct(toks, n, ".")) {
                const std::size_t v = skipComments(toks, n + 1);
                if (v < end && isIdent(toks, v, "value")) {
                    const auto it = env.typedKinds.find(toks[i].text);
                    if (it != env.typedKinds.end())
                        k |= it->second;
                    i = v;
                    continue;
                }
            }

            // Call: join the raw-u64 return kind of every candidate.
            if (isPunct(toks, n, "(")) {
                for (std::size_t d : g.resolve(toks[i].text))
                    k |= retKind[d];
                continue;
            }

            const auto ps = env.paramSlot.find(toks[i].text);
            if (ps != env.paramSlot.end()) {
                k |= paramKind[fn][ps->second];
                continue;
            }
            const auto ls = env.localSlot.find(toks[i].text);
            if (ls != env.localSlot.end())
                k |= localKind[fn][ls->second];
        }
        return k;
    }

    void buildEnv(const CallGraph &g, std::size_t f,
                  FnEnv &env) const
    {
        const FnInfo &fn = g.functions()[f];
        const SourceFile &src = g.files()[fn.fileIndex];
        const std::vector<Token> &toks = src.tokens;
        env.inScope = startsWith(src.path, "src/") &&
                      !startsWith(src.path, "src/analysis/");
        if (!env.inScope)
            return;

        parseParams(toks, fn, env);
        scanBody(g, toks, fn, env);
    }

    void parseParams(const std::vector<Token> &toks,
                     const FnInfo &fn, FnEnv &env) const
    {
        if (fn.paramOpen >= fn.paramClose)
            return;
        std::size_t seg_begin = fn.paramOpen + 1;
        std::size_t arg_index = 0;
        int depth = 0;
        for (std::size_t i = fn.paramOpen + 1; i <= fn.paramClose;
             ++i) {
            const bool at_end = i == fn.paramClose;
            if (!at_end && toks[i].kind == TokKind::Punct) {
                const std::string &t = toks[i].text;
                if (t == "(" || t == "[" || t == "{" || t == "<")
                    ++depth;
                else if (t == ")" || t == "]" || t == "}" || t == ">")
                    --depth;
            }
            if (!at_end &&
                !(depth == 0 && isPunct(toks, i, ",")))
                continue;
            classifyParam(toks, seg_begin, i, arg_index, env);
            seg_begin = i + 1;
            ++arg_index;
        }
    }

    void classifyParam(const std::vector<Token> &toks,
                       std::size_t begin, std::size_t end,
                       std::size_t arg_index, FnEnv &env) const
    {
        // The declared name: the last identifier before any default.
        std::size_t name_tok = toks.size();
        bool is_u64 = false;
        unsigned wrap = kNone;
        bool has_template = false;
        for (std::size_t i = begin; i < end; ++i) {
            if (isPunct(toks, i, "="))
                break;
            if (isPunct(toks, i, "<"))
                has_template = true;
            if (toks[i].kind != TokKind::Ident)
                continue;
            if (toks[i].text == "uint64_t")
                is_u64 = true;
            else if (wrapKindOf(toks[i].text) != kNone)
                wrap = wrapKindOf(toks[i].text);
            name_tok = i;
        }
        if (name_tok >= toks.size())
            return;
        const std::string &name = toks[name_tok].text;
        if (name == "uint64_t" || wrapKindOf(name) != kNone)
            return;  // unnamed parameter
        if (wrap != kNone) {
            env.typedKinds[name] = wrap;
            return;
        }
        if (!is_u64 || has_template)
            return;
        U64Param p;
        p.name = name;
        p.argIndex = arg_index;
        p.line = toks[name_tok].line;
        p.col = toks[name_tok].col;
        env.paramSlot[name] = env.u64Params.size();
        env.u64Params.push_back(std::move(p));
    }

    /** One flat scan of the body for declarations, returns, call
     *  arguments and rewrap sites. Flow-insensitive by design: kinds
     *  only ever join. */
    void scanBody(const CallGraph &g, const std::vector<Token> &toks,
                  const FnInfo &fn, FnEnv &env) const
    {
        for (std::size_t i = fn.extentBegin; i < fn.close; ++i) {
            if (toks[i].kind != TokKind::Ident)
                continue;
            const std::string &txt = toks[i].text;
            const std::size_t n = skipComments(toks, i + 1);

            // Rewrap site: `PhysAddr(expr)` / `VirtAddr{expr}` with
            // nothing between the type name and the opener. A named
            // declaration (`PhysAddr base(...)`) has the variable
            // name in between and is handled as a typed decl below.
            const unsigned wk = wrapKindOf(txt);
            if (wk != kNone &&
                (isPunct(toks, n, "(") || isPunct(toks, n, "{"))) {
                const std::size_t close = matchForward(toks, n);
                if (close < fn.close) {
                    RewrapSite rw;
                    rw.wrap = wk;
                    rw.wrapName = txt;
                    rw.begin = n + 1;
                    rw.end = close;
                    rw.line = toks[i].line;
                    rw.col = toks[i].col;
                    env.rewraps.push_back(std::move(rw));
                }
                continue;
            }

            // Typed / raw-u64 declarations: `T [&*] name [=({;]`.
            if (wk != kNone || txt == "uint64_t") {
                std::size_t d = n;
                while (d < fn.close && (isPunct(toks, d, "&") ||
                                        isPunct(toks, d, "*")))
                    d = skipComments(toks, d + 1);
                if (d < fn.close &&
                    toks[d].kind == TokKind::Ident) {
                    const std::size_t t = skipComments(toks, d + 1);
                    const bool decl =
                        isPunct(toks, t, "=") ||
                        isPunct(toks, t, "(") ||
                        isPunct(toks, t, "{") ||
                        isPunct(toks, t, ";");
                    if (decl && wk != kNone) {
                        env.typedKinds[toks[d].text] = wk;
                        continue;
                    }
                    if (decl && wk == kNone) {
                        U64Local lo;
                        lo.name = toks[d].text;
                        if (isPunct(toks, t, "=")) {
                            lo.initBegin = t + 1;
                            lo.initEnd =
                                scanToSemicolon(toks, t + 1,
                                                fn.close);
                        } else if (isPunct(toks, t, "(") ||
                                   isPunct(toks, t, "{")) {
                            lo.initBegin = t + 1;
                            lo.initEnd = std::min(
                                matchForward(toks, t), fn.close);
                        }
                        env.localSlot[lo.name] =
                            env.u64Locals.size();
                        env.u64Locals.push_back(std::move(lo));
                        continue;
                    }
                }
            }

            // Return expression.
            if (txt == "return") {
                ReturnExpr r;
                r.begin = i + 1;
                r.end = scanToSemicolon(toks, i + 1, fn.close);
                if (r.end > r.begin)
                    env.returns.push_back(r);
                continue;
            }

            // Call site with argument ranges. The wrapper ctors are
            // excluded above; their polymorphic u64 parameter is the
            // DEFINITIONAL kind boundary, owned by the rewrap rule.
            if (isPunct(toks, n, "(") && txt != "if" &&
                txt != "for" && txt != "while" && txt != "switch" &&
                txt != "catch" && txt != "sizeof") {
                const std::size_t close = matchForward(toks, n);
                if (close >= fn.close) {
                    i = n;
                    continue;
                }
                CallArgs ca;
                ca.callee = txt;
                std::size_t seg = n + 1;
                int depth = 0;
                for (std::size_t j = n + 1; j <= close; ++j) {
                    const bool at_end = j == close;
                    if (!at_end &&
                        toks[j].kind == TokKind::Punct) {
                        const std::string &t = toks[j].text;
                        if (t == "(" || t == "[" || t == "{")
                            ++depth;
                        else if (t == ")" || t == "]" || t == "}")
                            --depth;
                    }
                    if (!at_end && !(depth == 0 &&
                                     isPunct(toks, j, ",")))
                        continue;
                    if (j > seg)
                        ca.args.push_back({seg, j});
                    seg = j + 1;
                }
                if (!ca.args.empty())
                    env.calls.push_back(std::move(ca));
            }
        }
    }

    /** First ';' at this nesting level from @p i, group-skipping. */
    std::size_t scanToSemicolon(const std::vector<Token> &toks,
                                std::size_t i,
                                std::size_t limit) const
    {
        std::size_t j = i;
        while (j < limit && !isPunct(toks, j, ";")) {
            if (isPunct(toks, j, "(") || isPunct(toks, j, "{") ||
                isPunct(toks, j, "[")) {
                j = matchForward(toks, j) + 1;
                continue;
            }
            ++j;
        }
        return std::min(j, limit);
    }
};

} // anonymous namespace

std::unique_ptr<Pass>
makeAddrKindPass()
{
    return std::make_unique<AddrKindPass>();
}

} // namespace vic::analysis
