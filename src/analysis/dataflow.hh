/**
 * @file
 * Summary-based fixed-point dataflow over the call graph.
 *
 * The engine knows nothing about any particular domain. A client owns
 * a table of per-function summaries and supplies `recompute(fn)`,
 * which re-derives function @p fn's summary from its body plus the
 * CURRENT summaries of its callees, and returns true when the stored
 * summary changed. The engine drives that to a fixed point bottom-up:
 * every function is computed at least once, and whenever a summary
 * changes, every caller of that function is queued for recomputation.
 *
 * Cycles (recursion, mutual recursion) need no special casing: the
 * client's domain must be monotone (summaries start at bottom and
 * only grow), so iteration converges; the engine simply keeps
 * re-queuing around the cycle until nothing moves. A generous sweep
 * guard bounds the worst case against a non-monotone client bug.
 *
 * Determinism: each round processes its pending set in ascending
 * function-index order, and the pending set itself is ordered, so
 * the sequence of recompute calls — and therefore any diagnostics a
 * client emits from them — is identical across runs and machines.
 */

#ifndef VIC_ANALYSIS_DATAFLOW_HH
#define VIC_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <functional>

#include "analysis/callgraph.hh"

namespace vic::analysis
{

/** Wall-independent effort counters for one fixed-point solve; these
 *  surface in the v2 report so CI can watch analysis cost without
 *  timestamps breaking determinism. */
struct FixpointStats
{
    std::uint64_t functionsAnalyzed = 0;  ///< nodes in the solve
    std::uint64_t summariesComputed = 0;  ///< recompute invocations
    std::uint64_t iterations = 0;         ///< rounds until stable

    void accumulate(const FixpointStats &o)
    {
        functionsAnalyzed += o.functionsAnalyzed;
        summariesComputed += o.summariesComputed;
        iterations += o.iterations;
    }
};

/**
 * Run @p recompute over every function of @p graph to a fixed point.
 * @p recompute must return true iff the summary it maintains for the
 * given function index changed.
 */
FixpointStats
solveFixpoint(const CallGraph &graph,
              const std::function<bool(std::size_t)> &recompute);

} // namespace vic::analysis

#endif // VIC_ANALYSIS_DATAFLOW_HH
