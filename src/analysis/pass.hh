/**
 * @file
 * The per-file pass framework.
 *
 * A Pass owns a family of rule ids, scans the discovered files and
 * reports diagnostics into the shared Sink (which applies inline
 * suppressions). Passes are stateless between runs and must be
 * deterministic: same tree in, byte-identical diagnostics out.
 */

#ifndef VIC_ANALYSIS_PASS_HH
#define VIC_ANALYSIS_PASS_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/source.hh"

namespace vic::analysis
{

struct RuleInfo
{
    const char *id;
    const char *summary;
};

struct PassContext
{
    std::string root;
    const std::vector<SourceFile> &files;
};

class Pass
{
  public:
    virtual ~Pass() = default;
    virtual const char *name() const = 0;
    virtual const char *summary() const = 0;
    virtual std::vector<RuleInfo> rules() const = 0;
    virtual void run(const PassContext &ctx, Sink &sink) const = 0;
};

// Factories, one per pass (definitions live with each pass).
std::unique_ptr<Pass> makeDeterminismPass();
std::unique_ptr<Pass> makeDrainPass();
std::unique_ptr<Pass> makeSpecTablePass();
std::unique_ptr<Pass> makeCounterPass();
std::unique_ptr<Pass> makeLayeringPass();

/** All passes in their canonical run order. */
std::vector<std::unique_ptr<Pass>> makeAllPasses();

} // namespace vic::analysis

#endif // VIC_ANALYSIS_PASS_HH
