/**
 * @file
 * The per-file pass framework.
 *
 * A Pass owns a family of rule ids, scans the discovered files and
 * reports diagnostics into the shared Sink (which applies inline
 * suppressions). Passes are stateless between runs and must be
 * deterministic: same tree in, byte-identical diagnostics out.
 */

#ifndef VIC_ANALYSIS_PASS_HH
#define VIC_ANALYSIS_PASS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/source.hh"

namespace vic::analysis
{

class CallGraph;

struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** Wall-independent effort counters one pass reports into the v2
 *  report ("pass_stats"); zero for the purely per-file passes. */
struct PassStats
{
    std::uint64_t functionsAnalyzed = 0;
    std::uint64_t summariesComputed = 0;
    std::uint64_t fixpointIterations = 0;
};

struct PassContext
{
    std::string root;
    const std::vector<SourceFile> &files;
    /** Whole-program call graph, built once per lint run; the
     *  interprocedural passes fall back to building their own when a
     *  bespoke context (tests) leaves it null. */
    const CallGraph *graph = nullptr;
};

class Pass
{
  public:
    virtual ~Pass() = default;
    virtual const char *name() const = 0;
    virtual const char *summary() const = 0;
    virtual std::vector<RuleInfo> rules() const = 0;
    virtual void run(const PassContext &ctx, Sink &sink,
                     PassStats &stats) const = 0;
};

// Factories, one per pass (definitions live with each pass).
std::unique_ptr<Pass> makeDeterminismPass();
std::unique_ptr<Pass> makeDrainPass();
std::unique_ptr<Pass> makeSpecTablePass();
std::unique_ptr<Pass> makeCounterPass();
std::unique_ptr<Pass> makeCounterLivenessPass();
std::unique_ptr<Pass> makeAddrKindPass();
std::unique_ptr<Pass> makeLayeringPass();

/** All passes in their canonical run order. */
std::vector<std::unique_ptr<Pass>> makeAllPasses();

} // namespace vic::analysis

#endif // VIC_ANALYSIS_PASS_HH
