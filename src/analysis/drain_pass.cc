/**
 * @file
 * Pass 2: interprocedural drain-pairing — the static twin of the
 * interleaving model checker's flush-after-start and lost-write-back
 * findings.
 *
 * Every asynchronous DMA start opens a window in which device beats
 * race CPU accesses to the frame; the kernel's choreography closes it
 * by draining before the work item completes. PR 8 proved the pairing
 * only within one function and papered over calls with a "*Async"
 * name exemption. This pass replaces the naming convention with real
 * callee summaries driven to a fixed point over the call graph:
 *
 *   mayLeak(f)   — some path through f reaches an exit with a
 *                  transfer it started (directly or via a callee)
 *                  still pending. Calling f is then itself a start:
 *                  the drain obligation transfers to the caller.
 *   drainsAll(f) — EVERY non-aborting path through f drains whatever
 *                  was pending when f was entered. Calling f is then
 *                  itself a drain.
 *
 * Seeds anchor the domain at the true primitives: startWrite/
 * startRead defined under src/dma are leak origins by contract;
 * drainAll/stepTransfer/stepBeat under src/dma and Machine::drainDma
 * under src/machine are drains (drainDma's `while (pending) stepBeat`
 * places the step in the loop BODY, so its drain-ness is its spec,
 * not derivable from the zero-iteration-safe walk). Calls that
 * resolve to no definition in the tree fall back to those same
 * primitive names, which keeps fixture mini-trees analysable without
 * cloning the DMA layer.
 *
 * A call site is a start when ANY same-named definition may leak, and
 * a drain only when ALL same-named definitions drain — the joins a
 * conservative analysis owes to name-based resolution.
 *
 * Reporting: functions under src/os, src/mc and src/dma are walked
 * with the final summaries. A function that leaks but has callers is
 * silent at its own exits — its contract is "returns with a transfer
 * in flight", and every call site inherits the obligation and is
 * checked in ITS enclosing function. A leaking function nobody calls
 * has no one to hand the obligation to, so its pending sites are
 * reported directly. Lambda bodies are anonymous islands: no caller
 * can be responsible for them, so a start left pending inside one is
 * always reported (the per-file pass silently skipped these).
 *
 * Suppression interplay: a site under `// vic-lint: allow(...)` is
 * excluded from SUMMARY computation (so one forgiven start does not
 * poison every transitive caller) but still reported in the report
 * phase, where the Sink swallows it and marks the allow() used.
 */

#include <algorithm>

#include "analysis/callgraph.hh"
#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/pass.hh"

#include "common/logging.hh"

namespace vic::analysis
{
namespace
{

const char *const kRule = "drain-unpaired";

const char *const kStartFallback[] = {"startWrite", "startRead",
                                      "writeBlockAsync",
                                      "readBlockAsync"};
const char *const kDrainFallback[] = {"drainDma", "drainAll",
                                      "stepTransfer", "stepBeat"};
const char *const kAbortCalls[] = {"vic_panic", "vic_fatal", "abort",
                                   "exit", "throw"};

bool
inList(const std::string &s, const char *const *list, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (s == list[i])
            return true;
    }
    return false;
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

struct DrainSummary
{
    bool mayLeak = false;
    bool drainsAll = false;
};

/** Call classification against the current summary table. */
class DrainDomain
{
  public:
    DrainDomain(const CallGraph &graph,
                const std::vector<DrainSummary> &summaries)
        : g(graph), sums(summaries)
    {}

    bool isAbort(const std::string &name) const
    {
        return inList(name, kAbortCalls, 5);
    }

    bool isStart(const std::string &name) const
    {
        const std::vector<std::size_t> &defs = g.resolve(name);
        if (defs.empty())
            return inList(name, kStartFallback, 4);
        for (std::size_t d : defs) {
            if (sums[d].mayLeak)
                return true;
        }
        return false;
    }

    bool isDrain(const std::string &name) const
    {
        const std::vector<std::size_t> &defs = g.resolve(name);
        if (defs.empty())
            return inList(name, kDrainFallback, 4);
        for (std::size_t d : defs) {
            if (!sums[d].drainsAll)
                return false;
        }
        return true;
    }

  private:
    const CallGraph &g;
    const std::vector<DrainSummary> &sums;
};

/** Phase 1 delegate: does a sentinel fact survive to any exit? */
class SentinelProbe : public CfgDelegate
{
  public:
    explicit SentinelProbe(const DrainDomain &domain) : dom(domain) {}

    bool survived = false;

    bool onCall(const Token &name, CfgState &state) override
    {
        if (dom.isAbort(name.text))
            return true;
        if (dom.isDrain(name.text))
            state.facts.clear();
        return false;
    }

    void onExit(const CfgState &state, std::uint32_t) override
    {
        if (!state.facts.empty())
            survived = true;
    }

  private:
    const DrainDomain &dom;
};

/** Phase 2 delegate: does a start reach any exit still pending?
 *  Suppressed sites stay out of the fact set. */
class LeakProbe : public CfgDelegate
{
  public:
    LeakProbe(const DrainDomain &domain, const Sink &sink,
              const std::string &path)
        : dom(domain), snk(sink), file(path)
    {}

    bool leaked = false;

    bool onCall(const Token &name, CfgState &state) override
    {
        if (dom.isAbort(name.text))
            return true;
        if (dom.isDrain(name.text))
            state.facts.clear();
        if (dom.isStart(name.text) &&
            !snk.wouldSuppress(kRule, file, name.line))
            state.facts.push_back({name.text, name.line, name.col});
        return false;
    }

    void onExit(const CfgState &state, std::uint32_t) override
    {
        if (!state.facts.empty())
            leaked = true;
    }

  private:
    const DrainDomain &dom;
    const Sink &snk;
    const std::string &file;
};

/** Report phase delegate: every pending site at an exit becomes a
 *  diagnostic — unless the function's leak is its contract
 *  (@p silent), in which case the call sites carry the obligation. */
class Reporter : public CfgDelegate
{
  public:
    Reporter(const DrainDomain &domain, Sink &sink,
             const std::string &path, bool silent_exits)
        : dom(domain), snk(sink), file(path), silent(silent_exits)
    {}

    bool onCall(const Token &name, CfgState &state) override
    {
        if (dom.isAbort(name.text))
            return true;
        if (dom.isDrain(name.text))
            state.facts.clear();
        if (dom.isStart(name.text))
            state.facts.push_back({name.text, name.line, name.col});
        return false;
    }

    void onExit(const CfgState &state, std::uint32_t exit_line) override
    {
        if (silent)
            return;
        for (const CfgFact &f : state.facts) {
            snk.report(kRule, file, f.line, f.col,
                       format("DMA start '%s' reaches function exit "
                              "(line %u) without a drain on every "
                              "path",
                              f.label.c_str(), exit_line));
        }
    }

  private:
    const DrainDomain &dom;
    Sink &snk;
    const std::string &file;
    bool silent;
};

/** The seeded primitives: summary facts that are the DMA layer's
 *  contract rather than derivable from its token stream. */
void
seedSummaries(const CallGraph &g, std::vector<DrainSummary> &sums,
              std::vector<bool> &seeded)
{
    const std::vector<FnInfo> &fns = g.functions();
    for (std::size_t f = 0; f < fns.size(); ++f) {
        const FnInfo &fn = fns[f];
        const std::string &path = g.files()[fn.fileIndex].path;
        if (startsWith(path, "src/dma/") &&
            (fn.name == "startWrite" || fn.name == "startRead")) {
            sums[f].mayLeak = true;
            seeded[f] = true;
        }
        if (startsWith(path, "src/dma/") &&
            (fn.name == "drainAll" || fn.name == "stepTransfer" ||
             fn.name == "stepBeat")) {
            sums[f].drainsAll = true;
            seeded[f] = true;
        }
        if (startsWith(path, "src/machine/") && fn.name == "drainDma") {
            sums[f].drainsAll = true;
            seeded[f] = true;
        }
    }
}

class DrainPass : public Pass
{
  public:
    const char *name() const override { return "drain"; }

    const char *summary() const override
    {
        return "every asynchronous DMA start in src/os, src/mc and "
               "src/dma reaches a drain on all paths, through calls "
               "(interprocedural summaries over the call graph)";
    }

    std::vector<RuleInfo> rules() const override
    {
        return {
            {kRule,
             "a DMA start (a primitive, or a call to a function "
             "summarised as leaking a transfer) can reach function "
             "exit without a drain on every path through calls"},
        };
    }

    void run(const PassContext &ctx, Sink &sink,
             PassStats &stats) const override
    {
        CallGraph local;
        const CallGraph *gp = ctx.graph;
        if (gp == nullptr) {
            local = CallGraph::build(ctx.files);
            gp = &local;
        }
        const CallGraph &g = *gp;
        const std::vector<FnInfo> &fns = g.functions();

        std::vector<DrainSummary> sums(fns.size());
        std::vector<bool> seeded(fns.size(), false);
        seedSummaries(g, sums, seeded);
        const DrainDomain dom(g, sums);

        // Phase 1 — drainsAll, bottom-up. Monotone: callee drains
        // only ever add clears, so false -> true is one-way.
        FixpointStats p1 = solveFixpoint(g, [&](std::size_t f) {
            if (seeded[f] || sums[f].drainsAll)
                return false;
            const SourceFile &src = g.files()[fns[f].fileIndex];
            SentinelProbe probe(dom);
            CfgWalker walker(src.tokens, probe);
            CfgState in;
            in.facts.push_back({"<incoming>", 0, 0});
            walker.walk(fns[f].open, fns[f].close, std::move(in));
            if (probe.survived)
                return false;
            sums[f].drainsAll = true;
            return true;
        });

        // Phase 2 — mayLeak, with drains now fixed. Monotone: callee
        // leaks only ever add start facts.
        FixpointStats p2 = solveFixpoint(g, [&](std::size_t f) {
            if (seeded[f] || sums[f].mayLeak)
                return false;
            const SourceFile &src = g.files()[fns[f].fileIndex];
            LeakProbe probe(dom, sink, src.path);
            CfgWalker walker(src.tokens, probe);
            walker.walk(fns[f].open, fns[f].close);
            if (!probe.leaked)
                return false;
            sums[f].mayLeak = true;
            return true;
        });

        stats.functionsAnalyzed = fns.size();
        stats.summariesComputed =
            p1.summariesComputed + p2.summariesComputed;
        stats.fixpointIterations = p1.iterations + p2.iterations;

        // Report phase over the scoped directories.
        for (std::size_t f = 0; f < fns.size(); ++f) {
            const FnInfo &fn = fns[f];
            const SourceFile &src = g.files()[fn.fileIndex];
            if (!startsWith(src.path, "src/os/") &&
                !startsWith(src.path, "src/mc/") &&
                !startsWith(src.path, "src/dma/"))
                continue;
            // A leaking function with callers leaks by contract:
            // every call site inherits the obligation and is checked
            // in its own enclosing function instead.
            const bool silent =
                sums[f].mayLeak && g.hasExternalCaller(f);
            Reporter rep(dom, sink, src.path, silent);
            CfgWalker walker(src.tokens, rep);
            std::vector<LambdaBody> isles =
                walker.walk(fn.open, fn.close);
            // Lambda bodies: anonymous islands, always accountable.
            while (!isles.empty()) {
                const LambdaBody isle = isles.back();
                isles.pop_back();
                Reporter island_rep(dom, sink, src.path, false);
                CfgWalker island_walker(src.tokens, island_rep);
                std::vector<LambdaBody> nested =
                    island_walker.walk(isle.open, isle.close);
                isles.insert(isles.end(), nested.begin(),
                             nested.end());
            }
        }
    }
};

} // anonymous namespace

std::unique_ptr<Pass>
makeDrainPass()
{
    return std::make_unique<DrainPass>();
}

} // namespace vic::analysis
