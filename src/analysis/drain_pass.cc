/**
 * @file
 * Pass 2: drain-pairing — the static twin of the interleaving model
 * checker's flush-after-start and lost-write-back findings.
 *
 * Every asynchronous DMA start (DmaEngine::startWrite/startRead,
 * Disk::writeBlockAsync/readBlockAsync) opens a window in which
 * device beats race CPU accesses to the frame. The kernel's
 * choreography closes that window by draining (Machine::drainDma,
 * DmaEngine::drainAll, or a `while (stepTransfer/stepBeat(...))`
 * loop) before the function returns. This pass proves the pairing
 * structurally: a lightweight brace-matched CFG over every function
 * body in src/os, src/mc and src/dma checks that each start is
 * followed by a drain on ALL paths to function exit.
 *
 * The CFG is deliberately conservative and simple:
 *  - if/else: a drain guarantees only if every branch drains (an
 *    if without else never does);
 *  - loops: a drain in the CONDITION counts (it is evaluated at
 *    least once — the `while (stepTransfer(id)) {}` idiom); a drain
 *    only in the body does not (zero iterations), and starts made
 *    inside the body stay pending after it;
 *  - switch bodies are analysed as a linear sequence (fallthrough
 *    view) — exact per-case joins are not needed by this tree;
 *  - return with a pending start is a violation; vic_panic/vic_fatal/
 *    throw/abort terminate the path and forgive pending starts;
 *  - lambda bodies are skipped entirely (neither their starts nor
 *    their drains are attributed to the enclosing function).
 *
 * Functions whose NAME ends in "Async", or is itself one of the
 * start/drain primitives, are exempt: returning the DmaTransferId is
 * their contract — the drain obligation transfers to the caller.
 * Call sites that hand the obligation to a scheduler (the model
 * checker's executor forks a beat thread per transfer) carry a
 * documented `// vic-lint: allow(drain-unpaired): ...` suppression.
 */

#include <algorithm>

#include "analysis/cpp_scan.hh"
#include "analysis/pass.hh"

#include "common/logging.hh"

namespace vic::analysis
{
namespace
{

const char *const kStartCalls[] = {"startWrite", "startRead",
                                   "writeBlockAsync", "readBlockAsync"};
const char *const kDrainCalls[] = {"drainDma", "drainAll",
                                   "stepTransfer", "stepBeat"};
const char *const kAbortCalls[] = {"vic_panic", "vic_fatal", "abort",
                                   "exit", "throw"};

bool
inList(const std::string &s, const char *const *list, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (s == list[i])
            return true;
    }
    return false;
}

/** A DMA start a path has not yet drained. */
struct StartSite
{
    std::string callee;
    std::uint32_t line = 0;
    std::uint32_t col = 0;

    bool operator==(const StartSite &o) const
    {
        return line == o.line && col == o.col;
    }
};

struct Flow
{
    /** Every remaining path ended in return/abort (nothing falls
     *  through). */
    bool terminated = false;
    std::vector<StartSite> pending;
};

void
merge(std::vector<StartSite> &into, const std::vector<StartSite> &from)
{
    for (const StartSite &s : from) {
        if (std::find(into.begin(), into.end(), s) == into.end())
            into.push_back(s);
    }
}

class Analyzer
{
  public:
    Analyzer(const SourceFile &file, bool exempt_fn, Sink &sink)
        : f(file), toks(file.tokens), exempt(exempt_fn), out(sink)
    {}

    /** Analyse the body range (open/close at the braces); report any
     *  start pending at an exit. */
    void runBody(std::size_t open, std::size_t close)
    {
        Flow in;
        Flow end = seq(open + 1, close, in);
        reportPending(end, toks[close].line);
    }

  private:
    const SourceFile &f;
    const std::vector<Token> &toks;
    bool exempt;
    Sink &out;

    void reportPending(const Flow &flow, std::uint32_t exit_line)
    {
        if (flow.terminated)
            return;
        for (const StartSite &s : flow.pending) {
            out.report("drain-unpaired", f.path, s.line, s.col,
                       format("DMA start '%s' reaches function exit "
                              "(line %u) without a drain on every "
                              "path",
                              s.callee.c_str(), exit_line));
        }
    }

    /** Scan the token range of a condition/header: drains clear all
     *  pending (the header is always evaluated), starts add. */
    void header(std::size_t begin, std::size_t end, Flow &flow)
    {
        for (std::size_t i = begin; i < end; ++i) {
            if (toks[i].kind != TokKind::Ident)
                continue;
            if (!isPunct(toks, skipComments(toks, i + 1), "("))
                continue;
            if (!exempt && inList(toks[i].text, kStartCalls, 4))
                flow.pending.push_back(
                    {toks[i].text, toks[i].line, toks[i].col});
            else if (inList(toks[i].text, kDrainCalls, 4))
                flow.pending.clear();
        }
    }

    /** Analyse one statement starting at @p i (which must be a code
     *  token); returns the flow and sets @p next past it. */
    Flow statement(std::size_t i, std::size_t limit, Flow in,
                   std::size_t &next)
    {
        i = skipComments(toks, i);
        if (i >= limit) {
            next = limit;
            return in;
        }

        if (isPunct(toks, i, "{")) {
            const std::size_t close = matchForward(toks, i);
            next = std::min(close + 1, limit);
            return seq(i + 1, std::min(close, limit), in);
        }

        if (isIdent(toks, i, "if"))
            return ifStatement(i, limit, in, next);
        if (isIdent(toks, i, "while") || isIdent(toks, i, "for"))
            return loopStatement(i, limit, in, next);
        if (isIdent(toks, i, "do"))
            return doStatement(i, limit, in, next);
        if (isIdent(toks, i, "switch"))
            return switchStatement(i, limit, in, next);
        if (isIdent(toks, i, "return")) {
            reportPending(in, toks[i].line);
            next = skipToSemicolon(i, limit);
            Flow outf;
            outf.terminated = true;
            return outf;
        }

        // Plain statement: scan to ';' at this nesting level,
        // tracking starts/drains/aborts. Lambda bodies are skipped.
        bool aborted = false;
        std::size_t j = i;
        while (j < limit) {
            const Token &t = toks[j];
            if (t.kind == TokKind::Punct && t.text == ";")
                break;
            if (t.kind == TokKind::Punct &&
                (t.text == "{" || t.text == "[")) {
                j = std::min(matchForward(toks, j) + 1, limit);
                continue;
            }
            if (t.kind == TokKind::Ident) {
                if (isPunct(toks, skipComments(toks, j + 1), "(")) {
                    if (!exempt && inList(t.text, kStartCalls, 4))
                        in.pending.push_back(
                            {t.text, t.line, t.col});
                    else if (inList(t.text, kDrainCalls, 4))
                        in.pending.clear();
                    else if (inList(t.text, kAbortCalls, 5))
                        aborted = true;
                } else if (t.text == "throw") {
                    aborted = true;
                }
            }
            ++j;
        }
        next = std::min(j + 1, limit);
        if (aborted) {
            Flow outf;
            outf.terminated = true;
            return outf;
        }
        return in;
    }

    Flow ifStatement(std::size_t i, std::size_t limit, Flow in,
                     std::size_t &next)
    {
        const std::size_t cond_open = skipComments(toks, i + 1);
        const std::size_t cond_close = matchForward(toks, cond_open);
        header(cond_open + 1, std::min(cond_close, limit), in);

        std::size_t after_then = limit;
        Flow then_f = statement(cond_close + 1, limit, in, after_then);

        std::size_t e = skipComments(toks, after_then);
        if (isIdent(toks, e, "else")) {
            std::size_t after_else = limit;
            Flow else_f =
                statement(skipComments(toks, e + 1), limit, in,
                          after_else);
            next = after_else;
            Flow outf;
            outf.terminated = then_f.terminated && else_f.terminated;
            if (!then_f.terminated)
                merge(outf.pending, then_f.pending);
            if (!else_f.terminated)
                merge(outf.pending, else_f.pending);
            return outf;
        }

        next = after_then;
        Flow outf;
        outf.pending = in.pending;  // the branch-not-taken path
        if (!then_f.terminated)
            merge(outf.pending, then_f.pending);
        return outf;
    }

    Flow loopStatement(std::size_t i, std::size_t limit, Flow in,
                       std::size_t &next)
    {
        const std::size_t cond_open = skipComments(toks, i + 1);
        const std::size_t cond_close = matchForward(toks, cond_open);
        header(cond_open + 1, std::min(cond_close, limit), in);

        std::size_t after_body = limit;
        Flow body_f =
            statement(cond_close + 1, limit, in, after_body);
        next = after_body;

        // Zero-iteration path: drains inside the body do not clear
        // incoming starts; starts inside the body stay pending.
        Flow outf;
        outf.pending = in.pending;
        if (!body_f.terminated)
            merge(outf.pending, body_f.pending);
        return outf;
    }

    Flow doStatement(std::size_t i, std::size_t limit, Flow in,
                     std::size_t &next)
    {
        std::size_t after_body = limit;
        Flow body_f = statement(skipComments(toks, i + 1), limit, in,
                                after_body);
        std::size_t w = skipComments(toks, after_body);
        Flow outf = body_f.terminated ? Flow{} : body_f;
        if (isIdent(toks, w, "while")) {
            const std::size_t cond_open = skipComments(toks, w + 1);
            const std::size_t cond_close =
                matchForward(toks, cond_open);
            header(cond_open + 1, std::min(cond_close, limit), outf);
            next = skipToSemicolon(cond_close, limit);
        } else {
            next = w;
        }
        outf.terminated = false;  // do-while always falls through
        return outf;
    }

    Flow switchStatement(std::size_t i, std::size_t limit, Flow in,
                         std::size_t &next)
    {
        const std::size_t cond_open = skipComments(toks, i + 1);
        const std::size_t cond_close = matchForward(toks, cond_open);
        header(cond_open + 1, std::min(cond_close, limit), in);

        std::size_t after_body = limit;
        // Linear (fallthrough) view of the case bodies.
        Flow body_f =
            statement(cond_close + 1, limit, in, after_body);
        next = after_body;

        Flow outf;
        outf.pending = in.pending;  // no case may match
        if (!body_f.terminated)
            merge(outf.pending, body_f.pending);
        return outf;
    }

    /** Statement sequence in [begin, end). */
    Flow seq(std::size_t begin, std::size_t end, Flow in)
    {
        std::size_t i = skipComments(toks, begin);
        Flow flow = in;
        while (i < end) {
            // Labels are transparent: "case X :", "default :",
            // "break ;", "continue ;".
            if (isIdent(toks, i, "case")) {
                while (i < end && !isPunct(toks, i, ":"))
                    ++i;
                i = skipComments(toks, i + 1);
                continue;
            }
            if (isIdent(toks, i, "default") || isIdent(toks, i, "break") ||
                isIdent(toks, i, "continue")) {
                while (i < end && !isPunct(toks, i, ";") &&
                       !isPunct(toks, i, ":"))
                    ++i;
                i = skipComments(toks, i + 1);
                continue;
            }
            std::size_t nxt = end;
            Flow sf = statement(i, end, flow, nxt);
            if (sf.terminated) {
                // Everything after this statement in the sequence is
                // unreachable from it; a later `case` label can still
                // enter, so keep scanning with an empty pending set.
                Flow fresh;
                flow = fresh;
            } else {
                flow = sf;
            }
            if (nxt <= i)
                nxt = i + 1;  // safety against degenerate parses
            i = skipComments(toks, nxt);
        }
        return flow;
    }

    std::size_t skipToSemicolon(std::size_t i, std::size_t limit)
    {
        std::size_t j = i;
        while (j < limit && !isPunct(toks, j, ";")) {
            if (isPunct(toks, j, "(") || isPunct(toks, j, "{") ||
                isPunct(toks, j, "[")) {
                j = matchForward(toks, j) + 1;
                continue;
            }
            ++j;
        }
        return std::min(j + 1, limit);
    }
};

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::size_t n = std::string(suffix).size();
    return s.size() >= n &&
           s.compare(s.size() - n, n, suffix) == 0;
}

class DrainPass : public Pass
{
  public:
    const char *name() const override { return "drain"; }

    const char *summary() const override
    {
        return "every asynchronous DMA start in src/os, src/mc and "
               "src/dma is drained on all paths before function exit";
    }

    std::vector<RuleInfo> rules() const override
    {
        return {
            {"drain-unpaired",
             "DMA start (startWrite/startRead/writeBlockAsync/"
             "readBlockAsync) can reach function exit without "
             "drainDma/drainAll/stepTransfer/stepBeat on every path"},
        };
    }

    void run(const PassContext &ctx, Sink &sink) const override
    {
        for (const SourceFile &f : ctx.files) {
            if (!startsWith(f.path, "src/os/") &&
                !startsWith(f.path, "src/mc/") &&
                !startsWith(f.path, "src/dma/"))
                continue;
            for (const FnBody &fn : findFunctions(f.tokens)) {
                const bool ex = endsWith(fn.name, "Async") ||
                                inList(fn.name, kStartCalls, 4) ||
                                inList(fn.name, kDrainCalls, 4);
                Analyzer(f, ex, sink).runBody(fn.open, fn.close);
            }
        }
    }
};

} // anonymous namespace

std::unique_ptr<Pass>
makeDrainPass()
{
    return std::make_unique<DrainPass>();
}

} // namespace vic::analysis
