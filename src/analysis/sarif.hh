/**
 * @file
 * SARIF 2.1.0 rendering of a lint report.
 *
 * SARIF (Static Analysis Results Interchange Format, OASIS) is what
 * code-review UIs and CI annotators ingest; emitting it lets the
 * lint findings surface inline on changed lines instead of living
 * only in the build log. The document is built with the repo's
 * insertion-ordered JsonValue and contains nothing run-dependent (no
 * timestamps, no invocation block, rules sorted by id), so it is
 * byte-identical across runs on the same tree — the same contract
 * every other vic artifact honours.
 */

#ifndef VIC_ANALYSIS_SARIF_HH
#define VIC_ANALYSIS_SARIF_HH

#include "analysis/linter.hh"

#include "common/json_writer.hh"

namespace vic::analysis
{

/**
 * The SARIF 2.1.0 document for @p report: one run, driver "vic_lint",
 * every active rule under tool.driver.rules (sorted by id, deduped),
 * one result per diagnostic with a physicalLocation region. File URIs
 * are root-relative under uriBaseId SRCROOT.
 */
JsonValue sarifReport(const LintReport &report);

} // namespace vic::analysis

#endif // VIC_ANALYSIS_SARIF_HH
