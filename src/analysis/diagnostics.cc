#include "analysis/diagnostics.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vic::analysis
{
namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Parse one comment's text for "vic-lint: allow(<rule>)[: reason]".
 *  The marker must LEAD the comment (right after the // or slash-star
 *  opener) — prose that merely mentions the syntax, like this file's
 *  own documentation, is not a suppression.
 *  @return true when the marker is present (even if malformed). */
bool
parseAllow(const std::string &comment, std::string &rule,
           std::string &reason, bool &well_formed)
{
    const std::size_t content =
        comment.find_first_not_of("/*! \t");
    if (content == std::string::npos ||
        comment.compare(content, 9, "vic-lint:") != 0)
        return false;
    const std::size_t mark = content;
    well_formed = false;
    std::size_t p = comment.find("allow(", mark);
    if (p == std::string::npos)
        return true;
    p += 6;
    const std::size_t close = comment.find(')', p);
    if (close == std::string::npos)
        return true;
    rule = trim(comment.substr(p, close - p));
    if (rule.empty())
        return true;
    std::size_t r = close + 1;
    while (r < comment.size() &&
           (comment[r] == ' ' || comment[r] == '\t'))
        ++r;
    if (r >= comment.size() || comment[r] != ':')
        return true;  // reason separator missing -> undocumented
    std::string rest = comment.substr(r + 1);
    // Strip a block comment's trailing marker before trimming.
    const std::size_t endmark = rest.rfind("*/");
    if (endmark != std::string::npos)
        rest = rest.substr(0, endmark);
    reason = trim(rest);
    well_formed = !reason.empty();
    return true;
}

} // anonymous namespace

std::string
Diagnostic::render() const
{
    return format("%s:%u:%u: %s: %s", file.c_str(), line, col,
                  rule.c_str(), message.c_str());
}

void
Sink::collectSuppressions(const std::vector<SourceFile> &files)
{
    for (const SourceFile &f : files) {
        const std::vector<Token> &toks = f.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Comment)
                continue;
            std::string rule, reason;
            bool well_formed = false;
            if (!parseAllow(toks[i].text, rule, reason, well_formed))
                continue;
            if (!well_formed) {
                Diagnostic d;
                d.rule = kRuleSuppressUndocumented;
                d.file = f.path;
                d.line = toks[i].line;
                d.col = toks[i].col;
                d.message =
                    "vic-lint suppression without a rule or reason: "
                    "use \"vic-lint: allow(<rule>): <reason>\"";
                diags.push_back(std::move(d));
                continue;
            }
            Suppression s;
            s.rule = rule;
            s.file = f.path;
            s.commentLine = toks[i].line;
            s.reason = reason;
            if (toks[i].firstOnLine) {
                // Covers the next non-comment token's line; stacked
                // suppression comments all reach the same code line.
                s.targetLine = toks[i].line;  // fallback: nothing after
                for (std::size_t j = i + 1; j < toks.size(); ++j) {
                    if (toks[j].kind == TokKind::Comment)
                        continue;
                    s.targetLine = toks[j].line;
                    break;
                }
            } else {
                s.targetLine = toks[i].line;
            }
            sups.push_back(std::move(s));
        }
    }
}

void
Sink::report(const std::string &rule, const std::string &file,
             std::uint32_t line, std::uint32_t col, std::string message)
{
    for (Suppression &s : sups) {
        if (s.rule == rule && s.file == file && s.targetLine == line) {
            s.used = true;
            return;
        }
    }
    Diagnostic d;
    d.rule = rule;
    d.file = file;
    d.line = line;
    d.col = col;
    d.message = std::move(message);
    diags.push_back(std::move(d));
}

bool
Sink::wouldSuppress(const std::string &rule, const std::string &file,
                    std::uint32_t line) const
{
    for (const Suppression &s : sups) {
        if (s.rule == rule && s.file == file && s.targetLine == line)
            return true;
    }
    return false;
}

void
Sink::finalize(const std::vector<std::string> &active_rules)
{
    for (const Suppression &s : sups) {
        if (s.used)
            continue;
        if (std::find(active_rules.begin(), active_rules.end(),
                      s.rule) == active_rules.end())
            continue;  // its pass did not run this time
        Diagnostic d;
        d.rule = kRuleSuppressUnused;
        d.file = s.file;
        d.line = s.commentLine;
        d.col = 1;
        d.message = format("suppression of '%s' matches no diagnostic "
                           "— delete it",
                           s.rule.c_str());
        diags.push_back(std::move(d));
    }
    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.col != b.col)
                      return a.col < b.col;
                  return a.rule < b.rule;
              });
}

} // namespace vic::analysis
