/**
 * @file
 * Source discovery for the static analyzer.
 *
 * A lint run operates on a ROOT directory holding a vic-style tree
 * (src/, tools/, bench/, tests/, examples/). Discovery is fully
 * deterministic: the directory walk's results are sorted by
 * repo-relative path, so diagnostics, reports and exit codes are
 * byte-identical across filesystems and runs — the same contract the
 * simulator's artifacts obey.
 */

#ifndef VIC_ANALYSIS_SOURCE_HH
#define VIC_ANALYSIS_SOURCE_HH

#include <string>
#include <vector>

#include "analysis/token.hh"

namespace vic::analysis
{

struct SourceFile
{
    /** Repo-relative path with '/' separators ("src/os/kernel.cc"). */
    std::string path;
    std::string text;
    std::vector<Token> tokens;
};

/**
 * Load every .cc/.hh file under the standard top-level directories of
 * @p root (src, tools, bench, tests, examples — those that exist),
 * tokenized, sorted by path. Paths containing "lint_fixtures" are
 * skipped: fixture trees are lint roots of their own, not part of the
 * tree under analysis.
 */
std::vector<SourceFile> loadTree(const std::string &root);

/** @return @p root ends with a path separator stripped, for display. */
std::string normalizeRoot(const std::string &root);

/** First file whose path equals @p rel_path, or nullptr. */
const SourceFile *findFile(const std::vector<SourceFile> &files,
                           const std::string &rel_path);

/** True when any discovered file lives under directory @p rel_dir
 *  (e.g. "src/core"). */
bool hasDir(const std::vector<SourceFile> &files,
            const std::string &rel_dir);

} // namespace vic::analysis

#endif // VIC_ANALYSIS_SOURCE_HH
