#include "analysis/sarif.hh"

#include <algorithm>
#include <map>

namespace vic::analysis
{

JsonValue
sarifReport(const LintReport &report)
{
    // Rules, deduped and sorted by id so the index assignment is
    // stable no matter which passes registered them first.
    std::map<std::string, std::string> by_id;
    for (const ActiveRule &r : report.activeRules)
        by_id.emplace(r.id, r.summary);
    std::map<std::string, std::size_t> rule_index;

    JsonValue rules = JsonValue::array();
    for (const auto &kv : by_id) {
        rule_index[kv.first] = rules.items().size();
        JsonValue rule = JsonValue::object();
        rule.set("id", JsonValue::str(kv.first));
        JsonValue desc = JsonValue::object();
        desc.set("text", JsonValue::str(kv.second));
        rule.set("shortDescription", std::move(desc));
        rules.push(std::move(rule));
    }

    JsonValue driver = JsonValue::object();
    driver.set("name", JsonValue::str("vic_lint"));
    driver.set("rules", std::move(rules));
    JsonValue tool = JsonValue::object();
    tool.set("driver", std::move(driver));

    JsonValue results = JsonValue::array();
    for (const Diagnostic &d : report.diagnostics) {
        JsonValue res = JsonValue::object();
        res.set("ruleId", JsonValue::str(d.rule));
        const auto it = rule_index.find(d.rule);
        if (it != rule_index.end())
            res.set("ruleIndex",
                    JsonValue::number(std::uint64_t(it->second)));
        res.set("level", JsonValue::str("warning"));
        JsonValue msg = JsonValue::object();
        msg.set("text", JsonValue::str(d.message));
        res.set("message", std::move(msg));

        JsonValue artifact = JsonValue::object();
        artifact.set("uri", JsonValue::str(d.file));
        artifact.set("uriBaseId", JsonValue::str("SRCROOT"));
        JsonValue region = JsonValue::object();
        region.set("startLine",
                   JsonValue::number(std::uint64_t(d.line)));
        region.set("startColumn",
                   JsonValue::number(std::uint64_t(d.col)));
        JsonValue phys = JsonValue::object();
        phys.set("artifactLocation", std::move(artifact));
        phys.set("region", std::move(region));
        JsonValue loc = JsonValue::object();
        loc.set("physicalLocation", std::move(phys));
        JsonValue locs = JsonValue::array();
        locs.push(std::move(loc));
        res.set("locations", std::move(locs));
        results.push(std::move(res));
    }

    JsonValue run = JsonValue::object();
    run.set("tool", std::move(tool));
    JsonValue bases = JsonValue::object();
    JsonValue srcroot = JsonValue::object();
    srcroot.set("uri", JsonValue::str("file://" + report.root + "/"));
    bases.set("SRCROOT", std::move(srcroot));
    run.set("originalUriBaseIds", std::move(bases));
    run.set("results", std::move(results));

    JsonValue doc = JsonValue::object();
    doc.set("$schema",
            JsonValue::str(
                "https://json.schemastore.org/sarif-2.1.0.json"));
    doc.set("version", JsonValue::str("2.1.0"));
    JsonValue runs = JsonValue::array();
    runs.push(std::move(run));
    doc.set("runs", std::move(runs));
    return doc;
}

} // namespace vic::analysis
