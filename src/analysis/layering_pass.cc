/**
 * @file
 * Pass 5: layering — the include DAG between src/ subsystems.
 *
 * The simulator stacks cleanly: pure leaf utilities at the bottom,
 * hardware components above them, the machine that wires the
 * hardware together, the protocol core, the OS that drives it, and
 * verification/experiment harnesses on top. A downward include
 * (cache/ pulling in os/, say) couples a hardware model to policy it
 * must stay agnostic of, and — concretely — breaks the ability to
 * unit-test a layer with only its lower neighbours linked.
 *
 * Layer ranks (include allowed iff target dir rank is strictly
 * lower, or the same directory):
 *
 *   0  common                      pure utilities (incl. the
 *                                  column-store and arena layout
 *                                  helpers — leaf containers with no
 *                                  upward knowledge)
 *   1  mem, mmu, oracle            leaf models
 *   2  cache, tlb                  indexed hardware (cache needs mem)
 *   3  dma                         engines driving cache+mem
 *   4  machine                     wires CPUs, caches, bus, DMA
 *   5  core                        pmaps + protocol spec tables
 *   6  os                          kernel, VM, buffer cache
 *   7  workload, mc                drivers of a whole OS/machine
 *                                  (incl. the shard runner, which is
 *                                  deliberately BELOW experiment:
 *                                  replica seeds are computed in the
 *                                  experiment layer and passed down,
 *                                  never derived by reaching up)
 *   8  verify, experiment, analysis   harnesses over everything
 *   9  (src/vic.hh)                the umbrella header
 *
 * Only quoted includes between src/ subsystems are ranked; angled
 * system includes and files outside src/ (tools, tests, bench) are
 * exempt — executables may reach any layer.
 */

#include <map>

#include "analysis/cpp_scan.hh"
#include "analysis/pass.hh"

#include "common/logging.hh"

namespace vic::analysis
{
namespace
{

const std::map<std::string, int> kRank = {
    {"common", 0},  {"mem", 1},      {"mmu", 1},
    {"oracle", 1},  {"cache", 2},    {"tlb", 2},
    {"dma", 3},     {"machine", 4},  {"core", 5},
    {"os", 6},      {"workload", 7}, {"mc", 7},
    {"verify", 8},  {"experiment", 8}, {"analysis", 8},
};

/** First path component of a quoted include ("cache/cache.hh" ->
 *  "cache"), or "" when there is none. */
std::string
includeDir(const std::string &inc)
{
    const std::size_t slash = inc.find('/');
    if (slash == std::string::npos)
        return "";
    return inc.substr(0, slash);
}

class LayeringPass : public Pass
{
  public:
    const char *name() const override { return "layering"; }

    const char *summary() const override
    {
        return "quoted includes between src/ subsystems must point "
               "strictly down the layer DAG (common < hardware < "
               "machine < core < os < drivers < harnesses)";
    }

    std::vector<RuleInfo> rules() const override
    {
        return {
            {"layer-cycle",
             "a src/ file includes a same- or higher-ranked "
             "subsystem, coupling a lower layer upward"},
            {"layer-unknown",
             "a src/ subsystem directory is missing from the "
             "analyzer's rank table — assign it a layer"},
        };
    }

    void run(const PassContext &ctx, Sink &sink,
             PassStats &) const override
    {
        for (const SourceFile &f : ctx.files) {
            if (f.path.rfind("src/", 0) != 0)
                continue;
            const std::string from = dirOf(f.path);
            const int from_rank = rankOf(from);
            for (const Token &t : f.tokens) {
                if (t.kind != TokKind::Include)
                    continue;
                if (t.text.empty() || t.text.front() != '"')
                    continue;  // angled system include
                const std::string inc =
                    t.text.substr(1, t.text.size() - 2);
                const std::string to = includeDir(inc);
                if (to.empty() || to == from)
                    continue;
                const auto it = kRank.find(to);
                if (it == kRank.end()) {
                    sink.report(
                        "layer-unknown", f.path, t.line, t.col,
                        format("include \"%s\" targets subsystem "
                               "'%s' with no assigned layer",
                               inc.c_str(), to.c_str()));
                    continue;
                }
                if (it->second >= from_rank) {
                    sink.report(
                        "layer-cycle", f.path, t.line, t.col,
                        format("%s (layer %d) must not include "
                               "\"%s\" (%s is layer %d) — includes "
                               "point strictly down the stack",
                               from.c_str(), from_rank, inc.c_str(),
                               to.c_str(), it->second));
                }
            }
        }
    }

  private:
    /** Subsystem of a repo-relative src path; src/vic.hh maps to the
     *  pseudo-layer above everything. */
    static std::string dirOf(const std::string &path)
    {
        const std::string rest = path.substr(4);  // past "src/"
        const std::size_t slash = rest.find('/');
        if (slash == std::string::npos)
            return "";  // src/vic.hh itself
        return rest.substr(0, slash);
    }

    static int rankOf(const std::string &dir)
    {
        if (dir.empty())
            return 9;  // the umbrella header sits on top
        const auto it = kRank.find(dir);
        return it == kRank.end() ? 9 : it->second;
    }
};

} // anonymous namespace

std::unique_ptr<Pass>
makeLayeringPass()
{
    return std::make_unique<LayeringPass>();
}

} // namespace vic::analysis
