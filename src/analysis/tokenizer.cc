#include "analysis/token.hh"

#include <cctype>

namespace vic::analysis
{
namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : text(src) {}

    std::vector<Token> run()
    {
        while (pos < text.size())
            lexOne();
        return std::move(out);
    }

  private:
    const std::string &text;
    std::size_t pos = 0;
    std::uint32_t line = 1;
    std::uint32_t col = 1;
    bool lineHasToken = false;
    std::vector<Token> out;

    char cur() const { return text[pos]; }
    char peek(std::size_t n = 1) const
    {
        return pos + n < text.size() ? text[pos + n] : '\0';
    }

    void advance()
    {
        if (text[pos] == '\n') {
            ++line;
            col = 1;
            lineHasToken = false;
        } else {
            ++col;
        }
        ++pos;
    }

    void emit(TokKind kind, std::size_t begin, std::uint32_t at_line,
              std::uint32_t at_col, bool first)
    {
        Token t;
        t.kind = kind;
        t.text = text.substr(begin, pos - begin);
        t.line = at_line;
        t.col = at_col;
        t.firstOnLine = first;
        out.push_back(std::move(t));
    }

    /** Mark that the current line now carries a token; @return whether
     *  the token being started is the line's first. */
    bool claimFirst()
    {
        const bool first = !lineHasToken;
        lineHasToken = true;
        return first;
    }

    void lexOne()
    {
        const char c = cur();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n' ||
            c == '\f' || c == '\v') {
            advance();
            return;
        }

        const std::size_t begin = pos;
        const std::uint32_t at_line = line;
        const std::uint32_t at_col = col;
        const bool first = claimFirst();

        if (c == '/' && peek() == '/') {
            while (pos < text.size() && cur() != '\n')
                advance();
            emit(TokKind::Comment, begin, at_line, at_col, first);
            return;
        }
        if (c == '/' && peek() == '*') {
            advance();
            advance();
            while (pos < text.size() &&
                   !(cur() == '*' && peek() == '/'))
                advance();
            if (pos < text.size()) {
                advance();
                advance();
            }
            emit(TokKind::Comment, begin, at_line, at_col, first);
            return;
        }
        if (c == '"' || (c == 'R' && peek() == '"')) {
            lexString();
            emit(TokKind::String, begin, at_line, at_col, first);
            return;
        }
        if (c == '\'') {
            advance();
            while (pos < text.size() && cur() != '\'') {
                if (cur() == '\\')
                    advance();
                if (pos < text.size())
                    advance();
            }
            if (pos < text.size())
                advance();
            emit(TokKind::CharLit, begin, at_line, at_col, first);
            return;
        }
        if (identStart(c)) {
            while (pos < text.size() && identCont(cur()))
                advance();
            emit(TokKind::Ident, begin, at_line, at_col, first);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(peek())))) {
            // Generous numeric literal: hex, separators, suffixes,
            // exponents. Passes never inspect the digits, only that
            // the bytes are not an identifier.
            while (pos < text.size() &&
                   (identCont(cur()) || cur() == '.' || cur() == '\'' ||
                    ((cur() == '+' || cur() == '-') &&
                     (text[pos - 1] == 'e' || text[pos - 1] == 'E' ||
                      text[pos - 1] == 'p' || text[pos - 1] == 'P'))))
                advance();
            emit(TokKind::Number, begin, at_line, at_col, first);
            return;
        }
        if (c == '#' && first) {
            if (lexInclude(begin, at_line, at_col))
                return;
            advance();
            emit(TokKind::Punct, begin, at_line, at_col, first);
            return;
        }
        if (c == ':' && peek() == ':') {
            advance();
            advance();
            emit(TokKind::Punct, begin, at_line, at_col, first);
            return;
        }
        advance();
        emit(TokKind::Punct, begin, at_line, at_col, first);
    }

    void lexString()
    {
        if (cur() == 'R') {
            // Raw string: R"delim( ... )delim"
            advance();  // R
            advance();  // "
            std::string delim;
            while (pos < text.size() && cur() != '(') {
                delim += cur();
                advance();
            }
            const std::string close = ")" + delim + "\"";
            while (pos < text.size() &&
                   text.compare(pos, close.size(), close) != 0)
                advance();
            for (std::size_t i = 0; i < close.size() &&
                                    pos < text.size(); ++i)
                advance();
            return;
        }
        advance();  // opening quote
        while (pos < text.size() && cur() != '"' && cur() != '\n') {
            if (cur() == '\\')
                advance();
            if (pos < text.size())
                advance();
        }
        if (pos < text.size() && cur() == '"')
            advance();
    }

    /** At a line-leading '#': recognise an #include directive and emit
     *  an Include token carrying the delimited target. @return false
     *  when the directive is something else (caller lexes '#'). */
    bool lexInclude(std::size_t, std::uint32_t at_line,
                    std::uint32_t at_col)
    {
        std::size_t p = pos + 1;
        while (p < text.size() &&
               (text[p] == ' ' || text[p] == '\t'))
            ++p;
        if (text.compare(p, 7, "include") != 0)
            return false;
        p += 7;
        while (p < text.size() &&
               (text[p] == ' ' || text[p] == '\t'))
            ++p;
        if (p >= text.size() ||
            (text[p] != '"' && text[p] != '<'))
            return false;
        const char closer = text[p] == '"' ? '"' : '>';
        std::size_t q = p + 1;
        while (q < text.size() && text[q] != closer &&
               text[q] != '\n')
            ++q;
        if (q >= text.size() || text[q] != closer)
            return false;
        Token t;
        t.kind = TokKind::Include;
        t.text = text.substr(p, q - p + 1);
        t.line = at_line;
        t.col = at_col;
        t.firstOnLine = true;
        out.push_back(std::move(t));
        while (pos <= q)
            advance();
        return true;
    }
};

} // anonymous namespace

std::vector<Token>
tokenize(const std::string &text)
{
    return Lexer(text).run();
}

} // namespace vic::analysis
