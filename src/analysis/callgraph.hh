/**
 * @file
 * Whole-program call graph over the token streams.
 *
 * The per-file passes of PR 8 could prove properties only as far as a
 * single function body; everything across a call had to be assumed
 * (the drain pass's "*Async" name exemption) or suppressed. The call
 * graph closes that gap: it discovers every function definition in
 * the tree (with a qualified name when the definition site provides
 * one — "Class::method" for out-of-line definitions, and in-class
 * bodies are qualified by the enclosing class/struct range), every
 * call-shaped identifier inside those definitions, and resolves calls
 * to definitions by unqualified name.
 *
 * Resolution is deliberately an over-approximation tuned to this
 * repository's style: a call `x.foo(...)` resolves to EVERY function
 * named `foo` in the tree (virtual dispatch, overloads and same-named
 * methods of different classes all merge). Clients that propagate
 * facts over edges must therefore join over all candidates — which is
 * exactly what a conservative dataflow wants.
 *
 * Everything is index-based and ordered by (file, token position), so
 * any analysis iterating the graph is deterministic.
 */

#ifndef VIC_ANALYSIS_CALLGRAPH_HH
#define VIC_ANALYSIS_CALLGRAPH_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/source.hh"

namespace vic::analysis
{

inline constexpr std::size_t kNoFunction =
    static_cast<std::size_t>(-1);

/** One function definition, with its structural token landmarks. */
struct FnInfo
{
    std::size_t fileIndex = 0;    ///< index into the loaded file set
    std::string name;             ///< unqualified ("drainDma")
    std::string qualified;        ///< "Machine::drainDma" when known
    std::string className;        ///< "" for free functions
    std::size_t nameTok = 0;      ///< token index of the name
    std::size_t paramOpen = 0;    ///< '(' of the parameter list
    std::size_t paramClose = 0;   ///< its ')'
    std::size_t open = 0;         ///< '{' of the body
    std::size_t close = 0;        ///< its '}'
    /** First token of the extent call scanning covers: the init-list
     *  ':' for constructors (member initialisers register counters
     *  and call base constructors), else the body '{'. */
    std::size_t extentBegin = 0;
    std::uint32_t line = 0;
    std::uint32_t col = 0;
};

/** One call-shaped identifier (ident immediately followed by '(')
 *  inside a function's extent. */
struct CallSiteInfo
{
    std::size_t caller = 0;  ///< index into functions()
    std::string callee;      ///< unqualified name as written
    std::size_t tok = 0;     ///< token index of the callee name
    std::uint32_t line = 0;
    std::uint32_t col = 0;
};

/** One class/struct definition's brace range (member declarations
 *  live here; used for subobject-construction edges). */
struct ClassInfo
{
    std::size_t fileIndex = 0;
    std::string name;
    std::size_t open = 0;   ///< '{' token
    std::size_t close = 0;  ///< '}' token
};

class CallGraph
{
  public:
    /** Build the graph over @p files (the lint run's loaded tree). */
    static CallGraph build(const std::vector<SourceFile> &files);

    const std::vector<SourceFile> &files() const { return *srcs; }
    const std::vector<FnInfo> &functions() const { return fns; }
    const std::vector<ClassInfo> &classes() const { return structs; }
    const std::vector<CallSiteInfo> &calls() const { return sites; }

    /** Indices into calls() made from function @p fn, in token
     *  order. */
    const std::vector<std::size_t> &callsOf(std::size_t fn) const;

    /** Indices into functions() whose unqualified name is @p name
     *  (empty when unresolved), in definition order. */
    const std::vector<std::size_t> &
    resolve(const std::string &name) const;

    /** Distinct functions containing a call that resolves to @p fn,
     *  sorted ascending. */
    const std::vector<std::size_t> &callersOf(std::size_t fn) const;

    /** True when at least one call site anywhere resolves to @p fn
     *  from a DIFFERENT function (self-recursion is not a caller). */
    bool hasExternalCaller(std::size_t fn) const;

    /** The function whose extent (signature to closing brace)
     *  contains token @p tok of file @p file_index, or kNoFunction. */
    std::size_t enclosingFunction(std::size_t file_index,
                                  std::size_t tok) const;

    /** Class names (with a known constructor or not) whose definition
     *  braces contain @p tok of file @p file_index; innermost last. */
    std::vector<std::string>
    enclosingClasses(std::size_t file_index, std::size_t tok) const;

  private:
    const std::vector<SourceFile> *srcs = nullptr;
    std::vector<FnInfo> fns;
    std::vector<ClassInfo> structs;
    std::vector<CallSiteInfo> sites;
    std::vector<std::vector<std::size_t>> fnCalls;    ///< per caller
    std::vector<std::vector<std::size_t>> fnCallers;  ///< per callee
    std::map<std::string, std::vector<std::size_t>> byName;
    std::vector<std::size_t> empty;
};

} // namespace vic::analysis

#endif // VIC_ANALYSIS_CALLGRAPH_HH
