/**
 * @file
 * Diagnostics and inline suppressions.
 *
 * Every finding is a Diagnostic with a stable rule id and an exact
 * file:line:col location. A diagnostic can be silenced at its site
 * with an inline comment:
 *
 *     // vic-lint: allow(<rule-id>): <reason>
 *
 * A suppression comment that is alone on its line covers the next
 * source line (stacking: several suppression lines cover the same
 * following code line); a trailing comment covers its own line. The
 * reason is MANDATORY — an allow() without one is itself a diagnostic
 * (suppress-undocumented), and an allow() that silences nothing is
 * flagged too (suppress-unused), so the tree's suppression inventory
 * can never rot silently.
 */

#ifndef VIC_ANALYSIS_DIAGNOSTICS_HH
#define VIC_ANALYSIS_DIAGNOSTICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/source.hh"

namespace vic::analysis
{

struct Diagnostic
{
    std::string rule;
    std::string file;
    std::uint32_t line = 0;
    std::uint32_t col = 0;
    std::string message;

    /** "file:line:col: rule: message" display form. */
    std::string render() const;
};

struct Suppression
{
    std::string rule;
    std::string file;
    std::uint32_t commentLine = 0;  ///< where the allow() comment sits
    std::uint32_t targetLine = 0;   ///< line of code it covers
    std::string reason;
    bool used = false;
};

/** Rule ids owned by the suppression machinery itself (these two are
 *  deliberately not suppressible). */
inline constexpr const char *kRuleSuppressUndocumented =
    "suppress-undocumented";
inline constexpr const char *kRuleSuppressUnused = "suppress-unused";

/**
 * Collects diagnostics from passes, applying suppressions. finalize()
 * appends the suppression-hygiene diagnostics and sorts everything by
 * (file, line, col, rule) for deterministic output.
 */
class Sink
{
  public:
    /** Scan every file's comments for vic-lint: allow() markers. */
    void collectSuppressions(const std::vector<SourceFile> &files);

    /** Report a finding; dropped (and the suppression marked used)
     *  when a matching allow() covers @p line of @p file. */
    void report(const std::string &rule, const std::string &file,
                std::uint32_t line, std::uint32_t col,
                std::string message);

    /** True when report(@p rule, @p file, @p line, ...) would be
     *  swallowed by a suppression. Does NOT mark it used — summary
     *  computation uses this to keep suppressed sites out of the
     *  interprocedural facts without consuming the allow(); the
     *  report phase still reports the site so the suppression is
     *  marked used there. */
    bool wouldSuppress(const std::string &rule, const std::string &file,
                       std::uint32_t line) const;

    /** @p active_rules lists every rule id a selected pass owns;
     *  suppress-unused only fires for suppressions of those rules, so
     *  a single-pass run (--pass determinism) does not condemn the
     *  other passes' suppressions. */
    void finalize(const std::vector<std::string> &active_rules);

    const std::vector<Diagnostic> &diagnostics() const
    { return diags; }
    const std::vector<Suppression> &suppressions() const
    { return sups; }

  private:
    std::vector<Diagnostic> diags;
    std::vector<Suppression> sups;
};

} // namespace vic::analysis

#endif // VIC_ANALYSIS_DIAGNOSTICS_HH
