#include "analysis/cfg.hh"

#include <algorithm>

#include "analysis/cpp_scan.hh"

namespace vic::analysis
{

void
mergeFacts(std::vector<CfgFact> &into, const std::vector<CfgFact> &from)
{
    for (const CfgFact &f : from) {
        if (std::find(into.begin(), into.end(), f) == into.end())
            into.push_back(f);
    }
}

CfgWalker::CfgWalker(const std::vector<Token> &tokens,
                     CfgDelegate &delegate)
    : toks(tokens), out(delegate)
{}

std::vector<LambdaBody>
CfgWalker::walk(std::size_t open, std::size_t close, CfgState in)
{
    lambdas.clear();
    CfgState end = seq(open + 1, close, std::move(in));
    if (!end.terminated)
        out.onExit(end, close < toks.size() ? toks[close].line : 0);
    return std::move(lambdas);
}

/**
 * At token @p bracket (a '['): if this is a lambda introducer —
 * the '[' does not follow a value (identifier, ')', ']', literal),
 * so it cannot be a subscript — record the body range and set
 * @p skip_to past it. Otherwise skip the subscript group.
 */
void
CfgWalker::noteLambdaAt(std::size_t bracket, std::size_t limit,
                        std::size_t &skip_to)
{
    const std::size_t caps_close = matchForward(toks, bracket);
    skip_to = std::min(caps_close + 1, limit);

    // Subscript? Look at what precedes the '['.
    std::size_t p = bracket;
    while (p > 0) {
        --p;
        if (toks[p].kind != TokKind::Comment)
            break;
    }
    const Token &prev = toks[p];
    const bool subscript =
        p < bracket &&
        (prev.kind == TokKind::Ident || prev.kind == TokKind::Number ||
         prev.kind == TokKind::String ||
         (prev.kind == TokKind::Punct &&
          (prev.text == ")" || prev.text == "]")));
    if (subscript || caps_close >= limit)
        return;

    // Optional parameter list, then the body braces.
    std::size_t q = skipComments(toks, caps_close + 1);
    if (isPunct(toks, q, "(")) {
        const std::size_t params_close = matchForward(toks, q);
        q = skipComments(toks, params_close + 1);
    }
    // Skip specifiers (mutable/noexcept) and a trailing return type
    // up to the body.
    while (q < limit && !isPunct(toks, q, "{") &&
           !isPunct(toks, q, ";") && !isPunct(toks, q, ","))
        ++q;
    if (!isPunct(toks, q, "{"))
        return;
    const std::size_t body_close = matchForward(toks, q);
    if (body_close >= toks.size())
        return;
    lambdas.push_back({q, body_close});
    skip_to = std::min(body_close + 1, limit);
}

/** Scan the token range of a condition/header: always evaluated, so
 *  every call on it transfers unconditionally. */
void
CfgWalker::header(std::size_t begin, std::size_t end, CfgState &state)
{
    for (std::size_t i = begin; i < end; ++i) {
        if (toks[i].kind == TokKind::Punct && toks[i].text == "[") {
            std::size_t skip_to = i + 1;
            noteLambdaAt(i, end, skip_to);
            i = skip_to - 1;
            continue;
        }
        if (toks[i].kind != TokKind::Ident)
            continue;
        if (!isPunct(toks, skipComments(toks, i + 1), "("))
            continue;
        out.onCall(toks[i], state);
    }
}

CfgState
CfgWalker::statement(std::size_t i, std::size_t limit, CfgState in,
                     std::size_t &next)
{
    i = skipComments(toks, i);
    if (i >= limit) {
        next = limit;
        return in;
    }

    if (isPunct(toks, i, "{")) {
        const std::size_t close = matchForward(toks, i);
        next = std::min(close + 1, limit);
        return seq(i + 1, std::min(close, limit), std::move(in));
    }

    if (isIdent(toks, i, "if"))
        return ifStatement(i, limit, std::move(in), next);
    if (isIdent(toks, i, "while") || isIdent(toks, i, "for"))
        return loopStatement(i, limit, std::move(in), next);
    if (isIdent(toks, i, "do"))
        return doStatement(i, limit, std::move(in), next);
    if (isIdent(toks, i, "switch"))
        return switchStatement(i, limit, std::move(in), next);
    if (isIdent(toks, i, "return")) {
        next = skipToSemicolon(i, limit);
        // The return expression is evaluated before the exit:
        // `return dma.startWrite(...)` creates the obligation the
        // caller inherits; `return stepTransfer(id)` clears.
        header(i + 1, next > i ? next - 1 : i, in);
        out.onExit(in, toks[i].line);
        CfgState outs;
        outs.terminated = true;
        return outs;
    }

    // Plain statement: scan to ';' at this nesting level. Braced
    // groups (initialisers) are opaque; lambdas are collected.
    bool aborted = false;
    std::size_t j = i;
    while (j < limit) {
        const Token &t = toks[j];
        if (t.kind == TokKind::Punct && t.text == ";")
            break;
        if (t.kind == TokKind::Punct && t.text == "[") {
            std::size_t skip_to = j + 1;
            noteLambdaAt(j, limit, skip_to);
            j = skip_to;
            continue;
        }
        if (t.kind == TokKind::Punct && t.text == "{") {
            j = std::min(matchForward(toks, j) + 1, limit);
            continue;
        }
        if (t.kind == TokKind::Ident) {
            if (isPunct(toks, skipComments(toks, j + 1), "(")) {
                if (out.onCall(t, in))
                    aborted = true;
            } else if (t.text == "throw") {
                aborted = true;
            }
        }
        ++j;
    }
    next = std::min(j + 1, limit);
    if (aborted) {
        CfgState outs;
        outs.terminated = true;
        return outs;
    }
    return in;
}

CfgState
CfgWalker::ifStatement(std::size_t i, std::size_t limit, CfgState in,
                       std::size_t &next)
{
    const std::size_t cond_open = skipComments(toks, i + 1);
    const std::size_t cond_close = matchForward(toks, cond_open);
    header(cond_open + 1, std::min(cond_close, limit), in);

    std::size_t after_then = limit;
    CfgState then_s = statement(cond_close + 1, limit, in, after_then);

    std::size_t e = skipComments(toks, after_then);
    if (isIdent(toks, e, "else")) {
        std::size_t after_else = limit;
        CfgState else_s = statement(skipComments(toks, e + 1), limit,
                                    in, after_else);
        next = after_else;
        CfgState outs;
        outs.terminated = then_s.terminated && else_s.terminated;
        if (!then_s.terminated)
            mergeFacts(outs.facts, then_s.facts);
        if (!else_s.terminated)
            mergeFacts(outs.facts, else_s.facts);
        return outs;
    }

    next = after_then;
    CfgState outs;
    outs.facts = in.facts;  // the branch-not-taken path
    if (!then_s.terminated)
        mergeFacts(outs.facts, then_s.facts);
    return outs;
}

CfgState
CfgWalker::loopStatement(std::size_t i, std::size_t limit, CfgState in,
                         std::size_t &next)
{
    const std::size_t cond_open = skipComments(toks, i + 1);
    const std::size_t cond_close = matchForward(toks, cond_open);
    header(cond_open + 1, std::min(cond_close, limit), in);

    std::size_t after_body = limit;
    CfgState body_s = statement(cond_close + 1, limit, in, after_body);
    next = after_body;

    // Zero-iteration path: clears inside the body do not count for
    // incoming facts; facts created inside the body stay pending.
    CfgState outs;
    outs.facts = in.facts;
    if (!body_s.terminated)
        mergeFacts(outs.facts, body_s.facts);
    return outs;
}

CfgState
CfgWalker::doStatement(std::size_t i, std::size_t limit, CfgState in,
                       std::size_t &next)
{
    std::size_t after_body = limit;
    CfgState body_s = statement(skipComments(toks, i + 1), limit,
                                std::move(in), after_body);
    std::size_t w = skipComments(toks, after_body);
    CfgState outs = body_s.terminated ? CfgState{} : body_s;
    if (isIdent(toks, w, "while")) {
        const std::size_t cond_open = skipComments(toks, w + 1);
        const std::size_t cond_close = matchForward(toks, cond_open);
        header(cond_open + 1, std::min(cond_close, limit), outs);
        next = skipToSemicolon(cond_close, limit);
    } else {
        next = w;
    }
    outs.terminated = false;  // do-while always falls through
    return outs;
}

CfgState
CfgWalker::switchStatement(std::size_t i, std::size_t limit,
                           CfgState in, std::size_t &next)
{
    const std::size_t cond_open = skipComments(toks, i + 1);
    const std::size_t cond_close = matchForward(toks, cond_open);
    header(cond_open + 1, std::min(cond_close, limit), in);

    std::size_t after_body = limit;
    // Linear (fallthrough) view of the case bodies.
    CfgState body_s = statement(cond_close + 1, limit, in, after_body);
    next = after_body;

    CfgState outs;
    outs.facts = in.facts;  // no case may match
    if (!body_s.terminated)
        mergeFacts(outs.facts, body_s.facts);
    return outs;
}

CfgState
CfgWalker::seq(std::size_t begin, std::size_t end, CfgState in)
{
    std::size_t i = skipComments(toks, begin);
    CfgState state = std::move(in);
    while (i < end) {
        // Labels are transparent: "case X :", "default :",
        // "break ;", "continue ;".
        if (isIdent(toks, i, "case")) {
            while (i < end && !isPunct(toks, i, ":"))
                ++i;
            i = skipComments(toks, i + 1);
            continue;
        }
        if (isIdent(toks, i, "default") || isIdent(toks, i, "break") ||
            isIdent(toks, i, "continue")) {
            while (i < end && !isPunct(toks, i, ";") &&
                   !isPunct(toks, i, ":"))
                ++i;
            i = skipComments(toks, i + 1);
            continue;
        }
        std::size_t nxt = end;
        CfgState ss = statement(i, end, state, nxt);
        if (ss.terminated) {
            // Everything after this statement in the sequence is
            // unreachable from it; a later `case` label can still
            // enter, so keep scanning with an empty fact set.
            state = CfgState();
        } else {
            state = std::move(ss);
        }
        if (nxt <= i)
            nxt = i + 1;  // safety against degenerate parses
        i = skipComments(toks, nxt);
    }
    return state;
}

std::size_t
CfgWalker::skipToSemicolon(std::size_t i, std::size_t limit)
{
    std::size_t j = i;
    while (j < limit && !isPunct(toks, j, ";")) {
        if (isPunct(toks, j, "(") || isPunct(toks, j, "{") ||
            isPunct(toks, j, "[")) {
            j = matchForward(toks, j) + 1;
            continue;
        }
        ++j;
    }
    return std::min(j + 1, limit);
}

} // namespace vic::analysis
