#include "analysis/linter.hh"

#include "common/logging.hh"

namespace vic::analysis
{

std::vector<std::unique_ptr<Pass>>
makeAllPasses()
{
    std::vector<std::unique_ptr<Pass>> passes;
    passes.push_back(makeDeterminismPass());
    passes.push_back(makeDrainPass());
    passes.push_back(makeSpecTablePass());
    passes.push_back(makeCounterPass());
    passes.push_back(makeLayeringPass());
    return passes;
}

JsonValue
LintReport::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::str("vic-lint-report-v1"));
    doc.set("root", JsonValue::str(root));

    JsonValue passes = JsonValue::array();
    for (const std::string &p : passesRun)
        passes.push(JsonValue::str(p));
    doc.set("passes", std::move(passes));

    doc.set("files_scanned",
            JsonValue::number(std::uint64_t(filesScanned)));
    doc.set("clean", JsonValue::boolean(clean()));

    JsonValue diags = JsonValue::array();
    for (const Diagnostic &d : diagnostics) {
        JsonValue j = JsonValue::object();
        j.set("rule", JsonValue::str(d.rule));
        j.set("file", JsonValue::str(d.file));
        j.set("line", JsonValue::number(std::uint64_t(d.line)));
        j.set("col", JsonValue::number(std::uint64_t(d.col)));
        j.set("message", JsonValue::str(d.message));
        diags.push(std::move(j));
    }
    doc.set("diagnostics", std::move(diags));

    JsonValue sups = JsonValue::array();
    for (const Suppression &s : suppressions) {
        JsonValue j = JsonValue::object();
        j.set("rule", JsonValue::str(s.rule));
        j.set("file", JsonValue::str(s.file));
        j.set("line", JsonValue::number(std::uint64_t(s.commentLine)));
        j.set("reason", JsonValue::str(s.reason));
        j.set("used", JsonValue::boolean(s.used));
        sups.push(std::move(j));
    }
    doc.set("suppressions", std::move(sups));
    return doc;
}

std::vector<std::string>
LintReport::renderLines() const
{
    std::vector<std::string> lines;
    lines.reserve(diagnostics.size());
    for (const Diagnostic &d : diagnostics)
        lines.push_back(d.render());
    return lines;
}

LintReport
runLintOnFiles(const std::string &root, std::vector<SourceFile> files,
               const std::vector<std::string> &pass_names)
{
    LintReport report;
    report.root = normalizeRoot(root);
    report.filesScanned = files.size();

    Sink sink;
    sink.collectSuppressions(files);

    const PassContext ctx{report.root, files};
    std::vector<std::string> active_rules;
    for (const auto &pass : makeAllPasses()) {
        bool selected = pass_names.empty();
        for (const std::string &n : pass_names)
            selected = selected || n == pass->name();
        if (!selected)
            continue;
        report.passesRun.push_back(pass->name());
        for (const RuleInfo &r : pass->rules())
            active_rules.push_back(r.id);
        pass->run(ctx, sink);
    }

    sink.finalize(active_rules);
    report.diagnostics = sink.diagnostics();
    report.suppressions = sink.suppressions();
    return report;
}

LintReport
runLint(const std::string &root,
        const std::vector<std::string> &pass_names)
{
    return runLintOnFiles(root, loadTree(root), pass_names);
}

} // namespace vic::analysis
