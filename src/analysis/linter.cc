#include "analysis/linter.hh"

#include <stdexcept>

#include "analysis/callgraph.hh"

#include "common/logging.hh"

namespace vic::analysis
{

std::vector<std::unique_ptr<Pass>>
makeAllPasses()
{
    std::vector<std::unique_ptr<Pass>> passes;
    passes.push_back(makeDeterminismPass());
    passes.push_back(makeDrainPass());
    passes.push_back(makeAddrKindPass());
    passes.push_back(makeSpecTablePass());
    passes.push_back(makeCounterPass());
    passes.push_back(makeCounterLivenessPass());
    passes.push_back(makeLayeringPass());
    return passes;
}

JsonValue
LintReport::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::str("vic-lint-report-v2"));
    doc.set("root", JsonValue::str(root));

    JsonValue passes = JsonValue::array();
    for (const std::string &p : passesRun)
        passes.push(JsonValue::str(p));
    doc.set("passes", std::move(passes));

    doc.set("files_scanned",
            JsonValue::number(std::uint64_t(filesScanned)));
    doc.set("clean", JsonValue::boolean(clean()));

    JsonValue pstats = JsonValue::array();
    for (const PassRunStats &p : passStats) {
        JsonValue j = JsonValue::object();
        j.set("pass", JsonValue::str(p.pass));
        j.set("functions_analyzed",
              JsonValue::number(p.stats.functionsAnalyzed));
        j.set("summaries_computed",
              JsonValue::number(p.stats.summariesComputed));
        j.set("fixpoint_iterations",
              JsonValue::number(p.stats.fixpointIterations));
        pstats.push(std::move(j));
    }
    doc.set("pass_stats", std::move(pstats));

    JsonValue diags = JsonValue::array();
    for (const Diagnostic &d : diagnostics) {
        JsonValue j = JsonValue::object();
        j.set("rule", JsonValue::str(d.rule));
        j.set("file", JsonValue::str(d.file));
        j.set("line", JsonValue::number(std::uint64_t(d.line)));
        j.set("col", JsonValue::number(std::uint64_t(d.col)));
        j.set("message", JsonValue::str(d.message));
        diags.push(std::move(j));
    }
    doc.set("diagnostics", std::move(diags));

    JsonValue sups = JsonValue::array();
    for (const Suppression &s : suppressions) {
        JsonValue j = JsonValue::object();
        j.set("rule", JsonValue::str(s.rule));
        j.set("file", JsonValue::str(s.file));
        j.set("line", JsonValue::number(std::uint64_t(s.commentLine)));
        j.set("reason", JsonValue::str(s.reason));
        j.set("used", JsonValue::boolean(s.used));
        sups.push(std::move(j));
    }
    doc.set("suppressions", std::move(sups));
    return doc;
}

LintReport
LintReport::fromJson(const JsonValue &doc)
{
    const JsonValue *schema = doc.find("schema");
    if (schema == nullptr ||
        (schema->asString() != "vic-lint-report-v1" &&
         schema->asString() != "vic-lint-report-v2"))
        throw std::runtime_error("not a vic-lint report");

    LintReport r;
    if (const JsonValue *v = doc.find("root"))
        r.root = v->asString();
    if (const JsonValue *v = doc.find("passes")) {
        for (const JsonValue &p : v->items())
            r.passesRun.push_back(p.asString());
    }
    if (const JsonValue *v = doc.find("files_scanned"))
        r.filesScanned = static_cast<std::size_t>(v->asU64());
    if (const JsonValue *v = doc.find("diagnostics")) {
        for (const JsonValue &j : v->items()) {
            Diagnostic d;
            d.rule = j.find("rule")->asString();
            d.file = j.find("file")->asString();
            d.line =
                static_cast<std::uint32_t>(j.find("line")->asU64());
            d.col =
                static_cast<std::uint32_t>(j.find("col")->asU64());
            d.message = j.find("message")->asString();
            r.diagnostics.push_back(std::move(d));
        }
    }
    if (const JsonValue *v = doc.find("suppressions")) {
        for (const JsonValue &j : v->items()) {
            Suppression s;
            s.rule = j.find("rule")->asString();
            s.file = j.find("file")->asString();
            s.commentLine =
                static_cast<std::uint32_t>(j.find("line")->asU64());
            s.reason = j.find("reason")->asString();
            s.used = j.find("used")->asBool();
            r.suppressions.push_back(std::move(s));
        }
    }
    // v1 simply has no pass_stats; everything else reads the same.
    if (const JsonValue *v = doc.find("pass_stats")) {
        for (const JsonValue &j : v->items()) {
            PassRunStats p;
            p.pass = j.find("pass")->asString();
            p.stats.functionsAnalyzed =
                j.find("functions_analyzed")->asU64();
            p.stats.summariesComputed =
                j.find("summaries_computed")->asU64();
            p.stats.fixpointIterations =
                j.find("fixpoint_iterations")->asU64();
            r.passStats.push_back(std::move(p));
        }
    }
    return r;
}

std::vector<std::string>
LintReport::renderLines() const
{
    std::vector<std::string> lines;
    lines.reserve(diagnostics.size());
    for (const Diagnostic &d : diagnostics)
        lines.push_back(d.render());
    return lines;
}

LintReport
runLintOnFiles(const std::string &root, std::vector<SourceFile> files,
               const std::vector<std::string> &pass_names)
{
    LintReport report;
    report.root = normalizeRoot(root);
    report.filesScanned = files.size();

    Sink sink;
    sink.collectSuppressions(files);

    // One call graph for every interprocedural pass in the run.
    const CallGraph graph = CallGraph::build(files);
    PassContext ctx{report.root, files};
    ctx.graph = &graph;

    std::vector<std::string> active_rules;
    for (const auto &pass : makeAllPasses()) {
        bool selected = pass_names.empty();
        for (const std::string &n : pass_names)
            selected = selected || n == pass->name();
        if (!selected)
            continue;
        report.passesRun.push_back(pass->name());
        for (const RuleInfo &r : pass->rules()) {
            active_rules.push_back(r.id);
            report.activeRules.push_back({r.id, r.summary});
        }
        PassStats stats;
        pass->run(ctx, sink, stats);
        report.passStats.push_back({pass->name(), stats});
    }
    report.activeRules.push_back(
        {kRuleSuppressUndocumented,
         "a vic-lint: allow() without a reason"});
    report.activeRules.push_back(
        {kRuleSuppressUnused,
         "a vic-lint: allow() that silences nothing"});

    sink.finalize(active_rules);
    report.diagnostics = sink.diagnostics();
    report.suppressions = sink.suppressions();
    return report;
}

LintReport
runLint(const std::string &root,
        const std::vector<std::string> &pass_names)
{
    return runLintOnFiles(root, loadTree(root), pass_names);
}

} // namespace vic::analysis
