/**
 * @file
 * Token stream for the static analyzer.
 *
 * The whole point of vic_lint over the old grep-based lint is that
 * passes see a COMMENT- AND STRING-AWARE view of the source: a banned
 * identifier mentioned in a comment or a string literal is not a use,
 * and an identifier at the start of a line is one. The tokenizer is a
 * single-purpose C++ lexer — it does not expand the preprocessor or
 * resolve templates; it classifies bytes into identifiers, literals,
 * comments, punctuation and #include directives with exact line:column
 * positions, which is all the passes need.
 */

#ifndef VIC_ANALYSIS_TOKEN_HH
#define VIC_ANALYSIS_TOKEN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vic::analysis
{

enum class TokKind : std::uint8_t
{
    Ident,    ///< identifier or keyword
    Number,   ///< numeric literal (ints, floats, hex, separators)
    String,   ///< string literal, text WITH quotes (raw strings too)
    CharLit,  ///< character literal, text with quotes
    Comment,  ///< // or block comment, raw text with markers
    Punct,    ///< one punctuation character ("::" is one token)
    Include,  ///< #include directive; text is the target WITH its
              ///< delimiters: "dir/file.hh" or <vector>
};

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    std::uint32_t line = 1;  ///< 1-based
    std::uint32_t col = 1;   ///< 1-based byte column
    /** First token on its source line (suppression placement and the
     *  #include detector care). */
    bool firstOnLine = false;
};

/** Lex @p text. Never fails: unrecognised bytes become Punct. */
std::vector<Token> tokenize(const std::string &text);

} // namespace vic::analysis

#endif // VIC_ANALYSIS_TOKEN_HH
