/**
 * @file
 * Pass 1: determinism — the token-aware successor of the old
 * grep-based tools/lint_determinism.sh.
 *
 * The simulator, benches and analyzers must be bit-reproducible: same
 * inputs, same artifacts, across runs, machines and --jobs settings
 * (ci.sh gates on artifact equality). Any wall-clock or entropy
 * source in simulation code silently breaks that contract, and the
 * standard library's random engines have implementation-defined
 * streams, so only the repo's own SplitMix64/xoshiro generators
 * (src/common/random.hh) are sanctioned.
 *
 * Being token-aware fixes both failure modes of the grep lint: a
 * banned name inside a comment or string literal is no longer a
 * false positive, and `time(` at the start of a line (which the
 * `[^a-zA-Z_]time\(` regex could not see) is no longer a miss.
 *
 * std::chrono::steady_clock stays legal: it measures elapsed host
 * time for progress/throughput reporting and never feeds simulated
 * state.
 *
 * Rules:
 *   det-wallclock   std::chrono::system_clock, C time()
 *   det-entropy     rand()/srand(), std::random_device
 *   det-std-random  std random engines/distributions, std::shuffle
 *   det-unordered   unordered containers in src/mc (exploration
 *                   results must be identical across --jobs; hash
 *                   iteration order is seed- and ASLR-dependent),
 *                   in src/common *headers* (the sim-visible APIs
 *                   every artifact flows through — including the
 *                   Arena, whose allocation order must stay a pure
 *                   function of the call sequence), and in all of
 *                   src/mmu (the arena-backed page table derives its
 *                   chains from a fixed key mix precisely so no
 *                   host-dependent hash can slip back in)
 */

#include "analysis/cpp_scan.hh"
#include "analysis/pass.hh"

#include "common/logging.hh"

namespace vic::analysis
{
namespace
{

const char *const kWallclockIdents[] = {"system_clock"};
const char *const kEntropyCalls[] = {"rand", "srand"};
const char *const kEntropyIdents[] = {"random_device"};
const char *const kStdRandomIdents[] = {
    "mt19937",      "mt19937_64",     "minstd_rand",
    "minstd_rand0", "default_random_engine",
    "uniform_int_distribution",       "uniform_real_distribution",
};

bool
inList(const std::string &s, const char *const *list, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (s == list[i])
            return true;
    }
    return false;
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Identifier immediately followed by '(' — a call or declarator. */
bool
calledNext(const std::vector<Token> &toks, std::size_t i)
{
    return isPunct(toks, skipComments(toks, i + 1), "(");
}

/** Identifier preceded by "std ::". */
bool
stdQualified(const std::vector<Token> &toks, std::size_t i)
{
    if (i < 2)
        return false;
    return isPunct(toks, i - 1, "::") && isIdent(toks, i - 2, "std");
}

class DeterminismPass : public Pass
{
  public:
    const char *name() const override { return "determinism"; }

    const char *summary() const override
    {
        return "no wall-clock, entropy source, or std random engine "
               "in simulation code; no unordered containers in the "
               "model checker or sim-visible common headers";
    }

    std::vector<RuleInfo> rules() const override
    {
        return {
            {"det-wallclock",
             "wall-clock time source (std::chrono::system_clock, C "
             "time())"},
            {"det-entropy",
             "entropy source (rand/srand, std::random_device)"},
            {"det-std-random",
             "std random engine/distribution/shuffle — streams are "
             "implementation-defined; use src/common/random.hh"},
            {"det-unordered",
             "unordered container where iteration order escapes "
             "(src/mc, src/common headers, src/mmu)"},
        };
    }

    void run(const PassContext &ctx, Sink &sink,
             PassStats &) const override
    {
        for (const SourceFile &f : ctx.files) {
            scanBans(f, sink);
            if (startsWith(f.path, "src/mc/") ||
                startsWith(f.path, "src/mmu/") ||
                (startsWith(f.path, "src/common/") &&
                 f.path.size() > 3 &&
                 f.path.compare(f.path.size() - 3, 3, ".hh") == 0))
                scanUnordered(f, sink);
        }
    }

  private:
    void scanBans(const SourceFile &f, Sink &sink) const
    {
        const std::vector<Token> &toks = f.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.kind != TokKind::Ident)
                continue;
            if (inList(t.text, kWallclockIdents, 1)) {
                sink.report("det-wallclock", f.path, t.line, t.col,
                            format("wall-clock source '%s' in "
                                   "simulation code",
                                   t.text.c_str()));
            } else if (t.text == "time" && calledNext(toks, i)) {
                sink.report("det-wallclock", f.path, t.line, t.col,
                            "C time() in simulation code");
            } else if (inList(t.text, kEntropyCalls, 2) &&
                       calledNext(toks, i)) {
                sink.report("det-entropy", f.path, t.line, t.col,
                            format("entropy source '%s()' in "
                                   "simulation code",
                                   t.text.c_str()));
            } else if (inList(t.text, kEntropyIdents, 1)) {
                sink.report("det-entropy", f.path, t.line, t.col,
                            "std::random_device in simulation code");
            } else if (inList(t.text, kStdRandomIdents, 7)) {
                sink.report("det-std-random", f.path, t.line, t.col,
                            format("std random engine/distribution "
                                   "'%s' — draw from "
                                   "src/common/random.hh streams",
                                   t.text.c_str()));
            } else if (t.text == "shuffle" && stdQualified(toks, i)) {
                sink.report("det-std-random", f.path, t.line, t.col,
                            "std::shuffle uses an "
                            "implementation-defined engine "
                            "interaction — permute explicitly");
            }
        }
    }

    void scanUnordered(const SourceFile &f, Sink &sink) const
    {
        for (const Token &t : f.tokens) {
            if (t.kind != TokKind::Ident)
                continue;
            if (startsWith(t.text, "unordered_")) {
                sink.report(
                    "det-unordered", f.path, t.line, t.col,
                    format("'%s' has hash-seed/address-dependent "
                           "iteration order; use std::map/std::set",
                           t.text.c_str()));
            }
        }
    }
};

} // anonymous namespace

std::unique_ptr<Pass>
makeDeterminismPass()
{
    return std::make_unique<DeterminismPass>();
}

} // namespace vic::analysis
