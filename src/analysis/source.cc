#include "analysis/source.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace vic::analysis
{
namespace fs = std::filesystem;

namespace
{

const char *const kTopDirs[] = {"src", "tools", "bench", "tests",
                                "examples"};

bool
wantedExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh";
}

std::string
readWhole(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // anonymous namespace

std::string
normalizeRoot(const std::string &root)
{
    std::string r = root.empty() ? std::string(".") : root;
    while (r.size() > 1 && (r.back() == '/' || r.back() == '\\'))
        r.pop_back();
    return r;
}

std::vector<SourceFile>
loadTree(const std::string &root)
{
    const fs::path base(normalizeRoot(root));
    std::vector<fs::path> paths;
    for (const char *top : kTopDirs) {
        const fs::path dir = base / top;
        std::error_code ec;
        if (!fs::is_directory(dir, ec))
            continue;
        for (auto it = fs::recursive_directory_iterator(dir, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file())
                continue;
            const fs::path &p = it->path();
            if (!wantedExtension(p))
                continue;
            // Fixture trees are lint roots of their own: skip them
            // when they are INSIDE the root being scanned (the
            // relative path is what matters — a fixture tree passed
            // AS the root scans normally).
            if (fs::relative(p, base).generic_string().find(
                    "lint_fixtures") != std::string::npos)
                continue;
            paths.push_back(p);
        }
    }

    std::vector<SourceFile> files;
    files.reserve(paths.size());
    for (const fs::path &p : paths) {
        SourceFile f;
        f.path = fs::relative(p, base).generic_string();
        f.text = readWhole(p);
        files.push_back(std::move(f));
    }
    std::sort(files.begin(), files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });
    for (SourceFile &f : files)
        f.tokens = tokenize(f.text);
    return files;
}

const SourceFile *
findFile(const std::vector<SourceFile> &files,
         const std::string &rel_path)
{
    for (const SourceFile &f : files) {
        if (f.path == rel_path)
            return &f;
    }
    return nullptr;
}

bool
hasDir(const std::vector<SourceFile> &files, const std::string &rel_dir)
{
    const std::string prefix = rel_dir + "/";
    for (const SourceFile &f : files) {
        if (f.path.compare(0, prefix.size(), prefix) == 0)
            return true;
    }
    return false;
}

} // namespace vic::analysis
