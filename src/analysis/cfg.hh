/**
 * @file
 * Reusable per-function control-flow walker.
 *
 * PR 8's drain pass carried a private brace-matched CFG; the
 * interprocedural work needs the same walk for summary computation,
 * violation reporting, and lambda islands, so the walker lives here
 * as a reusable component. It interprets one function body as a
 * path-sensitive flow of "obligation" facts:
 *
 *  - if/else: facts survive a branch only as the union of the
 *    branches (an if without else keeps the fall-through path);
 *  - loops: the condition/header is always evaluated at least once;
 *    the body may run zero times, so facts cleared only in the body
 *    stay live and facts created in the body stay pending;
 *  - switch: the value is evaluated, the cases are scanned as a
 *    linear (fallthrough) sequence, and the no-case-matches path is
 *    kept;
 *  - return exits the path; the return EXPRESSION is evaluated first
 *    (a `return startWrite(...)` creates the obligation the caller
 *    inherits), then the delegate sees the state at the return;
 *    vic_panic/vic_fatal/abort/exit/throw terminate a path and
 *    forgive its facts;
 *  - lambda bodies are OPAQUE to the enclosing walk (neither their
 *    facts nor their clears leak out), but every lambda body range
 *    found is reported back so callers can analyse each as an
 *    anonymous function of its own — a started transfer inside a
 *    lambda is somebody's obligation, never silently dropped.
 *
 * The domain is supplied by a CfgDelegate: the walker only decides
 * WHERE control can flow; the delegate decides WHAT each call does to
 * the fact set.
 */

#ifndef VIC_ANALYSIS_CFG_HH
#define VIC_ANALYSIS_CFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/token.hh"

namespace vic::analysis
{

/** One tracked fact: an obligation created at a source site. */
struct CfgFact
{
    std::string label;  ///< e.g. the callee name that created it
    std::uint32_t line = 0;
    std::uint32_t col = 0;

    bool operator==(const CfgFact &o) const
    {
        return line == o.line && col == o.col && label == o.label;
    }
};

/** Path state: the pending facts, or a terminated (abort) path. */
struct CfgState
{
    bool terminated = false;
    std::vector<CfgFact> facts;
};

class CfgDelegate
{
  public:
    virtual ~CfgDelegate() = default;

    /**
     * A call-shaped identifier (followed by '(') on a live path.
     * Mutate @p state to add or clear facts. @return true when the
     * call terminates the path (the abort family); the walker
     * additionally terminates on a bare `throw`.
     */
    virtual bool onCall(const Token &name, CfgState &state) = 0;

    /** A path reached function exit (an explicit return, or falling
     *  off the closing brace) with @p state. */
    virtual void onExit(const CfgState &state,
                        std::uint32_t exit_line) = 0;
};

/** A lambda body found during a walk: [open, close] token indices of
 *  its braces. */
struct LambdaBody
{
    std::size_t open = 0;
    std::size_t close = 0;
};

class CfgWalker
{
  public:
    CfgWalker(const std::vector<Token> &tokens, CfgDelegate &delegate);

    /**
     * Walk the body whose braces are at token indices @p open and
     * @p close, starting from @p in. The delegate sees every exit;
     * the returned list holds every lambda body encountered (not
     * analysed — they are the caller's to walk separately).
     */
    std::vector<LambdaBody> walk(std::size_t open, std::size_t close,
                                 CfgState in = CfgState());

  private:
    const std::vector<Token> &toks;
    CfgDelegate &out;
    std::vector<LambdaBody> lambdas;

    CfgState seq(std::size_t begin, std::size_t end, CfgState in);
    CfgState statement(std::size_t i, std::size_t limit, CfgState in,
                       std::size_t &next);
    CfgState ifStatement(std::size_t i, std::size_t limit, CfgState in,
                         std::size_t &next);
    CfgState loopStatement(std::size_t i, std::size_t limit,
                           CfgState in, std::size_t &next);
    CfgState doStatement(std::size_t i, std::size_t limit, CfgState in,
                         std::size_t &next);
    CfgState switchStatement(std::size_t i, std::size_t limit,
                             CfgState in, std::size_t &next);
    void header(std::size_t begin, std::size_t end, CfgState &state);
    void noteLambdaAt(std::size_t bracket, std::size_t limit,
                      std::size_t &skip_to);
    std::size_t skipToSemicolon(std::size_t i, std::size_t limit);
};

/** Merge @p from's facts into @p into (set union by site). */
void mergeFacts(std::vector<CfgFact> &into,
                const std::vector<CfgFact> &from);

} // namespace vic::analysis

#endif // VIC_ANALYSIS_CFG_HH
