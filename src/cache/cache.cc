#include "cache/cache.hh"

#include "cache/coherence.hh"
#include "common/logging.hh"

#include <algorithm>

namespace vic
{

const char *
mesiStateName(MesiState s)
{
    switch (s) {
      case MesiState::Invalid:
        return "I";
      case MesiState::Shared:
        return "S";
      case MesiState::Exclusive:
        return "E";
      case MesiState::Modified:
        return "M";
    }
    return "?";
}

Cache::Cache(std::string cache_name, const CacheGeometry &geom,
             const CacheCosts &cache_costs, WritePolicy write_policy,
             PhysicalMemory &memory, CycleClock &clock, StatSet &stat_set)
    : cacheName(std::move(cache_name)), geo(geom), costs(cache_costs),
      policy(write_policy), mem(memory), clk(clock), statSet(stat_set),
      lineCols(geo.numLines()), lineState(lineCols.column<0>()),
      lineTag(lineCols.column<1>()), lineUse(lineCols.column<2>()),
      data(std::uint64_t(geo.numLines()) * geo.wordsPerLine(), 0),
      statReads(stat_set.counter(cacheName + ".reads")),
      statWrites(stat_set.counter(cacheName + ".writes")),
      statHits(stat_set.counter(cacheName + ".hits")),
      statMisses(stat_set.counter(cacheName + ".misses")),
      statWriteBacks(stat_set.counter(cacheName + ".write_backs")),
      statFills(stat_set.counter(cacheName + ".fills")),
      statFlushPresent(stat_set.counter(cacheName + ".flush_present")),
      statFlushAbsent(stat_set.counter(cacheName + ".flush_absent")),
      statPurgePresent(stat_set.counter(cacheName + ".purge_present")),
      statPurgeAbsent(stat_set.counter(cacheName + ".purge_absent")),
      statFlushCycles(stat_set.counter(cacheName + ".flush_cycles")),
      statPurgeCycles(stat_set.counter(cacheName + ".purge_cycles"))
{
}

void
Cache::enableSelfSnoop(Cycles penalty_cycles)
{
    selfSnoop = true;
    selfSnoopPenalty = penalty_cycles;
    // Registered lazily so machines without synonym coherence keep
    // their exact pre-existing counter set (artifact bit-identity).
    if (statSynonymSnoops == nullptr) {
        statSynonymSnoops =
            &statSet.counter(cacheName + ".synonym_snoops");
        statSynonymSnoopCycles =
            &statSet.counter(cacheName + ".synonym_snoop_cycles");
    }
}

std::uint32_t
Cache::victimWay(std::uint32_t set) const
{
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~std::uint64_t(0);
    for (std::uint32_t w = 0; w < geo.associativity(); ++w) {
        const std::uint32_t id = lineId(set, w);
        if (!lineValid(id))
            return w;
        if (lineUse[id] < oldest) {
            oldest = lineUse[id];
            victim = w;
        }
    }
    return victim;
}

void
Cache::writeBack(std::uint32_t line_id)
{
    vic_assert(lineDirty(line_id), "write-back of non-dirty line");
    PhysAddr base(lineTag[line_id] * geo.lineBytes());
    mem.writeWords(base, lineData(line_id), geo.wordsPerLine());
    lineState[line_id] = MesiState::Exclusive;
    ++statWriteBacks;
    clk.advance(costs.writeBackPenalty);
}

void
Cache::selfSnoopSynonyms(std::uint32_t keep_id, PhysAddr pa_line)
{
    const std::uint64_t tag = pa_line.value / geo.lineBytes();
    forEachCandidateSet(pa_line, [&](std::uint32_t set) {
        for (std::uint32_t w = 0; w < geo.associativity(); ++w) {
            const std::uint32_t id = lineId(set, w);
            if (id == keep_id)
                continue;
            if (!lineValid(id) || lineTag[id] != tag)
                continue;
            if (lineDirty(id))
                writeBack(id);
            lineState[id] = MesiState::Invalid;
            if (statSynonymSnoops != nullptr) {
                ++*statSynonymSnoops;
                *statSynonymSnoopCycles += selfSnoopPenalty;
            }
            clk.advance(selfSnoopPenalty);
        }
    });
}

void
Cache::fill(std::uint32_t line_id, PhysAddr pa, bool for_write)
{
    PhysAddr base(geo.lineBase(pa.value));
    // Coherence actions first, so peer (and synonym) write-backs land
    // in memory before this fill reads it.
    bool shared = false;
    if (bus != nullptr) {
        if (for_write)
            bus->busReadExclusive(this, base);
        else
            shared = bus->busRead(this, base);
    }
    if (selfSnoop)
        selfSnoopSynonyms(line_id, base);
    mem.readWords(base, lineData(line_id), geo.wordsPerLine());
    lineState[line_id] =
        shared ? MesiState::Shared : MesiState::Exclusive;
    lineTag[line_id] = pa.value / geo.lineBytes();
    ++statFills;
    clk.advance(costs.missPenalty);
}

std::uint32_t
Cache::read(VirtAddr va, PhysAddr pa)
{
    vic_assert(va.value % 4 == 0 && pa.value % 4 == 0,
               "unaligned cache access");
    ++statReads;
    const std::uint32_t set = geo.setIndex(indexBits(va, pa));
    int way = findWay(set, pa);
    clk.advance(costs.hit);
    if (way < 0) {
        ++statMisses;
        const std::uint32_t victim = victimWay(set);
        const std::uint32_t id = lineId(set, victim);
        if (lineDirty(id))
            writeBack(id);
        fill(id, pa, false);
        way = static_cast<int>(victim);
    } else {
        ++statHits;
    }
    const std::uint32_t id = lineId(set, static_cast<std::uint32_t>(way));
    lineUse[id] = ++useTick;
    const std::uint32_t word_in_line =
        static_cast<std::uint32_t>((pa.value / 4) % geo.wordsPerLine());
    return lineData(id)[word_in_line];
}

void
Cache::write(VirtAddr va, PhysAddr pa, std::uint32_t value)
{
    vic_assert(va.value % 4 == 0 && pa.value % 4 == 0,
               "unaligned cache access");
    ++statWrites;
    const std::uint32_t set = geo.setIndex(indexBits(va, pa));
    int way = findWay(set, pa);
    clk.advance(costs.hit);

    if (policy == WritePolicy::WriteThrough) {
        // No write-allocate: a miss writes straight to memory.
        mem.writeWord(pa, value);
        if (way < 0) {
            ++statMisses;
            return;
        }
        ++statHits;
        const std::uint32_t id =
            lineId(set, static_cast<std::uint32_t>(way));
        lineUse[id] = ++useTick;
        const std::uint32_t word_in_line =
            static_cast<std::uint32_t>((pa.value / 4) %
                                       geo.wordsPerLine());
        lineData(id)[word_in_line] = value;
        return;
    }

    // Write-back, write-allocate.
    if (way < 0) {
        ++statMisses;
        const std::uint32_t victim = victimWay(set);
        const std::uint32_t id = lineId(set, victim);
        if (lineDirty(id))
            writeBack(id);
        fill(id, pa, true);
        way = static_cast<int>(victim);
    } else {
        ++statHits;
        const std::uint32_t id =
            lineId(set, static_cast<std::uint32_t>(way));
        // A Shared hit must win exclusive ownership before writing.
        if (bus != nullptr && lineState[id] == MesiState::Shared)
            bus->busUpgrade(this, PhysAddr(geo.lineBase(pa.value)));
    }
    const std::uint32_t id = lineId(set, static_cast<std::uint32_t>(way));
    lineUse[id] = ++useTick;
    lineState[id] = MesiState::Modified;
    const std::uint32_t word_in_line =
        static_cast<std::uint32_t>((pa.value / 4) % geo.wordsPerLine());
    lineData(id)[word_in_line] = value;
}

bool
Cache::removeLine(VirtAddr va, PhysAddr pa, bool write_back)
{
    const std::uint32_t set = geo.setIndex(indexBits(va, pa));
    const int way = findWay(set, pa);
    const bool present = way >= 0;

    const Cycles cost = (present || costs.uniformOpCost)
        ? costs.opLinePresent
        : costs.opLineAbsent;
    clk.advance(cost);

    if (write_back) {
        statFlushCycles += cost;
        present ? ++statFlushPresent : ++statFlushAbsent;
    } else {
        statPurgeCycles += cost;
        present ? ++statPurgePresent : ++statPurgeAbsent;
    }

    if (!present)
        return false;

    const std::uint32_t id = lineId(set, static_cast<std::uint32_t>(way));
    if (write_back && lineDirty(id))
        writeBack(id);
    lineState[id] = MesiState::Invalid;
    return true;
}

bool
Cache::flushLine(VirtAddr va, PhysAddr pa)
{
    return removeLine(va, pa, true);
}

bool
Cache::purgeLine(VirtAddr va, PhysAddr pa)
{
    return removeLine(va, pa, false);
}

std::uint32_t
Cache::flushPage(VirtAddr page_va, PhysAddr page_pa)
{
    std::uint32_t present = 0;
    for (std::uint32_t off = 0; off < geo.pageBytes();
         off += geo.lineBytes()) {
        if (flushLine(page_va.plus(off), page_pa.plus(off)))
            ++present;
    }
    return present;
}

std::uint32_t
Cache::purgePage(VirtAddr page_va, PhysAddr page_pa)
{
    std::uint32_t present = 0;
    for (std::uint32_t off = 0; off < geo.pageBytes();
         off += geo.lineBytes()) {
        if (purgeLine(page_va.plus(off), page_pa.plus(off)))
            ++present;
    }
    return present;
}

void
Cache::purgeAll()
{
    std::fill(lineState, lineState + geo.numLines(),
              MesiState::Invalid);
}

void
Cache::snoopInvalidateLine(PhysAddr pa_line)
{
    const std::uint64_t tag = pa_line.value / geo.lineBytes();
    forEachCandidateSet(pa_line, [&](std::uint32_t set) {
        for (std::uint32_t w = 0; w < geo.associativity(); ++w) {
            const std::uint32_t id = lineId(set, w);
            if (lineValid(id) && lineTag[id] == tag)
                lineState[id] = MesiState::Invalid;
        }
    });
}

bool
Cache::snoopWriteBackLine(PhysAddr pa_line)
{
    const std::uint64_t tag = pa_line.value / geo.lineBytes();
    bool wrote = false;
    forEachCandidateSet(pa_line, [&](std::uint32_t set) {
        for (std::uint32_t w = 0; w < geo.associativity(); ++w) {
            const std::uint32_t id = lineId(set, w);
            if (lineValid(id) && lineTag[id] == tag &&
                lineDirty(id)) {
                writeBack(id);
                wrote = true;
            }
        }
    });
    return wrote;
}

Cache::SnoopReply
Cache::snoopBusRead(PhysAddr pa_line)
{
    const std::uint64_t tag = pa_line.value / geo.lineBytes();
    SnoopReply reply;
    forEachCandidateSet(pa_line, [&](std::uint32_t set) {
        for (std::uint32_t w = 0; w < geo.associativity(); ++w) {
            const std::uint32_t id = lineId(set, w);
            if (!lineValid(id) || lineTag[id] != tag)
                continue;
            reply.hadCopy = true;
            if (lineDirty(id)) {
                writeBack(id);
                reply.intervened = true;
            }
            lineState[id] = MesiState::Shared;
        }
    });
    return reply;
}

Cache::SnoopReply
Cache::snoopBusInvalidate(PhysAddr pa_line)
{
    const std::uint64_t tag = pa_line.value / geo.lineBytes();
    SnoopReply reply;
    forEachCandidateSet(pa_line, [&](std::uint32_t set) {
        for (std::uint32_t w = 0; w < geo.associativity(); ++w) {
            const std::uint32_t id = lineId(set, w);
            if (!lineValid(id) || lineTag[id] != tag)
                continue;
            reply.hadCopy = true;
            if (lineDirty(id)) {
                writeBack(id);
                reply.intervened = true;
            }
            lineState[id] = MesiState::Invalid;
        }
    });
    return reply;
}

Cache::Probe
Cache::probe(VirtAddr va, PhysAddr pa) const
{
    Probe p;
    const std::uint32_t set = geo.setIndex(indexBits(va, pa));
    const int way = findWay(set, pa);
    if (way < 0)
        return p;
    const std::uint32_t id = lineId(set, static_cast<std::uint32_t>(way));
    p.present = true;
    p.dirty = lineDirty(id);
    p.state = lineState[id];
    const std::uint32_t word_in_line =
        static_cast<std::uint32_t>((pa.value / 4) % geo.wordsPerLine());
    p.word = lineData(id)[word_in_line];
    return p;
}

} // namespace vic
