#include "cache/coherence.hh"

namespace vic
{

CoherenceBus::CoherenceBus(Cycles snoop_penalty, CycleClock &clock,
                           StatSet &stat_set)
    : snoopPenalty(snoop_penalty), clk(clock),
      statReads(stat_set.counter("bus.reads")),
      statReadExclusives(stat_set.counter("bus.read_exclusives")),
      statUpgrades(stat_set.counter("bus.upgrades")),
      statInterventions(stat_set.counter("bus.interventions")),
      statInvalidations(stat_set.counter("bus.invalidations")),
      statSnoopCycles(stat_set.counter("bus.snoop_cycles"))
{
}

void
CoherenceBus::attach(Cache *c)
{
    ports.push_back(c);
    c->attachBus(this);
}

Cache::SnoopReply
CoherenceBus::snoopPeers(const Cache *requester, PhysAddr pa_line,
                         bool invalidate)
{
    Cache::SnoopReply summary;
    for (Cache *port : ports) {
        if (port == requester)
            continue;
        const Cache::SnoopReply r = invalidate
            ? port->snoopBusInvalidate(pa_line)
            : port->snoopBusRead(pa_line);
        summary.hadCopy |= r.hadCopy;
        summary.intervened |= r.intervened;
        if (invalidate && r.hadCopy)
            ++statInvalidations;
    }
    if (summary.intervened) {
        ++statInterventions;
        statSnoopCycles += snoopPenalty;
        clk.advance(snoopPenalty);
    }
    return summary;
}

bool
CoherenceBus::busRead(const Cache *requester, PhysAddr pa_line)
{
    ++statReads;
    return snoopPeers(requester, pa_line, false).hadCopy;
}

void
CoherenceBus::busReadExclusive(const Cache *requester, PhysAddr pa_line)
{
    ++statReadExclusives;
    snoopPeers(requester, pa_line, true);
}

void
CoherenceBus::busUpgrade(const Cache *requester, PhysAddr pa_line)
{
    ++statUpgrades;
    snoopPeers(requester, pa_line, true);
}

} // namespace vic
