/**
 * @file
 * Snooping MESI coherence bus.
 *
 * A CoherenceBus connects the per-CPU caches of a multiprocessor (and,
 * optionally, their instruction caches) into a write-invalidate MESI
 * protocol. Caches attached to the bus route every fill through it:
 *
 *  - busRead (a read miss): every peer with a copy downgrades to
 *    Shared, writing a Modified copy back first so memory is current;
 *    the requester fills Shared if any peer held the line, else
 *    Exclusive.
 *  - busReadExclusive (a write miss): every peer invalidates its copy,
 *    writing a Modified copy back first; the requester fills Exclusive
 *    and then dirties the line to Modified.
 *  - busUpgrade (a write hit on a Shared line): peers invalidate; the
 *    requester takes the line to Modified without a refill.
 *
 * Instruction caches attach as read-only ports: they only ever issue
 * busRead (ifetch fills), but they are snooped like any other port, so
 * a store to a line an icache holds must broadcast an invalidation
 * (Shared-copy upgrade) that purges the stale instructions — the
 * hardware-coherent replacement for the software data-to-instruction
 * flush/purge pairs.
 *
 * The protocol invariant is the usual one: a Modified or Exclusive
 * copy implies every other port holds the line Invalid. Cycle cost:
 * a transaction charges the machine's snoopPenalty once when a peer
 * intervenes with data (Modified write-back); peers' write-backs
 * additionally charge their own writeBackPenalty, exactly as a
 * software-initiated flush would.
 */

#ifndef VIC_CACHE_COHERENCE_HH
#define VIC_CACHE_COHERENCE_HH

#include <vector>

#include "cache/cache.hh"
#include "common/cycle_clock.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace vic
{

class CoherenceBus
{
  public:
    /**
     * @param snoop_penalty cycles charged once per transaction in
     *                      which some peer intervened with data
     * @param clock         machine cycle clock
     * @param stat_set      statistics registry ("bus." counters are
     *                      registered here; the bus only exists on
     *                      coherent machines, so uncoherent machines'
     *                      artifacts keep their exact counter set)
     */
    CoherenceBus(Cycles snoop_penalty, CycleClock &clock,
                 StatSet &stat_set);

    /** Attach a cache as a snooped MESI port and point the cache back
     *  at this bus. Instruction caches attach the same way; they are
     *  read-only by construction (they never issue stores). */
    void attach(Cache *c);

    /** Number of attached ports. */
    std::size_t numPorts() const { return ports.size(); }

    /**
     * A read miss in @p requester. Peers downgrade to Shared (Modified
     * copies write back first). @return true iff any peer held a copy,
     * i.e. the requester must fill Shared rather than Exclusive.
     */
    bool busRead(const Cache *requester, PhysAddr pa_line);

    /** A write miss in @p requester: peers write back Modified copies
     *  and invalidate. The requester fills Exclusive. */
    void busReadExclusive(const Cache *requester, PhysAddr pa_line);

    /** A write hit on a Shared line in @p requester: peers invalidate
     *  (Shared copies are clean, so no data moves in a conforming
     *  protocol; a Modified peer copy would still be written back). */
    void busUpgrade(const Cache *requester, PhysAddr pa_line);

  private:
    /** Snoop every port except @p requester; invalidating or
     *  downgrading per @p invalidate. @return reply summary. */
    Cache::SnoopReply snoopPeers(const Cache *requester,
                                 PhysAddr pa_line, bool invalidate);

    std::vector<Cache *> ports;
    Cycles snoopPenalty;
    CycleClock &clk;

    Counter &statReads;          ///< busRead transactions
    Counter &statReadExclusives; ///< busReadExclusive transactions
    Counter &statUpgrades;       ///< busUpgrade transactions
    Counter &statInterventions;  ///< transactions a peer supplied data
    Counter &statInvalidations;  ///< peer copies invalidated
    Counter &statSnoopCycles;    ///< snoop-penalty cycles charged
};

} // namespace vic

#endif // VIC_CACHE_COHERENCE_HH
