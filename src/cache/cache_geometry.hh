/**
 * @file
 * Cache geometry: index function, cache pages ("colours"), and the
 * alignment predicate.
 *
 * Two virtual addresses ALIGN iff the cache index function maps them to
 * the same line; aligned aliases share cache lines and therefore create
 * no consistency problem (Section 2.2). A CACHE PAGE is the set of
 * cache lines onto which the index function maps all addresses of one
 * virtual page (Section 4); with page-sized granularity, alignment of
 * any one address in two pages implies alignment of all of them, which
 * is the paper's first hardware requirement.
 */

#ifndef VIC_CACHE_CACHE_GEOMETRY_HH
#define VIC_CACHE_CACHE_GEOMETRY_HH

#include <cstdint>

#include "common/types.hh"

namespace vic
{

/** Which address selects the cache set. */
enum class Indexing : std::uint8_t
{
    Virtual,  ///< virtually indexed (lookup parallel with translation)
    Physical, ///< physically indexed (translation first)
};

class CacheGeometry
{
  public:
    /**
     * @param cache_bytes total capacity; power of two
     * @param line_bytes  line size; power of two, multiple of 4
     * @param page_bytes  virtual-memory page size; power of two
     * @param ways        associativity (1 = direct mapped)
     * @param indexing    virtual or physical indexing
     */
    CacheGeometry(std::uint64_t cache_bytes, std::uint32_t line_bytes,
                  std::uint32_t page_bytes, std::uint32_t ways,
                  Indexing indexing);

    std::uint64_t cacheBytes() const { return bytes; }
    std::uint32_t lineBytes() const { return line; }
    std::uint32_t pageBytes() const { return page; }
    std::uint32_t associativity() const { return numWays; }
    Indexing indexing() const { return index; }

    std::uint32_t numLines() const { return lines; }
    std::uint32_t numSets() const { return sets; }
    std::uint32_t wordsPerLine() const { return line / 4; }
    std::uint32_t linesPerPage() const { return page / line; }

    /** Bytes spanned by one pass over all sets: the period of the index
     *  function in the address. */
    std::uint64_t setSpanBytes() const { return std::uint64_t(sets) * line; }

    /** Number of cache pages (colours). 1 means every pair of virtual
     *  pages aligns, i.e. the cache behaves like a physically indexed
     *  one for consistency purposes. */
    std::uint32_t numColours() const { return colours; }

    /** Page-sized regions per set span, regardless of indexing: the
     *  number of distinct sets a given physical line could occupy
     *  (used by physical snooping, which must probe every candidate
     *  since only the page-offset bits of the index are known). */
    std::uint32_t
    spanColours() const
    {
        const std::uint64_t span = setSpanBytes();
        return span > page ? static_cast<std::uint32_t>(span / page)
                           : 1;
    }

    /** Cache set selected by address bits @p addr_bits (virtual or
     *  physical value depending on indexing; the caller passes the
     *  right one via Cache). Inline: this runs once per simulated
     *  access on the pipeline fast path. */
    std::uint32_t
    // vic-lint: allow(addr-kind-mixed): the paper's virtually-vs-physically-indexed split IS this channel — Cache::indexBits picks va or pa bits by Indexing, so this parameter is polymorphic by design
    setIndex(std::uint64_t addr_bits) const
    {
        return static_cast<std::uint32_t>((addr_bits / line) &
                                          (sets - 1));
    }

    /** Cache page (colour) of the virtual page containing @p va. For a
     *  physically indexed cache this is always 0: all virtual pages
     *  align. */
    CachePageId
    colourOf(VirtAddr va) const
    {
        if (index == Indexing::Physical || colours == 1)
            return 0;
        return static_cast<CachePageId>((va.value / page) &
                                        (colours - 1));
    }

    /** Colour of a physical page under physical indexing (used for DMA
     *  and flush iteration). */
    CachePageId
    colourOfPhys(PhysAddr pa) const
    {
        if (colours == 1)
            return 0;
        return static_cast<CachePageId>((pa.value / page) &
                                        (colours - 1));
    }

    /** @return true iff @p a and @p b align in the cache. */
    bool aligned(VirtAddr a, VirtAddr b) const
    { return colourOf(a) == colourOf(b); }

    /** First byte of the line containing @p addr_bits. */
    std::uint64_t lineBase(std::uint64_t addr_bits) const
    { return addr_bits & ~std::uint64_t(line - 1); }

  private:
    std::uint64_t bytes;
    std::uint32_t line;
    std::uint32_t page;
    std::uint32_t numWays;
    Indexing index;

    std::uint32_t lines;
    std::uint32_t sets;
    std::uint32_t colours;
};

} // namespace vic

#endif // VIC_CACHE_CACHE_GEOMETRY_HH
