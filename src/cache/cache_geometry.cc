#include "cache/cache_geometry.hh"

#include <bit>

#include "common/logging.hh"

namespace vic
{

CacheGeometry::CacheGeometry(std::uint64_t cache_bytes,
                             std::uint32_t line_bytes,
                             std::uint32_t page_bytes, std::uint32_t ways,
                             Indexing indexing)
    : bytes(cache_bytes), line(line_bytes), page(page_bytes),
      numWays(ways), index(indexing)
{
    if (!std::has_single_bit(cache_bytes))
        vic_fatal("cache size %llu not a power of two",
                  (unsigned long long)cache_bytes);
    if (!std::has_single_bit(line_bytes) || line_bytes % 4 != 0)
        vic_fatal("line size %u invalid", line_bytes);
    if (!std::has_single_bit(page_bytes) || page_bytes < line_bytes)
        vic_fatal("page size %u invalid", page_bytes);
    if (ways == 0 || cache_bytes % (std::uint64_t(line_bytes) * ways) != 0)
        vic_fatal("associativity %u incompatible with geometry", ways);

    lines = static_cast<std::uint32_t>(bytes / line);
    sets = lines / numWays;
    if (!std::has_single_bit(sets))
        vic_fatal("number of sets %u not a power of two", sets);

    std::uint64_t span = setSpanBytes();
    colours = span > page
        ? static_cast<std::uint32_t>(span / page)
        : 1;
    if (index == Indexing::Physical)
        colours = 1;
}

} // namespace vic
