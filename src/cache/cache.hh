/**
 * @file
 * Functional and cycle-timed cache simulator.
 *
 * Models the HP 9000 Series 700 cache organisation of the paper:
 * virtually indexed, physically tagged, write-back, direct mapped —
 * plus the alternative organisations of Section 3.3 (physically
 * indexed, write-through, set associative) behind the same interface.
 *
 * The simulator stores real data. Because the index comes from the
 * virtual address while the tag comes from the physical address, a
 * physical line mapped at two unaligned virtual addresses occupies two
 * cache lines with independent data — so stale reads, shadowed DMA
 * input and lost write-backs genuinely occur when consistency is
 * mismanaged. The two cache control operations the hardware exports,
 * flush and purge by virtual address, are modelled with the 720's
 * measured cost asymmetry (an operation on a line that is present is
 * several times more expensive than on an absent one, Section 2.3).
 *
 * Each line carries a MESI coherence state. On a uniprocessor the
 * states degenerate to the classic valid/dirty pair (fill -> Exclusive,
 * store -> Modified) and nothing else changes. When the cache is
 * attached to a CoherenceBus (multi-CPU machines, coherence.hh), fills
 * become bus transactions that snoop the peer caches, stores to Shared
 * lines upgrade ownership, and the bus calls back into the snoop
 * methods to downgrade or invalidate this cache's copy.
 */

#ifndef VIC_CACHE_CACHE_HH
#define VIC_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_geometry.hh"
#include "common/column_store.hh"
#include "common/cycle_clock.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/physical_memory.hh"

namespace vic
{

class CoherenceBus;

/** Write policy of the cache (Section 3.3 distinguishes the two by the
 *  existence of the dirty state). */
enum class WritePolicy : std::uint8_t
{
    WriteBack,
    WriteThrough,
};

/** Per-line MESI coherence state. Invalid/Exclusive/Modified map onto
 *  the uniprocessor (valid, dirty) pair; Shared only arises when a
 *  CoherenceBus observes another cache holding the line. */
enum class MesiState : std::uint8_t
{
    Invalid = 0,
    Shared = 1,
    Exclusive = 2,
    Modified = 3,
};

/** Printable name ("I"/"S"/"E"/"M") for traces and tests. */
const char *mesiStateName(MesiState s);

/** Per-operation cycle costs. Defaults approximate the 50 MHz 720 as
 *  characterised in the paper. */
struct CacheCosts
{
    Cycles hit = 1;             ///< load/store hit
    Cycles missPenalty = 15;    ///< line fill from memory
    Cycles writeBackPenalty = 15; ///< dirty victim write-back

    /** Flush/purge of a line that is present: slow (memory traffic /
     *  pipeline drain). The paper: "a purge or flush of a virtual
     *  address can be up to seven times slower when the data is in the
     *  cache as opposed to when it isn't". */
    Cycles opLinePresent = 14;
    /** Flush/purge of an absent line: fast. */
    Cycles opLineAbsent = 2;
    /** If true, line flush/purge costs opLinePresent regardless of
     *  presence — the 720's instruction cache "requires constant time
     *  to purge ... regardless of its contents" (Section 5.1). */
    bool uniformOpCost = false;
};

class Cache
{
  public:
    /**
     * @param cache_name prefix for statistics (e.g. "dcache")
     * @param geom       geometry (size, line, page, ways, indexing)
     * @param cache_costs cycle cost table
     * @param write_policy write-back or write-through
     * @param memory     backing physical memory
     * @param clock      cycle clock charged by every operation
     * @param stat_set   statistics registry
     */
    Cache(std::string cache_name, const CacheGeometry &geom,
          const CacheCosts &cache_costs, WritePolicy write_policy,
          PhysicalMemory &memory, CycleClock &clock, StatSet &stat_set);

    const CacheGeometry &geometry() const { return geo; }
    WritePolicy writePolicy() const { return policy; }
    const std::string &name() const { return cacheName; }

    /**
     * Attach this cache to a snooping coherence bus. Every fill then
     * issues a bus-read (or bus-read-exclusive for stores) and stores
     * to Shared lines issue a bus-upgrade; the bus snoops the peers
     * through snoopBusRead()/snoopBusInvalidate(). A cache with no bus
     * behaves exactly as the uniprocessor cache always has.
     */
    void attachBus(CoherenceBus *b) { bus = b; }

    /** @return the attached coherence bus, or nullptr. */
    CoherenceBus *coherenceBus() const { return bus; }

    /**
     * Enable reverse-lookup synonym coherence (arXiv 2108.00444): at
     * fill time the cache snoops its *own* other candidate sets for a
     * copy of the same physical line under a different colour, writes
     * it back if modified and invalidates it, so at most one copy of
     * any physical line ever lives in the cache. @p penalty_cycles is
     * charged per displaced synonym; counters
     * <name>.synonym_snoops/.synonym_snoop_cycles are registered
     * lazily so uncoherent machines' artifacts are unchanged.
     */
    void enableSelfSnoop(Cycles penalty_cycles);

    /** CPU load of the aligned word at (@p va -> @p pa). */
    std::uint32_t read(VirtAddr va, PhysAddr pa);

    /** CPU store of the aligned word at (@p va -> @p pa). */
    void write(VirtAddr va, PhysAddr pa, std::uint32_t value);

    /**
     * Access-pipeline fast path: if the line holding (@p va -> @p pa)
     * is present, complete the load of the aligned word — identical
     * counters, LRU update and single cycle charge as read() — storing
     * it in @p value and returning true. On a miss, no state or
     * accounting is touched and the caller completes the access
     * through read(), which performs the full miss handling.
     */
    bool
    tryReadHit(VirtAddr va, PhysAddr pa, std::uint32_t &value)
    {
        const std::uint32_t set = geo.setIndex(indexBits(va, pa));
        const int way = findWay(set, pa);
        if (way < 0)
            return false;
        ++statReads;
        ++statHits;
        clk.advance(costs.hit);
        const std::uint32_t id =
            lineId(set, static_cast<std::uint32_t>(way));
        lineUse[id] = ++useTick;
        value = lineData(id)[
            static_cast<std::uint32_t>((pa.value / 4) %
                                       geo.wordsPerLine())];
        return true;
    }

    /**
     * Access-pipeline fast path for stores: the write-back, line-hit
     * analogue of tryReadHit(). Returns false — with no accounting —
     * on a line miss, for a write-through cache (whose stores always
     * touch memory), or for a Shared line on a coherence bus (which
     * must broadcast an upgrade first); the caller falls back to
     * write().
     */
    bool
    tryWriteHit(VirtAddr va, PhysAddr pa, std::uint32_t value)
    {
        if (policy != WritePolicy::WriteBack)
            return false;
        const std::uint32_t set = geo.setIndex(indexBits(va, pa));
        const int way = findWay(set, pa);
        if (way < 0)
            return false;
        const std::uint32_t id =
            lineId(set, static_cast<std::uint32_t>(way));
        if (bus != nullptr && lineState[id] == MesiState::Shared)
            return false;
        ++statWrites;
        ++statHits;
        clk.advance(costs.hit);
        lineUse[id] = ++useTick;
        lineState[id] = MesiState::Modified;
        lineData(id)[static_cast<std::uint32_t>(
            (pa.value / 4) % geo.wordsPerLine())] = value;
        return true;
    }

    /**
     * Hardware "flush virtual address": remove the line containing
     * @p va from the cache, writing it back first if dirty. The line is
     * located by indexing with @p va and comparing the physical tag
     * against @p pa, as on PA-RISC.
     *
     * @return true iff a matching line was present.
     */
    bool flushLine(VirtAddr va, PhysAddr pa);

    /** Hardware "purge virtual address": remove without write-back.
     *  @return true iff a matching line was present. */
    bool purgeLine(VirtAddr va, PhysAddr pa);

    /** Flush every line of the page mapped at (@p page_va -> @p page_pa).
     *  @return number of lines that were present. */
    std::uint32_t flushPage(VirtAddr page_va, PhysAddr page_pa);

    /** Purge every line of the page at (@p page_va -> @p page_pa).
     *  @return number of lines that were present. */
    std::uint32_t purgePage(VirtAddr page_va, PhysAddr page_pa);

    /** Invalidate the whole cache without write-back (power-up). */
    void purgeAll();

    /**
     * Coherent-DMA support (Section 3.3, "DMA can access the cache"):
     * invalidate every line whose tag covers @p pa_line, regardless of
     * which set it sits in. Used by a snooping DmaEngine on DMA-write.
     */
    void snoopInvalidateLine(PhysAddr pa_line);

    /**
     * Coherent-DMA support: if any line holding @p pa_line is dirty,
     * write it back so memory is current. Used by a snooping DmaEngine
     * on DMA-read. @return true iff a write-back occurred.
     */
    bool snoopWriteBackLine(PhysAddr pa_line);

    /** Outcome of a bus snoop against this cache. */
    struct SnoopReply
    {
        bool hadCopy = false;   ///< a valid copy of the line was found
        bool intervened = false; ///< a Modified copy was written back
    };

    /**
     * Bus snoop for a peer's read: a Modified copy is written back
     * (memory becomes current) and any copy downgrades to Shared.
     */
    SnoopReply snoopBusRead(PhysAddr pa_line);

    /**
     * Bus snoop for a peer's write (bus-read-exclusive / upgrade): a
     * Modified copy is written back first, then every copy is
     * invalidated.
     */
    SnoopReply snoopBusInvalidate(PhysAddr pa_line);

    /** Result of a non-intrusive lookup, for tests and the oracle. */
    struct Probe
    {
        bool present = false; ///< valid line with matching tag at va's set
        bool dirty = false;
        MesiState state = MesiState::Invalid; ///< coherence state
        std::uint32_t word = 0; ///< cached value of the probed word
    };

    /** Inspect the cache without charging cycles or changing state. */
    Probe probe(VirtAddr va, PhysAddr pa) const;

  private:
    std::string cacheName;
    CacheGeometry geo;
    CacheCosts costs;
    WritePolicy policy;
    PhysicalMemory &mem;
    CycleClock &clk;
    StatSet &statSet;
    CoherenceBus *bus = nullptr;

    /**
     * Per-line metadata in structure-of-arrays layout
     * (common/column_store.hh): column 0 = MESI state, column 1 =
     * physical tag (pa / lineBytes), column 2 = LRU use tick. The tag
     * probe touches only the state and tag columns, so a whole set's
     * candidates land in one or two host cache lines and the
     * branchless compare in findWay() vectorises; the LRU tick —
     * written on every hit but read only by victim selection — stays
     * out of the probe's way. Raw column pointers are resolved once
     * (the store never reallocates).
     */
    ColumnStore<MesiState, std::uint64_t, std::uint64_t> lineCols;
    MesiState *lineState = nullptr;
    std::uint64_t *lineTag = nullptr;
    std::uint64_t *lineUse = nullptr;

    std::vector<std::uint32_t> data;
    std::uint64_t useTick = 0;

    bool selfSnoop = false;
    Cycles selfSnoopPenalty = 0;

    Counter &statReads;
    Counter &statWrites;
    Counter &statHits;
    Counter &statMisses;
    Counter &statWriteBacks;
    Counter &statFills;
    Counter &statFlushPresent;
    Counter &statFlushAbsent;
    Counter &statPurgePresent;
    Counter &statPurgeAbsent;
    Counter &statFlushCycles; ///< cycles spent in flush operations
    Counter &statPurgeCycles; ///< cycles spent in purge operations
    Counter *statSynonymSnoops = nullptr;      ///< lazily registered
    Counter *statSynonymSnoopCycles = nullptr; ///< lazily registered

    std::uint64_t
    indexBits(VirtAddr va, PhysAddr pa) const
    {
        return geo.indexing() == Indexing::Virtual ? va.value : pa.value;
    }
    std::uint32_t lineId(std::uint32_t set, std::uint32_t way) const
    { return set * geo.associativity() + way; }
    std::uint32_t *lineData(std::uint32_t line_id)
    { return data.data() + std::uint64_t(line_id) * geo.wordsPerLine(); }
    const std::uint32_t *lineData(std::uint32_t line_id) const
    { return data.data() + std::uint64_t(line_id) * geo.wordsPerLine(); }

    bool lineValid(std::uint32_t id) const
    { return lineState[id] != MesiState::Invalid; }
    bool lineDirty(std::uint32_t id) const
    { return lineState[id] == MesiState::Modified; }

    /**
     * Find a valid way in @p set whose tag covers @p pa.
     * @return way index or -1.
     *
     * Branchless probe over the set's way-vector: every way's
     * (valid, tag-equal) conjunction is computed with data-dependent
     * arithmetic only, and since at most one way can match (fills
     * only happen after a failed probe) OR-ing way+1 under the match
     * mask yields the unique hit with no early-exit branch for the
     * predictor to miss.
     */
    int
    findWay(std::uint32_t set, PhysAddr pa) const
    {
        const std::uint64_t tag = pa.value / geo.lineBytes();
        const std::uint32_t ways = geo.associativity();
        const std::uint32_t base = set * ways;
        std::uint32_t hit = 0;
        for (std::uint32_t w = 0; w < ways; ++w) {
            const std::uint32_t id = base + w;
            const bool match =
                (lineState[id] != MesiState::Invalid) &
                (lineTag[id] == tag);
            hit |= match * (w + 1);
        }
        return static_cast<int>(hit) - 1;
    }

    /** Choose a victim way in @p set (invalid first, else LRU). */
    std::uint32_t victimWay(std::uint32_t set) const;

    /** Write line @p line_id back to memory (Modified -> Exclusive). */
    void writeBack(std::uint32_t line_id);

    /**
     * Fill line @p line_id from memory for @p pa's line. On a bus this
     * is a bus-read (@p for_write false: fills Shared or Exclusive by
     * the peers' reply) or a bus-read-exclusive (@p for_write true:
     * peers invalidate, fills Exclusive); with synonym coherence the
     * cache's other candidate sets are self-snooped first.
     */
    void fill(std::uint32_t line_id, PhysAddr pa, bool for_write);

    /** Displace any other copy of @p pa_line held under a different
     *  colour (reverse-lookup synonym snoop); @p keep_id is the line
     *  being filled. */
    void selfSnoopSynonyms(std::uint32_t keep_id, PhysAddr pa_line);

    /** Shared flush/purge implementation. */
    bool removeLine(VirtAddr va, PhysAddr pa, bool write_back);

    /**
     * Visit every set that could hold the line at physical address
     * @p pa_line. A virtual index shares the page-offset bits with
     * the physical address, so only the colour bits are unknown —
     * one candidate set per span colour instead of a full scan.
     */
    template <typename Fn>
    void
    forEachCandidateSet(PhysAddr pa_line, Fn &&fn) const
    {
        const std::uint32_t lines_per_page = geo.linesPerPage();
        const std::uint32_t off_line = static_cast<std::uint32_t>(
            (pa_line.value % geo.pageBytes()) / geo.lineBytes());
        const std::uint32_t span = geo.spanColours();
        for (std::uint32_t c = 0; c < span; ++c) {
            const std::uint32_t set =
                (c * lines_per_page + off_line) & (geo.numSets() - 1);
            fn(set);
        }
    }
};

} // namespace vic

#endif // VIC_CACHE_CACHE_HH
