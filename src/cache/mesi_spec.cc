#include "cache/mesi_spec.hh"

#include "common/logging.hh"

namespace vic
{

const char *
mesiLocalEventName(MesiLocalEvent e)
{
    switch (e) {
      case MesiLocalEvent::Read: return "read";
      case MesiLocalEvent::Write: return "write";
    }
    vic_panic("invalid MesiLocalEvent %d", static_cast<int>(e));
}

const char *
mesiSnoopEventName(MesiSnoopEvent e)
{
    switch (e) {
      case MesiSnoopEvent::BusRead: return "bus-read";
      case MesiSnoopEvent::BusInvalidate: return "bus-invalidate";
    }
    vic_panic("invalid MesiSnoopEvent %d", static_cast<int>(e));
}

const char *
mesiBusOpName(MesiBusOp op)
{
    switch (op) {
      case MesiBusOp::None: return "";
      case MesiBusOp::BusRead: return "busRead";
      case MesiBusOp::BusReadExclusive: return "busReadExclusive";
      case MesiBusOp::BusUpgrade: return "busUpgrade";
    }
    vic_panic("invalid MesiBusOp %d", static_cast<int>(op));
}

MesiLocalTransition
mesiLocalTransition(MesiState current, MesiLocalEvent e)
{
    using M = MesiState;
    using B = MesiBusOp;
    switch (e) {
      case MesiLocalEvent::Read:
        // A read miss fills through a busRead: Exclusive when no
        // peer held the line, Shared when one did (the peer
        // simultaneously downgrades — its row is in the snoop
        // table). Hits stay put in every valid state.
        switch (current) {
          case M::Invalid: return {M::Exclusive, M::Shared,
                                   B::BusRead};
          case M::Shared: return {M::Shared, M::Shared, B::None};
          case M::Exclusive: return {M::Exclusive, M::Exclusive,
                                     B::None};
          case M::Modified: return {M::Modified, M::Modified,
                                    B::None};
        }
        break;

      case MesiLocalEvent::Write:
        // Every write ends Modified; what varies is the bus work to
        // get exclusivity. A miss fills through busReadExclusive, a
        // Shared hit broadcasts a busUpgrade so peers invalidate,
        // and an Exclusive hit upgrades silently — the E state's
        // whole reason to exist.
        switch (current) {
          case M::Invalid: return {M::Modified, M::Modified,
                                   B::BusReadExclusive};
          case M::Shared: return {M::Modified, M::Modified,
                                  B::BusUpgrade};
          case M::Exclusive: return {M::Modified, M::Modified,
                                     B::None};
          case M::Modified: return {M::Modified, M::Modified,
                                    B::None};
        }
        break;
    }
    vic_panic("invalid (state=%d, event=%d)",
              static_cast<int>(current), static_cast<int>(e));
}

MesiSnoopTransition
mesiSnoopTransition(MesiState current, MesiSnoopEvent e)
{
    using M = MesiState;
    switch (e) {
      case MesiSnoopEvent::BusRead:
        // A peer wants to read: copies survive but demote to Shared;
        // a Modified copy intervenes (writes back) first so memory
        // is current for the peer's fill.
        switch (current) {
          case M::Invalid: return {M::Invalid, false};
          case M::Shared: return {M::Shared, false};
          case M::Exclusive: return {M::Shared, false};
          case M::Modified: return {M::Shared, true};
        }
        break;

      case MesiSnoopEvent::BusInvalidate:
        // A peer wants exclusivity: every copy dies; only a Modified
        // copy has data memory lacks, so only it writes back.
        switch (current) {
          case M::Invalid: return {M::Invalid, false};
          case M::Shared: return {M::Invalid, false};
          case M::Exclusive: return {M::Invalid, false};
          case M::Modified: return {M::Invalid, true};
        }
        break;
    }
    vic_panic("invalid (state=%d, event=%d)",
              static_cast<int>(current), static_cast<int>(e));
}

} // namespace vic
