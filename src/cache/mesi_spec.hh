/**
 * @file
 * Executable specification of the MESI protocol the CoherenceBus and
 * Cache implement, as pure transition tables.
 *
 * cache.cc realises the protocol imperatively across access(),
 * fillLine() and the snoop handlers; these functions state it
 * declaratively, one (state, event) entry at a time, in the same
 * style as core/cache_page_state.hh states Table 2. They are the
 * protocol's source of truth for checking:
 *
 *  - tests/lint_test.cc drives a two-port bus machine through every
 *    local/snoop transition and requires the concrete line states to
 *    match these tables (conformance);
 *  - the vic_lint spec-table pass parses this file's switches,
 *    verifies every (state, event) pair is covered, every state
 *    reachable from Invalid, the write-back/bus-op structure
 *    internally consistent, and the parsed entries bit-for-bit equal
 *    to these compiled functions (so the documented table can never
 *    drift from the binary).
 *
 * Two tables:
 *  - LOCAL: the requesting cache's own transition for a CPU read or
 *    write, including which bus transaction it must issue and the
 *    fill state (Shared iff a peer held the line, Exclusive
 *    otherwise — the nextIfPeerHolds column);
 *  - SNOOP: a peer cache's reaction to a bus transaction, including
 *    whether it must intervene with a write-back (only ever from
 *    Modified — memory is current in every other state).
 */

#ifndef VIC_CACHE_MESI_SPEC_HH
#define VIC_CACHE_MESI_SPEC_HH

#include <array>
#include <cstdint>

#include "cache/cache.hh"

namespace vic
{

/** CPU-side events at the requesting cache. */
enum class MesiLocalEvent : std::uint8_t
{
    Read,   ///< load or instruction fetch
    Write,  ///< store
};

/** Bus-side events observed by a snooping peer. */
enum class MesiSnoopEvent : std::uint8_t
{
    BusRead,        ///< a peer's read miss
    BusInvalidate,  ///< a peer's busReadExclusive or busUpgrade
};

/** Bus transaction a local event must issue. */
enum class MesiBusOp : std::uint8_t
{
    None,              ///< satisfied locally (hit, or no bus)
    BusRead,           ///< read miss fill
    BusReadExclusive,  ///< write miss fill
    BusUpgrade,        ///< write hit on a Shared copy
};

/** All states/events, for exhaustive iteration in tests. */
inline constexpr std::array<MesiState, 4> allMesiStates = {
    MesiState::Invalid, MesiState::Shared, MesiState::Exclusive,
    MesiState::Modified,
};
inline constexpr std::array<MesiLocalEvent, 2> allMesiLocalEvents = {
    MesiLocalEvent::Read, MesiLocalEvent::Write,
};
inline constexpr std::array<MesiSnoopEvent, 2> allMesiSnoopEvents = {
    MesiSnoopEvent::BusRead, MesiSnoopEvent::BusInvalidate,
};

const char *mesiLocalEventName(MesiLocalEvent e);
const char *mesiSnoopEventName(MesiSnoopEvent e);
const char *mesiBusOpName(MesiBusOp op);

struct MesiLocalTransition
{
    MesiState next;             ///< when no peer holds the line
    MesiState nextIfPeerHolds;  ///< when some peer holds a copy
    MesiBusOp bus = MesiBusOp::None;

    bool operator==(const MesiLocalTransition &) const = default;
};

struct MesiSnoopTransition
{
    MesiState next;
    bool writeBack = false;  ///< peer intervenes with its dirty copy

    bool operator==(const MesiSnoopTransition &) const = default;
};

/** The LOCAL table: requesting cache's transition for a CPU event. */
MesiLocalTransition mesiLocalTransition(MesiState current,
                                        MesiLocalEvent e);

/** The SNOOP table: a peer cache's reaction to a bus transaction. */
MesiSnoopTransition mesiSnoopTransition(MesiState current,
                                        MesiSnoopEvent e);

} // namespace vic

#endif // VIC_CACHE_MESI_SPEC_HH
