#include "mem/physical_memory.hh"

#include "common/logging.hh"

namespace vic
{

PhysicalMemory::PhysicalMemory(std::uint64_t num_frames,
                               std::uint32_t page_size)
    : frames(num_frames), pageBytes(page_size)
{
    vic_assert(page_size >= 4 && page_size % 4 == 0,
               "page size %u not a multiple of 4", page_size);
    store.assign(frames * (pageBytes / 4), 0);
}

std::uint64_t
PhysicalMemory::wordIndex(PhysAddr pa) const
{
    vic_assert(pa.value % 4 == 0, "unaligned physical word access %llx",
               (unsigned long long)pa.value);
    std::uint64_t idx = pa.value / 4;
    vic_assert(idx < store.size(), "physical address %llx out of range",
               (unsigned long long)pa.value);
    return idx;
}

std::uint32_t
PhysicalMemory::readWord(PhysAddr pa) const
{
    return store[wordIndex(pa)];
}

void
PhysicalMemory::writeWord(PhysAddr pa, std::uint32_t value)
{
    store[wordIndex(pa)] = value;
}

void
PhysicalMemory::readWords(PhysAddr pa, std::uint32_t *out,
                          std::uint32_t nwords) const
{
    std::uint64_t idx = wordIndex(pa);
    vic_assert(idx + nwords <= store.size(),
               "physical range %llx+%u out of range",
               (unsigned long long)pa.value, nwords * 4);
    for (std::uint32_t i = 0; i < nwords; ++i)
        out[i] = store[idx + i];
}

void
PhysicalMemory::writeWords(PhysAddr pa, const std::uint32_t *in,
                           std::uint32_t nwords)
{
    std::uint64_t idx = wordIndex(pa);
    vic_assert(idx + nwords <= store.size(),
               "physical range %llx+%u out of range",
               (unsigned long long)pa.value, nwords * 4);
    for (std::uint32_t i = 0; i < nwords; ++i)
        store[idx + i] = in[i];
}

} // namespace vic
