/**
 * @file
 * Simulated physical memory.
 *
 * A flat, word-addressable (32-bit words) store divided into page
 * frames. The cache simulator fills and writes back lines against this
 * store; the DMA engine reads and writes it directly, bypassing the
 * caches — exactly the paper's machine model, where devices do not
 * snoop. Storing real data (not just metadata) is what lets an
 * incorrectly managed cache actually return stale values, which the
 * consistency oracle then detects.
 */

#ifndef VIC_MEM_PHYSICAL_MEMORY_HH
#define VIC_MEM_PHYSICAL_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace vic
{

class PhysicalMemory
{
  public:
    /** Construct @p num_frames frames of @p page_size bytes each.
     *  @p page_size must be a multiple of 4. */
    PhysicalMemory(std::uint64_t num_frames, std::uint32_t page_size);

    std::uint64_t numFrames() const { return frames; }
    std::uint32_t pageSize() const { return pageBytes; }
    std::uint64_t sizeBytes() const { return frames * pageBytes; }

    /** Frame containing physical address @p pa. */
    FrameId frameOf(PhysAddr pa) const { return pa.value / pageBytes; }

    /** First physical address of frame @p frame. */
    PhysAddr baseOf(FrameId frame) const
    { return PhysAddr(frame * pageBytes); }

    /** Read the aligned 32-bit word at @p pa. */
    std::uint32_t readWord(PhysAddr pa) const;

    /** Write the aligned 32-bit word at @p pa. */
    void writeWord(PhysAddr pa, std::uint32_t value);

    /** Copy @p nwords words starting at @p pa into @p out (cache line
     *  fill). @p pa must be word aligned. */
    void readWords(PhysAddr pa, std::uint32_t *out,
                   std::uint32_t nwords) const;

    /** Copy @p nwords words from @p in to @p pa (cache line
     *  write-back or DMA input). */
    void writeWords(PhysAddr pa, const std::uint32_t *in,
                    std::uint32_t nwords);

  private:
    std::uint64_t frames;
    std::uint32_t pageBytes;
    std::vector<std::uint32_t> store;

    std::uint64_t wordIndex(PhysAddr pa) const;
};

} // namespace vic

#endif // VIC_MEM_PHYSICAL_MEMORY_HH
