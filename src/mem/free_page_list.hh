/**
 * @file
 * Kernel free page list.
 *
 * Section 5.1 observes that about 80% of all page purges under the best
 * configuration come from new mappings that receive "a random physical
 * page from the kernel's free page list", and suggests that "some of
 * these purges could be eliminated by reducing the associativity of
 * virtual to physical mappings through the use of multiple free page
 * lists". This class implements both organisations:
 *
 *  - Single: one FIFO of frames; the colour at which a frame was last
 *    cached is uncorrelated with the colour of its next mapping, so
 *    nearly every reuse needs consistency work.
 *  - PerColour: one FIFO per cache colour, keyed by the colour the
 *    frame's data last occupied. An allocation that states its intended
 *    colour receives, when possible, a frame whose stale/dirty cache
 *    footprint already aligns — eliminating the purge (ablation A2).
 *
 * Storage is a flat per-frame node pool threaded into intrusive FIFOs
 * (head/tail indices per list) instead of one std::deque per list:
 * free/allocate touch a single pool slot, no host allocation happens
 * after the pool reaches the machine's frame count, and the node
 * doubles as a double-free guard (a frame can be on at most one list).
 * FIFO order is exactly the deque's push_back/pop_front order.
 */

#ifndef VIC_MEM_FREE_PAGE_LIST_HH
#define VIC_MEM_FREE_PAGE_LIST_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace vic
{

class FreePageList
{
  public:
    enum class Organisation
    {
        Single,    ///< one global FIFO (the paper's measured system)
        PerColour, ///< one FIFO per cache colour (the paper's suggestion)
    };

    /** @param organisation list structure
     *  @param num_colours  number of cache pages in the data cache */
    FreePageList(Organisation organisation, std::uint32_t num_colours);

    /** Add frame @p frame, whose contents were last cached at
     *  @p last_colour (nullopt if the frame has never been mapped or is
     *  known clean everywhere). */
    void free(FrameId frame, std::optional<CachePageId> last_colour);

    /** Allocate a frame, preferring one whose last colour equals
     *  @p wanted_colour. Returns nullopt if the list is empty.
     *  The second member of the result reports the frame's last colour
     *  so the caller can decide whether consistency work is needed. */
    struct Allocation
    {
        FrameId frame;
        std::optional<CachePageId> lastColour;
    };
    std::optional<Allocation> allocate(
        std::optional<CachePageId> wanted_colour);

    /** Total frames currently free. */
    std::uint64_t size() const { return total; }

    bool empty() const { return total == 0; }

    /** Number of allocations that hit their preferred colour. */
    std::uint64_t colourHits() const { return hits; }

    /** Number of allocations that missed their preferred colour. */
    std::uint64_t colourMisses() const { return misses; }

  private:
    static constexpr std::uint64_t kNil = ~std::uint64_t(0);

    /** One slot per frame id; a frame is on at most one FIFO. */
    struct Node
    {
        std::uint64_t next = kNil;
        std::optional<CachePageId> lastColour;
        bool queued = false;
    };

    /** Intrusive FIFO: indices into the pool. */
    struct Fifo
    {
        std::uint64_t head = kNil;
        std::uint64_t tail = kNil;
    };

    Organisation org;
    std::uint32_t colours;
    std::uint64_t total = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    /** Single organisation uses lists[0]; PerColour uses one list per
     *  colour plus a final list for colourless frames. */
    std::vector<Fifo> lists;

    /** Flat pool indexed by FrameId, grown lazily to the largest frame
     *  ever freed. */
    std::vector<Node> pool;

    std::optional<Allocation> popFrom(std::size_t idx);
};

} // namespace vic

#endif // VIC_MEM_FREE_PAGE_LIST_HH
