#include "mem/free_page_list.hh"

#include "common/logging.hh"

namespace vic
{

FreePageList::FreePageList(Organisation organisation,
                           std::uint32_t num_colours)
    : org(organisation), colours(num_colours)
{
    vic_assert(num_colours > 0, "free page list needs >= 1 colour");
    if (org == Organisation::Single)
        lists.resize(1);
    else
        lists.resize(colours + 1); // +1 for colourless frames
}

void
FreePageList::free(FrameId frame, std::optional<CachePageId> last_colour)
{
    std::size_t idx = 0;
    if (org == Organisation::PerColour) {
        if (last_colour) {
            vic_assert(*last_colour < colours, "colour %u out of range",
                       *last_colour);
            idx = *last_colour;
        } else {
            idx = colours;
        }
    }
    lists[idx].push_back(Entry{frame, last_colour});
    ++total;
}

std::optional<FreePageList::Allocation>
FreePageList::popFrom(std::size_t idx)
{
    if (lists[idx].empty())
        return std::nullopt;
    Entry e = lists[idx].front();
    lists[idx].pop_front();
    --total;
    return Allocation{e.frame, e.lastColour};
}

std::optional<FreePageList::Allocation>
FreePageList::allocate(std::optional<CachePageId> wanted_colour)
{
    if (total == 0)
        return std::nullopt;

    if (org == Organisation::Single) {
        auto alloc = popFrom(0);
        if (wanted_colour && alloc) {
            if (alloc->lastColour && *alloc->lastColour == *wanted_colour)
                ++hits;
            else
                ++misses;
        }
        return alloc;
    }

    // PerColour: try the wanted colour first, then colourless frames,
    // then steal round-robin from whichever colour has frames.
    if (wanted_colour) {
        vic_assert(*wanted_colour < colours, "colour %u out of range",
                   *wanted_colour);
        if (auto alloc = popFrom(*wanted_colour)) {
            ++hits;
            return alloc;
        }
        if (auto alloc = popFrom(colours)) {
            ++hits; // colourless frames have no stale footprint anywhere
            return alloc;
        }
    } else {
        if (auto alloc = popFrom(colours))
            return alloc;
    }

    for (std::size_t i = 0; i < lists.size(); ++i) {
        if (auto alloc = popFrom(i)) {
            if (wanted_colour)
                ++misses;
            return alloc;
        }
    }
    vic_panic("free page list total %llu but all lists empty",
              (unsigned long long)total);
}

} // namespace vic
