#include "mem/free_page_list.hh"

#include "common/logging.hh"

namespace vic
{

FreePageList::FreePageList(Organisation organisation,
                           std::uint32_t num_colours)
    : org(organisation), colours(num_colours)
{
    vic_assert(num_colours > 0, "free page list needs >= 1 colour");
    if (org == Organisation::Single)
        lists.resize(1);
    else
        lists.resize(colours + 1); // +1 for colourless frames
}

void
FreePageList::free(FrameId frame, std::optional<CachePageId> last_colour)
{
    std::size_t idx = 0;
    if (org == Organisation::PerColour) {
        if (last_colour) {
            vic_assert(*last_colour < colours, "colour %u out of range",
                       *last_colour);
            idx = *last_colour;
        } else {
            idx = colours;
        }
    }
    if (frame >= pool.size())
        pool.resize(frame + 1);
    Node &n = pool[frame];
    vic_assert(!n.queued, "double free of frame %llu",
               (unsigned long long)frame);
    n.next = kNil;
    n.lastColour = last_colour;
    n.queued = true;
    Fifo &f = lists[idx];
    if (f.tail == kNil)
        f.head = frame;
    else
        pool[f.tail].next = frame;
    f.tail = frame;
    ++total;
}

std::optional<FreePageList::Allocation>
FreePageList::popFrom(std::size_t idx)
{
    Fifo &f = lists[idx];
    if (f.head == kNil)
        return std::nullopt;
    const std::uint64_t frame = f.head;
    Node &n = pool[frame];
    f.head = n.next;
    if (f.head == kNil)
        f.tail = kNil;
    n.next = kNil;
    n.queued = false;
    --total;
    return Allocation{FrameId(frame), n.lastColour};
}

std::optional<FreePageList::Allocation>
FreePageList::allocate(std::optional<CachePageId> wanted_colour)
{
    if (total == 0)
        return std::nullopt;

    if (org == Organisation::Single) {
        auto alloc = popFrom(0);
        if (wanted_colour && alloc) {
            if (alloc->lastColour && *alloc->lastColour == *wanted_colour)
                ++hits;
            else
                ++misses;
        }
        return alloc;
    }

    // PerColour: try the wanted colour first, then colourless frames,
    // then steal round-robin from whichever colour has frames.
    if (wanted_colour) {
        vic_assert(*wanted_colour < colours, "colour %u out of range",
                   *wanted_colour);
        if (auto alloc = popFrom(*wanted_colour)) {
            ++hits;
            return alloc;
        }
        if (auto alloc = popFrom(colours)) {
            ++hits; // colourless frames have no stale footprint anywhere
            return alloc;
        }
    } else {
        if (auto alloc = popFrom(colours))
            return alloc;
    }

    for (std::size_t i = 0; i < lists.size(); ++i) {
        if (auto alloc = popFrom(i)) {
            if (wanted_colour)
                ++misses;
            return alloc;
        }
    }
    vic_panic("free page list total %llu but all lists empty",
              (unsigned long long)total);
}

} // namespace vic
