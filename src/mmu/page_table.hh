/**
 * @file
 * Simulated page table.
 *
 * Maps (space, virtual page) to (physical frame, protection, referenced
 * / modified bits). This is the hardware-facing translation structure
 * that the pmap layer programs; the paper's second hardware requirement
 * — "reads and writes to individual virtual memory pages can be caught
 * by the operating system kernel" — is met by the protection field,
 * which the CacheControl algorithm downgrades to intercept accesses
 * that need consistency state transitions.
 *
 * The hardware-maintained modified bit supports the paper's
 * optimisation of setting P[p].cache_dirty from the page-modified bit
 * when exactly one cache page is mapped (Section 4.1), avoiding a
 * write-protection fault per page.
 */

#ifndef VIC_MMU_PAGE_TABLE_HH
#define VIC_MMU_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace vic
{

struct PageTableEntry
{
    FrameId frame = 0;
    Protection prot;
    bool referenced = false;
    bool modified = false;
};

class PageTable
{
  public:
    /** @param page_bytes virtual page size in bytes (power of two). */
    explicit PageTable(std::uint32_t page_bytes);

    std::uint32_t pageBytes() const { return pageSize; }

    /** Truncate @p va to its page base. */
    VirtAddr pageBase(VirtAddr va) const
    { return VirtAddr(va.value & ~std::uint64_t(pageSize - 1)); }

    /** Install (or replace) the translation for the page containing
     *  @p key.va. */
    void enter(SpaceVa key, FrameId frame, Protection prot);

    /** Remove the translation; no-op if absent.
     *  @return the removed entry's modified bit. */
    bool remove(SpaceVa key);

    /** Change the protection of an existing entry. */
    void setProtection(SpaceVa key, Protection prot);

    /** Look up the entry for the page containing @p key.va.
     *  @return nullptr if unmapped. */
    const PageTableEntry *lookup(SpaceVa key) const;

    /** Mutable lookup for reference/modified bit updates. */
    PageTableEntry *lookupMutable(SpaceVa key);

    /** Clear the modified bit; @return its previous value. */
    bool clearModified(SpaceVa key);

    /** Number of live entries (for tests). */
    std::size_t size() const { return entries.size(); }

    /**
     * Total page-table walks served (lookup + lookupMutable calls) —
     * hardware refill walks on TLB miss plus the OS's software walks.
     * Tests use the delta across an access to prove the pipeline does
     * at most one walk per access (and zero on a TLB hit). Deliberately
     * a plain member rather than a StatSet counter: StatSet snapshots
     * reach the JSON artifacts, and the artifact byte-equivalence
     * contract predates this counter.
     */
    std::uint64_t walkCount() const { return walks; }

  private:
    std::uint32_t pageSize;
    std::unordered_map<SpaceVa, PageTableEntry> entries;
    mutable std::uint64_t walks = 0;

    SpaceVa canonical(SpaceVa key) const
    { return SpaceVa(key.space, pageBase(key.va)); }
};

} // namespace vic

#endif // VIC_MMU_PAGE_TABLE_HH
