/**
 * @file
 * Simulated page table.
 *
 * Maps (space, virtual page) to (physical frame, protection, referenced
 * / modified bits). This is the hardware-facing translation structure
 * that the pmap layer programs; the paper's second hardware requirement
 * — "reads and writes to individual virtual memory pages can be caught
 * by the operating system kernel" — is met by the protection field,
 * which the CacheControl algorithm downgrades to intercept accesses
 * that need consistency state transitions.
 *
 * The hardware-maintained modified bit supports the paper's
 * optimisation of setting P[p].cache_dirty from the page-modified bit
 * when exactly one cache page is mapped (Section 4.1), avoiding a
 * write-protection fault per page.
 *
 * Storage is a separate-chaining hash over Arena-allocated nodes
 * rather than a node-based standard container: enter/remove recycle
 * arena slots instead of hitting the host allocator, and a translate
 * walk chases chains through chunked contiguous memory. Node pointers
 * are stable for the table's lifetime — rehashing relinks chains but
 * never moves a node — which preserves the contract the TLB relies on:
 * cached PageTableEntry handles stay valid until an explicit remove,
 * and enter() on an already-mapped page assigns in place. The bucket
 * index is derived from a fixed multiplicative mix of the key (never
 * std::hash, never pointer values), so chain order — and therefore
 * behaviour — is identical on every host.
 */

#ifndef VIC_MMU_PAGE_TABLE_HH
#define VIC_MMU_PAGE_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "common/types.hh"

namespace vic
{

struct PageTableEntry
{
    FrameId frame = 0;
    Protection prot;
    bool referenced = false;
    bool modified = false;
};

class PageTable
{
  public:
    /** @param page_bytes virtual page size in bytes (power of two). */
    explicit PageTable(std::uint32_t page_bytes);

    std::uint32_t pageBytes() const { return pageSize; }

    /** Truncate @p va to its page base. */
    VirtAddr pageBase(VirtAddr va) const
    { return VirtAddr(va.value & ~std::uint64_t(pageSize - 1)); }

    /** Install (or replace) the translation for the page containing
     *  @p key.va. Replacement assigns in place — the entry's address
     *  does not change. */
    void enter(SpaceVa key, FrameId frame, Protection prot);

    /** Remove the translation; no-op if absent.
     *  @return the removed entry's modified bit. */
    bool remove(SpaceVa key);

    /** Change the protection of an existing entry. */
    void setProtection(SpaceVa key, Protection prot);

    /** Look up the entry for the page containing @p key.va.
     *  @return nullptr if unmapped. */
    const PageTableEntry *lookup(SpaceVa key) const;

    /** Mutable lookup for reference/modified bit updates. */
    PageTableEntry *lookupMutable(SpaceVa key);

    /** Clear the modified bit; @return its previous value. */
    bool clearModified(SpaceVa key);

    /** Number of live entries (for tests). */
    std::size_t size() const { return live; }

    /**
     * Total page-table walks served (lookup + lookupMutable calls) —
     * hardware refill walks on TLB miss plus the OS's software walks.
     * Tests use the delta across an access to prove the pipeline does
     * at most one walk per access (and zero on a TLB hit). Deliberately
     * a plain member rather than a StatSet counter: StatSet snapshots
     * reach the JSON artifacts, and the artifact byte-equivalence
     * contract predates this counter.
     */
    std::uint64_t walkCount() const { return walks; }

  private:
    struct Node
    {
        SpaceVa key;
        PageTableEntry pte;
        Node *next = nullptr;
    };

    std::uint32_t pageSize;
    std::size_t live = 0;
    std::vector<Node *> buckets;
    Arena<Node> nodes;
    mutable std::uint64_t walks = 0;

    SpaceVa canonical(SpaceVa key) const
    { return SpaceVa(key.space, pageBase(key.va)); }

    /** Fixed multiplicative mix (splitmix64 finaliser) of the
     *  canonical key — host-independent by construction. */
    static std::uint64_t
    mix(SpaceVa key)
    {
        std::uint64_t x =
            (std::uint64_t(key.space) << 48) ^ key.va.value;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }

    std::size_t bucketOf(SpaceVa key) const
    { return mix(key) & (buckets.size() - 1); }

    Node *findNode(SpaceVa canon) const;
    void grow();
};

} // namespace vic

#endif // VIC_MMU_PAGE_TABLE_HH
