#include "mmu/page_table.hh"

#include <bit>

#include "common/logging.hh"

namespace vic
{

PageTable::PageTable(std::uint32_t page_bytes)
    : pageSize(page_bytes), buckets(64, nullptr)
{
    vic_assert(std::has_single_bit(page_bytes),
               "page size %u not a power of two", page_bytes);
}

PageTable::Node *
PageTable::findNode(SpaceVa canon) const
{
    for (Node *n = buckets[bucketOf(canon)]; n != nullptr; n = n->next) {
        if (n->key == canon)
            return n;
    }
    return nullptr;
}

void
PageTable::grow()
{
    // Double the bucket array and relink every node. Nodes themselves
    // never move, so live PageTableEntry pointers survive the rehash.
    std::vector<Node *> old = std::move(buckets);
    buckets.assign(old.size() * 2, nullptr);
    for (Node *n : old) {
        while (n != nullptr) {
            Node *next = n->next;
            Node *&head = buckets[bucketOf(n->key)];
            n->next = head;
            head = n;
            n = next;
        }
    }
}

void
PageTable::enter(SpaceVa key, FrameId frame, Protection prot)
{
    const SpaceVa canon = canonical(key);
    if (Node *n = findNode(canon)) {
        n->pte = PageTableEntry{frame, prot, false, false};
        return;
    }
    if (live + 1 > buckets.size())
        grow();
    Node *n = nodes.alloc();
    n->key = canon;
    n->pte = PageTableEntry{frame, prot, false, false};
    Node *&head = buckets[bucketOf(canon)];
    n->next = head;
    head = n;
    ++live;
}

bool
PageTable::remove(SpaceVa key)
{
    const SpaceVa canon = canonical(key);
    Node **link = &buckets[bucketOf(canon)];
    while (*link != nullptr) {
        Node *n = *link;
        if (n->key == canon) {
            const bool modified = n->pte.modified;
            *link = n->next;
            nodes.release(n);
            --live;
            return modified;
        }
        link = &n->next;
    }
    return false;
}

void
PageTable::setProtection(SpaceVa key, Protection prot)
{
    Node *n = findNode(canonical(key));
    vic_assert(n != nullptr,
               "setProtection on unmapped page space=%u va=%llx",
               key.space, (unsigned long long)key.va.value);
    n->pte.prot = prot;
}

const PageTableEntry *
PageTable::lookup(SpaceVa key) const
{
    ++walks;
    const Node *n = findNode(canonical(key));
    return n == nullptr ? nullptr : &n->pte;
}

PageTableEntry *
PageTable::lookupMutable(SpaceVa key)
{
    ++walks;
    Node *n = findNode(canonical(key));
    return n == nullptr ? nullptr : &n->pte;
}

bool
PageTable::clearModified(SpaceVa key)
{
    Node *n = findNode(canonical(key));
    if (n == nullptr)
        return false;
    const bool was = n->pte.modified;
    n->pte.modified = false;
    return was;
}

} // namespace vic
