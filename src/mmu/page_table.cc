#include "mmu/page_table.hh"

#include <bit>

#include "common/logging.hh"

namespace vic
{

PageTable::PageTable(std::uint32_t page_bytes) : pageSize(page_bytes)
{
    vic_assert(std::has_single_bit(page_bytes),
               "page size %u not a power of two", page_bytes);
}

void
PageTable::enter(SpaceVa key, FrameId frame, Protection prot)
{
    entries[canonical(key)] = PageTableEntry{frame, prot, false, false};
}

bool
PageTable::remove(SpaceVa key)
{
    auto it = entries.find(canonical(key));
    if (it == entries.end())
        return false;
    bool modified = it->second.modified;
    entries.erase(it);
    return modified;
}

void
PageTable::setProtection(SpaceVa key, Protection prot)
{
    auto it = entries.find(canonical(key));
    vic_assert(it != entries.end(),
               "setProtection on unmapped page space=%u va=%llx",
               key.space, (unsigned long long)key.va.value);
    it->second.prot = prot;
}

const PageTableEntry *
PageTable::lookup(SpaceVa key) const
{
    ++walks;
    auto it = entries.find(canonical(key));
    return it == entries.end() ? nullptr : &it->second;
}

PageTableEntry *
PageTable::lookupMutable(SpaceVa key)
{
    ++walks;
    auto it = entries.find(canonical(key));
    return it == entries.end() ? nullptr : &it->second;
}

bool
PageTable::clearModified(SpaceVa key)
{
    auto it = entries.find(canonical(key));
    if (it == entries.end())
        return false;
    bool was = it->second.modified;
    it->second.modified = false;
    return was;
}

} // namespace vic
