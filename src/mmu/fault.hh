/**
 * @file
 * Memory access fault descriptors.
 *
 * The consistency algorithm works by denying access (via page
 * protections) to pages whose cache state would make the access unsafe,
 * and fixing things up in the fault handler (Section 4). These types
 * describe the trap the simulated MMU delivers to the operating-system
 * layer.
 */

#ifndef VIC_MMU_FAULT_HH
#define VIC_MMU_FAULT_HH

#include <cstdint>

#include "common/types.hh"

namespace vic
{

/** Kind of access that faulted. */
enum class AccessType : std::uint8_t
{
    Load,
    Store,
    IFetch,
};

/** Human-readable name of an AccessType. */
constexpr const char *
accessTypeName(AccessType t)
{
    switch (t) {
      case AccessType::Load: return "load";
      case AccessType::Store: return "store";
      case AccessType::IFetch: return "ifetch";
    }
    return "?";
}

/** @return true iff @p t writes to memory. */
constexpr bool
isWrite(AccessType t)
{
    return t == AccessType::Store;
}

/** @return true iff @p prot permits an access of type @p t. */
constexpr bool
protPermits(Protection prot, AccessType t)
{
    switch (t) {
      case AccessType::Load: return prot.read;
      case AccessType::Store: return prot.write;
      case AccessType::IFetch: return prot.execute;
    }
    return false;
}

/** Which cache an access type goes through. */
constexpr CacheKind
cacheKindOf(AccessType t)
{
    return t == AccessType::IFetch ? CacheKind::Instruction
                                   : CacheKind::Data;
}

/** Why an access trapped. */
enum class FaultType : std::uint8_t
{
    None,
    Unmapped,    ///< no page-table entry for the page
    Protection,  ///< entry exists but denies this access
};

struct Fault
{
    FaultType type = FaultType::None;
    SpaceVa address;          ///< faulting (space, va)
    AccessType access = AccessType::Load;

    bool isFault() const { return type != FaultType::None; }
};

} // namespace vic

#endif // VIC_MMU_FAULT_HH
