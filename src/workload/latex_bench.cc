#include "workload/latex_bench.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace vic
{

void
LatexBench::run(Kernel &kernel)
{
    Random rng(params.seed);
    const std::uint32_t page = kernel.machine().pageBytes();
    const TaskId task = kernel.createTask();

    // Inputs: the manuscript and font files.
    FileId input = kernel.fileCreate(task, "paper.tex");
    for (std::uint32_t p = 0; p < params.inputPages; ++p) {
        kernel.fileWrite(task, input, std::uint64_t(p) * page, page,
                         static_cast<std::uint32_t>(rng.next64()));
    }
    std::vector<FileId> fonts;
    for (std::uint32_t f = 0; f < params.fontFiles; ++f) {
        FileId id = kernel.fileCreate(task, format("font%u", f));
        kernel.fileWrite(task, id, 0, page,
                         static_cast<std::uint32_t>(rng.next64()));
        fonts.push_back(id);
    }

    // The TeX binary itself: 3 pages of text, re-executed (a fresh
    // process image) for every pass over the manuscript.
    FileId tex = kernel.fileCreate(task, "tex-bin");
    for (std::uint32_t p = 0; p < 3; ++p) {
        kernel.fileWrite(task, tex, std::uint64_t(p) * page, page,
                         0x7e70000u + p);
    }

    // Working set: TeX's token/box memory.
    VirtAddr ws = kernel.vmAllocate(task, params.workingSetPages);

    FileId output = kernel.fileCreate(task, "paper.dvi");
    std::uint64_t out_off = 0;

    for (std::uint32_t pass = 0; pass < params.passes; ++pass) {
        kernel.mapText(task, tex, 3);
        kernel.execText(task, 0, 3);
        for (std::uint32_t p = 0; p < params.inputPages; ++p) {
            kernel.fileRead(task, input, std::uint64_t(p) * page, page);
            if (pass == 0 && p < params.fontFiles)
                kernel.fileRead(task, fonts[p], 0, page);

            // Formatting: chew on the working set.
            for (std::uint32_t w = 0; w < 4; ++w) {
                const std::uint32_t ws_page = static_cast<std::uint32_t>(
                    rng.below(params.workingSetPages));
                kernel.userTouchPage(
                    task, ws.plus(std::uint64_t(ws_page) * page),
                    /*write=*/w % 2 == 1,
                    static_cast<std::uint32_t>(rng.next64()));
            }
            kernel.userCompute(params.computePerPage);

            // Emit a chunk of the formatted page on the final pass.
            if (pass + 1 == params.passes) {
                kernel.fileWrite(task, output, out_off, page / 2,
                                 static_cast<std::uint32_t>(
                                     rng.next64()));
                out_off += page / 2;
            }
        }

        kernel.vmDeallocate(
            task, VirtAddr(kernel.params().taskTextBase));
    }

    kernel.fileSyncAll();
    kernel.vmDeallocate(task, ws);
    kernel.destroyTask(task);
}

} // namespace vic
