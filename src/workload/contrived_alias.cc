#include "workload/contrived_alias.hh"

#include "common/logging.hh"

namespace vic
{

void
ContrivedAlias::run(Kernel &kernel)
{
    const TaskId task = kernel.createTask();
    const std::uint32_t colours =
        kernel.machine().dcache().geometry().numColours();

    // First mapping: anywhere the kernel likes.
    auto obj = std::make_shared<VmObject>(VmObject::anonymous(1));
    const VirtAddr va1 =
        kernel.vmMapShared(task, obj, Protection::readWrite());

    // Second mapping: same colour (aligned) or the worst-case
    // different colour (unaligned).
    AddressSpace &as = kernel.addressSpace(task);
    const CachePageId c1 = kernel.pmap().dColourOf(va1);
    const CachePageId c2 =
        params.aligned ? c1 : (c1 + colours / 2) % colours;
    const VirtAddr fixed = as.allocateVa(1, c2);
    const VirtAddr va2 =
        kernel.vmMapShared(task, obj, Protection::readWrite(), fixed);

    // On a machine with a single cache colour (physically indexed, or
    // span == page size) every pair of addresses aligns and the
    // "unaligned" variant degenerates to the aligned one — which is
    // exactly the point of those architectures.
    vic_assert(kernel.machine().dcache().geometry().aligned(va1, va2) ==
                   (params.aligned || colours == 1),
               "alignment setup failed");

    for (std::uint32_t i = 0; i < params.totalWrites; i += 2) {
        kernel.userStore(task, va1, i);
        if (params.verifyReads)
            kernel.userLoad(task, va2);
        kernel.userStore(task, va2, i + 1);
        if (params.verifyReads)
            kernel.userLoad(task, va1);
    }

    kernel.destroyTask(task);
}

} // namespace vic
