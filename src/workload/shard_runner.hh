/**
 * @file
 * Intra-run sharding: replicas of one workload/policy configuration
 * partitioned across host threads, merged deterministically.
 *
 * The ExperimentEngine already fans out WHOLE runs (--jobs); sharding
 * fans out the replicas INSIDE one run (--shards). Each replica is a
 * fully isolated simulation — its own Machine, ConsistencyOracle,
 * Kernel, Workload, and therefore its own StatSet and CycleClock, so
 * no per-shard synchronisation exists on the simulation hot path. The
 * only shared state is the next-replica atomic and each replica's
 * private result slot, exactly the engine's isolation-by-construction
 * recipe one level down.
 *
 * Determinism: a replica's behaviour depends only on its seed (passed
 * in precomputed — seed derivation lives in the experiment layer and
 * the workload layer must not reach up), and the merge folds results
 * in replica-index order regardless of which host thread finished
 * first. Hence `--shards N` output is byte-identical to `--shards 1`.
 */

#ifndef VIC_WORKLOAD_SHARD_RUNNER_HH
#define VIC_WORKLOAD_SHARD_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "workload/runner.hh"

namespace vic
{

/**
 * Fold per-replica results into one RunResult in the order given
 * (callers pass replica-index order): cycles, seconds, oracle counts
 * and every stat counter are summed; trace tails concatenate.
 * Workload/policy names come from the first result.
 */
RunResult mergeRunResults(const std::vector<RunResult> &parts);

/**
 * Run one replica per seed in @p replica_seeds — each on a fresh
 * workload from @p make, reseeded with its seed — using up to
 * @p shards host threads, and return the deterministic merge.
 * @p shards < 2 (or a single replica) runs serially on the calling
 * thread; the merged result is identical either way.
 */
RunResult runWorkloadSharded(
    const std::function<std::unique_ptr<Workload>()> &make,
    const std::vector<std::uint64_t> &replica_seeds, unsigned shards,
    const PolicyConfig &policy,
    const MachineParams &machine_params = MachineParams::hp720(),
    const OsParams &os_params = {}, std::size_t trace_events = 0);

} // namespace vic

#endif // VIC_WORKLOAD_SHARD_RUNNER_HH
