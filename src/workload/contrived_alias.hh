/**
 * @file
 * The contrived alias microbenchmark of Section 2.5: "A single thread
 * repeatedly wrote one physical address through two virtual
 * addresses. When the virtual addresses were aligned, a loop of
 * 1,000,000 writes completed in a fraction of a second. When
 * unaligned, the loop took over 2 minutes."
 *
 * One task maps a one-page object twice — at aligning or non-aligning
 * addresses — and alternates stores through the two mappings.
 */

#ifndef VIC_WORKLOAD_CONTRIVED_ALIAS_HH
#define VIC_WORKLOAD_CONTRIVED_ALIAS_HH

#include "workload/workload.hh"

namespace vic
{

class ContrivedAlias : public Workload
{
  public:
    struct Params
    {
        bool aligned = false;
        /** Total stores (the paper used 1,000,000; the default is
         *  scaled down so the unaligned run finishes promptly). */
        std::uint32_t totalWrites = 40000;
        /** Also read back through the other alias after every store.
         *  The paper's loop is write-only; the tests enable this so
         *  the consistency oracle can observe stale values. */
        bool verifyReads = false;
    };

    explicit ContrivedAlias(const Params &p) : params(p) {}

    std::string
    name() const override
    {
        return params.aligned ? "contrived-aligned"
                              : "contrived-unaligned";
    }

    void run(Kernel &kernel) override;

  private:
    Params params;
};

} // namespace vic

#endif // VIC_WORKLOAD_CONTRIVED_ALIAS_HH
