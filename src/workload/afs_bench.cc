#include "workload/afs_bench.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace vic
{

void
AfsBench::run(Kernel &kernel)
{
    Random rng(params.seed);
    const std::uint32_t page = kernel.machine().pageBytes();
    const TaskId task = kernel.createTask();

    // The benchmark is a shell script: every phase runs utility
    // programs (cp, ls, make...), whose text is paged in from the
    // file system and executed — the data-space to instruction-space
    // path. Model one 2-page utility executed at each phase start and
    // periodically within the file loops.
    FileId utility = kernel.fileCreate(task, "afs-util");
    for (std::uint32_t p = 0; p < 2; ++p) {
        kernel.fileWrite(task, utility, std::uint64_t(p) * page, page,
                         0x5e110000u + p);
    }
    auto run_utility = [&](TaskId t) {
        kernel.mapText(t, utility, 2);
        kernel.execText(t, 0, 2);
        kernel.vmDeallocate(
            t, VirtAddr(kernel.params().taskTextBase));
    };

    std::vector<FileId> sources;
    std::vector<std::uint32_t> pages_of;

    // Phase 1 — MakeDir/CreateFiles: write the source tree.
    run_utility(task);
    for (std::uint32_t f = 0; f < params.numFiles; ++f) {
        FileId id = kernel.fileCreate(task, format("src%u", f));
        const std::uint32_t n = static_cast<std::uint32_t>(
            rng.between(1, params.maxFilePages));
        for (std::uint32_t p = 0; p < n; ++p) {
            kernel.fileWrite(task, id, std::uint64_t(p) * page, page,
                             static_cast<std::uint32_t>(
                                 rng.next64() & 0xffff));
        }
        sources.push_back(id);
        pages_of.push_back(n);
    }

    // Phase 2 — Copy: read every source, write a duplicate (each cp
    // is a fresh process image).
    for (std::uint32_t f = 0; f < params.numFiles; ++f) {
        if (f % 8 == 0)
            run_utility(task);
        FileId dst = kernel.fileCreate(task, format("copy%u", f));
        for (std::uint32_t p = 0; p < pages_of[f]; ++p) {
            kernel.fileRead(task, sources[f], std::uint64_t(p) * page,
                            page);
            kernel.fileWrite(task, dst, std::uint64_t(p) * page, page,
                             static_cast<std::uint32_t>(
                                 rng.next64() & 0xffff));
        }
    }

    // Phase 3 — ScanDir: stat-like small reads of every file.
    run_utility(task);
    for (std::uint32_t rep = 0; rep < 2; ++rep) {
        for (std::uint32_t f = 0; f < params.numFiles; ++f) {
            FileId id = kernel.fileOpen(task, format("src%u", f));
            kernel.fileRead(task, id, 0, 64);
        }
    }

    run_utility(task);
    // Phase 4 — ReadAll: big sequential reads, some delivered
    // out-of-line by IPC page transfer (the path the kernel's address
    // selection optimises).
    for (std::uint32_t f = 0; f < params.numFiles; ++f) {
        for (std::uint32_t p = 0; p < pages_of[f]; ++p) {
            if (rng.chance(1, 2)) {
                VirtAddr va =
                    kernel.fileReadPageIpc(task, sources[f], p);
                kernel.userTouchPage(task, va, false);
                kernel.vmDeallocate(task, va);
            } else {
                kernel.fileRead(task, sources[f],
                                std::uint64_t(p) * page, page);
            }
        }
    }

    // Phase 5 — Make: read inputs, compute, write outputs, clean up.
    for (std::uint32_t f = 0; f < params.numFiles; ++f) {
        if (f % 8 == 0)
            run_utility(task);
        kernel.fileRead(task, sources[f], 0, page);
        VirtAddr scratch = kernel.vmAllocate(task, 2);
        kernel.userTouchPage(task, scratch, true,
                             static_cast<std::uint32_t>(rng.next64()));
        kernel.userTouchPage(
            task, scratch.plus(page), true,
            static_cast<std::uint32_t>(rng.next64()));
        kernel.userCompute(params.computePerFile);
        FileId out = kernel.fileCreate(task, format("out%u", f));
        kernel.fileWrite(task, out, 0, page,
                         static_cast<std::uint32_t>(rng.next64()));
        kernel.vmDeallocate(task, scratch);
        kernel.fileDelete(task, format("copy%u", f));
    }

    kernel.fileSyncAll();
    kernel.destroyTask(task);
}

} // namespace vic
