#include "workload/shard_runner.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "common/logging.hh"

namespace vic
{

RunResult
mergeRunResults(const std::vector<RunResult> &parts)
{
    vic_assert(!parts.empty(), "merge of zero run results");
    RunResult merged;
    merged.workload = parts.front().workload;
    merged.policy = parts.front().policy;
    for (const RunResult &p : parts) {
        merged.cycles += p.cycles;
        merged.seconds += p.seconds;
        merged.oracleViolations += p.oracleViolations;
        merged.oracleChecked += p.oracleChecked;
        for (const auto &[name, value] : p.stats)
            merged.stats[name] += value;
        merged.traceTail.insert(merged.traceTail.end(),
                                p.traceTail.begin(), p.traceTail.end());
    }
    return merged;
}

RunResult
runWorkloadSharded(
    const std::function<std::unique_ptr<Workload>()> &make,
    const std::vector<std::uint64_t> &replica_seeds, unsigned shards,
    const PolicyConfig &policy, const MachineParams &machine_params,
    const OsParams &os_params, std::size_t trace_events)
{
    vic_assert(static_cast<bool>(make), "sharded run has no factory");
    vic_assert(!replica_seeds.empty(), "sharded run has no replicas");

    const std::size_t replicas = replica_seeds.size();
    std::vector<RunResult> parts(replicas);
    std::vector<std::exception_ptr> errors(replicas);

    const auto run_replica = [&](std::size_t k) {
        try {
            std::unique_ptr<Workload> workload = make();
            workload->reseed(replica_seeds[k]);
            parts[k] = runWorkload(*workload, policy, machine_params,
                                   os_params, trace_events);
        } catch (...) {
            errors[k] = std::current_exception();
        }
    };

    // Rethrown on the calling thread AFTER all replicas settle, always
    // the lowest-index failure — error reporting is as deterministic
    // as the merge.
    const auto rethrow_first = [&] {
        for (const std::exception_ptr &e : errors) {
            if (e)
                std::rethrow_exception(e);
        }
    };

    const unsigned threads =
        shards < 2 || replicas < 2
            ? 1
            : std::min<unsigned>(shards,
                                 static_cast<unsigned>(replicas));

    if (threads == 1) {
        for (std::size_t k = 0; k < replicas; ++k)
            run_replica(k);
        rethrow_first();
        return mergeRunResults(parts);
    }

    // Work-stealing by atomic index; each worker writes only its
    // claimed slot, and the merge below walks slots in replica order,
    // so scheduling cannot reach the merged result.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            while (true) {
                const std::size_t k =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (k >= replicas)
                    return;
                run_replica(k);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    rethrow_first();
    return mergeRunResults(parts);
}

} // namespace vic
