#include "workload/multiprog.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace vic
{

void
MultiProg::run(Kernel &kernel)
{
    Random rng(params.seed);
    const std::uint32_t page = kernel.machine().pageBytes();

    struct Job
    {
        TaskId task;
        FileId input;
        FileId output;
        VirtAddr ws;
        std::uint64_t outOff = 0;
        std::uint32_t quantaDone = 0;
    };

    // A shared "utility" binary every job executes (fresh copy per
    // exec, as the Unix server does).
    const TaskId init = kernel.createTask();
    FileId util = kernel.fileCreate(init, "mp-util");
    kernel.fileWrite(init, util, 0, page, 0x0700d000u);

    std::vector<Job> jobs;
    for (std::uint32_t j = 0; j < params.numJobs; ++j) {
        Job job;
        job.task = kernel.createTask();
        job.input = kernel.fileCreate(job.task, format("mp-in%u", j));
        for (std::uint32_t p = 0; p < params.filePages; ++p) {
            kernel.fileWrite(job.task, job.input,
                             std::uint64_t(p) * page, page,
                             static_cast<std::uint32_t>(rng.next64()));
        }
        job.output = kernel.fileCreate(job.task, format("mp-out%u", j));
        job.ws = kernel.vmAllocate(job.task, params.workingSetPages);
        jobs.push_back(job);
    }

    // Round-robin quanta until every job is done.
    bool work_left = true;
    std::uint32_t turn = 0;
    while (work_left) {
        work_left = false;
        for (Job &job : jobs) {
            if (job.quantaDone >= params.quantaPerJob)
                continue;
            work_left = true;

            // One quantum: read input, mutate the working set,
            // occasionally run the utility, append output.
            kernel.fileRead(job.task, job.input,
                            std::uint64_t(job.quantaDone %
                                          params.filePages) *
                                page,
                            page);
            for (std::uint32_t t = 0; t < 3; ++t) {
                const std::uint32_t p = static_cast<std::uint32_t>(
                    rng.below(params.workingSetPages));
                kernel.userTouchPage(
                    job.task, job.ws.plus(std::uint64_t(p) * page),
                    /*write=*/t % 2 == 0,
                    static_cast<std::uint32_t>(rng.next64()));
            }
            if (turn % 5 == 0) {
                kernel.mapText(job.task, util, 1);
                kernel.execText(job.task, 0, 1);
                kernel.vmDeallocate(
                    job.task, VirtAddr(kernel.params().taskTextBase));
            }
            kernel.userCompute(params.computePerQuantum);
            kernel.fileWrite(job.task, job.output, job.outOff, page / 8,
                             0xab000000u + job.quantaDone);
            job.outOff += page / 8;
            ++job.quantaDone;
            ++turn;
        }
    }

    kernel.fileSyncAll();
    for (Job &job : jobs)
        kernel.destroyTask(job.task);
    kernel.destroyTask(init);
}

} // namespace vic
