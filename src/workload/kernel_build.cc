#include "workload/kernel_build.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace vic
{

void
KernelBuild::run(Kernel &kernel)
{
    Random rng(params.seed);
    const std::uint32_t page = kernel.machine().pageBytes();

    // Setup: a staging task writes the compiler binary, the shared
    // build environment, and all the source files.
    const TaskId setup = kernel.createTask();

    FileId cc = kernel.fileCreate(setup, "cc");
    for (std::uint32_t p = 0; p < params.compilerTextPages; ++p) {
        kernel.fileWrite(setup, cc, std::uint64_t(p) * page, page,
                         0xcc000000u + p);
    }

    VirtAddr env_va = kernel.vmAllocate(setup, params.envPages);
    for (std::uint32_t p = 0; p < params.envPages; ++p) {
        kernel.userTouchPage(setup, env_va.plus(std::uint64_t(p) * page),
                             true, 0xe0000000u + p);
    }
    std::shared_ptr<VmObject> env = kernel.regionObject(setup, env_va);

    std::vector<FileId> sources;
    for (std::uint32_t f = 0; f < params.numSourceFiles; ++f) {
        FileId id = kernel.fileCreate(setup, format("src%u.c", f));
        const std::uint32_t n = static_cast<std::uint32_t>(
            rng.between(1, 2));
        for (std::uint32_t p = 0; p < n; ++p) {
            kernel.fileWrite(setup, id, std::uint64_t(p) * page, page,
                             static_cast<std::uint32_t>(rng.next64()));
        }
        sources.push_back(id);
    }
    kernel.fileSyncAll();

    // The build: one short-lived task per compilation unit.
    for (std::uint32_t f = 0; f < params.numSourceFiles; ++f) {
        const TaskId t = kernel.createTask();

        // Run the compiler: text is shared between tasks; only the
        // first execution of each page pays the buffer-cache to
        // instruction-space copy.
        kernel.mapText(t, cc, params.compilerTextPages);
        kernel.execText(t, 0, params.compilerTextPages);

        // Copy-on-write environment; every task scribbles on it.
        VirtAddr task_env = kernel.vmMapCow(t, env);
        kernel.userLoad(t, task_env);
        kernel.userStore(t, task_env.plus(64),
                         static_cast<std::uint32_t>(rng.next64()));

        // Read the source through the server.
        const std::uint64_t src_bytes =
            kernel.fs().sizeBytes(sources[f]);
        for (std::uint64_t off = 0; off < src_bytes; off += page) {
            kernel.fileRead(t, sources[f], off,
                            static_cast<std::uint32_t>(
                                std::min<std::uint64_t>(
                                    page, src_bytes - off)));
        }

        // Compile: private scratch memory and computation, with more
        // compiler execution interleaved.
        VirtAddr scratch = kernel.vmAllocate(t, params.scratchPages);
        for (std::uint32_t p = 0; p < params.scratchPages; ++p) {
            kernel.userTouchPage(
                t, scratch.plus(std::uint64_t(p) * page), true,
                static_cast<std::uint32_t>(rng.next64()));
        }
        kernel.execText(t, 0, params.compilerTextPages / 2);
        for (std::uint32_t p = 0; p < params.scratchPages; ++p) {
            kernel.userTouchPage(
                t, scratch.plus(std::uint64_t(p) * page), false);
        }
        kernel.userCompute(params.computePerFile);

        // Emit the object file.
        FileId obj = kernel.fileCreate(t, format("src%u.o", f));
        kernel.fileWrite(t, obj, 0, page,
                         static_cast<std::uint32_t>(rng.next64()));

        kernel.destroyTask(t);
    }

    // Link: read every object file, write the kernel image.
    const TaskId linker = kernel.createTask();
    kernel.mapText(linker, cc, params.compilerTextPages);
    kernel.execText(linker, 0, params.compilerTextPages);
    FileId image = kernel.fileCreate(linker, "vmunix");
    std::uint64_t img_off = 0;
    for (std::uint32_t f = 0; f < params.numSourceFiles; ++f) {
        FileId obj = kernel.fileOpen(linker, format("src%u.o", f));
        kernel.fileRead(linker, obj, 0, page);
        kernel.fileWrite(linker, image, img_off, page,
                         static_cast<std::uint32_t>(rng.next64()));
        img_off += page;
    }
    kernel.fileSyncAll();
    kernel.destroyTask(linker);
    kernel.destroyTask(setup);
}

} // namespace vic
