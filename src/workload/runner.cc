#include "workload/runner.hh"

#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"

namespace vic
{

std::uint64_t
RunResult::stat(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? 0 : it->second;
}

namespace
{

bool
matchesPattern(const std::string &name,
               const RunResult::StatPattern &p)
{
    if (!p.exact.empty())
        return name == p.exact;
    if (name.size() < p.prefix.size() + p.suffix.size())
        return false;
    if (name.compare(0, p.prefix.size(), p.prefix) != 0)
        return false;
    return name.compare(name.size() - p.suffix.size(),
                        p.suffix.size(), p.suffix) == 0;
}

} // anonymous namespace

std::uint64_t
RunResult::sumMatching(const std::string &prefix,
                       const std::string &suffix) const
{
    return sumMatchingAny(
        {{.exact = "", .prefix = prefix, .suffix = suffix}});
}

std::uint64_t
RunResult::sumMatchingAny(const std::vector<StatPattern> &patterns) const
{
    // Each counter contributes at most once, no matter how many
    // patterns select it: iterate counters (each name appears exactly
    // once in the map) and test against the pattern list, rather than
    // summing per-pattern.
    std::uint64_t total = 0;
    for (const auto &[name, value] : stats) {
        for (const auto &p : patterns) {
            if (matchesPattern(name, p)) {
                total += value;
                break;
            }
        }
    }
    return total;
}

RunResult
runWorkload(Workload &workload, const PolicyConfig &policy,
            const MachineParams &machine_params,
            const OsParams &os_params, std::size_t trace_events)
{
    Machine machine(machine_params);
    ConsistencyOracle oracle(machine.memory().sizeBytes());
    machine.setObserver(&oracle);
    if (trace_events > 0)
        machine.events().enable(trace_events);
    Kernel kernel(machine, policy, os_params);

    workload.run(kernel);

    // Kernel-held statistics that do not live in the machine's
    // StatSet are exported into it before the snapshot so every
    // metric a bench reads comes from the same capture point.
    machine.stats().counter("os.freelist.colour_hits") +=
        kernel.freeList().colourHits();
    machine.stats().counter("os.freelist.colour_misses") +=
        kernel.freeList().colourMisses();

    RunResult r;
    r.workload = workload.name();
    r.policy = policy.name;
    r.cycles = machine.clock().now();
    // Derive seconds from the SAME clock read as r.cycles: a second
    // read could disagree with the counter snapshot if anything (a
    // phase reset, an observer) touched the clock in between, and the
    // two fields must never tell different stories.
    r.seconds = double(r.cycles) / machine_params.clockHz;
    r.oracleViolations = oracle.violationCount();
    r.oracleChecked = oracle.checkedCount();
    r.stats = machine.stats().snapshot();
    if (trace_events > 0)
        r.traceTail = machine.events().recent(trace_events);
    return r;
}

} // namespace vic
