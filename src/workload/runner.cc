#include "workload/runner.hh"

#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"

namespace vic
{

std::uint64_t
RunResult::stat(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? 0 : it->second;
}

std::uint64_t
RunResult::sumMatching(const std::string &prefix,
                       const std::string &suffix) const
{
    std::uint64_t total = 0;
    for (const auto &[name, value] : stats) {
        if (name.size() < prefix.size() + suffix.size())
            continue;
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        total += value;
    }
    return total;
}

RunResult
runWorkload(Workload &workload, const PolicyConfig &policy,
            const MachineParams &machine_params,
            const OsParams &os_params, std::size_t trace_events)
{
    Machine machine(machine_params);
    ConsistencyOracle oracle(machine.memory().sizeBytes());
    machine.setObserver(&oracle);
    if (trace_events > 0)
        machine.events().enable(trace_events);
    Kernel kernel(machine, policy, os_params);

    workload.run(kernel);

    RunResult r;
    r.workload = workload.name();
    r.policy = policy.name;
    r.cycles = machine.clock().now();
    r.seconds = machine.elapsedSeconds();
    r.oracleViolations = oracle.violationCount();
    r.oracleChecked = oracle.checkedCount();
    r.stats = machine.stats().snapshot();
    if (trace_events > 0)
        r.traceTail = machine.events().recent(trace_events);
    return r;
}

} // namespace vic
