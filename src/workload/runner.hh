/**
 * @file
 * Workload runner: builds a machine + oracle + kernel for one policy
 * configuration, executes a workload, and collects the evaluation
 * metrics the paper's tables report.
 */

#ifndef VIC_WORKLOAD_RUNNER_HH
#define VIC_WORKLOAD_RUNNER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/policy_config.hh"
#include "machine/machine_params.hh"
#include "os/os_params.hh"
#include "workload/workload.hh"

namespace vic
{

/** Everything measured from one workload execution. */
struct RunResult
{
    std::string workload;
    std::string policy;

    Cycles cycles = 0;
    double seconds = 0;

    /** Oracle verdict: stale transfers detected (must be 0 for a
     *  correct policy). */
    std::uint64_t oracleViolations = 0;
    std::uint64_t oracleChecked = 0;

    /** Full statistics snapshot (counter name -> value), ordered by
     *  name so everything downstream iterates deterministically. */
    std::map<std::string, std::uint64_t> stats;

    /** Tail of the machine's event log (empty unless tracing was
     *  requested). */
    std::vector<std::string> traceTail;

    /** Convenience accessor; 0 for missing counters. */
    std::uint64_t stat(const std::string &name) const;

    /** Sum of all counters whose names start with @p prefix and end
     *  with @p suffix — e.g. ("dcache", ".write_backs") covers both
     *  the uniprocessor "dcache.write_backs" and the per-CPU
     *  "dcacheN.write_backs" counters. */
    std::uint64_t sumMatching(const std::string &prefix,
                              const std::string &suffix) const;

    /** One counter-selection pattern: an exact name when @c exact is
     *  nonempty, otherwise a prefix+suffix match as in sumMatching. */
    struct StatPattern
    {
        std::string exact;
        std::string prefix;
        std::string suffix;
    };

    /** Sum of all counters selected by ANY pattern in @p patterns,
     *  counting each counter at most once even when several patterns
     *  select it. Derived metrics that need both an exact name and a
     *  prefix+suffix sweep (e.g. "dcache.write_backs" on a
     *  uniprocessor plus "dcacheN.write_backs" per CPU) must go
     *  through this so an overlapping counter cannot be
     *  double-counted. */
    std::uint64_t
    sumMatchingAny(const std::vector<StatPattern> &patterns) const;

    // Derived metrics used across the benches.
    std::uint64_t dPageFlushes() const
    { return stat("pmap.d_page_flushes"); }
    std::uint64_t dPagePurges() const
    { return stat("pmap.d_page_purges"); }
    std::uint64_t iPagePurges() const
    { return stat("pmap.i_page_purges"); }
    std::uint64_t mappingFaults() const
    { return stat("os.mapping_faults"); }
    std::uint64_t consistencyFaults() const
    { return stat("os.consistency_faults"); }
    std::uint64_t dmaReadFlushes() const
    { return stat("pmap.d_flush.dma_read"); }
    std::uint64_t dmaWritePurges() const
    { return stat("pmap.d_purge.dma_write"); }
    std::uint64_t dToICopies() const { return stat("os.d_to_i_copies"); }

    /** Data-cache write-backs on uni- AND multiprocessor machines:
     *  covers "dcache.write_backs" and the per-CPU
     *  "dcacheN.write_backs" without double-counting either. */
    std::uint64_t
    writeBacks() const
    {
        return sumMatchingAny({{.exact = "dcache.write_backs",
                                .prefix = "",
                                .suffix = ""},
                               {.exact = "",
                                .prefix = "dcache",
                                .suffix = ".write_backs"}});
    }
};

/**
 * Run @p workload once under @p policy on a machine configured by
 * @p machine_params, with the consistency oracle attached. If
 * @p trace_events is nonzero, the machine's event log records that
 * many most-recent consistency events into RunResult::traceTail.
 */
RunResult runWorkload(Workload &workload, const PolicyConfig &policy,
                      const MachineParams &machine_params =
                          MachineParams::hp720(),
                      const OsParams &os_params = {},
                      std::size_t trace_events = 0);

} // namespace vic

#endif // VIC_WORKLOAD_RUNNER_HH
