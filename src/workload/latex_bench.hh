/**
 * @file
 * latex-paper: a compute-dominated document formatter, as in the
 * paper ("formats a version of this paper using TeX"). Most time is
 * spent in user-mode computation over a modest working set; file
 * traffic is limited to reading the input and fonts and writing the
 * output, so cache-management overheads are a small but measurable
 * fraction (the paper reports a 5% gain, its smallest).
 */

#ifndef VIC_WORKLOAD_LATEX_BENCH_HH
#define VIC_WORKLOAD_LATEX_BENCH_HH

#include "workload/workload.hh"

namespace vic
{

class LatexBench : public Workload
{
  public:
    struct Params
    {
        std::uint32_t inputPages = 6;      ///< manuscript size
        std::uint32_t fontFiles = 4;       ///< auxiliary inputs
        std::uint32_t workingSetPages = 24;
        std::uint32_t passes = 3;          ///< TeX runs over the input
        Cycles computePerPage = 950000;
        std::uint64_t seed = 0x7e;
    };

    LatexBench() : params() {}
    explicit LatexBench(const Params &p) : params(p) {}

    std::string name() const override { return "latex-paper"; }
    void run(Kernel &kernel) override;
    void reseed(std::uint64_t seed) override { params.seed = seed; }

  private:
    Params params;
};

} // namespace vic

#endif // VIC_WORKLOAD_LATEX_BENCH_HH
