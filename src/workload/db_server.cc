#include "workload/db_server.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace vic
{

void
DbServer::run(Kernel &kernel)
{
    Random rng(params.seed);
    const std::uint32_t page = kernel.machine().pageBytes();
    const std::uint32_t words_per_page = page / 4;

    // The server builds the database.
    const TaskId server = kernel.createTask();
    VirtAddr db_server_va = kernel.vmAllocate(server, params.dbPages);
    for (std::uint32_t p = 0; p < params.dbPages; ++p) {
        kernel.userTouchPage(server,
                             db_server_va.plus(std::uint64_t(p) * page),
                             true, 0xdb000000u + p);
    }
    auto db = kernel.regionObject(server, db_server_va);

    FileId log = kernel.fileCreate(server, "db-log");
    std::uint64_t log_off = 0;

    // Clients attach. A persistent data structure has its pointers
    // baked in, so each client demands its own fixed address —
    // deliberately straddling different cache colours.
    std::vector<TaskId> clients;
    std::vector<VirtAddr> attach;
    for (std::uint32_t c = 0; c < params.numClients; ++c) {
        TaskId t = kernel.createTask();
        std::optional<VirtAddr> fixed;
        if (params.fixedAddresses) {
            fixed = VirtAddr(0x7000'0000ull +
                             std::uint64_t(c) * (params.dbPages + 3) *
                                 page);
        } else {
            // Kernel-chosen: align with the server's mapping.
            fixed = kernel.addressSpace(t).allocateVa(
                params.dbPages, kernel.pmap().dColourOf(db_server_va));
        }
        VirtAddr va = kernel.vmMapShared(t, db, Protection::readWrite(),
                                         fixed);
        clients.push_back(t);
        attach.push_back(va);
    }

    // Transactions.
    for (std::uint32_t txn = 0; txn < params.transactions; ++txn) {
        const std::uint32_t c =
            static_cast<std::uint32_t>(txn % params.numClients);
        const TaskId t = clients[c];
        const VirtAddr base = attach[c];

        // Read a few records...
        for (std::uint32_t r = 0; r < params.readsPerTxn; ++r) {
            const std::uint32_t p = static_cast<std::uint32_t>(
                rng.below(params.dbPages));
            const std::uint32_t w = static_cast<std::uint32_t>(
                rng.below(words_per_page));
            kernel.userLoad(t, base.plus(std::uint64_t(p) * page +
                                         4ull * w));
        }
        // ...update one...
        {
            const std::uint32_t p = static_cast<std::uint32_t>(
                rng.below(params.dbPages));
            const std::uint32_t w = static_cast<std::uint32_t>(
                rng.below(words_per_page));
            kernel.userStore(t, base.plus(std::uint64_t(p) * page +
                                          4ull * w),
                             0x10000000u + txn);
        }
        kernel.userCompute(params.computePerTxn);

        // Periodic checkpoint: the server scans the database through
        // ITS alias and appends a log record.
        if (txn % 8 == 7) {
            for (std::uint32_t p = 0; p < params.dbPages; ++p) {
                kernel.userTouchPage(
                    server, db_server_va.plus(std::uint64_t(p) * page),
                    false);
            }
            kernel.fileWrite(server, log, log_off, page / 4,
                             0xc0000000u + txn);
            log_off += page / 4;
        }
    }

    kernel.fileSyncAll();
    for (TaskId t : clients)
        kernel.destroyTask(t);
    kernel.destroyTask(server);
}

} // namespace vic
