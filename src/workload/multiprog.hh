/**
 * @file
 * multiprog: a timesharing mix.
 *
 * The paper's measurements come from a timeshared Unix machine where
 * the three benchmarks never ran in a vacuum: editors, shells and
 * daemons interleave, stealing cache pages and churning the free list
 * between a program's quanta. This workload interleaves several
 * concurrent jobs round-robin — each one repeatedly reading its input
 * file, chewing on a private working set, executing a utility, and
 * appending to an output file — so every context switch exercises the
 * consistency machinery with another task's state resident in the
 * caches. On a multiprocessor machine the jobs land on different CPUs
 * (round-robin task placement), adding hardware coherence traffic to
 * the mix.
 */

#ifndef VIC_WORKLOAD_MULTIPROG_HH
#define VIC_WORKLOAD_MULTIPROG_HH

#include "workload/workload.hh"

namespace vic
{

class MultiProg : public Workload
{
  public:
    struct Params
    {
        std::uint32_t numJobs = 4;
        std::uint32_t quantaPerJob = 12;
        std::uint32_t workingSetPages = 6;
        std::uint32_t filePages = 2;
        Cycles computePerQuantum = 15000;
        std::uint64_t seed = 0x3117;
    };

    MultiProg() : params() {}
    explicit MultiProg(const Params &p) : params(p) {}

    std::string name() const override { return "multiprog"; }
    void run(Kernel &kernel) override;
    void reseed(std::uint64_t seed) override { params.seed = seed; }

  private:
    Params params;
};

} // namespace vic

#endif // VIC_WORKLOAD_MULTIPROG_HH
