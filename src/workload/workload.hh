/**
 * @file
 * Workload interface.
 *
 * A workload is a deterministic stream of OS-level operations (task
 * creation, memory touches, file I/O, IPC, exec) driven through the
 * Kernel. The same stream runs under every consistency policy, so
 * differences in elapsed time and flush/purge counts are attributable
 * to the policy alone — the methodology of the paper's Tables 1 and 4.
 */

#ifndef VIC_WORKLOAD_WORKLOAD_HH
#define VIC_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "os/kernel.hh"

namespace vic
{

class Workload
{
  public:
    virtual ~Workload() = default;

    /** Workload name as reported in the tables. */
    virtual std::string name() const = 0;

    /** Execute the operation stream against @p kernel. */
    virtual void run(Kernel &kernel) = 0;

    /**
     * Replace the workload's random-stream seed before run(). The
     * experiment engine calls this with the RunSpec's (SplitMix64-
     * expanded) seed so a run's operation stream is a function of its
     * spec alone — never of scheduling, defaults, or run order.
     * Workloads without a random stream ignore it.
     */
    virtual void reseed(std::uint64_t /*seed*/) {}
};

} // namespace vic

#endif // VIC_WORKLOAD_WORKLOAD_HH
