/**
 * @file
 * db-server: a shared persistent data structure under transactions.
 *
 * Section 2.2: "there will always be cases where it may be more
 * convenient to place shared memory at specific virtual addresses
 * (such as with shared persistent data structures). Consequently, the
 * cache management system must deal with these aliases correctly."
 *
 * A server task owns a multi-page in-memory database; client tasks map
 * it at their own FIXED virtual addresses (pointers embedded in the
 * data structure demand it), which rarely align with each other or the
 * server. Transactions read and update records through these aliases
 * while the server periodically scans the database and appends to an
 * on-disk log. The aligned variant lets the kernel choose client
 * addresses instead — quantifying exactly what the fixed-address
 * convenience costs under each policy.
 */

#ifndef VIC_WORKLOAD_DB_SERVER_HH
#define VIC_WORKLOAD_DB_SERVER_HH

#include "workload/workload.hh"

namespace vic
{

class DbServer : public Workload
{
  public:
    struct Params
    {
        std::uint32_t dbPages = 8;
        std::uint32_t numClients = 4;
        std::uint32_t transactions = 64;
        std::uint32_t readsPerTxn = 3;
        /** true: clients map the database at fixed (non-aligning)
         *  addresses, as a persistent data structure requires;
         *  false: the kernel picks aligning addresses. */
        bool fixedAddresses = true;
        Cycles computePerTxn = 20000;
        std::uint64_t seed = 0xdb5;
    };

    DbServer() : params() {}
    explicit DbServer(const Params &p) : params(p) {}

    std::string
    name() const override
    {
        return params.fixedAddresses ? "db-server-fixed"
                                     : "db-server-aligned";
    }

    void run(Kernel &kernel) override;
    void reseed(std::uint64_t seed) override { params.seed = seed; }

  private:
    Params params;
};

} // namespace vic

#endif // VIC_WORKLOAD_DB_SERVER_HH
