/**
 * @file
 * afs-bench: a scaled-down analogue of the Andrew File System
 * benchmark used in the paper — "a file-intensive shell script". The
 * phases mirror Andrew's: create a source tree, copy it, scan it,
 * read every file, and run a compile-like pass that reads inputs and
 * writes outputs. Every operation goes through the Unix-server
 * syscall stub (shared-page ping-pong) and the buffer cache, so the
 * policy-sensitive paths — shared-page aliasing, IPC page transfers,
 * page preparation, DMA write-behind — are all exercised.
 */

#ifndef VIC_WORKLOAD_AFS_BENCH_HH
#define VIC_WORKLOAD_AFS_BENCH_HH

#include "workload/workload.hh"

namespace vic
{

class AfsBench : public Workload
{
  public:
    struct Params
    {
        std::uint32_t numFiles = 24;       ///< files in the "tree"
        std::uint32_t maxFilePages = 3;    ///< file sizes 1..max pages
        Cycles computePerFile = 970000;
        std::uint64_t seed = 0xaf5;
    };

    AfsBench() : params() {}
    explicit AfsBench(const Params &p) : params(p) {}

    std::string name() const override { return "afs-bench"; }
    void run(Kernel &kernel) override;
    void reseed(std::uint64_t seed) override { params.seed = seed; }

  private:
    Params params;
};

} // namespace vic

#endif // VIC_WORKLOAD_AFS_BENCH_HH
