/**
 * @file
 * kernel-build: a scaled-down analogue of the paper's third benchmark
 * ("builds a version of the Mach kernel from about 200 source files").
 *
 * Each compilation unit spawns a fresh task that maps and executes
 * the shared compiler text (first execution pays the data-to-
 * instruction copy; later tasks alias the same text frames), takes a
 * copy-on-write environment, reads its source through the Unix
 * server, chews on private scratch memory, writes an object file, and
 * exits — churning physical pages through the free list, which is
 * what makes new-mapping purges the dominant consistency cost in the
 * paper's configuration F (about 80% of purges, Section 5.1).
 */

#ifndef VIC_WORKLOAD_KERNEL_BUILD_HH
#define VIC_WORKLOAD_KERNEL_BUILD_HH

#include "workload/workload.hh"

namespace vic
{

class KernelBuild : public Workload
{
  public:
    struct Params
    {
        std::uint32_t numSourceFiles = 48; ///< paper: about 200
        std::uint32_t compilerTextPages = 6;
        std::uint32_t envPages = 2;        ///< copy-on-write per task
        std::uint32_t scratchPages = 6;
        /** Pure-compute cycles per compiled file, calibrated so the
         *  A-to-F elapsed-time gain lands at the paper's 8.5% for
         *  Table 1 (the consistency overhead the configs differ by
         *  is a constant; this sets the denominator). */
        Cycles computePerFile = 3480000;
        std::uint64_t seed = 0xb11d;
    };

    KernelBuild() : params() {}
    explicit KernelBuild(const Params &p) : params(p) {}

    std::string name() const override { return "kernel-build"; }
    void run(Kernel &kernel) override;
    void reseed(std::uint64_t seed) override { params.seed = seed; }

  private:
    Params params;
};

} // namespace vic

#endif // VIC_WORKLOAD_KERNEL_BUILD_HH
