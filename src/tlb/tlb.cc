#include "tlb/tlb.hh"

#include "common/logging.hh"

namespace vic
{

Tlb::Tlb(std::uint32_t num_entries, Cycles miss_penalty, PageTable &table,
         CycleClock &clock, StatSet &stat_set)
    : capacity(num_entries), missPenalty(miss_penalty), pageTable(table),
      clk(clock), entries(num_entries),
      statHits(stat_set.counter("tlb.hits")),
      statMisses(stat_set.counter("tlb.misses"))
{
    vic_assert(num_entries > 0, "TLB needs at least one entry");
}

const PageTableEntry *
Tlb::translate(SpaceVa key)
{
    const SpaceVa page(key.space, pageTable.pageBase(key.va));

    for (auto &e : entries) {
        if (e.valid && e.page == page) {
            e.lastUse = ++useTick;
            ++statHits;
            // The TLB caches only presence; protection and frame are
            // read through to the page table so that pmap updates are
            // never seen stale (pmap also shoots down on changes).
            return pageTable.lookup(page);
        }
    }

    const PageTableEntry *pte = pageTable.lookup(page);
    if (!pte)
        return nullptr;

    ++statMisses;
    clk.advance(missPenalty);

    Entry *victim = nullptr;
    std::uint64_t oldest = ~std::uint64_t(0);
    for (auto &e : entries) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < oldest) {
            oldest = e.lastUse;
            victim = &e;
        }
    }
    victim->valid = true;
    victim->page = page;
    victim->lastUse = ++useTick;
    return pte;
}

void
Tlb::invalidatePage(SpaceVa key)
{
    const SpaceVa page(key.space, pageTable.pageBase(key.va));
    for (auto &e : entries) {
        if (e.valid && e.page == page)
            e.valid = false;
    }
}

void
Tlb::invalidateSpace(SpaceId space)
{
    for (auto &e : entries) {
        if (e.valid && e.page.space == space)
            e.valid = false;
    }
}

void
Tlb::invalidateAll()
{
    for (auto &e : entries)
        e.valid = false;
}

std::uint32_t
Tlb::validCount() const
{
    std::uint32_t n = 0;
    for (const auto &e : entries)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace vic
