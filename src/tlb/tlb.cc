#include "tlb/tlb.hh"

#include "common/logging.hh"

namespace vic
{

Tlb::Tlb(std::uint32_t num_entries, Cycles miss_penalty, PageTable &table,
         CycleClock &clock, StatSet &stat_set)
    : capacity(num_entries), missPenalty(miss_penalty), pageTable(table),
      clk(clock), entries(num_entries),
      statHits(stat_set.counter("tlb.hits")),
      statMisses(stat_set.counter("tlb.misses"))
{
    vic_assert(num_entries > 0, "TLB needs at least one entry");
    slotIndex.reserve(num_entries * 2);
}

PageTableEntry *
Tlb::translateFull(SpaceVa page)
{
    auto it = slotIndex.find(page);
    if (it != slotIndex.end()) {
        Entry &e = entries[it->second];
        e.lastUse = ++useTick;
        ++statHits;
        mru = &e;
        return e.pte;
    }

    PageTableEntry *pte = pageTable.lookupMutable(page);
    if (!pte)
        return nullptr;

    ++statMisses;
    clk.advance(missPenalty);

    Entry *victim = nullptr;
    std::uint64_t oldest = ~std::uint64_t(0);
    for (auto &e : entries) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < oldest) {
            oldest = e.lastUse;
            victim = &e;
        }
    }
    if (victim->valid)
        slotIndex.erase(victim->page);
    victim->valid = true;
    victim->page = page;
    victim->lastUse = ++useTick;
    victim->pte = pte;
    slotIndex.emplace(
        page, static_cast<std::uint32_t>(victim - entries.data()));
    mru = victim;
    return pte;
}

void
Tlb::invalidateSlot(Entry &e)
{
    e.valid = false;
    e.pte = nullptr;
    slotIndex.erase(e.page);
    if (mru == &e)
        mru = nullptr;
}

void
Tlb::invalidatePage(SpaceVa key)
{
    const SpaceVa page(key.space, pageTable.pageBase(key.va));
    auto it = slotIndex.find(page);
    if (it != slotIndex.end())
        invalidateSlot(entries[it->second]);
}

void
Tlb::invalidateSpace(SpaceId space)
{
    for (auto &e : entries) {
        if (e.valid && e.page.space == space)
            invalidateSlot(e);
    }
}

void
Tlb::invalidateAll()
{
    for (auto &e : entries) {
        e.valid = false;
        e.pte = nullptr;
    }
    slotIndex.clear();
    mru = nullptr;
}

std::uint32_t
Tlb::validCount() const
{
    std::uint32_t n = 0;
    for (const auto &e : entries)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace vic
