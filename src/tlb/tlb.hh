/**
 * @file
 * Translation lookaside buffer.
 *
 * A fully associative translation cache over the page table, with LRU
 * replacement. On the modelled machine the TLB translates virtual page
 * frames to physical page frames in parallel with (virtually indexed)
 * cache lookup, so a TLB hit adds no cycles; only misses charge a
 * refill penalty. The pmap layer must shoot down entries whenever it
 * changes a translation or protection — the paper notes that on unmap
 * "other structures, however, such as TLB and page table entries, must
 * be invalidated to deny access to the data in the memory system"
 * (Section 2.3).
 */

#ifndef VIC_TLB_TLB_HH
#define VIC_TLB_TLB_HH

#include <cstdint>
#include <vector>

#include "common/cycle_clock.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mmu/page_table.hh"

namespace vic
{

class Tlb
{
  public:
    /**
     * @param num_entries capacity (fully associative)
     * @param miss_penalty cycles charged on a refill
     * @param table     backing page table
     * @param clock     cycle clock
     * @param stat_set  statistics registry
     */
    Tlb(std::uint32_t num_entries, Cycles miss_penalty, PageTable &table,
        CycleClock &clock, StatSet &stat_set);

    /**
     * Translate the page containing @p key.va, refilling from the page
     * table on a miss. @return the current page-table entry, or nullptr
     * if the page is unmapped (the caller raises a fault).
     */
    const PageTableEntry *translate(SpaceVa key);

    /** Drop the cached entry for one page, if any. */
    void invalidatePage(SpaceVa key);

    /** Drop all cached entries for @p space. */
    void invalidateSpace(SpaceId space);

    /** Drop everything. */
    void invalidateAll();

    /** Number of currently valid entries (for tests). */
    std::uint32_t validCount() const;

  private:
    struct Entry
    {
        bool valid = false;
        SpaceVa page;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t capacity;
    Cycles missPenalty;
    PageTable &pageTable;
    CycleClock &clk;

    std::vector<Entry> entries;
    std::uint64_t useTick = 0;

    Counter &statHits;
    Counter &statMisses;
};

} // namespace vic

#endif // VIC_TLB_TLB_HH
