/**
 * @file
 * Translation lookaside buffer.
 *
 * A fully associative translation cache over the page table, with LRU
 * replacement. On the modelled machine the TLB translates virtual page
 * frames to physical page frames in parallel with (virtually indexed)
 * cache lookup, so a TLB hit adds no cycles; only misses charge a
 * refill penalty. The pmap layer must shoot down entries whenever it
 * changes a translation or protection — the paper notes that on unmap
 * "other structures, however, such as TLB and page table entries, must
 * be invalidated to deny access to the data in the memory system"
 * (Section 2.3).
 *
 * This is stage 1 of the access pipeline (DESIGN.md "Access
 * pipeline"): translate() hands back a *mutable* page-table-entry
 * handle so the CPU can set referenced/modified bits directly,
 * without a second page-table walk per access. Each TLB entry caches
 * that handle. The handle stays valid because (a) the page table is a
 * node-based map — entries never move on insert, and enter() on a
 * mapped page assigns in place — and (b) every path that erases an
 * entry (Pmap::dropTranslation) shoots the TLB down first, so a
 * cached handle can never outlive its entry. Protection changes
 * mutate the entry in place and are therefore seen through the handle
 * immediately, preserving the historic read-through behaviour.
 *
 * The hot-path structure is a 1-entry MRU micro-cache (consecutive
 * accesses to one page resolve with a single compare — no hashing, no
 * scan) backed by a page -> slot hash index; the full-associativity
 * LRU semantics (victim = first invalid slot, else least recent) are
 * unchanged and pinned by tests/tlb_test.cc.
 */

#ifndef VIC_TLB_TLB_HH
#define VIC_TLB_TLB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/cycle_clock.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mmu/page_table.hh"

namespace vic
{

class Tlb
{
  public:
    /**
     * @param num_entries capacity (fully associative)
     * @param miss_penalty cycles charged on a refill
     * @param table     backing page table
     * @param clock     cycle clock
     * @param stat_set  statistics registry
     */
    Tlb(std::uint32_t num_entries, Cycles miss_penalty, PageTable &table,
        CycleClock &clock, StatSet &stat_set);

    /**
     * Translate the page containing @p key.va, refilling from the page
     * table on a miss. @return a mutable handle to the current
     * page-table entry (the access pipeline sets referenced/modified
     * through it), or nullptr if the page is unmapped (the caller
     * raises a fault).
     */
    PageTableEntry *
    translate(SpaceVa key)
    {
        const SpaceVa page(key.space, pageTable.pageBase(key.va));
        Entry *e = mru;
        if (e != nullptr && e->valid && e->page == page) {
            e->lastUse = ++useTick;
            ++statHits;
            return e->pte;
        }
        return translateFull(page);
    }

    /** Drop the cached entry for one page, if any. */
    void invalidatePage(SpaceVa key);

    /** Drop all cached entries for @p space. */
    void invalidateSpace(SpaceId space);

    /** Drop everything. */
    void invalidateAll();

    /** Number of currently valid entries (for tests). */
    std::uint32_t validCount() const;

  private:
    struct Entry
    {
        bool valid = false;
        SpaceVa page;
        std::uint64_t lastUse = 0;
        PageTableEntry *pte = nullptr; ///< cached handle (see file doc)
    };

    std::uint32_t capacity;
    Cycles missPenalty;
    PageTable &pageTable;
    CycleClock &clk;

    std::vector<Entry> entries;
    std::uint64_t useTick = 0;

    /** Most recently used entry; entries never reallocates, so the
     *  pointer is stable. Cleared by every invalidation. */
    Entry *mru = nullptr;

    /** page -> slot in entries, maintained alongside entry validity.
     *  Lookup-only (never iterated), so determinism is unaffected. */
    std::unordered_map<SpaceVa, std::uint32_t> slotIndex;

    Counter &statHits;
    Counter &statMisses;

    /** Hit-via-index and miss/refill paths (out of line). */
    PageTableEntry *translateFull(SpaceVa page);

    void invalidateSlot(Entry &e);
};

} // namespace vic

#endif // VIC_TLB_TLB_HH
