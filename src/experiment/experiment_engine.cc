#include "experiment/experiment_engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "workload/shard_runner.hh"

namespace vic
{

std::uint64_t
ExperimentEngine::splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
ExperimentEngine::effectiveSeed(std::uint64_t base,
                                std::uint32_t replica)
{
    if (replica == 0)
        return base;
    // Two mix rounds over (base, replica) give unrelated streams for
    // nearby replica indices while staying a pure function of the
    // spec — no scheduling state can leak in.
    return splitmix64(splitmix64(base) ^
                      splitmix64(0x5eedULL + replica));
}

bool
ExperimentEngine::matchesFilter(const std::string &id,
                                const std::string &filter)
{
    if (filter.empty())
        return true;
    std::size_t start = 0;
    while (start <= filter.size()) {
        std::size_t comma = filter.find(',', start);
        if (comma == std::string::npos)
            comma = filter.size();
        const std::string token = filter.substr(start, comma - start);
        if (!token.empty() && id.find(token) != std::string::npos)
            return true;
        start = comma + 1;
    }
    return false;
}

RunOutcome
ExperimentEngine::runOne(const RunSpec &spec, unsigned shards)
{
    RunOutcome out;
    out.id = spec.id;
    out.suite = spec.suite;
    out.policy = spec.policy.name;
    out.seed = spec.seed;
    out.replica = spec.replica;
    out.replicaCount = spec.replicaCount < 1 ? 1 : spec.replicaCount;
    out.effectiveSeed = effectiveSeed(spec.seed, spec.replica);

    const auto t0 = std::chrono::steady_clock::now();
    try {
        vic_assert(static_cast<bool>(spec.make),
                   "RunSpec '%s' has no workload factory",
                   spec.id.c_str());
        if (out.replicaCount > 1) {
            // Seeds are derived HERE (the experiment layer owns seed
            // policy) and passed down — the shard runner stays a pure
            // mechanism.
            std::vector<std::uint64_t> seeds(out.replicaCount);
            for (std::uint32_t k = 0; k < out.replicaCount; ++k)
                seeds[k] = effectiveSeed(spec.seed, spec.replica + k);
            out.result = runWorkloadSharded(spec.make, seeds, shards,
                                            spec.policy, spec.machine,
                                            spec.os, spec.traceEvents);
            out.workload = out.result.workload;
        } else {
            std::unique_ptr<Workload> workload = spec.make();
            workload->reseed(out.effectiveSeed);
            out.workload = workload->name();
            out.result = runWorkload(*workload, spec.policy,
                                     spec.machine, spec.os,
                                     spec.traceEvents);
        }
        out.ok = true;
    } catch (const std::exception &e) {
        out.ok = false;
        out.error = e.what();
    } catch (...) {
        out.ok = false;
        out.error = "unknown exception";
    }
    if (out.workload.empty())
        out.workload = out.ok ? out.result.workload : "?";
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return out;
}

std::vector<RunOutcome>
ExperimentEngine::run(const std::vector<RunSpec> &specs,
                      const Options &options) const
{
    std::vector<RunOutcome> outcomes(specs.size());

    std::mutex progress_mutex;
    std::atomic<std::size_t> done{0};
    const auto report = [&](const RunOutcome &out) {
        if (!options.echoProgress)
            return;
        const std::size_t k = ++done;
        std::lock_guard<std::mutex> lock(progress_mutex);
        std::fprintf(stderr, "  [%zu/%zu] %-44s %s  (%.2fs)\n", k,
                     specs.size(), out.id.c_str(),
                     out.ok ? "ok" : "FAILED", out.wallSeconds);
    };

    const unsigned jobs =
        options.jobs < 2 || specs.size() < 2
            ? 1
            : std::min<unsigned>(options.jobs,
                                 static_cast<unsigned>(specs.size()));

    if (jobs == 1) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            outcomes[i] = runOne(specs[i], options.shards);
            report(outcomes[i]);
        }
        return outcomes;
    }

    // Work-stealing by atomic index: completion order is arbitrary,
    // but each worker writes only its claimed outcome slot, so the
    // returned vector is in spec order by construction.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) {
        workers.emplace_back([&] {
            while (true) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= specs.size())
                    return;
                outcomes[i] = runOne(specs[i], options.shards);
                report(outcomes[i]);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    return outcomes;
}

} // namespace vic
