/**
 * @file
 * Versioned JSON bench artifact.
 *
 * One artifact captures one engine batch: per-run counters, cycles,
 * oracle verdicts and wall-clock, under a schema-version field so CI
 * can diff perf trajectories across commits without guessing the
 * layout. Every field except the "wall_seconds" keys is a pure
 * function of the spec list, which is what the serial-vs-parallel
 * determinism guarantee (and artifactsEquivalent) is built on.
 *
 * Schema (version 1):
 *
 *   {
 *     "schema": "vic-bench",
 *     "schema_version": 1,
 *     "smoke": bool, "jobs": N, "filter": "...",
 *     "wall_seconds": f,              // whole-batch host time
 *     "runs": [ { <run entry> }, ... ]   // in spec order
 *   }
 *
 * Run entry: id, suite, workload, policy, seed, replica, replicas
 * (only when > 1 — a merged multi-replica run; absent otherwise so
 * pre-sharding artifacts stay byte-compatible), effective_seed, ok,
 * error, wall_seconds, cycles_per_host_second
 * (host throughput: simulated cycles per host second — wall-derived,
 * stripped for equivalence along with wall_seconds), and on success
 * the full RunResult: cycles, seconds (= cycles / 50 MHz), oracle
 * {checked, violations}, stats (name -> counter, sorted by name) and
 * trace (when tracing was requested). The batch header carries the
 * aggregate cycles_per_host_second.
 *
 * A companion throughput artifact (schema "vic-bench-throughput",
 * same version) extracts just the perf trajectory — per run:
 * host_seconds, sim_cycles, cycles_per_host_second, plus batch
 * totals — so CI can archive a small perf baseline per commit.
 */

#ifndef VIC_EXPERIMENT_JSON_ARTIFACT_HH
#define VIC_EXPERIMENT_JSON_ARTIFACT_HH

#include <string>
#include <vector>

#include "common/json_writer.hh"
#include "experiment/run_spec.hh"

namespace vic
{

inline constexpr int kBenchSchemaVersion = 1;

/** Batch-level metadata recorded in the artifact header. */
struct ArtifactMeta
{
    unsigned jobs = 1;
    /** Host threads per run's replicas (--shards). Recorded for
     *  provenance; neutralised by artifactsEquivalent exactly like
     *  "jobs" — shard count must never change results. */
    unsigned shards = 1;
    bool smoke = false;
    std::string filter;
    double wallSeconds = 0;
};

/** Serialise a RunResult (deterministic: stats sorted by name). */
JsonValue runResultToJson(const RunResult &r);

/** Rebuild a RunResult from runResultToJson output. */
RunResult runResultFromJson(const JsonValue &v);

/** Serialise one run entry. */
JsonValue outcomeToJson(const RunOutcome &out);

/** Serialise a whole batch. */
JsonValue artifactToJson(const ArtifactMeta &meta,
                         const std::vector<RunOutcome> &outcomes);

/** artifactToJson + pretty dump. */
std::string renderArtifact(const ArtifactMeta &meta,
                           const std::vector<RunOutcome> &outcomes);

/** Write renderArtifact output to @p path; false on I/O error. */
bool writeArtifactFile(const std::string &path,
                       const ArtifactMeta &meta,
                       const std::vector<RunOutcome> &outcomes);

/** Throughput-only companion artifact (see file doc). */
JsonValue throughputToJson(const ArtifactMeta &meta,
                           const std::vector<RunOutcome> &outcomes);

/** Write throughputToJson output to @p path; false on I/O error. */
bool writeThroughputFile(const std::string &path,
                         const ArtifactMeta &meta,
                         const std::vector<RunOutcome> &outcomes);

/** Zero every "wall_seconds" member and drop the wall-derived
 *  throughput members ("cycles_per_host_second", "host_seconds"),
 *  recursively, so two artifacts can be compared modulo host timing
 *  — including artifacts written before the throughput fields
 *  existed. */
void stripWallClock(JsonValue &v);

/**
 * Compare two artifact texts modulo wall-clock fields. Returns true
 * when equivalent; otherwise false with a human-readable reason in
 * @p why (when non-null).
 */
bool artifactsEquivalent(const std::string &a_text,
                         const std::string &b_text, std::string *why);

} // namespace vic

#endif // VIC_EXPERIMENT_JSON_ARTIFACT_HH
