#include "experiment/json_artifact.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/logging.hh"

namespace vic
{

namespace
{

/** Simulated-cycles-per-host-second; 0 when no time was measured. */
double
cyclesPerHostSecond(std::uint64_t cycles, double wall_seconds)
{
    return wall_seconds > 0 ? double(cycles) / wall_seconds : 0.0;
}

/** Write @p text to @p path; false on I/O error. */
bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

} // anonymous namespace

JsonValue
runResultToJson(const RunResult &r)
{
    JsonValue v = JsonValue::object();
    v.set("workload", JsonValue::str(r.workload));
    v.set("policy", JsonValue::str(r.policy));
    v.set("cycles", JsonValue::number(std::uint64_t(r.cycles)));
    v.set("seconds", JsonValue::number(r.seconds));

    JsonValue oracle = JsonValue::object();
    oracle.set("checked", JsonValue::number(r.oracleChecked));
    oracle.set("violations", JsonValue::number(r.oracleViolations));
    v.set("oracle", std::move(oracle));

    // RunResult::stats is an ordered map, so iteration is already the
    // sorted-by-name order the artifact requires.
    JsonValue stats = JsonValue::object();
    for (const auto &[name, value] : r.stats)
        stats.set(name, JsonValue::number(value));
    v.set("stats", std::move(stats));

    if (!r.traceTail.empty()) {
        JsonValue trace = JsonValue::array();
        for (const auto &line : r.traceTail)
            trace.push(JsonValue::str(line));
        v.set("trace", std::move(trace));
    }
    return v;
}

RunResult
runResultFromJson(const JsonValue &v)
{
    RunResult r;
    const auto *workload = v.find("workload");
    const auto *policy = v.find("policy");
    const auto *cycles = v.find("cycles");
    const auto *seconds = v.find("seconds");
    const auto *oracle = v.find("oracle");
    const auto *stats = v.find("stats");
    if (!workload || !policy || !cycles || !seconds || !oracle ||
        !stats)
        throw std::runtime_error("run entry missing required fields");

    r.workload = workload->asString();
    r.policy = policy->asString();
    r.cycles = cycles->asU64();
    r.seconds = seconds->asDouble();
    const auto *checked = oracle->find("checked");
    const auto *violations = oracle->find("violations");
    if (!checked || !violations)
        throw std::runtime_error("run entry missing oracle verdict");
    r.oracleChecked = checked->asU64();
    r.oracleViolations = violations->asU64();
    for (const auto &[name, value] : stats->members())
        r.stats[name] = value.asU64();
    if (const auto *trace = v.find("trace")) {
        for (const auto &line : trace->items())
            r.traceTail.push_back(line.asString());
    }
    return r;
}

JsonValue
outcomeToJson(const RunOutcome &out)
{
    JsonValue v = JsonValue::object();
    v.set("id", JsonValue::str(out.id));
    v.set("suite", JsonValue::str(out.suite));
    v.set("workload", JsonValue::str(out.workload));
    v.set("policy", JsonValue::str(out.policy));
    v.set("seed", JsonValue::number(out.seed));
    v.set("replica", JsonValue::number(std::uint64_t(out.replica)));
    // Emitted only for merged multi-replica runs, so single-replica
    // artifacts stay byte-identical to the pre-sharding schema.
    if (out.replicaCount > 1)
        v.set("replicas",
              JsonValue::number(std::uint64_t(out.replicaCount)));
    v.set("effective_seed", JsonValue::number(out.effectiveSeed));
    v.set("ok", JsonValue::boolean(out.ok));
    if (!out.ok)
        v.set("error", JsonValue::str(out.error));
    v.set("wall_seconds", JsonValue::number(out.wallSeconds));
    if (out.ok) {
        // Host throughput: how many simulated cycles this run got
        // through per second of host time. Wall-derived, so
        // stripWallClock() drops it for equivalence checks.
        v.set("cycles_per_host_second",
              JsonValue::number(cyclesPerHostSecond(
                  std::uint64_t(out.result.cycles), out.wallSeconds)));
        v.set("result", runResultToJson(out.result));
    }
    return v;
}

JsonValue
artifactToJson(const ArtifactMeta &meta,
               const std::vector<RunOutcome> &outcomes)
{
    JsonValue v = JsonValue::object();
    v.set("schema", JsonValue::str("vic-bench"));
    v.set("schema_version",
          JsonValue::number(std::int64_t(kBenchSchemaVersion)));
    v.set("smoke", JsonValue::boolean(meta.smoke));
    v.set("jobs", JsonValue::number(std::uint64_t(meta.jobs)));
    v.set("shards", JsonValue::number(std::uint64_t(meta.shards)));
    v.set("filter", JsonValue::str(meta.filter));
    v.set("wall_seconds", JsonValue::number(meta.wallSeconds));
    std::uint64_t total_cycles = 0;
    for (const auto &out : outcomes) {
        if (out.ok)
            total_cycles += std::uint64_t(out.result.cycles);
    }
    v.set("cycles_per_host_second",
          JsonValue::number(
              cyclesPerHostSecond(total_cycles, meta.wallSeconds)));
    JsonValue runs = JsonValue::array();
    for (const auto &out : outcomes)
        runs.push(outcomeToJson(out));
    v.set("runs", std::move(runs));
    return v;
}

std::string
renderArtifact(const ArtifactMeta &meta,
               const std::vector<RunOutcome> &outcomes)
{
    return artifactToJson(meta, outcomes).dump(2);
}

bool
writeArtifactFile(const std::string &path, const ArtifactMeta &meta,
                  const std::vector<RunOutcome> &outcomes)
{
    return writeTextFile(path, renderArtifact(meta, outcomes));
}

JsonValue
throughputToJson(const ArtifactMeta &meta,
                 const std::vector<RunOutcome> &outcomes)
{
    JsonValue v = JsonValue::object();
    v.set("schema", JsonValue::str("vic-bench-throughput"));
    v.set("schema_version",
          JsonValue::number(std::int64_t(kBenchSchemaVersion)));
    v.set("smoke", JsonValue::boolean(meta.smoke));
    v.set("jobs", JsonValue::number(std::uint64_t(meta.jobs)));
    v.set("shards", JsonValue::number(std::uint64_t(meta.shards)));
    v.set("filter", JsonValue::str(meta.filter));

    std::uint64_t total_cycles = 0;
    JsonValue runs = JsonValue::array();
    for (const auto &out : outcomes) {
        if (!out.ok)
            continue;
        const std::uint64_t cycles = std::uint64_t(out.result.cycles);
        total_cycles += cycles;
        JsonValue run = JsonValue::object();
        run.set("id", JsonValue::str(out.id));
        run.set("suite", JsonValue::str(out.suite));
        run.set("host_seconds", JsonValue::number(out.wallSeconds));
        run.set("sim_cycles", JsonValue::number(cycles));
        run.set("cycles_per_host_second",
                JsonValue::number(
                    cyclesPerHostSecond(cycles, out.wallSeconds)));
        runs.push(std::move(run));
    }

    // Batch totals use the batch wall clock (which, under --jobs > 1,
    // is less than the sum of per-run times).
    v.set("host_seconds", JsonValue::number(meta.wallSeconds));
    v.set("sim_cycles", JsonValue::number(total_cycles));
    v.set("cycles_per_host_second",
          JsonValue::number(
              cyclesPerHostSecond(total_cycles, meta.wallSeconds)));
    v.set("runs", std::move(runs));
    return v;
}

bool
writeThroughputFile(const std::string &path, const ArtifactMeta &meta,
                    const std::vector<RunOutcome> &outcomes)
{
    return writeTextFile(path, throughputToJson(meta, outcomes).dump(2));
}

void
stripWallClock(JsonValue &v)
{
    switch (v.kind()) {
      case JsonValue::Kind::Object: {
        // Throughput fields are wall-derived AND schema additions:
        // removing (not zeroing) them lets an artifact written before
        // the field existed compare equivalent to one written after.
        auto &members = v.members();
        std::erase_if(members, [](const auto &m) {
            return m.first == "cycles_per_host_second" ||
                   m.first == "host_seconds";
        });
        for (auto &[key, member] : members) {
            if (key == "wall_seconds")
                member = JsonValue::number(std::uint64_t(0));
            else
                stripWallClock(member);
        }
        break;
      }
      case JsonValue::Kind::Array:
        for (auto &item : v.items())
            stripWallClock(item);
        break;
      default:
        break;
    }
}

namespace
{

/** First path at which two canonicalised values differ. */
std::string
firstDifference(const JsonValue &a, const JsonValue &b,
                const std::string &path)
{
    if (a.kind() != b.kind())
        return path + ": kind differs";
    switch (a.kind()) {
      case JsonValue::Kind::Object: {
          const auto &am = a.members();
          const auto &bm = b.members();
          for (std::size_t i = 0; i < std::min(am.size(), bm.size());
               ++i) {
              if (am[i].first != bm[i].first)
                  return format("%s: key %zu is \"%s\" vs \"%s\"",
                                path.c_str(), i, am[i].first.c_str(),
                                bm[i].first.c_str());
              std::string d =
                  firstDifference(am[i].second, bm[i].second,
                                  path + "." + am[i].first);
              if (!d.empty())
                  return d;
          }
          if (am.size() != bm.size())
              return format("%s: %zu vs %zu members", path.c_str(),
                            am.size(), bm.size());
          return "";
      }
      case JsonValue::Kind::Array: {
          const auto &ai = a.items();
          const auto &bi = b.items();
          for (std::size_t i = 0; i < std::min(ai.size(), bi.size());
               ++i) {
              std::string d = firstDifference(
                  ai[i], bi[i], format("%s[%zu]", path.c_str(), i));
              if (!d.empty())
                  return d;
          }
          if (ai.size() != bi.size())
              return format("%s: %zu vs %zu items", path.c_str(),
                            ai.size(), bi.size());
          return "";
      }
      default:
        if (!(a == b))
            return path + ": value differs";
        return "";
    }
}

} // anonymous namespace

bool
artifactsEquivalent(const std::string &a_text,
                    const std::string &b_text, std::string *why)
{
    JsonValue a, b;
    try {
        a = JsonValue::parse(a_text);
        b = JsonValue::parse(b_text);
    } catch (const std::exception &e) {
        if (why)
            *why = e.what();
        return false;
    }
    // The batch header legitimately differs in "jobs" and "shards"
    // (neither may change results); everything else outside wall-clock
    // must agree. "shards" is ERASED rather than zeroed so artifacts
    // written before the field existed still compare equivalent.
    stripWallClock(a);
    stripWallClock(b);
    for (JsonValue *v : {&a, &b}) {
        if (v->kind() != JsonValue::Kind::Object)
            continue;
        if (auto *jobs = v->find("jobs"))
            *jobs = JsonValue::number(std::uint64_t(0));
        std::erase_if(v->members(), [](const auto &m) {
            return m.first == "shards";
        });
    }

    const std::string diff = firstDifference(a, b, "$");
    if (diff.empty())
        return true;
    if (why)
        *why = diff;
    return false;
}

} // namespace vic
