/**
 * @file
 * Parallel experiment engine.
 *
 * Takes a declarative list of RunSpecs and executes them on a
 * fixed-size pool of worker threads. Isolation is by construction:
 * every run builds its own Machine, ConsistencyOracle, Kernel and
 * Workload inside the worker, and the only shared state is the
 * next-spec index (an atomic) and each run's private outcome slot.
 * Results are collected in SPEC ORDER regardless of completion
 * order, so a batch's outcome — and the JSON artifact derived from
 * it — is byte-identical between --jobs 1 and --jobs N (excluding
 * wall-clock fields).
 */

#ifndef VIC_EXPERIMENT_EXPERIMENT_ENGINE_HH
#define VIC_EXPERIMENT_EXPERIMENT_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/run_spec.hh"

namespace vic
{

class ExperimentEngine
{
  public:
    struct Options
    {
        /** Worker threads; values < 2 (or a single spec) run the
         *  batch serially on the calling thread. */
        unsigned jobs = 1;

        /** Host threads for the replicas INSIDE one run (specs with
         *  replicaCount > 1; see shard_runner.hh). Orthogonal to
         *  @c jobs: jobs fans out across runs, shards fans out within
         *  a run. Values < 2 run each run's replicas serially —
         *  merged output is identical either way. */
        unsigned shards = 1;

        /** Print one progress line per completed run to stderr. */
        bool echoProgress = false;
    };

    /**
     * Execute every spec and return outcomes in spec order. A spec
     * whose execution throws yields an outcome with ok == false and
     * the exception message; the rest of the batch is unaffected.
     */
    std::vector<RunOutcome> run(const std::vector<RunSpec> &specs,
                                const Options &options) const;

    /** Serial convenience overload (jobs = 1, no progress echo). */
    std::vector<RunOutcome>
    run(const std::vector<RunSpec> &specs) const
    {
        return run(specs, Options());
    }

    /** Execute one spec; replicas (replicaCount > 1) use up to
     *  @p shards host threads, merged deterministically. */
    static RunOutcome runOne(const RunSpec &spec, unsigned shards = 1);

    /** SplitMix64 mix step (public for tests and seed derivation). */
    static std::uint64_t splitmix64(std::uint64_t x);

    /**
     * The seed a (base, replica) pair actually runs with: replica 0
     * is the base seed verbatim (preserving every workload's
     * calibrated stream), replica N > 0 is a SplitMix64 expansion —
     * unrelated across replicas, identical across schedules.
     */
    static std::uint64_t effectiveSeed(std::uint64_t base,
                                       std::uint32_t replica);

    /**
     * Filter semantics shared by vic_bench and the standalone bench
     * binaries: @p filter is a comma-separated list of substrings; an
     * id matches when the filter is empty or at least one substring
     * occurs in it.
     */
    static bool matchesFilter(const std::string &id,
                              const std::string &filter);
};

} // namespace vic

#endif // VIC_EXPERIMENT_EXPERIMENT_ENGINE_HH
