/**
 * @file
 * Declarative description of one experiment run, and its collected
 * outcome.
 *
 * The paper's evaluation is a sweep of (workload x policy x machine
 * configuration) executions. A RunSpec captures everything one such
 * execution depends on — and nothing else: the workload factory
 * builds a FRESH workload instance for every execution, the machine
 * is constructed inside the run, and the random stream is a function
 * of (seed, replica) alone. That is what lets the ExperimentEngine
 * fan runs out across threads while guaranteeing each run is
 * bit-identical to its serial counterpart.
 */

#ifndef VIC_EXPERIMENT_RUN_SPEC_HH
#define VIC_EXPERIMENT_RUN_SPEC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/policy_config.hh"
#include "machine/machine_params.hh"
#include "os/os_params.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

namespace vic
{

struct RunSpec
{
    /** Unique id within a batch, conventionally
     *  "<suite>/<workload>/<policy>[/rN]". Filters match against it. */
    std::string id;

    /** Owning suite (used to group artifact entries and reports). */
    std::string suite;

    /** Builds a fresh workload instance. Called once per execution,
     *  inside the run, so no state leaks between runs or threads. */
    std::function<std::unique_ptr<Workload>()> make;

    PolicyConfig policy;
    MachineParams machine = MachineParams::hp720();
    OsParams os = {};

    /** Base seed of the workload's random stream. Suites default it
     *  to the workload's calibrated seed so identical streams run
     *  under every policy (the paper's methodology). */
    std::uint64_t seed = 0;

    /** Replica index: replica 0 uses @c seed verbatim; replica N > 0
     *  uses a SplitMix64 expansion of (seed, N), giving unrelated but
     *  reproducible streams for repeated runs of one workload. */
    std::uint32_t replica = 0;

    /** Replicas executed INSIDE this run: indices @c replica ..
     *  @c replica + replicaCount - 1, results merged in index order
     *  (shard_runner.hh). 1 — the default — is the classic
     *  single-simulation run; > 1 makes the run shardable across host
     *  threads via --shards without changing its merged artifact. */
    std::uint32_t replicaCount = 1;

    /** When nonzero, record this many most-recent consistency events
     *  into the result's trace tail. */
    std::size_t traceEvents = 0;
};

/** Everything collected from executing one RunSpec. */
struct RunOutcome
{
    // Identification (copied from the spec; the artifact and reports
    // must not need the factory-bearing spec again).
    std::string id;
    std::string suite;
    std::string workload;
    std::string policy;
    std::uint64_t seed = 0;
    std::uint32_t replica = 0;
    /** Replicas merged into this outcome (RunSpec::replicaCount). */
    std::uint32_t replicaCount = 1;
    /** The SplitMix64-expanded seed the workload actually ran with
     *  (first replica's seed when replicaCount > 1). */
    std::uint64_t effectiveSeed = 0;

    /** False when the run threw; @c error carries the message and
     *  @c result is meaningless. A failed run never tears down the
     *  batch — the engine reports it per-run. */
    bool ok = false;
    std::string error;

    RunResult result;

    /** Host wall-clock seconds for this run. Excluded from artifact
     *  determinism comparisons. */
    double wallSeconds = 0;
};

} // namespace vic

#endif // VIC_EXPERIMENT_RUN_SPEC_HH
