/**
 * @file
 * Executable abstract model of the consistency specification.
 *
 * Tracks the Table 2 state of every cache page (colour) of ONE cache
 * for ONE physical page, and applies the six memory-system events to
 * it. It knows nothing about data, protections or the concrete
 * mapped/stale/dirty encoding — it is the specification that the
 * implementation (LazyPmap's CacheControl) is checked against:
 *
 *  - the model-check test enumerates every (state, op) pair and
 *    compares against the hand-written Table 2;
 *  - property tests run random operation sequences through both this
 *    executor and the real pmap and require the concrete encoded state
 *    to refine the abstract one;
 *  - the table2_transitions bench prints the table in the paper's
 *    layout.
 */

#ifndef VIC_CORE_SPEC_EXECUTOR_HH
#define VIC_CORE_SPEC_EXECUTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "core/cache_page_state.hh"

namespace vic
{

class SpecExecutor
{
  public:
    /** Model a physical page across @p num_colours cache pages, all
     *  initially empty (the power-up state). */
    explicit SpecExecutor(std::uint32_t num_colours);

    std::uint32_t numColours() const
    { return static_cast<std::uint32_t>(states.size()); }

    CachePageState state(CachePageId colour) const;

    /** Force a state (tests only). */
    void setState(CachePageId colour, CachePageState s);

    /** A cache control operation the spec required while applying an
     *  event. */
    struct AppliedOp
    {
        CachePageId colour;
        RequiredOp op;

        bool operator==(const AppliedOp &) const = default;
    };

    /**
     * Apply one event. @p target is the cache page selected by the
     * target virtual address; it must be provided for CPU accesses,
     * purge and flush, and must be absent for DMA events (which bypass
     * the cache and treat every colour alike).
     *
     * @return the purges/flushes the specification required, in the
     * order they must precede the event.
     */
    std::vector<AppliedOp> apply(MemOp op,
                                 std::optional<CachePageId> target);

    /**
     * Model invariant (Section 3.2's correctness argument): at most one
     * colour is Dirty, and while one is, every other colour is Empty or
     * Stale. @return true iff it holds.
     */
    bool invariantHolds() const;

    /** Colour currently Dirty, if any. */
    std::optional<CachePageId> dirtyColour() const;

  private:
    std::vector<CachePageState> states;
};

} // namespace vic

#endif // VIC_CORE_SPEC_EXECUTOR_HH
