/**
 * @file
 * The paper's consistency algorithm (Figure 1) as a pmap strategy.
 *
 * State is kept per (physical page, cache page) in the Table 3
 * encoding (PhysPageInfo). All consistency work — flushing the unique
 * dirty cache page, purging stale cache pages — is delayed until an
 * operation would otherwise observe or destroy inconsistent data, and
 * skipped entirely when virtual addresses align. Ordinary page
 * protections implement the state transitions: a cache page whose
 * state makes an access unsafe has that access revoked in every
 * mapping's page-table entry, the access traps, and the fault handler
 * runs CacheControl.
 *
 * Extensions relative to the paper's single-cache pseudo-code, per its
 * Section 4.1 discussion of the real implementation:
 *
 *  - split caches: independent mapped/stale vectors for the
 *    instruction cache; instruction fetches never align with data
 *    references, so an ifetch always forces the flush of a dirty data
 *    cache page (the "data to instruction space copy" path);
 *  - the page-modified-bit optimisation: when exactly one data cache
 *    page is mapped (and the page has never been fetched for
 *    execution since last written), writes are permitted without
 *    faulting and cache_dirty is recovered from the hardware modified
 *    bit at the next CacheControl invocation;
 *  - the will_overwrite / need_data semantic hints (configs F and E).
 */

#ifndef VIC_CORE_LAZY_PMAP_HH
#define VIC_CORE_LAZY_PMAP_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/phys_page_info.hh"
#include "core/pmap.hh"

namespace vic
{

class LazyPmap : public Pmap
{
  public:
    LazyPmap(Machine &m, const PolicyConfig &policy_config);

    /** One cache operation the Figure 1 algorithm decided on. */
    struct PlannedOp
    {
        CacheKind cache = CacheKind::Data;
        RequiredOp op = RequiredOp::None;
        CachePageId colour = 0;

        bool operator==(const PlannedOp &) const = default;
    };

    /**
     * The CacheControl decision procedure (Figure 1, stanzas 2-5) as a
     * pure function of the Table 3 state: advances @p dstate /
     * @p istate to the post-operation encoding and returns the cache
     * flushes/purges that must precede the operation, in order.
     *
     * Shared between the concrete cacheControl() and the static
     * protocol verifier (vic::verify), so the abstract model cannot
     * drift from the implementation.
     */
    static std::vector<PlannedOp> planCacheControl(
        CacheStateVector &dstate, CacheStateVector &istate, MemOp op,
        std::optional<CachePageId> d_target,
        std::optional<CachePageId> i_target, AccessType access,
        bool will_overwrite, bool need_data, bool use_need_data,
        bool use_will_overwrite);

    /**
     * The final-stanza protection rule as a pure function of the
     * Table 3 state: what one mapping of data colour @p d_colour /
     * instruction colour @p i_colour may do without trapping.
     */
    static Protection cacheStateProt(const CacheStateVector &dstate,
                                     const CacheStateVector &istate,
                                     CachePageId d_colour,
                                     CachePageId i_colour,
                                     bool use_modified_bit);

    void enter(SpaceVa va, FrameId frame, Protection vm_prot,
               AccessType access, const EnterHints &hints) override;
    void remove(SpaceVa va) override;
    void protect(SpaceVa va, Protection vm_prot) override;
    bool resolveConsistencyFault(SpaceVa va, AccessType access) override;
    void dmaRead(FrameId frame, bool need_data) override;
    void dmaWrite(FrameId frame) override;
    void frameFreed(FrameId frame) override;
    std::optional<CachePageId>
    preferredColour(FrameId frame) const override;
    std::vector<SpaceVa> mappingsOf(FrameId frame) const override;
    const char *kindName() const override { return "lazy"; }

    // --- introspection for tests and model checking ---

    /** Bookkeeping for @p frame; nullptr if the frame was never
     *  mapped. */
    const PhysPageInfo *info(FrameId frame) const;

    /** Decoded Table 3 data-cache state of (frame, colour); Empty for
     *  untouched frames. */
    CachePageState dataState(FrameId frame, CachePageId colour) const;

    /** Decoded instruction-cache state. */
    CachePageState instState(FrameId frame, CachePageId colour) const;

  private:
    std::uint32_t dColours;
    std::uint32_t iColours;
    std::unordered_map<FrameId, PhysPageInfo> pages;

    Counter &statSyncs;

    PhysPageInfo &getInfo(FrameId frame);

    /** Recover cache_dirty from hardware page-modified bits (the
     *  Section 4.1 optimisation). */
    void syncDirtyFromModifiedBits(PhysPageInfo &info);

    /**
     * The CacheControl algorithm (Figure 1). @p target is the target
     * virtual address for CPU operations (absent for DMA); @p access
     * distinguishes data references from instruction fetches;
     * @p will_overwrite and @p need_data are the semantic hints;
     * @p reason attributes any flushes/purges in the statistics.
     */
    void cacheControl(FrameId frame, PhysPageInfo &info, MemOp op,
                      std::optional<SpaceVa> target, AccessType access,
                      bool will_overwrite, bool need_data,
                      const char *reason);

    /** Cache-state-permitted protection for one mapping (the final
     *  stanza's per-mapping decision). */
    Protection cacheProtFor(const PhysPageInfo &info,
                            const VaMapping &m) const;

    /** Final stanza: reprogram every mapping's hardware protection. */
    void applyProtections(PhysPageInfo &info);
};

} // namespace vic

#endif // VIC_CORE_LAZY_PMAP_HH
