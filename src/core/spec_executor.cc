#include "core/spec_executor.hh"

#include "common/logging.hh"

namespace vic
{

SpecExecutor::SpecExecutor(std::uint32_t num_colours)
    : states(num_colours, CachePageState::Empty)
{
    vic_assert(num_colours > 0, "spec executor needs >= 1 colour");
}

CachePageState
SpecExecutor::state(CachePageId colour) const
{
    vic_assert(colour < states.size(), "colour %u out of range", colour);
    return states[colour];
}

void
SpecExecutor::setState(CachePageId colour, CachePageState s)
{
    vic_assert(colour < states.size(), "colour %u out of range", colour);
    states[colour] = s;
}

std::vector<SpecExecutor::AppliedOp>
SpecExecutor::apply(MemOp op, std::optional<CachePageId> target)
{
    const bool is_dma = op == MemOp::DmaRead || op == MemOp::DmaWrite;
    vic_assert(is_dma != target.has_value(),
               "%s %s a target colour", memOpName(op),
               is_dma ? "must not take" : "requires");

    std::vector<AppliedOp> applied;

    // Ops required on non-target lines happen before the event (e.g.
    // the flush of a dirty unaligned line before a CPU-read fills the
    // target), so collect them first.
    for (CachePageId c = 0; c < states.size(); ++c) {
        if (target && c == *target)
            continue;
        SpecTransition t = otherTransition(states[c], op);
        if (t.required != RequiredOp::None)
            applied.push_back({c, t.required});
        states[c] = t.next;
    }

    if (target) {
        SpecTransition t = targetTransition(states[*target], op);
        if (t.required != RequiredOp::None)
            applied.push_back({*target, t.required});
        states[*target] = t.next;
    }

    return applied;
}

bool
SpecExecutor::invariantHolds() const
{
    std::uint32_t dirty = 0;
    std::uint32_t present = 0;
    for (auto s : states) {
        if (s == CachePageState::Dirty)
            ++dirty;
        if (s == CachePageState::Present)
            ++present;
    }
    if (dirty > 1)
        return false;
    if (dirty == 1 && present > 0)
        return false;
    return true;
}

std::optional<CachePageId>
SpecExecutor::dirtyColour() const
{
    for (CachePageId c = 0; c < states.size(); ++c) {
        if (states[c] == CachePageState::Dirty)
            return c;
    }
    return std::nullopt;
}

} // namespace vic
