#include "core/lazy_pmap.hh"

#include "common/logging.hh"

namespace vic
{

LazyPmap::LazyPmap(Machine &m, const PolicyConfig &policy_config)
    : Pmap(m, policy_config),
      dColours(m.dcache().geometry().numColours()),
      iColours(m.icache().geometry().numColours()),
      statSyncs(m.stats().counter("pmap.modified_bit_syncs"))
{
}

PhysPageInfo &
LazyPmap::getInfo(FrameId frame)
{
    auto it = pages.find(frame);
    if (it != pages.end())
        return it->second;
    return pages.emplace(frame, PhysPageInfo(dColours, iColours))
        .first->second;
}

const PhysPageInfo *
LazyPmap::info(FrameId frame) const
{
    auto it = pages.find(frame);
    return it == pages.end() ? nullptr : &it->second;
}

CachePageState
LazyPmap::dataState(FrameId frame, CachePageId colour) const
{
    const PhysPageInfo *pi = info(frame);
    return pi ? pi->dstate.decode(colour) : CachePageState::Empty;
}

CachePageState
LazyPmap::instState(FrameId frame, CachePageId colour) const
{
    const PhysPageInfo *pi = info(frame);
    return pi ? pi->istate.decode(colour) : CachePageState::Empty;
}

void
LazyPmap::syncDirtyFromModifiedBits(PhysPageInfo &info)
{
    for (auto &m : info.mappings) {
        if (mach.pageTable().clearModified(m.va)) {
            ++statSyncs;
            if (!info.dstate.cacheDirty) {
                // A write was permitted without a fault, which the
                // protection logic only allows while exactly one data
                // cache page is mapped.
                vic_assert(info.dstate.mapped.exactlyOne(),
                           "modified bit with %u mapped colours",
                           info.dstate.mapped.count());
                info.dstate.cacheDirty = true;
            }
        }
    }
}

Protection
LazyPmap::cacheStateProt(const CacheStateVector &d,
                         const CacheStateVector &i, CachePageId cd,
                         CachePageId ci, bool use_modified_bit)
{
    Protection p;

    // Reads are safe iff this mapping's data cache page is mapped and
    // not stale. (While some cache page is dirty it is the only mapped
    // one, so unaligned reads are automatically denied.)
    p.read = d.mapped.test(cd) && !d.stale.test(cd);

    // Instruction fetches fill the instruction cache from memory, so
    // they are additionally unsafe while ANY data cache page is dirty
    // (memory would be stale) — instructions never align with data.
    p.execute = i.mapped.test(ci) && !i.stale.test(ci) && !d.cacheDirty;

    // Writes are safe if the page is already dirty through this
    // aligned cache page, or — with the modified-bit optimisation — if
    // this is the unique mapped data cache page and the page has no
    // live instruction-cache presence to invalidate.
    const bool dirty_here = d.cacheDirty && d.mapped.test(cd);
    const bool modbit_ok = use_modified_bit && !d.cacheDirty &&
        d.mapped.test(cd) && !d.stale.test(cd) &&
        d.mapped.exactlyOne() && i.mapped.none();
    p.write = dirty_here || modbit_ok;

    return p;
}

Protection
LazyPmap::cacheProtFor(const PhysPageInfo &info, const VaMapping &m) const
{
    return cacheStateProt(info.dstate, info.istate, dColourOf(m.va.va),
                          iColourOf(m.va.va), cfg.useModifiedBit);
}

void
LazyPmap::applyProtections(PhysPageInfo &info)
{
    for (const auto &m : info.mappings)
        setHardwareProt(m.va, m.vmProt.intersect(cacheProtFor(info, m)));
}

std::vector<LazyPmap::PlannedOp>
LazyPmap::planCacheControl(CacheStateVector &dstate,
                           CacheStateVector &istate, MemOp op,
                           std::optional<CachePageId> d_target,
                           std::optional<CachePageId> i_target,
                           AccessType access, bool will_overwrite,
                           bool need_data, bool use_need_data,
                           bool use_will_overwrite)
{
    std::vector<PlannedOp> planned;
    const bool cpu_op = op == MemOp::CpuRead || op == MemOp::CpuWrite;

    // --- Stanza 2: displace the dirty data cache page unless the
    // operation is a data reference aligned with it. Instruction
    // fetches never align with data, so they always force this.
    if (dstate.cacheDirty) {
        const CachePageId w = dstate.dirtyColour();
        const bool aligned_data_ref =
            cpu_op && access != AccessType::IFetch && *d_target == w;
        if (!aligned_data_ref) {
            // A DMA-write overwrites memory anyway, so the dirty data
            // need only be purged; otherwise it is flushed unless the
            // caller said the data is dead and config E permits the
            // downgrade.
            const bool flush =
                op != MemOp::DmaWrite && (need_data || !use_need_data);
            planned.push_back(
                {CacheKind::Data,
                 flush ? RequiredOp::Flush : RequiredOp::Purge, w});
            dstate.cacheDirty = false;
            // A flushed (or purged) dirty line leaves the cache — on
            // this machine a flush writes back AND invalidates — so
            // the cache page's state is Empty. That holds under
            // DMA-read too: the paper's Table 2 keeps the page
            // Present there, but with an invalidating flush the
            // Present claim is wrong bookkeeping, and the necessity
            // analyzer proves it costs a redundant purge of the
            // (absent) page on its next differently-mapped use.
            dstate.mapped.reset(w);
        }
    }

    // --- Stanza 3: the target cache page must not be stale.
    if (cpu_op) {
        if (access == AccessType::IFetch) {
            if (istate.stale.test(*i_target)) {
                planned.push_back({CacheKind::Instruction,
                                   RequiredOp::Purge, *i_target});
                istate.stale.reset(*i_target);
            }
        } else if (dstate.stale.test(*d_target)) {
            // Config F: a page about to be entirely overwritten leaves
            // the stale state without the purge.
            if (!(will_overwrite && use_will_overwrite))
                planned.push_back(
                    {CacheKind::Data, RequiredOp::Purge, *d_target});
            dstate.stale.reset(*d_target);
        }
    }

    // --- Stanza 4: writes into the memory system make every mapped
    // cache page (in both caches) stale and unmapped; a CPU write then
    // re-maps its own cache page as the unique dirty one.
    if (op == MemOp::DmaWrite || op == MemOp::CpuWrite) {
        dstate.stale.orWith(dstate.mapped);
        dstate.mapped.clearAll();
        istate.stale.orWith(istate.mapped);
        istate.mapped.clearAll();
        if (op == MemOp::CpuWrite) {
            dstate.stale.reset(*d_target);
            dstate.mapped.set(*d_target);
            dstate.cacheDirty = true;
        }
    }

    // --- Stanza 5: a read marks the target cache page mapped.
    if (op == MemOp::CpuRead) {
        if (access == AccessType::IFetch)
            istate.mapped.set(*i_target);
        else
            dstate.mapped.set(*d_target);
    }

    return planned;
}

void
LazyPmap::cacheControl(FrameId frame, PhysPageInfo &info, MemOp op,
                       std::optional<SpaceVa> target, AccessType access,
                       bool will_overwrite, bool need_data,
                       const char *reason)
{
    mach.clock().advance(mach.params().pmapOverheadCycles);

    if (cfg.useModifiedBit)
        syncDirtyFromModifiedBits(info);

    const bool cpu_op = op == MemOp::CpuRead || op == MemOp::CpuWrite;
    vic_assert(cpu_op == target.has_value(),
               "cacheControl: %s and target mismatch", memOpName(op));
    vic_assert(!(op == MemOp::CpuWrite && access == AccessType::IFetch),
               "instruction fetches cannot write");

    std::optional<CachePageId> cd, ci;
    if (target) {
        cd = dColourOf(target->va);
        ci = iColourOf(target->va);
    }

    // Stanzas 2-5: decide state transitions and the required cache
    // operations, then perform the latter on the real caches. The
    // planned operations depend only on the pre-operation state, so
    // executing them after the full plan is equivalent to the
    // interleaved form.
    const std::vector<PlannedOp> planned = planCacheControl(
        info.dstate, info.istate, op, cd, ci, access, will_overwrite,
        need_data, cfg.useNeedData, cfg.useWillOverwrite);

    for (const PlannedOp &p : planned) {
        if (p.cache == CacheKind::Instruction)
            purgeInstPage(frame, p.colour, reason);
        else if (p.op == RequiredOp::Flush)
            flushDataPage(frame, p.colour, reason);
        else
            purgeDataPage(frame, p.colour, reason);
    }

    // --- Stanza 6: reprogram protections so no inconsistency can be
    // perceived and every future transition traps.
    applyProtections(info);

    info.dstate.checkInvariants();
    info.istate.checkInvariants();
}

void
LazyPmap::enter(SpaceVa va, FrameId frame, Protection vm_prot,
                AccessType access, const EnterHints &hints)
{
    va.va = mach.pageTable().pageBase(va.va);
    vic_assert(mach.pageTable().lookup(va) == nullptr,
               "enter over live mapping space=%u va=%llx", va.space,
               (unsigned long long)va.va.value);

    PhysPageInfo &pi = getInfo(frame);
    setTranslation(va, frame, Protection::none());
    pi.addMapping(va, vm_prot);

    const MemOp op = isWrite(access) ? MemOp::CpuWrite : MemOp::CpuRead;
    const char *reason =
        access == AccessType::IFetch ? "ifetch" : "newmap";
    cacheControl(frame, pi, op, va, access, hints.willOverwrite,
                 hints.needData, reason);
}

void
LazyPmap::remove(SpaceVa va)
{
    va.va = mach.pageTable().pageBase(va.va);
    const PageTableEntry *pte = mach.pageTable().lookup(va);
    if (!pte)
        return;
    PhysPageInfo &pi = getInfo(pte->frame);

    // Capture dirtiness carried by the hardware modified bit before
    // the entry disappears.
    if (cfg.useModifiedBit)
        syncDirtyFromModifiedBits(pi);

    dropTranslation(va);
    bool removed = pi.removeMapping(va);
    vic_assert(removed, "mapping list out of sync with page table");
    // Lazy unmap: no cache operation. The consistency state persists
    // on the frame and is reconciled when the frame is next touched.
}

void
LazyPmap::protect(SpaceVa va, Protection vm_prot)
{
    va.va = mach.pageTable().pageBase(va.va);
    const PageTableEntry *pte = mach.pageTable().lookup(va);
    vic_assert(pte != nullptr, "protect of unmapped page");
    PhysPageInfo &pi = getInfo(pte->frame);

    if (cfg.useModifiedBit)
        syncDirtyFromModifiedBits(pi);

    VaMapping *m = pi.findMapping(va);
    vic_assert(m != nullptr, "mapping list out of sync with page table");
    m->vmProt = vm_prot;
    setHardwareProt(va, vm_prot.intersect(cacheProtFor(pi, *m)));
}

bool
LazyPmap::resolveConsistencyFault(SpaceVa va, AccessType access)
{
    va.va = mach.pageTable().pageBase(va.va);
    const PageTableEntry *pte = mach.pageTable().lookup(va);
    if (!pte)
        return false;  // a mapping fault, not ours

    PhysPageInfo &pi = getInfo(pte->frame);
    VaMapping *m = pi.findMapping(va);
    vic_assert(m != nullptr, "mapping list out of sync with page table");

    if (!protPermits(m->vmProt, access))
        return false;  // genuine VM-level denial (e.g. copy-on-write)

    const MemOp op = isWrite(access) ? MemOp::CpuWrite : MemOp::CpuRead;
    const char *reason =
        access == AccessType::IFetch ? "ifetch" : "fault";
    cacheControl(pte->frame, pi, op, va, access, false, true, reason);

    vic_assert(protPermits(mach.pageTable().lookup(va)->prot, access),
               "consistency fault did not enable the access");
    return true;
}

void
LazyPmap::dmaRead(FrameId frame, bool need_data)
{
    auto it = pages.find(frame);
    if (it == pages.end())
        return;  // never cached: memory is trivially current
    cacheControl(frame, it->second, MemOp::DmaRead, std::nullopt,
                 AccessType::Load, false, need_data, "dma_read");
}

void
LazyPmap::dmaWrite(FrameId frame)
{
    // Even a never-mapped frame gets state here: after the device
    // write, nothing is cached, which the default (empty) state
    // already encodes — so absence is fine too.
    auto it = pages.find(frame);
    if (it == pages.end())
        return;
    cacheControl(frame, it->second, MemOp::DmaWrite, std::nullopt,
                 AccessType::Load, false, false, "dma_write");
}

void
LazyPmap::frameFreed(FrameId frame)
{
    auto it = pages.find(frame);
    if (it == pages.end())
        return;
    vic_assert(it->second.mappings.empty(),
               "frame %llu freed with live mappings",
               (unsigned long long)frame);
    // Keep the cache state: if the frame is reused at an aligning
    // address no consistency work will be needed (the lazy win).
}

std::vector<SpaceVa>
LazyPmap::mappingsOf(FrameId frame) const
{
    std::vector<SpaceVa> out;
    auto it = pages.find(frame);
    if (it == pages.end())
        return out;
    for (const auto &m : it->second.mappings)
        out.push_back(m.va);
    return out;
}

std::optional<CachePageId>
LazyPmap::preferredColour(FrameId frame) const
{
    auto it = pages.find(frame);
    if (it == pages.end())
        return std::nullopt;
    const CacheStateVector &d = it->second.dstate;
    if (d.cacheDirty)
        return d.dirtyColour();
    if (d.mapped.any())
        return d.mapped.findFirst();
    if (d.stale.any()) {
        // Any non-stale colour avoids the purge; report the first so
        // the free list has a single representative.
        const std::uint32_t c = d.stale.findFirstClear();
        if (c < d.stale.size())
            return c;
    }
    return std::nullopt;
}

} // namespace vic
