/**
 * @file
 * Per-physical-page consistency bookkeeping (Section 4.1's data
 * structures and Table 3's encoding).
 *
 * For each resident physical page p the algorithm keeps, per cache:
 *
 *  - P[p].mapped — bit per cache page: which cache pages may contain
 *    data from p (set on CPU access through a virtual address of that
 *    colour);
 *  - P[p].stale  — bit per cache page: which cache pages may contain
 *    STALE data from p;
 *  - P[p].cache_dirty — p may be dirty in the (unique) mapped cache
 *    page (data cache only; the instruction cache is never dirty);
 *
 * plus the list of current virtual mappings of p. Table 3:
 *
 *      state    | mapped[c] | stale[c] | cache_dirty
 *      Empty    |   false   |  false   |     -
 *      Present  |   true    |  false   |   false
 *      Dirty    |   true    |  false   |   true
 *      Stale    |   false   |  true    |     -
 */

#ifndef VIC_CORE_PHYS_PAGE_INFO_HH
#define VIC_CORE_PHYS_PAGE_INFO_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvector.hh"
#include "common/types.hh"
#include "core/cache_page_state.hh"

namespace vic
{

/** The mapped/stale/dirty encoding for one physical page in one
 *  cache. */
class CacheStateVector
{
  public:
    CacheStateVector() = default;

    /** @param num_colours number of cache pages in this cache. */
    explicit CacheStateVector(std::uint32_t num_colours);

    std::uint32_t numColours() const { return mapped.size(); }

    BitVector mapped;
    BitVector stale;
    bool cacheDirty = false;

    /** Decode the Table 3 state of cache page @p colour. */
    CachePageState decode(CachePageId colour) const;

    /** The unique mapped cache page while cacheDirty is set — the
     *  paper's find_mapped_cache_page(). Must not be called unless
     *  cacheDirty. */
    CachePageId dirtyColour() const;

    /** Check the encoding invariants: mapped and stale are disjoint,
     *  and cacheDirty implies exactly one mapped bit. Panics on
     *  violation. */
    void checkInvariants() const;

    /** Reset to the all-empty (power-up / freshly-cleaned) state. */
    void clear();
};

/** One virtual mapping of a physical page. */
struct VaMapping
{
    SpaceVa va;           ///< page-aligned (space, virtual address)
    Protection vmProt;    ///< what the VM layer allows, before the
                          ///< cache state further restricts it
};

/** Everything the machine-dependent layer knows about one physical
 *  page. */
class PhysPageInfo
{
  public:
    PhysPageInfo() = default;

    /** @param d_colours data-cache colour count
     *  @param i_colours instruction-cache colour count */
    PhysPageInfo(std::uint32_t d_colours, std::uint32_t i_colours);

    std::vector<VaMapping> mappings;
    CacheStateVector dstate;  ///< data-cache consistency state
    CacheStateVector istate;  ///< instruction-cache consistency state

    /** Find the mapping for @p va; nullptr if absent. */
    VaMapping *findMapping(SpaceVa va);
    const VaMapping *findMapping(SpaceVa va) const;

    /** Add a mapping (must not already exist). */
    void addMapping(SpaceVa va, Protection vm_prot);

    /** Remove a mapping. @return true iff it existed. */
    bool removeMapping(SpaceVa va);

    bool hasMappings() const { return !mappings.empty(); }
};

} // namespace vic

#endif // VIC_CORE_PHYS_PAGE_INFO_HH
