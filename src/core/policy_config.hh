/**
 * @file
 * Consistency-management policy configuration.
 *
 * The paper evaluates six cumulative kernel configurations (Table 4):
 *
 *   A  "old": eager, alignment-oblivious management that assumes a
 *      physically indexed cache (Section 2.5)
 *   B  +lazy unmap: delay flush/purge until a virtual address is reused
 *   C  +align pages: kernel selects aligning virtual addresses for
 *      multiply mapped pages (IPC, Unix-server shared pages)
 *   D  +aligned prepare: copy/zero-fill through a virtual address that
 *      aligns with the page's ultimate mapping
 *   E  +need data: purge instead of flush when dirty data is dead
 *   F  +will overwrite: skip the purge when the destination cache page
 *      is about to be overwritten entirely
 *
 * and compares against four other systems (Table 5): Utah, Tut, Apollo
 * and Sun. All are expressed as instances of this configuration
 * struct; the pmap strategy (classic eager vs lazy state-machine) plus
 * OS-level address-selection flags reproduce each system's behaviour.
 */

#ifndef VIC_CORE_POLICY_CONFIG_HH
#define VIC_CORE_POLICY_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/free_page_list.hh"

namespace vic
{

/** Which machine-dependent (pmap) strategy manages the cache. */
enum class PmapKind : std::uint8_t
{
    /** Case-by-case eager management without explicit cache-page
     *  state: break aliases on write, clean the cache when mappings
     *  are broken (the "old" system, Utah/Apollo/Sun style). */
    Classic,
    /** The paper's contribution: cache-page state machine with lazy,
     *  delayed consistency operations (Figure 1). */
    Lazy,
};

struct PolicyConfig
{
    std::string name = "unnamed";

    PmapKind pmapKind = PmapKind::Lazy;

    // --- Classic pmap options ---
    /** Flush/purge the cache page whenever a mapping is removed
     *  (Utah/Apollo/Sun). When false with Classic, consistency work is
     *  delayed until the frame is remapped (Tut's lazy unmap). */
    bool cleanOnUnmap = true;
    /** Track only the frame's last virtual address, not its cache
     *  page: on remap, skip consistency work only if the new VA equals
     *  the old one (Tut). When false, an aligned (same-colour) remap
     *  also skips the work. */
    bool equalVaOnly = false;
    /** Break (and clean) even aligned aliases on write. Models the Sun
     *  system, which supports arbitrary aliases only by making them
     *  uncacheable; we approximate "uncacheable" by allowing at most
     *  one usable mapping at a time. */
    bool breakAlignedAliases = false;
    /** TESTING ONLY: skip alias handling and unmap cleaning entirely —
     *  manage the virtually indexed cache as if it were physically
     *  indexed with no compensation. A machine run under this policy
     *  MUST produce oracle violations on aliasing workloads; the tests
     *  use it to prove the simulator actually reproduces the failure
     *  modes the paper describes (non-vacuity of the green results). */
    bool brokenNoConsistency = false;

    // --- Lazy pmap options ---
    /** Replace the flush of a dead dirty page by a purge (config E). */
    bool useNeedData = false;
    /** Elide the purge of a stale page that will be completely
     *  overwritten (config F). */
    bool useWillOverwrite = false;
    /** Infer cache_dirty from the hardware page-modified bit when one
     *  cache page is mapped, instead of write-protecting to catch the
     *  first store (Section 4.1 optimisation). */
    bool useModifiedBit = true;

    // --- OS-level address selection ---
    /** IPC page transfers pick a destination address that aligns with
     *  the source (config C). */
    bool alignIpc = false;
    /** Unix-server shared pages allocated at kernel-chosen aligning
     *  addresses instead of fixed ones (config C). */
    bool alignSharedPages = false;
    /** Page preparation (copy/zero-fill) goes through a kernel address
     *  aligned with the page's ultimate mapping (config D). */
    bool alignedPrepare = false;
    /** Align text (instruction) pages only — Tut aligns program text
     *  but nothing else. */
    bool alignTextOnly = false;

    /** Free page list organisation (ablation A2; the paper's measured
     *  systems all use a single list). */
    FreePageList::Organisation freeListOrg =
        FreePageList::Organisation::Single;

    // --- Named configurations ---
    static PolicyConfig configA();
    static PolicyConfig configB();
    static PolicyConfig configC();
    static PolicyConfig configD();
    static PolicyConfig configE();
    static PolicyConfig configF();

    /** The six Table 4 configurations, in order. */
    static std::vector<PolicyConfig> table4Sweep();

    // --- Related-work systems (Table 5) ---
    static PolicyConfig cmu();    ///< this paper (== configF)
    static PolicyConfig utah();   ///< eager Mach (== configA)
    static PolicyConfig tut();    ///< HP Tut: per-VA state, lazy unmap
    static PolicyConfig apollo(); ///< OSF/1: eager clean on unmap
    static PolicyConfig sun();    ///< 4.2BSD Sun-3: constrained aliases

    /** The five Table 5 systems, in the paper's order. */
    static std::vector<PolicyConfig> table5Systems();

    /** The deliberately unsound policy (testing only). */
    static PolicyConfig broken();

    /**
     * The hardware-coherent "no software ops" policy: the pmap issues
     * no consistency flushes or purges at all, because the machine it
     * pairs with resolves every failure mode in hardware — a MESI bus
     * between the CPUs' caches, reverse-lookup synonym self-snoops,
     * instruction caches on the bus, and snooping DMA. Only sound on a
     * machine with all of synonymCoherence + ifetchCoherence +
     * dmaSnoops set (the head-to-head bench constructs exactly that);
     * on the default machine it behaves like broken().
     */
    static PolicyConfig hardware();
};

} // namespace vic

#endif // VIC_CORE_POLICY_CONFIG_HH
