/**
 * @file
 * Eager, case-by-case consistency management — the "old" system of
 * Section 2.5 and the related-work systems of Table 5.
 *
 * No explicit cache-page state is kept. Instead:
 *
 *  - on a write to an aliased physical page, all other mappings are
 *    broken (and their cache pages cleaned);
 *  - on a read that creates an unaligned alias, any writable mapping
 *    is broken and the new mapping is installed read-only;
 *  - whenever a mapping is broken the page is removed from the cache
 *    with a flush (if dirty) or a purge (cleanOnUnmap, the
 *    Utah/Apollo/Sun behaviour), or — in the Tut variant — the
 *    frame's cache residue is remembered and cleaned when the frame
 *    is remapped at a non-matching address (equal-address-only reuse).
 *
 * Compared with the paper's lazy state machine this performs strictly
 * more cache operations; Table 1/Table 4/Table 5 quantify the gap.
 */

#ifndef VIC_CORE_CLASSIC_PMAP_HH
#define VIC_CORE_CLASSIC_PMAP_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/phys_page_info.hh"
#include "core/pmap.hh"

namespace vic
{

class ClassicPmap : public Pmap
{
  public:
    ClassicPmap(Machine &m, const PolicyConfig &policy_config);

    void enter(SpaceVa va, FrameId frame, Protection vm_prot,
               AccessType access, const EnterHints &hints) override;
    void remove(SpaceVa va) override;
    void protect(SpaceVa va, Protection vm_prot) override;
    bool resolveConsistencyFault(SpaceVa va, AccessType access) override;
    void dmaRead(FrameId frame, bool need_data) override;
    void dmaWrite(FrameId frame) override;
    void frameFreed(FrameId frame) override;
    std::optional<CachePageId>
    preferredColour(FrameId frame) const override;
    std::vector<SpaceVa> mappingsOf(FrameId frame) const override;
    const char *kindName() const override { return "classic"; }

  private:
    /** What the frame may have left in the cache after its mappings
     *  were (lazily) removed — Tut-style per-virtual-address state. */
    struct Residue
    {
        SpaceVa va;        ///< address the frame was last mapped at
        bool dirty = false;
        bool exec = false; ///< had execute permission (I-cache residue)
    };

    struct FrameMeta
    {
        std::vector<VaMapping> mappings;
        std::optional<Residue> residue;
        /** Write-xor-execute mode: without per-page stale state the
         *  eager strategy cannot tell whether the instruction cache
         *  is current, so a frame is either writable (no mapping may
         *  execute) or executable (no mapping may write); the fault
         *  on a mode switch performs the data-cache flush and
         *  instruction-cache purge. */
        bool execMode = false;
    };

    std::unordered_map<FrameId, FrameMeta> frames;

    FrameMeta &getMeta(FrameId frame);
    FrameId frameOf(SpaceVa va) const;

    /** Remove @p frame's residue from the cache (flush if dirty). */
    void cleanResidue(FrameId frame, FrameMeta &meta, const char *reason,
                      bool base_modified = false);

    /** Break one existing mapping: clean its cache pages and drop the
     *  translation. */
    void breakMapping(FrameId frame, FrameMeta &meta, const VaMapping &m,
                      const char *reason);

    /** Clean the cache pages reachable through mapping @p m. */
    void cleanThroughMapping(FrameId frame, const VaMapping &m,
                             bool flush_dirty, const char *reason);

    /** @return true iff data-cache colour @p colour may hold dirty
     *  data of the frame: @p base_modified (the bit of a mapping
     *  being dropped) or any live aligned mapping's modified bit. */
    bool colourPossiblyDirty(const FrameMeta &meta, CachePageId colour,
                             bool base_modified) const;

    /** Switch the frame to execute mode: flush every possibly-dirty
     *  data cache colour, purge the requesting mapping's instruction
     *  cache page, and revoke write from every mapping. */
    void enterExecMode(FrameId frame, FrameMeta &meta,
                       CachePageId icolour);

    /** Switch the frame to write mode: revoke execute from every
     *  mapping (the next ifetch pays the flush+purge). */
    void enterWriteMode(FrameMeta &meta);

    /** @return true iff @p a and @p b conflict (occupy different data
     *  cache pages, or the policy breaks even aligned aliases). */
    bool conflicts(VirtAddr a, VirtAddr b) const;
};

} // namespace vic

#endif // VIC_CORE_CLASSIC_PMAP_HH
