#include "core/classic_pmap.hh"

#include "common/logging.hh"

namespace vic
{

ClassicPmap::ClassicPmap(Machine &m, const PolicyConfig &policy_config)
    : Pmap(m, policy_config)
{
}

ClassicPmap::FrameMeta &
ClassicPmap::getMeta(FrameId frame)
{
    return frames[frame];
}

bool
ClassicPmap::conflicts(VirtAddr a, VirtAddr b) const
{
    if (cfg.breakAlignedAliases)
        return true;
    return !mach.dcache().geometry().aligned(a, b);
}

void
ClassicPmap::cleanResidue(FrameId frame, FrameMeta &meta,
                          const char *reason, bool base_modified)
{
    if (!meta.residue)
        return;
    const Residue &r = *meta.residue;
    // The residue's cache page may also carry dirt written through a
    // live aligned sibling mapping (whose modified bit is still live),
    // or through the mapping being removed right now (@p
    // base_modified). Purging would destroy that data, so flush.
    const bool dirty = r.dirty ||
        colourPossiblyDirty(meta, dColourOf(r.va.va), base_modified);
    if (dirty)
        flushDataPage(frame, dColourOf(r.va.va), reason);
    else
        purgeDataPage(frame, dColourOf(r.va.va), reason);
    if (r.exec)
        purgeInstPage(frame, iColourOf(r.va.va), reason);
    meta.residue.reset();
}

bool
ClassicPmap::colourPossiblyDirty(const FrameMeta &meta,
                                 CachePageId colour,
                                 bool base_modified) const
{
    if (base_modified)
        return true;
    // The cache page is shared by every ALIGNED mapping of the frame:
    // data written through one sibling is dirty in the very lines a
    // purge through another sibling would discard. Any live aligned
    // mapping with its modified bit set makes the colour dirty.
    for (const auto &m : meta.mappings) {
        if (dColourOf(m.va.va) != colour)
            continue;
        const PageTableEntry *pte = mach.pageTable().lookup(m.va);
        if (pte && pte->modified)
            return true;
    }
    return false;
}

void
ClassicPmap::cleanThroughMapping(FrameId frame, const VaMapping &m,
                                 bool flush_dirty, const char *reason)
{
    if (flush_dirty)
        flushDataPage(frame, dColourOf(m.va.va), reason);
    else
        purgeDataPage(frame, dColourOf(m.va.va), reason);
    if (m.vmProt.execute)
        purgeInstPage(frame, iColourOf(m.va.va), reason);
}

void
ClassicPmap::enterExecMode(FrameId frame, FrameMeta &meta,
                           CachePageId icolour)
{
    // The newest data must reach memory before the instruction cache
    // fills from it: flush every colour a live mapping may have
    // dirtied (consuming the modified bits).
    std::vector<CachePageId> flushed;
    for (const auto &m : meta.mappings) {
        const CachePageId c = dColourOf(m.va.va);
        bool seen = false;
        for (CachePageId f : flushed)
            seen |= f == c;
        if (seen)
            continue;
        const bool modified = mach.pageTable().clearModified(m.va);
        if (colourPossiblyDirty(meta, c, modified)) {
            flushDataPage(frame, c, "ifetch");
            flushed.push_back(c);
        }
    }
    // A dirty residue (Tut) holds newest data in its cache page too,
    // and no live mapping's modified bit covers it.
    if (meta.residue && meta.residue->dirty) {
        flushDataPage(frame, dColourOf(meta.residue->va.va), "ifetch");
        meta.residue->dirty = false;
    }
    // Without stale state, assume the instruction cache copy is old.
    purgeInstPage(frame, icolour, "ifetch");

    // Revoke write everywhere; a later store faults into write mode.
    for (const auto &m : meta.mappings) {
        const PageTableEntry *pte = mach.pageTable().lookup(m.va);
        if (pte && pte->prot.write) {
            Protection p = pte->prot;
            p.write = false;
            setHardwareProt(m.va, p);
        }
    }
    meta.execMode = true;
}

void
ClassicPmap::enterWriteMode(FrameMeta &meta)
{
    for (const auto &m : meta.mappings) {
        const PageTableEntry *pte = mach.pageTable().lookup(m.va);
        if (pte && pte->prot.execute) {
            Protection p = pte->prot;
            p.execute = false;
            setHardwareProt(m.va, p);
        }
    }
    meta.execMode = false;
}

void
ClassicPmap::breakMapping(FrameId frame, FrameMeta &meta,
                          const VaMapping &m, const char *reason)
{
    const bool modified = dropTranslation(m.va);
    const bool dirty =
        colourPossiblyDirty(meta, dColourOf(m.va.va), modified);
    cleanThroughMapping(frame, m, dirty, reason);
    bool removed = false;
    for (auto &mapping : meta.mappings) {
        if (mapping.va == m.va) {
            mapping = meta.mappings.back();
            meta.mappings.pop_back();
            removed = true;
            break;
        }
    }
    vic_assert(removed, "breakMapping: mapping not found");
}

void
ClassicPmap::enter(SpaceVa va, FrameId frame, Protection vm_prot,
                   AccessType access, const EnterHints &hints)
{
    (void)hints;  // the classic strategies have no semantic hints
    mach.clock().advance(mach.params().pmapOverheadCycles);
    va.va = mach.pageTable().pageBase(va.va);
    vic_assert(mach.pageTable().lookup(va) == nullptr,
               "enter over live mapping space=%u va=%llx", va.space,
               (unsigned long long)va.va.value);

    FrameMeta &meta = getMeta(frame);

    if (cfg.brokenNoConsistency) {
        // Testing-only unsound mode: pretend the cache is physically
        // indexed and do nothing about aliases or residue.
        setTranslation(va, frame, vm_prot);
        meta.mappings.push_back(VaMapping{va, vm_prot});
        return;
    }

    // Tut-style residue: if the frame still has cache contents from a
    // previous mapping, they must be removed unless the new address
    // matches (equal address for Tut; aligned otherwise). A matching
    // dirty residue is consumed without a flush — the dirty data stays
    // valid through the new mapping — but the dirtiness itself must
    // survive, or a later exec-mode switch or DMA would miss the
    // flush. It is carried into the new mapping's modified bit below.
    bool carry_dirty = false;
    if (meta.residue) {
        const Residue &r = *meta.residue;
        const bool matches = cfg.equalVaOnly
            ? r.va.va == va.va
            : mach.dcache().geometry().aligned(r.va.va, va.va);
        if (!matches) {
            cleanResidue(frame, meta, "newmap");
            // No purge of the new cache page: the residue is the only
            // place this frame's lines survive outside live mappings
            // (an earlier residue was cleaned when it was replaced),
            // so the frame cannot have stale data there. The
            // necessity analyzer proves every instance of such a
            // purge redundant.
        } else {
            carry_dirty = r.dirty;
            meta.residue.reset();
        }
    }

    // Alias handling (Section 2.5's "old" strategy): a write breaks
    // every conflicting mapping; a read breaks conflicting writable
    // mappings and comes in read-only.
    bool conflicting_alias = false;
    std::vector<VaMapping> to_break;
    for (const auto &m : meta.mappings) {
        if (!conflicts(m.va.va, va.va))
            continue;
        conflicting_alias = true;
        if (isWrite(access)) {
            to_break.push_back(m);
        } else {
            const PageTableEntry *pte = mach.pageTable().lookup(m.va);
            vic_assert(pte != nullptr, "mapping without translation");
            if (pte->prot.write || pte->modified)
                to_break.push_back(m);
        }
    }
    for (const auto &m : to_break)
        breakMapping(frame, meta, m, "alias");

    // Effective protection: conflicting read aliases stay read-only so
    // the next write traps and can break them.
    Protection eff = vm_prot;
    if (!isWrite(access) && conflicting_alias)
        eff.write = false;

    // Write-xor-execute discipline (see FrameMeta::execMode): the
    // mode-switch fault performs the D-cache flush / I-cache purge
    // that keep the split caches consistent.
    if (access == AccessType::IFetch && eff.execute) {
        if (!meta.execMode) {
            // The consumed residue's dirty data is about to be
            // executed; enterExecMode cannot see it (this mapping is
            // not installed yet), so flush it to memory first.
            if (carry_dirty) {
                flushDataPage(frame, dColourOf(va.va), "ifetch");
                carry_dirty = false;
            }
            enterExecMode(frame, meta, iColourOf(va.va));
        }
        eff.write = false;
    } else {
        if (isWrite(access) && meta.execMode)
            enterWriteMode(meta);
        if (meta.execMode)
            eff.write = false;
        else
            eff.execute = false;
    }

    setTranslation(va, frame, eff);
    if (carry_dirty) {
        PageTableEntry *pte = mach.pageTable().lookupMutable(va);
        vic_assert(pte != nullptr, "translation just installed");
        pte->modified = true;
    }
    meta.mappings.push_back(VaMapping{va, vm_prot});
}

void
ClassicPmap::remove(SpaceVa va)
{
    mach.clock().advance(mach.params().pmapOverheadCycles);
    va.va = mach.pageTable().pageBase(va.va);
    const PageTableEntry *pte = mach.pageTable().lookup(va);
    if (!pte)
        return;
    const FrameId frame = pte->frame;
    FrameMeta &meta = getMeta(frame);
    VaMapping *m = nullptr;
    for (auto &mapping : meta.mappings) {
        if (mapping.va == va)
            m = &mapping;
    }
    vic_assert(m != nullptr, "mapping list out of sync with page table");
    const VaMapping removed_mapping = *m;

    const bool modified = dropTranslation(va);
    for (auto &mapping : meta.mappings) {
        if (mapping.va == va) {
            mapping = meta.mappings.back();
            meta.mappings.pop_back();
            break;
        }
    }

    if (cfg.brokenNoConsistency) {
        // Testing-only unsound mode: leave whatever is in the cache.
    } else if (cfg.cleanOnUnmap) {
        // Eager: remove the page from the cache right now, flushing if
        // it might be dirty — including dirt written through an
        // aligned sibling mapping, whose modified bit lives elsewhere.
        const bool dirty = colourPossiblyDirty(
            meta, dColourOf(removed_mapping.va.va), modified);
        cleanThroughMapping(frame, removed_mapping, dirty, "unmap");
    } else {
        // Tut: remember the residue; clean it only if/when the frame
        // is remapped at a non-matching address. A pre-existing
        // residue at another address must be cleaned now — only one is
        // tracked per frame.
        if (meta.residue && meta.residue->va.va != va.va)
            cleanResidue(frame, meta, "unmap",
                         modified &&
                             mach.dcache().geometry().aligned(
                                 va.va, meta.residue->va.va));
        meta.residue = Residue{va, modified,
                               removed_mapping.vmProt.execute};
    }
}

void
ClassicPmap::protect(SpaceVa va, Protection vm_prot)
{
    va.va = mach.pageTable().pageBase(va.va);
    const PageTableEntry *pte = mach.pageTable().lookup(va);
    vic_assert(pte != nullptr, "protect of unmapped page");
    FrameMeta &meta = getMeta(pte->frame);
    for (auto &m : meta.mappings) {
        if (m.va == va) {
            m.vmProt = vm_prot;
            setHardwareProt(va, pte->prot.intersect(vm_prot));
            return;
        }
    }
    vic_panic("mapping list out of sync with page table");
}

bool
ClassicPmap::resolveConsistencyFault(SpaceVa va, AccessType access)
{
    va.va = mach.pageTable().pageBase(va.va);
    const PageTableEntry *pte = mach.pageTable().lookup(va);
    if (!pte)
        return false;

    const FrameId frame = pte->frame;
    FrameMeta &meta = getMeta(frame);
    VaMapping *m = nullptr;
    for (auto &mapping : meta.mappings) {
        if (mapping.va == va)
            m = &mapping;
    }
    vic_assert(m != nullptr, "mapping list out of sync with page table");

    if (!protPermits(m->vmProt, access))
        return false;  // genuine VM-level denial

    if (cfg.brokenNoConsistency) {
        setHardwareProt(va, m->vmProt);
        return access != AccessType::Load;
    }

    if (access == AccessType::IFetch) {
        // Write-to-execute mode switch: flush the dirty data out,
        // assume the instruction cache is stale, trap future writes.
        // Once exec mode holds no further purge is needed: stores
        // trap (write-xor-execute) and DMA input purges eagerly, so
        // the instruction cache cannot have gone stale — the
        // necessity analyzer proves the old purge-on-every-fault
        // redundant in every instance.
        if (!meta.execMode)
            enterExecMode(frame, meta, iColourOf(va.va));
        Protection eff = m->vmProt;
        eff.write = false;
        setHardwareProt(va, eff);
        return true;
    }

    if (access != AccessType::Store)
        return false;  // reads are never denied for consistency

    // Execute-to-write mode switch, if needed.
    if (meta.execMode)
        enterWriteMode(meta);

    // Write to an aliased page: break every conflicting mapping, then
    // grant this one its VM protection (minus execute, which the next
    // ifetch re-earns through the mode switch). A residue at a
    // conflicting address is an alias too: its cache page is about to
    // go stale (and any dirty data in it must reach memory first), so
    // clean it now — otherwise a later matching re-enter would revive
    // the stale copy.
    if (meta.residue && conflicts(meta.residue->va.va, va.va))
        cleanResidue(frame, meta, "alias");
    std::vector<VaMapping> to_break;
    for (const auto &other : meta.mappings) {
        if (other.va != va && conflicts(other.va.va, va.va))
            to_break.push_back(other);
    }
    for (const auto &other : to_break)
        breakMapping(frame, meta, other, "alias");

    Protection eff = m->vmProt;
    eff.execute = false;
    setHardwareProt(va, eff);
    return true;
}

void
ClassicPmap::dmaRead(FrameId frame, bool need_data)
{
    (void)need_data;  // classic strategies always flush live data
    if (cfg.brokenNoConsistency)
        return;
    auto it = frames.find(frame);
    if (it == frames.end())
        return;
    FrameMeta &meta = it->second;

    for (const auto &m : meta.mappings) {
        // The hardware modified bit says whether this mapping could
        // have dirtied the cache; clean mappings need nothing, since
        // memory is already current.
        if (mach.pageTable().clearModified(m.va))
            flushDataPage(frame, dColourOf(m.va.va), "dma_read");
    }
    if (meta.residue && meta.residue->dirty) {
        flushDataPage(frame, dColourOf(meta.residue->va.va), "dma_read");
        meta.residue->dirty = false;
    }
}

void
ClassicPmap::dmaWrite(FrameId frame)
{
    if (cfg.brokenNoConsistency)
        return;
    auto it = frames.find(frame);
    if (it == frames.end())
        return;
    FrameMeta &meta = it->second;

    for (const auto &m : meta.mappings) {
        mach.pageTable().clearModified(m.va);
        purgeDataPage(frame, dColourOf(m.va.va), "dma_write");
        if (m.vmProt.execute)
            purgeInstPage(frame, iColourOf(m.va.va), "dma_write");
    }
    if (meta.residue) {
        purgeDataPage(frame, dColourOf(meta.residue->va.va),
                      "dma_write");
        if (meta.residue->exec)
            purgeInstPage(frame, iColourOf(meta.residue->va.va),
                          "dma_write");
        meta.residue.reset();
    }
}

void
ClassicPmap::frameFreed(FrameId frame)
{
    auto it = frames.find(frame);
    if (it == frames.end())
        return;
    vic_assert(it->second.mappings.empty(),
               "frame %llu freed with live mappings",
               (unsigned long long)frame);
    // Residue (Tut) survives the free list and is reconciled at the
    // next enter, exactly like the lazy strategy's state.
}

std::vector<SpaceVa>
ClassicPmap::mappingsOf(FrameId frame) const
{
    std::vector<SpaceVa> out;
    auto it = frames.find(frame);
    if (it == frames.end())
        return out;
    for (const auto &m : it->second.mappings)
        out.push_back(m.va);
    return out;
}

std::optional<CachePageId>
ClassicPmap::preferredColour(FrameId frame) const
{
    auto it = frames.find(frame);
    if (it == frames.end())
        return std::nullopt;
    const FrameMeta &meta = it->second;
    if (meta.residue)
        return dColourOf(meta.residue->va.va);
    if (!meta.mappings.empty())
        return dColourOf(meta.mappings.front().va.va);
    return std::nullopt;
}

} // namespace vic
