#include "core/policy_config.hh"

namespace vic
{

PolicyConfig
PolicyConfig::configA()
{
    PolicyConfig p;
    p.name = "A (old)";
    p.pmapKind = PmapKind::Classic;
    p.cleanOnUnmap = true;
    return p;
}

PolicyConfig
PolicyConfig::configB()
{
    PolicyConfig p;
    p.name = "B (+lazy unmap)";
    p.pmapKind = PmapKind::Lazy;
    return p;
}

PolicyConfig
PolicyConfig::configC()
{
    PolicyConfig p = configB();
    p.name = "C (+align pages)";
    p.alignIpc = true;
    p.alignSharedPages = true;
    return p;
}

PolicyConfig
PolicyConfig::configD()
{
    PolicyConfig p = configC();
    p.name = "D (+aligned prepare)";
    p.alignedPrepare = true;
    return p;
}

PolicyConfig
PolicyConfig::configE()
{
    PolicyConfig p = configD();
    p.name = "E (+need data)";
    p.useNeedData = true;
    return p;
}

PolicyConfig
PolicyConfig::configF()
{
    PolicyConfig p = configE();
    p.name = "F (+will overwrite)";
    p.useWillOverwrite = true;
    return p;
}

std::vector<PolicyConfig>
PolicyConfig::table4Sweep()
{
    return {configA(), configB(), configC(), configD(), configE(),
            configF()};
}

PolicyConfig
PolicyConfig::cmu()
{
    PolicyConfig p = configF();
    p.name = "CMU";
    return p;
}

PolicyConfig
PolicyConfig::utah()
{
    PolicyConfig p = configA();
    p.name = "Utah";
    return p;
}

PolicyConfig
PolicyConfig::tut()
{
    PolicyConfig p;
    p.name = "Tut";
    p.pmapKind = PmapKind::Classic;
    // Tut delays consistency work until a mapping is reused, but keeps
    // state per virtual address: only an EQUAL (not merely aligned)
    // reuse avoids the flush/purge (Section 6).
    p.cleanOnUnmap = false;
    p.equalVaOnly = true;
    // Tut aligns program text pages and page preparation only.
    p.alignedPrepare = true;
    p.alignTextOnly = true;
    return p;
}

PolicyConfig
PolicyConfig::apollo()
{
    PolicyConfig p;
    p.name = "Apollo";
    p.pmapKind = PmapKind::Classic;
    p.cleanOnUnmap = true;
    return p;
}

PolicyConfig
PolicyConfig::sun()
{
    PolicyConfig p;
    p.name = "Sun";
    p.pmapKind = PmapKind::Classic;
    p.cleanOnUnmap = true;
    // Arbitrary aliases are supported only uncached on the Sun-3; we
    // approximate by keeping at most one usable alias at a time, which
    // costs a clean on every alternation even when addresses align.
    p.breakAlignedAliases = true;
    return p;
}

std::vector<PolicyConfig>
PolicyConfig::table5Systems()
{
    return {cmu(), utah(), tut(), apollo(), sun()};
}

PolicyConfig
PolicyConfig::broken()
{
    PolicyConfig p;
    p.name = "broken (no consistency)";
    p.pmapKind = PmapKind::Classic;
    p.cleanOnUnmap = false;
    p.brokenNoConsistency = true;
    return p;
}

PolicyConfig
PolicyConfig::hardware()
{
    // Same pmap behaviour as broken() — zero software consistency
    // ops — but named for its intended pairing with a fully
    // hardware-coherent machine, where it is sound.
    PolicyConfig p = broken();
    p.name = "HW (hardware-coherent)";
    return p;
}

} // namespace vic
